package sapsim

// This file is the benchmark harness required by DESIGN.md: one testing.B
// benchmark per paper table and figure (regenerating the artifact from the
// shared 30-day fixture run), plus the A1-A7 ablation benches for the
// design choices the paper's guidance section calls out.
//
// Figure/table benches measure the analysis+render step over the fixture's
// telemetry; ablation benches run full (small) simulations per iteration
// and report domain metrics via b.ReportMetric.

import (
	"math/rand/v2"
	"strings"
	"testing"

	"sapsim/internal/analysis"
	"sapsim/internal/binpack"
	"sapsim/internal/esx"
	"sapsim/internal/nova"
	"sapsim/internal/sim"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
	"sapsim/internal/workload"
)

// benchArtifact runs one experiment's Compute per iteration.
func benchArtifact(b *testing.B, id string) {
	res := fixture(b)
	exp, ok := ExperimentByID(id)
	if !ok {
		b.Fatalf("experiment %s not registered", id)
	}
	b.ResetTimer()
	var art *Artifact
	for i := 0; i < b.N; i++ {
		var err error
		art, err = exp.Compute(res)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	reportValues(b, art)
}

func reportValues(b *testing.B, art *Artifact) {
	for k, v := range art.Values {
		b.ReportMetric(v, strings.ReplaceAll(k, " ", "_"))
	}
}

func BenchmarkFigure5NodeCPUHeatmap(b *testing.B)          { benchArtifact(b, "fig5") }
func BenchmarkFigure6BuildingBlockCPUHeatmap(b *testing.B) { benchArtifact(b, "fig6") }
func BenchmarkFigure7IntraBBCPUHeatmap(b *testing.B)       { benchArtifact(b, "fig7") }
func BenchmarkFigure8CPUReadyTime(b *testing.B)            { benchArtifact(b, "fig8") }
func BenchmarkFigure9CPUContention(b *testing.B)           { benchArtifact(b, "fig9") }
func BenchmarkFigure10MemoryHeatmap(b *testing.B)          { benchArtifact(b, "fig10") }
func BenchmarkFigure11NetworkTX(b *testing.B)              { benchArtifact(b, "fig11") }
func BenchmarkFigure12NetworkRX(b *testing.B)              { benchArtifact(b, "fig12") }
func BenchmarkFigure13StorageHeatmap(b *testing.B)         { benchArtifact(b, "fig13") }
func BenchmarkFigure14aCPUUsageCDF(b *testing.B)           { benchArtifact(b, "fig14a") }
func BenchmarkFigure14bMemoryUsageCDF(b *testing.B)        { benchArtifact(b, "fig14b") }
func BenchmarkFigure15aLifetimeByVCPU(b *testing.B)        { benchArtifact(b, "fig15a") }
func BenchmarkFigure15bLifetimeByRAM(b *testing.B)         { benchArtifact(b, "fig15b") }
func BenchmarkTable1VCPUClassification(b *testing.B)       { benchArtifact(b, "table1") }
func BenchmarkTable2RAMClassification(b *testing.B)        { benchArtifact(b, "table2") }
func BenchmarkTable3DatasetComparison(b *testing.B)        { benchArtifact(b, "table3") }
func BenchmarkTable4MetricCatalog(b *testing.B)            { benchArtifact(b, "table4") }
func BenchmarkTable5DatacenterOverview(b *testing.B)       { benchArtifact(b, "table5") }

// ablationConfig is a small, fast experiment for per-iteration simulation.
func ablationConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.Scale = 0.02
	cfg.VMs = 500
	cfg.Days = 3
	cfg.SampleEvery = sim.Hour
	cfg.VMSampleEvery = 3 * sim.Hour
	return cfg
}

// maxBBMemSpreadPct measures the memory-allocation imbalance across
// general-purpose building blocks — the fragmentation signal of Sec. 7.
func maxBBMemSpreadPct(res *Result) float64 {
	min, max := 101.0, -1.0
	for _, bb := range res.Region.BBs() {
		a := res.Fleet.BBAlloc(bb)
		if a.MemCapMB == 0 {
			continue
		}
		pct := float64(a.MemAllocMB) / float64(a.MemCapMB) * 100
		if pct < min {
			min = pct
		}
		if pct > max {
			max = pct
		}
	}
	if max < min {
		return 0
	}
	return max - min
}

// maxContention pools the region's contention series and returns the max.
func maxContention(res *Result) float64 {
	max := 0.0
	for _, d := range analysis.DailyPooled(res.Store, "vrops_hostsystem_cpu_contention_percentage", res.Config.Days) {
		if d.N > 0 && d.Max > max {
			max = d.Max
		}
	}
	return max
}

// BenchmarkAblationPackVsSpread (A1): Nova's SAP policy — spread general
// workloads, bin-pack HANA — against pure spreading for everything. The
// packed configuration should concentrate HANA memory onto fewer nodes
// (higher max node memory usage) at equal placement success.
func BenchmarkAblationPackVsSpread(b *testing.B) {
	run := func(b *testing.B, pack bool) {
		var failures, hotNodes int
		for i := 0; i < b.N; i++ {
			cfg := ablationConfig(uint64(100 + i))
			if !pack {
				cfg.Scheduler.Weighers = []nova.Weigher{
					nova.RAMWeigher{Mult: 1, SAPPolicy: false},
					nova.CPUWeigher{Mult: 0.5},
				}
				cfg.Scheduler.HANANodePolicy = nova.SpreadNodes
			}
			res, err := Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			failures += res.PlacementFailures
			for _, h := range res.Fleet.Hosts() {
				if float64(h.AllocatedMemMB()) > 0.8*float64(h.MemCapacityMB()) {
					hotNodes++
				}
			}
		}
		b.ReportMetric(float64(failures)/float64(b.N), "placement_failures")
		b.ReportMetric(float64(hotNodes)/float64(b.N), "nodes_above_80pct_mem")
	}
	b.Run("sap-policy-pack-hana", func(b *testing.B) { run(b, true) })
	b.Run("spread-everything", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationDRS (A2): DRS on vs off — intra-BB imbalance and
// migration cost.
func BenchmarkAblationDRS(b *testing.B) {
	run := func(b *testing.B, enabled bool) {
		var migrations int
		var contention float64
		for i := 0; i < b.N; i++ {
			cfg := ablationConfig(uint64(200 + i))
			cfg.DRS = enabled
			res, err := Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			migrations += res.DRSMigrations
			contention += maxContention(res)
		}
		b.ReportMetric(float64(migrations)/float64(b.N), "migrations")
		b.ReportMetric(contention/float64(b.N), "max_contention_pct")
	}
	b.Run("drs-on", func(b *testing.B) { run(b, true) })
	b.Run("drs-off", func(b *testing.B) { run(b, false) })
}

// BenchmarkAblationContentionAware (A3): vanilla weighers vs the
// contention-aware weigher fed by live telemetry (Sec. 7 guidance).
func BenchmarkAblationContentionAware(b *testing.B) {
	run := func(b *testing.B, aware bool) {
		var contention float64
		for i := 0; i < b.N; i++ {
			cfg := ablationConfig(uint64(300 + i))
			if aware {
				cfg.ContentionFeed = true
				cfg.Scheduler.Weighers = []nova.Weigher{
					nova.ContentionWeigher{Mult: 2},
					nova.RAMWeigher{Mult: 1, SAPPolicy: true},
					nova.CPUWeigher{Mult: 0.5},
				}
			}
			res, err := Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			contention += maxContention(res)
		}
		b.ReportMetric(contention/float64(b.N), "max_contention_pct")
	}
	b.Run("vanilla", func(b *testing.B) { run(b, false) })
	b.Run("contention-aware", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationOvercommit (A4): the vCPU:pCPU overcommit factor sweep —
// the paper's "overcommit factor should be reconsidered" guidance. Higher
// ratios admit more vCPUs and trade placement success for contention.
func BenchmarkAblationOvercommit(b *testing.B) {
	for _, ratio := range []float64{1, 2, 4, 8} {
		b.Run(benchName("ratio", ratio), func(b *testing.B) {
			var failures int
			var contention float64
			for i := 0; i < b.N; i++ {
				cfg := ablationConfig(uint64(400 + i))
				cfg.ESX.OvercommitCPU = ratio
				res, err := Run(cfg)
				if err != nil {
					b.Fatal(err)
				}
				failures += res.PlacementFailures
				contention += maxContention(res)
			}
			b.ReportMetric(float64(failures)/float64(b.N), "placement_failures")
			b.ReportMetric(contention/float64(b.N), "max_contention_pct")
		})
	}
}

// BenchmarkAblationBinPacking (A5): classic strategies on the paper's
// general-purpose flavor mix packed onto 1:1-committed general nodes
// (96 cores, 256 GiB) — the tight packing regime where strategy choice
// matters (Sec. 3.2).
func BenchmarkAblationBinPacking(b *testing.B) {
	items := flavorItems(2000)
	for _, s := range binpack.Strategies() {
		b.Run(s.Name(), func(b *testing.B) {
			var res *binpack.Result
			for i := 0; i < b.N; i++ {
				var err error
				res, err = binpack.Pack(items, 96, 256<<10, s)
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(res.Opened), "bins")
			b.ReportMetric(float64(res.LowerBound), "lower_bound")
			b.ReportMetric(res.Utilization()*100, "utilization_pct")
		})
	}
}

// flavorItems samples the catalog proportionally to Fig. 15 counts and
// shuffles deterministically: arrival order in production interleaves
// flavors, and strategy differences vanish on flavor-sorted input.
func flavorItems(n int) []binpack.Item {
	catalog := vmmodel.Catalog()
	total := vmmodel.TotalPaperVMs()
	var items []binpack.Item
	for _, f := range catalog {
		if f.Class == vmmodel.HANA {
			continue // HANA flavors live on dedicated blocks
		}
		k := f.PaperCount * n / total
		if k < 1 {
			k = 1
		}
		for i := 0; i < k; i++ {
			items = append(items, binpack.Item{
				ID:    f.Name,
				CPU:   int64(f.VCPUs),
				MemMB: int64(f.RAMGiB) << 10,
			})
		}
	}
	rng := rand.New(rand.NewPCG(42, 42))
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	return items
}

// BenchmarkAblationLifetimeAware (A6): placement that segregates short- and
// long-lived VMs reduces fragmentation churn (Sec. 7, "placement strategies
// that incorporate workload lifetime"). We proxy lifetime awareness with a
// VM-count weigher that spreads churny small flavors away from stable ones.
func BenchmarkAblationLifetimeAware(b *testing.B) {
	run := func(b *testing.B, aware bool) {
		var spread float64
		for i := 0; i < b.N; i++ {
			cfg := ablationConfig(uint64(600 + i))
			if aware {
				cfg.Scheduler.Weighers = []nova.Weigher{
					nova.RAMWeigher{Mult: 1, SAPPolicy: true},
					nova.VMCountWeigher{Mult: 1.5},
				}
			}
			res, err := Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			spread += maxBBMemSpreadPct(res)
		}
		b.ReportMetric(spread/float64(b.N), "bb_mem_spread_pct")
	}
	b.Run("lifetime-blind", func(b *testing.B) { run(b, false) })
	b.Run("lifetime-aware", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationHolistic (A7): two-layer Nova→BB scheduling vs holistic
// node-aware placement (NodeFitFilter wired to the live fleet), measuring
// fragmentation retries and placement failures.
func BenchmarkAblationHolistic(b *testing.B) {
	run := func(b *testing.B, holistic bool) {
		var retries, failures int
		for i := 0; i < b.N; i++ {
			cfg := ablationConfig(uint64(700 + i))
			cfg.HolisticNodeFit = holistic
			res, err := Run(cfg)
			if err != nil {
				b.Fatal(err)
			}
			retries += res.SchedStats.Retries
			failures += res.PlacementFailures
		}
		b.ReportMetric(float64(retries)/float64(b.N), "retries")
		b.ReportMetric(float64(failures)/float64(b.N), "placement_failures")
	}
	b.Run("two-layer", func(b *testing.B) { run(b, false) })
	b.Run("holistic-nodefit", func(b *testing.B) { run(b, true) })
}

// BenchmarkAblationCPUPinning (A8): the Sec. 8 QoS outlook — a
// latency-sensitive VM co-located with noisy neighbors, with and without
// dedicated cores. Reports the critical VM's delivered CPU ratio and ready
// time under heavy host contention.
func BenchmarkAblationCPUPinning(b *testing.B) {
	run := func(b *testing.B, pinned bool) {
		var delivered, readyMs float64
		for i := 0; i < b.N; i++ {
			r := topology.NewRegion("bench")
			dc := r.AddAZ("a").AddDC("d")
			bb, err := dc.AddBB("bb", topology.GeneralPurpose, 1, topology.Capacity{
				PCPUCores: 32, MemoryMB: 512 << 10, StorageGB: 8 << 10, NetworkGbps: 200,
			})
			if err != nil {
				b.Fatal(err)
			}
			fleet := esx.NewFleet(r, esx.DefaultConfig())
			critical := &vmmodel.VM{
				ID: "critical",
				Flavor: &vmmodel.Flavor{Name: "CRIT", VCPUs: 8, RAMGiB: 32, DiskGB: 100,
					PinCPU: pinned},
				Profile: &workload.Profile{Seed: 1, MeanCPU: 0.9},
			}
			if err := fleet.Place(critical, bb.Nodes[0], 0); err != nil {
				b.Fatal(err)
			}
			for j := 0; j < 4; j++ {
				noisy := &vmmodel.VM{
					ID:      vmmodel.ID(rune('a' + j)),
					Flavor:  vmmodel.CatalogByName()["MJ"],
					Profile: &workload.Profile{Seed: uint64(j + 2), MeanCPU: 0.9, BurstProb: 0.3, BurstMag: 1.6},
				}
				if err := fleet.Place(noisy, bb.Nodes[0], 0); err != nil {
					b.Fatal(err)
				}
			}
			h, err := fleet.Host(bb.Nodes[0].ID)
			if err != nil {
				b.Fatal(err)
			}
			for ts := sim.Time(0); ts < sim.Day; ts += 5 * sim.Minute {
				m := h.Snapshot(ts, 5*sim.Minute)
				u := h.VMSnapshot(critical, ts, 5*sim.Minute, m.CPUContentionPct)
				delivered += u.CPUUsageRatio
				readyMs += u.ReadyMillis
			}
		}
		samples := float64(b.N) * float64(sim.Day/(5*sim.Minute))
		b.ReportMetric(delivered/samples, "mean_delivered_ratio")
		b.ReportMetric(readyMs/samples/1000, "mean_ready_s")
	}
	b.Run("shared", func(b *testing.B) { run(b, false) })
	b.Run("pinned", func(b *testing.B) { run(b, true) })
}

func benchName(prefix string, v float64) string {
	switch v {
	case 1:
		return prefix + "-1to1"
	case 2:
		return prefix + "-2to1"
	case 4:
		return prefix + "-4to1"
	case 8:
		return prefix + "-8to1"
	default:
		return prefix
	}
}
