package sapsim

import (
	"testing"

	"sapsim/internal/sim"
)

// fullCellConfig is a complete-but-compact cell: every subsystem the 30-day
// experiments exercise (arrival churn, deletions, DRS passes, resize churn,
// host + VM telemetry sampling) at a size that keeps one iteration under a
// second. This is the end-to-end number the BENCH_*.json trajectory tracks:
// cell runtime is the floor under every sweep and resume.
func fullCellConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.Scale = 0.02
	cfg.VMs = 500
	cfg.Days = 3
	cfg.SampleEvery = 15 * sim.Minute
	cfg.VMSampleEvery = sim.Hour
	return cfg
}

// BenchmarkFullCell runs one full simulation cell per iteration.
func BenchmarkFullCell(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Run(fullCellConfig(42))
		if err != nil {
			b.Fatal(err)
		}
		if len(res.VMs) == 0 || res.Store.SeriesCount() == 0 {
			b.Fatal("cell produced no data")
		}
	}
}
