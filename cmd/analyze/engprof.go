// Engine self-profiler analysis: -engprof loads the per-cell profile JSON
// a sweep exports (sweep -engprof DIR, any execution mode) and renders the
// fleet-wide per-phase attribution table, the top event owners, and the
// straggler cells with their dominant phase. -against diffs two exports
// (per-cell means, so matrices of different sizes compare); adding
// -critpath joins each cell's profiler-attributed time against the
// wall-clock cell spans of an exported trace — coverage shows how much of
// a straggler's real wall time the engine phases explain.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"time"

	"sapsim/internal/dispatch"
	"sapsim/internal/engprof"
	"sapsim/internal/scenario"
	"sapsim/internal/trace"
)

// cellProfile is one loaded per-cell profile. keyOK reports whether the
// cell's matrix key was recoverable from the file name (the export's
// scenario__variant__seed scheme); without it the cell still aggregates
// but cannot join a trace.
type cellProfile struct {
	name  string
	key   scenario.Key
	keyOK bool
	p     *engprof.Profile
}

// runEngprof is the -engprof entry point.
func runEngprof(path, against, critPath string, topN int) error {
	cells, merged, err := loadProfiles(path)
	if err != nil {
		return err
	}
	if against != "" {
		_, other, err := loadProfiles(against)
		if err != nil {
			return err
		}
		printProfileDiff(path, merged, against, other)
		return nil
	}

	fmt.Printf("engine profile %s: %d cells, %d events, %s attributed\n\n",
		path, merged.Cells, merged.Events, fmtNanos(merged.AccountedNanos))
	printPhaseTable(merged)
	printOwnerTable(merged, topN)
	if len(cells) > 1 {
		if err := printStragglers(cells, critPath); err != nil {
			return err
		}
	}
	return nil
}

// loadProfiles reads one profile file or every *.engprof.json in a
// directory, returning the per-cell profiles (sorted by attributed time,
// slowest first) and their merged fleet-wide aggregate.
func loadProfiles(path string) ([]cellProfile, *engprof.Profile, error) {
	st, err := os.Stat(path)
	if err != nil {
		return nil, nil, err
	}
	var files []string
	if st.IsDir() {
		files, err = filepath.Glob(filepath.Join(path, "*.engprof.json"))
		if err != nil {
			return nil, nil, err
		}
		sort.Strings(files)
		if len(files) == 0 {
			return nil, nil, fmt.Errorf("no *.engprof.json files in %s (export with sweep -engprof)", path)
		}
	} else {
		files = []string{path}
	}
	var cells []cellProfile
	merged := &engprof.Profile{Format: engprof.FormatVersion, Phases: map[string]engprof.Counter{}}
	for _, f := range files {
		blob, err := os.ReadFile(f)
		if err != nil {
			return nil, nil, err
		}
		p, err := engprof.DecodeBytes(blob)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", f, err)
		}
		c := cellProfile{p: p}
		c.key, c.keyOK = parseCellFileName(filepath.Base(f))
		if c.keyOK {
			c.name = fmt.Sprintf("%s/%s/seed%d", c.key.Scenario, c.key.Variant, c.key.Seed)
		} else {
			c.name = strings.TrimSuffix(filepath.Base(f), ".engprof.json")
		}
		cells = append(cells, c)
		merged.Merge(p)
	}
	sort.Slice(cells, func(i, j int) bool {
		if cells[i].p.AccountedNanos != cells[j].p.AccountedNanos {
			return cells[i].p.AccountedNanos > cells[j].p.AccountedNanos
		}
		return cells[i].name < cells[j].name
	})
	return cells, merged, nil
}

// parseCellFileName recovers the matrix key from the export's
// scenario__variant__seed.engprof.json naming scheme.
func parseCellFileName(name string) (scenario.Key, bool) {
	base, ok := strings.CutSuffix(name, ".engprof.json")
	if !ok {
		return scenario.Key{}, false
	}
	parts := strings.Split(base, "__")
	if len(parts) != 3 {
		return scenario.Key{}, false
	}
	seed, err := strconv.ParseUint(parts[2], 10, 64)
	if err != nil {
		return scenario.Key{}, false
	}
	return scenario.Key{Scenario: parts[0], Variant: parts[1], Seed: seed}, true
}

// sortedPhases returns the profile's phases of one nesting class, sorted
// by attributed time descending.
func sortedPhases(p *engprof.Profile, nested bool) []string {
	var names []string
	for name := range p.Phases {
		if ph, ok := engprof.PhaseByName(name); ok && ph.Nested() == nested {
			names = append(names, name)
		}
	}
	sort.Slice(names, func(i, j int) bool {
		a, b := p.Phases[names[i]], p.Phases[names[j]]
		if a.Nanos != b.Nanos {
			return a.Nanos > b.Nanos
		}
		return names[i] < names[j]
	})
	return names
}

// printPhaseTable renders the top-level attribution (rows sum to exactly
// 100% of the attributed envelope by construction) and the nested
// scheduler/DRS detail beneath it.
func printPhaseTable(p *engprof.Profile) {
	fmt.Println("per-phase attribution (top-level rows sum to 100% of attributed time):")
	fmt.Printf("%-16s %10s %6s %10s %12s\n", "phase", "time", "%", "count", "ops")
	for _, name := range sortedPhases(p, false) {
		c := p.Phases[name]
		fmt.Printf("%-16s %10s %5.1f%% %10d %12d\n",
			name, fmtNanos(c.Nanos), pct(c.Nanos, p.AccountedNanos), c.Count, c.Ops)
	}
	nested := sortedPhases(p, true)
	if len(nested) > 0 {
		fmt.Println("\nnested detail (measured inside the phases above, not additive):")
		fmt.Printf("%-16s %10s %6s %10s %12s\n", "phase", "time", "%", "count", "ops")
		for _, name := range nested {
			c := p.Phases[name]
			fmt.Printf("%-16s %10s %5.1f%% %10d %12d\n",
				name, fmtNanos(c.Nanos), pct(c.Nanos, p.AccountedNanos), c.Count, c.Ops)
		}
	}
	fmt.Println()
}

// printOwnerTable renders the top-N exact event-owner rows.
func printOwnerTable(p *engprof.Profile, topN int) {
	if len(p.Owners) == 0 {
		return
	}
	n := topN
	if n > len(p.Owners) {
		n = len(p.Owners)
	}
	fmt.Printf("top %d event owners (of %d):\n", n, len(p.Owners))
	fmt.Printf("%-28s %10s %6s %10s %12s\n", "owner", "time", "%", "count", "ops")
	for _, oc := range p.Owners[:n] {
		fmt.Printf("%-28s %10s %5.1f%% %10d %12d\n",
			oc.Owner, fmtNanos(oc.Nanos), pct(oc.Nanos, p.AccountedNanos), oc.Count, oc.Ops)
	}
	fmt.Println()
}

// printStragglers renders the per-cell ranking (slowest attributed time
// first) with each cell's dominant phase. With a trace, each cell's
// attributed time is joined against its wall-clock root span — coverage
// is the fraction of real wall time the engine phases explain.
func printStragglers(cells []cellProfile, critPath string) error {
	wall := map[string]time.Duration{}
	if critPath != "" {
		f, err := os.Open(critPath)
		if err != nil {
			return err
		}
		defer f.Close()
		spans, err := trace.ReadChromeTrace(f)
		if err != nil {
			return err
		}
		for _, s := range spans {
			if s.Name == "cell" && s.Parent == "" && s.Duration() > wall[s.Trace] {
				wall[s.Trace] = s.Duration()
			}
		}
	}
	fmt.Println("stragglers (slowest cells by attributed time):")
	if critPath != "" {
		fmt.Printf("%-36s %10s %10s %9s  %s\n", "cell", "attributed", "wall", "coverage", "dominant phase")
	} else {
		fmt.Printf("%-36s %10s  %s\n", "cell", "attributed", "dominant phase")
	}
	for _, c := range cells {
		name, share := dominantPhase(c.p)
		dom := fmt.Sprintf("%s (%.0f%%)", name, share)
		if critPath == "" {
			fmt.Printf("%-36s %10s  %s\n", c.name, fmtNanos(c.p.AccountedNanos), dom)
			continue
		}
		wallCol, covCol := "-", "-"
		if c.keyOK {
			if w := wall[dispatch.CellTraceID(c.key)]; w > 0 {
				wallCol = fmtNanos(int64(w))
				covCol = fmt.Sprintf("%.0f%%", pct(c.p.AccountedNanos, int64(w)))
			}
		}
		fmt.Printf("%-36s %10s %10s %9s  %s\n", c.name, fmtNanos(c.p.AccountedNanos), wallCol, covCol, dom)
	}
	fmt.Println()
	return nil
}

// dominantPhase is the cell's largest top-level phase and its share of the
// attributed envelope.
func dominantPhase(p *engprof.Profile) (string, float64) {
	names := sortedPhases(p, false)
	if len(names) == 0 {
		return "-", 0
	}
	return names[0], pct(p.Phases[names[0]].Nanos, p.AccountedNanos)
}

// printProfileDiff compares two exports phase by phase on per-cell means,
// so sweeps of different matrix sizes (or a single cell against a fleet)
// still compare like for like.
func printProfileDiff(pathA string, a *engprof.Profile, pathB string, b *engprof.Profile) {
	fmt.Printf("engine profile diff (per-cell means):\n  A = %s (%d cells, %s attributed)\n  B = %s (%d cells, %s attributed)\n\n",
		pathA, a.Cells, fmtNanos(a.AccountedNanos), pathB, b.Cells, fmtNanos(b.AccountedNanos))
	seen := map[string]bool{}
	var names []string
	for _, p := range []*engprof.Profile{a, b} {
		for name := range p.Phases {
			if !seen[name] {
				seen[name] = true
				names = append(names, name)
			}
		}
	}
	sort.Slice(names, func(i, j int) bool {
		pi, _ := engprof.PhaseByName(names[i])
		pj, _ := engprof.PhaseByName(names[j])
		if pi.Nested() != pj.Nested() {
			return !pi.Nested()
		}
		if a.Phases[names[i]].Nanos != a.Phases[names[j]].Nanos {
			return a.Phases[names[i]].Nanos > a.Phases[names[j]].Nanos
		}
		return names[i] < names[j]
	})
	fmt.Printf("%-16s %12s %12s %9s\n", "phase", "A", "B", "delta")
	for _, name := range names {
		ca := perCell(a.Phases[name].Nanos, a.Cells)
		cb := perCell(b.Phases[name].Nanos, b.Cells)
		fmt.Printf("%-16s %12s %12s %9s\n", name, fmtNanos(ca), fmtNanos(cb), deltaPct(ca, cb))
	}
	ta, tb := perCell(a.AccountedNanos, a.Cells), perCell(b.AccountedNanos, b.Cells)
	fmt.Printf("%-16s %12s %12s %9s\n", "TOTAL", fmtNanos(ta), fmtNanos(tb), deltaPct(ta, tb))
}

func perCell(nanos int64, cells int) int64 {
	if cells <= 0 {
		return nanos
	}
	return nanos / int64(cells)
}

// deltaPct renders B's change relative to A.
func deltaPct(a, b int64) string {
	switch {
	case a == 0 && b == 0:
		return "-"
	case a == 0:
		return "new"
	case b == 0:
		return "gone"
	}
	return fmt.Sprintf("%+.1f%%", 100*float64(b-a)/float64(a))
}

func pct(part, whole int64) float64 {
	if whole <= 0 {
		return 0
	}
	return 100 * float64(part) / float64(whole)
}

// fmtNanos renders a nanosecond total at a scale fit for reading.
func fmtNanos(ns int64) string {
	d := time.Duration(ns)
	switch {
	case d >= time.Minute:
		return d.Round(time.Second).String()
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.1fms", float64(ns)/1e6)
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(ns)/1e3)
	default:
		return fmt.Sprintf("%dns", ns)
	}
}
