// Fleet flight-recorder modes: -record drives the periodic scraper that
// persists every /metrics endpoint into an on-disk dataset during a
// sweep; -fleet replays such a dataset into queue-depth and
// worker-utilization timelines; -critpath loads an exported Chrome trace
// and prints the sweep's critical path and per-phase latency breakdown.
package main

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"sort"
	"strings"
	"syscall"
	"time"

	"sapsim/internal/dataset"
	"sapsim/internal/dispatch"
	"sapsim/internal/promql"
	"sapsim/internal/scrape"
	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
	"sapsim/internal/trace"
)

// runRecord polls the targets into dir until interrupted (or -for
// elapses), mirroring scrape.Recorder.Run but keeping the Recording in
// hand so a summary prints on the way out.
func runRecord(dir, targets string, every, dur time.Duration) error {
	var urls []string
	for _, u := range strings.Split(targets, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, u)
		}
	}
	r := &scrape.Recorder{
		Targets: urls,
		Every:   every,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	rec, err := r.Open(dir)
	if err != nil {
		return err
	}
	defer rec.Close()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if dur > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, dur)
		defer cancel()
	}
	if every <= 0 {
		every = time.Second
	}
	fmt.Fprintf(os.Stderr, "recording %d targets every %v into %s (interrupt to stop)\n",
		len(urls), every, filepath.Join(dir, scrape.FleetDataset))
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		if _, err := rec.Round(); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			fmt.Printf("recorded %d rounds, %d samples into %s\n",
				rec.Rounds(), rec.Samples(), filepath.Join(dir, scrape.FleetDataset))
			return nil
		case <-tick.C:
		}
	}
}

// runFleet loads a flight-recorder dataset and renders the sweep's
// queue-depth and worker-utilization timelines.
func runFleet(dir string) error {
	path := dir
	if st, err := os.Stat(path); err == nil && st.IsDir() {
		path = filepath.Join(dir, scrape.FleetDataset)
	}
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	store, err := dataset.Read(f)
	if err != nil {
		return err
	}
	fmt.Printf("fleet recording %s: %d series, %d samples\n\n",
		path, store.SeriesCount(), store.SampleCount())

	engine := &promql.Engine{Store: store}
	ts := sampleTimes(store, dispatch.MetricQueueJobs, dispatch.MetricWorkerCapacity)
	if len(ts) == 0 {
		return fmt.Errorf("no %s or %s samples in %s",
			dispatch.MetricQueueJobs, dispatch.MetricWorkerCapacity, path)
	}
	ts = strideTo(ts, 40)

	states := []string{"queued", "booked", "running", "done", "failed"}
	fmt.Println("queue depth by state (sum over instances):")
	fmt.Printf("%8s", "t(s)")
	for _, s := range states {
		fmt.Printf(" %7s", s)
	}
	fmt.Println()
	for _, t := range ts {
		vec, err := engine.Query(fmt.Sprintf("sum by (state) (%s)", dispatch.MetricQueueJobs), t)
		if err != nil {
			return err
		}
		byState := map[string]float64{}
		for _, s := range vec {
			byState[s.Labels.Get("state")] = s.Value
		}
		fmt.Printf("%8.1f", t.Seconds())
		for _, s := range states {
			fmt.Printf(" %7.0f", byState[s])
		}
		fmt.Println()
	}

	instances := labelValues(store, dispatch.MetricWorkerCapacity, "instance")
	if len(instances) == 0 {
		fmt.Println("\nno worker instances in the recording")
		return nil
	}
	const maxCols = 8
	shown := instances
	if len(shown) > maxCols {
		shown = shown[:maxCols]
	}
	fmt.Println("\nworker utilization (inflight / capacity per instance):")
	fmt.Printf("%8s", "t(s)")
	for _, inst := range shown {
		fmt.Printf(" %*s", colWidth(inst), inst)
	}
	fmt.Println()
	for _, t := range ts {
		// The in-tree promql has no vector/vector division; take the two
		// aggregates and divide here.
		cap, err := perInstance(engine, dispatch.MetricWorkerCapacity, t)
		if err != nil {
			return err
		}
		inf, err := perInstance(engine, dispatch.MetricWorkerInflight, t)
		if err != nil {
			return err
		}
		fmt.Printf("%8.1f", t.Seconds())
		for _, inst := range shown {
			c, ok := cap[inst]
			if !ok || c == 0 {
				fmt.Printf(" %*s", colWidth(inst), "-")
				continue
			}
			fmt.Printf(" %*.0f%%", colWidth(inst)-1, 100*inf[inst]/c)
		}
		fmt.Println()
	}
	if len(instances) > maxCols {
		fmt.Printf("(%d more instances not shown)\n", len(instances)-maxCols)
	}
	return nil
}

// runCritpath loads an exported Chrome trace and prints the critical
// path plus the per-phase latency breakdown.
func runCritpath(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	spans, err := trace.ReadChromeTrace(f)
	if err != nil {
		return err
	}
	a := trace.Analyze(spans)
	a.Report(os.Stdout)
	return nil
}

// sampleTimes collects the sorted union of sample timestamps across the
// given metrics.
func sampleTimes(store *telemetry.Store, metrics ...string) []sim.Time {
	seen := map[sim.Time]bool{}
	for _, m := range metrics {
		for _, s := range store.Select(m) {
			for _, smp := range s.Samples {
				seen[smp.T] = true
			}
		}
	}
	out := make([]sim.Time, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// strideTo thins a timeline to at most n rows, keeping first and last.
func strideTo(ts []sim.Time, n int) []sim.Time {
	if len(ts) <= n {
		return ts
	}
	out := make([]sim.Time, 0, n)
	for i := 0; i < n-1; i++ {
		out = append(out, ts[i*(len(ts)-1)/(n-1)])
	}
	return append(out, ts[len(ts)-1])
}

// labelValues returns the sorted distinct values of one label across a
// metric's series.
func labelValues(store *telemetry.Store, metric, name string) []string {
	seen := map[string]bool{}
	for _, s := range store.Select(metric) {
		if v := s.Labels.Get(name); v != "" {
			seen[v] = true
		}
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// perInstance evaluates sum by (instance) of a metric at t.
func perInstance(engine *promql.Engine, metric string, t sim.Time) (map[string]float64, error) {
	vec, err := engine.Query(fmt.Sprintf("sum by (instance) (%s)", metric), t)
	if err != nil {
		return nil, err
	}
	out := make(map[string]float64, len(vec))
	for _, s := range vec {
		out[s.Labels.Get("instance")] = s.Value
	}
	return out, nil
}

func colWidth(inst string) int {
	if len(inst) < 5 {
		return 5
	}
	return len(inst)
}
