// Command analyze recomputes figures from a previously exported dataset
// CSV, demonstrating that the released artifact alone suffices for the
// paper's telemetry-based analysis (Figs. 5, 8, 9, 10-14).
//
// Usage:
//
//	analyze -i dataset.csv [-days N] [-fig fig9]
//	analyze -scrape URL[,URL...] -query EXPR
//	analyze -record DIR -scrape URL[,URL...] [-every D] [-for D]
//	analyze -fleet DIR
//	analyze -critpath trace.json
//	analyze -engprof DIR|FILE [-against DIR|FILE] [-top N] [-critpath trace.json]
//
// With -scrape, analyze pulls live Prometheus exposition endpoints (a
// dispatchd's and any simworker -metrics listeners) into a fresh telemetry
// store instead of loading a CSV, and answers -query against the fleet's
// current state — e.g. `sum(dispatch_queue_jobs)` mid-sweep.
//
// With -record, the same endpoints are polled continuously — the fleet
// flight recorder — appending every sample to DIR/fleet.csv until
// interrupted (or -for elapses). -fleet replays such a recording into
// queue-depth and worker-utilization timelines; -critpath analyzes a
// Chrome trace exported by sweep/dispatchd -trace: critical path through
// the slowest cell plus a per-phase latency breakdown.
//
// With -engprof, analyze aggregates the per-cell engine self-profiles a
// sweep exports (sweep -engprof DIR): the fleet-wide per-phase time/work
// attribution table, the top event owners, and the straggler cells with
// their dominant phase. -against diffs two exports; combining with
// -critpath joins each straggler's attributed time against its wall-clock
// cell span from the trace.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"sapsim/internal/analysis"
	"sapsim/internal/core"
	"sapsim/internal/dataset"
	"sapsim/internal/exporter"
	"sapsim/internal/forecast"
	"sapsim/internal/promql"
	"sapsim/internal/report"
	"sapsim/internal/scrape"
	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
)

func main() {
	var (
		in      = flag.String("i", "dataset.csv", "input dataset CSV")
		days    = flag.Int("days", 30, "observation window in days")
		fig     = flag.String("fig", "all", "figure to compute: fig5, fig8, fig9, fig10, fig13, fig14a, fig14b, or all")
		query   = flag.String("query", "", "PromQL expression to evaluate instead of figures")
		at      = flag.Float64("at", -1, "query evaluation time in seconds since epoch (default: end of window)")
		oc      = flag.Bool("recommend-overcommit", false, "derive a workload-based vCPU:pCPU overcommit factor (Sec. 7 guidance)")
		scrapes = flag.String("scrape", "", "comma-separated /metrics URLs to scrape into the store instead of reading -i")
		timeout = flag.Duration("timeout", 0, "wall-clock limit for load + analysis (0 = none)")
		record  = flag.String("record", "", "flight-recorder mode: poll -scrape targets into DIR/fleet.csv until interrupted")
		every   = flag.Duration("every", time.Second, "polling cadence for -record")
		forDur  = flag.Duration("for", 0, "stop -record after this long (0 = until interrupted)")
		fleet   = flag.String("fleet", "", "render queue-depth and worker-utilization timelines from a flight recording (dir or CSV)")
		crit    = flag.String("critpath", "", "critical-path and per-phase latency analysis of an exported Chrome trace")
		engprof = flag.String("engprof", "", "aggregate per-cell engine self-profiles (a sweep -engprof export dir, or one .engprof.json file)")
		against = flag.String("against", "", "second -engprof export to diff against")
		topN    = flag.Int("top", 12, "event-owner rows to show in -engprof mode")
	)
	flag.Parse()

	switch {
	case *engprof != "":
		if err := runEngprof(*engprof, *against, *crit, *topN); err != nil {
			fatal(err)
		}
		return
	case *crit != "":
		if err := runCritpath(*crit); err != nil {
			fatal(err)
		}
		return
	case *fleet != "":
		if err := runFleet(*fleet); err != nil {
			fatal(err)
		}
		return
	case *record != "":
		if *scrapes == "" {
			fatal(fmt.Errorf("-record needs -scrape targets"))
		}
		if err := runRecord(*record, *scrapes, *every, *forDur); err != nil {
			fatal(err)
		}
		return
	}

	// The analysis pipeline is a straight-line batch job with no run loop
	// to interrupt, so the timeout is a watchdog over the whole process.
	if *timeout > 0 {
		time.AfterFunc(*timeout, func() {
			fatal(fmt.Errorf("timed out after %v", *timeout))
		})
	}

	var store *telemetry.Store
	if *scrapes != "" {
		// Live fleet mode: every endpoint's samples land at t=0, so
		// queries default to evaluating there — a point-in-time snapshot
		// of fleet health, not a time series.
		store = telemetry.NewStore()
		sc := &scrape.Scraper{Store: store}
		for _, url := range strings.Split(*scrapes, ",") {
			url = strings.TrimSpace(url)
			if url == "" {
				continue
			}
			n, err := sc.ScrapeTarget(url, 0)
			if err != nil {
				fatal(err)
			}
			fmt.Printf("scraped %s: %d samples\n", url, n)
		}
		fmt.Println()
	} else {
		f, err := os.Open(*in)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		store, err = dataset.Read(bufio.NewReaderSize(f, 1<<20))
		if err != nil {
			fatal(err)
		}
		fmt.Printf("loaded %s: %d series, %d samples\n\n", *in, store.SeriesCount(), store.SampleCount())
	}

	if *query != "" {
		engine := &promql.Engine{Store: store}
		evalAt := sim.Time(*days) * sim.Day
		if *scrapes != "" {
			evalAt = 0
		}
		if *at >= 0 {
			evalAt = sim.Time(*at * float64(sim.Second))
		}
		vec, err := engine.Query(*query, evalAt)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("query %s @ %s:\n%s", *query, evalAt, promql.Format(vec))
		return
	}

	if *oc {
		// Overcommit works through statistical multiplexing: the input
		// is the *aggregate* per-vCPU demand ratio of the population at
		// each sampling instant, not individual VM tails.
		sums := map[sim.Time]float64{}
		counts := map[sim.Time]int{}
		for _, s := range store.Select(exporter.MetricVMCPURatio) {
			for _, smp := range s.Samples {
				sums[smp.T] += smp.V
				counts[smp.T]++
			}
		}
		var ratios []float64
		for ts, sum := range sums {
			ratios = append(ratios, sum/float64(counts[ts]))
		}
		rec, err := forecast.DynamicOvercommit(ratios, 1.25)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("p99 aggregate per-vCPU demand ratio: %.3f (over %d instants)\n", rec.PeakDemandRatio, len(ratios))
		fmt.Printf("recommended vCPU:pCPU overcommit:    %.1f:1 (headroom %.2f)\n", rec.Ratio, rec.Headroom)
		return
	}

	want := func(id string) bool { return *fig == "all" || *fig == id }

	if want("fig5") {
		h := analysis.DailyHeatmap(store, exporter.MetricHostCPUUtil, "hostsystem", *days, analysis.FreePercent)
		fmt.Println("fig5: free CPU per node — top columns (most free first):")
		fmt.Println(report.HeatmapSummary(h, 10))
	}
	if want("fig8") {
		top := analysis.TopKByMax(store, exporter.MetricHostCPUReady, "hostsystem", 10,
			func(ms float64) float64 { return ms / 1000 })
		fmt.Println("fig8: top-10 nodes by CPU ready time (s):")
		fmt.Println(report.NodeStatsTable(top, "s"))
	}
	if want("fig9") {
		daily := analysis.DailyPooled(store, exporter.MetricHostCPUCont, *days)
		fmt.Println("fig9: region-wide CPU contention per day:")
		fmt.Println(report.DailySeriesCSV(daily))
	}
	if want("fig10") {
		h := analysis.DailyHeatmap(store, exporter.MetricHostMemUsage, "hostsystem", *days, analysis.FreePercent)
		fmt.Println("fig10: free memory per node — top columns:")
		fmt.Println(report.HeatmapSummary(h, 10))
	}
	if want("fig13") {
		h := analysis.DailyHeatmap(store, core.MetricHostDiskPct, "hostsystem", *days, analysis.FreePercent)
		d := analysis.StorageSummary(h)
		fmt.Printf("fig13: storage — %.0f%% of hosts >90%% free, %.0f%% using >30%% (paper: 18%% / 7%%)\n\n",
			d.FracAbove90Free*100, d.FracAbove30Used*100)
	}
	if want("fig14a") {
		printCDF(store, exporter.MetricVMCPURatio, "fig14a: VM CPU usage", *days)
	}
	if want("fig14b") {
		printCDF(store, exporter.MetricVMMemRatio, "fig14b: VM memory usage", *days)
	}
}

func printCDF(store telemetry.Querier, metric, title string, days int) {
	cdf := analysis.VMMeanUsage(store, metric, 0, sim.Time(days)*sim.Day)
	split := analysis.SplitUtilization(cdf)
	fmt.Println(title + ":")
	fmt.Println(report.UtilizationSplitTable(split))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "analyze:", err)
	os.Exit(1)
}
