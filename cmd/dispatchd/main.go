// Command dispatchd is the durable sweep dispatcher daemon: it expands a
// (scenario × variant × seed) matrix into per-cell jobs journaled under
// -dir, serves them to simworker processes over the wire protocol
// (/book, /progress, /complete), and merges the collected metrics and
// artifact digests into the comparative report once every cell is done.
//
// Kill it at any point: restarting with -resume replays the journal, keeps
// every finished cell, and re-queues the ones that were in flight. The
// merged report of a killed-and-resumed sweep is byte-identical to a
// single-process `sweep` run of the same matrix.
//
// Workers upload every artifact body into the dispatcher's
// content-addressed store (under -dir, deduplicated by digest), so the
// daemon serves a browsable report bundle at /bundle while the sweep runs
// and can materialize it to disk with -bundle once drained.
//
// Usage:
//
//	dispatchd -dir DIR [-addr :9090] [-scale F] [-vms N] [-days N] \
//	          [-sample D] [-scenarios a,b] [-variants x,y] [-seeds 7,11] \
//	          [-checkpoint D] [-lease D] [-timeout D] [-out DIR] [-bundle DIR] \
//	          [-trace FILE] [-pprof ADDR]
//	dispatchd -dir DIR -resume [-addr :9090] [-lease D] [-timeout D]
//
// -trace exports the drained sweep's cell-lifecycle trace (Chrome
// trace-event JSON reconstructed from the journal, including worker-shipped
// engine-phase spans); -pprof serves net/http/pprof on its own listener for
// profiling the daemon mid-sweep.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"sapsim/internal/artifact"
	"sapsim/internal/core"
	"sapsim/internal/dispatch"
	"sapsim/internal/fleetmetrics"
	"sapsim/internal/pprofserve"
	"sapsim/internal/scenario"
	"sapsim/internal/sim"
	"sapsim/internal/trace"
)

func main() {
	var (
		addr       = flag.String("addr", ":9090", "listen address for the dispatcher protocol")
		dir        = flag.String("dir", "", "sweep directory holding the journal (required)")
		resume     = flag.Bool("resume", false, "resume the journal in -dir instead of starting a new sweep")
		scale      = flag.Float64("scale", 0.02, "region scale (1.0 = 1,823 hypervisors)")
		vms        = flag.Int("vms", 960, "initial VM population per run")
		days       = flag.Int("days", 10, "observation window in days")
		sample     = flag.Duration("sample", 15*time.Minute, "host sampling interval")
		scenarios  = flag.String("scenarios", "", "comma-separated scenario names (default: all builtin)")
		variants   = flag.String("variants", "default", "comma-separated variant names (\"all\" = every builtin)")
		seeds      = flag.String("seeds", "2024", "comma-separated seeds")
		checkpoint = flag.Duration("checkpoint", 6*time.Hour, "simulated-time checkpoint cadence for workers")
		lease      = flag.Duration("lease", dispatch.DefaultLease, "heartbeat deadline before a cell re-books")
		timeout    = flag.Duration("timeout", 0, "wall-clock limit for the whole sweep (0 = none)")
		out        = flag.String("out", "", "report directory (default: -dir)")
		bundle     = flag.String("bundle", "", "materialize the digest-verified report bundle into this directory once drained")
		traceOut   = flag.String("trace", "", "export the sweep's cell-lifecycle trace (Chrome trace-event JSON, Perfetto-loadable) to this file once drained")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof at this address (e.g. 127.0.0.1:6060; empty = off)")
		progress   = flag.Bool("progress", true, "log queue transitions to stderr")
	)
	flag.Parse()
	if *dir == "" {
		fatal(fmt.Errorf("-dir is required"))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *pprofAddr != "" {
		bound, err := pprofserve.Serve(*pprofAddr)
		if err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "dispatchd: pprof at http://%s/debug/pprof/\n", bound)
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	opts := dispatch.QueueOptions{Lease: *lease}
	var q *dispatch.Queue
	var err error
	if *resume {
		q, err = dispatch.Resume(*dir, opts)
		if err == nil {
			fmt.Fprintf(os.Stderr, "dispatchd: %s\n", q.Recovered())
		}
	} else {
		base := core.DefaultConfig(2024)
		base.Scale = *scale
		base.VMs = *vms
		base.Days = *days
		base.SampleEvery = sim.Time(*sample)
		spec, serr := dispatch.ParseSpec(base, *scenarios, *variants, *seeds, sim.Time(*checkpoint))
		if serr != nil {
			fatal(serr)
		}
		q, err = dispatch.NewQueue(*dir, spec, opts)
	}
	if err != nil {
		fatal(err)
	}
	defer q.Close()

	d := dispatch.NewDispatcher(q)
	if *progress {
		d.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	d.Instrument(fleetmetrics.NewRegistry())
	bound, err := d.Serve(ctx, *addr)
	if err != nil {
		fatal(err)
	}
	total := len(q.Snapshot())
	fmt.Printf("dispatchd: serving %d cells at %s (journal %s)\n",
		total, bound, filepath.Join(*dir, dispatch.JournalName))
	fmt.Printf("dispatchd: browsable report bundle at http://%s/bundle\n", bound)
	fmt.Printf("dispatchd: fleet metrics at http://%s/metrics\n", bound)

	res, err := d.WaitDrained(ctx, 0)
	if err != nil {
		fatal(err)
	}

	text := scenario.Comparative(res)
	diff := scenario.ArtifactDiff(res)
	fmt.Print(text)
	fmt.Print(diff)

	reportDir := *out
	if reportDir == "" {
		reportDir = *dir
	}
	if err := os.MkdirAll(reportDir, 0o755); err != nil {
		fatal(err)
	}
	for name, content := range map[string]string{
		"report.txt":        text,
		"runs.csv":          scenario.RunsCSV(res),
		"artifact_diff.txt": diff,
	} {
		if err := os.WriteFile(filepath.Join(reportDir, name), []byte(content), 0o644); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("wrote report.txt, runs.csv, artifact_diff.txt to %s\n", reportDir)

	if *bundle != "" {
		if _, err := artifact.WriteBundle(*bundle, res, q.Store()); err != nil {
			fatal(err)
		}
		fmt.Printf("materialized report bundle in %s\n", *bundle)
	}

	if *traceOut != "" {
		spans, err := dispatch.TraceFromJournal(*dir)
		if err != nil {
			fatal(err)
		}
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		if err := trace.WriteChromeTrace(f, spans); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote trace (%d spans) to %s — load it at https://ui.perfetto.dev\n", len(spans), *traceOut)
	}

	for _, r := range res.Runs {
		if r.Err != "" {
			fatal(fmt.Errorf("run %s/%s seed %d: %s", r.Key.Scenario, r.Key.Variant, r.Key.Seed, r.Err))
		}
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "dispatchd:", err)
	os.Exit(1)
}
