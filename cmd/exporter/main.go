// Command exporter serves a live simulated fleet's metrics in Prometheus
// text format over HTTP — the vROps/Nova exporter stand-in of Sec. 4. The
// simulation clock advances in real time at a configurable speedup, so a
// real Prometheus (or cmd/analyze after scraping) can pull from it.
//
// Usage:
//
//	exporter [-addr :9100] [-speedup 3600] [-scale 0.02] [-vms 400] [-timeout D]
//
// -timeout serves for the given wall-clock duration and then shuts down
// gracefully (useful for scrape smoke tests); 0 serves forever.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"time"

	"sapsim/internal/esx"
	"sapsim/internal/exporter"
	"sapsim/internal/nova"
	"sapsim/internal/placement"
	"sapsim/internal/sim"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
	"sapsim/internal/workload"
)

func main() {
	var (
		addr    = flag.String("addr", ":9100", "listen address")
		speedup = flag.Float64("speedup", 3600, "simulated seconds per wall-clock second")
		scale   = flag.Float64("scale", 0.02, "region scale")
		vms     = flag.Int("vms", 400, "VM population")
		seed    = flag.Uint64("seed", 1, "random seed")
		timeout = flag.Duration("timeout", 0, "serve for this long, then shut down (0 = forever)")
	)
	flag.Parse()

	region, err := topology.Build(topology.DefaultBuildSpec(*scale))
	if err != nil {
		fatal(err)
	}
	fleet := esx.NewFleet(region, esx.DefaultConfig())
	sched, err := nova.NewScheduler(fleet, placement.NewService(), nova.DefaultConfig())
	if err != nil {
		fatal(err)
	}

	// Place the initial population.
	spec := workload.DefaultSpec(*vms, *seed)
	var live []*vmmodel.VM
	for _, in := range workload.NewGenerator(spec).Generate() {
		if in.ArriveAt > 0 {
			continue
		}
		if _, err := sched.Schedule(&nova.RequestSpec{VM: in.VM}, 0); err == nil {
			live = append(live, in.VM)
		}
	}
	fmt.Printf("fleet up: %d nodes, %d VMs placed\n", region.NodeCount(), len(live))

	start := time.Now()
	exp := &exporter.Exporter{
		Fleet: fleet,
		VMs:   func() []*vmmodel.VM { return live },
		Clock: func() sim.Time {
			return sim.Time(float64(time.Since(start)) * *speedup)
		},
		Interval: 5 * sim.Minute,
	}
	mux := http.NewServeMux()
	mux.Handle("/metrics", exp.Handler())
	server := &http.Server{Addr: *addr, Handler: mux}
	if *timeout > 0 {
		time.AfterFunc(*timeout, func() {
			fmt.Printf("exporter: %v elapsed, shutting down\n", *timeout)
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			_ = server.Shutdown(ctx)
		})
	}
	fmt.Printf("serving Prometheus metrics on %s/metrics (speedup %.0fx)\n", *addr, *speedup)
	if err := server.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "exporter:", err)
	os.Exit(1)
}
