// Command repro regenerates every table and figure of the paper from one
// simulated 30-day observation window, printing the paper's claim next to
// the measured values for side-by-side comparison.
//
// Usage:
//
//	repro [-seed N] [-scale F] [-vms N] [-days N] [-id fig5] [-out DIR]
//
// With -id, only the named experiment runs; otherwise all of them.
// With -out, each artifact's full text is written to DIR/<id>.txt.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"sapsim"
	"sapsim/internal/sim"
)

func main() {
	var (
		seed  = flag.Uint64("seed", 2024, "random seed (runs are deterministic per seed)")
		scale = flag.Float64("scale", 0.05, "region scale (1.0 = 1,823 hypervisors)")
		vms   = flag.Int("vms", 2400, "initial VM population")
		days  = flag.Int("days", 30, "observation window in days")
		every = flag.Duration("sample", 5*time.Minute, "host sampling interval")
		id    = flag.String("id", "", "single experiment ID (fig5..fig15b, table1..table5)")
		out   = flag.String("out", "", "directory to write full artifact text files")
	)
	flag.Parse()

	cfg := sapsim.DefaultConfig(*seed)
	cfg.Scale = *scale
	cfg.VMs = *vms
	cfg.Days = *days
	cfg.SampleEvery = sim.Time(*every)

	fmt.Printf("running %d-day simulation: scale=%.2f (%s), %d VMs, seed %d\n",
		cfg.Days, cfg.Scale, "region 9 replica", cfg.VMs, cfg.Seed)
	start := time.Now()
	res, err := sapsim.Run(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("simulated %d nodes, %d VM instances, %d samples in %v\n\n",
		res.Region.NodeCount(), len(res.VMs), res.Store.SampleCount(), time.Since(start).Round(time.Millisecond))

	experiments := sapsim.Experiments()
	if *id != "" {
		exp, ok := sapsim.ExperimentByID(*id)
		if !ok {
			fatal(fmt.Errorf("unknown experiment %q", *id))
		}
		experiments = []sapsim.Experiment{exp}
	}

	for _, exp := range experiments {
		art, err := exp.Compute(res)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", exp.ID, err))
		}
		fmt.Printf("=== %s: %s\n", exp.ID, exp.Title)
		fmt.Printf("    paper:    %s\n", exp.PaperClaim)
		fmt.Printf("    measured: %s\n", formatValues(art.Values))
		if *out == "" && *id != "" {
			fmt.Println()
			fmt.Println(art.Text)
		}
		if *out != "" {
			path := filepath.Join(*out, exp.ID+".txt")
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fatal(err)
			}
			if err := os.WriteFile(path, []byte(art.Text), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("    written:  %s\n", path)
		}
		fmt.Println()
	}
}

func formatValues(values map[string]float64) string {
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += "  "
		}
		s += fmt.Sprintf("%s=%.3g", k, values[k])
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
