// Command repro regenerates every table and figure of the paper from one
// simulated 30-day observation window, printing the paper's claim next to
// the measured values for side-by-side comparison.
//
// Usage:
//
//	repro [-seed N] [-scale F] [-vms N] [-days N] [-id fig5] [-only REGEXP]
//	      [-timeout D] [-out DIR]
//
// With -id, only the named experiment runs; -only selects every experiment
// whose ID matches the regexp (e.g. -only 'fig1[0-3]' or -only table), so a
// single figure can be regenerated without computing all 18 artifacts.
// With -out, each artifact's full text is written to DIR/<id>.txt.
// -timeout bounds the wall-clock simulation time.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"time"

	"sapsim"
	"sapsim/internal/sim"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 2024, "random seed (runs are deterministic per seed)")
		scale    = flag.Float64("scale", 0.05, "region scale (1.0 = 1,823 hypervisors)")
		vms      = flag.Int("vms", 2400, "initial VM population")
		days     = flag.Int("days", 30, "observation window in days")
		every    = flag.Duration("sample", 5*time.Minute, "host sampling interval")
		id       = flag.String("id", "", "single experiment ID (fig5..fig15b, table1..table5)")
		only     = flag.String("only", "", "regexp over experiment IDs; only matches are computed")
		timeout  = flag.Duration("timeout", 0, "wall-clock limit for the simulation (0 = none)")
		progress = flag.Bool("progress", true, "print per-day progress to stderr")
		out      = flag.String("out", "", "directory to write full artifact text files")
	)
	flag.Parse()

	cfg := sapsim.DefaultConfig(*seed)
	cfg.Scale = *scale
	cfg.VMs = *vms
	cfg.Days = *days
	cfg.SampleEvery = sim.Time(*every)

	experiments, err := selectExperiments(*id, *only)
	if err != nil {
		fatal(err)
	}

	fmt.Printf("running %d-day simulation: scale=%.2f (%s), %d VMs, seed %d\n",
		cfg.Days, cfg.Scale, "region 9 replica", cfg.VMs, cfg.Seed)
	start := time.Now()

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	opts := []sapsim.Option{sapsim.WithContext(ctx)}
	if *progress {
		opts = append(opts, sapsim.WithObserver(sapsim.LogDailyProgress(os.Stderr, "repro")))
	}
	session, err := sapsim.NewSession(cfg, opts...)
	if err != nil {
		fatal(err)
	}
	defer session.Close()
	if err := session.RunToCompletion(); err != nil {
		if ctx.Err() != nil {
			fatal(fmt.Errorf("timed out after %v at simulated %s: %w", *timeout, session.Now(), err))
		}
		fatal(err)
	}
	res, err := session.Result()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("simulated %d nodes, %d VM instances, %d samples in %v\n\n",
		res.Region.NodeCount(), len(res.VMs), res.Store.SampleCount(), time.Since(start).Round(time.Millisecond))

	for _, exp := range experiments {
		art, err := exp.Compute(res)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", exp.ID, err))
		}
		fmt.Printf("=== %s: %s\n", exp.ID, exp.Title)
		fmt.Printf("    paper:    %s\n", exp.PaperClaim)
		fmt.Printf("    measured: %s\n", formatValues(art.Values))
		if *out == "" && len(experiments) == 1 {
			fmt.Println()
			fmt.Println(art.Text)
		}
		if *out != "" {
			path := filepath.Join(*out, exp.ID+".txt")
			if err := os.MkdirAll(*out, 0o755); err != nil {
				fatal(err)
			}
			if err := os.WriteFile(path, []byte(art.Text), 0o644); err != nil {
				fatal(err)
			}
			fmt.Printf("    written:  %s\n", path)
		}
		fmt.Println()
	}
}

// selectExperiments resolves -id / -only to the experiment subset, in paper
// order. The flags are mutually exclusive.
func selectExperiments(id, only string) ([]sapsim.Experiment, error) {
	if id != "" && only != "" {
		return nil, fmt.Errorf("-id and -only are mutually exclusive")
	}
	if id != "" {
		exp, ok := sapsim.ExperimentByID(id)
		if !ok {
			return nil, fmt.Errorf("unknown experiment %q", id)
		}
		return []sapsim.Experiment{exp}, nil
	}
	all := sapsim.Experiments()
	if only == "" {
		return all, nil
	}
	re, err := regexp.Compile(only)
	if err != nil {
		return nil, fmt.Errorf("bad -only regexp: %w", err)
	}
	var picked []sapsim.Experiment
	for _, exp := range all {
		if re.MatchString(exp.ID) {
			picked = append(picked, exp)
		}
	}
	if len(picked) == 0 {
		return nil, fmt.Errorf("-only %q matches no experiment IDs", only)
	}
	return picked, nil
}

func formatValues(values map[string]float64) string {
	keys := make([]string, 0, len(values))
	for k := range values {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	s := ""
	for i, k := range keys {
		if i > 0 {
			s += "  "
		}
		s += fmt.Sprintf("%s=%.3g", k, values[k])
	}
	return s
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "repro:", err)
	os.Exit(1)
}
