// Command sapsim runs a full simulation of the SAP Cloud Infrastructure
// regional deployment and exports the resulting telemetry as the anonymized
// CSV dataset (the Zenodo-artifact equivalent).
//
// Usage:
//
//	sapsim [-seed N] [-scale F] [-vms N] [-days N] [-timeout D] -o dataset.csv
//
// -timeout bounds the wall-clock run time; an exceeded deadline cancels the
// simulation cleanly mid-tick. -progress streams per-day progress to
// stderr.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"sapsim"
	"sapsim/internal/dataset"
	"sapsim/internal/events"
	"sapsim/internal/sim"
	"sapsim/internal/vmmodel"
)

func main() {
	var (
		seed     = flag.Uint64("seed", 2024, "random seed")
		scale    = flag.Float64("scale", 0.05, "region scale (1.0 = 1,823 hypervisors)")
		vms      = flag.Int("vms", 2400, "initial VM population")
		days     = flag.Int("days", 30, "observation window in days")
		every    = flag.Duration("sample", 5*time.Minute, "host sampling interval")
		timeout  = flag.Duration("timeout", 0, "wall-clock limit for the simulation (0 = none)")
		progress = flag.Bool("progress", true, "print per-day progress to stderr")
		out      = flag.String("o", "dataset.csv", "output CSV path")
		evOut    = flag.String("events", "", "also export the scheduling event stream to this CSV")
		flOut    = flag.String("flavors", "", "also export the flavor catalog to this CSV")
		salt     = flag.String("salt", "sap-cloud-dataset", "anonymization salt")
		raw      = flag.Bool("raw", false, "skip anonymization (keep entity names)")
	)
	flag.Parse()

	cfg := sapsim.DefaultConfig(*seed)
	cfg.Scale = *scale
	cfg.VMs = *vms
	cfg.Days = *days
	cfg.SampleEvery = sim.Time(*every)

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}
	sessOpts := []sapsim.Option{sapsim.WithContext(ctx)}
	if *progress {
		sessOpts = append(sessOpts, sapsim.WithObserver(sapsim.LogDailyProgress(os.Stderr, "sapsim")))
	}

	start := time.Now()
	session, err := sapsim.NewSession(cfg, sessOpts...)
	if err != nil {
		fatal(err)
	}
	defer session.Close()
	if err := session.RunToCompletion(); err != nil {
		if ctx.Err() != nil {
			fatal(fmt.Errorf("timed out after %v at simulated %s: %w", *timeout, session.Now(), err))
		}
		fatal(err)
	}
	res, err := session.Result()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("simulated %d days: %d nodes, %d VMs, %d series, %d samples (%v)\n",
		cfg.Days, res.Region.NodeCount(), len(res.VMs),
		res.Store.SeriesCount(), res.Store.SampleCount(), time.Since(start).Round(time.Millisecond))
	fmt.Printf("scheduler: %d placed, %d failed, %d retries; DRS migrations: %d\n",
		res.SchedStats.Scheduled, res.SchedStats.Failed, res.SchedStats.Retries, res.DRSMigrations)

	f, err := os.Create(*out)
	if err != nil {
		fatal(err)
	}
	defer f.Close()
	w := bufio.NewWriterSize(f, 1<<20)
	opts := dataset.WriteOptions{}
	if !*raw {
		opts.Anonymizer = dataset.NewAnonymizer(*salt)
		opts.AnonymizeLabels = dataset.DefaultAnonymizedLabels()
	}
	if err := dataset.Write(w, res.Store, opts); err != nil {
		fatal(err)
	}
	if err := w.Flush(); err != nil {
		fatal(err)
	}
	info, err := f.Stat()
	if err != nil {
		fatal(err)
	}
	fmt.Printf("dataset written: %s (%.1f MiB)\n", *out, float64(info.Size())/(1<<20))

	if *evOut != "" {
		ef, err := os.Create(*evOut)
		if err != nil {
			fatal(err)
		}
		defer ef.Close()
		ew := bufio.NewWriter(ef)
		// Avoid handing WriteCSV a typed-nil interface when -raw is set.
		var anon events.Anonymizer
		if opts.Anonymizer != nil {
			anon = opts.Anonymizer
		}
		if err := res.Events.WriteCSV(ew, anon); err != nil {
			fatal(err)
		}
		if err := ew.Flush(); err != nil {
			fatal(err)
		}
		fmt.Printf("events written: %s (%d events)\n", *evOut, res.Events.Len())
	}

	if *flOut != "" {
		ff, err := os.Create(*flOut)
		if err != nil {
			fatal(err)
		}
		defer ff.Close()
		if err := dataset.WriteFlavors(ff, vmmodel.Catalog()); err != nil {
			fatal(err)
		}
		fmt.Printf("flavors written: %s\n", *flOut)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sapsim:", err)
	os.Exit(1)
}
