// Command simworker is the worker half of the dispatcher split (the simd
// of SIMQ): it books sweep cells from a dispatchd, runs each through the
// step-driven sapsim Session, streams coalesced Progress/Checkpoint events
// back as lease-renewing heartbeats, uploads every artifact body into the
// dispatcher's content-addressed store (deduplicated: a HEAD probe skips
// blobs the store already holds), and completes each cell with its
// metrics plus digests. Workers are stateless: start as many as you have
// machines, kill them freely — a dead worker's cell re-books after its
// lease expires.
//
// -jobs advertises the worker's capacity on every booking: the dispatcher
// weights bookings by it, leasing an N-job worker up to N cells at once,
// so bigger machines drain the matrix proportionally faster.
//
// Usage:
//
//	simworker -dispatcher http://host:9090 [-id NAME] [-jobs N] \
//	          [-heartbeat D] [-poll D] [-timeout D] [-metrics ADDR] [-quiet]
//
// -metrics starts an HTTP listener serving the worker's fleet metrics
// (in-flight vs capacity, per-cell wall time, heartbeat RTT, upload dedup)
// in Prometheus exposition format at GET /metrics, scrapeable by the
// in-tree scrape/promql stack alongside the dispatcher's endpoint. Each
// completed cell also feeds its engine self-profile into per-phase
// worker_engine_phase_seconds histograms (labeled {worker, phase}), so a
// scrape shows live where the fleet's simulation time is going — the
// same attribution analyze -engprof renders post-hoc.
//
// Beyond the artifact bodies, every completed cell ships its engine
// self-profile blob into the store; the profile pointer survives the
// cell's completion and any dispatcher crash, so sweep -engprof can
// export per-cell attribution even from a resumed sweep.
//
// The worker exits 0 once the dispatcher reports the sweep drained.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"sapsim/internal/dispatch"
	"sapsim/internal/fleetmetrics"
	"sapsim/internal/pprofserve"
)

func main() {
	var (
		dispatcher = flag.String("dispatcher", "", "dispatcher base URL, e.g. http://host:9090 (required)")
		id         = flag.String("id", "", "worker id (default host:pid)")
		jobs       = flag.Int("jobs", 1, "cells to run concurrently")
		heartbeat  = flag.Duration("heartbeat", 2*time.Second, "heartbeat cadence (must be well under the dispatcher lease)")
		poll       = flag.Duration("poll", 500*time.Millisecond, "idle re-poll interval when no cell is free")
		timeout    = flag.Duration("timeout", 0, "wall-clock limit (0 = run until drained)")
		metrics    = flag.String("metrics", "", "serve Prometheus metrics at this address (e.g. 127.0.0.1:9191; empty = off)")
		pprofAddr  = flag.String("pprof", "", "serve net/http/pprof at this address (e.g. 127.0.0.1:6061; empty = off)")
		snapshots  = flag.Bool("snapshots", true, "upload mid-run engine snapshots so a re-booked cell warm-resumes instead of restarting from t=0")
		quiet      = flag.Bool("quiet", false, "suppress per-cell progress lines")
	)
	flag.Parse()
	if *dispatcher == "" {
		fmt.Fprintln(os.Stderr, "simworker: -dispatcher is required")
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if *pprofAddr != "" {
		bound, err := pprofserve.Serve(*pprofAddr)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simworker: pprof listener:", err)
			os.Exit(1)
		}
		fmt.Fprintf(os.Stderr, "simworker: pprof at http://%s/debug/pprof/\n", bound)
	}
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	w := &dispatch.Worker{
		Dispatcher:       *dispatcher,
		ID:               *id,
		Concurrency:      *jobs,
		HeartbeatEvery:   *heartbeat,
		Poll:             *poll,
		DisableSnapshots: !*snapshots,
	}
	if !*quiet {
		w.Logf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		}
	}
	if *metrics != "" {
		reg := fleetmetrics.NewRegistry()
		w.Metrics = reg
		ln, err := net.Listen("tcp", *metrics)
		if err != nil {
			fmt.Fprintln(os.Stderr, "simworker: metrics listener:", err)
			os.Exit(1)
		}
		mux := http.NewServeMux()
		mux.Handle("GET /metrics", reg.Handler())
		srv := &http.Server{Handler: mux}
		go func() { _ = srv.Serve(ln) }()
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "simworker: fleet metrics at http://%s/metrics\n", ln.Addr())
	}
	if err := w.Run(ctx); err != nil && !errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "simworker:", err)
		os.Exit(1)
	}
}
