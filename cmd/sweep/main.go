// Command sweep runs a (scenario × scheduler-config × seed) matrix across a
// bounded worker pool and prints a comparative report of per-scenario
// deltas against the baseline for the headline artifacts: packing
// efficiency, scheduling latency proxy, and migration counts.
//
// Usage:
//
//	sweep [-scale F] [-vms N] [-days N] [-sample D] \
//	      [-scenarios a,b,...] [-variants x,y,...] [-seeds 7,11,...] \
//	      [-workers N] [-timeout D] [-out DIR] [-list]
//
// Scenario and variant names come from the builtin libraries; -list prints
// them. Runs are fully deterministic per seed, independent of -workers.
// Each cell runs as its own sapsim.Session: -timeout cancels in-flight
// cells mid-run (they report the cancellation in the run table), and
// -progress streams per-cell completions to stderr.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"sapsim/internal/core"
	"sapsim/internal/scenario"
	"sapsim/internal/sim"
)

func main() {
	var (
		scale     = flag.Float64("scale", 0.02, "region scale (1.0 = 1,823 hypervisors)")
		vms       = flag.Int("vms", 960, "initial VM population per run")
		days      = flag.Int("days", 10, "observation window in days")
		sample    = flag.Duration("sample", 15*time.Minute, "host sampling interval")
		scenarios = flag.String("scenarios", "", "comma-separated scenario names (default: all builtin)")
		variants  = flag.String("variants", "default", "comma-separated variant names (\"all\" = every builtin)")
		seeds     = flag.String("seeds", "2024", "comma-separated seeds")
		workers   = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		timeout   = flag.Duration("timeout", 0, "wall-clock limit for the whole sweep (0 = none)")
		progress  = flag.Bool("progress", true, "print per-cell completions to stderr")
		out       = flag.String("out", "", "directory for report.txt and runs.csv")
		list      = flag.Bool("list", false, "list builtin scenarios and variants, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("scenarios:")
		for _, sc := range scenario.Builtin() {
			fmt.Printf("  %-18s %s\n", sc.Name, sc.Description)
		}
		fmt.Println("variants:")
		for _, v := range scenario.BuiltinVariants() {
			fmt.Printf("  %s\n", v.Name)
		}
		return
	}

	base := core.DefaultConfig(2024)
	base.Scale = *scale
	base.VMs = *vms
	base.Days = *days
	base.SampleEvery = sim.Time(*sample)

	m := scenario.Matrix{Base: base, Workers: *workers}

	if *scenarios == "" {
		m.Scenarios = scenario.Builtin()
	} else {
		for _, name := range splitList(*scenarios) {
			sc, err := scenario.ByName(name)
			if err != nil {
				fatal(err)
			}
			m.Scenarios = append(m.Scenarios, sc)
		}
	}

	if *variants == "all" {
		m.Variants = scenario.BuiltinVariants()
	} else {
		for _, name := range splitList(*variants) {
			v, err := scenario.VariantByName(name)
			if err != nil {
				fatal(err)
			}
			m.Variants = append(m.Variants, v)
		}
	}

	for _, s := range splitList(*seeds) {
		seed, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			fatal(fmt.Errorf("bad seed %q: %w", s, err))
		}
		m.Seeds = append(m.Seeds, seed)
	}

	if *timeout > 0 {
		ctx, cancel := context.WithTimeout(context.Background(), *timeout)
		defer cancel()
		m.Context = ctx
	}
	total := len(m.Scenarios) * len(m.Variants) * len(m.Seeds)
	if *progress {
		var done atomic.Int64
		m.OnCell = func(u scenario.CellUpdate) {
			switch u.State {
			case scenario.CellFinished, scenario.CellFailed, scenario.CellCanceled:
				fmt.Fprintf(os.Stderr, "sweep: [%d/%d] %s/%s seed %d: %s\n",
					done.Add(1), total, u.Key.Scenario, u.Key.Variant, u.Key.Seed, u.State)
			}
		}
	}

	fmt.Printf("sweeping %d scenarios x %d variants x %d seeds = %d runs (scale %.2f, %d VMs, %d days)\n",
		len(m.Scenarios), len(m.Variants), len(m.Seeds), total, *scale, *vms, *days)
	start := time.Now()
	res, err := scenario.Sweep(m)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("completed in %v\n\n", time.Since(start).Round(time.Millisecond))

	text := scenario.Comparative(res)
	fmt.Print(text)

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*out, "report.txt"), []byte(text), 0o644); err != nil {
			fatal(err)
		}
		if err := os.WriteFile(filepath.Join(*out, "runs.csv"), []byte(scenario.RunsCSV(res)), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("\nwrote %s and %s\n", filepath.Join(*out, "report.txt"), filepath.Join(*out, "runs.csv"))
	}

	for _, r := range res.Runs {
		if r.Err != "" {
			fatal(fmt.Errorf("run %s/%s seed %d: %s", r.Key.Scenario, r.Key.Variant, r.Key.Seed, r.Err))
		}
	}
}

func splitList(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
