// Command sweep runs a (scenario × scheduler-config × seed) matrix and
// prints a comparative report of per-scenario deltas against the baseline
// for the headline artifacts: packing efficiency, scheduling latency
// proxy, and migration counts.
//
// Three execution modes share one matrix definition:
//
//   - default: in-process across a bounded worker pool (-workers).
//   - -dispatch ADDR: serve the matrix as a durable dispatcher at ADDR and
//     let simworker processes (this machine or others) drain it. Every
//     state transition lands in a journal (-journal, default OUT/journal),
//     so a killed sweep resumes.
//   - -resume DIR: reopen an interrupted dispatched sweep — finished cells
//     keep their recorded results, in-flight ones re-run. Without
//     -dispatch the remaining cells run in-process over loopback HTTP;
//     with it they are served to external workers again.
//
// All three produce byte-identical reports for the same matrix (the
// dispatch package's tests enforce it).
//
// Usage:
//
//	sweep [-scale F] [-vms N] [-days N] [-sample D] \
//	      [-scenarios a,b,...] [-variants x,y,...] [-seeds 7,11,...] \
//	      [-workers N] [-timeout D] [-out DIR] [-diff] [-list] [-branch] \
//	      [-dispatch ADDR] [-resume DIR] [-journal DIR] [-bundle DIR] \
//	      [-trace FILE] [-engprof DIR]
//
// -engprof DIR exports each cell's engine self-profile — the always-on
// per-phase wall-time/work attribution the core collects as it runs — as
// one JSON file per cell (scenario__variant__seed.engprof.json), ready for
// analyze -engprof. In-process sweeps write the files as cells finish; the
// dispatched and resumed modes read the blobs the workers shipped into the
// content-addressed store (profile pointers survive completion and
// kill+resume, so a resumed sweep exports attribution for every cell).
//
// -trace FILE exports the sweep's cell-lifecycle trace as Chrome
// trace-event JSON (load it at https://ui.perfetto.dev): per cell, a root
// span covering queued→done with queue-wait and per-attempt child spans.
// In the dispatched and resumed modes the trace reconstructs from the
// journal and includes every worker-shipped engine-phase span; all three
// modes emit the same span identity scheme.
//
// Scenario and variant names come from the builtin libraries; -list prints
// them. Runs are fully deterministic per seed, independent of -workers and
// of how cells are distributed. -diff fingerprints every cell (SHA-256 per
// artifact, all 18) and prints which artifacts changed versus the baseline
// scenario for the same variant and seed.
//
// -bundle DIR materializes the finished sweep as a browsable report
// bundle: index.html, the comparative reports, one baseline-vs-scenario
// page per scenario, and every cell's artifact bodies, each read out of
// the content-addressed store with digest verification (SHA256SUMS in the
// bundle re-verifies offline). In the dispatched and resumed modes the
// bodies come from the store the workers uploaded into, under the journal
// directory; in the in-process mode they are captured during the sweep —
// all three produce byte-identical bundles for the same matrix.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"sapsim"
	"sapsim/internal/artifact"
	"sapsim/internal/core"
	"sapsim/internal/dispatch"
	"sapsim/internal/scenario"
	"sapsim/internal/sim"
	"sapsim/internal/trace"
)

func main() {
	var (
		scale        = flag.Float64("scale", 0.02, "region scale (1.0 = 1,823 hypervisors)")
		vms          = flag.Int("vms", 960, "initial VM population per run")
		days         = flag.Int("days", 10, "observation window in days")
		sample       = flag.Duration("sample", 15*time.Minute, "host sampling interval")
		scenarioList = flag.String("scenarios", "", "comma-separated scenario names (default: all builtin)")
		variantList  = flag.String("variants", "default", "comma-separated variant names (\"all\" = every builtin)")
		seedList     = flag.String("seeds", "2024", "comma-separated seeds")
		workers      = flag.Int("workers", 0, "worker pool size (0 = GOMAXPROCS)")
		timeout      = flag.Duration("timeout", 0, "wall-clock limit for the whole sweep (0 = none)")
		progress     = flag.Bool("progress", true, "print per-cell completions to stderr")
		out          = flag.String("out", "", "directory for report.txt and runs.csv")
		diff         = flag.Bool("diff", false, "fingerprint all artifacts per cell and print per-cell diffs vs the baseline scenario")
		list         = flag.Bool("list", false, "list builtin scenarios and variants, then exit")
		dispatchTo   = flag.String("dispatch", "", "serve the matrix to external simworkers at this address instead of running in-process")
		resumeDir    = flag.String("resume", "", "resume an interrupted dispatched sweep from this journal directory")
		journalDir   = flag.String("journal", "", "journal directory for -dispatch (default: OUT/journal, or a temp dir)")
		checkpoint   = flag.Duration("checkpoint", 6*time.Hour, "simulated-time checkpoint cadence for dispatched workers")
		branch       = flag.Bool("branch", false, "warm-fork cells sharing a (variant, seed) from one snapshot of their common prefix (in-process mode only; byte-identical to a cold sweep)")
		bundleDir    = flag.String("bundle", "", "materialize a digest-verified report bundle (artifact bodies included) into this directory")
		traceOut     = flag.String("trace", "", "export the sweep's cell-lifecycle trace (Chrome trace-event JSON, Perfetto-loadable) to this file")
		engprofDir   = flag.String("engprof", "", "export each cell's engine self-profile as JSON into this directory (for analyze -engprof)")
	)
	flag.Parse()

	if *list {
		fmt.Println("scenarios:")
		for _, sc := range scenario.Builtin() {
			fmt.Printf("  %-20s %s\n", sc.Name, sc.Description)
		}
		fmt.Println("variants:")
		for _, v := range scenario.BuiltinVariants() {
			fmt.Printf("  %s\n", v.Name)
		}
		return
	}

	ctx := context.Background()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	// -resume ignores the matrix flags entirely: the journal header's spec
	// is authoritative for an interrupted sweep, so a resume must not be
	// blocked by (or silently diverge from) whatever flags this invocation
	// happens to carry.
	parseSpec := func() dispatch.Spec {
		base := core.DefaultConfig(2024)
		base.Scale = *scale
		base.VMs = *vms
		base.Days = *days
		base.SampleEvery = sim.Time(*sample)
		spec, err := dispatch.ParseSpec(base, *scenarioList, *variantList, *seedList, sim.Time(*checkpoint))
		if err != nil {
			fatal(err)
		}
		return spec
	}

	var res *scenario.SweepResult
	var err error
	start := time.Now()
	switch {
	case *resumeDir != "":
		res, err = resumeSweep(ctx, *resumeDir, *dispatchTo, *workers, *progress, *bundleDir, *traceOut, *engprofDir)
	case *dispatchTo != "":
		res, err = serveSweep(ctx, parseSpec(), *dispatchTo, pickJournalDir(*journalDir, *out), *progress, *bundleDir, *traceOut, *engprofDir)
	default:
		res, err = localSweep(ctx, parseSpec(), *workers, *diff, *progress, *branch, *bundleDir, *traceOut, *engprofDir)
	}
	if err != nil {
		fatal(err)
	}
	fmt.Printf("completed in %v\n\n", time.Since(start).Round(time.Millisecond))

	text := scenario.Comparative(res)
	fmt.Print(text)
	// Dispatched cells always carry digests; print the diff whenever we
	// have them or the user asked.
	diffText := ""
	if *diff || *dispatchTo != "" || *resumeDir != "" {
		diffText = scenario.ArtifactDiff(res)
		fmt.Print(diffText)
	}

	if *out != "" {
		if err := os.MkdirAll(*out, 0o755); err != nil {
			fatal(err)
		}
		files := map[string]string{"report.txt": text, "runs.csv": scenario.RunsCSV(res)}
		if diffText != "" {
			files["artifact_diff.txt"] = diffText
		}
		var wrote []string
		for name, content := range files {
			if err := os.WriteFile(filepath.Join(*out, name), []byte(content), 0o644); err != nil {
				fatal(err)
			}
			wrote = append(wrote, name)
		}
		fmt.Printf("\nwrote %s to %s\n", strings.Join(wrote, ", "), *out)
	}

	for _, r := range res.Runs {
		if r.Err != "" {
			fatal(fmt.Errorf("run %s/%s seed %d: %s", r.Key.Scenario, r.Key.Variant, r.Key.Seed, r.Err))
		}
	}
}

// localSweep is the in-process path: the spec expanded into the bounded
// worker pool of scenario.Sweep — the same expansion the dispatched path
// serves cell by cell. With a bundle directory, every cell's artifact
// bodies are captured into a content-addressed store as the sweep runs
// (shared bodies stored once) and the bundle materializes at the end —
// byte-identical to the bundle a dispatched sweep of the same matrix
// produces.
func localSweep(ctx context.Context, spec dispatch.Spec, workers int,
	fingerprint, progress, branch bool, bundleDir, traceFile, engprofDir string) (*scenario.SweepResult, error) {
	m, err := spec.Matrix()
	if err != nil {
		return nil, err
	}
	m.Workers = workers
	m.Context = ctx
	m.Branch = branch
	var store *artifact.Store
	if bundleDir != "" {
		casDir, err := os.MkdirTemp("", "sweep-cas-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(casDir)
		// Scratch store: the blobs only live until the bundle materializes,
		// so skip the durable store's per-blob fsyncs.
		if store, err = artifact.OpenScratch(casDir); err != nil {
			return nil, err
		}
		m.Fingerprint = func(res *core.Result) (map[string]string, error) {
			bodies, err := sapsim.ArtifactSet(res)
			if err != nil {
				return nil, err
			}
			// The same render → digest → store sequence a dispatched
			// worker performs, minus the wire.
			return store.Capture(bodies)
		}
	} else if fingerprint {
		m.Fingerprint = func(res *core.Result) (map[string]string, error) {
			return sapsim.ArtifactDigests(res)
		}
	}
	// Profile export hangs off OnResult — deliberately not Fingerprint —
	// so the wall-clock-dependent profile bytes never enter the
	// byte-identity contract the three execution modes share.
	var profErr error
	var profMu sync.Mutex
	profiles := 0
	if engprofDir != "" {
		if err := os.MkdirAll(engprofDir, 0o755); err != nil {
			return nil, err
		}
		m.OnResult = func(key scenario.Key, res *core.Result) {
			if res.Profile == nil {
				return
			}
			blob, err := sapsim.EncodeProfileBytes(res.Profile)
			if err == nil {
				err = os.WriteFile(filepath.Join(engprofDir, profileFileName(key)), blob, 0o644)
			}
			profMu.Lock()
			if err != nil && profErr == nil {
				profErr = fmt.Errorf("engprof export %s/%s seed %d: %w", key.Scenario, key.Variant, key.Seed, err)
			}
			profiles++
			profMu.Unlock()
		}
	}
	total := len(m.Scenarios) * len(m.Variants) * len(m.Seeds)
	var callbacks []func(scenario.CellUpdate)
	var tracer *localTracer
	if traceFile != "" {
		tracer = newLocalTracer()
		callbacks = append(callbacks, tracer.onCell)
	}
	if progress {
		var done atomic.Int64
		callbacks = append(callbacks, func(u scenario.CellUpdate) {
			switch u.State {
			case scenario.CellFinished, scenario.CellFailed, scenario.CellCanceled:
				fmt.Fprintf(os.Stderr, "sweep: [%d/%d] %s/%s seed %d: %s\n",
					done.Add(1), total, u.Key.Scenario, u.Key.Variant, u.Key.Seed, u.State)
			}
		})
	}
	if len(callbacks) > 0 {
		m.OnCell = func(u scenario.CellUpdate) {
			for _, cb := range callbacks {
				cb(u)
			}
		}
	}
	fmt.Printf("sweeping %d scenarios x %d variants x %d seeds = %d runs in-process\n",
		len(m.Scenarios), len(m.Variants), len(m.Seeds), total)
	res, err := scenario.Sweep(m)
	if err != nil {
		return nil, err
	}
	if bundleDir != "" {
		if err := writeBundle(bundleDir, res, store); err != nil {
			return nil, err
		}
	}
	if tracer != nil {
		if err := exportSpans(traceFile, tracer.spans()); err != nil {
			return nil, err
		}
	}
	if engprofDir != "" {
		if profErr != nil {
			return nil, profErr
		}
		fmt.Fprintf(os.Stderr, "sweep: exported %d engine profiles to %s\n", profiles, engprofDir)
	}
	return res, nil
}

// localTracer derives the in-process sweep's cell-lifecycle spans from
// OnCell callbacks, using the same trace and span IDs the dispatched
// modes derive from the journal — the exported trace looks identical in
// Perfetto regardless of execution mode.
type localTracer struct {
	mu    sync.Mutex
	start time.Time
	cells map[int]*localCell
}

type localCell struct {
	key        scenario.Key
	start, end time.Time
	outcome    string
}

func newLocalTracer() *localTracer {
	return &localTracer{start: time.Now(), cells: map[int]*localCell{}}
}

// onCell runs on the sweep's worker goroutines; keep it cheap.
func (lt *localTracer) onCell(u scenario.CellUpdate) {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	c := lt.cells[u.Index]
	if c == nil {
		c = &localCell{key: u.Key}
		lt.cells[u.Index] = c
	}
	switch u.State {
	case scenario.CellStarted:
		c.start = time.Now()
	case scenario.CellFinished:
		c.end, c.outcome = time.Now(), "done"
	case scenario.CellFailed:
		c.end, c.outcome = time.Now(), "failed"
	case scenario.CellCanceled:
		c.end, c.outcome = time.Now(), "canceled"
	}
}

func (lt *localTracer) spans() []trace.Span {
	lt.mu.Lock()
	defer lt.mu.Unlock()
	var out []trace.Span
	for idx, c := range lt.cells {
		start, end := c.start, c.end
		if start.IsZero() {
			start = lt.start
		}
		if end.IsZero() {
			end = start
		}
		tid := dispatch.CellTraceID(c.key)
		cell := fmt.Sprintf("cell-%d", idx)
		out = append(out,
			trace.Span{Trace: tid, ID: cell, Name: "cell",
				Start: trace.Micros(lt.start), End: trace.Micros(end)},
			trace.Span{Trace: tid, ID: cell + "/q1", Parent: cell, Name: "queue-wait",
				Start: trace.Micros(lt.start), End: trace.Micros(start)},
			trace.Span{Trace: tid, ID: cell + "/a1", Parent: cell, Name: "attempt",
				Start: trace.Micros(start), End: trace.Micros(end),
				Attrs: map[string]string{"worker": "in-process", "outcome": c.outcome}},
		)
	}
	return out
}

// serveSweep is the dispatcher path: journal the matrix and serve it to
// external simworkers until drained.
func serveSweep(ctx context.Context, spec dispatch.Spec, addr, journalDir string,
	progress bool, bundleDir, traceFile, engprofDir string) (*scenario.SweepResult, error) {
	q, err := dispatch.NewQueue(journalDir, spec, dispatch.QueueOptions{})
	if err != nil {
		return nil, err
	}
	defer q.Close()
	res, err := serveQueue(ctx, q, addr, progress)
	if err == nil && bundleDir != "" {
		err = writeBundle(bundleDir, res, q.Store())
	}
	if err == nil && traceFile != "" {
		err = exportJournalTrace(traceFile, q.Dir())
	}
	if err == nil && engprofDir != "" {
		err = exportQueueProfiles(engprofDir, q)
	}
	return res, err
}

// resumeSweep reopens a journal: with addr it serves the remaining cells
// to external workers, without it they run in-process over loopback. The
// workers re-upload any artifact bodies the resume audit found missing or
// damaged, so the bundle that materializes afterward is complete.
func resumeSweep(ctx context.Context, dir, addr string, workers int,
	progress bool, bundleDir, traceFile, engprofDir string) (*scenario.SweepResult, error) {
	q, err := dispatch.Resume(dir, dispatch.QueueOptions{})
	if err != nil {
		return nil, err
	}
	defer q.Close()
	fmt.Fprintf(os.Stderr, "sweep: %s\n", q.Recovered())
	var res *scenario.SweepResult
	if addr != "" {
		res, err = serveQueue(ctx, q, addr, progress)
	} else {
		opts := dispatch.LocalOptions{Workers: workers}
		if progress {
			opts.Logf = logfStderr
		}
		res, err = dispatch.RunLocal(ctx, q, opts)
	}
	if err == nil && bundleDir != "" {
		err = writeBundle(bundleDir, res, q.Store())
	}
	if err == nil && traceFile != "" {
		err = exportJournalTrace(traceFile, q.Dir())
	}
	if err == nil && engprofDir != "" {
		err = exportQueueProfiles(engprofDir, q)
	}
	return res, err
}

// profileFileName is the per-cell profile artifact name shared by the
// in-process and dispatched export paths (and parsed back by analyze).
func profileFileName(key scenario.Key) string {
	return fmt.Sprintf("%s__%s__%d.engprof.json", key.Scenario, key.Variant, key.Seed)
}

// exportQueueProfiles reads each terminal cell's self-profile blob out of
// the sweep's content-addressed store — where the workers shipped them,
// and where they outlive both cell completion and dispatcher crashes —
// and writes one JSON file per cell.
func exportQueueProfiles(dir string, q *dispatch.Queue) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	n := 0
	err := q.EachProfile(func(key scenario.Key, rec dispatch.ProfileRecord) error {
		blob, err := q.Store().Get(rec.Digest)
		if err != nil {
			return fmt.Errorf("engprof export %s/%s seed %d: %w", key.Scenario, key.Variant, key.Seed, err)
		}
		n++
		return os.WriteFile(filepath.Join(dir, profileFileName(key)), blob, 0o644)
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sweep: exported %d engine profiles to %s\n", n, dir)
	return nil
}

// exportJournalTrace reconstructs the sweep's full trace from the
// journal (dispatcher-derived lifecycle spans merged with every
// worker-shipped engine span) and exports it as Chrome trace-event JSON.
func exportJournalTrace(path, journalDir string) error {
	spans, err := dispatch.TraceFromJournal(journalDir)
	if err != nil {
		return err
	}
	return exportSpans(path, spans)
}

// exportSpans writes spans as a Chrome trace-event file.
func exportSpans(path string, spans []trace.Span) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := trace.WriteChromeTrace(f, spans); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "sweep: wrote trace (%d spans) to %s — load it at https://ui.perfetto.dev\n",
		len(spans), path)
	return nil
}

// writeBundle materializes the report bundle and prints what landed.
func writeBundle(dir string, res *scenario.SweepResult, store *artifact.Store) error {
	manifest, err := artifact.WriteBundle(dir, res, store)
	if err != nil {
		return fmt.Errorf("bundle: %w", err)
	}
	bodies := 0
	for _, c := range manifest.Cells {
		bodies += len(c.Artifacts)
	}
	blobs, _ := store.Len()
	fmt.Fprintf(os.Stderr, "sweep: bundled %d cells (%d artifact bodies, %d distinct blobs) into %s\n",
		len(manifest.Cells), bodies, blobs, dir)
	return nil
}

func serveQueue(ctx context.Context, q *dispatch.Queue, addr string, progress bool) (*scenario.SweepResult, error) {
	d := dispatch.NewDispatcher(q)
	if progress {
		d.Logf = logfStderr
	}
	serveCtx, stopServe := context.WithCancel(ctx)
	defer stopServe()
	bound, err := d.Serve(serveCtx, addr)
	if err != nil {
		return nil, err
	}
	fmt.Printf("sweeping %d cells via dispatcher at %s (journal %s)\n",
		len(q.Snapshot()), bound, filepath.Join(q.Dir(), dispatch.JournalName))
	fmt.Printf("point workers here:  simworker -dispatcher http://%s\n", bound)
	return d.WaitDrained(ctx, 0)
}

// pickJournalDir resolves the -journal default: OUT/journal when -out is
// set, otherwise a fresh temp dir (printed, so the sweep stays resumable).
func pickJournalDir(journal, out string) string {
	if journal != "" {
		return journal
	}
	if out != "" {
		return filepath.Join(out, "journal")
	}
	dir, err := os.MkdirTemp("", "sweep-journal-*")
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "sweep: journaling to %s (use -journal to choose; -resume %s to recover)\n", dir, dir)
	return dir
}

func logfStderr(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
