// Capacity planning: the proactive-management loop the paper's guidance
// sketches (Sec. 7) — fit a seasonal demand model to each building block's
// telemetry, forecast a week ahead, derive a workload-based overcommit
// recommendation, and flag the blocks that will run out of memory headroom
// first.
package main

import (
	"context"
	"fmt"
	"log"
	"sort"
	"time"

	"sapsim"
	"sapsim/internal/analysis"
	"sapsim/internal/exporter"
	"sapsim/internal/forecast"
	"sapsim/internal/promql"
	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
)

func main() {
	cfg := sapsim.DefaultConfig(21)
	cfg.Scale = 0.03
	cfg.VMs = 900
	cfg.Days = 14
	cfg.SampleEvery = 15 * sim.Minute
	cfg.VMSampleEvery = sim.Hour

	// A bounded, cancellable run: the context caps the wall-clock cost of
	// the planning loop (generous here; a 14-day window simulates in
	// seconds).
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()
	session, err := sapsim.NewSession(cfg, sapsim.WithContext(ctx))
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()
	if err := session.RunToCompletion(); err != nil {
		log.Fatal(err)
	}
	res, err := session.Result()
	if err != nil {
		log.Fatal(err)
	}
	horizon := cfg.Horizon()

	// 1. Seasonal demand forecasting per building block: average the
	// member-node CPU series and fit Holt-Winters with a daily period.
	fmt.Println("per-building-block CPU demand forecast (one week ahead):")
	fmt.Printf("%-18s %10s %12s %12s\n", "building block", "now (%)", "forecast (%)", "fit MAE")
	period := int(sim.Day / cfg.SampleEvery)
	type row struct {
		bb             string
		now, pred, mae float64
	}
	var rows []row
	engine := &promql.Engine{Store: res.Store}
	for _, bb := range res.Region.BBs() {
		series := res.Store.Select(exporter.MetricHostCPUUtil,
			telemetry.Matcher{Name: "cluster", Value: string(bb.ID)})
		if len(series) == 0 {
			continue
		}
		// Average member nodes into one BB series.
		avg := &telemetry.Series{}
		for i := range series[0].Samples {
			sum := 0.0
			n := 0
			for _, s := range series {
				if i < len(s.Samples) {
					sum += s.Samples[i].V
					n++
				}
			}
			if n > 0 {
				avg.Samples = append(avg.Samples,
					telemetry.Sample{T: series[0].Samples[i].T, V: sum / float64(n)})
			}
		}
		model, err := forecast.NewHoltWinters(0.3, 0.01, 0.3, period)
		if err != nil {
			log.Fatal(err)
		}
		validation, _ := forecast.NewHoltWinters(0.3, 0.01, 0.3, period)
		mae := forecast.MAE(validation, avg)
		model.FitSeries(avg)
		last, _ := avg.Last()
		rows = append(rows, row{
			bb:   string(bb.ID),
			now:  last.V,
			pred: model.Forecast(7 * period),
			mae:  mae,
		})
	}
	sort.Slice(rows, func(i, j int) bool { return rows[i].pred > rows[j].pred })
	for _, r := range rows {
		fmt.Printf("%-18s %10.1f %12.1f %12.2f\n", r.bb, r.now, r.pred, r.mae)
	}

	// 2. Workload-based overcommit recommendation from aggregate demand.
	sums := map[sim.Time]float64{}
	counts := map[sim.Time]int{}
	for _, s := range res.Store.Select(exporter.MetricVMCPURatio) {
		for _, smp := range s.Samples {
			sums[smp.T] += smp.V
			counts[smp.T]++
		}
	}
	var ratios []float64
	for ts, sum := range sums {
		ratios = append(ratios, sum/float64(counts[ts]))
	}
	rec, err := forecast.DynamicOvercommit(ratios, 1.25)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nworkload-based overcommit: %.1f:1 (p99 aggregate demand ratio %.2f, current config %.0f:1)\n",
		rec.Ratio, rec.PeakDemandRatio, cfg.ESX.OvercommitCPU)

	// 3. Memory pressure ranking via PromQL: which blocks are closest to
	// their memory ceiling over the last week?
	vec, err := engine.Query(
		`max by (cluster) (avg_over_time(`+exporter.MetricHostMemUsage+`[7d]))`, horizon)
	if err != nil {
		log.Fatal(err)
	}
	sort.Slice(vec, func(i, j int) bool { return vec[i].Value > vec[j].Value })
	fmt.Println("\nmemory pressure (max member-node weekly mean, descending):")
	for i, s := range vec {
		if i >= 5 {
			break
		}
		fmt.Printf("  %-18s %5.1f%%\n", s.Labels.Get("cluster"), s.Value)
	}

	// 4. Weekend effect, the temporal pattern of Fig. 8.
	eff := analysis.WeekdayWeekendEffect(res.Store, exporter.MetricHostCPUUtil, cfg.Days)
	fmt.Printf("\nweekday mean CPU %.1f%%, weekend %.1f%% (dip %.0f%%)\n",
		eff.WeekdayMean, eff.WeekendMean, eff.Dip*100)
}
