// Distributed sweep: walk through the dispatch layer end to end, one
// process standing in for a small fleet. The walkthrough
//
//  1. journals a (scenario × variant × seed) matrix into a durable queue,
//  2. serves it over the wire protocol (/book, /progress, /complete) to
//     two workers, killing one mid-cell so its lease expires and the cell
//     re-books,
//  3. "crashes" the dispatcher after the first results land,
//  4. resumes from the journal — finished cells keep their recorded
//     results, in-flight ones re-run — and drains the rest,
//  5. verifies the merged report and per-cell artifact digests are
//     byte-identical to a single-process scenario.Sweep of the same
//     matrix.
//
// The same flow runs across real machines with `cmd/dispatchd` (or
// `sweep -dispatch`) on one host and `cmd/simworker` on the rest;
// `sweep -resume DIR` picks up any interrupted journal.
package main

import (
	"context"
	"fmt"
	"log"
	"os"
	"reflect"
	"time"

	"sapsim"
	"sapsim/internal/core"
	"sapsim/internal/dispatch"
	"sapsim/internal/scenario"
	"sapsim/internal/sim"
)

func main() {
	base := core.DefaultConfig(2024)
	base.Scale = 0.01
	base.VMs = 300
	base.Days = 3
	base.SampleEvery = 30 * sim.Minute

	spec := dispatch.Spec{
		Base:      dispatch.SpecOf(base),
		Scenarios: []string{"baseline", "correlated-failures", "capacity-expansion"},
		Variants:  []string{"default"},
		Seeds:     []uint64{7, 11},
		// Workers checkpoint every 3 simulated hours; each checkpoint is a
		// lease-renewing heartbeat and a journaled resume point.
		CheckpointEvery: 3 * sim.Hour,
	}

	dir, err := os.MkdirTemp("", "distributed-sweep-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// ── 1. Durable queue: the matrix expands into journaled cells. ──────
	queue, err := dispatch.NewQueue(dir, spec, dispatch.QueueOptions{Lease: 2 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	cells := len(queue.Snapshot())
	fmt.Printf("journaled %d cells to %s\n", cells, dir)

	// ── 2. Serve to two workers; one dies mid-cell. ─────────────────────
	ctx := context.Background()
	d := dispatch.NewDispatcher(queue)
	addr, err := d.Serve(ctx, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}

	victimCtx, killVictim := context.WithCancel(ctx)
	victim := &dispatch.Worker{
		Dispatcher: "http://" + addr, ID: "victim",
		HeartbeatEvery: 50 * time.Millisecond, Poll: 50 * time.Millisecond,
		Hooks: dispatch.WorkerHooks{
			// The first simulated-time checkpoint proves the cell is mid
			// run; die right there.
			OnCheckpoint: func(job int, _ dispatch.CheckpointRecord) { killVictim() },
		},
	}
	victimErr := make(chan error, 1)
	go func() { victimErr <- victim.Run(victimCtx) }()
	<-victimCtx.Done()
	<-victimErr
	fmt.Println("victim worker killed mid-cell; its lease will expire and the cell re-books")

	survivorCtx, crashDispatcher := context.WithCancel(ctx)
	survivor := &dispatch.Worker{
		Dispatcher: "http://" + addr, ID: "survivor",
		HeartbeatEvery: 50 * time.Millisecond, Poll: 50 * time.Millisecond,
	}
	survivorErr := make(chan error, 1)
	go func() { survivorErr <- survivor.Run(survivorCtx) }()

	// ── 3. Crash the dispatcher once results start landing. ─────────────
	for {
		done := 0
		for _, st := range queue.Snapshot() {
			if st.State == "done" {
				done++
			}
		}
		if done >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	crashDispatcher()
	<-survivorErr
	_ = d.Shutdown(context.Background())
	if err := queue.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("dispatcher crashed with cells still in flight")

	// ── 4. Resume from the journal and drain. ───────────────────────────
	resumed, err := dispatch.Resume(dir, dispatch.QueueOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer resumed.Close()
	fmt.Printf("%s\n", resumed.Recovered())
	merged, err := dispatch.RunLocal(ctx, resumed, dispatch.LocalOptions{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}

	// ── 5. Byte-identity against the single-process sweep. ──────────────
	m, err := spec.Matrix()
	if err != nil {
		log.Fatal(err)
	}
	m.Workers = 1
	m.Fingerprint = func(res *core.Result) (map[string]string, error) {
		return sapsim.ArtifactDigests(res)
	}
	reference, err := scenario.Sweep(m)
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Runs, reference.Runs) {
		log.Fatal("dispatched sweep diverged from the single-process reference")
	}
	fmt.Printf("merged result of the killed-and-resumed sweep is byte-identical to scenario.Sweep (%d cells, 18 digests each)\n\n", cells)

	fmt.Print(scenario.Comparative(merged))
	fmt.Print(scenario.ArtifactDiff(merged))
}
