// Distributed sweep: walk through the dispatch layer end to end, one
// process standing in for a small fleet. The walkthrough
//
//  1. journals a (scenario × variant × seed) matrix into a durable queue,
//  2. serves it over the wire protocol (/book, /progress, /complete) to
//     two workers, killing one mid-cell so its lease expires and the cell
//     re-books,
//  3. "crashes" the dispatcher after the first results land,
//  4. resumes from the journal — finished cells keep their recorded
//     results, in-flight ones re-run — and drains the rest,
//  5. verifies the merged report and per-cell artifact digests are
//     byte-identical to a single-process scenario.Sweep of the same
//     matrix,
//  6. fetches the browsable report bundle over the wire — the workers
//     uploaded every artifact body into the dispatcher's
//     content-addressed store (deduplicated by digest, so the static
//     tables identical across cells landed once) — and
//  7. materializes the bundle to disk, every body digest-verified on the
//     way out of the store.
//
// The same flow runs across real machines with `cmd/dispatchd` (or
// `sweep -dispatch`) on one host and `cmd/simworker` on the rest;
// `sweep -resume DIR` picks up any interrupted journal and
// `sweep -resume DIR -bundle OUT` exports the bundle.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"reflect"
	"strings"
	"time"

	"sapsim"
	"sapsim/internal/artifact"
	"sapsim/internal/core"
	"sapsim/internal/dispatch"
	"sapsim/internal/scenario"
	"sapsim/internal/sim"
)

func main() {
	base := core.DefaultConfig(2024)
	base.Scale = 0.01
	base.VMs = 300
	base.Days = 3
	base.SampleEvery = 30 * sim.Minute

	spec := dispatch.Spec{
		Base:      dispatch.SpecOf(base),
		Scenarios: []string{"baseline", "correlated-failures", "capacity-expansion"},
		Variants:  []string{"default"},
		Seeds:     []uint64{7, 11},
		// Workers checkpoint every 3 simulated hours; each checkpoint is a
		// lease-renewing heartbeat and a journaled resume point.
		CheckpointEvery: 3 * sim.Hour,
	}

	dir, err := os.MkdirTemp("", "distributed-sweep-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)

	// ── 1. Durable queue: the matrix expands into journaled cells. ──────
	queue, err := dispatch.NewQueue(dir, spec, dispatch.QueueOptions{Lease: 2 * time.Second})
	if err != nil {
		log.Fatal(err)
	}
	cells := len(queue.Snapshot())
	fmt.Printf("journaled %d cells to %s\n", cells, dir)

	// ── 2. Serve to two workers; one dies mid-cell. ─────────────────────
	ctx := context.Background()
	d := dispatch.NewDispatcher(queue)
	addr, err := d.Serve(ctx, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}

	victimCtx, killVictim := context.WithCancel(ctx)
	victim := &dispatch.Worker{
		Dispatcher: "http://" + addr, ID: "victim",
		HeartbeatEvery: 50 * time.Millisecond, Poll: 50 * time.Millisecond,
		Hooks: dispatch.WorkerHooks{
			// The first simulated-time checkpoint proves the cell is mid
			// run; die right there.
			OnCheckpoint: func(job int, _ dispatch.CheckpointRecord) { killVictim() },
		},
	}
	victimErr := make(chan error, 1)
	go func() { victimErr <- victim.Run(victimCtx) }()
	<-victimCtx.Done()
	<-victimErr
	fmt.Println("victim worker killed mid-cell; its lease will expire and the cell re-books")

	survivorCtx, crashDispatcher := context.WithCancel(ctx)
	survivor := &dispatch.Worker{
		Dispatcher: "http://" + addr, ID: "survivor",
		HeartbeatEvery: 50 * time.Millisecond, Poll: 50 * time.Millisecond,
	}
	survivorErr := make(chan error, 1)
	go func() { survivorErr <- survivor.Run(survivorCtx) }()

	// ── 3. Crash the dispatcher once results start landing. ─────────────
	for {
		done := 0
		for _, st := range queue.Snapshot() {
			if st.State == "done" {
				done++
			}
		}
		if done >= 2 {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	crashDispatcher()
	<-survivorErr
	_ = d.Shutdown(context.Background())
	if err := queue.Close(); err != nil {
		log.Fatal(err)
	}
	fmt.Println("dispatcher crashed with cells still in flight")

	// ── 4. Resume from the journal and drain. ───────────────────────────
	resumed, err := dispatch.Resume(dir, dispatch.QueueOptions{})
	if err != nil {
		log.Fatal(err)
	}
	defer resumed.Close()
	fmt.Printf("%s\n", resumed.Recovered())
	merged, err := dispatch.RunLocal(ctx, resumed, dispatch.LocalOptions{Workers: 2})
	if err != nil {
		log.Fatal(err)
	}

	// ── 5. Byte-identity against the single-process sweep. ──────────────
	m, err := spec.Matrix()
	if err != nil {
		log.Fatal(err)
	}
	m.Workers = 1
	m.Fingerprint = func(res *core.Result) (map[string]string, error) {
		return sapsim.ArtifactDigests(res)
	}
	reference, err := scenario.Sweep(m)
	if err != nil {
		log.Fatal(err)
	}
	if !reflect.DeepEqual(merged.Runs, reference.Runs) {
		log.Fatal("dispatched sweep diverged from the single-process reference")
	}
	fmt.Printf("merged result of the killed-and-resumed sweep is byte-identical to scenario.Sweep (%d cells, 18 digests each)\n\n", cells)

	// ── 6. Fetch the browsable bundle over the wire. ────────────────────
	// The workers shipped every artifact body into the store; the drained
	// dispatcher serves the collected report tree at /bundle.
	d2 := dispatch.NewDispatcher(resumed)
	serveCtx, stopServe := context.WithCancel(ctx)
	defer stopServe()
	addr2, err := d2.Serve(serveCtx, "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	report := get("http://" + addr2 + "/bundle/report")
	firstLine, _, _ := strings.Cut(report, "\n")
	fmt.Printf("GET /bundle/report        → %s\n", firstLine)
	run := merged.Runs[0]
	body := get(fmt.Sprintf("http://%s/bundle/cell/%s/%s/%d/table1",
		addr2, run.Key.Scenario, run.Key.Variant, run.Key.Seed))
	if artifact.Digest([]byte(body)) != run.Digests["table1"] {
		log.Fatal("fetched artifact does not hash to its journaled digest")
	}
	fmt.Printf("GET /bundle/cell/.../table1 → %d bytes, digest-verified\n", len(body))

	// ── 7. Materialize the digest-verified bundle to disk. ──────────────
	bundleDir, err := os.MkdirTemp("", "sweep-bundle-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(bundleDir)
	manifest, err := artifact.WriteBundle(bundleDir, merged, resumed.Store())
	if err != nil {
		log.Fatal(err)
	}
	bodies := 0
	for _, c := range manifest.Cells {
		bodies += len(c.Artifacts)
	}
	blobs, _ := resumed.Store().Len()
	fmt.Printf("materialized bundle: %d cells, %d artifact bodies, %d distinct blobs in the CAS "+
		"(shared artifacts stored once)\n\n", len(manifest.Cells), bodies, blobs)

	fmt.Print(scenario.Comparative(merged))
	fmt.Print(scenario.ArtifactDiff(merged))
}

// get fetches one URL or dies.
func get(url string) string {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		log.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, data)
	}
	return string(data)
}
