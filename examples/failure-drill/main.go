// Failure drill: walk through the scenario layer end to end. A week-long
// reduced-scale run absorbs a compound operational incident — a demand
// surge, a multi-host failure at the surge peak, and a rolling maintenance
// drain — while every displaced VM is rescheduled through the normal Nova
// pipeline. The drill then audits the scheduler stack's invariants and
// compares the run against the undisturbed baseline.
package main

import (
	"fmt"
	"log"

	"sapsim"
	"sapsim/internal/core"
	"sapsim/internal/events"
	"sapsim/internal/scenario"
	"sapsim/internal/sim"
	"sapsim/internal/workload"
)

func main() {
	base := core.DefaultConfig(2024)
	base.Scale = 0.02
	base.VMs = 800
	base.Days = 7
	base.SampleEvery = 15 * sim.Minute

	drill := &scenario.Scenario{
		Name:        "failure-drill",
		Description: "surge + host failures + rolling drain in one week",
		Phases: []workload.Phase{
			// Demand doubles between day 1 and day 3.
			scenario.SurgePhase(1*sim.Day, 3*sim.Day, 2),
		},
		Injections: []core.Injector{
			// 5% of the fleet fails at the surge peak; 12-hour outage.
			scenario.HostFailures{At: 2 * sim.Day, Fraction: 0.05, Recover: 12 * sim.Hour},
			// Day 4: one building block drains node by node for patching.
			scenario.MaintenanceDrain{At: 4 * sim.Day, BBIndex: 0,
				NodeEvery: 30 * sim.Minute, Hold: 2 * sim.Hour},
		},
	}

	fmt.Println("== failure drill ==")
	fmt.Printf("%s: %s\n\n", drill.Name, drill.Description)

	// The drill runs as a Session so the incident timeline is visible
	// live: forced moves stream as Migration events with Kind
	// "evacuation" right after the day-2 failure injection, and VMs
	// stranded by a full fleet surface as failed Placements.
	lastDay := -1
	streamedEvacs := 0 // written on the dispatch goroutine, read after the run
	session, err := sapsim.NewSession(drill.Configure(base),
		sapsim.WithObserverFunc(func(ev sapsim.SessionEvent) {
			switch e := ev.(type) {
			case sapsim.Progress:
				if day := int(e.Now.Days()); day > lastDay {
					lastDay = day
					fmt.Printf("  day %d: %d VMs live\n", day, e.LiveVMs)
				}
			case sapsim.Migration:
				if e.Kind == string(core.MigrateEvacuation) {
					streamedEvacs++
				}
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()
	if err := session.RunToCompletion(); err != nil {
		log.Fatal(err)
	}
	res, err := session.Result()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()

	fmt.Printf("  streamed live: %d evacuation migrations\n\n", streamedEvacs)

	counts := res.Events.CountByType()
	fmt.Println("operational event stream:")
	for _, ty := range []events.Type{
		events.Create, events.Delete, events.Evacuate, events.EvacuateFailed,
		events.MigrateIntraBB, events.Resize, events.ScheduleFailed,
	} {
		fmt.Printf("  %-18s %d\n", ty, counts[ty])
	}

	// The drill is only a drill if the stack held: no overcommit breach,
	// no VM double-placed or lost from the books.
	if err := scenario.CheckInvariants(res); err != nil {
		log.Fatalf("invariant violated: %v", err)
	}
	fmt.Println("\ninvariants: admission ceilings, residency, conservation — all hold")

	// Compare against the undisturbed baseline, same seed. The blocking
	// compatibility wrapper and the session above share one code path, so
	// the comparison stays apples-to-apples.
	baseline, err := sapsim.Run(base)
	if err != nil {
		log.Fatal(err)
	}
	dm, bm := scenario.Extract(res), scenario.Extract(baseline)
	fmt.Println("\n                      baseline     drill")
	fmt.Printf("  live VMs            %8d  %8d\n", bm.LiveVMs, dm.LiveVMs)
	fmt.Printf("  mem packing (pct)   %8.2f  %8.2f\n", bm.PackingMemPct, dm.PackingMemPct)
	fmt.Printf("  attempts/schedule   %8.3f  %8.3f\n", bm.AttemptsPerSchedule, dm.AttemptsPerSchedule)
	fmt.Printf("  DRS migrations      %8d  %8d\n", bm.DRSMigrations, dm.DRSMigrations)
	fmt.Printf("  evacuations         %8d  %8d\n", bm.Evacuations, dm.Evacuations)
	fmt.Printf("  lost VMs            %8d  %8d\n", bm.EvacFailures, dm.EvacFailures)
	fmt.Printf("  max contention pct  %8.2f  %8.2f\n", bm.MaxContentionPct, dm.MaxContentionPct)
}
