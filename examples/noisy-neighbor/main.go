// Noisy neighbor: construct the contention episode of Sec. 3.2 by hand —
// co-locate bursty VMs on one overcommitted host — and watch CPU ready time
// and contention climb exactly as in Figs. 8 and 9, then let DRS defuse it.
package main

import (
	"fmt"
	"log"

	"sapsim/internal/drs"
	"sapsim/internal/esx"
	"sapsim/internal/sim"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
	"sapsim/internal/workload"
)

func main() {
	// One building block, two identical hosts.
	region := topology.NewRegion("demo")
	dc := region.AddAZ("az-a").AddDC("dc-a")
	bb, err := dc.AddBB("bb-0", topology.GeneralPurpose, 2, topology.Capacity{
		PCPUCores: 32, MemoryMB: 512 << 10, StorageGB: 8 << 10, NetworkGbps: 200,
	})
	if err != nil {
		log.Fatal(err)
	}
	fleet := esx.NewFleet(region, esx.DefaultConfig())
	hot, cold := bb.Nodes[0], bb.Nodes[1]

	// Six MJ VMs (16 vCPU each = 96 vCPUs on 32 pCPUs) land on the same
	// host; all of them burst in sync — the pathological noisy-neighbor
	// case the initial placement cannot see.
	cat := vmmodel.CatalogByName()
	for i := 0; i < 6; i++ {
		vm := &vmmodel.VM{
			ID:     vmmodel.ID(fmt.Sprintf("noisy-%d", i)),
			Flavor: cat["MJ"],
			Profile: &workload.Profile{
				Seed: uint64(i), MeanCPU: 0.55, DiurnalAmp: 0.3,
				NoiseAmp: 0.1, BurstProb: 0.3, BurstMag: 2.0,
			},
		}
		if err := fleet.Place(vm, hot, 0); err != nil {
			log.Fatal(err)
		}
	}
	// The cold host idles with one small VM.
	idle := &vmmodel.VM{ID: "quiet", Flavor: cat["SA"],
		Profile: &workload.Profile{Seed: 99, MeanCPU: 0.1}}
	if err := fleet.Place(idle, cold, 0); err != nil {
		log.Fatal(err)
	}

	hostOf := func(n *topology.Node) *esx.Host {
		h, err := fleet.Host(n.ID)
		if err != nil {
			log.Fatal(err)
		}
		return h
	}

	const interval = 5 * sim.Minute
	fmt.Println("before rebalancing (one saturated host):")
	fmt.Printf("%8s %10s %12s %12s %10s\n", "time", "util(%)", "contention(%)", "ready(s)", "VMs")
	worst := 0.0
	for t := sim.Time(0); t < 2*sim.Hour; t += interval {
		m := hostOf(hot).Snapshot(t, interval)
		if m.CPUContentionPct > worst {
			worst = m.CPUContentionPct
		}
		fmt.Printf("%8s %10.1f %12.1f %12.1f %10d\n",
			t, m.CPUUtilPct, m.CPUContentionPct, m.CPUReadyMillis/1000, m.VMCount)
	}
	fmt.Printf("\npeak contention %.1f%% — the paper observes nodes exceeding 40%% (Fig. 9)\n\n", worst)

	// DRS to the rescue: repeated passes migrate the heaviest movable VM
	// to the idle host until the imbalance trigger clears.
	d := drs.New(fleet, drs.DefaultConfig())
	moved := 0
	for pass := 0; pass < 4; pass++ {
		moved += d.RebalanceBB(bb, 2*sim.Hour)
	}
	fmt.Printf("DRS moved %d VMs\n\n", moved)

	fmt.Println("after rebalancing:")
	for _, n := range bb.Nodes {
		m := hostOf(n).Snapshot(3*sim.Hour, interval)
		fmt.Printf("  %s: util %.1f%%, contention %.1f%%, ready %.1fs, %d VMs\n",
			n.ID, m.CPUUtilPct, m.CPUContentionPct, m.CPUReadyMillis/1000, m.VMCount)
	}
}
