// Quickstart: the minimal end-to-end tour of the public API, built on the
// Session lifecycle — construct a session, watch its event stream while the
// run advances in steps, then inspect where VMs landed, how utilized the
// fleet is, and one regenerated paper artifact.
//
// The blocking form is a one-liner (`res, err := sapsim.Run(cfg)`); the
// session form below does the same work but is observable (typed event
// stream), steppable (pause between Step calls), and cancellable
// (WithContext).
package main

import (
	"fmt"
	"log"

	"sapsim"
	"sapsim/internal/sim"
)

func main() {
	// A 2% replica of the paper's studied region (≈36 hypervisors) with
	// 300 VMs observed for three days.
	cfg := sapsim.DefaultConfig(42)
	cfg.Scale = 0.02
	cfg.VMs = 300
	cfg.Days = 3
	cfg.SampleEvery = 15 * sim.Minute

	// Observers receive typed events on a dispatch goroutine that never
	// blocks the simulation: per-tick Progress (coalesced under
	// backpressure), every in-window Placement, every DRS Migration, and
	// ArtifactReady for experiments computed incrementally.
	var placements, failures, migrations int
	session, err := sapsim.NewSession(cfg,
		sapsim.WithObserverFunc(func(ev sapsim.SessionEvent) {
			switch e := ev.(type) {
			case sapsim.Placement:
				if e.Failed {
					failures++
				} else {
					placements++
				}
			case sapsim.Migration:
				migrations++
			}
		}))
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	// Drive the window day by day; between Step calls the run is paused
	// and its live state is inspectable.
	ticksPerDay := int(sim.Day / cfg.SampleEvery)
	for day := 1; ; day++ {
		done, err := session.Step(ticksPerDay)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day %d: simulated %v of %v\n", day, session.Now(), session.Horizon())
		if done {
			break
		}
	}
	res, err := session.Result()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("\nregion: %d data centers, %d building blocks, %d nodes\n",
		len(res.Region.Datacenters()), len(res.Region.BBs()), res.Region.NodeCount())
	fmt.Printf("workload: %d VM instances over %d days (%d placement failures)\n",
		len(res.VMs), cfg.Days, res.PlacementFailures)
	fmt.Printf("scheduler: %d placed, %d retries; DRS migrations: %d\n",
		res.SchedStats.Scheduled, res.SchedStats.Retries, res.DRSMigrations)
	fmt.Printf("streamed: %d placements, %d failures, %d migrations observed live\n\n",
		placements, failures, migrations)

	// Where did the first few VMs land?
	fmt.Println("sample placements:")
	for _, vm := range res.VMs[:8] {
		loc := "unplaced"
		if vm.Node != nil {
			loc = string(vm.Node.ID)
		} else if vm.DeletedAt > 0 {
			loc = fmt.Sprintf("deleted at %s", vm.DeletedAt)
		}
		fmt.Printf("  %-10s %-4s (%2d vCPU, %5d GiB) -> %s\n",
			vm.ID, vm.Flavor.Name, vm.Flavor.VCPUs, vm.Flavor.RAMGiB, loc)
	}

	// Fleet utilization at the end of the run.
	fmt.Println("\nbuilding-block allocation:")
	for _, bb := range res.Region.BBs() {
		a := res.Fleet.BBAlloc(bb)
		if a.MemCapMB == 0 {
			continue
		}
		fmt.Printf("  %-16s %-15s nodes=%2d vms=%3d vcpu=%4d/%4d mem=%3.0f%%\n",
			bb.ID, bb.Kind, a.ActiveNodes, a.VMCount, a.VCPUAlloc, a.VCPUCap,
			float64(a.MemAllocMB)/float64(a.MemCapMB)*100)
	}

	// One paper artifact end to end: the Fig. 14a overprovisioning CDF.
	exp, _ := sapsim.ExperimentByID("fig14a")
	art, err := exp.Compute(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\npaper: %s\n\n%s", exp.Title, exp.PaperClaim, art.Text)
}
