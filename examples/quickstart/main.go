// Quickstart: build a small region, place a handful of VMs through the
// Nova scheduler, and inspect where they landed and how utilized the fleet
// is — the minimal end-to-end tour of the public API.
package main

import (
	"fmt"
	"log"

	"sapsim"
	"sapsim/internal/sim"
)

func main() {
	// A 2% replica of the paper's studied region (≈36 hypervisors) with
	// 300 VMs observed for three days.
	cfg := sapsim.DefaultConfig(42)
	cfg.Scale = 0.02
	cfg.VMs = 300
	cfg.Days = 3
	cfg.SampleEvery = 15 * sim.Minute

	res, err := sapsim.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("region: %d data centers, %d building blocks, %d nodes\n",
		len(res.Region.Datacenters()), len(res.Region.BBs()), res.Region.NodeCount())
	fmt.Printf("workload: %d VM instances over %d days (%d placement failures)\n",
		len(res.VMs), cfg.Days, res.PlacementFailures)
	fmt.Printf("scheduler: %d placed, %d retries; DRS migrations: %d\n\n",
		res.SchedStats.Scheduled, res.SchedStats.Retries, res.DRSMigrations)

	// Where did the first few VMs land?
	fmt.Println("sample placements:")
	for _, vm := range res.VMs[:8] {
		loc := "unplaced"
		if vm.Node != nil {
			loc = string(vm.Node.ID)
		} else if vm.DeletedAt > 0 {
			loc = fmt.Sprintf("deleted at %s", vm.DeletedAt)
		}
		fmt.Printf("  %-10s %-4s (%2d vCPU, %5d GiB) -> %s\n",
			vm.ID, vm.Flavor.Name, vm.Flavor.VCPUs, vm.Flavor.RAMGiB, loc)
	}

	// Fleet utilization at the end of the run.
	fmt.Println("\nbuilding-block allocation:")
	for _, bb := range res.Region.BBs() {
		a := res.Fleet.BBAlloc(bb)
		if a.MemCapMB == 0 {
			continue
		}
		fmt.Printf("  %-16s %-15s nodes=%2d vms=%3d vcpu=%4d/%4d mem=%3.0f%%\n",
			bb.ID, bb.Kind, a.ActiveNodes, a.VMCount, a.VCPUAlloc, a.VCPUCap,
			float64(a.MemAllocMB)/float64(a.MemCapMB)*100)
	}

	// One paper artifact end to end: the Fig. 14a overprovisioning CDF.
	exp, _ := sapsim.ExperimentByID("fig14a")
	art, err := exp.Compute(res)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s\npaper: %s\n\n%s", exp.Title, exp.PaperClaim, art.Text)
}
