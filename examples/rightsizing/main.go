// Rightsizing: the paper's "qualified right-sizing" guidance (Sec. 7) as a
// tool. Run a window, compute each VM's mean CPU and memory usage from
// telemetry, and recommend a smaller flavor where the allocation is
// demonstrably oversized — quantifying how many vCPUs the region could
// reclaim.
package main

import (
	"fmt"
	"log"
	"sort"

	"sapsim"
	"sapsim/internal/analysis"
	"sapsim/internal/exporter"
	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
	"sapsim/internal/vmmodel"
)

func main() {
	cfg := sapsim.DefaultConfig(11)
	cfg.Scale = 0.02
	cfg.VMs = 500
	cfg.Days = 7
	cfg.SampleEvery = 30 * sim.Minute
	cfg.VMSampleEvery = sim.Hour

	// Drive the window through a Session with a daily checkpoint cadence:
	// the last checkpoint summarizes the run the recommendations are based
	// on without touching the telemetry store.
	session, err := sapsim.NewSession(cfg, sapsim.WithCheckpointEvery(sim.Day))
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()
	if err := session.RunToCompletion(); err != nil {
		log.Fatal(err)
	}
	res, err := session.Result()
	if err != nil {
		log.Fatal(err)
	}
	if ckpt, ok := session.LastCheckpoint(); ok {
		fmt.Printf("run: %d VMs live at %s, %d placements, %d migrations\n\n",
			ckpt.LiveVMs, ckpt.At, ckpt.Scheduled, ckpt.Migrations)
	}

	// Mean usage per VM over the window, from the recorded VM series.
	type usage struct{ cpu, mem float64 }
	usages := map[string]usage{}
	for _, s := range res.Store.Select(exporter.MetricVMCPURatio) {
		id := s.Labels.Get("virtualmachine")
		u := usages[id]
		u.cpu = telemetry.MeanOverRange(s, 0, cfg.Horizon())
		usages[id] = u
	}
	for _, s := range res.Store.Select(exporter.MetricVMMemRatio) {
		id := s.Labels.Get("virtualmachine")
		u := usages[id]
		u.mem = telemetry.MeanOverRange(s, 0, cfg.Horizon())
		usages[id] = u
	}

	// Recommend: if mean CPU < 35%, half the vCPUs would still leave the
	// VM below the 70% threshold; same logic for memory at < 35%.
	type rec struct {
		vm          *vmmodel.VM
		cpu, mem    float64
		savedVCPUs  int
		savedMemGiB int
	}
	var recs []rec
	var reclaimCPU, reclaimMem int
	population := 0
	for _, vm := range res.VMs {
		u, ok := usages[string(vm.ID)]
		if !ok {
			continue
		}
		population++
		r := rec{vm: vm, cpu: u.cpu, mem: u.mem}
		if u.cpu > 0 && u.cpu < 0.35 {
			r.savedVCPUs = vm.Flavor.VCPUs / 2
		}
		if u.mem > 0 && u.mem < 0.35 {
			r.savedMemGiB = vm.Flavor.RAMGiB / 2
		}
		if r.savedVCPUs > 0 || r.savedMemGiB > 0 {
			recs = append(recs, r)
			reclaimCPU += r.savedVCPUs
			reclaimMem += r.savedMemGiB
		}
	}
	sort.Slice(recs, func(i, j int) bool { return recs[i].savedVCPUs > recs[j].savedVCPUs })

	// Population-level framing, matching Fig. 14a.
	cdf := analysis.VMMeanUsage(res.Store, exporter.MetricVMCPURatio, 0, cfg.Horizon())
	split := analysis.SplitUtilization(cdf)
	fmt.Printf("population: %d VMs with telemetry; %.0f%% CPU-underutilized (paper: >80%%)\n\n",
		population, split.Under*100)

	fmt.Printf("right-sizing candidates: %d VMs (%.0f%% of population)\n",
		len(recs), float64(len(recs))/float64(population)*100)
	fmt.Printf("reclaimable: %d vCPUs, %d GiB memory\n\n", reclaimCPU, reclaimMem)

	fmt.Println("top candidates:")
	fmt.Printf("%-12s %-6s %10s %10s %12s %12s\n", "vm", "flavor", "cpu-mean", "mem-mean", "save vCPUs", "save GiB")
	n := len(recs)
	if n > 10 {
		n = 10
	}
	for _, r := range recs[:n] {
		fmt.Printf("%-12s %-6s %9.0f%% %9.0f%% %12d %12d\n",
			r.vm.ID, r.vm.Flavor.Name, r.cpu*100, r.mem*100, r.savedVCPUs, r.savedMemGiB)
	}
}
