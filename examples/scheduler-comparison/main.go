// Scheduler comparison: run the same workload under three placement
// policies — the SAP production posture (spread general, bin-pack HANA),
// pure spreading, and contention-aware placement — and compare placement
// success, fleet imbalance, and contention. This is the runnable form of
// the paper's Sec. 7 guidance ("placement and dynamic rescheduling should
// be combined", "CPU contention should be mitigated").
package main

import (
	"fmt"
	"log"

	"sapsim"
	"sapsim/internal/analysis"
	"sapsim/internal/exporter"
	"sapsim/internal/nova"
	"sapsim/internal/sim"
)

type policy struct {
	name   string
	mutate func(*sapsim.Config)
}

func main() {
	policies := []policy{
		{"sap-production (spread gp, pack HANA)", func(cfg *sapsim.Config) {}},
		{"spread-everything", func(cfg *sapsim.Config) {
			cfg.Scheduler.Weighers = []nova.Weigher{
				nova.RAMWeigher{Mult: 1, SAPPolicy: false},
				nova.CPUWeigher{Mult: 0.5},
			}
			cfg.Scheduler.HANANodePolicy = nova.SpreadNodes
		}},
		{"contention-aware", func(cfg *sapsim.Config) {
			cfg.ContentionFeed = true
			cfg.Scheduler.Weighers = []nova.Weigher{
				nova.ContentionWeigher{Mult: 2},
				nova.RAMWeigher{Mult: 1, SAPPolicy: true},
				nova.CPUWeigher{Mult: 0.5},
			}
		}},
	}

	fmt.Printf("%-40s %9s %8s %12s %12s\n",
		"policy", "failures", "retries", "maxcont(%)", "spread(pts)")
	for _, p := range policies {
		cfg := sapsim.DefaultConfig(7)
		cfg.Scale = 0.03
		cfg.VMs = 900
		cfg.Days = 7
		cfg.SampleEvery = 15 * sim.Minute
		cfg.RecordVMMetrics = false
		p.mutate(&cfg)

		res, err := sapsim.Run(cfg)
		if err != nil {
			log.Fatal(err)
		}

		maxCont := 0.0
		for _, d := range analysis.DailyPooled(res.Store, exporter.MetricHostCPUCont, cfg.Days) {
			if d.N > 0 && d.Max > maxCont {
				maxCont = d.Max
			}
		}
		h := analysis.DailyHeatmap(res.Store, exporter.MetricHostCPUUtil, "hostsystem",
			cfg.Days, analysis.FreePercent)
		spread := 0.0
		if n := len(h.Columns); n > 1 {
			spread = h.ColumnMean(0) - h.ColumnMean(n-1)
		}
		fmt.Printf("%-40s %9d %8d %12.1f %12.1f\n",
			p.name, res.PlacementFailures, res.SchedStats.Retries, maxCont, spread)
	}
	fmt.Println("\nreading: packing concentrates load (higher contention, wider spread);")
	fmt.Println("contention-aware placement trades a little balance for fewer hot spots.")
}
