// Scheduler comparison: run the same workload under every registered
// placement policy — the SAP production posture (spread general, bin-pack
// HANA), pure spreading, BestFit-style packing, and contention-aware
// placement — and compare placement success, fleet imbalance, and
// contention. This is the runnable form of the paper's Sec. 7 guidance
// ("placement and dynamic rescheduling should be combined", "CPU contention
// should be mitigated").
//
// Policies come from the sapsim policy registry (sapsim.Policies /
// sapsim.RegisterPolicy), so nothing here hand-wires scheduler internals:
// registering a new policy from init anywhere in the program adds a row to
// this comparison.
package main

import (
	"fmt"
	"log"

	"sapsim"
	"sapsim/internal/analysis"
	"sapsim/internal/exporter"
	"sapsim/internal/sim"
)

func main() {
	fmt.Printf("%-20s %9s %8s %12s %12s\n",
		"policy", "failures", "retries", "maxcont(%)", "spread(pts)")
	for _, p := range sapsim.Policies() {
		cfg := sapsim.DefaultConfig(7)
		cfg.Scale = 0.03
		cfg.VMs = 900
		cfg.Days = 7
		cfg.SampleEvery = 15 * sim.Minute
		cfg.RecordVMMetrics = false

		session, err := sapsim.NewSession(cfg, sapsim.WithPolicy(p.Name))
		if err != nil {
			log.Fatal(err)
		}
		if err := session.RunToCompletion(); err != nil {
			log.Fatal(err)
		}
		res, err := session.Result()
		if err != nil {
			log.Fatal(err)
		}
		session.Close()

		maxCont := 0.0
		for _, d := range analysis.DailyPooled(res.Store, exporter.MetricHostCPUCont, cfg.Days) {
			if d.N > 0 && d.Max > maxCont {
				maxCont = d.Max
			}
		}
		h := analysis.DailyHeatmap(res.Store, exporter.MetricHostCPUUtil, "hostsystem",
			cfg.Days, analysis.FreePercent)
		spread := 0.0
		if n := len(h.Columns); n > 1 {
			spread = h.ColumnMean(0) - h.ColumnMean(n-1)
		}
		fmt.Printf("%-20s %9d %8d %12.1f %12.1f\n",
			p.Name, res.PlacementFailures, res.SchedStats.Retries, maxCont, spread)
	}
	fmt.Println("\nreading: packing concentrates load (higher contention, wider spread);")
	fmt.Println("contention-aware placement trades a little balance for fewer hot spots.")
}
