// Speculative scenario branching: run the expensive steady-state warmup
// once, snapshot it, then fork divergent futures — here, the same AZ
// outage injected at three different instants — from that single warm
// state. Each branch is an independent session continuing from the shared
// snapshot, so exploring N outage timings costs one warmup plus N tails
// instead of N full runs, and the branches differ only by the injected
// event: any delta in the comparative report is the outage timing, not
// noise.
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"sapsim"
	"sapsim/internal/scenario"
	"sapsim/internal/sim"
)

func main() {
	cfg := sapsim.DefaultConfig(33)
	cfg.Scale = 0.03
	cfg.VMs = 900
	cfg.Days = 10
	cfg.SampleEvery = 15 * sim.Minute
	cfg.VMSampleEvery = sim.Hour

	// 1. Simulate the shared prefix once: four days of arrival churn, DRS
	// passes, and resize activity — the warm state every what-if shares.
	start := time.Now()
	warm, err := sapsim.NewSession(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer warm.Close()
	prefix := 4 * sim.Day
	if _, err := warm.Step(int(prefix / cfg.SampleEvery)); err != nil {
		log.Fatal(err)
	}
	snap, err := warm.Snapshot()
	if err != nil {
		log.Fatal(err)
	}
	warmupWall := time.Since(start)
	fmt.Printf("warm prefix: %v simulated once in %v (snapshot at %v)\n\n",
		prefix, warmupWall.Round(time.Millisecond), snap.At)

	// 2. Fork the what-ifs: an identical 6-hour AZ outage landing on day
	// 5, 6, or 7 — plus a baseline branch that replays the captured run
	// unchanged. Everything in flight at the snapshot is common to all
	// four by construction.
	outage := func(at sim.Time) []sapsim.Injector {
		return []sapsim.Injector{scenario.AZOutage{At: at, AZIndex: 1, Duration: 6 * sim.Hour}}
	}
	branches := []sapsim.Branch{
		{Name: "baseline"},
		{Name: "az-outage-d5", Injectors: outage(5 * sim.Day)},
		{Name: "az-outage-d6", Injectors: outage(6 * sim.Day)},
		{Name: "az-outage-d7", Injectors: outage(7 * sim.Day)},
	}
	sessions, err := sapsim.Fork(cfg, snap, branches)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Drive every branch to the horizon concurrently; branches share
	// nothing but the immutable snapshot.
	start = time.Now()
	runs := make([]scenario.Run, len(sessions))
	var wg sync.WaitGroup
	errs := make([]error, len(sessions))
	for i, s := range sessions {
		wg.Add(1)
		go func(i int, s *sapsim.Session) {
			defer wg.Done()
			defer s.Close()
			if err := s.RunToCompletion(); err != nil {
				errs[i] = fmt.Errorf("branch %s: %w", s.Name(), err)
				return
			}
			res, err := s.Result()
			if err != nil {
				errs[i] = fmt.Errorf("branch %s: %w", s.Name(), err)
				return
			}
			runs[i] = scenario.Run{
				Key:     scenario.Key{Scenario: s.Name(), Variant: "default", Seed: 33},
				Metrics: scenario.Extract(res),
			}
		}(i, s)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("4 branches (%v tail each) explored in %v from one snapshot\n\n",
		cfg.Horizon()-snap.At, time.Since(start).Round(time.Millisecond))

	// 4. Compare: the first scenario is the baseline, so the report shows
	// each outage timing as a delta against the unperturbed continuation.
	fmt.Print(scenario.Comparative(&scenario.SweepResult{Runs: runs}))
}
