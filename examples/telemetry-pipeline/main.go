// Telemetry pipeline: the Sec. 4 measurement path end to end over real
// HTTP — a simulated fleet exposed by the vROps-style exporter, pulled by a
// Prometheus-style scraper into the TSDB, then analyzed into a daily
// heatmap. This is the exact collection loop the dataset was produced by,
// with the physical fleet swapped for the simulator.
package main

import (
	"fmt"
	"log"
	"net/http/httptest"

	"sapsim/internal/analysis"
	"sapsim/internal/esx"
	"sapsim/internal/exporter"
	"sapsim/internal/nova"
	"sapsim/internal/placement"
	"sapsim/internal/report"
	"sapsim/internal/scrape"
	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
	"sapsim/internal/workload"
)

func main() {
	// Build a small fleet and place a workload on it via Nova.
	region, err := topology.Build(topology.DefaultBuildSpec(0.01))
	if err != nil {
		log.Fatal(err)
	}
	fleet := esx.NewFleet(region, esx.DefaultConfig())
	sched, err := nova.NewScheduler(fleet, placement.NewService(), nova.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	var live []*vmmodel.VM
	for _, in := range workload.NewGenerator(workload.DefaultSpec(150, 3)).Generate() {
		if in.ArriveAt > 0 {
			continue
		}
		if _, err := sched.Schedule(&nova.RequestSpec{VM: in.VM}, 0); err == nil {
			live = append(live, in.VM)
		}
	}
	fmt.Printf("fleet: %d nodes, %d VMs placed\n", region.NodeCount(), len(live))

	// The exporter serves /metrics; its clock is advanced between
	// scrapes to sweep a two-day window.
	now := sim.Time(0)
	exp := &exporter.Exporter{
		Fleet:    fleet,
		VMs:      func() []*vmmodel.VM { return live },
		Clock:    func() sim.Time { return now },
		Interval: 30 * sim.Minute,
	}
	srv := httptest.NewServer(exp.Handler())
	defer srv.Close()
	fmt.Printf("exporter listening at %s\n", srv.URL)

	// Scrape every 30 simulated minutes for two days.
	store := telemetry.NewStore()
	scraper := &scrape.Scraper{Store: store, Client: srv.Client()}
	total := 0
	for ; now < 2*sim.Day; now += 30 * sim.Minute {
		n, err := scraper.ScrapeTarget(srv.URL, now)
		if err != nil {
			log.Fatal(err)
		}
		total += n
	}
	fmt.Printf("scraped %d samples into %d series over 2 simulated days\n\n",
		total, store.SeriesCount())

	// Analyze what came off the wire: the Fig. 5-style free-CPU view.
	h := analysis.DailyHeatmap(store, exporter.MetricHostCPUUtil, "hostsystem",
		2, analysis.FreePercent)
	fmt.Println("daily free-CPU heatmap (from scraped data, most free first):")
	fmt.Println(report.HeatmapSummary(h, 12))

	daily := analysis.DailyPooled(store, exporter.MetricHostCPUCont, 2)
	fmt.Println("region-wide contention per day (Fig. 9 series):")
	fmt.Print(report.DailySeriesCSV(daily))
}
