// Trace replay: the dataset's headline use case — evaluate a *different*
// scheduler against the *recorded* workload. This example produces a
// dataset (stand-in for the released Zenodo CSVs), reconstructs the
// workload from it with BuildReplay, and replays it through a scheduler
// with a different placement policy, comparing fleet imbalance.
package main

import (
	"bytes"
	"fmt"
	"log"

	"sapsim"
	"sapsim/internal/dataset"
	"sapsim/internal/esx"
	"sapsim/internal/nova"
	"sapsim/internal/placement"
	"sapsim/internal/sim"
	"sapsim/internal/topology"
	"sapsim/internal/workload"
)

func main() {
	// Phase 1: the "measurement" run, producing the released dataset. The
	// Session form keeps the measurement observable; the blocking
	// sapsim.Run(cfg) wrapper would produce identical bytes.
	cfg := sapsim.DefaultConfig(5)
	cfg.Scale = 0.02
	cfg.VMs = 350
	cfg.Days = 5
	cfg.SampleEvery = sim.Hour
	cfg.VMSampleEvery = sim.Hour
	session, err := sapsim.NewSession(cfg)
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()
	if err := session.RunToCompletion(); err != nil {
		log.Fatal(err)
	}
	res, err := session.Result()
	if err != nil {
		log.Fatal(err)
	}
	var csv bytes.Buffer
	if err := dataset.Write(&csv, res.Store, dataset.WriteOptions{}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measurement run: %d VMs, dataset %d KiB\n", len(res.VMs), csv.Len()>>10)

	// Phase 2: a downstream consumer loads the CSV and reconstructs the
	// workload — recorded demand traces, arrivals, and lifetimes.
	store, err := dataset.Read(&csv)
	if err != nil {
		log.Fatal(err)
	}
	instances, err := workload.BuildReplay(store, cfg.Horizon())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replay workload: %d instances reconstructed from telemetry\n\n", len(instances))

	// Phase 3: replay through two scheduler variants on a fresh region.
	variants := []struct {
		name string
		cfg  nova.Config
	}{
		{"production (spread gp / pack HANA)", nova.DefaultConfig()},
		{"pack-everything (BestFit-style)", packConfig()},
	}
	for _, v := range variants {
		region, err := topology.Build(topology.DefaultBuildSpec(cfg.Scale))
		if err != nil {
			log.Fatal(err)
		}
		fleet := esx.NewFleet(region, esx.DefaultConfig())
		sched, err := nova.NewScheduler(fleet, placement.NewService(), v.cfg)
		if err != nil {
			log.Fatal(err)
		}
		engine := sim.NewEngine()
		placed, failed := 0, 0
		for _, in := range instances {
			in := in
			apply := func(at sim.Time) {
				if _, err := sched.Schedule(&nova.RequestSpec{VM: in.VM}, at); err != nil {
					failed++
					return
				}
				placed++
				if del := in.DeleteAt(); del < cfg.Horizon() {
					engine.SchedulePriority(del, -1, func(at sim.Time) {
						if in.VM.Node != nil {
							_ = sched.Delete(in.VM, at)
						}
					})
				}
			}
			if in.ArriveAt <= 0 {
				apply(0)
			} else if _, err := engine.Schedule(in.ArriveAt, apply); err != nil {
				log.Fatal(err)
			}
		}
		if err := engine.Run(cfg.Horizon()); err != nil {
			log.Fatal(err)
		}

		// Compare end-state fleet balance under the replayed demand.
		minUtil, maxUtil := 101.0, -1.0
		active := 0
		for _, h := range fleet.Hosts() {
			if h.VMCount() == 0 {
				continue
			}
			active++
			m := h.Snapshot(cfg.Horizon(), sim.Hour)
			if m.CPUUtilPct < minUtil {
				minUtil = m.CPUUtilPct
			}
			if m.CPUUtilPct > maxUtil {
				maxUtil = m.CPUUtilPct
			}
		}
		fmt.Printf("%-36s placed=%4d failed=%3d active-nodes=%2d node-util %5.1f%%..%5.1f%%\n",
			v.name, placed, failed, active, minUtil, maxUtil)
	}
	fmt.Println("\nreading: packing uses fewer nodes at higher peak utilization —")
	fmt.Println("the bin-packing/load-balancing tradeoff of Sec. 3.2, on recorded demand.")
}

// packConfig bin-packs everything: negative RAM weigher and packing node
// policy for both classes.
func packConfig() nova.Config {
	cfg := nova.DefaultConfig()
	cfg.Weighers = []nova.Weigher{nova.RAMWeigher{Mult: -1}, nova.CPUWeigher{Mult: -0.5}}
	cfg.GeneralNodePolicy = nova.PackNodes
	cfg.HANANodePolicy = nova.PackNodes
	return cfg
}
