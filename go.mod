module sapsim

go 1.24
