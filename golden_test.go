package sapsim

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden artifact digests")

const goldenPath = "testdata/artifact_digests.txt"

// goldenConfig is DefaultConfig(42) at reduced scale: small enough for
// tier-1, large enough that every artifact has real content.
func goldenConfig() Config {
	cfg := DefaultConfig(42)
	cfg.Scale = 0.02
	cfg.VMs = 960
	cfg.Days = 10
	return cfg
}

// TestGoldenArtifacts pins SHA-256 digests of all 18 experiment artifacts
// for DefaultConfig(42) at reduced scale. The simulation is deterministic
// per seed, so any refactor that drifts the paper reproduction — by one
// byte — fails here. Intentional changes re-bless the goldens with
// `go test -run TestGoldenArtifacts -update .`.
func TestGoldenArtifacts(t *testing.T) {
	res, err := Run(goldenConfig())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	// The self-profiler is always on; prove it was actually engaged for
	// this run, so the digest comparison below demonstrates profiling
	// leaves all 18 artifacts byte-identical rather than being a no-op.
	if res.Profile == nil {
		t.Fatal("golden run carried no engine profile")
	}
	if err := res.Profile.Validate(); err != nil {
		t.Fatalf("golden run profile invalid: %v", err)
	}
	if res.Profile.Events == 0 || res.Profile.AccountedNanos == 0 {
		t.Fatalf("profiler idle during golden run: %d events, %d ns attributed",
			res.Profile.Events, res.Profile.AccountedNanos)
	}
	got := make(map[string]string)
	var order []string
	for _, exp := range Experiments() {
		art, err := exp.Compute(res)
		if err != nil {
			t.Fatalf("%s: %v", exp.ID, err)
		}
		got[exp.ID] = fmt.Sprintf("%x", sha256.Sum256([]byte(art.Text)))
		order = append(order, exp.ID)
	}
	if len(order) != 18 {
		t.Fatalf("expected 18 experiment artifacts, got %d", len(order))
	}

	if *updateGolden {
		var b strings.Builder
		for _, id := range order {
			fmt.Fprintf(&b, "%s %s\n", id, got[id])
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d digests", goldenPath, len(order))
		return
	}

	compareGoldens(t, got, order)
}

// readGoldens loads the pinned digest file.
func readGoldens(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading goldens (run with -update to create them): %v", err)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		id, sum, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		want[id] = sum
	}
	return want
}

func compareGoldens(t *testing.T, got map[string]string, order []string) {
	t.Helper()
	want := readGoldens(t)
	if len(want) != len(order) {
		t.Errorf("golden file has %d digests, run produced %d", len(want), len(order))
	}
	for _, id := range order {
		if want[id] == "" {
			t.Errorf("%s: no golden digest (run with -update after verifying the change)", id)
			continue
		}
		if got[id] != want[id] {
			t.Errorf("%s: artifact drifted: digest %s, golden %s", id, got[id], want[id])
		}
	}
}

// TestGoldenArtifactsSnapshotResume proves the snapshot subsystem against
// the same goldens: snapshot the golden run at the midpoint of its horizon,
// round-trip the snapshot through its wire form, resume a fresh session
// from it, and finish — all 18 artifact digests must still match the
// uninterrupted run byte for byte. This is the warm-resume path a
// re-booked dispatch cell takes, pinned to the paper reproduction.
func TestGoldenArtifactsSnapshotResume(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens are blessed through TestGoldenArtifacts")
	}
	cfg := goldenConfig()
	s, err := NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	midpoint := int(cfg.Horizon()/cfg.SampleEvery) / 2
	if _, err := s.Step(midpoint); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}
	blob, err := EncodeSnapshotBytes(snap)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := DecodeSnapshotBytes(blob)
	if err != nil {
		t.Fatal(err)
	}
	resumed, err := ResumeFromSnapshot(cfg, decoded)
	if err != nil {
		t.Fatal(err)
	}
	defer resumed.Close()
	if err := resumed.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	res, err := resumed.Result()
	if err != nil {
		t.Fatal(err)
	}

	got := make(map[string]string)
	var order []string
	for _, exp := range Experiments() {
		art, err := exp.Compute(res)
		if err != nil {
			t.Fatalf("%s: %v", exp.ID, err)
		}
		got[exp.ID] = fmt.Sprintf("%x", sha256.Sum256([]byte(art.Text)))
		order = append(order, exp.ID)
	}
	compareGoldens(t, got, order)
}

// TestGoldenArtifactsSession proves the Session lifecycle and the Run
// compatibility wrapper emit identical artifacts: the same goldens must
// hold for a run driven through NewSession with uneven Step boundaries,
// both for artifacts computed from the final Result and for artifacts
// streamed incrementally as ArtifactReady events mid-run.
func TestGoldenArtifactsSession(t *testing.T) {
	if *updateGolden {
		t.Skip("goldens are blessed through TestGoldenArtifacts")
	}
	var mu sync.Mutex
	streamed := make(map[string]string)
	s, err := NewSession(goldenConfig(),
		WithIncrementalArtifacts(),
		WithObserverFunc(func(ev SessionEvent) {
			if a, ok := ev.(ArtifactReady); ok {
				mu.Lock()
				streamed[a.Artifact.ID] = fmt.Sprintf("%x", sha256.Sum256([]byte(a.Artifact.Text)))
				mu.Unlock()
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	// Drive the window in deliberately uneven segments: a few ticks, a
	// day-sized chunk, then the rest.
	if _, err := s.Step(3); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Step(288); err != nil {
		t.Fatal(err)
	}
	if err := s.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	res, err := s.Result()
	if err != nil {
		t.Fatal(err)
	}

	got := make(map[string]string)
	var order []string
	for _, exp := range Experiments() {
		art, err := exp.Compute(res)
		if err != nil {
			t.Fatalf("%s: %v", exp.ID, err)
		}
		got[exp.ID] = fmt.Sprintf("%x", sha256.Sum256([]byte(art.Text)))
		order = append(order, exp.ID)
	}
	compareGoldens(t, got, order)

	// The incremental stream carries the same bytes (dispatcher drained at
	// completion, so every ArtifactReady has been delivered).
	mu.Lock()
	defer mu.Unlock()
	if len(streamed) != len(order) {
		t.Fatalf("streamed %d artifacts, want %d", len(streamed), len(order))
	}
	want := readGoldens(t)
	for _, id := range order {
		if streamed[id] != want[id] {
			t.Errorf("%s: streamed artifact drifted from golden: %s vs %s", id, streamed[id], want[id])
		}
	}
}
