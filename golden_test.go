package sapsim

import (
	"crypto/sha256"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden artifact digests")

const goldenPath = "testdata/artifact_digests.txt"

// goldenConfig is DefaultConfig(42) at reduced scale: small enough for
// tier-1, large enough that every artifact has real content.
func goldenConfig() Config {
	cfg := DefaultConfig(42)
	cfg.Scale = 0.02
	cfg.VMs = 960
	cfg.Days = 10
	return cfg
}

// TestGoldenArtifacts pins SHA-256 digests of all 18 experiment artifacts
// for DefaultConfig(42) at reduced scale. The simulation is deterministic
// per seed, so any refactor that drifts the paper reproduction — by one
// byte — fails here. Intentional changes re-bless the goldens with
// `go test -run TestGoldenArtifacts -update .`.
func TestGoldenArtifacts(t *testing.T) {
	res, err := Run(goldenConfig())
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	got := make(map[string]string)
	var order []string
	for _, exp := range Experiments() {
		art, err := exp.Compute(res)
		if err != nil {
			t.Fatalf("%s: %v", exp.ID, err)
		}
		got[exp.ID] = fmt.Sprintf("%x", sha256.Sum256([]byte(art.Text)))
		order = append(order, exp.ID)
	}
	if len(order) != 18 {
		t.Fatalf("expected 18 experiment artifacts, got %d", len(order))
	}

	if *updateGolden {
		var b strings.Builder
		for _, id := range order {
			fmt.Fprintf(&b, "%s %s\n", id, got[id])
		}
		if err := os.MkdirAll(filepath.Dir(goldenPath), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(b.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d digests", goldenPath, len(order))
		return
	}

	data, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("reading goldens (run with -update to create them): %v", err)
	}
	want := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		id, sum, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		want[id] = sum
	}
	if len(want) != len(order) {
		t.Errorf("golden file has %d digests, run produced %d", len(want), len(order))
	}
	for _, id := range order {
		if want[id] == "" {
			t.Errorf("%s: no golden digest (run with -update after verifying the change)", id)
			continue
		}
		if got[id] != want[id] {
			t.Errorf("%s: artifact drifted: digest %s, golden %s", id, got[id], want[id])
		}
	}
}
