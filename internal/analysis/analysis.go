// Package analysis computes the paper's evaluation artifacts from telemetry:
// daily heatmaps (Figs. 5–7, 10–13), CPU ready-time and contention
// aggregates (Figs. 8–9), VM utilization CDFs (Fig. 14), lifetime summaries
// (Fig. 15), and the size classifications of Tables 1–2.
package analysis

import (
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
	"sapsim/internal/vmmodel"
)

// mapSeries fans fn out over the series with a bounded worker pool and
// returns the results in input order, so downstream merges stay
// deterministic regardless of scheduling. Aggregations over the sharded
// store are per-series independent, which makes this the one parallel
// primitive every heatmap and pooled statistic needs.
func mapSeries[T any](series []*telemetry.Series, fn func(*telemetry.Series) T) []T {
	out := make([]T, len(series))
	workers := runtime.GOMAXPROCS(0)
	if workers > len(series) {
		workers = len(series)
	}
	if workers <= 1 {
		for i, s := range series {
			out[i] = fn(s)
		}
		return out
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(series) {
					return
				}
				out[i] = fn(series[i])
			}
		}()
	}
	wg.Wait()
	return out
}

// Heatmap is one of the paper's daily-average heatmaps: rows are days of
// the observation window, columns are entities (nodes or building blocks)
// sorted from most free to least free resources, as in Figs. 5–7 and 10–13.
// NaN cells mark missing data (white cells: maintenance or churn).
type Heatmap struct {
	Metric  string
	Columns []string
	Days    int
	// Cells[day][col]; NaN = missing.
	Cells [][]float64
}

// Cell returns the value at (day, col).
func (h *Heatmap) Cell(day, col int) float64 { return h.Cells[day][col] }

// ColumnMean returns the across-days mean of a column, ignoring NaN.
func (h *Heatmap) ColumnMean(col int) float64 {
	sum, n := 0.0, 0
	for d := 0; d < h.Days; d++ {
		if v := h.Cells[d][col]; !math.IsNaN(v) {
			sum += v
			n++
		}
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}

// Transform maps a raw metric value to the plotted value; FreePercent is
// the one used by every heatmap in the paper (free = 100 − used).
// Transforms must be pure (safe for concurrent use): DailyHeatmap and
// TopKByMax apply them from parallel workers.
type Transform func(float64) float64

// FreePercent converts a utilization percentage to free percentage.
func FreePercent(v float64) float64 { return 100 - v }

// Identity returns v unchanged.
func Identity(v float64) float64 { return v }

// DailyHeatmap builds a heatmap of daily means of the metric, one column
// per distinct value of entityLabel, sorted by descending overall mean
// (most free first, matching the paper's column order).
func DailyHeatmap(q telemetry.Querier, metric, entityLabel string, days int, tf Transform, matchers ...telemetry.Matcher) *Heatmap {
	series := q.Select(metric, matchers...)
	type col struct {
		name  string
		cells []float64
		mean  float64
	}
	perSeries := mapSeries(series, func(s *telemetry.Series) *col {
		name := s.Labels.Get(entityLabel)
		if name == "" {
			return nil
		}
		stats := telemetry.DailyStats(s, days)
		cells := make([]float64, days)
		sum, n := 0.0, 0
		for d, st := range stats {
			if st.N == 0 {
				cells[d] = math.NaN()
				continue
			}
			v := tf(st.Mean)
			cells[d] = v
			sum += v
			n++
		}
		mean := math.NaN()
		if n > 0 {
			mean = sum / float64(n)
		}
		return &col{name: name, cells: cells, mean: mean}
	})
	cols := make([]col, 0, len(perSeries))
	for _, c := range perSeries {
		if c != nil {
			cols = append(cols, *c)
		}
	}
	sort.Slice(cols, func(i, j int) bool {
		mi, mj := cols[i].mean, cols[j].mean
		switch {
		case math.IsNaN(mi) && math.IsNaN(mj):
			return cols[i].name < cols[j].name
		case math.IsNaN(mi):
			return false
		case math.IsNaN(mj):
			return true
		case mi != mj:
			return mi > mj
		default:
			return cols[i].name < cols[j].name
		}
	})
	h := &Heatmap{Metric: metric, Days: days}
	for _, c := range cols {
		h.Columns = append(h.Columns, c.name)
	}
	h.Cells = make([][]float64, days)
	for d := 0; d < days; d++ {
		h.Cells[d] = make([]float64, len(cols))
		for i, c := range cols {
			h.Cells[d][i] = c.cells[d]
		}
	}
	return h
}

// GroupedHeatmap aggregates node-level series into group-level columns
// (e.g. building blocks, Fig. 6) by averaging the daily means of member
// series. groupOf maps an entity name to its group ("" skips the series).
func GroupedHeatmap(q telemetry.Querier, metric, entityLabel string, days int, tf Transform, groupOf func(string) string) *Heatmap {
	// Resolve group membership sequentially first (groupOf is caller
	// code and not assumed goroutine-safe), so the parallel stats pass
	// only touches series that survive the filter.
	var (
		kept       []*telemetry.Series
		keptGroups []string
	)
	for _, s := range q.Select(metric) {
		entity := s.Labels.Get(entityLabel)
		if entity == "" {
			continue
		}
		g := groupOf(entity)
		if g == "" {
			continue
		}
		kept = append(kept, s)
		keptGroups = append(keptGroups, g)
	}
	// Per-series daily stats in parallel; the group merge below runs
	// sequentially in series order, keeping float accumulation
	// deterministic.
	perSeries := mapSeries(kept, func(s *telemetry.Series) []telemetry.DailyStat {
		return telemetry.DailyStats(s, days)
	})
	type agg struct {
		sum []float64
		n   []int
	}
	groups := map[string]*agg{}
	var groupOrder []string
	for i := range kept {
		g := keptGroups[i]
		a, ok := groups[g]
		if !ok {
			a = &agg{sum: make([]float64, days), n: make([]int, days)}
			groups[g] = a
			groupOrder = append(groupOrder, g)
		}
		for d, st := range perSeries[i] {
			if st.N == 0 {
				continue
			}
			a.sum[d] += tf(st.Mean)
			a.n[d]++
		}
	}
	type col struct {
		name  string
		cells []float64
		mean  float64
	}
	cols := make([]col, 0, len(groups))
	for _, name := range groupOrder {
		a := groups[name]
		cells := make([]float64, days)
		total, cnt := 0.0, 0
		for d := 0; d < days; d++ {
			if a.n[d] == 0 {
				cells[d] = math.NaN()
				continue
			}
			cells[d] = a.sum[d] / float64(a.n[d])
			total += cells[d]
			cnt++
		}
		mean := math.NaN()
		if cnt > 0 {
			mean = total / float64(cnt)
		}
		cols = append(cols, col{name: name, cells: cells, mean: mean})
	}
	sort.Slice(cols, func(i, j int) bool {
		mi, mj := cols[i].mean, cols[j].mean
		switch {
		case math.IsNaN(mi) && math.IsNaN(mj):
			return cols[i].name < cols[j].name
		case math.IsNaN(mi):
			return false
		case math.IsNaN(mj):
			return true
		case mi != mj:
			return mi > mj
		default:
			return cols[i].name < cols[j].name
		}
	})
	h := &Heatmap{Metric: metric, Days: days}
	for _, c := range cols {
		h.Columns = append(h.Columns, c.name)
	}
	h.Cells = make([][]float64, days)
	for d := 0; d < days; d++ {
		h.Cells[d] = make([]float64, len(cols))
		for i, c := range cols {
			h.Cells[d][i] = c.cells[d]
		}
	}
	return h
}

// NodeStat is one node's aggregate over the full window (Fig. 8 bars).
type NodeStat struct {
	Node string
	Max  float64
	P95  float64
	Mean float64
}

// TopKByMax returns the k nodes with the highest maximum of the metric
// across the window, with per-node max/p95/mean — Figure 8's aggregation
// (values converted by tf, e.g. ms → s).
func TopKByMax(q telemetry.Querier, metric, entityLabel string, k int, tf Transform) []NodeStat {
	perSeries := mapSeries(q.Select(metric), func(s *telemetry.Series) *NodeStat {
		name := s.Labels.Get(entityLabel)
		if name == "" || len(s.Samples) == 0 {
			return nil
		}
		return &NodeStat{
			Node: name,
			Max:  tf(telemetry.Max(s.Samples)),
			P95:  tf(telemetry.Percentile(s.Samples, 95)),
			Mean: tf(telemetry.Mean(s.Samples)),
		}
	})
	stats := make([]NodeStat, 0, len(perSeries))
	for _, s := range perSeries {
		if s != nil {
			stats = append(stats, *s)
		}
	}
	sort.Slice(stats, func(i, j int) bool {
		if stats[i].Max != stats[j].Max {
			return stats[i].Max > stats[j].Max
		}
		return stats[i].Node < stats[j].Node
	})
	if k > 0 && len(stats) > k {
		stats = stats[:k]
	}
	return stats
}

// DailyAggregate is one day's pooled statistic over all entities (Fig. 9
// lines: mean, p95, max of contention over all nodes).
type DailyAggregate struct {
	Day  int
	Mean float64
	P95  float64
	Max  float64
	N    int
}

// DailyPooled pools every series of the metric per day and reports
// mean/p95/max across all samples of all entities.
func DailyPooled(q telemetry.Querier, metric string, days int) []DailyAggregate {
	series := q.Select(metric)
	// Slice each series into its per-day windows in parallel (cheap
	// aliasing subslices); pools are then concatenated in series order so
	// the float accumulation is deterministic.
	windows := mapSeries(series, func(s *telemetry.Series) [][]telemetry.Sample {
		win := make([][]telemetry.Sample, days)
		for d := 0; d < days; d++ {
			from := sim.Time(d) * sim.Day
			win[d] = s.Range(from, from+sim.Day)
		}
		return win
	})
	out := make([]DailyAggregate, days)
	for d := 0; d < days; d++ {
		var pool []telemetry.Sample
		for i := range series {
			pool = append(pool, windows[i][d]...)
		}
		a := DailyAggregate{Day: d, N: len(pool)}
		if len(pool) == 0 {
			a.Mean, a.P95, a.Max = math.NaN(), math.NaN(), math.NaN()
		} else {
			a.Mean = telemetry.Mean(pool)
			a.P95 = telemetry.Percentile(pool, 95)
			a.Max = telemetry.Max(pool)
		}
		out[d] = a
	}
	return out
}

// CDF is an empirical distribution: sorted values with cumulative
// probabilities (Fig. 14).
type CDF struct {
	Values []float64 // sorted ascending
}

// NewCDF builds a CDF from raw values (NaN dropped).
func NewCDF(values []float64) *CDF {
	vs := make([]float64, 0, len(values))
	for _, v := range values {
		if !math.IsNaN(v) {
			vs = append(vs, v)
		}
	}
	sort.Float64s(vs)
	return &CDF{Values: vs}
}

// At returns P(X <= x).
func (c *CDF) At(x float64) float64 {
	if len(c.Values) == 0 {
		return math.NaN()
	}
	i := sort.SearchFloat64s(c.Values, x)
	// Advance over equal values to get P(X <= x), not P(X < x).
	for i < len(c.Values) && c.Values[i] <= x {
		i++
	}
	return float64(i) / float64(len(c.Values))
}

// Quantile returns the q-th quantile (0..1).
func (c *CDF) Quantile(q float64) float64 {
	if len(c.Values) == 0 {
		return math.NaN()
	}
	return telemetry.PercentileValues(c.Values, q*100)
}

// Utilization thresholds from Sec. 5.5: under-utilized below 70%, optimal
// 70–85%, over-utilized above 85%.
const (
	UnderThreshold = 0.70
	OverThreshold  = 0.85
)

// UtilizationSplit classifies a population of mean usage ratios.
type UtilizationSplit struct {
	Under, Optimal, Over float64 // fractions, sum to 1
	N                    int
}

// SplitUtilization applies the paper's thresholds to a CDF of usage ratios.
func SplitUtilization(c *CDF) UtilizationSplit {
	n := len(c.Values)
	if n == 0 {
		return UtilizationSplit{}
	}
	under := c.At(UnderThreshold - 1e-12)
	upTo85 := c.At(OverThreshold)
	return UtilizationSplit{
		Under:   under,
		Optimal: upTo85 - under,
		Over:    1 - upTo85,
		N:       n,
	}
}

// VMMeanUsage computes each VM's mean usage ratio over the window from the
// vROps VM metrics and returns the population CDF (Fig. 14).
func VMMeanUsage(q telemetry.Querier, metric string, from, to sim.Time) *CDF {
	perSeries := mapSeries(q.Select(metric), func(s *telemetry.Series) float64 {
		return telemetry.MeanOverRange(s, from, to)
	})
	means := make([]float64, 0, len(perSeries))
	for _, m := range perSeries {
		if !math.IsNaN(m) {
			means = append(means, m)
		}
	}
	return NewCDF(means)
}

// LifetimeRecord pairs a flavor with an observed lifetime (Fig. 15 input).
type LifetimeRecord struct {
	Flavor   *vmmodel.Flavor
	Lifetime sim.Time
}

// FlavorLifetime is one Fig. 15 bar: a flavor's mean observed lifetime and
// instance count, plus its size classes for grouping.
type FlavorLifetime struct {
	Flavor    *vmmodel.Flavor
	Count     int
	MeanHours float64
	VCPUClass vmmodel.SizeClass
	RAMClass  vmmodel.SizeClass
}

// LifetimeByFlavor aggregates lifetimes per flavor, dropping flavors with
// fewer than minCount instances (the paper uses 30). Results are sorted by
// (VCPUClass, mean) to match Fig. 15a's grouping.
func LifetimeByFlavor(records []LifetimeRecord, minCount int) []FlavorLifetime {
	type acc struct {
		sum float64
		n   int
	}
	byFlavor := map[*vmmodel.Flavor]*acc{}
	for _, r := range records {
		a, ok := byFlavor[r.Flavor]
		if !ok {
			a = &acc{}
			byFlavor[r.Flavor] = a
		}
		a.sum += r.Lifetime.Hours()
		a.n++
	}
	var out []FlavorLifetime
	for f, a := range byFlavor {
		if a.n < minCount {
			continue
		}
		out = append(out, FlavorLifetime{
			Flavor:    f,
			Count:     a.n,
			MeanHours: a.sum / float64(a.n),
			VCPUClass: f.VCPUClass(),
			RAMClass:  f.RAMClass(),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].VCPUClass != out[j].VCPUClass {
			return out[i].VCPUClass < out[j].VCPUClass
		}
		if out[i].MeanHours != out[j].MeanHours {
			return out[i].MeanHours < out[j].MeanHours
		}
		return out[i].Flavor.Name < out[j].Flavor.Name
	})
	return out
}

// MedianLifetimeHours returns the population median lifetime (the "Median:
// 1w" line in Fig. 15).
func MedianLifetimeHours(records []LifetimeRecord) float64 {
	if len(records) == 0 {
		return math.NaN()
	}
	vals := make([]float64, len(records))
	for i, r := range records {
		vals[i] = r.Lifetime.Hours()
	}
	return telemetry.PercentileValues(vals, 50)
}

// ClassCount tallies a VM population by size class (Tables 1 and 2).
func ClassCount(vms []*vmmodel.VM, classify func(*vmmodel.Flavor) vmmodel.SizeClass) map[vmmodel.SizeClass]int {
	out := make(map[vmmodel.SizeClass]int)
	for _, vm := range vms {
		out[classify(vm.Flavor)]++
	}
	return out
}

// StorageDistribution summarizes Fig. 13's headline numbers from per-node
// window means of *free* storage percentage: the fraction of hosts with
// more than 90% free, and the fraction using more than 30%.
type StorageDistribution struct {
	FracAbove90Free float64
	FracAbove30Used float64
	N               int
}

// StorageSummary computes the distribution from a free-storage heatmap.
func StorageSummary(h *Heatmap) StorageDistribution {
	var d StorageDistribution
	for c := range h.Columns {
		mean := h.ColumnMean(c)
		if math.IsNaN(mean) {
			continue
		}
		d.N++
		if mean > 90 {
			d.FracAbove90Free++
		}
		if mean < 70 { // <70% free ⇔ >30% used
			d.FracAbove30Used++
		}
	}
	if d.N > 0 {
		d.FracAbove90Free /= float64(d.N)
		d.FracAbove30Used /= float64(d.N)
	}
	return d
}
