package analysis

import (
	"math"
	"testing"

	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
	"sapsim/internal/vmmodel"
)

func fill(t *testing.T, st *telemetry.Store, metric, node string, days int, value func(day int) float64) {
	t.Helper()
	l := telemetry.MustLabels("hostsystem", node)
	for d := 0; d < days; d++ {
		ts := sim.Time(d)*sim.Day + sim.Hour
		if err := st.Append(metric, l, ts, value(d)); err != nil {
			t.Fatal(err)
		}
	}
}

func TestDailyHeatmapSortedByFree(t *testing.T) {
	st := telemetry.NewStore()
	// n-busy: 80% used; n-idle: 10% used; n-mid: 50%.
	fill(t, st, "cpu", "n-busy", 3, func(int) float64 { return 80 })
	fill(t, st, "cpu", "n-idle", 3, func(int) float64 { return 10 })
	fill(t, st, "cpu", "n-mid", 3, func(int) float64 { return 50 })

	h := DailyHeatmap(st, "cpu", "hostsystem", 3, FreePercent)
	if len(h.Columns) != 3 {
		t.Fatalf("columns = %v", h.Columns)
	}
	// Most free first: idle (90 free), mid (50), busy (20).
	if h.Columns[0] != "n-idle" || h.Columns[1] != "n-mid" || h.Columns[2] != "n-busy" {
		t.Errorf("column order = %v", h.Columns)
	}
	if got := h.Cell(0, 0); got != 90 {
		t.Errorf("cell(0,0) = %v, want 90", got)
	}
	if got := h.ColumnMean(2); got != 20 {
		t.Errorf("busy column mean = %v, want 20", got)
	}
}

func TestDailyHeatmapMissingData(t *testing.T) {
	st := telemetry.NewStore()
	l := telemetry.MustLabels("hostsystem", "n1")
	// Data only on day 0 and day 2.
	if err := st.Append("cpu", l, sim.Hour, 40); err != nil {
		t.Fatal(err)
	}
	if err := st.Append("cpu", l, 2*sim.Day+sim.Hour, 60); err != nil {
		t.Fatal(err)
	}
	h := DailyHeatmap(st, "cpu", "hostsystem", 3, FreePercent)
	if !math.IsNaN(h.Cell(1, 0)) {
		t.Errorf("missing day should be NaN, got %v", h.Cell(1, 0))
	}
	if h.Cell(0, 0) != 60 || h.Cell(2, 0) != 40 {
		t.Errorf("cells = %v / %v", h.Cell(0, 0), h.Cell(2, 0))
	}
}

func TestDailyHeatmapSkipsUnlabeled(t *testing.T) {
	st := telemetry.NewStore()
	if err := st.Append("cpu", telemetry.MustLabels("other", "x"), sim.Hour, 5); err != nil {
		t.Fatal(err)
	}
	h := DailyHeatmap(st, "cpu", "hostsystem", 1, Identity)
	if len(h.Columns) != 0 {
		t.Errorf("unlabeled series produced columns: %v", h.Columns)
	}
}

func TestGroupedHeatmap(t *testing.T) {
	st := telemetry.NewStore()
	fill(t, st, "cpu", "bb0-n0", 2, func(int) float64 { return 20 })
	fill(t, st, "cpu", "bb0-n1", 2, func(int) float64 { return 40 })
	fill(t, st, "cpu", "bb1-n0", 2, func(int) float64 { return 80 })
	groupOf := func(node string) string { return node[:3] }
	h := GroupedHeatmap(st, "cpu", "hostsystem", 2, FreePercent, groupOf)
	if len(h.Columns) != 2 {
		t.Fatalf("columns = %v", h.Columns)
	}
	// bb0 free = 100-30 = 70; bb1 free = 20. Most free first.
	if h.Columns[0] != "bb0" || h.Cell(0, 0) != 70 {
		t.Errorf("bb0 column: %v cell %v", h.Columns, h.Cell(0, 0))
	}
	if h.Cell(0, 1) != 20 {
		t.Errorf("bb1 cell = %v", h.Cell(0, 1))
	}
}

func TestTopKByMax(t *testing.T) {
	st := telemetry.NewStore()
	fill(t, st, "ready_ms", "n-a", 5, func(d int) float64 { return float64(d) * 10000 }) // max 40000
	fill(t, st, "ready_ms", "n-b", 5, func(d int) float64 { return 220000 })             // max 220000
	fill(t, st, "ready_ms", "n-c", 5, func(d int) float64 { return 1000 })               // max 1000
	toSec := func(ms float64) float64 { return ms / 1000 }
	top := TopKByMax(st, "ready_ms", "hostsystem", 2, toSec)
	if len(top) != 2 {
		t.Fatalf("topk = %d", len(top))
	}
	if top[0].Node != "n-b" || top[0].Max != 220 {
		t.Errorf("top node = %+v", top[0])
	}
	if top[1].Node != "n-a" || top[1].Max != 40 {
		t.Errorf("second node = %+v", top[1])
	}
	if top[0].Mean != 220 {
		t.Errorf("n-b mean = %v", top[0].Mean)
	}
	// k=0 returns all.
	if all := TopKByMax(st, "ready_ms", "hostsystem", 0, Identity); len(all) != 3 {
		t.Errorf("k=0 returned %d", len(all))
	}
}

func TestDailyPooled(t *testing.T) {
	st := telemetry.NewStore()
	fill(t, st, "cont", "n1", 2, func(d int) float64 { return 10 })
	fill(t, st, "cont", "n2", 2, func(d int) float64 { return 30 })
	days := DailyPooled(st, "cont", 3)
	if len(days) != 3 {
		t.Fatalf("days = %d", len(days))
	}
	if days[0].Mean != 20 || days[0].Max != 30 || days[0].N != 2 {
		t.Errorf("day0 = %+v", days[0])
	}
	if days[2].N != 0 || !math.IsNaN(days[2].Mean) {
		t.Errorf("empty day = %+v", days[2])
	}
}

func TestCDF(t *testing.T) {
	c := NewCDF([]float64{0.1, 0.5, 0.5, 0.9, math.NaN()})
	if len(c.Values) != 4 {
		t.Fatalf("NaN not dropped: %v", c.Values)
	}
	if got := c.At(0.5); got != 0.75 {
		t.Errorf("At(0.5) = %v, want 0.75", got)
	}
	if got := c.At(0.05); got != 0 {
		t.Errorf("At(0.05) = %v, want 0", got)
	}
	if got := c.At(1.0); got != 1 {
		t.Errorf("At(1.0) = %v, want 1", got)
	}
	if q := c.Quantile(0.5); q < 0.1 || q > 0.9 {
		t.Errorf("median = %v", q)
	}
	empty := NewCDF(nil)
	if !math.IsNaN(empty.At(0.5)) || !math.IsNaN(empty.Quantile(0.5)) {
		t.Error("empty CDF should be NaN")
	}
}

func TestSplitUtilization(t *testing.T) {
	// 6 under (<0.70), 2 optimal, 2 over.
	c := NewCDF([]float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.69, 0.75, 0.80, 0.90, 0.99})
	s := SplitUtilization(c)
	if math.Abs(s.Under-0.6) > 1e-9 {
		t.Errorf("under = %v, want 0.6", s.Under)
	}
	if math.Abs(s.Optimal-0.2) > 1e-9 {
		t.Errorf("optimal = %v, want 0.2", s.Optimal)
	}
	if math.Abs(s.Over-0.2) > 1e-9 {
		t.Errorf("over = %v, want 0.2", s.Over)
	}
	if s.N != 10 {
		t.Errorf("N = %d", s.N)
	}
	if z := SplitUtilization(NewCDF(nil)); z.N != 0 {
		t.Errorf("empty split = %+v", z)
	}
}

func TestVMMeanUsage(t *testing.T) {
	st := telemetry.NewStore()
	l1 := telemetry.MustLabels("virtualmachine", "vm1")
	l2 := telemetry.MustLabels("virtualmachine", "vm2")
	for i := 0; i < 4; i++ {
		ts := sim.Time(i) * sim.Hour
		if err := st.Append("usage", l1, ts, 0.2); err != nil {
			t.Fatal(err)
		}
		if err := st.Append("usage", l2, ts, 0.9); err != nil {
			t.Fatal(err)
		}
	}
	c := VMMeanUsage(st, "usage", 0, sim.Day)
	if len(c.Values) != 2 {
		t.Fatalf("values = %v", c.Values)
	}
	if c.Values[0] != 0.2 || math.Abs(c.Values[1]-0.9) > 1e-12 {
		t.Errorf("means = %v", c.Values)
	}
}

func TestLifetimeByFlavor(t *testing.T) {
	cat := vmmodel.CatalogByName()
	var recs []LifetimeRecord
	for i := 0; i < 40; i++ {
		recs = append(recs, LifetimeRecord{Flavor: cat["MK"], Lifetime: sim.Week})
	}
	for i := 0; i < 35; i++ {
		recs = append(recs, LifetimeRecord{Flavor: cat["XLL"], Lifetime: 365 * sim.Day})
	}
	// Below the min-count cutoff.
	for i := 0; i < 5; i++ {
		recs = append(recs, LifetimeRecord{Flavor: cat["SA"], Lifetime: sim.Hour})
	}
	out := LifetimeByFlavor(recs, 30)
	if len(out) != 2 {
		t.Fatalf("flavors = %d, want 2 (SA below cutoff)", len(out))
	}
	// Sorted by vCPU class: MK (Small) before XLL (ExtraLarge).
	if out[0].Flavor.Name != "MK" || out[1].Flavor.Name != "XLL" {
		t.Errorf("order = %s, %s", out[0].Flavor.Name, out[1].Flavor.Name)
	}
	if math.Abs(out[0].MeanHours-168) > 1e-9 {
		t.Errorf("MK mean = %v, want 168", out[0].MeanHours)
	}
	if out[0].Count != 40 {
		t.Errorf("MK count = %d", out[0].Count)
	}
	if out[1].RAMClass != vmmodel.ExtraLarge {
		t.Errorf("XLL RAM class = %v", out[1].RAMClass)
	}
}

func TestMedianLifetime(t *testing.T) {
	cat := vmmodel.CatalogByName()
	recs := []LifetimeRecord{
		{cat["MK"], sim.Day},
		{cat["MK"], sim.Week},
		{cat["MK"], 30 * sim.Day},
	}
	if got := MedianLifetimeHours(recs); got != 168 {
		t.Errorf("median = %v, want 168", got)
	}
	if !math.IsNaN(MedianLifetimeHours(nil)) {
		t.Error("empty median should be NaN")
	}
}

func TestClassCount(t *testing.T) {
	cat := vmmodel.CatalogByName()
	vms := []*vmmodel.VM{
		{Flavor: cat["SA"]}, {Flavor: cat["SA"]}, {Flavor: cat["MJ"]}, {Flavor: cat["XLL"]},
	}
	byV := ClassCount(vms, func(f *vmmodel.Flavor) vmmodel.SizeClass { return f.VCPUClass() })
	if byV[vmmodel.Small] != 2 || byV[vmmodel.Medium] != 1 || byV[vmmodel.ExtraLarge] != 1 {
		t.Errorf("vCPU classes = %v", byV)
	}
	byR := ClassCount(vms, func(f *vmmodel.Flavor) vmmodel.SizeClass { return f.RAMClass() })
	if byR[vmmodel.Small] != 2 || byR[vmmodel.Medium] != 1 || byR[vmmodel.ExtraLarge] != 1 {
		t.Errorf("RAM classes = %v", byR)
	}
}

func TestStorageSummary(t *testing.T) {
	st := telemetry.NewStore()
	// Free storage percentages: 95 (above 90), 50 (>30 used), 80 (neither).
	fill(t, st, "disk_free", "n1", 2, func(int) float64 { return 95 })
	fill(t, st, "disk_free", "n2", 2, func(int) float64 { return 50 })
	fill(t, st, "disk_free", "n3", 2, func(int) float64 { return 80 })
	h := DailyHeatmap(st, "disk_free", "hostsystem", 2, Identity)
	d := StorageSummary(h)
	if d.N != 3 {
		t.Fatalf("N = %d", d.N)
	}
	if math.Abs(d.FracAbove90Free-1.0/3) > 1e-9 {
		t.Errorf("above90free = %v", d.FracAbove90Free)
	}
	if math.Abs(d.FracAbove30Used-1.0/3) > 1e-9 {
		t.Errorf("above30used = %v", d.FracAbove30Used)
	}
}
