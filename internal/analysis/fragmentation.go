package analysis

import (
	"sort"

	"sapsim/internal/esx"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
)

// Fragmentation analysis quantifies the paper's central scheduling
// objective and failure mode: "maximize the number of placeable VMs per
// flavor" (Sec. 3.2) versus the capacity stranded when free resources are
// scattered across nodes in slivers too small for the flavor ("fragmentation
// of workloads on hypervisors", Sec. 1).

// PlaceableVMs reports how many additional VMs of the flavor the fleet
// could admit right now, respecting per-node admission control (the true,
// fragmentation-aware count).
func PlaceableVMs(fleet *esx.Fleet, f *vmmodel.Flavor) int {
	total := 0
	for _, h := range fleet.Hosts() {
		total += placeableOnHost(h, f)
	}
	return total
}

// placeableOnHost counts flavor instances one host can still admit.
func placeableOnHost(h *esx.Host, f *vmmodel.Flavor) int {
	if h.Node.Maintenance || !h.Fits(f) {
		return 0
	}
	byCPU := h.FreeVCPUs() / f.VCPUs
	byMem := int(h.FreeMemMB() / (int64(f.RAMGiB) << 10))
	n := byCPU
	if byMem < n {
		n = byMem
	}
	if n < 0 {
		return 0
	}
	return n
}

// AggregatePlaceableVMs reports the count a fragmentation-blind view
// implies: pooled free vCPU and memory across the fleet divided by the
// flavor's ask. The gap to PlaceableVMs is the stranded share.
func AggregatePlaceableVMs(fleet *esx.Fleet, f *vmmodel.Flavor) int {
	var freeCPU int
	var freeMem int64
	for _, h := range fleet.Hosts() {
		if h.Node.Maintenance {
			continue
		}
		if c := h.FreeVCPUs(); c > 0 {
			freeCPU += c
		}
		if m := h.FreeMemMB(); m > 0 {
			freeMem += m
		}
	}
	byCPU := freeCPU / f.VCPUs
	byMem := int(freeMem / (int64(f.RAMGiB) << 10))
	if byMem < byCPU {
		return byMem
	}
	return byCPU
}

// FragmentationReport compares the two counts for a flavor.
type FragmentationReport struct {
	Flavor *vmmodel.Flavor
	// Placeable is the admission-aware count.
	Placeable int
	// AggregateImplied is the pooled-capacity count.
	AggregateImplied int
}

// StrandedFraction is the share of apparent capacity that fragmentation
// makes unusable for this flavor: 1 - placeable/implied.
func (r FragmentationReport) StrandedFraction() float64 {
	if r.AggregateImplied <= 0 {
		return 0
	}
	return 1 - float64(r.Placeable)/float64(r.AggregateImplied)
}

// FragmentationByFlavor evaluates every flavor of the catalog against the
// fleet, sorted by descending stranded fraction — the flavors hurt most by
// scattered free capacity (invariably the memory-large ones).
func FragmentationByFlavor(fleet *esx.Fleet, flavors []*vmmodel.Flavor) []FragmentationReport {
	out := make([]FragmentationReport, 0, len(flavors))
	for _, f := range flavors {
		out = append(out, FragmentationReport{
			Flavor:           f,
			Placeable:        PlaceableVMs(fleet, f),
			AggregateImplied: AggregatePlaceableVMs(fleet, f),
		})
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].StrandedFraction(), out[j].StrandedFraction()
		if si != sj {
			return si > sj
		}
		return out[i].Flavor.Name < out[j].Flavor.Name
	})
	return out
}

// BBImbalance summarizes allocation imbalance across the building blocks
// of one kind within a DC — the "measurable imbalances that impair
// scheduling efficiency" of Sec. 7.
type BBImbalance struct {
	DC       string
	Kind     topology.BBKind
	MinPct   float64 // least memory-allocated BB
	MaxPct   float64 // most memory-allocated BB
	Spread   float64
	BBsCount int
}

// BBImbalances computes per-DC, per-kind memory-allocation imbalance,
// skipping reserved blocks.
func BBImbalances(fleet *esx.Fleet) []BBImbalance {
	type key struct {
		dc   string
		kind topology.BBKind
	}
	groups := map[key][]float64{}
	for _, bb := range fleet.Region().BBs() {
		if bb.Reserved {
			continue
		}
		a := fleet.BBAlloc(bb)
		if a.MemCapMB == 0 {
			continue
		}
		k := key{dc: bb.DC.Name, kind: bb.Kind}
		groups[k] = append(groups[k], float64(a.MemAllocMB)/float64(a.MemCapMB)*100)
	}
	var out []BBImbalance
	for k, pcts := range groups {
		imb := BBImbalance{DC: k.dc, Kind: k.kind, BBsCount: len(pcts), MinPct: pcts[0], MaxPct: pcts[0]}
		for _, p := range pcts[1:] {
			if p < imb.MinPct {
				imb.MinPct = p
			}
			if p > imb.MaxPct {
				imb.MaxPct = p
			}
		}
		imb.Spread = imb.MaxPct - imb.MinPct
		out = append(out, imb)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].DC != out[j].DC {
			return out[i].DC < out[j].DC
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
