package analysis

import (
	"fmt"
	"testing"

	"sapsim/internal/esx"
	"sapsim/internal/sim"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
)

type flatProfile struct{ cpu, mem float64 }

func (p flatProfile) CPUUsage(sim.Time) float64  { return p.cpu }
func (p flatProfile) MemUsage(sim.Time) float64  { return p.mem }
func (p flatProfile) NetTxKbps(sim.Time) float64 { return 0 }
func (p flatProfile) NetRxKbps(sim.Time) float64 { return 0 }
func (p flatProfile) DiskUsage(sim.Time) float64 { return 0.1 }

func fragFleet(t *testing.T) (*esx.Fleet, *topology.BuildingBlock) {
	t.Helper()
	r := topology.NewRegion("t")
	dc := r.AddAZ("a").AddDC("d")
	cap := topology.Capacity{PCPUCores: 32, MemoryMB: 256 << 10, StorageGB: 4 << 10, NetworkGbps: 100}
	bb, err := dc.AddBB("bb", topology.GeneralPurpose, 4, cap)
	if err != nil {
		t.Fatal(err)
	}
	return esx.NewFleet(r, esx.DefaultConfig()), bb
}

func place(t *testing.T, fleet *esx.Fleet, node *topology.Node, id, flavor string) {
	t.Helper()
	vm := &vmmodel.VM{ID: vmmodel.ID(id), Flavor: vmmodel.CatalogByName()[flavor], Profile: flatProfile{cpu: 0.2, mem: 0.5}}
	if err := fleet.Place(vm, node, 0); err != nil {
		t.Fatal(err)
	}
}

func TestPlaceableEmptyFleet(t *testing.T) {
	fleet, _ := fragFleet(t)
	// 4 nodes × 256 GiB − 64 GiB reserved = 192 GiB usable each.
	// LB (8 vCPU, 128 GiB): memory-bound → 1 per node.
	lb := vmmodel.CatalogByName()["LB"]
	if got := PlaceableVMs(fleet, lb); got != 4 {
		t.Errorf("placeable LB = %d, want 4", got)
	}
	// Aggregate view: 768 GiB pooled / 128 = 6 — fragmentation hides 2.
	if got := AggregatePlaceableVMs(fleet, lb); got != 6 {
		t.Errorf("aggregate LB = %d, want 6", got)
	}
	rep := FragmentationReport{Flavor: lb, Placeable: 4, AggregateImplied: 6}
	if f := rep.StrandedFraction(); f < 0.3 || f > 0.34 {
		t.Errorf("stranded = %v, want 1/3", f)
	}
}

func TestPlaceableRespectsLoad(t *testing.T) {
	fleet, bb := fragFleet(t)
	lb := vmmodel.CatalogByName()["LB"]
	before := PlaceableVMs(fleet, lb)
	place(t, fleet, bb.Nodes[0], "x", "LB")
	after := PlaceableVMs(fleet, lb)
	if after != before-1 {
		t.Errorf("placeable after one placement = %d, want %d", after, before-1)
	}
	// Maintenance removes a node's contribution entirely.
	bb.Nodes[1].Maintenance = true
	if got := PlaceableVMs(fleet, lb); got != after-1 {
		t.Errorf("placeable with maintenance = %d, want %d", got, after-1)
	}
}

func TestStrandedFractionEdge(t *testing.T) {
	rep := FragmentationReport{Placeable: 0, AggregateImplied: 0}
	if rep.StrandedFraction() != 0 {
		t.Error("zero-capacity stranded fraction should be 0")
	}
}

func TestFragmentationByFlavorOrdering(t *testing.T) {
	fleet, bb := fragFleet(t)
	// Scatter mid-size VMs across all nodes so big flavors are the most
	// fragmented.
	for i, n := range bb.Nodes {
		place(t, fleet, n, fmt.Sprintf("mc-%d", i), "MC")
	}
	flavors := []*vmmodel.Flavor{
		vmmodel.CatalogByName()["SA"],
		vmmodel.CatalogByName()["LB"],
	}
	reports := FragmentationByFlavor(fleet, flavors)
	if len(reports) != 2 {
		t.Fatalf("reports = %d", len(reports))
	}
	// LB (large) must be at least as stranded as SA (tiny).
	if reports[0].Flavor.Name == "SA" && reports[0].StrandedFraction() > reports[1].StrandedFraction() {
		t.Errorf("tiny flavor more stranded than large: %+v", reports)
	}
	for _, r := range reports {
		if r.Placeable > r.AggregateImplied {
			t.Errorf("%s: placeable %d exceeds aggregate %d", r.Flavor.Name, r.Placeable, r.AggregateImplied)
		}
	}
}

func TestBBImbalances(t *testing.T) {
	r := topology.NewRegion("t")
	dc := r.AddAZ("a").AddDC("d")
	cap := topology.Capacity{PCPUCores: 32, MemoryMB: 256 << 10, StorageGB: 4 << 10, NetworkGbps: 100}
	bb1, _ := dc.AddBB("b1", topology.GeneralPurpose, 2, cap)
	bb2, _ := dc.AddBB("b2", topology.GeneralPurpose, 2, cap)
	bb3, _ := dc.AddBB("b3", topology.GeneralPurpose, 2, cap)
	bb3.Reserved = true
	fleet := esx.NewFleet(r, esx.DefaultConfig())
	// Load bb1 heavily, bb2 not at all.
	place(t, fleet, bb1.Nodes[0], "a", "LB")
	place(t, fleet, bb1.Nodes[1], "b", "LB")
	_ = bb2

	imbs := BBImbalances(fleet)
	if len(imbs) != 1 {
		t.Fatalf("groups = %d, want 1 (reserved excluded)", len(imbs))
	}
	imb := imbs[0]
	if imb.BBsCount != 2 {
		t.Errorf("BBs counted = %d, want 2", imb.BBsCount)
	}
	if imb.MinPct != 0 || imb.MaxPct <= 0 {
		t.Errorf("imbalance = %+v", imb)
	}
	if imb.Spread != imb.MaxPct-imb.MinPct {
		t.Errorf("spread inconsistent: %+v", imb)
	}
}
