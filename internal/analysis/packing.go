package analysis

import "sapsim/internal/esx"

// PackingStats summarizes fleet-wide allocation efficiency at a point in
// time: how much of the admissible capacity the admitted VMs occupy. It is
// the headline packing-efficiency artifact the sweep runner compares across
// scenarios and scheduler configurations.
type PackingStats struct {
	// ActiveHosts counts hosts not in maintenance.
	ActiveHosts int
	// VMs counts resident VMs across active hosts.
	VMs int
	// MemAllocPct is allocated memory over admissible memory capacity,
	// across active hosts.
	MemAllocPct float64
	// VCPUAllocPct is allocated vCPUs over the admissible (overcommitted)
	// vCPU capacity, across active hosts.
	VCPUAllocPct float64
}

// Packing computes fleet-wide packing efficiency over active hosts.
func Packing(fleet *esx.Fleet) PackingStats {
	var s PackingStats
	var memCap, memAlloc, cpuCap, cpuAlloc int64
	for _, h := range fleet.Hosts() {
		if h.Node.Maintenance {
			continue
		}
		s.ActiveHosts++
		s.VMs += h.VMCount()
		memCap += h.MemCapacityMB()
		memAlloc += h.AllocatedMemMB()
		cpuCap += int64(h.VCPUCapacity())
		cpuAlloc += int64(h.AllocatedVCPUs())
	}
	if memCap > 0 {
		s.MemAllocPct = float64(memAlloc) / float64(memCap) * 100
	}
	if cpuCap > 0 {
		s.VCPUAllocPct = float64(cpuAlloc) / float64(cpuCap) * 100
	}
	return s
}
