package analysis

import (
	"math"

	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
)

// Temporal analyses backing two observations in the paper: ready time shows
// "less workload and thus less contention on weekends and more during the
// working days" (Fig. 8 discussion), and memory heatmaps show "significant
// and abrupt shifts from high to low memory utilization ... caused by VM
// migrations, shutdowns, or terminations" (Fig. 10 discussion).

// weekdayOf maps a day index since the epoch (2024-07-31, a Wednesday) to
// 0=Monday … 6=Sunday.
func weekdayOf(day int) int { return (2 + day) % 7 }

// IsWeekend reports whether the day index falls on Saturday or Sunday.
func IsWeekend(day int) bool {
	wd := weekdayOf(day)
	return wd == 5 || wd == 6
}

// WeekEffect quantifies the weekday/weekend demand difference of a metric.
type WeekEffect struct {
	WeekdayMean float64
	WeekendMean float64
	// Dip is the relative weekend reduction: 1 - weekend/weekday.
	Dip float64
	// WeekdayDays and WeekendDays count contributing days.
	WeekdayDays, WeekendDays int
}

// WeekdayWeekendEffect pools all series of a metric per day and compares
// weekday and weekend means.
func WeekdayWeekendEffect(q telemetry.Querier, metric string, days int) WeekEffect {
	daily := DailyPooled(q, metric, days)
	var e WeekEffect
	wdSum, weSum := 0.0, 0.0
	for _, d := range daily {
		if d.N == 0 || math.IsNaN(d.Mean) {
			continue
		}
		if IsWeekend(d.Day) {
			weSum += d.Mean
			e.WeekendDays++
		} else {
			wdSum += d.Mean
			e.WeekdayDays++
		}
	}
	if e.WeekdayDays > 0 {
		e.WeekdayMean = wdSum / float64(e.WeekdayDays)
	} else {
		e.WeekdayMean = math.NaN()
	}
	if e.WeekendDays > 0 {
		e.WeekendMean = weSum / float64(e.WeekendDays)
	} else {
		e.WeekendMean = math.NaN()
	}
	if e.WeekdayMean != 0 && !math.IsNaN(e.WeekdayMean) && !math.IsNaN(e.WeekendMean) {
		e.Dip = 1 - e.WeekendMean/e.WeekdayMean
	} else {
		e.Dip = math.NaN()
	}
	return e
}

// Shift is one abrupt level change in a series.
type Shift struct {
	At sim.Time
	// Before and After are the window means either side of the change.
	Before, After float64
}

// Delta reports the signed level change.
func (s Shift) Delta() float64 { return s.After - s.Before }

// DetectShifts finds abrupt level changes: instants where the mean of the
// following window differs from the mean of the preceding window by more
// than threshold. Windows are non-overlapping scans stepped by half a
// window; consecutive detections are merged into the largest one.
func DetectShifts(s *telemetry.Series, window sim.Time, threshold float64) []Shift {
	if window <= 0 || len(s.Samples) == 0 {
		return nil
	}
	var shifts []Shift
	start := s.Samples[0].T
	end := s.Samples[len(s.Samples)-1].T
	step := window / 2
	if step <= 0 {
		step = window
	}
	var last *Shift
	for t := start + window; t+window <= end; t += step {
		before := telemetry.Mean(s.Range(t-window, t))
		after := telemetry.Mean(s.Range(t, t+window))
		if math.IsNaN(before) || math.IsNaN(after) {
			continue
		}
		if math.Abs(after-before) < threshold {
			last = nil
			continue
		}
		if last != nil && sameSign(last.Delta(), after-before) {
			// Extend the ongoing shift if it grew.
			if math.Abs(after-before) > math.Abs(last.Delta()) {
				last.At = t
				last.Before = before
				last.After = after
			}
			continue
		}
		shifts = append(shifts, Shift{At: t, Before: before, After: after})
		last = &shifts[len(shifts)-1]
	}
	return shifts
}

func sameSign(a, b float64) bool { return (a >= 0) == (b >= 0) }

// Autocorrelation computes the lag-k autocorrelation of a value series,
// the statistic behind "the data is consistent across the observed period"
// (Fig. 9) versus visible weekly patterns (Fig. 8).
func Autocorrelation(values []float64, lag int) float64 {
	n := len(values)
	if lag <= 0 || lag >= n {
		return math.NaN()
	}
	mean := 0.0
	for _, v := range values {
		mean += v
	}
	mean /= float64(n)
	var num, den float64
	for i := 0; i < n; i++ {
		d := values[i] - mean
		den += d * d
		if i+lag < n {
			num += d * (values[i+lag] - mean)
		}
	}
	if den == 0 {
		return math.NaN()
	}
	return num / den
}
