package analysis

import (
	"math"
	"testing"

	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
)

func TestWeekdayMapping(t *testing.T) {
	// Epoch 2024-07-31 is a Wednesday (weekday index 2).
	if weekdayOf(0) != 2 {
		t.Errorf("day 0 weekday = %d, want 2 (Wednesday)", weekdayOf(0))
	}
	// 2024-08-03 (day 3) is a Saturday, 08-04 a Sunday.
	if !IsWeekend(3) || !IsWeekend(4) {
		t.Error("days 3/4 should be the first weekend")
	}
	if IsWeekend(2) || IsWeekend(5) {
		t.Error("Friday/Monday misclassified")
	}
	// One week later.
	if !IsWeekend(10) || !IsWeekend(11) {
		t.Error("days 10/11 should be the second weekend")
	}
}

func TestWeekdayWeekendEffect(t *testing.T) {
	st := telemetry.NewStore()
	l := telemetry.MustLabels("hostsystem", "n1")
	for d := 0; d < 14; d++ {
		v := 100.0
		if IsWeekend(d) {
			v = 60
		}
		if err := st.Append("load", l, sim.Time(d)*sim.Day+sim.Hour, v); err != nil {
			t.Fatal(err)
		}
	}
	e := WeekdayWeekendEffect(st, "load", 14)
	if e.WeekdayMean != 100 || e.WeekendMean != 60 {
		t.Errorf("means = %v / %v", e.WeekdayMean, e.WeekendMean)
	}
	if math.Abs(e.Dip-0.4) > 1e-9 {
		t.Errorf("dip = %v, want 0.4", e.Dip)
	}
	if e.WeekdayDays != 10 || e.WeekendDays != 4 {
		t.Errorf("day counts = %d / %d", e.WeekdayDays, e.WeekendDays)
	}
}

func TestWeekEffectEmpty(t *testing.T) {
	e := WeekdayWeekendEffect(telemetry.NewStore(), "none", 7)
	if !math.IsNaN(e.WeekdayMean) || !math.IsNaN(e.Dip) {
		t.Errorf("empty effect = %+v", e)
	}
}

func TestDetectShifts(t *testing.T) {
	s := &telemetry.Series{}
	// Level 80 for 5 days, abrupt drop to 20 (a termination), then flat.
	for i := 0; i < 10*24; i++ {
		v := 80.0
		if i >= 5*24 {
			v = 20
		}
		s.Samples = append(s.Samples, telemetry.Sample{T: sim.Time(i) * sim.Hour, V: v})
	}
	shifts := DetectShifts(s, sim.Day, 30)
	if len(shifts) != 1 {
		t.Fatalf("shifts = %d, want 1: %+v", len(shifts), shifts)
	}
	sh := shifts[0]
	if sh.Delta() > -50 {
		t.Errorf("delta = %v, want ≈-60", sh.Delta())
	}
	// The detected instant should be near day 5.
	if sh.At < 4*sim.Day || sh.At > 6*sim.Day {
		t.Errorf("shift at %v, want ≈5d", sh.At)
	}
}

func TestDetectShiftsNoneOnFlat(t *testing.T) {
	s := &telemetry.Series{}
	for i := 0; i < 100; i++ {
		s.Samples = append(s.Samples, telemetry.Sample{T: sim.Time(i) * sim.Hour, V: 50})
	}
	if got := DetectShifts(s, sim.Day, 10); len(got) != 0 {
		t.Errorf("flat series produced shifts: %v", got)
	}
	if DetectShifts(&telemetry.Series{}, sim.Day, 10) != nil {
		t.Error("empty series should return nil")
	}
	if DetectShifts(s, 0, 10) != nil {
		t.Error("zero window should return nil")
	}
}

func TestDetectShiftsMergesRamp(t *testing.T) {
	s := &telemetry.Series{}
	// One monotone transition spread over hours must collapse into one
	// detection, not one per scan step.
	for i := 0; i < 6*24; i++ {
		v := 20.0
		switch {
		case i >= 3*24:
			v = 90
		case i >= 3*24-6:
			v = 20 + float64(i-(3*24-6))*10
		}
		s.Samples = append(s.Samples, telemetry.Sample{T: sim.Time(i) * sim.Hour, V: v})
	}
	shifts := DetectShifts(s, sim.Day, 30)
	if len(shifts) != 1 {
		t.Errorf("ramp detections = %d, want 1 (merged): %+v", len(shifts), shifts)
	}
}

func TestAutocorrelation(t *testing.T) {
	// A period-7 sawtooth correlates strongly at lag 7, weakly at lag 3.
	var vals []float64
	for i := 0; i < 70; i++ {
		vals = append(vals, float64(i%7))
	}
	if ac := Autocorrelation(vals, 7); ac < 0.9 {
		t.Errorf("lag-7 autocorrelation = %v, want ≈1", ac)
	}
	if ac := Autocorrelation(vals, 3); ac > 0.5 {
		t.Errorf("lag-3 autocorrelation = %v, want low", ac)
	}
	if !math.IsNaN(Autocorrelation(vals, 0)) || !math.IsNaN(Autocorrelation(vals, 100)) {
		t.Error("invalid lag should be NaN")
	}
	if !math.IsNaN(Autocorrelation([]float64{5, 5, 5}, 1)) {
		t.Error("constant series should be NaN (zero variance)")
	}
}
