package artifact

import (
	"encoding/json"
	"fmt"
	"html"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"sapsim/internal/scenario"
)

// BundleFormatVersion versions the manifest a bundle carries.
const BundleFormatVersion = 1

// ManifestCell is one sweep cell's entry in a bundle manifest.
type ManifestCell struct {
	Scenario string
	Variant  string
	Seed     uint64
	Err      string `json:",omitempty"`
	// Artifacts maps artifact ID → SHA-256 digest — the journal's record of
	// the cell, which every materialized body is verified against.
	Artifacts map[string]string `json:",omitempty"`
}

// Manifest indexes a materialized bundle: every cell with its per-artifact
// digests, exactly as the sweep journal recorded them.
type Manifest struct {
	FormatVersion int
	Cells         []ManifestCell
}

// Bundle layout, relative to the bundle root:
//
//	index.html                                  browsable entry point
//	report.txt                                  full comparative report
//	runs.csv                                    per-run metric rows
//	artifact_diff.txt                           per-cell digest diff vs baseline
//	manifest.json                               cells + digests (journal's view)
//	SHA256SUMS                                  one line per body, `sha256sum -c`-able
//	scenarios/<scenario>/report.txt             baseline-vs-scenario comparative
//	cells/<scenario>/<variant>/seed-<seed>/<id>.txt   the artifact bodies
const (
	bundleIndexName    = "index.html"
	bundleReportName   = "report.txt"
	bundleRunsName     = "runs.csv"
	bundleDiffName     = "artifact_diff.txt"
	bundleManifestName = "manifest.json"
	// BundleSumsName is the checksum file a bundle carries:
	// `sha256sum -c SHA256SUMS` inside the bundle re-verifies every
	// materialized artifact body against the journal's digests.
	BundleSumsName = "SHA256SUMS"
)

// CellDir returns a cell's directory inside a bundle, relative to the root.
func CellDir(key scenario.Key) string {
	return filepath.Join("cells", key.Scenario, key.Variant, fmt.Sprintf("seed-%d", key.Seed))
}

// WriteBundle materializes a finished sweep as a browsable report tree
// under dir: the comparative reports, one baseline-vs-scenario page per
// scenario, and every cell's artifact bodies read out of the
// content-addressed store. Each body is digest-verified on the way out of
// the store (Get re-hashes), so a bundle that materializes without error
// is byte-identical to what the workers produced; SHA256SUMS lets anyone
// re-verify offline. Cells that failed are listed in the manifest and
// index with their error instead of bodies.
func WriteBundle(dir string, sr *scenario.SweepResult, store *Store) (*Manifest, error) {
	if len(sr.Runs) == 0 {
		return nil, fmt.Errorf("artifact: empty sweep, nothing to bundle")
	}
	// Refuse a non-empty target: stale files from an earlier export would
	// survive alongside a manifest and SHA256SUMS that don't mention
	// them, and the mixed tree would still pass `sha256sum -c` — exactly
	// the byte-identity confusion the bundle exists to rule out.
	if entries, err := os.ReadDir(dir); err == nil && len(entries) > 0 {
		return nil, fmt.Errorf("artifact: bundle dir %s is not empty; export into a fresh directory", dir)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: bundle dir: %w", err)
	}

	manifest := &Manifest{FormatVersion: BundleFormatVersion}
	var sums strings.Builder

	// Cell bodies first: a bundle whose store cannot produce a referenced
	// body must fail before any summary claims completeness.
	for _, r := range sr.Runs {
		cell := ManifestCell{Scenario: r.Key.Scenario, Variant: r.Key.Variant,
			Seed: r.Key.Seed, Err: r.Err, Artifacts: r.Digests}
		manifest.Cells = append(manifest.Cells, cell)
		if r.Err != "" {
			continue
		}
		if len(r.Digests) == 0 {
			return nil, fmt.Errorf("artifact: cell %s/%s seed %d has no digests (sweep ran without artifact capture)",
				r.Key.Scenario, r.Key.Variant, r.Key.Seed)
		}
		cellDir := filepath.Join(dir, CellDir(r.Key))
		if err := os.MkdirAll(cellDir, 0o755); err != nil {
			return nil, fmt.Errorf("artifact: cell dir: %w", err)
		}
		for _, id := range sortedIDs(r.Digests) {
			digest := r.Digests[id]
			body, err := store.Get(digest)
			if err != nil {
				return nil, fmt.Errorf("artifact: cell %s/%s seed %d, artifact %s: %w",
					r.Key.Scenario, r.Key.Variant, r.Key.Seed, id, err)
			}
			rel := filepath.Join(CellDir(r.Key), id+".txt")
			if err := os.WriteFile(filepath.Join(dir, rel), body, 0o644); err != nil {
				return nil, fmt.Errorf("artifact: writing %s: %w", rel, err)
			}
			// sha256sum's check format: digest, two spaces, path.
			fmt.Fprintf(&sums, "%s  %s\n", digest, filepath.ToSlash(rel))
		}
	}

	// Sweep-level reports.
	files := map[string]string{
		bundleReportName: scenario.Comparative(sr),
		bundleRunsName:   scenario.RunsCSV(sr),
		bundleDiffName:   scenario.ArtifactDiff(sr),
		BundleSumsName:   sums.String(),
	}
	// One baseline-vs-scenario page per non-baseline scenario; the
	// baseline's own numbers are every page's first row (and the full
	// report's), so a baseline-vs-itself page would carry nothing.
	names := scenario.ScenarioNames(sr)
	for _, name := range names[1:] {
		page := scenario.FilterScenarios(sr, names[0], name)
		files[filepath.Join("scenarios", name, bundleReportName)] = scenario.Comparative(page)
	}
	files[bundleIndexName] = bundleIndex(sr, names)
	mdata, err := json.MarshalIndent(manifest, "", "  ")
	if err != nil {
		return nil, fmt.Errorf("artifact: encoding manifest: %w", err)
	}
	files[bundleManifestName] = string(mdata) + "\n"

	for rel, content := range files {
		path := filepath.Join(dir, rel)
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			return nil, fmt.Errorf("artifact: bundle subdir: %w", err)
		}
		if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
			return nil, fmt.Errorf("artifact: writing %s: %w", rel, err)
		}
	}
	return manifest, nil
}

func sortedIDs(m map[string]string) []string {
	ids := make([]string, 0, len(m))
	for id := range m {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// bundleIndex renders the bundle's entry page: sweep summary, the report
// links, and a per-cell table linking every artifact body.
func bundleIndex(sr *scenario.SweepResult, names []string) string {
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>sweep bundle</title>\n")
	b.WriteString("<style>body{font-family:monospace;margin:2em}table{border-collapse:collapse}" +
		"td,th{border:1px solid #999;padding:2px 8px;text-align:left}.err{color:#b00}</style>\n")
	b.WriteString("</head><body>\n<h1>sweep report bundle</h1>\n")
	failed := 0
	for _, r := range sr.Runs {
		if r.Err != "" {
			failed++
		}
	}
	fmt.Fprintf(&b, "<p>%d cells (%d failed), %d scenarios. Every body below is digest-verified; "+
		"re-check offline with <code>sha256sum -c %s</code>.</p>\n",
		len(sr.Runs), failed, len(names), BundleSumsName)
	b.WriteString("<ul>\n")
	fmt.Fprintf(&b, "<li><a href=%q>comparative report</a></li>\n", bundleReportName)
	fmt.Fprintf(&b, "<li><a href=%q>runs.csv</a></li>\n", bundleRunsName)
	fmt.Fprintf(&b, "<li><a href=%q>artifact diff vs baseline</a></li>\n", bundleDiffName)
	fmt.Fprintf(&b, "<li><a href=%q>manifest.json</a></li>\n", bundleManifestName)
	b.WriteString("</ul>\n<h2>per-scenario comparatives</h2>\n<ul>\n")
	for _, name := range names[1:] {
		fmt.Fprintf(&b, "<li><a href=\"scenarios/%s/%s\">%s vs %s</a></li>\n",
			html.EscapeString(name), bundleReportName,
			html.EscapeString(name), html.EscapeString(names[0]))
	}
	b.WriteString("</ul>\n<h2>cells</h2>\n<table>\n<tr><th>scenario</th><th>variant</th><th>seed</th><th>artifacts</th></tr>\n")
	for _, r := range sr.Runs {
		fmt.Fprintf(&b, "<tr><td>%s</td><td>%s</td><td>%d</td><td>",
			html.EscapeString(r.Key.Scenario), html.EscapeString(r.Key.Variant), r.Key.Seed)
		if r.Err != "" {
			fmt.Fprintf(&b, "<span class=\"err\">%s</span>", html.EscapeString(r.Err))
		} else {
			for i, id := range sortedIDs(r.Digests) {
				if i > 0 {
					b.WriteString(" ")
				}
				fmt.Fprintf(&b, "<a href=\"%s/%s.txt\">%s</a>",
					filepath.ToSlash(CellDir(r.Key)), html.EscapeString(id), html.EscapeString(id))
			}
		}
		b.WriteString("</td></tr>\n")
	}
	b.WriteString("</table>\n</body></html>\n")
	return b.String()
}
