package artifact

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"sapsim/internal/scenario"
)

// fabricateSweep builds a 3-cell sweep (baseline + two scenarios) whose
// cells share one static artifact body — the dedup case — plus one
// per-cell body each, with everything stored.
func fabricateSweep(t *testing.T, s *Store) *scenario.SweepResult {
	t.Helper()
	static := []byte("table5: identical in every cell\n")
	staticD := Digest(static)
	if _, err := s.Put(staticD, static); err != nil {
		t.Fatal(err)
	}
	sr := &scenario.SweepResult{}
	for _, name := range []string{"baseline", "host-failures", "az-outage"} {
		body := []byte("fig9 series for " + name + "\n")
		d := Digest(body)
		if _, err := s.Put(d, body); err != nil {
			t.Fatal(err)
		}
		sr.Runs = append(sr.Runs, scenario.Run{
			Key:     scenario.Key{Scenario: name, Variant: "default", Seed: 7},
			Digests: map[string]string{"table5": staticD, "fig9": d},
		})
	}
	return sr
}

func TestWriteBundle(t *testing.T) {
	s := openStore(t)
	sr := fabricateSweep(t, s)
	dir := t.TempDir()

	manifest, err := WriteBundle(dir, sr, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(manifest.Cells) != 3 {
		t.Fatalf("manifest has %d cells, want 3", len(manifest.Cells))
	}

	// The tree: index, reports, per-scenario pages, bodies.
	for _, rel := range []string{
		"index.html", "report.txt", "runs.csv", "artifact_diff.txt",
		"manifest.json", BundleSumsName,
		"scenarios/host-failures/report.txt",
		"scenarios/az-outage/report.txt",
		"cells/baseline/default/seed-7/table5.txt",
		"cells/host-failures/default/seed-7/fig9.txt",
	} {
		if _, err := os.Stat(filepath.Join(dir, rel)); err != nil {
			t.Errorf("bundle missing %s: %v", rel, err)
		}
	}
	// The baseline gets no baseline-vs-itself page.
	if _, err := os.Stat(filepath.Join(dir, "scenarios/baseline")); !os.IsNotExist(err) {
		t.Error("bundle materialized a baseline-vs-itself scenario page")
	}

	// Bodies are byte-identical to what the store holds, and SHA256SUMS
	// re-verifies every one against the manifest's (journal's) digests.
	sums, err := os.ReadFile(filepath.Join(dir, BundleSumsName))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(sums)), "\n")
	if len(lines) != 6 { // 3 cells x 2 artifacts
		t.Fatalf("SHA256SUMS has %d lines, want 6:\n%s", len(lines), sums)
	}
	for _, line := range lines {
		digest, rel, ok := strings.Cut(line, "  ")
		if !ok {
			t.Fatalf("malformed sums line %q", line)
		}
		body, err := os.ReadFile(filepath.Join(dir, rel))
		if err != nil {
			t.Fatal(err)
		}
		if Digest(body) != digest {
			t.Fatalf("%s: recomputed digest differs from SHA256SUMS", rel)
		}
	}

	// The manifest round-trips and pins the same digests.
	var decoded Manifest
	data, err := os.ReadFile(filepath.Join(dir, "manifest.json"))
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(data, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.FormatVersion != BundleFormatVersion {
		t.Fatalf("manifest format %d, want %d", decoded.FormatVersion, BundleFormatVersion)
	}
	for i, cell := range decoded.Cells {
		if cell.Artifacts["table5"] != sr.Runs[i].Digests["table5"] {
			t.Fatalf("cell %d manifest digest drifted", i)
		}
	}

	// The shared static body is stored once but materialized per cell.
	if n, _ := s.Len(); n != 4 { // 1 shared + 3 per-cell
		t.Fatalf("store holds %d blobs, want 4 (static table deduplicated)", n)
	}
}

// TestWriteBundleRefusesNonEmptyDir: re-exporting over an earlier bundle
// would leave stale bodies a fresh manifest doesn't mention.
func TestWriteBundleRefusesNonEmptyDir(t *testing.T) {
	s := openStore(t)
	sr := fabricateSweep(t, s)
	dir := t.TempDir()
	if _, err := WriteBundle(dir, sr, s); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteBundle(dir, sr, s); err == nil {
		t.Fatal("WriteBundle exported over an existing bundle")
	}
}

// TestWriteBundleRefusesDamagedStore: a bundle must never materialize a
// body that fails digest verification.
func TestWriteBundleRefusesDamagedStore(t *testing.T) {
	s := openStore(t)
	sr := fabricateSweep(t, s)
	// Flip a bit in one referenced blob.
	victim := sr.Runs[1].Digests["fig9"]
	body, err := os.ReadFile(s.blobPath(victim))
	if err != nil {
		t.Fatal(err)
	}
	body[0] ^= 0x80
	if err := os.WriteFile(s.blobPath(victim), body, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := WriteBundle(t.TempDir(), sr, s); err == nil {
		t.Fatal("WriteBundle materialized a corrupt body")
	}
}

// TestWriteBundleFailedCell: failed cells appear in the manifest with
// their error and no bodies.
func TestWriteBundleFailedCell(t *testing.T) {
	s := openStore(t)
	sr := fabricateSweep(t, s)
	sr.Runs[2].Err = "injector: region has no availability zones"
	sr.Runs[2].Digests = nil
	dir := t.TempDir()
	manifest, err := WriteBundle(dir, sr, s)
	if err != nil {
		t.Fatal(err)
	}
	if manifest.Cells[2].Err == "" || len(manifest.Cells[2].Artifacts) != 0 {
		t.Fatalf("failed cell recorded as %+v", manifest.Cells[2])
	}
	if _, err := os.Stat(filepath.Join(dir, "cells/az-outage")); !os.IsNotExist(err) {
		t.Fatal("failed cell materialized a body directory")
	}
}
