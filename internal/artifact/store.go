// Package artifact is the content-addressed artifact store (CAS) behind
// distributed sweeps: the blob layer that turns the SHA-256 digests
// sapsim.ArtifactDigests already computes into retrievable artifact bodies,
// and the bundle writer that materializes a finished sweep into a
// browsable, digest-verified report tree.
//
// The store keeps one write-once file per distinct digest under a flat
// two-level fan-out (dir/ab/ab12…). Identical artifacts — the static
// tables every cell reproduces byte-for-byte — are stored exactly once no
// matter how many cells reference them; the dispatcher's HEAD endpoint
// lets workers skip uploading blobs the store already holds. Integrity is
// enforced on both sides of every transfer: Put refuses a body whose hash
// does not match its digest, and Get re-hashes on the way out, so a blob
// damaged at rest can never masquerade as the artifact it claims to be.
// Verify distinguishes the three ways a blob goes bad — missing,
// truncated (size drifted from the journaled upload), corrupt (right
// size, wrong content) — so resume paths can report exactly what happened
// and re-queue the affected cells.
package artifact

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
)

// DirName is the conventional store subdirectory inside a sweep (journal)
// directory.
const DirName = "cas"

// ErrInvalid marks caller-side mistakes — malformed digests and bodies
// that do not hash to their digest — as opposed to store-side failures
// (IO errors, closed journals). The dispatcher maps it to 400 and
// everything else to 500, so a worker can tell a rejected artifact from
// a dispatcher having a bad day.
var ErrInvalid = errors.New("artifact: invalid")

// The three distinct ways a stored blob fails verification. They are
// sentinel errors: callers branch with errors.Is to decide how loudly to
// report and whether a cell must re-run.
var (
	// ErrMissing: the store has no blob for the digest.
	ErrMissing = errors.New("artifact: blob missing")
	// ErrTruncated: the blob's size differs from the size recorded when it
	// was stored — an interrupted or torn write.
	ErrTruncated = errors.New("artifact: blob truncated")
	// ErrCorrupt: the blob's content no longer hashes to its digest — bit
	// rot or tampering at rest.
	ErrCorrupt = errors.New("artifact: blob corrupt")
)

// Digest returns the store's content address for a body: lowercase hex
// SHA-256, the exact form sapsim.ArtifactDigests emits.
func Digest(body []byte) string {
	return fmt.Sprintf("%x", sha256.Sum256(body))
}

// DigestSet computes the content address of every body in a rendered
// artifact set, artifact ID → digest. Both halves of the byte-identity
// guarantee flow through here: workers digest-then-upload through it, and
// the in-process sweep digest-then-stores through Capture — one
// transformation, two transports.
func DigestSet(bodies map[string]string) map[string]string {
	digests := make(map[string]string, len(bodies))
	for id, text := range bodies {
		digests[id] = Digest([]byte(text))
	}
	return digests
}

// Capture stores every body of a rendered artifact set and returns its
// digests — the in-process equivalent of a worker's render → digest →
// upload sequence.
func (s *Store) Capture(bodies map[string]string) (map[string]string, error) {
	digests := DigestSet(bodies)
	for id, text := range bodies {
		if _, err := s.Put(digests[id], []byte(text)); err != nil {
			return nil, fmt.Errorf("artifact: capturing %s: %w", id, err)
		}
	}
	return digests, nil
}

// Store is a write-once content-addressed blob store rooted at one
// directory. It is safe for concurrent use.
type Store struct {
	dir string
	mu  sync.Mutex
	// noSync skips per-blob fsyncs (scratch stores whose contents never
	// outlive the process).
	noSync bool

	stats storeStats
}

// storeStats are the store's self-maintained observability counters.
// They live on the store (not in a metrics registry) so counts from work
// done before a daemon instruments the store — the Resume-time audit,
// heal, and GC — are not lost; fleet metrics export them via CounterFunc/
// GaugeFunc reads of Stats().
type storeStats struct {
	blobs, bytes                int64 // current contents
	putStored, putDedup         int64
	removed, removeFailures     int64
	gcRemoved, gcRemoveFailures int64
}

// Stats is a point-in-time snapshot of the store's observability counters.
type Stats struct {
	// Blobs and Bytes describe the store's current contents.
	Blobs, Bytes int64
	// PutStored counts new blobs written; PutDedup counts Puts that were
	// write-once no-ops (the digest was already held) — the store-side
	// half of the dedup hit rate.
	PutStored, PutDedup int64
	// Removed counts blobs deleted (heals and GC); RemoveFailures counts
	// removals that failed — a damaged blob the store could NOT heal, so a
	// re-upload of that digest would be deduplicated against the bad file.
	Removed, RemoveFailures int64
	// GCRemoved / GCRemoveFailures break out the removals driven by GC.
	GCRemoved, GCRemoveFailures int64
}

// Stats returns a snapshot of the store's counters.
func (s *Store) Stats() Stats {
	return Stats{
		Blobs:            atomic.LoadInt64(&s.stats.blobs),
		Bytes:            atomic.LoadInt64(&s.stats.bytes),
		PutStored:        atomic.LoadInt64(&s.stats.putStored),
		PutDedup:         atomic.LoadInt64(&s.stats.putDedup),
		Removed:          atomic.LoadInt64(&s.stats.removed),
		RemoveFailures:   atomic.LoadInt64(&s.stats.removeFailures),
		GCRemoved:        atomic.LoadInt64(&s.stats.gcRemoved),
		GCRemoveFailures: atomic.LoadInt64(&s.stats.gcRemoveFailures),
	}
}

// Open creates (or reopens) a store rooted at dir. Every Put is fsynced —
// this is the durable store a sweep journal depends on.
func Open(dir string) (*Store, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("artifact: store dir: %w", err)
	}
	s := &Store{dir: dir}
	// Seed the contents counters from what a reopened store already holds,
	// so the blob/byte gauges are right from the first scrape.
	err := filepath.WalkDir(dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() || validDigest(d.Name()) != nil {
			return err
		}
		if info, ierr := d.Info(); ierr == nil {
			s.stats.blobs++
			s.stats.bytes += info.Size()
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("artifact: scanning store: %w", err)
	}
	return s, nil
}

// OpenScratch opens a store that skips per-blob fsyncs. For ephemeral
// stores — an in-process sweep capturing bodies only to bundle them
// moments later — where crash durability buys nothing and a large matrix
// would pay thousands of synchronous flushes for it. Writes remain atomic
// (temp file + rename), so concurrent readers still never see a torn
// blob.
func OpenScratch(dir string) (*Store, error) {
	s, err := Open(dir)
	if err != nil {
		return nil, err
	}
	s.noSync = true
	return s, nil
}

// Dir returns the store's root directory.
func (s *Store) Dir() string { return s.dir }

func validDigest(digest string) error {
	if len(digest) != sha256.Size*2 {
		return fmt.Errorf("%w: bad digest %q: want %d hex chars", ErrInvalid, digest, sha256.Size*2)
	}
	for _, c := range digest {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return fmt.Errorf("%w: bad digest %q: not lowercase hex", ErrInvalid, digest)
		}
	}
	return nil
}

// blobPath fans blobs out under a two-hex-char prefix directory so one
// directory never accumulates the whole sweep.
func (s *Store) blobPath(digest string) string {
	return filepath.Join(s.dir, digest[:2], digest)
}

// Put stores a body under its digest, verifying the content hashes to the
// digest first. The write is crash-safe: body lands in a temp file, is
// fsynced, and is renamed into place, so a blob file either exists complete
// or not at all (a torn temp file is invisible to readers). Storing a
// digest the store already holds is a no-op; the bool reports whether a new
// blob was written (false = deduplicated).
func (s *Store) Put(digest string, body []byte) (bool, error) {
	if err := validDigest(digest); err != nil {
		return false, err
	}
	if got := Digest(body); got != digest {
		return false, fmt.Errorf("%w: body hashes to %s, not %s", ErrInvalid, got, digest)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.blobPath(digest)
	if _, err := os.Stat(path); err == nil {
		atomic.AddInt64(&s.stats.putDedup, 1)
		return false, nil // write-once: already stored
	}
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return false, fmt.Errorf("artifact: blob dir: %w", err)
	}
	tmp, err := os.CreateTemp(filepath.Dir(path), "."+digest[:8]+"-*")
	if err != nil {
		return false, fmt.Errorf("artifact: temp blob: %w", err)
	}
	defer os.Remove(tmp.Name()) // no-op after a successful rename
	if _, err := tmp.Write(body); err != nil {
		tmp.Close()
		return false, fmt.Errorf("artifact: writing blob: %w", err)
	}
	if !s.noSync {
		if err := tmp.Sync(); err != nil {
			tmp.Close()
			return false, fmt.Errorf("artifact: syncing blob: %w", err)
		}
	}
	if err := tmp.Close(); err != nil {
		return false, fmt.Errorf("artifact: closing blob: %w", err)
	}
	if err := os.Rename(tmp.Name(), path); err != nil {
		return false, fmt.Errorf("artifact: publishing blob: %w", err)
	}
	// Make the rename itself durable.
	if !s.noSync {
		if d, err := os.Open(filepath.Dir(path)); err == nil {
			_ = d.Sync()
			d.Close()
		}
	}
	atomic.AddInt64(&s.stats.putStored, 1)
	atomic.AddInt64(&s.stats.blobs, 1)
	atomic.AddInt64(&s.stats.bytes, int64(len(body)))
	return true, nil
}

// Has reports whether the store holds a blob file for the digest (presence
// only; see Verify for integrity).
func (s *Store) Has(digest string) bool {
	_, err := s.Stat(digest)
	return err == nil
}

// Stat returns a held blob's size without reading it — the cheap presence
// probe behind upload dedup. ErrMissing when the store has no blob file.
func (s *Store) Stat(digest string) (int64, error) {
	if err := validDigest(digest); err != nil {
		return 0, err
	}
	st, err := os.Stat(s.blobPath(digest))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return 0, fmt.Errorf("%w: %s", ErrMissing, digest)
		}
		return 0, fmt.Errorf("artifact: stat blob %s: %w", digest, err)
	}
	return st.Size(), nil
}

// Get returns the blob for a digest, re-hashing it on the way out: a
// missing blob returns ErrMissing, one whose content no longer matches the
// digest returns ErrCorrupt. Every read through Get is therefore
// digest-verified.
func (s *Store) Get(digest string) ([]byte, error) {
	if err := validDigest(digest); err != nil {
		return nil, err
	}
	body, err := os.ReadFile(s.blobPath(digest))
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, fmt.Errorf("%w: %s", ErrMissing, digest)
		}
		return nil, fmt.Errorf("artifact: reading blob %s: %w", digest, err)
	}
	if got := Digest(body); got != digest {
		return nil, fmt.Errorf("%w: %s hashes to %s", ErrCorrupt, digest, got)
	}
	return body, nil
}

// Verify checks one blob's integrity without returning it, distinguishing
// the failure modes: ErrMissing (no blob file), ErrTruncated (size differs
// from the recorded size — pass size < 0 to skip the size check when no
// record survives), ErrCorrupt (content no longer hashes to the digest).
func (s *Store) Verify(digest string, size int64) error {
	if err := validDigest(digest); err != nil {
		return err
	}
	got, err := s.Stat(digest)
	if err != nil {
		return err
	}
	if size >= 0 && got != size {
		return fmt.Errorf("%w: %s is %d bytes, stored as %d", ErrTruncated, digest, got, size)
	}
	if _, err := s.Get(digest); err != nil {
		return err
	}
	return nil
}

// Remove deletes one blob (a verification failure being healed: the bad
// file must go so a re-upload of the same digest is not deduplicated away).
// Failures are counted in Stats — a removal that fails leaves a damaged
// blob in place that will shadow any re-upload, which is exactly the
// condition fleet metrics must make visible.
func (s *Store) Remove(digest string) error {
	if err := validDigest(digest); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	path := s.blobPath(digest)
	var size int64
	if st, err := os.Stat(path); err == nil {
		size = st.Size()
	}
	if err := os.Remove(path); err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil
		}
		atomic.AddInt64(&s.stats.removeFailures, 1)
		return fmt.Errorf("artifact: removing blob %s: %w", digest, err)
	}
	atomic.AddInt64(&s.stats.removed, 1)
	atomic.AddInt64(&s.stats.blobs, -1)
	atomic.AddInt64(&s.stats.bytes, -size)
	return nil
}

// Digests lists every stored blob digest (unsorted).
func (s *Store) Digests() ([]string, error) {
	var out []string
	err := filepath.WalkDir(s.dir, func(path string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		name := d.Name()
		if validDigest(name) == nil {
			out = append(out, name)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("artifact: listing store: %w", err)
	}
	return out, nil
}

// Len counts stored blobs — the dedup yardstick: a sweep whose cells share
// artifacts must hold fewer blobs than cells × artifacts.
func (s *Store) Len() (int, error) {
	ds, err := s.Digests()
	return len(ds), err
}

// GC removes every blob whose digest has no positive reference count in
// refs — the garbage collection a resume drives from journal replay, where
// refs counts, per digest, the finished cells whose artifact set includes
// it. Blobs uploaded for cells that never durably completed (or were
// re-queued) are the orphans this collects; a re-run re-uploads the same
// bytes under the same digest. Returns the number of blobs removed.
//
// A removal failure does not abort the pass: the remaining orphans are
// still collected, the failures are counted in Stats, and the joined
// errors come back so the caller can report (rather than silently drop)
// the orphans left behind.
func (s *Store) GC(refs map[string]int) (int, error) {
	digests, err := s.Digests()
	if err != nil {
		return 0, err
	}
	removed := 0
	var errs []error
	for _, d := range digests {
		if refs[d] > 0 {
			continue
		}
		if err := s.Remove(d); err != nil {
			atomic.AddInt64(&s.stats.gcRemoveFailures, 1)
			errs = append(errs, err)
			continue
		}
		atomic.AddInt64(&s.stats.gcRemoved, 1)
		removed++
	}
	return removed, errors.Join(errs...)
}
