package artifact

import (
	"errors"
	"os"
	"strings"
	"testing"
)

func openStore(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestPutGetRoundTrip(t *testing.T) {
	s := openStore(t)
	body := []byte("table5 rendered text\n")
	digest := Digest(body)

	stored, err := s.Put(digest, body)
	if err != nil || !stored {
		t.Fatalf("Put = %v, %v; want stored", stored, err)
	}
	if !s.Has(digest) {
		t.Fatal("Has = false after Put")
	}
	got, err := s.Get(digest)
	if err != nil || string(got) != string(body) {
		t.Fatalf("Get = %q, %v", got, err)
	}
	if err := s.Verify(digest, int64(len(body))); err != nil {
		t.Fatalf("Verify = %v", err)
	}
}

func TestPutRejectsMismatchedBody(t *testing.T) {
	s := openStore(t)
	digest := Digest([]byte("the real body"))
	if _, err := s.Put(digest, []byte("an impostor body")); err == nil {
		t.Fatal("Put accepted a body that does not hash to its digest")
	}
	if s.Has(digest) {
		t.Fatal("rejected Put left a blob behind")
	}
	if _, err := s.Put("not-a-digest", []byte("x")); err == nil {
		t.Fatal("Put accepted a malformed digest")
	}
}

// TestPutDeduplicates: the write-once property behind cross-cell sharing —
// a second Put of the same digest writes nothing.
func TestPutDeduplicates(t *testing.T) {
	s := openStore(t)
	body := []byte("identical static table")
	digest := Digest(body)
	if stored, err := s.Put(digest, body); err != nil || !stored {
		t.Fatalf("first Put = %v, %v", stored, err)
	}
	if stored, err := s.Put(digest, body); err != nil || stored {
		t.Fatalf("second Put = %v, %v; want deduplicated no-op", stored, err)
	}
	if n, err := s.Len(); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v; want exactly 1 blob", n, err)
	}
}

// TestFailureModesAreDistinct: the three ways a blob goes bad — missing,
// truncated, bit-flipped — are each detected on read and surfaced as
// distinct sentinel errors.
func TestFailureModesAreDistinct(t *testing.T) {
	s := openStore(t)
	body := []byte("a fragile artifact body, long enough to damage meaningfully")
	digest := Digest(body)
	if _, err := s.Put(digest, body); err != nil {
		t.Fatal(err)
	}
	size := int64(len(body))
	path := s.blobPath(digest)

	// Missing: no blob at all.
	other := Digest([]byte("never stored"))
	if err := s.Verify(other, -1); !errors.Is(err, ErrMissing) {
		t.Fatalf("Verify(absent) = %v, want ErrMissing", err)
	}
	if _, err := s.Get(other); !errors.Is(err, ErrMissing) {
		t.Fatalf("Get(absent) = %v, want ErrMissing", err)
	}

	// Truncated: size drifted from the recorded upload.
	if err := os.Truncate(path, size/2); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(digest, size); !errors.Is(err, ErrTruncated) {
		t.Fatalf("Verify(truncated) = %v, want ErrTruncated", err)
	}
	// Without a recorded size the hash check still refuses it.
	if err := s.Verify(digest, -1); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify(truncated, no size) = %v, want ErrCorrupt", err)
	}
	if _, err := s.Get(digest); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get(truncated) = %v, want ErrCorrupt (hash mismatch)", err)
	}

	// Corrupt: right size, flipped bit.
	restored := append([]byte{}, body...)
	restored[4] ^= 0x01
	if err := os.WriteFile(path, restored, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := s.Verify(digest, size); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Verify(bit-flipped) = %v, want ErrCorrupt", err)
	}
	if _, err := s.Get(digest); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get(bit-flipped) = %v, want ErrCorrupt", err)
	}

	// Remove heals: a fresh Put of the true body is not deduplicated
	// against the damaged file.
	if err := s.Remove(digest); err != nil {
		t.Fatal(err)
	}
	if stored, err := s.Put(digest, body); err != nil || !stored {
		t.Fatalf("re-Put after Remove = %v, %v; want stored", stored, err)
	}
	if _, err := s.Get(digest); err != nil {
		t.Fatalf("Get after heal = %v", err)
	}
}

// TestGCRemovesUnreferencedBlobs: reference-counted collection — blobs
// with a positive count survive, orphans go.
func TestGCRemovesUnreferencedBlobs(t *testing.T) {
	s := openStore(t)
	kept := []byte("referenced by two done cells")
	orphan := []byte("uploaded for a cell that never completed")
	keptD, orphanD := Digest(kept), Digest(orphan)
	for _, b := range [][]byte{kept, orphan} {
		if _, err := s.Put(Digest(b), b); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := s.GC(map[string]int{keptD: 2})
	if err != nil || removed != 1 {
		t.Fatalf("GC removed %d, %v; want 1", removed, err)
	}
	if !s.Has(keptD) || s.Has(orphanD) {
		t.Fatalf("GC kept wrong blobs: kept=%v orphan=%v", s.Has(keptD), s.Has(orphanD))
	}
}

func TestDigestsListsBlobs(t *testing.T) {
	s := openStore(t)
	want := map[string]bool{}
	for _, body := range []string{"one", "two", "three"} {
		d := Digest([]byte(body))
		want[d] = true
		if _, err := s.Put(d, []byte(body)); err != nil {
			t.Fatal(err)
		}
	}
	ds, err := s.Digests()
	if err != nil || len(ds) != len(want) {
		t.Fatalf("Digests = %v, %v", ds, err)
	}
	for _, d := range ds {
		if !want[d] {
			t.Fatalf("unexpected digest %s", d)
		}
	}
	// Temp-file leftovers and stray names never surface as digests.
	if err := os.WriteFile(s.dir+"/stray.tmp", []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ds, _ = s.Digests()
	for _, d := range ds {
		if strings.Contains(d, "stray") {
			t.Fatal("stray file listed as a blob")
		}
	}
}
