// Package binpack implements the classic bin-packing strategies the paper
// cites as the low-computational-effort workhorses of VM placement
// (Sec. 3.2): First-Fit, Best-Fit, Worst-Fit, and Next-Fit, extended to two
// resource dimensions (vCPU, memory) as required for VM-to-host assignment.
//
// The ablation benches (DESIGN.md, A5) compare their packing efficiency on
// the paper's flavor mix; the Nova scheduler uses the same Best-Fit /
// Worst-Fit primitives through its weigher configuration.
package binpack

import (
	"errors"
	"fmt"
)

// Item is one VM-shaped object to pack.
type Item struct {
	ID    string
	CPU   int64
	MemMB int64
}

// Bin is one node-shaped container.
type Bin struct {
	ID      string
	CPUCap  int64
	MemCap  int64
	cpuUsed int64
	memUsed int64
	Items   []Item
}

// NewBin returns an empty bin with the given capacities.
func NewBin(id string, cpuCap, memCap int64) *Bin {
	return &Bin{ID: id, CPUCap: cpuCap, MemCap: memCap}
}

// Fits reports whether the item fits the bin's remaining capacity.
func (b *Bin) Fits(it Item) bool {
	return b.cpuUsed+it.CPU <= b.CPUCap && b.memUsed+it.MemMB <= b.MemCap
}

// Add places the item, which must fit.
func (b *Bin) Add(it Item) error {
	if !b.Fits(it) {
		return fmt.Errorf("binpack: item %s does not fit bin %s", it.ID, b.ID)
	}
	b.Items = append(b.Items, it)
	b.cpuUsed += it.CPU
	b.memUsed += it.MemMB
	return nil
}

// CPUUsed and MemUsed report current usage.
func (b *Bin) CPUUsed() int64 { return b.cpuUsed }

// MemUsed reports current memory usage.
func (b *Bin) MemUsed() int64 { return b.memUsed }

// fillAfter returns the normalized fill level (0..2, sum over dimensions)
// the bin would reach after accepting the item.
func (b *Bin) fillAfter(it Item) float64 {
	cpu := float64(b.cpuUsed+it.CPU) / float64(b.CPUCap)
	mem := float64(b.memUsed+it.MemMB) / float64(b.MemCap)
	return cpu + mem
}

// Strategy selects a bin for an item from the currently open bins, or nil
// to request a new bin.
type Strategy interface {
	Name() string
	Choose(open []*Bin, it Item) *Bin
}

// FirstFit picks the first (oldest) open bin the item fits.
type FirstFit struct{}

// Name implements Strategy.
func (FirstFit) Name() string { return "FirstFit" }

// Choose implements Strategy.
func (FirstFit) Choose(open []*Bin, it Item) *Bin {
	for _, b := range open {
		if b.Fits(it) {
			return b
		}
	}
	return nil
}

// BestFit picks the fitting bin that would be fullest after placement,
// minimizing wasted space — the strategy behind memory bin-packing of HANA
// workloads.
type BestFit struct{}

// Name implements Strategy.
func (BestFit) Name() string { return "BestFit" }

// Choose implements Strategy.
func (BestFit) Choose(open []*Bin, it Item) *Bin {
	var best *Bin
	bestFill := -1.0
	for _, b := range open {
		if !b.Fits(it) {
			continue
		}
		if fill := b.fillAfter(it); fill > bestFill {
			bestFill = fill
			best = b
		}
	}
	return best
}

// WorstFit picks the fitting bin that would be emptiest after placement —
// the load-balancing (spread) behavior of the default Nova weighers.
type WorstFit struct{}

// Name implements Strategy.
func (WorstFit) Name() string { return "WorstFit" }

// Choose implements Strategy.
func (WorstFit) Choose(open []*Bin, it Item) *Bin {
	var worst *Bin
	worstFill := 3.0
	for _, b := range open {
		if !b.Fits(it) {
			continue
		}
		if fill := b.fillAfter(it); fill < worstFill {
			worstFill = fill
			worst = b
		}
	}
	return worst
}

// NextFit only ever considers the most recently opened bin.
type NextFit struct{}

// Name implements Strategy.
func (NextFit) Name() string { return "NextFit" }

// Choose implements Strategy.
func (NextFit) Choose(open []*Bin, it Item) *Bin {
	if len(open) == 0 {
		return nil
	}
	if last := open[len(open)-1]; last.Fits(it) {
		return last
	}
	return nil
}

// Strategies lists all built-in strategies.
func Strategies() []Strategy {
	return []Strategy{FirstFit{}, BestFit{}, WorstFit{}, NextFit{}}
}

// ErrItemTooLarge is returned when an item exceeds even an empty bin.
var ErrItemTooLarge = errors.New("binpack: item exceeds bin capacity")

// Result summarizes a packing run.
type Result struct {
	Bins []*Bin
	// Opened is the number of bins used.
	Opened int
	// LowerBound is the volume-based lower bound on the optimal number
	// of bins: max over dimensions of ceil(total demand / bin capacity).
	LowerBound int
}

// Pack packs the items in order using the strategy, opening new bins of the
// given shape as needed.
func Pack(items []Item, cpuCap, memCap int64, s Strategy) (*Result, error) {
	if cpuCap <= 0 || memCap <= 0 {
		return nil, errors.New("binpack: non-positive bin capacity")
	}
	var open []*Bin
	var totCPU, totMem int64
	for _, it := range items {
		if it.CPU > cpuCap || it.MemMB > memCap {
			return nil, fmt.Errorf("%w: %s", ErrItemTooLarge, it.ID)
		}
		totCPU += it.CPU
		totMem += it.MemMB
		b := s.Choose(open, it)
		if b == nil {
			b = NewBin(fmt.Sprintf("bin-%d", len(open)), cpuCap, memCap)
			open = append(open, b)
		}
		if err := b.Add(it); err != nil {
			return nil, err
		}
	}
	lb := int(ceilDiv(totCPU, cpuCap))
	if mlb := int(ceilDiv(totMem, memCap)); mlb > lb {
		lb = mlb
	}
	return &Result{Bins: open, Opened: len(open), LowerBound: lb}, nil
}

func ceilDiv(a, b int64) int64 {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// Utilization reports the mean normalized fill of the used bins across both
// dimensions (0..1): the packing-efficiency metric of the A5 ablation.
func (r *Result) Utilization() float64 {
	if len(r.Bins) == 0 {
		return 0
	}
	sum := 0.0
	for _, b := range r.Bins {
		cpu := float64(b.cpuUsed) / float64(b.CPUCap)
		mem := float64(b.memUsed) / float64(b.MemCap)
		sum += (cpu + mem) / 2
	}
	return sum / float64(len(r.Bins))
}
