package binpack

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"sapsim/internal/vmmodel"
)

func item(id string, cpu, mem int64) Item { return Item{ID: id, CPU: cpu, MemMB: mem} }

func TestBinAccounting(t *testing.T) {
	b := NewBin("b", 10, 100)
	if err := b.Add(item("a", 4, 40)); err != nil {
		t.Fatal(err)
	}
	if b.CPUUsed() != 4 || b.MemUsed() != 40 {
		t.Errorf("usage = %d/%d", b.CPUUsed(), b.MemUsed())
	}
	if !b.Fits(item("b", 6, 60)) {
		t.Error("exact fit rejected")
	}
	if b.Fits(item("c", 7, 1)) {
		t.Error("CPU overflow accepted")
	}
	if b.Fits(item("d", 1, 61)) {
		t.Error("memory overflow accepted")
	}
	if err := b.Add(item("e", 20, 20)); err == nil {
		t.Error("Add of oversized item succeeded")
	}
}

func TestFirstFitOrder(t *testing.T) {
	b1, b2 := NewBin("1", 10, 100), NewBin("2", 10, 100)
	b1.Add(item("x", 9, 10))
	got := FirstFit{}.Choose([]*Bin{b1, b2}, item("a", 2, 5))
	if got != b2 {
		t.Error("FirstFit skipped to wrong bin")
	}
	got = FirstFit{}.Choose([]*Bin{b1, b2}, item("a", 1, 5))
	if got != b1 {
		t.Error("FirstFit should pick the first fitting bin")
	}
}

func TestBestFitPicksFullest(t *testing.T) {
	nearly := NewBin("full", 10, 100)
	nearly.Add(item("x", 7, 70))
	empty := NewBin("empty", 10, 100)
	got := BestFit{}.Choose([]*Bin{empty, nearly}, item("a", 2, 20))
	if got != nearly {
		t.Error("BestFit should prefer the fuller bin")
	}
}

func TestWorstFitPicksEmptiest(t *testing.T) {
	nearly := NewBin("full", 10, 100)
	nearly.Add(item("x", 7, 70))
	empty := NewBin("empty", 10, 100)
	got := WorstFit{}.Choose([]*Bin{nearly, empty}, item("a", 2, 20))
	if got != empty {
		t.Error("WorstFit should prefer the emptier bin")
	}
}

func TestNextFitOnlyLastBin(t *testing.T) {
	b1, b2 := NewBin("1", 10, 100), NewBin("2", 10, 100)
	b2.Add(item("x", 9, 90))
	// b1 has room, but NextFit only looks at the last bin.
	if got := (NextFit{}).Choose([]*Bin{b1, b2}, item("a", 2, 5)); got != nil {
		t.Error("NextFit looked beyond the last bin")
	}
	if got := (NextFit{}).Choose(nil, item("a", 2, 5)); got != nil {
		t.Error("NextFit on empty set should be nil")
	}
}

func TestPackClassicSequence(t *testing.T) {
	// 1D-style check (memory dimension trivial): items 6,5,4,3,2,1 into
	// bins of 10. FirstFit: [6,4] [5,3,2] [1-> first bin? 6+4=10 full;
	// 5+3+2=10 full; 1 opens...no: 1 fits nothing open → third bin].
	var items []Item
	for i, c := range []int64{6, 5, 4, 3, 2, 1} {
		items = append(items, item(fmt.Sprintf("i%d", i), c, 1))
	}
	res, err := Pack(items, 10, 1000, FirstFit{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Opened != 3 {
		t.Errorf("FirstFit opened %d bins, want 3", res.Opened)
	}
	if res.LowerBound != 3 { // 21/10 → 3
		t.Errorf("lower bound = %d, want 3", res.LowerBound)
	}
}

func TestPackBestFitBeatsNextFit(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 1))
	var items []Item
	for i := 0; i < 200; i++ {
		items = append(items, item(fmt.Sprintf("i%d", i), int64(1+rng.IntN(50)), int64(1+rng.IntN(500))))
	}
	bf, err := Pack(items, 100, 1000, BestFit{})
	if err != nil {
		t.Fatal(err)
	}
	nf, err := Pack(items, 100, 1000, NextFit{})
	if err != nil {
		t.Fatal(err)
	}
	if bf.Opened > nf.Opened {
		t.Errorf("BestFit (%d bins) worse than NextFit (%d bins)", bf.Opened, nf.Opened)
	}
	if bf.Utilization() < nf.Utilization() {
		t.Errorf("BestFit utilization %.3f below NextFit %.3f", bf.Utilization(), nf.Utilization())
	}
}

func TestPackErrors(t *testing.T) {
	if _, err := Pack([]Item{item("a", 5, 5)}, 0, 10, FirstFit{}); err == nil {
		t.Error("zero capacity accepted")
	}
	if _, err := Pack([]Item{item("a", 50, 5)}, 10, 10, FirstFit{}); !errors.Is(err, ErrItemTooLarge) {
		t.Errorf("oversized item error = %v", err)
	}
}

func TestPackEmptyItems(t *testing.T) {
	res, err := Pack(nil, 10, 10, BestFit{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Opened != 0 || res.LowerBound != 0 || res.Utilization() != 0 {
		t.Errorf("empty pack = %+v", res)
	}
}

// Pack the paper's flavor catalog (weighted sample) onto HANA-node-shaped
// bins and verify every strategy is valid and within 2× the lower bound.
func TestPackFlavorMixAllStrategies(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 2))
	catalog := vmmodel.Catalog()
	var items []Item
	for i := 0; i < 500; i++ {
		f := catalog[rng.IntN(len(catalog))]
		items = append(items, item(fmt.Sprintf("vm%d", i), int64(f.VCPUs), int64(f.RAMGiB)<<10))
	}
	// Bins must admit the largest flavor (XLL, 12 TiB).
	const cpuCap, memCap = 512, 13 << 20
	for _, s := range Strategies() {
		res, err := Pack(items, cpuCap, memCap, s)
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		for _, b := range res.Bins {
			if b.CPUUsed() > b.CPUCap || b.MemUsed() > b.MemCap {
				t.Fatalf("%s overflowed bin %s", s.Name(), b.ID)
			}
		}
		if s.Name() != "NextFit" && res.Opened > 2*res.LowerBound {
			t.Errorf("%s used %d bins, lower bound %d (>2x)", s.Name(), res.Opened, res.LowerBound)
		}
		total := 0
		for _, b := range res.Bins {
			total += len(b.Items)
		}
		if total != len(items) {
			t.Errorf("%s lost items: %d/%d", s.Name(), total, len(items))
		}
	}
}

// Property: no strategy ever overflows a bin or loses items.
func TestPropertyPackSound(t *testing.T) {
	f := func(sizes []uint8, which uint8) bool {
		var items []Item
		for i, s := range sizes {
			c := int64(s%50) + 1
			m := int64(s%90) + 1
			items = append(items, item(fmt.Sprintf("i%d", i), c, m))
		}
		s := Strategies()[int(which)%len(Strategies())]
		res, err := Pack(items, 50, 90, s)
		if err != nil {
			return false
		}
		count := 0
		for _, b := range res.Bins {
			if b.CPUUsed() > b.CPUCap || b.MemUsed() > b.MemCap {
				return false
			}
			count += len(b.Items)
		}
		return count == len(items) && res.Opened >= res.LowerBound
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

func TestStrategyNames(t *testing.T) {
	want := map[string]bool{"FirstFit": true, "BestFit": true, "WorstFit": true, "NextFit": true}
	for _, s := range Strategies() {
		if !want[s.Name()] {
			t.Errorf("unexpected strategy %q", s.Name())
		}
	}
}
