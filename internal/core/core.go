// Package core orchestrates full experiments: build the region, generate
// the calibrated workload, drive the Nova scheduler and DRS through a
// discrete-event simulation of the observation window, and collect the
// telemetry the paper's figures are computed from.
//
// The sampler writes host and VM metrics straight into the telemetry store
// using the Table 4 metric names. The HTTP exporter → scraper path is the
// same data plane and is exercised separately (internal/scrape tests and
// examples/telemetry-pipeline); sampling in-process keeps 30-day runs fast.
package core

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"sort"

	"sapsim/internal/analysis"
	"sapsim/internal/drs"
	"sapsim/internal/esx"
	"sapsim/internal/events"
	"sapsim/internal/exporter"
	"sapsim/internal/nova"
	"sapsim/internal/placement"
	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
	"sapsim/internal/workload"
)

// MetricHostDiskPct is a derived convenience metric (percentage form of the
// Table 4 diskspace gauge) recorded alongside the catalog metrics so that
// heatmap analysis does not need per-node capacity lookups.
const MetricHostDiskPct = "vrops_hostsystem_diskspace_usage_percentage"

// Config describes one experiment.
type Config struct {
	// Seed drives all randomness; equal seeds give equal runs.
	Seed uint64
	// Scale shrinks the studied region (1.0 ≈ 1,823 hypervisors).
	Scale float64
	// VMs is the target initial population (the paper's region: ~48,000).
	VMs int
	// Days is the observation window (the paper: 30).
	Days int
	// SampleEvery is the host telemetry interval (production: 30–300 s).
	SampleEvery sim.Time
	// VMSampleEvery is the per-VM telemetry interval; per-VM series
	// dominate memory so they default coarser.
	VMSampleEvery sim.Time
	// Scheduler configures the Nova pipeline.
	Scheduler nova.Config
	// ESX configures hypervisor policy (overcommit etc.).
	ESX esx.Config
	// DRS enables intra-BB rebalancing at DRSEvery intervals.
	DRS      bool
	DRSEvery sim.Time
	// CrossBB enables the external cross-BB rebalancer (daily).
	CrossBB bool
	// RecordVMMetrics enables per-VM series (needed for Fig. 14).
	RecordVMMetrics bool
	// ContentionFeed updates the scheduler's per-BB contention view at
	// every host sample, powering the contention-aware weigher.
	ContentionFeed bool
	// HolisticNodeFit appends the NodeFitFilter (wired to the live
	// fleet), collapsing the two-layer BB→node split into one node-aware
	// decision — the Sec. 7 "holistic scheduling" ablation (A7).
	HolisticNodeFit bool
	// ResizeRate is the expected number of resize operations per VM over
	// a 30-day window (resize is one of the dataset's scheduling-relevant
	// events). Zero disables resizes.
	ResizeRate float64
	// ArrivalPhases modulate the generated churn arrival process (demand
	// surges, lulls, flavor-mix shifts). Empty keeps the base workload —
	// and its RNG draw sequence — byte-identical.
	ArrivalPhases []workload.Phase
	// Injectors are scenario hooks invoked after the simulation is
	// assembled but before the engine runs; each may schedule
	// operational events (host failures, drains, resize waves) onto the
	// engine. See internal/scenario for the declarative layer on top.
	Injectors []Injector
}

// DefaultConfig returns a laptop-scale replica of the paper's setup: 5% of
// the region, 30 days, 5-minute host sampling.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:            seed,
		Scale:           0.05,
		VMs:             2400,
		Days:            30,
		SampleEvery:     5 * sim.Minute,
		VMSampleEvery:   sim.Hour,
		Scheduler:       nova.DefaultConfig(),
		ESX:             esx.DefaultConfig(),
		DRS:             true,
		DRSEvery:        sim.Hour,
		RecordVMMetrics: true,
		ResizeRate:      0.03,
	}
}

// Result carries everything an analysis needs after a run.
type Result struct {
	Config    Config
	Region    *topology.Region
	Fleet     *esx.Fleet
	Store     *telemetry.Store
	Scheduler *nova.Scheduler

	// VMs is every VM instance that entered the system (placed or not).
	VMs []*vmmodel.VM
	// Lifetimes holds the planned lifetime per VM (the paper collected
	// lifetimes retrospectively; we know them exactly).
	Lifetimes []analysis.LifetimeRecord
	// PlacementFailures counts NoValidHost outcomes.
	PlacementFailures int
	// DRSMigrations and CrossBBMoves count rebalancing activity.
	DRSMigrations int
	CrossBBMoves  int
	// DRS is the intra-BB rebalancer instance (nil when Config.DRS is
	// off); injectors may attach observation hooks to it.
	DRS *drs.DRS
	// Resizes counts completed resize operations.
	Resizes int
	// Events is the scheduling-relevant event stream (Sec. 4).
	Events *events.Log
	// SchedStats snapshots the scheduler counters at the end.
	SchedStats nova.Stats
}

// Horizon reports the simulated window.
func (c Config) Horizon() sim.Time { return sim.Time(c.Days) * sim.Day }

// Validate sanity-checks the configuration.
func (c Config) Validate() error {
	if c.Scale <= 0 {
		return errors.New("core: non-positive scale")
	}
	if c.VMs <= 0 {
		return errors.New("core: non-positive VM count")
	}
	if c.Days <= 0 {
		return errors.New("core: non-positive days")
	}
	if c.SampleEvery <= 0 {
		return errors.New("core: non-positive sample interval")
	}
	if c.RecordVMMetrics && c.VMSampleEvery <= 0 {
		return errors.New("core: non-positive VM sample interval")
	}
	return nil
}

// Run executes the experiment.
func Run(cfg Config) (*Result, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	region, err := topology.Build(topology.DefaultBuildSpec(cfg.Scale))
	if err != nil {
		return nil, fmt.Errorf("core: building region: %w", err)
	}
	fleet := esx.NewFleet(region, cfg.ESX)
	if cfg.HolisticNodeFit {
		cfg.Scheduler.Filters = append(append([]nova.Filter{}, cfg.Scheduler.Filters...),
			nova.NodeFitFilter{FitsNode: func(bb *topology.BuildingBlock, f *vmmodel.Flavor) bool {
				for _, h := range fleet.HostsInBB(bb) {
					if h.Fits(f) {
						return true
					}
				}
				return false
			}})
	}
	sched, err := nova.NewScheduler(fleet, placement.NewService(), cfg.Scheduler)
	if err != nil {
		return nil, fmt.Errorf("core: scheduler: %w", err)
	}
	res := &Result{
		Config:    cfg,
		Region:    region,
		Fleet:     fleet,
		Store:     telemetry.NewStore(),
		Scheduler: sched,
		Events:    &events.Log{},
	}

	spec := workload.DefaultSpec(cfg.VMs, cfg.Seed)
	spec.Horizon = cfg.Horizon()
	spec.Phases = cfg.ArrivalPhases
	instances := workload.NewGenerator(spec).Generate()

	engine := sim.NewEngine()
	live := make(map[vmmodel.ID]*vmmodel.VM)

	// record appends an event; logging failures cannot occur because all
	// appends happen in simulation-time order.
	record := func(e events.Event) { _ = res.Events.Append(e) }

	placeVM := func(in *workload.Instance, now sim.Time) {
		res.VMs = append(res.VMs, in.VM)
		res.Lifetimes = append(res.Lifetimes, analysis.LifetimeRecord{
			Flavor: in.VM.Flavor, Lifetime: in.Lifetime,
		})
		// Events cover the observation window only; the initial
		// population's creations predate it (in.ArriveAt <= 0).
		inWindow := in.ArriveAt > 0
		r, err := sched.Schedule(&nova.RequestSpec{VM: in.VM}, now)
		if err != nil {
			res.PlacementFailures++
			if inWindow {
				record(events.Event{At: now, Type: events.ScheduleFailed,
					VM: string(in.VM.ID), Flavor: in.VM.Flavor.Name})
			}
			return
		}
		if inWindow {
			record(events.Event{At: now, Type: events.Create,
				VM: string(in.VM.ID), Flavor: in.VM.Flavor.Name, Target: string(r.Node.ID)})
		}
		live[in.VM.ID] = in.VM
		if del := in.DeleteAt(); del < cfg.Horizon() {
			in := in
			engine.SchedulePriority(del, -1, func(at sim.Time) {
				if _, ok := live[in.VM.ID]; !ok {
					return
				}
				delete(live, in.VM.ID)
				source := ""
				if in.VM.Node != nil {
					source = string(in.VM.Node.ID)
				}
				_ = sched.Delete(in.VM, at)
				record(events.Event{At: at, Type: events.Delete,
					VM: string(in.VM.ID), Flavor: in.VM.Flavor.Name, Source: source})
			})
		}
	}

	// Initial population: placed before the first sample. The paper's
	// region is in steady state at the epoch.
	for _, in := range instances {
		if in.ArriveAt <= 0 {
			placeVM(in, 0)
		} else {
			in := in
			if _, err := engine.Schedule(in.ArriveAt, func(at sim.Time) {
				placeVM(in, at)
			}); err != nil {
				return nil, err
			}
		}
	}

	// Host telemetry sampler.
	sampler := newSampler(res, cfg)
	if _, err := engine.Every(0, cfg.SampleEvery, sampler.sampleHosts); err != nil {
		return nil, err
	}
	if cfg.RecordVMMetrics {
		vmSampler := func(now sim.Time) { sampler.sampleVMs(now, live) }
		if _, err := engine.Every(0, cfg.VMSampleEvery, vmSampler); err != nil {
			return nil, err
		}
	}

	// Rebalancers.
	var rebalancer *drs.DRS
	if cfg.DRS {
		every := cfg.DRSEvery
		if every <= 0 {
			every = sim.Hour
		}
		rebalancer = drs.New(fleet, drs.DefaultConfig())
		res.DRS = rebalancer
		rebalancer.OnMigrate = func(vm *vmmodel.VM, from, to *topology.Node, now sim.Time) {
			record(events.Event{At: now, Type: events.MigrateIntraBB,
				VM: string(vm.ID), Flavor: vm.Flavor.Name,
				Source: string(from.ID), Target: string(to.ID)})
		}
		if _, err := engine.Every(every, every, func(now sim.Time) {
			rebalancer.RebalanceAll(now)
		}); err != nil {
			return nil, err
		}
	}
	var cross *drs.CrossBB
	if cfg.CrossBB {
		cross = drs.NewCrossBB(fleet, sched.MoveBB)
		cross.OnMigrate = func(vm *vmmodel.VM, from, to *topology.Node, now sim.Time) {
			record(events.Event{At: now, Type: events.MigrateCrossBB,
				VM: string(vm.ID), Flavor: vm.Flavor.Name,
				Source: string(from.ID), Target: string(to.ID)})
		}
		if _, err := engine.Every(sim.Day, sim.Day, func(now sim.Time) {
			cross.Rebalance(now)
		}); err != nil {
			return nil, err
		}
	}

	// Resize churn: user-initiated flavor changes at the configured rate
	// (resize is a scheduler-triggering event, Sec. 2.2).
	if cfg.ResizeRate > 0 {
		rng := rand.New(rand.NewPCG(cfg.Seed, 0x7e512e))
		perDay := cfg.ResizeRate * float64(cfg.VMs) / 30
		if _, err := engine.Every(12*sim.Hour, sim.Day, func(now sim.Time) {
			n := int(perDay)
			if rng.Float64() < perDay-float64(n) {
				n++
			}
			for i := 0; i < n; i++ {
				vm := pickLive(live, rng)
				if vm == nil {
					return
				}
				target := vmmodel.ResizeTarget(vm.Flavor, rng)
				if target == nil {
					continue
				}
				if _, err := sched.Resize(vm, target, now); err != nil {
					continue
				}
				res.Resizes++
				record(events.Event{At: now, Type: events.Resize,
					VM: string(vm.ID), Flavor: target.Name,
					Target: string(vm.Node.ID)})
			}
		}); err != nil {
			return nil, err
		}
	}

	// Scenario injectors run last so the steady-state wiring above is
	// complete when they schedule their operational events.
	if len(cfg.Injectors) > 0 {
		env := &Env{
			Engine: engine, Config: cfg, Region: region, Fleet: fleet,
			Scheduler: sched, Result: res, live: live, record: record,
			down: make(map[topology.NodeID]int),
		}
		for _, inj := range cfg.Injectors {
			if err := inj.Inject(env); err != nil {
				return nil, fmt.Errorf("core: injector %s: %w", inj.Name(), err)
			}
		}
	}

	if err := engine.Run(cfg.Horizon()); err != nil {
		return nil, err
	}

	if rebalancer != nil {
		res.DRSMigrations = rebalancer.Migrations()
	}
	if cross != nil {
		res.CrossBBMoves = cross.Moves()
	}
	res.SchedStats = sched.Stats()
	return res, nil
}

// pickLive selects a random live VM deterministically (sorted key order).
func pickLive(live map[vmmodel.ID]*vmmodel.VM, rng *rand.Rand) *vmmodel.VM {
	if len(live) == 0 {
		return nil
	}
	ids := make([]string, 0, len(live))
	for id := range live {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	return live[vmmodel.ID(ids[rng.IntN(len(ids))])]
}

// sampler writes telemetry into the result store through a batched
// appender: each sampling sweep buffers every (metric, host/VM) sample and
// lands in one commit — one lock acquisition per touched shard instead of
// one per sample.
type sampler struct {
	res *Result
	cfg Config
	app *telemetry.Appender
	// hostLabels caches label sets; label construction dominates
	// otherwise.
	hostLabels map[topology.NodeID]telemetry.Labels
	vmLabels   map[vmmodel.ID]telemetry.Labels
}

func newSampler(res *Result, cfg Config) *sampler {
	return &sampler{
		res:        res,
		cfg:        cfg,
		app:        res.Store.Appender(),
		hostLabels: make(map[topology.NodeID]telemetry.Labels),
		vmLabels:   make(map[vmmodel.ID]telemetry.Labels),
	}
}

func (s *sampler) labelsFor(h *esx.Host) telemetry.Labels {
	if l, ok := s.hostLabels[h.Node.ID]; ok {
		return l
	}
	l := telemetry.MustLabels(
		"hostsystem", string(h.Node.ID),
		"cluster", string(h.Node.BB.ID),
		"datacenter", h.Node.Datacenter().Name,
	)
	s.hostLabels[h.Node.ID] = l
	return l
}

func (s *sampler) sampleHosts(now sim.Time) {
	interval := s.cfg.SampleEvery
	for _, h := range s.res.Fleet.Hosts() {
		if h.Node.Maintenance {
			continue
		}
		l := s.labelsFor(h)
		m := h.Snapshot(now, interval)
		app := func(metric string, v float64) {
			s.app.Append(metric, l, now, v)
		}
		app(exporter.MetricHostCPUUtil, m.CPUUtilPct)
		app(exporter.MetricHostMemUsage, m.MemUsagePct)
		app(exporter.MetricHostNetTx, m.TxKbps)
		app(exporter.MetricHostNetRx, m.RxKbps)
		app(exporter.MetricHostDiskUsage, m.StorageUsedGB)
		app(MetricHostDiskPct, m.StoragePct(h.Node.Capacity.StorageGB))
		app(exporter.MetricHostCPUCont, m.CPUContentionPct)
		app(exporter.MetricHostCPUReady, m.CPUReadyMillis)

		if s.cfg.ContentionFeed {
			s.res.Scheduler.SetContention(h.Node.BB.ID, m.CPUContentionPct)
		}
	}
	// Out-of-order cannot occur: the ticker is strictly monotonic. Ignore
	// the error to keep the hot path lean.
	_, _ = s.app.Commit()
}

func (s *sampler) sampleVMs(now sim.Time, live map[vmmodel.ID]*vmmodel.VM) {
	fleet := s.res.Fleet
	// Snapshot host contention once per host for throttling.
	contention := make(map[topology.NodeID]float64)
	for _, h := range fleet.Hosts() {
		m := h.Snapshot(now, s.cfg.VMSampleEvery)
		contention[h.Node.ID] = m.CPUContentionPct
	}
	for _, vm := range live {
		if vm.Node == nil {
			continue
		}
		h, err := fleet.Host(vm.Node.ID)
		if err != nil {
			continue
		}
		l, ok := s.vmLabels[vm.ID]
		if !ok {
			l = telemetry.MustLabels(
				"virtualmachine", string(vm.ID),
				"flavor", vm.Flavor.Name,
				"project", vm.Project,
			)
			s.vmLabels[vm.ID] = l
		}
		u := h.VMSnapshot(vm, now, s.cfg.VMSampleEvery, contention[vm.Node.ID])
		s.app.Append(exporter.MetricVMCPURatio, l, now, u.CPUUsageRatio)
		s.app.Append(exporter.MetricVMMemRatio, l, now, u.MemUsageRatio)
	}
	s.app.Append(exporter.MetricInstancesTotal, telemetry.Labels{}, now, float64(len(live)))
	_, _ = s.app.Commit()
}
