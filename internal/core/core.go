// Package core orchestrates full experiments: build the region, generate
// the calibrated workload, drive the Nova scheduler and DRS through a
// discrete-event simulation of the observation window, and collect the
// telemetry the paper's figures are computed from.
//
// The sampler writes host and VM metrics straight into the telemetry store
// using the Table 4 metric names. The HTTP exporter → scraper path is the
// same data plane and is exercised separately (internal/scrape tests and
// examples/telemetry-pipeline); sampling in-process keeps 30-day runs fast.
package core

import (
	"errors"
	"math/rand/v2"
	"sort"

	"sapsim/internal/analysis"
	"sapsim/internal/drs"
	"sapsim/internal/engprof"
	"sapsim/internal/esx"
	"sapsim/internal/events"
	"sapsim/internal/exporter"
	"sapsim/internal/nova"
	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
	"sapsim/internal/workload"
)

// MetricHostDiskPct is a derived convenience metric (percentage form of the
// Table 4 diskspace gauge) recorded alongside the catalog metrics so that
// heatmap analysis does not need per-node capacity lookups.
const MetricHostDiskPct = "vrops_hostsystem_diskspace_usage_percentage"

// Config describes one experiment.
type Config struct {
	// Seed drives all randomness; equal seeds give equal runs.
	Seed uint64
	// Scale shrinks the studied region (1.0 ≈ 1,823 hypervisors).
	Scale float64
	// VMs is the target initial population (the paper's region: ~48,000).
	VMs int
	// Days is the observation window (the paper: 30).
	Days int
	// SampleEvery is the host telemetry interval (production: 30–300 s).
	SampleEvery sim.Time
	// VMSampleEvery is the per-VM telemetry interval; per-VM series
	// dominate memory so they default coarser.
	VMSampleEvery sim.Time
	// Scheduler configures the Nova pipeline.
	Scheduler nova.Config
	// ESX configures hypervisor policy (overcommit etc.).
	ESX esx.Config
	// DRS enables intra-BB rebalancing at DRSEvery intervals.
	DRS      bool
	DRSEvery sim.Time
	// CrossBB enables the external cross-BB rebalancer (daily).
	CrossBB bool
	// RecordVMMetrics enables per-VM series (needed for Fig. 14).
	RecordVMMetrics bool
	// ContentionFeed updates the scheduler's per-BB contention view at
	// every host sample, powering the contention-aware weigher.
	ContentionFeed bool
	// HolisticNodeFit appends the NodeFitFilter (wired to the live
	// fleet), collapsing the two-layer BB→node split into one node-aware
	// decision — the Sec. 7 "holistic scheduling" ablation (A7).
	HolisticNodeFit bool
	// ResizeRate is the expected number of resize operations per VM over
	// a 30-day window (resize is one of the dataset's scheduling-relevant
	// events). Zero disables resizes.
	ResizeRate float64
	// ArrivalPhases modulate the generated churn arrival process (demand
	// surges, lulls, flavor-mix shifts). Empty keeps the base workload —
	// and its RNG draw sequence — byte-identical.
	ArrivalPhases []workload.Phase
	// Injectors are scenario hooks invoked after the simulation is
	// assembled but before the engine runs; each may schedule
	// operational events (host failures, drains, resize waves) onto the
	// engine. See internal/scenario for the declarative layer on top.
	Injectors []Injector
}

// DefaultConfig returns a laptop-scale replica of the paper's setup: 5% of
// the region, 30 days, 5-minute host sampling.
func DefaultConfig(seed uint64) Config {
	return Config{
		Seed:            seed,
		Scale:           0.05,
		VMs:             2400,
		Days:            30,
		SampleEvery:     5 * sim.Minute,
		VMSampleEvery:   sim.Hour,
		Scheduler:       nova.DefaultConfig(),
		ESX:             esx.DefaultConfig(),
		DRS:             true,
		DRSEvery:        sim.Hour,
		RecordVMMetrics: true,
		ResizeRate:      0.03,
	}
}

// Result carries everything an analysis needs after a run.
type Result struct {
	Config    Config
	Region    *topology.Region
	Fleet     *esx.Fleet
	Store     *telemetry.Store
	Scheduler *nova.Scheduler

	// VMs is every VM instance that entered the system (placed or not).
	VMs []*vmmodel.VM
	// Lifetimes holds the planned lifetime per VM (the paper collected
	// lifetimes retrospectively; we know them exactly).
	Lifetimes []analysis.LifetimeRecord
	// PlacementFailures counts NoValidHost outcomes.
	PlacementFailures int
	// DRSMigrations and CrossBBMoves count rebalancing activity.
	DRSMigrations int
	CrossBBMoves  int
	// DRS is the intra-BB rebalancer instance (nil when Config.DRS is
	// off); injectors may attach observation hooks to it.
	DRS *drs.DRS
	// Resizes counts completed resize operations.
	Resizes int
	// Events is the scheduling-relevant event stream (Sec. 4).
	Events *events.Log
	// SchedStats snapshots the scheduler counters at the end.
	SchedStats nova.Stats
	// Profile is the engine self-profiler's per-phase wall-time and work
	// attribution for this cell, refreshed on every Result call. Its
	// values are wall-clock measurements — deliberately excluded from the
	// golden artifact set — while its collection never influences event
	// order (see internal/engprof).
	Profile *engprof.Profile
}

// Horizon reports the simulated window.
func (c Config) Horizon() sim.Time { return sim.Time(c.Days) * sim.Day }

// Validate sanity-checks the configuration.
func (c Config) Validate() error {
	if c.Scale <= 0 {
		return errors.New("core: non-positive scale")
	}
	if c.VMs <= 0 {
		return errors.New("core: non-positive VM count")
	}
	if c.Days <= 0 {
		return errors.New("core: non-positive days")
	}
	if c.SampleEvery <= 0 {
		return errors.New("core: non-positive sample interval")
	}
	if c.RecordVMMetrics && c.VMSampleEvery <= 0 {
		return errors.New("core: non-positive VM sample interval")
	}
	return nil
}

// Run executes the experiment in one blocking call: NewSimulation driven
// straight to the horizon. The step-driven Simulation form is the primary
// API; Run remains for callers that only need the finished Result.
func Run(cfg Config) (*Result, error) {
	s, err := NewSimulation(cfg, Hooks{})
	if err != nil {
		return nil, err
	}
	if err := s.AdvanceTo(cfg.Horizon(), nil); err != nil {
		return nil, err
	}
	return s.Result(), nil
}

// pickLive selects a random live VM deterministically (sorted key order).
func pickLive(live map[vmmodel.ID]*vmmodel.VM, rng *rand.Rand) *vmmodel.VM {
	if len(live) == 0 {
		return nil
	}
	ids := make([]string, 0, len(live))
	for id := range live {
		ids = append(ids, string(id))
	}
	sort.Strings(ids)
	return live[vmmodel.ID(ids[rng.IntN(len(ids))])]
}

// sampler writes telemetry into the result store through a batched
// appender: each sampling sweep buffers every (metric, host/VM) sample and
// lands in one commit — one lock acquisition per touched shard instead of
// one per sample.
type sampler struct {
	res *Result
	cfg Config
	app *telemetry.Appender
	// hostLabels caches label sets; label construction dominates
	// otherwise.
	hostLabels map[topology.NodeID]telemetry.Labels
	vmLabels   map[vmmodel.ID]telemetry.Labels
	// contention is sampleVMs' scratch map, cleared and refilled per sweep.
	contention map[topology.NodeID]float64
	// prof receives appended-sample counts: the sampling phases' work-unit
	// proxy (each append is one buffered sample landing in the store).
	prof *engprof.Collector
}

func newSampler(res *Result, cfg Config, prof *engprof.Collector) *sampler {
	return &sampler{
		res:        res,
		cfg:        cfg,
		app:        res.Store.Appender(),
		hostLabels: make(map[topology.NodeID]telemetry.Labels),
		vmLabels:   make(map[vmmodel.ID]telemetry.Labels),
		contention: make(map[topology.NodeID]float64),
		prof:       prof,
	}
}

func (s *sampler) labelsFor(h *esx.Host) telemetry.Labels {
	if l, ok := s.hostLabels[h.Node.ID]; ok {
		return l
	}
	l := telemetry.MustLabels(
		"hostsystem", string(h.Node.ID),
		"cluster", string(h.Node.BB.ID),
		"datacenter", h.Node.Datacenter().Name,
	)
	s.hostLabels[h.Node.ID] = l
	return l
}

func (s *sampler) sampleHosts(now sim.Time) {
	interval := s.cfg.SampleEvery
	var ops int64
	s.res.Fleet.EachHost(func(h *esx.Host) {
		if h.Node.Maintenance {
			return
		}
		l := s.labelsFor(h)
		m := h.Snapshot(now, interval)
		app := func(metric string, v float64) {
			s.app.Append(metric, l, now, v)
			ops++
		}
		app(exporter.MetricHostCPUUtil, m.CPUUtilPct)
		app(exporter.MetricHostMemUsage, m.MemUsagePct)
		app(exporter.MetricHostNetTx, m.TxKbps)
		app(exporter.MetricHostNetRx, m.RxKbps)
		app(exporter.MetricHostDiskUsage, m.StorageUsedGB)
		app(MetricHostDiskPct, m.StoragePct(h.Node.Capacity.StorageGB))
		app(exporter.MetricHostCPUCont, m.CPUContentionPct)
		app(exporter.MetricHostCPUReady, m.CPUReadyMillis)

		if s.cfg.ContentionFeed {
			s.res.Scheduler.SetContention(h.Node.BB.ID, m.CPUContentionPct)
		}
	})
	// Out-of-order cannot occur: the ticker is strictly monotonic. Ignore
	// the error to keep the hot path lean.
	_, _ = s.app.Commit()
	if s.prof != nil {
		s.prof.AddOps(engprof.PhaseHostSample, ops)
	}
}

func (s *sampler) sampleVMs(now sim.Time, live map[vmmodel.ID]*vmmodel.VM) {
	fleet := s.res.Fleet
	var ops int64
	// Snapshot host contention once per host for throttling. When the VM
	// sweep shares an instant with the host sweep this reads the snapshot
	// cache rather than re-walking every host's VMs.
	contention := s.contention
	clear(contention)
	fleet.EachHost(func(h *esx.Host) {
		m := h.Snapshot(now, s.cfg.VMSampleEvery)
		contention[h.Node.ID] = m.CPUContentionPct
	})
	for _, vm := range live {
		if vm.Node == nil {
			continue
		}
		h, err := fleet.Host(vm.Node.ID)
		if err != nil {
			continue
		}
		l, ok := s.vmLabels[vm.ID]
		if !ok {
			l = telemetry.MustLabels(
				"virtualmachine", string(vm.ID),
				"flavor", vm.Flavor.Name,
				"project", vm.Project,
			)
			s.vmLabels[vm.ID] = l
		}
		u := h.VMSnapshot(vm, now, s.cfg.VMSampleEvery, contention[vm.Node.ID])
		s.app.Append(exporter.MetricVMCPURatio, l, now, u.CPUUsageRatio)
		s.app.Append(exporter.MetricVMMemRatio, l, now, u.MemUsageRatio)
		ops += 2
	}
	s.app.Append(exporter.MetricInstancesTotal, telemetry.Labels{}, now, float64(len(live)))
	_, _ = s.app.Commit()
	if s.prof != nil {
		s.prof.AddOps(engprof.PhaseVMSample, ops+1)
	}
}
