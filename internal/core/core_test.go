package core

import (
	"math"
	"testing"

	"sapsim/internal/analysis"
	"sapsim/internal/exporter"
	"sapsim/internal/sim"
	"sapsim/internal/vmmodel"
)

// smallConfig is a fast experiment for unit tests: 2% region scale, one
// week, coarse sampling.
func smallConfig(seed uint64) Config {
	cfg := DefaultConfig(seed)
	cfg.Scale = 0.02
	cfg.VMs = 400
	cfg.Days = 7
	cfg.SampleEvery = 30 * sim.Minute
	cfg.VMSampleEvery = 2 * sim.Hour
	return cfg
}

func TestConfigValidate(t *testing.T) {
	bad := []func(*Config){
		func(c *Config) { c.Scale = 0 },
		func(c *Config) { c.VMs = 0 },
		func(c *Config) { c.Days = 0 },
		func(c *Config) { c.SampleEvery = 0 },
		func(c *Config) { c.VMSampleEvery = 0 },
	}
	for i, mutate := range bad {
		cfg := smallConfig(1)
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
	if err := smallConfig(1).Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestRunProducesTelemetry(t *testing.T) {
	res, err := Run(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	// Host series exist for every non-maintenance node.
	nodes := res.Region.NodeCount()
	cpuSeries := res.Store.Select(exporter.MetricHostCPUUtil)
	if len(cpuSeries) != nodes {
		t.Errorf("CPU series = %d, nodes = %d", len(cpuSeries), nodes)
	}
	// 7 days at 30-minute sampling = 336 samples (+1 at t=0).
	wantSamples := 7*48 + 1
	if got := len(cpuSeries[0].Samples); got != wantSamples {
		t.Errorf("samples per host = %d, want %d", got, wantSamples)
	}
	// Every Table 4 host metric present.
	for _, m := range []string{
		exporter.MetricHostMemUsage, exporter.MetricHostNetTx, exporter.MetricHostNetRx,
		exporter.MetricHostDiskUsage, exporter.MetricHostCPUCont, exporter.MetricHostCPUReady,
		MetricHostDiskPct,
	} {
		if len(res.Store.Select(m)) == 0 {
			t.Errorf("metric %s missing", m)
		}
	}
	// VM metrics and instance gauge.
	if len(res.Store.Select(exporter.MetricVMCPURatio)) == 0 {
		t.Error("no VM CPU series")
	}
	inst := res.Store.Select(exporter.MetricInstancesTotal)
	if len(inst) != 1 || len(inst[0].Samples) == 0 {
		t.Fatal("instance gauge missing")
	}
	if v := inst[0].Samples[0].V; v < 300 {
		t.Errorf("initial population = %v, want ≥300", v)
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := smallConfig(11)
	cfg.Days = 3
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Store.SampleCount() != b.Store.SampleCount() {
		t.Errorf("sample counts differ: %d vs %d", a.Store.SampleCount(), b.Store.SampleCount())
	}
	if len(a.VMs) != len(b.VMs) {
		t.Fatalf("VM counts differ: %d vs %d", len(a.VMs), len(b.VMs))
	}
	if a.SchedStats.Scheduled != b.SchedStats.Scheduled || a.DRSMigrations != b.DRSMigrations {
		t.Errorf("scheduling activity differs: %+v vs %+v", a.SchedStats, b.SchedStats)
	}
	// Spot-check one series is bit-identical.
	sa := a.Store.Select(exporter.MetricHostCPUUtil)[0]
	sb := b.Store.Select(exporter.MetricHostCPUUtil)[0]
	for i := range sa.Samples {
		if sa.Samples[i] != sb.Samples[i] {
			t.Fatalf("sample %d differs: %+v vs %+v", i, sa.Samples[i], sb.Samples[i])
		}
	}
}

func TestRunPlacesMostVMs(t *testing.T) {
	res, err := Run(smallConfig(13))
	if err != nil {
		t.Fatal(err)
	}
	total := len(res.VMs)
	if total < 400 {
		t.Fatalf("only %d VM instances generated", total)
	}
	failRate := float64(res.PlacementFailures) / float64(total)
	if failRate > 0.2 {
		t.Errorf("placement failure rate = %.2f (%d/%d), too high for a fresh region",
			failRate, res.PlacementFailures, total)
	}
	if res.SchedStats.Scheduled == 0 {
		t.Error("nothing scheduled")
	}
}

func TestRunChurnHappens(t *testing.T) {
	res, err := Run(smallConfig(17))
	if err != nil {
		t.Fatal(err)
	}
	deleted := 0
	for _, vm := range res.VMs {
		if vm.State == vmmodel.Deleted {
			deleted++
		}
	}
	// Short-lived flavors guarantee some deletions within a week.
	if deleted == 0 {
		t.Error("no VM deletions in a week of churn")
	}
	// Lifetime records exist for every instance.
	if len(res.Lifetimes) != len(res.VMs) {
		t.Errorf("lifetimes = %d, VMs = %d", len(res.Lifetimes), len(res.VMs))
	}
}

func TestRunDRSActivity(t *testing.T) {
	cfg := smallConfig(19)
	cfg.Days = 5
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	withDRS := res.DRSMigrations
	cfg.DRS = false
	res2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res2.DRSMigrations != 0 {
		t.Error("DRS disabled but migrations recorded")
	}
	_ = withDRS // DRS may legitimately be idle on a balanced run
}

func TestRunUtilizationShapes(t *testing.T) {
	cfg := smallConfig(23)
	cfg.Days = 7
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Fig. 14a shape: most VMs below 70% mean CPU usage.
	cdf := analysis.VMMeanUsage(res.Store, exporter.MetricVMCPURatio, 0, cfg.Horizon())
	split := analysis.SplitUtilization(cdf)
	if split.N == 0 {
		t.Fatal("no VM usage data")
	}
	if split.Under < 0.70 {
		t.Errorf("CPU under-utilized fraction = %.2f, want ≥0.70 (Fig. 14a shape)", split.Under)
	}
	// Fig. 14b shape: memory much better utilized than CPU.
	mem := analysis.SplitUtilization(analysis.VMMeanUsage(res.Store, exporter.MetricVMMemRatio, 0, cfg.Horizon()))
	if mem.Over < split.Over {
		t.Errorf("memory over fraction %.2f should exceed CPU over fraction %.2f", mem.Over, split.Over)
	}
	// Node imbalance (Fig. 5): free-CPU spread across nodes should be wide.
	h := analysis.DailyHeatmap(res.Store, exporter.MetricHostCPUUtil, "hostsystem", cfg.Days, analysis.FreePercent)
	if len(h.Columns) == 0 {
		t.Fatal("empty heatmap")
	}
	mostFree := h.ColumnMean(0)
	leastFree := h.ColumnMean(len(h.Columns) - 1)
	if math.IsNaN(mostFree) || math.IsNaN(leastFree) {
		t.Fatal("NaN column means")
	}
	if mostFree-leastFree < 10 {
		t.Errorf("node imbalance too small: most free %.1f, least free %.1f", mostFree, leastFree)
	}
}

func TestRunNetworkHeadroom(t *testing.T) {
	res, err := Run(smallConfig(29))
	if err != nil {
		t.Fatal(err)
	}
	// Figs. 11/12: network is never a constraint (200 Gbps NICs).
	for _, s := range res.Store.Select(exporter.MetricHostNetTx) {
		for _, smp := range s.Samples {
			pct := smp.V / (200 * 1e6) * 100 // Kbps over 200 Gbps
			if pct > 1.0 {
				t.Fatalf("TX utilization %.3f%% exceeds 1%%; paper reports ≤0.3%%", pct)
			}
		}
	}
}

func TestRunContentionFeedEnablesWeigher(t *testing.T) {
	cfg := smallConfig(31)
	cfg.ContentionFeed = true
	if _, err := Run(cfg); err != nil {
		t.Fatal(err)
	}
}
