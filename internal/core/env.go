package core

import (
	"fmt"
	"math/rand/v2"
	"sort"

	"sapsim/internal/esx"
	"sapsim/internal/events"
	"sapsim/internal/nova"
	"sapsim/internal/sim"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
)

// Injector is a scenario hook. Run invokes each injector once after the
// simulation is fully assembled (fleet, scheduler, workload, samplers,
// rebalancers) but before the engine starts, so injectors can schedule
// operational events — host failures, maintenance drains, resize waves —
// onto the engine. Injectors must be deterministic: any randomness has to
// derive from Config.Seed.
//
// To survive a mid-run snapshot, an injector schedules its events through
// Env.ScheduleOwned against handler factories registered with Env.OnRestore,
// and registers any RNG stream that stays live across events with
// Env.RegisterRNG. When Env.Restoring reports true the injector must
// register its factories and streams but skip its initial scheduling: the
// pending events come back from the snapshot through the rearmer table.
type Injector interface {
	// Name labels the injector for error reporting.
	Name() string
	// Inject wires the injector into the assembled simulation.
	Inject(env *Env) error
}

// Env exposes the assembled simulation to injectors. It is valid from
// injection time until Run returns. Each injector receives its own copy
// (with a distinct index namespacing its rearm keys) sharing the underlying
// maps, so overlapping out-of-service claims still compose across
// injections.
type Env struct {
	Engine    *sim.Engine
	Config    Config
	Region    *topology.Region
	Fleet     *esx.Fleet
	Scheduler *nova.Scheduler
	Result    *Result

	live   map[vmmodel.ID]*vmmodel.VM
	record func(events.Event)
	// down reference-counts overlapping out-of-service claims per node:
	// composed injections (a drain over a zone that also suffers
	// failures) must not return a node to service while another claim
	// still holds it down.
	down map[topology.NodeID]int

	// idx is the injector's position in Config.Injectors; it namespaces
	// the injector's rearm keys so two instances of the same injector
	// type never collide.
	idx int
	// restoring marks a snapshot-restore assembly: factories and RNG
	// streams must be registered, initial scheduling must be skipped.
	restoring bool
	restoreAt sim.Time
	// schedPriority is the priority ScheduleOwned stamps on events. It is
	// -1 only while a branch injector's Inject runs post-restore: a cold
	// run's inject-time events carry assembly-time sequence numbers and so
	// sort before any coincident in-flight event, while a branch's carry
	// post-snapshot sequence numbers — the lower priority restores the cold
	// ordering at shared instants. Handler-scheduled events (recoveries,
	// rescheduled evaluations) go back to priority 0, matching their cold
	// counterparts' dynamic sequence order.
	schedPriority int
	// rearmers is the simulation-wide rearmer table (shared with the core
	// event owners); rngs is the registry of live RNG streams.
	rearmers map[string]func(payload []byte) (sim.Rearmed, error)
	rngs     map[string]*rand.PCG
}

// Restoring reports whether the simulation is being re-assembled from a
// snapshot. Injectors must skip their initial event scheduling when true.
func (e *Env) Restoring() bool { return e.restoring }

// RestoreAt reports the snapshot's capture time during a restoring
// assembly (zero otherwise). Injectors whose inject-time work depends on
// what has already happened (e.g. capacity expansions registering blocks
// that arrived before the snapshot) consult it.
func (e *Env) RestoreAt() sim.Time { return e.restoreAt }

// ownerKey builds the engine-wide rearm key for one of this injector's
// event kinds.
func (e *Env) ownerKey(suffix string) string {
	return fmt.Sprintf("inj/%d/%s", e.idx, suffix)
}

// OnRestore registers the handler factory for one of this injector's event
// kinds. The factory rebuilds the event's handler from its serialized
// payload — both when a snapshot is restored and whenever ScheduleOwned
// schedules such an event in the first place, so the live path and the
// restore path run the identical handler by construction.
func (e *Env) OnRestore(suffix string, factory func(payload []byte) (sim.Handler, error)) {
	e.rearmers[e.ownerKey(suffix)] = func(p []byte) (sim.Rearmed, error) {
		fn, err := factory(p)
		if err != nil {
			return sim.Rearmed{}, err
		}
		return sim.Rearmed{Fn: fn}, nil
	}
}

// ScheduleOwned schedules an event of a kind previously registered with
// OnRestore: the handler is built by the registered factory from payload,
// and the event carries the (owner, payload) pair that re-arms it across a
// snapshot boundary.
func (e *Env) ScheduleOwned(at sim.Time, suffix string, payload []byte) (*sim.Event, error) {
	owner := e.ownerKey(suffix)
	f, ok := e.rearmers[owner]
	if !ok {
		return nil, fmt.Errorf("core: no rearmer registered for %q", owner)
	}
	r, err := f(payload)
	if err != nil {
		return nil, err
	}
	return e.Engine.ScheduleOwned(at, e.schedPriority, owner, payload, r.Fn)
}

// RegisterRNG registers an RNG source that stays live across this
// injector's events, keyed under the injector's namespace. The snapshot
// captures its state; restore rewinds the re-created source to it.
func (e *Env) RegisterRNG(suffix string, src *rand.PCG) {
	e.rngs[e.ownerKey(suffix)] = src
}

// TakeDown registers one out-of-service claim on the node and removes it
// from service.
func (e *Env) TakeDown(n *topology.Node) {
	e.down[n.ID]++
	n.Maintenance = true
}

// BringUp releases one out-of-service claim. The node returns to service
// only when no claims remain; the return value reports whether it did. A
// claim never released (a permanent failure) keeps the node down for good.
func (e *Env) BringUp(n *topology.Node) bool {
	if e.down[n.ID] > 0 {
		e.down[n.ID]--
	}
	if e.down[n.ID] > 0 {
		return false
	}
	n.Maintenance = false
	return true
}

// Live returns the currently running VMs sorted by ID, so injector-side
// iteration is deterministic.
func (e *Env) Live() []*vmmodel.VM {
	out := make([]*vmmodel.VM, 0, len(e.live))
	for _, vm := range e.live {
		out = append(out, vm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// LiveCount reports the number of currently running VMs.
func (e *Env) LiveCount() int { return len(e.live) }

// IsLive reports whether the VM is currently running.
func (e *Env) IsLive(id vmmodel.ID) bool {
	_, ok := e.live[id]
	return ok
}

// Lose removes a VM from the live set without a normal deletion — an
// evacuation that found no valid host. Its pending deletion event becomes a
// no-op.
func (e *Env) Lose(vm *vmmodel.VM) { delete(e.live, vm.ID) }

// Record appends an event to the run's scheduling-relevant event stream.
func (e *Env) Record(ev events.Event) { e.record(ev) }
