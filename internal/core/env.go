package core

import (
	"sort"

	"sapsim/internal/esx"
	"sapsim/internal/events"
	"sapsim/internal/nova"
	"sapsim/internal/sim"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
)

// Injector is a scenario hook. Run invokes each injector once after the
// simulation is fully assembled (fleet, scheduler, workload, samplers,
// rebalancers) but before the engine starts, so injectors can schedule
// operational events — host failures, maintenance drains, resize waves —
// onto the engine. Injectors must be deterministic: any randomness has to
// derive from Config.Seed.
type Injector interface {
	// Name labels the injector for error reporting.
	Name() string
	// Inject wires the injector into the assembled simulation.
	Inject(env *Env) error
}

// Env exposes the assembled simulation to injectors. It is valid from
// injection time until Run returns.
type Env struct {
	Engine    *sim.Engine
	Config    Config
	Region    *topology.Region
	Fleet     *esx.Fleet
	Scheduler *nova.Scheduler
	Result    *Result

	live   map[vmmodel.ID]*vmmodel.VM
	record func(events.Event)
	// down reference-counts overlapping out-of-service claims per node:
	// composed injections (a drain over a zone that also suffers
	// failures) must not return a node to service while another claim
	// still holds it down.
	down map[topology.NodeID]int
}

// TakeDown registers one out-of-service claim on the node and removes it
// from service.
func (e *Env) TakeDown(n *topology.Node) {
	e.down[n.ID]++
	n.Maintenance = true
}

// BringUp releases one out-of-service claim. The node returns to service
// only when no claims remain; the return value reports whether it did. A
// claim never released (a permanent failure) keeps the node down for good.
func (e *Env) BringUp(n *topology.Node) bool {
	if e.down[n.ID] > 0 {
		e.down[n.ID]--
	}
	if e.down[n.ID] > 0 {
		return false
	}
	n.Maintenance = false
	return true
}

// Live returns the currently running VMs sorted by ID, so injector-side
// iteration is deterministic.
func (e *Env) Live() []*vmmodel.VM {
	out := make([]*vmmodel.VM, 0, len(e.live))
	for _, vm := range e.live {
		out = append(out, vm)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// LiveCount reports the number of currently running VMs.
func (e *Env) LiveCount() int { return len(e.live) }

// IsLive reports whether the VM is currently running.
func (e *Env) IsLive(id vmmodel.ID) bool {
	_, ok := e.live[id]
	return ok
}

// Lose removes a VM from the live set without a normal deletion — an
// evacuation that found no valid host. Its pending deletion event becomes a
// no-op.
func (e *Env) Lose(vm *vmmodel.VM) { delete(e.live, vm.ID) }

// Record appends an event to the run's scheduling-relevant event stream.
func (e *Env) Record(ev events.Event) { e.record(ev) }
