package core

import (
	"bytes"
	"testing"

	"sapsim/internal/events"
	"sapsim/internal/sim"
	"sapsim/internal/vmmodel"
)

func TestRunRecordsEvents(t *testing.T) {
	cfg := smallConfig(37)
	cfg.ResizeRate = 0.5 // aggressive so a one-week window sees resizes
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Events.Len() == 0 {
		t.Fatal("no events recorded")
	}
	counts := res.Events.CountByType()
	if counts[events.Create] == 0 {
		t.Error("no create events (churn arrivals must be recorded)")
	}
	if counts[events.Delete] == 0 {
		t.Error("no delete events")
	}
	if counts[events.Resize] == 0 {
		t.Error("no resize events despite aggressive rate")
	}
	if counts[events.Resize] != res.Resizes {
		t.Errorf("resize events %d != Resizes counter %d", counts[events.Resize], res.Resizes)
	}
	// Migrations appear when DRS acts; correlate with the counter.
	if counts[events.MigrateIntraBB] != res.DRSMigrations {
		t.Errorf("migration events %d != DRS counter %d",
			counts[events.MigrateIntraBB], res.DRSMigrations)
	}
}

func TestRunEventsChronological(t *testing.T) {
	res, err := Run(smallConfig(41))
	if err != nil {
		t.Fatal(err)
	}
	all := res.Events.All()
	for i := 1; i < len(all); i++ {
		if all[i-1].At > all[i].At {
			t.Fatalf("events out of order at %d: %v > %v", i, all[i-1].At, all[i].At)
		}
	}
}

func TestRunInitialPopulationNotInEventStream(t *testing.T) {
	res, err := Run(smallConfig(43))
	if err != nil {
		t.Fatal(err)
	}
	// The dataset's events cover the observation window; the initial
	// population predates it, so day-0 creations must be churn only.
	churn := res.Events.Churn(res.Config.Days)
	initial := 0
	for _, vm := range res.VMs {
		if vm.CreatedAt <= 0 {
			initial++
		}
	}
	if churn[0].Creates >= initial {
		t.Errorf("day-0 creates (%d) suspiciously high vs initial population (%d): epoch VMs leaked into the event stream",
			churn[0].Creates, initial)
	}
	for _, e := range res.Events.All() {
		if e.Type == events.Create && e.At <= 0 {
			t.Fatal("create event at or before the epoch")
		}
	}
}

func TestRunResizeKeepsInvariants(t *testing.T) {
	cfg := smallConfig(47)
	cfg.ResizeRate = 1.0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resizes == 0 {
		t.Skip("no resizes occurred this seed")
	}
	// Allocation counters must still equal the sum of resident VMs.
	for _, h := range res.Fleet.Hosts() {
		wantCPU := 0
		var wantMem int64
		for _, vm := range h.VMs() {
			wantCPU += vm.RequestedCPUCores()
			wantMem += vm.RequestedMemoryMB()
		}
		if h.AllocatedVCPUs() != wantCPU || h.AllocatedMemMB() != wantMem {
			t.Fatalf("host %s accounting drifted after resizes", h.Node.ID)
		}
	}
}

func TestEventCSVExportFromRun(t *testing.T) {
	res, err := Run(smallConfig(53))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := res.Events.WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	back, err := events.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != res.Events.Len() {
		t.Errorf("round trip lost events: %d vs %d", back.Len(), res.Events.Len())
	}
}

func TestRunResizeDisabled(t *testing.T) {
	cfg := smallConfig(59)
	cfg.ResizeRate = 0
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resizes != 0 {
		t.Errorf("resizes = %d with rate 0", res.Resizes)
	}
	if res.Events.CountByType()[events.Resize] != 0 {
		t.Error("resize events with rate 0")
	}
}

func TestRunDeterministicWithEvents(t *testing.T) {
	cfg := smallConfig(61)
	cfg.Days = 3
	cfg.ResizeRate = 0.5
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a.Events.Len() != b.Events.Len() {
		t.Fatalf("event counts differ: %d vs %d", a.Events.Len(), b.Events.Len())
	}
	ea, eb := a.Events.All(), b.Events.All()
	for i := range ea {
		if ea[i] != eb[i] {
			t.Fatalf("event %d differs: %+v vs %+v", i, ea[i], eb[i])
		}
	}
}

// Deleted VMs must never linger on hosts, whatever mix of churn, DRS, and
// resize ran.
func TestRunNoGhostVMs(t *testing.T) {
	cfg := smallConfig(67)
	cfg.ResizeRate = 0.5
	cfg.CrossBB = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range res.Fleet.Hosts() {
		for _, vm := range h.VMs() {
			if vm.State == vmmodel.Deleted {
				t.Fatalf("deleted VM %s still resident on %s", vm.ID, h.Node.ID)
			}
			if vm.Node == nil || vm.Node.ID != h.Node.ID {
				t.Fatalf("VM %s placement pointer inconsistent", vm.ID)
			}
		}
	}
	_ = sim.Time(0)
}
