package core

import (
	"errors"
	"fmt"
	"math/rand/v2"
	"strconv"

	"sapsim/internal/analysis"
	"sapsim/internal/drs"
	"sapsim/internal/engprof"
	"sapsim/internal/esx"
	"sapsim/internal/events"
	"sapsim/internal/nova"
	"sapsim/internal/placement"
	"sapsim/internal/sim"
	"sapsim/internal/snapshot"
	"sapsim/internal/telemetry"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
	"sapsim/internal/workload"
)

// MigrationKind distinguishes why a VM changed hosts.
type MigrationKind string

const (
	// MigrateDRS is an intra-BB rebalancing move.
	MigrateDRS MigrationKind = "drs"
	// MigrateCross is a cross-BB rebalancing move.
	MigrateCross MigrationKind = "cross-bb"
	// MigrateEvacuation is a forced move off a failed or draining host
	// (scenario injections through Scheduler.Evacuate).
	MigrateEvacuation MigrationKind = "evacuation"
)

// Hooks observe a running simulation. Every hook is optional (nil hooks are
// skipped) and fires synchronously on the engine goroutine — implementations
// must not block and must not mutate simulation state. Hooks never receive
// events for the pre-window epoch population (arrivals at t <= 0), matching
// the run's event log.
type Hooks struct {
	// OnPlacement fires after each in-window schedule outcome, including
	// failed evacuations (which end unplaced like a NoValidHost). node is
	// empty and reason non-empty when placement failed.
	OnPlacement func(now sim.Time, vm, flavor, node, reason string)
	// OnMigration fires after each move between hosts: DRS (intra-BB),
	// cross-BB rebalancing, and scenario-driven evacuations.
	OnMigration func(now sim.Time, vm, flavor, from, to string, kind MigrationKind)
	// OnTick fires after each host-telemetry sampling sweep — the
	// simulation's heartbeat (one tick per Config.SampleEvery).
	OnTick func(now sim.Time)
}

// Owners of the core layer's snapshot-surviving events. Scenario injectors
// use "inj/<idx>/<suffix>" keys built by Env.
const (
	ownerArrive     = "core/arrive"
	ownerDelete     = "core/delete"
	ownerTickHost   = "core/tick/host"
	ownerTickVM     = "core/tick/vm"
	ownerTickDRS    = "core/tick/drs"
	ownerTickCross  = "core/tick/cross"
	ownerTickResize = "core/tick/resize"
	ownerResizeRNG  = "core/resize"
)

// Simulation is a fully assembled experiment that has not necessarily run
// to completion yet: the phased, step-driven form of Run. NewSimulation
// builds the region, places the epoch population, and wires samplers,
// rebalancers, and scenario injectors; AdvanceTo then drives the engine in
// as many segments as the caller likes. A run split across AdvanceTo
// boundaries is bit-for-bit identical to one uninterrupted run.
type Simulation struct {
	cfg    Config
	hooks  Hooks
	res    *Result
	engine *sim.Engine
	live   map[vmmodel.ID]*vmmodel.VM

	rebalancer *drs.DRS
	cross      *drs.CrossBB

	lastArrival sim.Time
	finalized   bool

	// instances is the deterministic workload in generation order; the
	// snapshot's VM overlay is index-aligned with its prefix.
	instances []*workload.Instance
	// placeVM places instance idx at now (shared by the cold arrival path
	// and the arrival rearmer).
	placeVM func(idx int, in *workload.Instance, now sim.Time)
	// rearmers rebuilds the handler of a pending event from its
	// (owner, payload) record when the engine queue is restored.
	rearmers map[string]func(payload []byte) (sim.Rearmed, error)
	// rngs registers every RNG source that stays live across events; the
	// snapshot marshals them, restore rewinds them.
	rngs map[string]*rand.PCG
	// down is the scenario layer's out-of-service refcount map, shared by
	// every injector Env (empty when no injector runs).
	down map[topology.NodeID]int
	// sampler is kept so a restore can seed its per-VM label cache (the
	// flavor label is pinned at a VM's first sample, which may predate the
	// snapshot and a later resize).
	sampler *sampler
	// env is the base injector environment (nil without injectors); fork
	// restores copy it to inject branch injectors after the queue is back.
	env *Env
	// prof is the always-on engine self-profiler: every simulation carries
	// one, the engine/scheduler/DRS write attribution into it, and Result
	// snapshots it. It reads the wall clock and nothing else, so it cannot
	// perturb event order.
	prof *engprof.Collector
	// placement is kept so the profile can fold the placement database's
	// operation counters into its owner breakdown.
	placement *placement.Service
}

// indexPayload encodes an instance index as an event payload.
func indexPayload(i int) []byte { return []byte(strconv.Itoa(i)) }

// payloadIndex decodes an instance index payload, bounds-checked against n.
func payloadIndex(p []byte, n int) (int, error) {
	i, err := strconv.Atoi(string(p))
	if err != nil || i < 0 || i >= n {
		return 0, fmt.Errorf("core: bad index payload %q", p)
	}
	return i, nil
}

// NewSimulation assembles a simulation: topology, fleet, scheduler, epoch
// population (placed at t=0), telemetry samplers, rebalancers, resize
// churn, and scenario injectors. The returned simulation is positioned at
// time zero with the whole observation window ahead of it.
func NewSimulation(cfg Config, hooks Hooks) (*Simulation, error) {
	return assemble(cfg, hooks, nil)
}

// assemble builds the full simulation skeleton. With a nil snapshot it is
// the ordinary cold start. With a snapshot it prepares the same skeleton for
// an overlay restore: the epoch population stays unplaced, no arrival or
// ticker events are scheduled (they come back from the captured engine
// queue through the rearmer table), and the first snap.NumInjectors
// injectors run in restoring mode — registering their handler factories and
// RNG streams without scheduling anything.
func assemble(cfg Config, hooks Hooks, snap *snapshot.Snapshot) (*Simulation, error) {
	restoring := snap != nil
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	prof := engprof.New()
	buildStart := prof.Start()
	region, err := topology.Build(topology.DefaultBuildSpec(cfg.Scale))
	if err != nil {
		return nil, fmt.Errorf("core: building region: %w", err)
	}
	fleet := esx.NewFleet(region, cfg.ESX)
	if cfg.HolisticNodeFit {
		cfg.Scheduler.Filters = append(append([]nova.Filter{}, cfg.Scheduler.Filters...),
			nova.NodeFitFilter{FitsNode: func(bb *topology.BuildingBlock, f *vmmodel.Flavor) bool {
				for _, h := range fleet.HostsInBB(bb) {
					if h.Fits(f) {
						return true
					}
				}
				return false
			}})
	}
	pl := placement.NewService()
	sched, err := nova.NewScheduler(fleet, pl, cfg.Scheduler)
	if err != nil {
		return nil, fmt.Errorf("core: scheduler: %w", err)
	}
	sched.SetProfiler(prof)
	s := &Simulation{
		cfg:   cfg,
		hooks: hooks,
		res: &Result{
			Config:    cfg,
			Region:    region,
			Fleet:     fleet,
			Store:     telemetry.NewStore(),
			Scheduler: sched,
			Events:    &events.Log{},
		},
		engine:    sim.NewEngine(),
		live:      make(map[vmmodel.ID]*vmmodel.VM),
		rearmers:  make(map[string]func([]byte) (sim.Rearmed, error)),
		rngs:      make(map[string]*rand.PCG),
		down:      make(map[topology.NodeID]int),
		prof:      prof,
		placement: pl,
	}
	s.engine.SetProfiler(prof)
	res, engine, live := s.res, s.engine, s.live

	spec := workload.DefaultSpec(cfg.VMs, cfg.Seed)
	spec.Horizon = cfg.Horizon()
	spec.Phases = cfg.ArrivalPhases
	s.instances = workload.NewGenerator(spec).Generate()
	instances := s.instances

	// record appends an event; logging failures cannot occur because all
	// appends happen in simulation-time order.
	record := func(e events.Event) { _ = res.Events.Append(e) }

	// deleteVM builds the planned-deletion handler for one instance. Both
	// the cold path and the rearmer use it, so a restored deletion event
	// behaves identically to the original.
	deleteVM := func(in *workload.Instance) sim.Handler {
		return func(at sim.Time) {
			if _, ok := live[in.VM.ID]; !ok {
				return
			}
			delete(live, in.VM.ID)
			source := ""
			if in.VM.Node != nil {
				source = string(in.VM.Node.ID)
			}
			_ = sched.Delete(in.VM, at)
			record(events.Event{At: at, Type: events.Delete,
				VM: string(in.VM.ID), Flavor: in.VM.Flavor.Name, Source: source})
		}
	}

	s.placeVM = func(idx int, in *workload.Instance, now sim.Time) {
		res.VMs = append(res.VMs, in.VM)
		res.Lifetimes = append(res.Lifetimes, analysis.LifetimeRecord{
			Flavor: in.VM.Flavor, Lifetime: in.Lifetime,
		})
		// Events cover the observation window only; the initial
		// population's creations predate it (in.ArriveAt <= 0).
		inWindow := in.ArriveAt > 0
		r, err := sched.Schedule(&nova.RequestSpec{VM: in.VM}, now)
		if err != nil {
			res.PlacementFailures++
			if inWindow {
				record(events.Event{At: now, Type: events.ScheduleFailed,
					VM: string(in.VM.ID), Flavor: in.VM.Flavor.Name})
				if hooks.OnPlacement != nil {
					hooks.OnPlacement(now, string(in.VM.ID), in.VM.Flavor.Name, "", err.Error())
				}
			}
			return
		}
		if inWindow {
			record(events.Event{At: now, Type: events.Create,
				VM: string(in.VM.ID), Flavor: in.VM.Flavor.Name, Target: string(r.Node.ID)})
			if hooks.OnPlacement != nil {
				hooks.OnPlacement(now, string(in.VM.ID), in.VM.Flavor.Name, string(r.Node.ID), "")
			}
		}
		live[in.VM.ID] = in.VM
		if del := in.DeleteAt(); del < cfg.Horizon() {
			_, _ = engine.SchedulePriorityOwned(del, -1, ownerDelete, indexPayload(idx), deleteVM(in))
		}
	}
	placeVM := s.placeVM

	s.rearmers[ownerArrive] = func(p []byte) (sim.Rearmed, error) {
		idx, err := payloadIndex(p, len(instances))
		if err != nil {
			return sim.Rearmed{}, err
		}
		in := instances[idx]
		return sim.Rearmed{Fn: func(at sim.Time) { placeVM(idx, in, at) }}, nil
	}
	s.rearmers[ownerDelete] = func(p []byte) (sim.Rearmed, error) {
		idx, err := payloadIndex(p, len(instances))
		if err != nil {
			return sim.Rearmed{}, err
		}
		return sim.Rearmed{Fn: deleteVM(instances[idx])}, nil
	}

	// Initial population: placed before the first sample. The paper's
	// region is in steady state at the epoch. A restore skips placement
	// and arrival scheduling: the VM overlay and the captured engine queue
	// carry that state.
	for idx, in := range instances {
		if in.ArriveAt <= 0 {
			if !restoring {
				placeVM(idx, in, 0)
			}
			continue
		}
		if in.ArriveAt > s.lastArrival {
			s.lastArrival = in.ArriveAt
		}
		if !restoring {
			idx, in := idx, in
			if _, err := engine.ScheduleOwned(in.ArriveAt, 0, ownerArrive, indexPayload(idx), func(at sim.Time) {
				placeVM(idx, in, at)
			}); err != nil {
				return nil, err
			}
		}
	}

	// addTicker wires a recurring event: scheduled from scratch on a cold
	// start, or created unscheduled and registered as a rearmer when the
	// captured queue will bring its pending event back.
	addTicker := func(owner string, start, every sim.Time, fn sim.Handler) error {
		if restoring {
			_, r := engine.RearmTicker(every, owner, fn)
			s.rearmers[owner] = func([]byte) (sim.Rearmed, error) { return r, nil }
			return nil
		}
		_, err := engine.EveryOwned(start, every, owner, fn)
		return err
	}

	// Host telemetry sampler. OnTick fires after the sweep so observers see
	// a consistent snapshot of the just-sampled state.
	sampler := newSampler(res, cfg, prof)
	s.sampler = sampler
	hostTick := sampler.sampleHosts
	if hooks.OnTick != nil {
		hostTick = func(now sim.Time) {
			sampler.sampleHosts(now)
			hooks.OnTick(now)
		}
	}
	if err := addTicker(ownerTickHost, 0, cfg.SampleEvery, hostTick); err != nil {
		return nil, err
	}
	if cfg.RecordVMMetrics {
		vmSampler := func(now sim.Time) { sampler.sampleVMs(now, live) }
		if err := addTicker(ownerTickVM, 0, cfg.VMSampleEvery, vmSampler); err != nil {
			return nil, err
		}
	}

	// Rebalancers.
	if cfg.DRS {
		every := cfg.DRSEvery
		if every <= 0 {
			every = sim.Hour
		}
		s.rebalancer = drs.New(fleet, drs.DefaultConfig())
		s.rebalancer.SetProfiler(prof)
		res.DRS = s.rebalancer
		s.rebalancer.OnMigrate = func(vm *vmmodel.VM, from, to *topology.Node, now sim.Time) {
			record(events.Event{At: now, Type: events.MigrateIntraBB,
				VM: string(vm.ID), Flavor: vm.Flavor.Name,
				Source: string(from.ID), Target: string(to.ID)})
			if hooks.OnMigration != nil {
				hooks.OnMigration(now, string(vm.ID), vm.Flavor.Name,
					string(from.ID), string(to.ID), MigrateDRS)
			}
		}
		rebalancer := s.rebalancer
		if err := addTicker(ownerTickDRS, every, every, func(now sim.Time) {
			rebalancer.RebalanceAll(now)
		}); err != nil {
			return nil, err
		}
	}
	if cfg.CrossBB {
		s.cross = drs.NewCrossBB(fleet, sched.MoveBB)
		s.cross.OnMigrate = func(vm *vmmodel.VM, from, to *topology.Node, now sim.Time) {
			record(events.Event{At: now, Type: events.MigrateCrossBB,
				VM: string(vm.ID), Flavor: vm.Flavor.Name,
				Source: string(from.ID), Target: string(to.ID)})
			if hooks.OnMigration != nil {
				hooks.OnMigration(now, string(vm.ID), vm.Flavor.Name,
					string(from.ID), string(to.ID), MigrateCross)
			}
		}
		cross := s.cross
		if err := addTicker(ownerTickCross, sim.Day, sim.Day, func(now sim.Time) {
			cross.Rebalance(now)
		}); err != nil {
			return nil, err
		}
	}

	// Resize churn: user-initiated flavor changes at the configured rate
	// (resize is a scheduler-triggering event, Sec. 2.2). The stream stays
	// live across ticks, so it is registered for snapshot capture.
	if cfg.ResizeRate > 0 {
		src := rand.NewPCG(cfg.Seed, 0x7e512e)
		rng := rand.New(src)
		s.rngs[ownerResizeRNG] = src
		perDay := cfg.ResizeRate * float64(cfg.VMs) / 30
		if err := addTicker(ownerTickResize, 12*sim.Hour, sim.Day, func(now sim.Time) {
			n := int(perDay)
			if rng.Float64() < perDay-float64(n) {
				n++
			}
			for i := 0; i < n; i++ {
				vm := pickLive(live, rng)
				if vm == nil {
					return
				}
				target := vmmodel.ResizeTarget(vm.Flavor, rng)
				if target == nil {
					continue
				}
				if _, err := sched.Resize(vm, target, now); err != nil {
					continue
				}
				res.Resizes++
				record(events.Event{At: now, Type: events.Resize,
					VM: string(vm.ID), Flavor: target.Name,
					Target: string(vm.Node.ID)})
			}
		}); err != nil {
			return nil, err
		}
	}

	// Scenario injectors run last so the steady-state wiring above is
	// complete when they schedule their operational events. On a restore,
	// only the injectors the snapshot was captured with run here (in
	// restoring mode); appended branch injectors are injected by
	// RestoreSimulation once the engine queue is back.
	if len(cfg.Injectors) > 0 {
		// Injector-driven evacuations land in the event log through
		// Env.Record; mirror them onto the hooks so observers see forced
		// moves (and stranded VMs) alongside ordinary placements.
		envRecord := record
		if hooks.OnMigration != nil || hooks.OnPlacement != nil {
			envRecord = func(e events.Event) {
				record(e)
				switch e.Type {
				case events.Evacuate:
					if hooks.OnMigration != nil {
						hooks.OnMigration(e.At, e.VM, e.Flavor, e.Source, e.Target, MigrateEvacuation)
					}
				case events.EvacuateFailed:
					if hooks.OnPlacement != nil {
						hooks.OnPlacement(e.At, e.VM, e.Flavor, "", "evacuation failed: no valid host")
					}
				}
			}
		}
		s.env = &Env{
			Engine: engine, Config: cfg, Region: region, Fleet: fleet,
			Scheduler: sched, Result: res, live: live, record: envRecord,
			down: s.down, rearmers: s.rearmers, rngs: s.rngs,
		}
		limit := len(cfg.Injectors)
		if restoring {
			limit = snap.NumInjectors
		}
		for i := 0; i < limit; i++ {
			// Each injector gets its own Env copy: the index baked into the
			// copy namespaces the rearm keys its handlers compute at event
			// time, while the maps stay shared.
			env := *s.env
			env.idx = i
			env.restoring = restoring
			if restoring {
				env.restoreAt = snap.At
			}
			if err := cfg.Injectors[i].Inject(&env); err != nil {
				return nil, fmt.Errorf("core: injector %s: %w", cfg.Injectors[i].Name(), err)
			}
		}
	}

	prof.EndSpan(engprof.PhaseBuild, buildStart, int64(len(instances)))
	return s, nil
}

// Now reports the current simulated time.
func (s *Simulation) Now() sim.Time { return s.engine.Now() }

// Horizon reports the end of the observation window.
func (s *Simulation) Horizon() sim.Time { return s.cfg.Horizon() }

// Done reports whether the simulation has reached its horizon.
func (s *Simulation) Done() bool { return s.finalized }

// FiredEvents reports how many engine events have executed so far.
func (s *Simulation) FiredEvents() uint64 { return s.engine.Fired() }

// LiveVMs reports how many VMs are currently resident in the fleet.
func (s *Simulation) LiveVMs() int { return len(s.live) }

// LastArrival reports the simulated time of the last in-window VM arrival:
// once the clock passes it, the full arrival sequence (and with it every
// lifetime record) is final.
func (s *Simulation) LastArrival() sim.Time { return s.lastArrival }

// Result returns the simulation's live result. Telemetry, events, and the
// VM population accumulate as the clock advances; the end-of-run summary
// counters (SchedStats, migration totals) are filled once the horizon is
// reached. Each call refreshes Result.Profile with the profiler's current
// attribution.
func (s *Simulation) Result() *Result {
	s.res.Profile = s.snapshotProfile()
	return s.res
}

// Profiler exposes the simulation's engine self-profiler, so callers that
// measure work outside the engine loop on this cell's behalf (the session's
// snapshot encode) can attribute it into the same profile.
func (s *Simulation) Profiler() *engprof.Collector { return s.prof }

// snapshotProfile folds the subsystem counters the collector cannot see
// from the engine loop — placement-database operations, the fleet's
// snapshot-cache outcomes — into the owner breakdown, then snapshots.
func (s *Simulation) snapshotProfile() *engprof.Profile {
	hits, misses := s.res.Fleet.SnapshotCacheStats()
	s.prof.SetOwnerOps("esx/snapshot-cache/hit", int64(hits))
	s.prof.SetOwnerOps("esx/snapshot-cache/miss", int64(misses))
	pst := s.placement.Stats()
	s.prof.SetOwnerOps("placement/claims", pst.Claims)
	s.prof.SetOwnerOps("placement/claim-conflicts", pst.ClaimConflicts)
	return s.prof.Profile()
}

// ErrFinished is returned when advancing a simulation past its horizon.
var ErrFinished = errors.New("core: simulation already finished")

// AdvanceTo drives the engine until simulated time t (clamped to the
// horizon). When interrupt is non-nil it is consulted before every engine
// event; a non-nil result aborts the segment immediately and is returned
// unchanged, leaving the simulation resumable from the abort point.
// Reaching the horizon finalizes the run's summary counters.
func (s *Simulation) AdvanceTo(t sim.Time, interrupt func() error) error {
	if s.finalized {
		return ErrFinished
	}
	horizon := s.cfg.Horizon()
	if t > horizon {
		t = horizon
	}
	if err := s.engine.RunInterruptible(t, interrupt); err != nil {
		return err
	}
	if t >= horizon {
		s.finalize()
	}
	return nil
}

// finalize snapshots the end-of-run counters into the result.
func (s *Simulation) finalize() {
	if s.finalized {
		return
	}
	s.finalized = true
	if s.rebalancer != nil {
		s.res.DRSMigrations = s.rebalancer.Migrations()
	}
	if s.cross != nil {
		s.res.CrossBBMoves = s.cross.Moves()
	}
	s.res.SchedStats = s.res.Scheduler.Stats()
}
