package core

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"sapsim/internal/analysis"
	"sapsim/internal/events"
	"sapsim/internal/exporter"
	"sapsim/internal/nova"
	"sapsim/internal/sim"
	"sapsim/internal/snapshot"
	"sapsim/internal/telemetry"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
)

// fingerprint identifies the deterministic re-assembly a snapshot belongs
// to: every config knob that shapes the instance sequence, the event
// wiring, or an RNG stream, plus the names of the first numInjectors
// injectors. Injector parameters are the caller's responsibility — a
// restore against a same-named injector with different settings silently
// replays a different scenario.
func fingerprint(cfg Config, numInjectors int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "seed=%d scale=%g vms=%d days=%d sample=%d vmsample=%d",
		cfg.Seed, cfg.Scale, cfg.VMs, cfg.Days, cfg.SampleEvery, cfg.VMSampleEvery)
	fmt.Fprintf(&b, " drs=%t/%d cross=%t vmmetrics=%t contention=%t holistic=%t resize=%g",
		cfg.DRS, cfg.DRSEvery, cfg.CrossBB, cfg.RecordVMMetrics,
		cfg.ContentionFeed, cfg.HolisticNodeFit, cfg.ResizeRate)
	fmt.Fprintf(&b, " esx=%+v", cfg.ESX)
	fmt.Fprintf(&b, " phases=%+v", cfg.ArrivalPhases)
	for i := 0; i < numInjectors && i < len(cfg.Injectors); i++ {
		fmt.Fprintf(&b, " inj=%s", cfg.Injectors[i].Name())
	}
	return b.String()
}

// Snapshot captures the simulation's complete mid-run state at the current
// engine-idle boundary: the pending event queue as rearmable records, the
// dynamic VM overlay, node service state, RNG streams, counters, the event
// log, and the telemetry store. It must be called between AdvanceTo
// segments, never from inside a handler.
func (s *Simulation) Snapshot() (*snapshot.Snapshot, error) {
	if s.finalized {
		return nil, errors.New("core: cannot snapshot a finished simulation")
	}
	eng, err := s.engine.CaptureState()
	if err != nil {
		return nil, err
	}
	snap := &snapshot.Snapshot{
		At:           s.engine.Now(),
		Fingerprint:  fingerprint(s.cfg, len(s.cfg.Injectors)),
		NumInjectors: len(s.cfg.Injectors),
		Engine:       *eng,
		Arrived:      len(s.res.VMs),
		VMs:          make([]snapshot.VMState, 0, len(s.res.VMs)),
		Down:         make(map[string]int),
		RNGs:         make(map[string][]byte, len(s.rngs)),
	}
	for _, vm := range s.res.VMs {
		st := snapshot.VMState{
			Flavor:     vm.Flavor.Name,
			State:      int(vm.State),
			PlacedAt:   vm.PlacedAt,
			DeletedAt:  vm.DeletedAt,
			Migrations: vm.Migrations,
		}
		if vm.Node != nil {
			st.Node = string(vm.Node.ID)
		}
		if _, ok := s.live[vm.ID]; ok {
			st.Live = true
		}
		snap.VMs = append(snap.VMs, st)
	}
	for id, n := range s.down {
		if n > 0 {
			snap.Down[string(id)] = n
		}
	}
	for name, src := range s.rngs {
		b, err := src.MarshalBinary()
		if err != nil {
			return nil, fmt.Errorf("core: snapshot rng %s: %w", name, err)
		}
		snap.RNGs[name] = b
	}
	snap.Counters = snapshot.Counters{
		PlacementFailures: s.res.PlacementFailures,
		Resizes:           s.res.Resizes,
	}
	if s.rebalancer != nil {
		snap.Counters.DRSMigrations = s.rebalancer.Migrations()
		snap.Counters.DRSPasses = s.rebalancer.Passes()
	}
	if s.cross != nil {
		snap.Counters.CrossBBMoves = s.cross.Moves()
	}
	st := s.res.Scheduler.Stats()
	snap.Sched = snapshot.SchedulerState{
		Scheduled:  st.Scheduled,
		Failed:     st.Failed,
		Retries:    st.Retries,
		Eliminated: st.Eliminated,
		Contention: make(map[string]float64),
	}
	for bb, v := range s.res.Scheduler.Contention() {
		snap.Sched.Contention[string(bb)] = v
	}
	snap.Events = append([]events.Event(nil), s.res.Events.All()...)
	snap.Series = s.res.Store.Dump()
	return snap, nil
}

// RestoreSimulation rebuilds a running simulation from a snapshot. The
// config must deterministically re-assemble the captured run: its
// fingerprint (over the first snap.NumInjectors injectors) must match the
// snapshot's. Injectors appended beyond that prefix are injected into the
// restored run at the snapshot time — the speculative-branching mechanism.
// With an unchanged config the restored run continues bit-identically to
// the uninterrupted one.
func RestoreSimulation(cfg Config, hooks Hooks, snap *snapshot.Snapshot) (*Simulation, error) {
	if snap == nil {
		return nil, errors.New("core: restore from nil snapshot")
	}
	if snap.NumInjectors > len(cfg.Injectors) {
		return nil, fmt.Errorf("core: snapshot captured with %d injectors, config has %d",
			snap.NumInjectors, len(cfg.Injectors))
	}
	if got := fingerprint(cfg, snap.NumInjectors); got != snap.Fingerprint {
		return nil, fmt.Errorf("core: snapshot fingerprint mismatch:\n  config:   %s\n  snapshot: %s",
			got, snap.Fingerprint)
	}
	s, err := assemble(cfg, hooks, snap)
	if err != nil {
		return nil, err
	}
	if err := s.overlay(snap); err != nil {
		return nil, fmt.Errorf("core: restore: %w", err)
	}
	// Branch injectors run only now, with the clock and the fleet at the
	// snapshot point. Their inject-time events get priority -1 so they sort
	// before coincident in-flight events — the position their cold
	// counterparts' assembly-time sequence numbers would give them; the
	// priority resets afterwards so handler-scheduled follow-ups order like
	// any dynamically scheduled event.
	for i := snap.NumInjectors; i < len(cfg.Injectors); i++ {
		env := *s.env
		env.idx = i
		env.restoring = false
		env.restoreAt = snap.At
		env.schedPriority = -1
		if err := cfg.Injectors[i].Inject(&env); err != nil {
			return nil, fmt.Errorf("core: branch injector %s: %w", cfg.Injectors[i].Name(), err)
		}
		env.schedPriority = 0
	}
	return s, nil
}

// overlay applies the snapshot's dynamic state onto a freshly assembled
// skeleton. Ordering matters: node service state first (admission rejects
// out-of-service nodes), then provider inventories (claims check capacity),
// then the VM overlay, counters, logs, RNG streams, and finally the engine
// queue.
func (s *Simulation) overlay(snap *snapshot.Snapshot) error {
	res := s.res
	// Node service state. The snapshot's down map is authoritative — it
	// already includes inject-time claims (e.g. a capacity expansion's
	// undelivered nodes), so inject-time mutations from the restoring
	// assembly are discarded. The map object is shared with every injector
	// Env and is therefore cleared and refilled in place.
	clear(s.down)
	for id, n := range snap.Down {
		s.down[topology.NodeID(id)] = n
	}
	for _, n := range res.Region.Nodes() {
		n.Maintenance = s.down[n.ID] > 0
	}
	// Provider inventories now reflect the restored service state. Blocks
	// from a not-yet-arrived capacity expansion have no provider yet —
	// exactly as in the original run.
	if err := res.Scheduler.RefreshAllInventories(); err != nil {
		return err
	}
	// VM overlay: the snapshot covers the arrived prefix of the generated
	// instance sequence, index-aligned.
	if snap.Arrived != len(snap.VMs) || snap.Arrived > len(s.instances) {
		return fmt.Errorf("vm overlay: %d states for %d arrived of %d instances",
			len(snap.VMs), snap.Arrived, len(s.instances))
	}
	catalog := vmmodel.CatalogByName()
	for i := 0; i < snap.Arrived; i++ {
		in, st := s.instances[i], snap.VMs[i]
		vm := in.VM
		// The lifetime record keeps the generated flavor: it was written at
		// placement time, before any resize.
		res.VMs = append(res.VMs, vm)
		res.Lifetimes = append(res.Lifetimes, analysis.LifetimeRecord{
			Flavor: vm.Flavor, Lifetime: in.Lifetime,
		})
		if st.Flavor != vm.Flavor.Name {
			f, ok := catalog[st.Flavor]
			if !ok {
				return fmt.Errorf("vm %s: unknown flavor %q", vm.ID, st.Flavor)
			}
			vm.Flavor = f
		}
		if st.Live {
			node, err := res.Region.Node(topology.NodeID(st.Node))
			if err != nil {
				return fmt.Errorf("vm %s: %w", vm.ID, err)
			}
			if err := res.Fleet.Place(vm, node, st.PlacedAt); err != nil {
				return fmt.Errorf("vm %s on %s: %w", vm.ID, st.Node, err)
			}
			if err := res.Scheduler.RestoreAllocation(vm); err != nil {
				return fmt.Errorf("vm %s: %w", vm.ID, err)
			}
			vm.Migrations = st.Migrations
			s.live[vm.ID] = vm
			continue
		}
		// Not live: deleted, lost to a failed evacuation, or never placed.
		vm.State = vmmodel.State(st.State)
		vm.PlacedAt = st.PlacedAt
		vm.DeletedAt = st.DeletedAt
		vm.Migrations = st.Migrations
	}
	// Scalar accumulators.
	res.PlacementFailures = snap.Counters.PlacementFailures
	res.Resizes = snap.Counters.Resizes
	if s.rebalancer != nil {
		s.rebalancer.RestoreCounters(snap.Counters.DRSMigrations, snap.Counters.DRSPasses)
	}
	if s.cross != nil {
		s.cross.RestoreMoves(snap.Counters.CrossBBMoves)
	}
	res.Scheduler.RestoreStats(nova.Stats{
		Scheduled:  snap.Sched.Scheduled,
		Failed:     snap.Sched.Failed,
		Retries:    snap.Sched.Retries,
		Eliminated: snap.Sched.Eliminated,
	})
	contention := make([]string, 0, len(snap.Sched.Contention))
	for bb := range snap.Sched.Contention {
		contention = append(contention, bb)
	}
	sort.Strings(contention)
	for _, bb := range contention {
		res.Scheduler.SetContention(topology.BBID(bb), snap.Sched.Contention[bb])
	}
	// Event log and telemetry.
	for _, e := range snap.Events {
		if err := res.Events.Append(e); err != nil {
			return fmt.Errorf("event log: %w", err)
		}
	}
	if err := res.Store.Load(snap.Series); err != nil {
		return err
	}
	// Seed the sampler's per-VM label cache from the loaded series: the
	// flavor label is pinned at a VM's first sample, so a VM resized after
	// that must keep appending to its original series, not open a new one
	// under the current flavor.
	for _, d := range snap.Series {
		if d.Metric != exporter.MetricVMCPURatio {
			continue
		}
		l, err := telemetry.NewLabels(d.Labels...)
		if err != nil {
			return fmt.Errorf("vm label cache: %w", err)
		}
		if id := l.Get("virtualmachine"); id != "" {
			s.sampler.vmLabels[vmmodel.ID(id)] = l
		}
	}
	// RNG streams: every registered stream must have captured state and
	// vice versa — an asymmetry means the config assembles a different run.
	if len(snap.RNGs) != len(s.rngs) {
		return fmt.Errorf("rng registry mismatch: snapshot has %d streams, assembly registered %d",
			len(snap.RNGs), len(s.rngs))
	}
	names := make([]string, 0, len(snap.RNGs))
	for name := range snap.RNGs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		src, ok := s.rngs[name]
		if !ok {
			return fmt.Errorf("rng %s in snapshot but not registered by assembly", name)
		}
		if err := src.UnmarshalBinary(snap.RNGs[name]); err != nil {
			return fmt.Errorf("rng %s: %w", name, err)
		}
	}
	// Finally the engine queue, re-armed through the rearmer table.
	return s.engine.RestoreState(&snap.Engine, func(pe sim.PendingEvent) (sim.Rearmed, error) {
		f, ok := s.rearmers[pe.Owner]
		if !ok {
			return sim.Rearmed{}, fmt.Errorf("no rearmer for owner %q", pe.Owner)
		}
		return f(pe.Payload)
	})
}
