package core_test

import (
	"reflect"
	"sort"
	"strings"
	"testing"

	"sapsim/internal/core"
	"sapsim/internal/scenario"
	"sapsim/internal/sim"
	"sapsim/internal/snapshot"
	"sapsim/internal/telemetry"
)

// sortedDump canonicalizes a store dump by (metric, labels) so two runs
// can be compared independently of series creation order.
func sortedDump(res *core.Result) []telemetry.SeriesData {
	d := res.Store.Dump()
	sort.Slice(d, func(i, j int) bool {
		if d[i].Metric != d[j].Metric {
			return d[i].Metric < d[j].Metric
		}
		return strings.Join(d[i].Labels, ",") < strings.Join(d[j].Labels, ",")
	})
	return d
}

// roundtripConfig is a small but fully featured run: DRS, cross-BB
// rebalancing, resize churn, and one injector of every snapshot-relevant
// shape (one-shot with recovery closures, a live RNG stream, inject-time
// topology mutation, staggered drains).
func roundtripConfig() core.Config {
	cfg := core.DefaultConfig(7)
	cfg.Scale = 0.02
	cfg.VMs = 400
	cfg.Days = 6
	cfg.CrossBB = true
	cfg.Injectors = []core.Injector{
		scenario.HostFailures{At: 2 * sim.Day, Fraction: 0.05, Recover: 8 * sim.Hour, Salt: 11},
		scenario.CascadingFailures{Start: 3 * sim.Day, Duration: sim.Day, BaseProb: 0.002, Recover: 6 * sim.Hour, Salt: 5},
		scenario.CapacityExpansion{At: 4 * sim.Day, Blocks: 2, Every: sim.Day / 2, Salt: 3},
		scenario.MaintenanceDrain{At: 30 * sim.Hour, BBIndex: 1},
		scenario.ResizeWave{At: 5 * sim.Day, Fraction: 0.1, Salt: 9},
	}
	return cfg
}

// fingerprintResult reduces a finished run to everything the round-trip
// must preserve bit-for-bit.
type resultDigest struct {
	Events            int
	LastEventAt       sim.Time
	PlacementFailures int
	Resizes           int
	DRSMigrations     int
	CrossBBMoves      int
	Scheduled         int
	Failed            int
	Retries           int
	SeriesCount       int
	SampleCount       int
	VMs               int
	Fired             uint64
}

func digestOf(t *testing.T, s *core.Simulation) resultDigest {
	t.Helper()
	res := s.Result()
	d := resultDigest{
		Events:            res.Events.Len(),
		PlacementFailures: res.PlacementFailures,
		Resizes:           res.Resizes,
		DRSMigrations:     res.DRSMigrations,
		CrossBBMoves:      res.CrossBBMoves,
		Scheduled:         res.SchedStats.Scheduled,
		Failed:            res.SchedStats.Failed,
		Retries:           res.SchedStats.Retries,
		SeriesCount:       res.Store.SeriesCount(),
		SampleCount:       res.Store.SampleCount(),
		VMs:               len(res.VMs),
		Fired:             s.FiredEvents(),
	}
	if all := res.Events.All(); len(all) > 0 {
		d.LastEventAt = all[len(all)-1].At
	}
	return d
}

// TestSnapshotRestoreContinuesIdentically snapshots a run mid-flight,
// round-trips the snapshot through its serialized form, restores a new
// simulation from it, and runs both to the horizon: every counter, the
// event log, and the telemetry store must match the uninterrupted run
// exactly.
func TestSnapshotRestoreContinuesIdentically(t *testing.T) {
	cfg := roundtripConfig()

	cold, err := core.NewSimulation(cfg, core.Hooks{})
	if err != nil {
		t.Fatalf("cold: %v", err)
	}
	if err := cold.AdvanceTo(cold.Horizon(), nil); err != nil {
		t.Fatalf("cold run: %v", err)
	}

	warm, err := core.NewSimulation(cfg, core.Hooks{})
	if err != nil {
		t.Fatalf("warm: %v", err)
	}
	mid := cfg.Horizon() / 2
	if err := warm.AdvanceTo(mid, nil); err != nil {
		t.Fatalf("warm first half: %v", err)
	}
	snap, err := warm.Snapshot()
	if err != nil {
		t.Fatalf("snapshot: %v", err)
	}
	blob, err := snapshot.EncodeBytes(snap)
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	decoded, err := snapshot.DecodeBytes(blob)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}

	restored, err := core.RestoreSimulation(cfg, core.Hooks{}, decoded)
	if err != nil {
		t.Fatalf("restore: %v", err)
	}
	if got := restored.Now(); got != mid {
		t.Fatalf("restored clock = %v, want %v", got, mid)
	}
	if err := restored.AdvanceTo(restored.Horizon(), nil); err != nil {
		t.Fatalf("restored second half: %v", err)
	}

	want, got := digestOf(t, cold), digestOf(t, restored)
	if want != got {
		t.Fatalf("restored run diverged:\n  cold:     %+v\n  restored: %+v", want, got)
	}
	coldEvents, restoredEvents := cold.Result().Events.All(), restored.Result().Events.All()
	for i := range coldEvents {
		if coldEvents[i] != restoredEvents[i] {
			t.Fatalf("event %d diverged:\n  cold:     %+v\n  restored: %+v",
				i, coldEvents[i], restoredEvents[i])
		}
	}
	// Per-VM series creation order varies between runs (the VM sweep walks
	// a map), so compare the stores under a canonical order. The analysis
	// layer is insensitive to creation order for the same reason.
	if !reflect.DeepEqual(sortedDump(cold.Result()), sortedDump(restored.Result())) {
		t.Fatal("telemetry stores diverged")
	}
	if !reflect.DeepEqual(cold.Result().SchedStats.Eliminated, restored.Result().SchedStats.Eliminated) {
		t.Fatal("filter elimination counters diverged")
	}
}

// TestSnapshotFingerprintGuards verifies Restore refuses configs that do
// not deterministically re-assemble the captured run.
func TestSnapshotFingerprintGuards(t *testing.T) {
	cfg := roundtripConfig()
	s, err := core.NewSimulation(cfg, core.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(sim.Day, nil); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	bad := cfg
	bad.Seed = 8
	if _, err := core.RestoreSimulation(bad, core.Hooks{}, snap); err == nil {
		t.Fatal("restore with different seed succeeded")
	}
	fewer := cfg
	fewer.Injectors = cfg.Injectors[:2]
	if _, err := core.RestoreSimulation(fewer, core.Hooks{}, snap); err == nil {
		t.Fatal("restore with dropped injectors succeeded")
	}
	if _, err := core.RestoreSimulation(cfg, core.Hooks{}, nil); err == nil {
		t.Fatal("restore from nil snapshot succeeded")
	}
}

// TestSnapshotForkBranches restores one snapshot under two configs that
// append different branch injectors: both branches must run to the horizon
// and diverge from each other, while a no-branch restore matches the
// uninterrupted run.
func TestSnapshotForkBranches(t *testing.T) {
	cfg := core.DefaultConfig(13)
	cfg.Scale = 0.02
	cfg.VMs = 300
	cfg.Days = 5

	s, err := core.NewSimulation(cfg, core.Hooks{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.AdvanceTo(2*sim.Day, nil); err != nil {
		t.Fatal(err)
	}
	snap, err := s.Snapshot()
	if err != nil {
		t.Fatal(err)
	}

	branch := func(inj core.Injector) *core.Simulation {
		t.Helper()
		bcfg := cfg
		if inj != nil {
			bcfg.Injectors = append(append([]core.Injector{}, cfg.Injectors...), inj)
		}
		b, err := core.RestoreSimulation(bcfg, core.Hooks{}, snap)
		if err != nil {
			t.Fatalf("branch restore: %v", err)
		}
		if err := b.AdvanceTo(b.Horizon(), nil); err != nil {
			t.Fatalf("branch run: %v", err)
		}
		return b
	}

	outage := branch(scenario.AZOutage{At: 3 * sim.Day, AZIndex: 0, Duration: 4 * sim.Hour})
	calm := branch(nil)
	if outage.Result().Events.Len() == calm.Result().Events.Len() {
		t.Fatal("outage branch produced the same event stream as the calm branch")
	}

	if err := s.AdvanceTo(s.Horizon(), nil); err != nil {
		t.Fatal(err)
	}
	if d1, d2 := digestOf(t, s), digestOf(t, calm); d1 != d2 {
		t.Fatalf("calm branch diverged from its origin run:\n  origin: %+v\n  branch: %+v", d1, d2)
	}
}
