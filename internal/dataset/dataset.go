// Package dataset reads and writes the released telemetry artifact: CSV
// files with one row per sample, anonymized the way the paper describes
// (Appendix A: "metadata, such as hostnames, project IDs, and IP addresses
// were consistently hashed or removed").
//
// Schema (header included):
//
//	metric,ts_seconds,value,labels
//
// where labels is a semicolon-separated k=v list with values consistently
// hashed for the configured label keys.
package dataset

import (
	"crypto/sha256"
	"encoding/csv"
	"encoding/hex"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
)

// Anonymizer consistently hashes entity identifiers: equal inputs map to
// equal outputs within one dataset, but the mapping is not reversible.
type Anonymizer struct {
	salt string
	memo map[string]string
}

// NewAnonymizer creates an anonymizer with a dataset-specific salt.
func NewAnonymizer(salt string) *Anonymizer {
	return &Anonymizer{salt: salt, memo: make(map[string]string)}
}

// Hash returns the stable pseudonym of an identifier.
func (a *Anonymizer) Hash(id string) string {
	if h, ok := a.memo[id]; ok {
		return h
	}
	sum := sha256.Sum256([]byte(a.salt + "\x00" + id))
	h := hex.EncodeToString(sum[:6]) // 12 hex chars, like the released data
	a.memo[id] = h
	return h
}

// DefaultAnonymizedLabels lists the label keys whose values carry entity
// identity and must be hashed before release.
func DefaultAnonymizedLabels() map[string]bool {
	return map[string]bool{
		"hostsystem":     true,
		"virtualmachine": true,
		"project":        true,
	}
}

// WriteOptions configures export.
type WriteOptions struct {
	// Anonymizer hashes the values of AnonymizeLabels; nil disables
	// anonymization (for internal round-trips).
	Anonymizer      *Anonymizer
	AnonymizeLabels map[string]bool
}

// Write exports every series of the store. Rows are ordered by metric name,
// then label fingerprint, then time, so output is deterministic.
func Write(w io.Writer, store *telemetry.Store, opts WriteOptions) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"metric", "ts_seconds", "value", "labels"}); err != nil {
		return err
	}
	for _, metric := range store.Metrics() {
		series := store.Select(metric)
		sort.Slice(series, func(i, j int) bool {
			return series[i].Labels.String() < series[j].Labels.String()
		})
		for _, s := range series {
			labelStr := encodeLabels(s.Labels, opts)
			for _, smp := range s.Samples {
				rec := []string{
					metric,
					strconv.FormatFloat(smp.T.Seconds(), 'f', -1, 64),
					strconv.FormatFloat(smp.V, 'g', -1, 64),
					labelStr,
				}
				if err := cw.Write(rec); err != nil {
					return err
				}
			}
		}
	}
	cw.Flush()
	return cw.Error()
}

// labelKeys extracts the sorted label keys of a set. telemetry.Labels does
// not expose iteration, so parse its canonical String form.
func encodeLabels(l telemetry.Labels, opts WriteOptions) string {
	str := l.String() // {k="v",k2="v2"}
	inner := strings.TrimSuffix(strings.TrimPrefix(str, "{"), "}")
	if inner == "" {
		return ""
	}
	parts := splitTopLevel(inner)
	out := make([]string, 0, len(parts))
	for _, p := range parts {
		eq := strings.IndexByte(p, '=')
		key := p[:eq]
		val, _ := strconv.Unquote(p[eq+1:])
		if opts.Anonymizer != nil && opts.AnonymizeLabels[key] {
			val = opts.Anonymizer.Hash(val)
		}
		out = append(out, key+"="+val)
	}
	return strings.Join(out, ";")
}

// splitTopLevel splits on commas not inside quotes.
func splitTopLevel(s string) []string {
	var out []string
	depth := false
	start := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '"':
			if i == 0 || s[i-1] != '\\' {
				depth = !depth
			}
		case ',':
			if !depth {
				out = append(out, s[start:i])
				start = i + 1
			}
		}
	}
	out = append(out, s[start:])
	return out
}

// Read imports a dataset CSV into a fresh telemetry store.
func Read(r io.Reader) (*telemetry.Store, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 4
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading header: %w", err)
	}
	if header[0] != "metric" || header[1] != "ts_seconds" || header[2] != "value" || header[3] != "labels" {
		return nil, fmt.Errorf("dataset: unexpected header %v", header)
	}
	store := telemetry.NewStore()
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		line++
		ts, err := strconv.ParseFloat(rec[1], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad timestamp %q", line, rec[1])
		}
		val, err := strconv.ParseFloat(rec[2], 64)
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: bad value %q", line, rec[2])
		}
		labels, err := decodeLabels(rec[3])
		if err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
		t := sim.Time(ts * float64(sim.Second))
		if err := store.Append(rec[0], labels, t, val); err != nil {
			return nil, fmt.Errorf("dataset: line %d: %w", line, err)
		}
	}
	return store, nil
}

func decodeLabels(s string) (telemetry.Labels, error) {
	if s == "" {
		return telemetry.Labels{}, nil
	}
	var pairs []string
	for _, part := range strings.Split(s, ";") {
		eq := strings.IndexByte(part, '=')
		if eq < 0 {
			return telemetry.Labels{}, fmt.Errorf("malformed label %q", part)
		}
		pairs = append(pairs, part[:eq], part[eq+1:])
	}
	return telemetry.NewLabels(pairs...)
}
