package dataset

import (
	"bytes"
	"strings"
	"testing"

	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
)

func TestAnonymizerConsistency(t *testing.T) {
	a := NewAnonymizer("salt-1")
	h1 := a.Hash("node-17")
	h2 := a.Hash("node-17")
	if h1 != h2 {
		t.Error("hashing not consistent")
	}
	if len(h1) != 12 {
		t.Errorf("hash length = %d, want 12", len(h1))
	}
	if h1 == "node-17" {
		t.Error("identity not anonymized")
	}
	if a.Hash("node-18") == h1 {
		t.Error("different identities collided")
	}
	b := NewAnonymizer("salt-2")
	if b.Hash("node-17") == h1 {
		t.Error("different salts should give different pseudonyms")
	}
}

func buildStore(t *testing.T) *telemetry.Store {
	t.Helper()
	st := telemetry.NewStore()
	l1 := telemetry.MustLabels("hostsystem", "node-1", "cluster", "bb-0")
	l2 := telemetry.MustLabels("hostsystem", "node-2", "cluster", "bb-0")
	for i := 0; i < 3; i++ {
		ts := sim.Time(i) * sim.Hour
		if err := st.Append("cpu_pct", l1, ts, float64(10+i)); err != nil {
			t.Fatal(err)
		}
		if err := st.Append("cpu_pct", l2, ts, float64(50+i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := st.Append("instances_total", telemetry.Labels{}, 0, 2); err != nil {
		t.Fatal(err)
	}
	return st
}

func TestWriteReadRoundTrip(t *testing.T) {
	st := buildStore(t)
	var buf bytes.Buffer
	if err := Write(&buf, st, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.SeriesCount() != st.SeriesCount() {
		t.Errorf("series = %d, want %d", got.SeriesCount(), st.SeriesCount())
	}
	if got.SampleCount() != st.SampleCount() {
		t.Errorf("samples = %d, want %d", got.SampleCount(), st.SampleCount())
	}
	series := got.Select("cpu_pct", telemetry.Matcher{Name: "hostsystem", Value: "node-1"})
	if len(series) != 1 {
		t.Fatalf("node-1 series = %d", len(series))
	}
	if series[0].Samples[2].V != 12 || series[0].Samples[2].T != 2*sim.Hour {
		t.Errorf("sample = %+v", series[0].Samples[2])
	}
	// Label-less series survives.
	if s := got.Select("instances_total"); len(s) != 1 || s[0].Samples[0].V != 2 {
		t.Errorf("instances series = %+v", s)
	}
}

func TestWriteAnonymizes(t *testing.T) {
	st := buildStore(t)
	var buf bytes.Buffer
	opts := WriteOptions{Anonymizer: NewAnonymizer("s"), AnonymizeLabels: DefaultAnonymizedLabels()}
	if err := Write(&buf, st, opts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "node-1") || strings.Contains(out, "node-2") {
		t.Error("raw hostnames leaked into the released CSV")
	}
	if !strings.Contains(out, "cluster=bb-0") {
		t.Error("non-identifying labels should be preserved")
	}
	// Consistency: the same node always maps to the same pseudonym.
	rows := strings.Split(strings.TrimSpace(out), "\n")
	pseudo := map[string]int{}
	for _, row := range rows[1:] {
		if i := strings.Index(row, "hostsystem="); i >= 0 {
			rest := row[i+len("hostsystem="):]
			if j := strings.IndexAny(rest, ";\n"); j >= 0 {
				rest = rest[:j]
			}
			pseudo[rest]++
		}
	}
	if len(pseudo) != 2 {
		t.Errorf("expected 2 pseudonyms, got %v", pseudo)
	}
}

func TestWriteDeterministic(t *testing.T) {
	st := buildStore(t)
	var a, b bytes.Buffer
	if err := Write(&a, st, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b, st, WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Error("export is not deterministic")
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"",
		"wrong,header,row,x\n",
		"metric,ts_seconds,value,labels\nm,notanumber,1,\n",
		"metric,ts_seconds,value,labels\nm,1,notanumber,\n",
		"metric,ts_seconds,value,labels\nm,1,1,malformed-no-eq\n",
	}
	for i, in := range cases {
		if _, err := Read(strings.NewReader(in)); err == nil {
			t.Errorf("case %d: Read succeeded, want error", i)
		}
	}
}

func TestReadRejectsOutOfOrder(t *testing.T) {
	in := "metric,ts_seconds,value,labels\nm,100,1,\nm,50,2,\n"
	if _, err := Read(strings.NewReader(in)); err == nil {
		t.Error("out-of-order rows accepted")
	}
}

func TestSplitTopLevel(t *testing.T) {
	got := splitTopLevel(`a="1",b="x,y",c="z"`)
	if len(got) != 3 || got[1] != `b="x,y"` {
		t.Errorf("splitTopLevel = %v", got)
	}
}
