package dataset

import (
	"encoding/csv"
	"fmt"
	"io"
	"strconv"

	"sapsim/internal/vmmodel"
)

// The released dataset includes the flavor table so that consumers can map
// the flavor labels in the telemetry back to resource shapes (a flavor is
// "a predefined template of vCPUs, memory, and storage", Sec. 2.1).

// WriteFlavors exports the flavor catalog as CSV.
func WriteFlavors(w io.Writer, flavors []*vmmodel.Flavor) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"name", "vcpus", "ram_gib", "disk_gb", "class", "pin_cpu", "gpu"}); err != nil {
		return err
	}
	for _, f := range flavors {
		rec := []string{
			f.Name,
			strconv.Itoa(f.VCPUs),
			strconv.Itoa(f.RAMGiB),
			strconv.Itoa(f.DiskGB),
			f.Class.String(),
			strconv.FormatBool(f.PinCPU),
			strconv.FormatBool(f.RequireGPU),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadFlavors imports a flavor table written by WriteFlavors.
func ReadFlavors(r io.Reader) ([]*vmmodel.Flavor, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 7
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("dataset: reading flavor header: %w", err)
	}
	if header[0] != "name" || header[1] != "vcpus" {
		return nil, fmt.Errorf("dataset: unexpected flavor header %v", header)
	}
	var out []*vmmodel.Flavor
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("dataset: flavor line %d: %w", line, err)
		}
		line++
		vcpus, err := strconv.Atoi(rec[1])
		if err != nil {
			return nil, fmt.Errorf("dataset: flavor line %d: bad vcpus %q", line, rec[1])
		}
		ram, err := strconv.Atoi(rec[2])
		if err != nil {
			return nil, fmt.Errorf("dataset: flavor line %d: bad ram %q", line, rec[2])
		}
		disk, err := strconv.Atoi(rec[3])
		if err != nil {
			return nil, fmt.Errorf("dataset: flavor line %d: bad disk %q", line, rec[3])
		}
		var class vmmodel.WorkloadClass
		switch rec[4] {
		case "general":
			class = vmmodel.General
		case "hana":
			class = vmmodel.HANA
		default:
			return nil, fmt.Errorf("dataset: flavor line %d: unknown class %q", line, rec[4])
		}
		pin, err := strconv.ParseBool(rec[5])
		if err != nil {
			return nil, fmt.Errorf("dataset: flavor line %d: bad pin_cpu %q", line, rec[5])
		}
		gpu, err := strconv.ParseBool(rec[6])
		if err != nil {
			return nil, fmt.Errorf("dataset: flavor line %d: bad gpu %q", line, rec[6])
		}
		out = append(out, &vmmodel.Flavor{
			Name: rec[0], VCPUs: vcpus, RAMGiB: ram, DiskGB: disk,
			Class: class, PinCPU: pin, RequireGPU: gpu,
		})
	}
	return out, nil
}
