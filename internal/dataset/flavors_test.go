package dataset

import (
	"bytes"
	"strings"
	"testing"

	"sapsim/internal/vmmodel"
)

func TestFlavorsRoundTrip(t *testing.T) {
	orig := vmmodel.Catalog()
	var buf bytes.Buffer
	if err := WriteFlavors(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFlavors(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(orig) {
		t.Fatalf("round trip: %d flavors vs %d", len(back), len(orig))
	}
	for i, f := range back {
		o := orig[i]
		if f.Name != o.Name || f.VCPUs != o.VCPUs || f.RAMGiB != o.RAMGiB ||
			f.DiskGB != o.DiskGB || f.Class != o.Class {
			t.Errorf("flavor %d differs: %+v vs %+v", i, f, o)
		}
	}
}

func TestFlavorsSpecialFields(t *testing.T) {
	special := []*vmmodel.Flavor{
		{Name: "PIN", VCPUs: 8, RAMGiB: 32, DiskGB: 100, PinCPU: true},
		{Name: "GA", VCPUs: 16, RAMGiB: 128, DiskGB: 500, RequireGPU: true},
	}
	var buf bytes.Buffer
	if err := WriteFlavors(&buf, special); err != nil {
		t.Fatal(err)
	}
	back, err := ReadFlavors(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !back[0].PinCPU || back[1].PinCPU {
		t.Error("pin_cpu not preserved")
	}
	if !back[1].RequireGPU || back[0].RequireGPU {
		t.Error("gpu not preserved")
	}
}

func TestReadFlavorsErrors(t *testing.T) {
	cases := []string{
		"",
		"x,y,z,w,v,u,t\n",
		"name,vcpus,ram_gib,disk_gb,class,pin_cpu,gpu\nA,x,1,1,general,false,false\n",
		"name,vcpus,ram_gib,disk_gb,class,pin_cpu,gpu\nA,1,x,1,general,false,false\n",
		"name,vcpus,ram_gib,disk_gb,class,pin_cpu,gpu\nA,1,1,x,general,false,false\n",
		"name,vcpus,ram_gib,disk_gb,class,pin_cpu,gpu\nA,1,1,1,party,false,false\n",
		"name,vcpus,ram_gib,disk_gb,class,pin_cpu,gpu\nA,1,1,1,general,maybe,false\n",
		"name,vcpus,ram_gib,disk_gb,class,pin_cpu,gpu\nA,1,1,1,general,false,maybe\n",
	}
	for i, in := range cases {
		if _, err := ReadFlavors(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
