package dispatch

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sapsim/internal/artifact"
)

// completeCell books the next cell for worker and completes it with the
// given artifact bodies, uploading each into the queue's store first —
// the contract the wire path (PUT /artifact then POST /complete) follows.
func completeCell(t *testing.T, q *Queue, worker string, bodies map[string]string) *Job {
	t.Helper()
	j, _, err := q.Book(worker, 1)
	if err != nil || j == nil {
		t.Fatalf("Book = %+v, %v", j, err)
	}
	digests := make(map[string]string, len(bodies))
	for id, body := range bodies {
		d := artifact.Digest([]byte(body))
		if _, err := q.PutArtifact(d, []byte(body)); err != nil {
			t.Fatal(err)
		}
		digests[id] = d
	}
	if err := q.Complete(j.ID, worker, j.Attempt, RunResult{Digests: digests}); err != nil {
		t.Fatal(err)
	}
	return j
}

// TestResumeDetectsDamagedBlobs is the CAS failure-mode acceptance: a
// truncated blob, a bit-flipped blob, and a missing blob are each
// detected by the resume audit, reported distinctly, and re-queue exactly
// the cells whose artifacts they carried; untouched cells stay done, and
// the shared blob still referenced by a surviving cell outlives the GC.
func TestResumeDetectsDamagedBlobs(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	dir := t.TempDir()
	q, err := NewQueue(dir, testSpec(), QueueOptions{Lease: time.Minute, now: clock.now}) // 4 cells
	if err != nil {
		t.Fatal(err)
	}

	// Four done cells. Every cell shares the "static" body (stored once);
	// each also has a private body the test damages selectively.
	shared := "table5: identical across cells"
	sharedDigest := artifact.Digest([]byte(shared))
	private := make([]string, 4)
	for i := 0; i < 4; i++ {
		private[i] = fmt.Sprintf("fig9 series of cell %d", i)
		completeCell(t, q, "w1", map[string]string{"table5": shared, "fig9": private[i]})
	}
	// One orphan: uploaded for a cell that never completed.
	orphan := artifact.Digest([]byte("upload from a crashed cell"))
	if _, err := q.PutArtifact(orphan, []byte("upload from a crashed cell")); err != nil {
		t.Fatal(err)
	}
	if n, _ := q.Store().Len(); n != 6 { // 1 shared + 4 private + 1 orphan
		t.Fatalf("store holds %d blobs, want 6 (shared body deduplicated)", n)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	// Damage three of the four private blobs, one per failure mode.
	casDir := filepath.Join(dir, artifact.DirName)
	blobPath := func(digest string) string { return filepath.Join(casDir, digest[:2], digest) }
	truncated := artifact.Digest([]byte(private[1]))
	if err := os.Truncate(blobPath(truncated), 4); err != nil {
		t.Fatal(err)
	}
	corrupt := artifact.Digest([]byte(private[2]))
	flipped := []byte(private[2])
	flipped[0] ^= 0x01
	if err := os.WriteFile(blobPath(corrupt), flipped, 0o644); err != nil {
		t.Fatal(err)
	}
	missing := artifact.Digest([]byte(private[3]))
	if err := os.Remove(blobPath(missing)); err != nil {
		t.Fatal(err)
	}

	r, err := Resume(dir, QueueOptions{Lease: time.Minute, now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	snap := r.Snapshot()
	wantStates := []string{"done", "queued", "queued", "queued"}
	for i, want := range wantStates {
		if snap[i].State != want {
			t.Errorf("cell %d resumed as %s, want %s", i, snap[i].State, want)
		}
		if want == "queued" && snap[i].Attempt != 0 {
			// Disk rot must not eat into the cell's attempt budget.
			t.Errorf("cell %d requeued with attempt %d, want a fresh budget", i, snap[i].Attempt)
		}
	}
	for _, want := range []string{"1 truncated blobs", "1 corrupt blobs", "1 missing blobs",
		"3 cells requeued for artifact re-upload"} {
		if !strings.Contains(r.Recovered(), want) {
			t.Errorf("Recovered() = %q, want it to mention %q", r.Recovered(), want)
		}
	}

	// The shared blob survives (cell 0 still references it); the orphan
	// and every damaged blob are gone, so re-uploads cannot dedup against
	// damage.
	if !r.Store().Has(sharedDigest) {
		t.Error("shared blob collected despite a live reference")
	}
	for name, digest := range map[string]string{
		"orphan": orphan, "truncated": truncated, "corrupt": corrupt,
	} {
		if r.Store().Has(digest) {
			t.Errorf("%s blob still in the store after resume", name)
		}
	}

	// The re-queued cells re-complete (same deterministic bodies) and the
	// sweep drains to a merged result whose digests match the originals.
	for i := 1; i <= 3; i++ {
		completeCell(t, r, "w2", map[string]string{"table5": shared, "fig9": private[i]})
	}
	merged, err := r.Merged()
	if err != nil {
		t.Fatal(err)
	}
	for i, run := range merged.Runs {
		if run.Digests["fig9"] != artifact.Digest([]byte(private[i])) {
			t.Errorf("cell %d re-ran to a different fig9 digest", i)
		}
	}

	// A second resume replays the requeue records cleanly: everything is
	// done again and nothing is re-queued.
	r.Close()
	r2, err := Resume(dir, QueueOptions{Lease: time.Minute, now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	for i, st := range r2.Snapshot() {
		if st.State != "done" {
			t.Errorf("cell %d after second resume = %s, want done", i, st.State)
		}
	}
}

// TestBundleFromQueueStore: a drained queue materializes a bundle whose
// every body re-hashes to the journal's digest, with shared blobs stored
// once.
func TestBundleFromQueueStore(t *testing.T) {
	q, _ := newTestQueue(t, QueueOptions{Lease: time.Minute})
	shared := "table3: static dataset comparison"
	for i := 0; i < 4; i++ {
		completeCell(t, q, "w1", map[string]string{
			"table3": shared,
			"fig5":   fmt.Sprintf("heatmap %d", i),
		})
	}
	merged, err := q.Merged()
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := q.Store().Len(); n != 5 {
		t.Fatalf("store holds %d blobs, want 5 (dedup)", n)
	}
	dir := t.TempDir()
	if _, err := artifact.WriteBundle(dir, merged, q.Store()); err != nil {
		t.Fatal(err)
	}
	// Spot-check one cell directory against the merged digests.
	key := merged.Runs[0].Key
	body, err := os.ReadFile(filepath.Join(dir, artifact.CellDir(key), "table3.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if artifact.Digest(body) != merged.Runs[0].Digests["table3"] {
		t.Fatal("bundled body does not re-hash to the journal digest")
	}
}

// TestCellRun exposes recorded results (the /bundle cell pages' source)
// and nothing for in-flight cells.
func TestCellRun(t *testing.T) {
	q, _ := newTestQueue(t, QueueOptions{Lease: time.Minute})
	j := completeCell(t, q, "w1", map[string]string{"fig5": "body"})
	run, ok := q.CellRun(j.ID)
	if !ok || run.Key != j.Key || run.Digests["fig5"] == "" {
		t.Fatalf("CellRun = %+v, %v", run, ok)
	}
	if _, ok := q.CellRun(j.ID + 1); ok {
		t.Fatal("CellRun returned a result for a queued cell")
	}
	if _, ok := q.CellRun(99); ok {
		t.Fatal("CellRun returned a result for an unknown cell")
	}
}
