package dispatch

import (
	"errors"
	"fmt"
	"html"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"sapsim/internal/artifact"
	"sapsim/internal/scenario"
)

// The /artifact blob endpoints: the upload/fetch half of the CAS wire
// protocol. Workers HEAD before PUT so blobs shared across cells — the
// static tables every cell reproduces — travel and land exactly once.

func (d *Dispatcher) handleArtifactHead(w http.ResponseWriter, r *http.Request) {
	// A stat, deliberately not a content verification: every completing
	// cell probes all its digests, so this sits on the sweep's hot path.
	// Integrity is enforced where bytes move — Put refuses mismatched
	// bodies, Get re-hashes on the way out — and Resume audits the whole
	// store at rest.
	size, err := d.queue.Store().Stat(r.PathValue("digest"))
	if err != nil {
		if d.headMisses != nil {
			d.headMisses.Inc()
		}
		http.Error(w, err.Error(), http.StatusNotFound)
		return
	}
	if d.headHits != nil {
		d.headHits.Inc()
	}
	w.Header().Set("Content-Length", strconv.FormatInt(size, 10))
	w.WriteHeader(http.StatusOK)
}

func (d *Dispatcher) handleArtifactPut(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 64<<20))
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return
	}
	stored, err := d.queue.PutArtifact(digest, body)
	if err != nil {
		// A body that doesn't hash to its digest is the client's fault; a
		// store that can't write is ours — workers must be able to tell a
		// rejected artifact from a dispatcher having a bad day.
		if errors.Is(err, artifact.ErrInvalid) {
			http.Error(w, err.Error(), http.StatusBadRequest)
		} else {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	if !stored {
		w.WriteHeader(http.StatusOK) // deduplicated
		return
	}
	w.WriteHeader(http.StatusCreated)
}

func (d *Dispatcher) handleArtifactGet(w http.ResponseWriter, r *http.Request) {
	digest := r.PathValue("digest")
	body, err := d.queue.Store().Get(digest)
	switch {
	case errors.Is(err, artifact.ErrMissing):
		http.Error(w, err.Error(), http.StatusNotFound)
	case errors.Is(err, artifact.ErrInvalid):
		http.Error(w, err.Error(), http.StatusBadRequest)
	case err != nil:
		http.Error(w, err.Error(), http.StatusInternalServerError)
	default:
		w.Header().Set("Content-Type", "application/octet-stream")
		_, _ = w.Write(body)
	}
}

// The /bundle tree: the browsable report over the collected artifacts.
// The index and per-cell pages serve incrementally as cells finish;
// sweep-wide pages (report, csv, diff, per-scenario comparatives) answer
// 425 until the sweep drains, like /result.

func (d *Dispatcher) merged(w http.ResponseWriter) (*scenario.SweepResult, bool) {
	res, err := d.queue.Merged()
	if err != nil {
		if errors.Is(err, ErrNotDrained) {
			http.Error(w, err.Error(), http.StatusTooEarly)
		} else {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return nil, false
	}
	return res, true
}

func writeText(w http.ResponseWriter, text string) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	_, _ = io.WriteString(w, text)
}

func writeHTML(w http.ResponseWriter, page string) {
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_, _ = io.WriteString(w, page)
}

func (d *Dispatcher) handleBundleReport(w http.ResponseWriter, r *http.Request) {
	if res, ok := d.merged(w); ok {
		writeText(w, scenario.Comparative(res))
	}
}

func (d *Dispatcher) handleBundleRunsCSV(w http.ResponseWriter, r *http.Request) {
	if res, ok := d.merged(w); ok {
		writeText(w, scenario.RunsCSV(res))
	}
}

func (d *Dispatcher) handleBundleDiff(w http.ResponseWriter, r *http.Request) {
	if res, ok := d.merged(w); ok {
		writeText(w, scenario.ArtifactDiff(res))
	}
}

func (d *Dispatcher) handleBundleScenario(w http.ResponseWriter, r *http.Request) {
	name := r.PathValue("name")
	res, ok := d.merged(w)
	if !ok {
		return
	}
	names := scenario.ScenarioNames(res)
	found := false
	for _, n := range names {
		if n == name {
			found = true
			break
		}
	}
	if !found {
		http.Error(w, fmt.Sprintf("no scenario %q in this sweep", name), http.StatusNotFound)
		return
	}
	writeText(w, scenario.Comparative(scenario.FilterScenarios(res, names[0], name)))
}

// cellByKey resolves a /bundle/cell path to the queue's job.
func (d *Dispatcher) cellByKey(r *http.Request) (JobStatus, bool) {
	seed, err := strconv.ParseUint(r.PathValue("seed"), 10, 64)
	if err != nil {
		return JobStatus{}, false
	}
	key := scenario.Key{Scenario: r.PathValue("scenario"), Variant: r.PathValue("variant"), Seed: seed}
	for _, st := range d.queue.Snapshot() {
		if st.Key == key {
			return st, true
		}
	}
	return JobStatus{}, false
}

func (d *Dispatcher) handleBundleCell(w http.ResponseWriter, r *http.Request) {
	st, ok := d.cellByKey(r)
	if !ok {
		http.Error(w, "no such cell", http.StatusNotFound)
		return
	}
	run, done := d.queue.CellRun(st.ID)
	if !done {
		http.Error(w, fmt.Sprintf("cell is %s; artifacts arrive on completion", st.State), http.StatusTooEarly)
		return
	}
	var b strings.Builder
	cell := fmt.Sprintf("%s/%s seed %d", run.Key.Scenario, run.Key.Variant, run.Key.Seed)
	fmt.Fprintf(&b, "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>%s</title></head><body>\n",
		html.EscapeString(cell))
	fmt.Fprintf(&b, "<h1>cell %s</h1>\n", html.EscapeString(cell))
	if run.Err != "" {
		fmt.Fprintf(&b, "<p>run failed: %s</p>\n</body></html>\n", html.EscapeString(run.Err))
		writeHTML(w, b.String())
		return
	}
	b.WriteString("<table>\n<tr><th>artifact</th><th>sha-256</th></tr>\n")
	ids := make([]string, 0, len(run.Digests))
	for id := range run.Digests {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	for _, id := range ids {
		fmt.Fprintf(&b, "<tr><td><a href=\"%s/%s\">%s</a></td><td><code>%s</code></td></tr>\n",
			html.EscapeString(r.URL.Path), html.EscapeString(id),
			html.EscapeString(id), run.Digests[id])
	}
	b.WriteString("</table>\n</body></html>\n")
	writeHTML(w, b.String())
}

func (d *Dispatcher) handleBundleArtifact(w http.ResponseWriter, r *http.Request) {
	st, ok := d.cellByKey(r)
	if !ok {
		http.Error(w, "no such cell", http.StatusNotFound)
		return
	}
	run, done := d.queue.CellRun(st.ID)
	if !done {
		http.Error(w, "cell has no artifacts yet", http.StatusTooEarly)
		return
	}
	if run.Err != "" {
		// Terminal: a failed cell will never have artifacts — don't invite
		// a retry loop with 425.
		http.Error(w, "cell failed; it has no artifacts: "+run.Err, http.StatusNotFound)
		return
	}
	digest, ok := run.Digests[r.PathValue("id")]
	if !ok {
		http.Error(w, "no such artifact in this cell", http.StatusNotFound)
		return
	}
	body, err := d.queue.Store().Get(digest)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeText(w, string(body))
}

func (d *Dispatcher) handleBundleIndex(w http.ResponseWriter, r *http.Request) {
	jobs := d.queue.Snapshot()
	done := 0
	for _, j := range jobs {
		if j.State == JobDone.String() || j.State == JobFailed.String() {
			done++
		}
	}
	var b strings.Builder
	b.WriteString("<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\"><title>sweep bundle</title>\n")
	b.WriteString("<style>body{font-family:monospace;margin:2em}table{border-collapse:collapse}" +
		"td,th{border:1px solid #999;padding:2px 8px;text-align:left}</style></head><body>\n")
	fmt.Fprintf(&b, "<h1>sweep report bundle</h1>\n<p>%d/%d cells terminal.</p>\n", done, len(jobs))
	b.WriteString("<ul>\n<li><a href=\"/bundle/report\">comparative report</a> (serves once drained)</li>\n" +
		"<li><a href=\"/bundle/runs.csv\">runs.csv</a></li>\n" +
		"<li><a href=\"/bundle/diff\">artifact diff vs baseline</a></li>\n</ul>\n")
	// Per-scenario comparative links; the first-seen scenario is the
	// baseline every page already compares against, so it gets no page of
	// its own.
	b.WriteString("<h2>per-scenario comparatives</h2>\n<ul>\n")
	seen := map[string]bool{}
	var baseline string
	for _, j := range jobs {
		if seen[j.Key.Scenario] {
			continue
		}
		seen[j.Key.Scenario] = true
		if baseline == "" {
			baseline = j.Key.Scenario
			continue
		}
		fmt.Fprintf(&b, "<li><a href=\"/bundle/scenario/%s\">%s vs %s</a></li>\n",
			html.EscapeString(j.Key.Scenario), html.EscapeString(j.Key.Scenario),
			html.EscapeString(baseline))
	}
	b.WriteString("</ul>\n<h2>cells</h2>\n<table>\n<tr><th>cell</th><th>state</th></tr>\n")
	for _, j := range jobs {
		cell := fmt.Sprintf("%s/%s/%d", j.Key.Scenario, j.Key.Variant, j.Key.Seed)
		fmt.Fprintf(&b, "<tr><td><a href=\"/bundle/cell/%s\">%s</a></td><td>%s</td></tr>\n",
			html.EscapeString(cell), html.EscapeString(cell), html.EscapeString(j.State))
	}
	b.WriteString("</table>\n</body></html>\n")
	writeHTML(w, b.String())
}
