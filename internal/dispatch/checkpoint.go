package dispatch

import (
	"encoding/json"
	"fmt"

	"sapsim"
	"sapsim/internal/scenario"
	"sapsim/internal/sim"
)

// CheckpointRecord is the versioned, self-contained on-disk/wire form of a
// sapsim.Checkpoint: the run's counters at an instant plus everything
// needed to restart the cell from scratch deterministically — the base
// config knobs, the scenario/variant names, and the seed. Every engine
// draw derives from the seed, so "restartable" means re-buildable and
// re-runnable to any point with bit-identical state; the record therefore
// needs no engine internals, only the inputs.
type CheckpointRecord struct {
	// Format is FormatVersion at encode time; Decode rejects mismatches.
	Format int
	// Key and Config restart the cell: Spec.CellConfig(Key) over a spec
	// with Base=Config rebuilds the exact simulation.
	Key    scenario.Key
	Config ConfigSpec

	// The sapsim.Checkpoint counters.
	At          sim.Time
	FiredEvents uint64
	LiveVMs     int
	Scheduled   int
	Failed      int
	Retries     int
	Resizes     int
	Migrations  int
}

// NewCheckpointRecord binds a session checkpoint to its cell's restart
// information.
func NewCheckpointRecord(key scenario.Key, base ConfigSpec, c sapsim.Checkpoint) CheckpointRecord {
	return CheckpointRecord{
		Format:      FormatVersion,
		Key:         key,
		Config:      base,
		At:          c.At,
		FiredEvents: c.FiredEvents,
		LiveVMs:     c.LiveVMs,
		Scheduled:   c.Scheduled,
		Failed:      c.Failed,
		Retries:     c.Retries,
		Resizes:     c.Resizes,
		Migrations:  c.Migrations,
	}
}

// Checkpoint returns the embedded sapsim.Checkpoint counters.
func (r CheckpointRecord) Checkpoint() sapsim.Checkpoint {
	return sapsim.Checkpoint{
		At:          r.At,
		FiredEvents: r.FiredEvents,
		LiveVMs:     r.LiveVMs,
		Scheduled:   r.Scheduled,
		Failed:      r.Failed,
		Retries:     r.Retries,
		Resizes:     r.Resizes,
		Migrations:  r.Migrations,
	}
}

// Spec returns a single-cell spec that restarts this checkpoint's cell
// from scratch: Resume paths hand it to a worker (or a local session) and
// the re-run reproduces the original cell byte for byte.
func (r CheckpointRecord) Spec() Spec {
	return Spec{
		Base:      r.Config,
		Scenarios: []string{r.Key.Scenario},
		Variants:  []string{r.Key.Variant},
		Seeds:     []uint64{r.Key.Seed},
	}
}

// EncodeCheckpoint serializes the record, stamping the current format
// version.
func EncodeCheckpoint(r CheckpointRecord) ([]byte, error) {
	r.Format = FormatVersion
	return json.Marshal(r)
}

// Validate rejects a record from a different format version or one
// missing its restart key. It gates every path a checkpoint enters the
// system through: DecodeCheckpoint, Queue.Progress (a version-skewed
// worker's heartbeat), and journal replay.
func (r CheckpointRecord) Validate() error {
	if r.Format != FormatVersion {
		return fmt.Errorf("dispatch: checkpoint format %d, want %d", r.Format, FormatVersion)
	}
	if r.Key.Scenario == "" || r.Key.Variant == "" {
		return fmt.Errorf("dispatch: checkpoint missing restart key")
	}
	return nil
}

// DecodeCheckpoint parses a serialized checkpoint and verifies its format
// version and restart key.
func DecodeCheckpoint(data []byte) (CheckpointRecord, error) {
	var r CheckpointRecord
	if err := json.Unmarshal(data, &r); err != nil {
		return CheckpointRecord{}, fmt.Errorf("dispatch: corrupt checkpoint: %w", err)
	}
	if err := r.Validate(); err != nil {
		return CheckpointRecord{}, err
	}
	return r, nil
}
