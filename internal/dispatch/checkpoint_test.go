package dispatch

import (
	"encoding/json"
	"os"
	"strings"
	"testing"

	"sapsim"
	"sapsim/internal/scenario"
	"sapsim/internal/sim"
)

func TestCheckpointRoundTrip(t *testing.T) {
	key := scenario.Key{Scenario: "host-failures", Variant: "no-drs", Seed: 99}
	base := testSpec().Base
	rec := NewCheckpointRecord(key, base, sapsim.Checkpoint{
		At: 3 * sim.Day, FiredEvents: 98765, LiveVMs: 240,
		Scheduled: 55, Failed: 2, Retries: 7, Resizes: 3, Migrations: 12,
	})
	data, err := EncodeCheckpoint(rec)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	if got != rec {
		t.Fatalf("round trip drifted:\n got %+v\nwant %+v", got, rec)
	}
	if got.Checkpoint() != (sapsim.Checkpoint{At: 3 * sim.Day, FiredEvents: 98765,
		LiveVMs: 240, Scheduled: 55, Failed: 2, Retries: 7, Resizes: 3, Migrations: 12}) {
		t.Fatalf("embedded checkpoint drifted: %+v", got.Checkpoint())
	}

	// Version and integrity checks.
	if _, err := DecodeCheckpoint(data[:len(data)/2]); err == nil {
		t.Error("truncated checkpoint decoded")
	}
	var raw map[string]any
	if err := json.Unmarshal(data, &raw); err != nil {
		t.Fatal(err)
	}
	raw["Format"] = FormatVersion + 1
	futuristic, _ := json.Marshal(raw)
	if _, err := DecodeCheckpoint(futuristic); err == nil || !strings.Contains(err.Error(), "format") {
		t.Errorf("future-format checkpoint decoded: %v", err)
	}
	if _, err := DecodeCheckpoint([]byte(`{"Format":1}`)); err == nil {
		t.Error("checkpoint without a restart key decoded")
	}
}

// TestCheckpointResumeReproducesGoldenDigests is the resumability
// guarantee: serialize a mid-run checkpoint, deserialize it, restart the
// cell from the decoded record alone, and the finished run's artifacts are
// byte-identical to the repo's pinned golden digests (the same file
// golden_test.go enforces).
func TestCheckpointResumeReproducesGoldenDigests(t *testing.T) {
	if testing.Short() {
		t.Skip("two reduced-scale 10-day runs")
	}
	golden := readGoldenDigests(t)

	// The golden config as a wire spec: DefaultConfig(42) at the golden
	// harness's reduced scale.
	base := SpecOf(sapsim.DefaultConfig(42))
	base.Scale = 0.02
	base.VMs = 960
	base.Days = 10
	spec := Spec{Base: base, Scenarios: []string{"baseline"}, Variants: []string{"default"}, Seeds: []uint64{42}}
	spec.normalize()
	key := spec.Keys()[0]

	// Run the cell partway, checkpointing daily, then abandon it mid-run.
	cfg, err := spec.CellConfig(key)
	if err != nil {
		t.Fatal(err)
	}
	first, err := sapsim.NewSession(cfg, sapsim.WithCheckpointEvery(sim.Day))
	if err != nil {
		t.Fatal(err)
	}
	ticksPerDay := int(sim.Day / cfg.SampleEvery)
	if _, err := first.Step(4 * ticksPerDay); err != nil {
		t.Fatal(err)
	}
	ckpt, ok := first.LastCheckpoint()
	if !ok {
		t.Fatal("no checkpoint after four days")
	}
	first.Close() // the original process dies here

	// Serialize → deserialize → restart from the record alone.
	data, err := EncodeCheckpoint(NewCheckpointRecord(key, spec.Base, ckpt))
	if err != nil {
		t.Fatal(err)
	}
	rec, err := DecodeCheckpoint(data)
	if err != nil {
		t.Fatal(err)
	}
	restartSpec := rec.Spec()
	restartSpec.normalize()
	cfg2, err := restartSpec.CellConfig(rec.Key)
	if err != nil {
		t.Fatal(err)
	}
	var replayed []sapsim.Checkpoint
	second, err := sapsim.NewSession(cfg2, sapsim.WithCheckpointEvery(sim.Day),
		sapsim.WithObserverFunc(func(ev sapsim.SessionEvent) {
			if c, ok := ev.(sapsim.Checkpoint); ok {
				replayed = append(replayed, c)
			}
		}))
	if err != nil {
		t.Fatal(err)
	}
	defer second.Close()
	if err := second.RunToCompletion(); err != nil {
		t.Fatal(err)
	}
	res, err := second.Result()
	if err != nil {
		t.Fatal(err)
	}
	digests, err := sapsim.ArtifactDigests(res)
	if err != nil {
		t.Fatal(err)
	}
	if len(digests) != len(golden) {
		t.Fatalf("resumed run produced %d artifacts, golden file has %d", len(digests), len(golden))
	}
	for id, want := range golden {
		if digests[id] != want {
			t.Errorf("%s: resumed digest %s != golden %s", id, digests[id], want)
		}
	}

	// The resumed run passes through the abandon point with bit-identical
	// counters — the engine replays deterministically, so the serialized
	// checkpoint matches the live one at the same instant. (Observers are
	// drained by the session's terminal close before Result returns.)
	found := false
	for _, c := range replayed {
		if c.At == ckpt.At {
			found = true
			if c != ckpt {
				t.Errorf("checkpoint at %v drifted on replay:\n got %+v\nwant %+v", c.At, c, ckpt)
			}
		}
	}
	if !found {
		t.Errorf("resumed run never re-checkpointed at the abandon point %v", ckpt.At)
	}
}

// readGoldenDigests loads the repo's pinned artifact digests.
func readGoldenDigests(t *testing.T) map[string]string {
	t.Helper()
	data, err := os.ReadFile("../../testdata/artifact_digests.txt")
	if err != nil {
		t.Fatalf("reading golden digests: %v", err)
	}
	out := make(map[string]string)
	for _, line := range strings.Split(strings.TrimSpace(string(data)), "\n") {
		id, sum, ok := strings.Cut(line, " ")
		if !ok {
			t.Fatalf("malformed golden line %q", line)
		}
		out[id] = sum
	}
	return out
}
