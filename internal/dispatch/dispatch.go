// Package dispatch distributes sweep matrices across machines: a durable
// job queue backed by a JSON-lines journal (write-ahead log), an HTTP
// dispatcher that books cells out to workers and collects per-cell metrics
// and artifact digests, and a worker that runs each booked cell through the
// step-driven sapsim Session, streaming coalesced Progress/Checkpoint
// events back as lease-renewing heartbeats.
//
// The shape follows the SIMQ dispatcher/simd split: the dispatcher owns
// queue state and survives restarts (Resume replays the journal and
// re-queues cells that were in flight when the process died); workers are
// stateless bookers that can appear, crash, and reconnect freely — a cell
// whose lease expires is re-booked to the next worker that asks.
//
// Every cell is deterministic per (config, scenario, variant, seed), so a
// sweep dispatched across N workers, killed, and resumed from the journal
// merges into a report and artifact-digest set byte-identical to a
// single-process scenario.Sweep of the same matrix (test-enforced).
//
// Queue states: queued → booked → running → done | failed, with
// lease-expiry edges booked/running → queued.
//
// Completed cells deliver more than digests: workers upload every artifact
// body into the dispatcher's content-addressed store (internal/artifact,
// under the journal directory), deduplicated by digest — a HEAD probe lets
// a worker skip blobs the store already holds, which covers the static
// tables identical across cells. The dispatcher serves the collected
// bodies as a browsable /bundle report tree, and Resume re-verifies the
// store against the journal, re-queueing any cell whose blobs went
// missing, truncated, or corrupt.
//
// Wire protocol (JSON over HTTP; artifact bodies travel raw):
//
//	POST /book     {worker, capacity}        → 200 job+base config | 204 none free | 410 drained
//	POST /progress {worker, job, attempt, checkpoint} → 200 (lease renewed) | 409 lease lost
//	POST /complete {worker, job, attempt, run}        → 200 | 409 lease lost | 412 blobs missing
//	POST /release  {worker, job, attempt}             → 200 (cell re-queued) | 409 lease lost
//	HEAD /artifact/{digest} → 200 held | 404
//	PUT  /artifact/{digest} → 201 stored | 200 deduplicated | 400 hash mismatch
//	GET  /artifact/{digest} → 200 body (digest-verified) | 404
//	GET  /state    → queue snapshot
//	GET  /result   → merged SweepResult (425 until drained)
//	GET  /bundle   → browsable report index (cells serve as they finish;
//	                 sweep-wide pages 425 until drained)
package dispatch

import (
	"fmt"
	"strconv"
	"strings"

	"sapsim/internal/core"
	"sapsim/internal/scenario"
	"sapsim/internal/sim"
)

// FormatVersion versions every on-disk artifact of this package: the
// journal header and each serialized checkpoint carry it, and readers
// reject records from a different format rather than misparse them.
// Version 2 added the content-addressed artifact store alongside the
// journal (blob records in the WAL, store verification on resume).
// Version 3 added mid-run snapshot records: workers upload encoded engine
// snapshots into the store and journal a pointer, so a re-booked cell
// resumes from the newest intact snapshot instead of t=0.
// Version 4 added wall-clock timestamps on every record plus span records
// (worker-side trace spans journaled next to the state transitions they
// annotate), so a finished or crashed sweep's full cell-lifecycle trace is
// reconstructable from the journal alone.
// Version 5 added profile records: each completed cell ships its engine
// self-profile (per-phase time/work attribution) into the store and
// journals a pointer, which — unlike a snapshot's — survives the cell's
// completion for post-hoc analysis (analyze -engprof).
const FormatVersion = 5

// ConfigSpec is the serializable subset of core.Config — the knobs the
// sweep CLIs vary. Config reconstructs a full core.Config from it on the
// worker side; scheduler/ESX policy beyond the defaults travels by variant
// name, and operational events by scenario name, so a ConfigSpec plus a
// (scenario, variant, seed) key restarts any cell from scratch
// deterministically.
type ConfigSpec struct {
	Seed            uint64
	Scale           float64
	VMs             int
	Days            int
	SampleEvery     sim.Time
	VMSampleEvery   sim.Time
	DRS             bool
	DRSEvery        sim.Time
	CrossBB         bool
	RecordVMMetrics bool
	ContentionFeed  bool
	HolisticNodeFit bool
	ResizeRate      float64
}

// SpecOf captures the serializable knobs of a config. Injectors, arrival
// phases, and non-default scheduler/ESX policy are not captured — those
// travel as scenario and variant names and are re-applied by the worker.
func SpecOf(cfg core.Config) ConfigSpec {
	return ConfigSpec{
		Seed:            cfg.Seed,
		Scale:           cfg.Scale,
		VMs:             cfg.VMs,
		Days:            cfg.Days,
		SampleEvery:     cfg.SampleEvery,
		VMSampleEvery:   cfg.VMSampleEvery,
		DRS:             cfg.DRS,
		DRSEvery:        cfg.DRSEvery,
		CrossBB:         cfg.CrossBB,
		RecordVMMetrics: cfg.RecordVMMetrics,
		ContentionFeed:  cfg.ContentionFeed,
		HolisticNodeFit: cfg.HolisticNodeFit,
		ResizeRate:      cfg.ResizeRate,
	}
}

// Config reconstructs the full core.Config: default scheduler and ESX
// policy with the spec's knobs applied. Both the single-process reference
// path and the dispatched path build cell configs through here, which is
// what makes the byte-identity guarantee hold.
func (s ConfigSpec) Config() core.Config {
	cfg := core.DefaultConfig(s.Seed)
	cfg.Scale = s.Scale
	cfg.VMs = s.VMs
	cfg.Days = s.Days
	cfg.SampleEvery = s.SampleEvery
	cfg.VMSampleEvery = s.VMSampleEvery
	cfg.DRS = s.DRS
	cfg.DRSEvery = s.DRSEvery
	cfg.CrossBB = s.CrossBB
	cfg.RecordVMMetrics = s.RecordVMMetrics
	cfg.ContentionFeed = s.ContentionFeed
	cfg.HolisticNodeFit = s.HolisticNodeFit
	cfg.ResizeRate = s.ResizeRate
	return cfg
}

// Spec is the serializable form of a sweep matrix: the base config knobs
// plus scenario/variant names and seeds. It is the journal header — the
// single source a Resume rebuilds the whole queue from.
type Spec struct {
	Base      ConfigSpec
	Scenarios []string
	Variants  []string
	Seeds     []uint64
	// CheckpointEvery is the simulated-time cadence workers take
	// checkpoints at (default 6 simulated hours).
	CheckpointEvery sim.Time
}

// SpecFor captures a scenario.Matrix whose scenarios and variants are all
// builtin (addressable by name). It errors on anonymous scenarios or
// variants, which cannot travel over the wire.
func SpecFor(m scenario.Matrix) (Spec, error) {
	s := Spec{Base: SpecOf(m.Base)}
	for _, sc := range m.Scenarios {
		if _, err := scenario.ByName(sc.Name); err != nil {
			return Spec{}, fmt.Errorf("dispatch: %w", err)
		}
		s.Scenarios = append(s.Scenarios, sc.Name)
	}
	for _, v := range m.Variants {
		if _, err := scenario.VariantByName(v.Name); err != nil {
			return Spec{}, fmt.Errorf("dispatch: %w", err)
		}
		s.Variants = append(s.Variants, v.Name)
	}
	s.Seeds = append(s.Seeds, m.Seeds...)
	s.normalize()
	return s, nil
}

// ParseSpec assembles a sweep spec from the CLI matrix flags shared by
// cmd/sweep and cmd/dispatchd: empty scenarios = all builtin, variants
// "all" = every builtin, comma-separated seeds. Keeping this expansion in
// one place is part of what keeps the in-process and dispatched paths
// agreeing cell for cell.
func ParseSpec(base core.Config, scenariosCSV, variantsCSV, seedsCSV string, checkpointEvery sim.Time) (Spec, error) {
	spec := Spec{Base: SpecOf(base), CheckpointEvery: checkpointEvery}
	if scenariosCSV == "" {
		for _, sc := range scenario.Builtin() {
			spec.Scenarios = append(spec.Scenarios, sc.Name)
		}
	} else {
		spec.Scenarios = splitCSV(scenariosCSV)
	}
	if variantsCSV == "all" {
		for _, v := range scenario.BuiltinVariants() {
			spec.Variants = append(spec.Variants, v.Name)
		}
	} else {
		spec.Variants = splitCSV(variantsCSV)
	}
	for _, s := range splitCSV(seedsCSV) {
		seed, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			return Spec{}, fmt.Errorf("dispatch: bad seed %q: %w", s, err)
		}
		spec.Seeds = append(spec.Seeds, seed)
	}
	spec.normalize()
	return spec, spec.Validate()
}

func splitCSV(s string) []string {
	var out []string
	for _, part := range strings.Split(s, ",") {
		if part = strings.TrimSpace(part); part != "" {
			out = append(out, part)
		}
	}
	return out
}

// normalize applies the same defaulting scenario.Sweep applies to an empty
// matrix, so spec expansion and in-process expansion agree cell for cell.
func (s *Spec) normalize() {
	if len(s.Scenarios) == 0 {
		s.Scenarios = []string{scenario.Baseline().Name}
	}
	if len(s.Variants) == 0 {
		s.Variants = []string{"default"}
	}
	if len(s.Seeds) == 0 {
		s.Seeds = []uint64{s.Base.Seed}
	}
	if s.CheckpointEvery <= 0 {
		s.CheckpointEvery = 6 * sim.Hour
	}
}

// Validate checks that every scenario and variant name resolves against
// the builtin libraries.
func (s Spec) Validate() error {
	if len(s.Scenarios) == 0 || len(s.Variants) == 0 || len(s.Seeds) == 0 {
		return fmt.Errorf("dispatch: empty sweep spec")
	}
	for _, name := range s.Scenarios {
		if _, err := scenario.ByName(name); err != nil {
			return fmt.Errorf("dispatch: %w", err)
		}
	}
	for _, name := range s.Variants {
		if _, err := scenario.VariantByName(name); err != nil {
			return fmt.Errorf("dispatch: %w", err)
		}
	}
	return nil
}

// Matrix expands the spec into the scenario.Matrix a single process would
// run — the reference the dispatched result must match byte for byte.
func (s Spec) Matrix() (scenario.Matrix, error) {
	if err := s.Validate(); err != nil {
		return scenario.Matrix{}, err
	}
	m := scenario.Matrix{Base: s.Base.Config(), Seeds: append([]uint64{}, s.Seeds...)}
	for _, name := range s.Scenarios {
		sc, _ := scenario.ByName(name)
		m.Scenarios = append(m.Scenarios, sc)
	}
	for _, name := range s.Variants {
		v, _ := scenario.VariantByName(name)
		m.Variants = append(m.Variants, v)
	}
	return m, nil
}

// Keys expands the spec into cell keys in scenario-major order — the job
// order of the queue and the run order of scenario.Sweep.
func (s Spec) Keys() []scenario.Key {
	var keys []scenario.Key
	for _, sc := range s.Scenarios {
		for _, v := range s.Variants {
			for _, seed := range s.Seeds {
				keys = append(keys, scenario.Key{Scenario: sc, Variant: v, Seed: seed})
			}
		}
	}
	return keys
}

// CellConfig builds the effective config of one cell exactly the way
// scenario.Sweep does: seed applied to the base, then the scenario's
// phases/injections, then the variant.
func (s Spec) CellConfig(key scenario.Key) (core.Config, error) {
	sc, err := scenario.ByName(key.Scenario)
	if err != nil {
		return core.Config{}, fmt.Errorf("dispatch: %w", err)
	}
	v, err := scenario.VariantByName(key.Variant)
	if err != nil {
		return core.Config{}, fmt.Errorf("dispatch: %w", err)
	}
	cfg := s.Base.Config()
	cfg.Seed = key.Seed
	cfg = sc.Configure(cfg)
	if v.Apply != nil {
		v.Apply(&cfg)
	}
	return cfg, nil
}

// JobState is a queue cell's lifecycle phase.
type JobState int

const (
	// JobQueued awaits a worker.
	JobQueued JobState = iota
	// JobBooked is leased to a worker that has not reported progress yet.
	JobBooked
	// JobRunning has received at least one heartbeat.
	JobRunning
	// JobDone completed and carries a Run result.
	JobDone
	// JobFailed completed with a run error, or exhausted its booking
	// attempts.
	JobFailed
)

// String renders the state for logs and the journal.
func (s JobState) String() string {
	switch s {
	case JobQueued:
		return "queued"
	case JobBooked:
		return "booked"
	case JobRunning:
		return "running"
	case JobDone:
		return "done"
	case JobFailed:
		return "failed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// jobStateFromString parses a journal state token.
func jobStateFromString(s string) (JobState, error) {
	for st := JobQueued; st <= JobFailed; st++ {
		if st.String() == s {
			return st, nil
		}
	}
	return 0, fmt.Errorf("dispatch: unknown job state %q", s)
}

// RunResult is a worker's completion report for one cell.
type RunResult struct {
	Metrics scenario.Metrics
	Digests map[string]string
	Err     string
}

// JobStatus is one queue cell as reported by Snapshot and /state.
type JobStatus struct {
	ID      int
	Key     scenario.Key
	State   string
	Worker  string `json:",omitempty"`
	Attempt int
	// Checkpoint is the latest heartbeat snapshot for in-flight cells.
	Checkpoint *CheckpointRecord `json:",omitempty"`
	// Snapshot points at the newest uploaded engine snapshot, the state a
	// re-booking of this cell would warm-resume from.
	Snapshot *SnapshotRecord `json:",omitempty"`
	// Profile points at the completed cell's engine self-profile blob.
	Profile *ProfileRecord `json:",omitempty"`
	Err     string         `json:",omitempty"`
}
