package dispatch

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"sapsim"
	"sapsim/internal/artifact"
	"sapsim/internal/core"
	"sapsim/internal/scenario"
)

// referenceSweep runs the spec's matrix in a single process with full
// artifact fingerprints — the result every dispatched execution must match
// byte for byte.
func referenceSweep(t *testing.T, spec Spec) *scenario.SweepResult {
	t.Helper()
	m, err := spec.Matrix()
	if err != nil {
		t.Fatal(err)
	}
	m.Workers = 1
	m.Fingerprint = func(res *core.Result) (map[string]string, error) {
		return sapsim.ArtifactDigests(res)
	}
	ref, err := scenario.Sweep(m)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

func assertIdentical(t *testing.T, got, want *scenario.SweepResult, label string) {
	t.Helper()
	if !reflect.DeepEqual(got.Runs, want.Runs) {
		for i := range want.Runs {
			if i < len(got.Runs) && !reflect.DeepEqual(got.Runs[i], want.Runs[i]) {
				t.Errorf("%s: run %d differs:\n got %+v\nwant %+v", label, i, got.Runs[i], want.Runs[i])
			}
		}
		t.Fatalf("%s: dispatched runs differ from single-process sweep", label)
	}
	if g, w := scenario.Comparative(got), scenario.Comparative(want); g != w {
		t.Fatalf("%s: comparative report differs:\n got:\n%s\nwant:\n%s", label, g, w)
	}
	if g, w := scenario.RunsCSV(got), scenario.RunsCSV(want); g != w {
		t.Fatalf("%s: runs CSV differs", label)
	}
	if g, w := scenario.ArtifactDiff(got), scenario.ArtifactDiff(want); g != w {
		t.Fatalf("%s: artifact diff differs:\n got:\n%s\nwant:\n%s", label, g, w)
	}
}

// TestDispatchedSweepByteIdentity is the acceptance guarantee: a sweep
// dispatched across two workers — one of which is killed mid-cell so its
// lease expires and the cell re-books — then crashed at the dispatcher and
// resumed from the journal, merges into a report and artifact-digest set
// byte-identical to a single-process scenario.Sweep.
func TestDispatchedSweepByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run end-to-end sweep")
	}
	spec := testSpec()
	ref := referenceSweep(t, spec)

	dir := t.TempDir()
	q, err := NewQueue(dir, spec, QueueOptions{Lease: 1200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	d := NewDispatcher(q)
	d.Logf = t.Logf
	srv := httptest.NewServer(d.Handler())

	ctx, cancelAll := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancelAll()

	// Worker A books one cell and dies mid-run: the kill fires on the
	// cell's first simulated-time checkpoint, so it provably lands while
	// the simulation is in flight no matter how fast the cell runs.
	victimCtx, killVictim := context.WithCancel(ctx)
	var victimJob = -1
	var victimOnce sync.Once
	var victimMu sync.Mutex
	victim := &Worker{
		Dispatcher:     srv.URL,
		ID:             "victim",
		HeartbeatEvery: 50 * time.Millisecond,
		Poll:           50 * time.Millisecond,
		Hooks: WorkerHooks{
			OnBook: func(job int, _ scenario.Key) {
				victimMu.Lock()
				if victimJob < 0 {
					victimJob = job
				}
				victimMu.Unlock()
			},
			OnCheckpoint: func(int, CheckpointRecord) { victimOnce.Do(killVictim) },
		},
	}
	victimDone := make(chan error, 1)
	go func() { victimDone <- victim.Run(victimCtx) }()

	// Wait for the victim to be killed mid-cell before starting the
	// survivor, so the kill provably happens while the cell is in flight.
	select {
	case <-victimCtx.Done():
	case <-time.After(time.Minute):
		t.Fatal("victim was never killed (no checkpoint observed)")
	}
	<-victimDone
	victimMu.Lock()
	abandoned := victimJob
	victimMu.Unlock()
	if abandoned < 0 {
		t.Fatal("victim never booked a cell")
	}
	t.Logf("victim killed mid-run holding job %d", abandoned)

	// The survivor drains until the dispatcher "crashes": as soon as at
	// least one cell is done we stop the server and close the queue,
	// leaving the rest for the resume path.
	survivorCtx, stopSurvivor := context.WithCancel(ctx)
	survivor := &Worker{
		Dispatcher:     srv.URL,
		ID:             "survivor",
		HeartbeatEvery: 50 * time.Millisecond,
		Poll:           50 * time.Millisecond,
	}
	survivorDone := make(chan error, 1)
	go func() { survivorDone <- survivor.Run(survivorCtx) }()

	deadline := time.After(time.Minute)
	for {
		done := 0
		for _, st := range q.Snapshot() {
			if st.State == "done" || st.State == "failed" {
				done++
			}
		}
		if done >= 1 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("survivor completed nothing within a minute")
		case <-time.After(20 * time.Millisecond):
		}
	}
	stopSurvivor()
	<-survivorDone
	srv.Close()
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}
	t.Log("dispatcher crashed; resuming from journal")

	// Resume from the journal and drain with two fresh workers over the
	// full loopback wire path.
	q2, err := Resume(dir, QueueOptions{Lease: 1200 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	t.Logf("resume: %s", q2.Recovered())
	merged, err := RunLocal(ctx, q2, LocalOptions{
		Workers:        2,
		HeartbeatEvery: 50 * time.Millisecond,
		Poll:           50 * time.Millisecond,
		Logf:           t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}

	// The abandoned cell completed, and not by the victim.
	snap := q2.Snapshot()
	if snap[abandoned].State != "done" {
		t.Fatalf("abandoned job %d ended %s", abandoned, snap[abandoned].State)
	}
	if snap[abandoned].Worker == "victim" {
		t.Fatalf("abandoned job %d still credited to the killed worker", abandoned)
	}

	assertIdentical(t, merged, ref, "kill+crash+resume")

	// Dedup guarantee: shared artifacts are stored exactly once — the
	// store holds one blob per distinct digest across the sweep, strictly
	// fewer than cells x artifacts (the static tables are identical in
	// every cell). Completed cells also leave their engine self-profile
	// blob behind (profiles outlive completion, unlike snapshots), so
	// those digests count toward the expected total too.
	distinct := map[string]bool{}
	total := 0
	for _, run := range merged.Runs {
		for _, d := range run.Digests {
			distinct[d] = true
			total++
		}
	}
	artifacts := len(distinct)
	for _, st := range q2.Snapshot() {
		if st.Profile != nil {
			distinct[st.Profile.Digest] = true
		}
	}
	if blobs, err := q2.Store().Len(); err != nil || blobs != len(distinct) {
		t.Fatalf("store holds %d blobs, want %d (one per distinct artifact or profile digest), err=%v",
			blobs, len(distinct), err)
	}
	if artifacts >= total {
		t.Fatalf("no cross-cell sharing: %d distinct digests of %d artifact slots", artifacts, total)
	}

	// Bundle guarantee: the materialized bundle's artifact bodies are
	// byte-identical (digest-verified) to the single-process reference —
	// every body re-hashes to the digest the reference sweep computed.
	bundleDir := t.TempDir()
	manifest, err := artifact.WriteBundle(bundleDir, merged, q2.Store())
	if err != nil {
		t.Fatal(err)
	}
	if len(manifest.Cells) != len(ref.Runs) {
		t.Fatalf("bundle has %d cells, reference has %d", len(manifest.Cells), len(ref.Runs))
	}
	for i, refRun := range ref.Runs {
		for id, wantDigest := range refRun.Digests {
			body, err := os.ReadFile(filepath.Join(bundleDir, artifact.CellDir(refRun.Key), id+".txt"))
			if err != nil {
				t.Fatalf("cell %d artifact %s not in bundle: %v", i, id, err)
			}
			if got := artifact.Digest(body); got != wantDigest {
				t.Fatalf("cell %d artifact %s: bundled body hashes to %s, reference says %s",
					i, id, got, wantDigest)
			}
		}
	}
}

// TestDispatchTwoWorkersClean: the plain path — two workers, no failures —
// also merges byte-identically, and the HTTP state/result endpoints serve
// the drained sweep.
func TestDispatchTwoWorkersClean(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run end-to-end sweep")
	}
	spec := Spec{
		Base:      testSpec().Base,
		Scenarios: []string{"baseline", "capacity-expansion"},
		Variants:  []string{"default"},
		Seeds:     []uint64{7},
	}
	ref := referenceSweep(t, spec)

	q, err := NewQueue(t.TempDir(), spec, QueueOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	d := NewDispatcher(q)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()
	var wg sync.WaitGroup
	for _, id := range []string{"w1", "w2"} {
		wg.Add(1)
		w := &Worker{Dispatcher: srv.URL, ID: id,
			HeartbeatEvery: 50 * time.Millisecond, Poll: 50 * time.Millisecond}
		go func() {
			defer wg.Done()
			if err := w.Run(ctx); err != nil {
				t.Errorf("worker %s: %v", w.ID, err)
			}
		}()
	}
	wg.Wait()

	merged, err := q.Merged()
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, merged, ref, "clean two-worker run")

	// Wire-level observability: /state reports the drained sweep and
	// /result serves the merged runs.
	var state StateResponse
	if err := getJSON(srv.URL+"/state", &state); err != nil {
		t.Fatal(err)
	}
	if !state.Done || state.Drained != len(state.Jobs) || len(state.Jobs) != 2 {
		t.Fatalf("/state = done=%v drained=%d jobs=%d", state.Done, state.Drained, len(state.Jobs))
	}
	var res scenario.SweepResult
	if err := getJSON(srv.URL+"/result", &res); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Runs, ref.Runs) {
		t.Fatal("/result differs from the reference sweep")
	}

	// The browsable bundle serves over the wire: the report page matches
	// the comparative of the reference, a cell's artifact body fetched
	// through the bundle tree re-hashes to the reference digest, and the
	// raw CAS endpoint serves the same bytes.
	if got := getText(t, srv.URL+"/bundle/report"); got != scenario.Comparative(ref) {
		t.Fatal("/bundle/report differs from the reference comparative")
	}
	if idx := getText(t, srv.URL+"/bundle"); !strings.Contains(idx, "baseline/default/7") {
		t.Fatalf("/bundle index does not list the cells:\n%s", idx)
	}
	refRun := ref.Runs[0]
	body := getText(t, fmt.Sprintf("%s/bundle/cell/%s/%s/%d/fig9",
		srv.URL, refRun.Key.Scenario, refRun.Key.Variant, refRun.Key.Seed))
	if artifact.Digest([]byte(body)) != refRun.Digests["fig9"] {
		t.Fatal("artifact served through /bundle does not hash to the reference digest")
	}
	if raw := getText(t, srv.URL+"/artifact/"+refRun.Digests["fig9"]); raw != body {
		t.Fatal("/artifact and /bundle serve different bytes for one digest")
	}
}

func getText(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, data)
	}
	return string(data)
}

func getJSON(url string, out any) error {
	resp, err := http.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}
