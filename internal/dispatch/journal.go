package dispatch

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	"sapsim/internal/trace"
)

// JournalName is the journal file inside a sweep directory.
const JournalName = "journal.jsonl"

// journalRecord is one JSON line of the WAL. T selects the record type;
// unused fields are omitted. The journal is an append-only log of facts:
// replaying it in order reconstructs the queue exactly, and a torn final
// line (the write the crash interrupted) is detected and dropped.
type journalRecord struct {
	T string `json:"t"`

	// TS is the record's wall-clock time in microseconds since the Unix
	// epoch (the queue clock, mockable in tests). It is what lets
	// TraceFromJournal rebuild the dispatcher-side spans — queue wait,
	// attempts, lease renewals — of a sweep that already happened.
	TS int64 `json:"ts,omitempty"`

	// header
	Version int   `json:"v,omitempty"`
	Spec    *Spec `json:"spec,omitempty"`

	// state / checkpoint / result
	Job     int    `json:"job,omitempty"`
	State   string `json:"state,omitempty"`
	Worker  string `json:"worker,omitempty"`
	Attempt int    `json:"attempt,omitempty"`
	// Lease is the lease expiry for booked/running transitions (wall
	// clock, RFC 3339). Informational on replay: a resumed queue re-queues
	// every in-flight job regardless, because the worker holding the lease
	// cannot reach a dispatcher that just restarted under a new address.
	Lease string `json:"lease,omitempty"`

	Checkpoint *CheckpointRecord `json:"ckpt,omitempty"`
	Run        *RunResult        `json:"run,omitempty"`

	// snapshot: a worker uploaded a mid-run engine snapshot for Job; the
	// blob lives in the store under Snapshot.Digest. The newest record per
	// cell wins — a re-booking resumes from it.
	Snapshot *SnapshotRecord `json:"snap,omitempty"`

	// profile: a worker shipped the completed cell's engine self-profile;
	// the blob lives in the store under Profile.Digest and outlives the
	// cell's completion (analyze -engprof reads it from the drained sweep).
	Profile *ProfileRecord `json:"prof,omitempty"`

	// artifact: a blob landed in the content-addressed store. Digest is the
	// blob's SHA-256; Size its byte length — the record Resume uses to
	// distinguish a truncated blob (size drifted) from a corrupt one
	// (size intact, content re-hashes differently).
	Digest string `json:"digest,omitempty"`
	Size   int64  `json:"size,omitempty"`

	// span: one worker-side trace span (engine phase, snapshot encode,
	// artifact upload) shipped alongside a heartbeat or completion for
	// Job. Spans are facts about the past, never replayed into queue
	// state; TraceFromJournal merges them with the dispatcher-derived
	// lifecycle spans.
	Span *trace.Span `json:"span,omitempty"`
}

const (
	recHeader     = "header"
	recState      = "state"
	recCheckpoint = "checkpoint"
	recResult     = "result"
	recArtifact   = "artifact"
	recSnapshot   = "snapshot"
	recProfile    = "profile"
	recSpan       = "span"
)

// journalWriter appends records to the WAL. Callers serialize access (the
// queue holds its mutex across appends).
type journalWriter struct {
	f *os.File
	// observeAppend / countFsync, when set (Queue.Instrument), receive
	// each append's latency and each durable fsync.
	observeAppend func(time.Duration)
	countFsync    func()
}

func createJournal(dir string, spec Spec, ts int64) (*journalWriter, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("dispatch: journal dir: %w", err)
	}
	path := filepath.Join(dir, JournalName)
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dispatch: creating journal (use Resume for an existing sweep dir): %w", err)
	}
	w := &journalWriter{f: f}
	if err := w.append(journalRecord{T: recHeader, TS: ts, Version: FormatVersion, Spec: &spec}); err != nil {
		f.Close()
		return nil, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, err
	}
	return w, nil
}

// openJournalForAppend reopens an existing journal to continue it. An
// unterminated final line from the previous process (a write a crash cut
// short) is healed by appending a newline first, so the next record starts
// on a clean line. (A torn fragment then parses as corrupt on any later
// replay and is skipped — the same outcome as dropping it.)
func openJournalForAppend(path string) (*journalWriter, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("dispatch: reopening journal: %w", err)
	}
	if st, err := f.Stat(); err == nil && st.Size() > 0 {
		last := make([]byte, 1)
		if _, err := f.ReadAt(last, st.Size()-1); err == nil && last[0] != '\n' {
			if _, err := f.WriteString("\n"); err != nil {
				f.Close()
				return nil, err
			}
		}
	}
	return &journalWriter{f: f}, nil
}

func (w *journalWriter) append(rec journalRecord) error {
	data, err := json.Marshal(rec)
	if err != nil {
		return fmt.Errorf("dispatch: journal encode: %w", err)
	}
	data = append(data, '\n')
	start := time.Time{}
	if w.observeAppend != nil {
		start = time.Now()
	}
	if _, err := w.f.Write(data); err != nil {
		return fmt.Errorf("dispatch: journal append: %w", err)
	}
	if w.observeAppend != nil {
		w.observeAppend(time.Since(start))
	}
	return nil
}

// appendDurable appends and fsyncs — used for results, the records whose
// loss costs a full cell re-run.
func (w *journalWriter) appendDurable(rec journalRecord) error {
	if err := w.append(rec); err != nil {
		return err
	}
	if err := w.f.Sync(); err != nil {
		return err
	}
	if w.countFsync != nil {
		w.countFsync()
	}
	return nil
}

func (w *journalWriter) close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Sync()
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.f = nil
	return err
}

// replayedJournal is the parsed content of a WAL.
type replayedJournal struct {
	spec Spec
	// headerTS is the sweep's creation time (microseconds) — the instant
	// every cell entered the queue.
	headerTS int64
	records  []journalRecord
	// torn reports that the final line was truncated mid-write (process
	// killed during an append) and was dropped.
	torn bool
	// skipped counts corrupt non-final lines that were dropped.
	skipped int
}

// errNoJournal distinguishes "no sweep here" from a corrupt one.
var errNoJournal = errors.New("dispatch: no journal")

// replayJournal reads and parses the WAL, tolerating a torn tail: a final
// line without a newline terminator, or one that fails to parse, is
// dropped (the record it would have carried is simply a fact the crashed
// process never durably established). Corrupt lines elsewhere are skipped
// and counted, so one damaged record costs one cell re-run, not the sweep.
func replayJournal(path string) (*replayedJournal, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("%w at %s", errNoJournal, path)
		}
		return nil, err
	}
	defer f.Close()

	out := &replayedJournal{}
	r := bufio.NewReader(f)
	sawHeader := false
	for {
		line, err := r.ReadString('\n')
		complete := err == nil
		if err != nil && err != io.EOF {
			return nil, fmt.Errorf("dispatch: reading journal: %w", err)
		}
		if len(line) > 0 {
			var rec journalRecord
			parseErr := json.Unmarshal([]byte(line), &rec)
			switch {
			case parseErr != nil && !complete:
				out.torn = true // torn tail: dropped
			case parseErr != nil:
				out.skipped++ // damaged interior line: dropped
			case !sawHeader:
				if rec.T != recHeader || rec.Spec == nil {
					return nil, fmt.Errorf("dispatch: journal does not start with a header record")
				}
				if rec.Version != FormatVersion {
					return nil, fmt.Errorf("dispatch: journal format %d, want %d", rec.Version, FormatVersion)
				}
				out.spec = *rec.Spec
				out.spec.normalize()
				out.headerTS = rec.TS
				sawHeader = true
			default:
				out.records = append(out.records, rec)
			}
		}
		if !complete {
			break
		}
	}
	if !sawHeader {
		return nil, fmt.Errorf("dispatch: journal has no readable header")
	}
	return out, nil
}

// leaseStamp formats a lease expiry for the journal.
func leaseStamp(t time.Time) string { return t.UTC().Format(time.RFC3339Nano) }
