package dispatch

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sapsim/internal/scenario"
)

// LocalOptions tune RunLocal.
type LocalOptions struct {
	// Workers is the in-process worker count (default 2).
	Workers int
	// HeartbeatEvery / Poll tune the workers (see Worker).
	HeartbeatEvery time.Duration
	Poll           time.Duration
	// Logf receives dispatcher and worker transitions.
	Logf func(format string, args ...any)
}

// RunLocal drains a queue with an in-process dispatcher and N in-process
// workers over loopback HTTP — the full wire path, one process. It is how
// `cmd/sweep -resume DIR` finishes an interrupted sweep without external
// workers, and what the distributed-sweep example builds on. The queue is
// left open; callers Close it.
func RunLocal(ctx context.Context, q *Queue, opts LocalOptions) (*scenario.SweepResult, error) {
	if opts.Workers <= 0 {
		opts.Workers = 2
	}
	d := NewDispatcher(q)
	d.Logf = opts.Logf

	serveCtx, stopServe := context.WithCancel(ctx)
	defer stopServe()
	addr, err := d.Serve(serveCtx, "127.0.0.1:0")
	if err != nil {
		return nil, err
	}

	errCh := make(chan error, opts.Workers)
	for i := 0; i < opts.Workers; i++ {
		w := &Worker{
			Dispatcher:     "http://" + addr,
			ID:             fmt.Sprintf("local-%d", i),
			HeartbeatEvery: opts.HeartbeatEvery,
			Poll:           opts.Poll,
			Logf:           opts.Logf,
		}
		go func() { errCh <- w.Run(ctx) }()
	}
	var errs []error
	for i := 0; i < opts.Workers; i++ {
		if err := <-errCh; err != nil && !errors.Is(err, context.Canceled) {
			errs = append(errs, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	if len(errs) > 0 {
		return nil, errors.Join(errs...)
	}
	return q.Merged()
}
