package dispatch

import (
	"time"

	"sapsim/internal/engprof"
	"sapsim/internal/fleetmetrics"
)

// Fleet metric names exported by the dispatch stack. The catalog is part
// of the public surface: the smoke script, the README, and the promql
// dogfooding queries all reference these names.
const (
	// Queue (dispatchd).
	MetricQueueJobs       = "dispatch_queue_jobs"  // gauge{state}: depth per job state; sums to MetricQueueCells
	MetricQueueCells      = "dispatch_queue_cells" // gauge: total cells in the sweep matrix
	MetricBooks           = "dispatch_books_total" // counter: successful bookings
	MetricRebooks         = "dispatch_rebooks_total"
	MetricProgress        = "dispatch_progress_total"
	MetricCompletes       = "dispatch_completes_total" // counter{outcome}: done|failed
	MetricReleases        = "dispatch_releases_total"
	MetricLeaseExpiries   = "dispatch_lease_expiries_total"
	MetricAttemptsExhaust = "dispatch_attempts_exhausted_total"
	MetricJobAttempts     = "dispatch_job_attempts" // histogram: bookings per terminal cell
	MetricJournalAppend   = "dispatch_journal_append_seconds"
	MetricJournalFsyncs   = "dispatch_journal_fsyncs_total"
	MetricEncodeErrors    = "dispatch_response_encode_errors_total"
	MetricArtifactHeads   = "dispatch_artifact_head_total" // counter{outcome}: hit|miss — the wire half of dedup
	// Artifact store (served by dispatchd, counters maintained by the store
	// itself so Resume-time heal/GC work is included).
	MetricStoreBlobs       = "artifact_store_blobs"
	MetricStoreBytes       = "artifact_store_bytes"
	MetricStorePuts        = "artifact_store_puts_total" // counter{outcome}: stored|dedup
	MetricStoreRemoves     = "artifact_store_removes_total"
	MetricStoreRemoveFails = "artifact_store_remove_failures_total"
	MetricStoreGCRemoved   = "artifact_store_gc_removed_total"
	MetricStoreGCFails     = "artifact_store_gc_failures_total"
	// Worker (simworker).
	MetricWorkerCapacity  = "worker_capacity" // gauge{worker}: advertised concurrent-cell capacity
	MetricWorkerInflight  = "worker_inflight" // gauge{worker}: cells running right now
	MetricWorkerCells     = "worker_cells_total"
	MetricWorkerCellSecs  = "worker_cell_seconds" // histogram{worker}: per-cell wall time
	MetricWorkerHeartbeat = "worker_heartbeat_seconds"
	MetricWorkerBooks     = "worker_books_total"
	MetricWorkerBookFails = "worker_book_failures_total"
	MetricWorkerUploads   = "worker_uploads_total"        // counter{worker,outcome}: stored|dedup
	MetricWorkerPhaseSecs = "worker_engine_phase_seconds" // histogram{worker,phase}: self-profiler time per phase per completed cell
)

// queueMetrics are the dispatcher-side instruments. All increments are
// nil-guarded at the call sites, so an uninstrumented queue (tests,
// RunLocal) pays one pointer compare per transition.
type queueMetrics struct {
	books           *fleetmetrics.Counter
	rebooks         *fleetmetrics.Counter
	progress        *fleetmetrics.Counter
	completesDone   *fleetmetrics.Counter
	completesFailed *fleetmetrics.Counter
	releases        *fleetmetrics.Counter
	leaseExpiries   *fleetmetrics.Counter
	attemptsExhaust *fleetmetrics.Counter
	jobAttempts     *fleetmetrics.Histogram
	journalAppend   *fleetmetrics.Histogram
	journalFsyncs   *fleetmetrics.Counter
}

// Instrument registers the queue's fleet metrics — per-state depth gauges
// (which sum to the cell count: the conservation invariant the smoke
// asserts over promql), transition counters, the per-cell attempt
// histogram, journal append latency/fsync counters, and the artifact
// store's gauges and counters. Call once, before serving.
func (q *Queue) Instrument(reg *fleetmetrics.Registry) {
	m := &queueMetrics{
		books:           reg.Counter(MetricBooks, "successful cell bookings"),
		rebooks:         reg.Counter(MetricRebooks, "bookings of a cell already attempted (lease expiry or release re-book)"),
		progress:        reg.Counter(MetricProgress, "accepted worker heartbeats"),
		completesDone:   reg.Counter(MetricCompletes, "accepted cell completions", "outcome", "done"),
		completesFailed: reg.Counter(MetricCompletes, "accepted cell completions", "outcome", "failed"),
		releases:        reg.Counter(MetricReleases, "cells handed back before lease expiry"),
		leaseExpiries:   reg.Counter(MetricLeaseExpiries, "leases that expired and re-queued their cell"),
		attemptsExhaust: reg.Counter(MetricAttemptsExhaust, "cells failed after exhausting their booking attempts"),
		jobAttempts: reg.Histogram(MetricJobAttempts, "bookings a cell took to reach a terminal state",
			fleetmetrics.LinearBuckets(1, 1, q.opts.MaxAttempts)),
		journalAppend: reg.Histogram(MetricJournalAppend, "journal append latency",
			fleetmetrics.ExponentialBuckets(1e-5, 10, 6)),
		journalFsyncs: reg.Counter(MetricJournalFsyncs, "journal fsyncs (durable appends)"),
	}
	q.mu.Lock()
	q.metrics = m
	if q.journal != nil {
		q.journal.observeAppend = func(d time.Duration) { m.journalAppend.Observe(d.Seconds()) }
		q.journal.countFsync = m.journalFsyncs.Inc
	}
	q.mu.Unlock()

	for st := JobQueued; st <= JobFailed; st++ {
		st := st
		reg.GaugeFunc(MetricQueueJobs, "cells per job state (sums to dispatch_queue_cells)",
			func() float64 { return float64(q.countState(st)) }, "state", st.String())
	}
	reg.GaugeFunc(MetricQueueCells, "total cells in the sweep matrix",
		func() float64 {
			q.mu.Lock()
			defer q.mu.Unlock()
			return float64(len(q.jobs))
		})

	s := q.store
	reg.GaugeFunc(MetricStoreBlobs, "blobs currently held by the content-addressed store",
		func() float64 { return float64(s.Stats().Blobs) })
	reg.GaugeFunc(MetricStoreBytes, "bytes currently held by the content-addressed store",
		func() float64 { return float64(s.Stats().Bytes) })
	reg.CounterFunc(MetricStorePuts, "blob puts", func() float64 { return float64(s.Stats().PutStored) },
		"outcome", "stored")
	reg.CounterFunc(MetricStorePuts, "blob puts", func() float64 { return float64(s.Stats().PutDedup) },
		"outcome", "dedup")
	reg.CounterFunc(MetricStoreRemoves, "blobs removed (heals and GC)",
		func() float64 { return float64(s.Stats().Removed) })
	reg.CounterFunc(MetricStoreRemoveFails, "blob removals that failed — damaged blobs still shadowing re-uploads",
		func() float64 { return float64(s.Stats().RemoveFailures) })
	reg.CounterFunc(MetricStoreGCRemoved, "orphan blobs collected by resume-time GC",
		func() float64 { return float64(s.Stats().GCRemoved) })
	reg.CounterFunc(MetricStoreGCFails, "GC removals that failed (orphans left behind)",
		func() float64 { return float64(s.Stats().GCRemoveFailures) })
}

// countState counts jobs in one state, reaping expired leases first so a
// scrape never reports a depth the next /book would contradict.
func (q *Queue) countState(st JobState) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(q.opts.now())
	n := 0
	for _, j := range q.jobs {
		if j.State == st {
			n++
		}
	}
	return n
}

// workerMetrics are the simworker-side instruments, labeled by worker ID
// so scrapes from several workers can share one telemetry store.
type workerMetrics struct {
	inflight    *fleetmetrics.Gauge
	completed   *fleetmetrics.Counter
	abandoned   *fleetmetrics.Counter
	cellSecs    *fleetmetrics.Histogram
	heartbeat   *fleetmetrics.Histogram
	booksBooked *fleetmetrics.Counter
	booksEmpty  *fleetmetrics.Counter
	bookFails   *fleetmetrics.Counter
	upStored    *fleetmetrics.Counter
	upDedup     *fleetmetrics.Counter

	// reg and lbl let observeProfile register per-phase series lazily —
	// the phase label values come from each completed cell's profile.
	reg *fleetmetrics.Registry
	lbl []string
}

// observeProfile exports one completed cell's per-phase self-profiler
// attribution into the worker's live /metrics: one histogram observation
// per phase, in seconds, labeled {worker, phase}. The registry memoizes
// series, so repeated cells accumulate into the same histograms.
func (m *workerMetrics) observeProfile(p *engprof.Profile) {
	for name, c := range p.Phases {
		if c.Nanos <= 0 {
			continue
		}
		m.reg.Histogram(MetricWorkerPhaseSecs,
			"engine self-profiler wall time per phase per completed cell",
			fleetmetrics.ExponentialBuckets(1e-4, 4, 10),
			append(append([]string{}, m.lbl...), "phase", name)...).
			Observe(float64(c.Nanos) / 1e9)
	}
}

func newWorkerMetrics(reg *fleetmetrics.Registry, id string, capacity int) *workerMetrics {
	lbl := []string{"worker", id}
	capGauge := reg.Gauge(MetricWorkerCapacity, "advertised concurrent-cell capacity", lbl...)
	capGauge.Set(float64(capacity))
	return &workerMetrics{
		reg:       reg,
		lbl:       lbl,
		inflight:  reg.Gauge(MetricWorkerInflight, "cells running right now", lbl...),
		completed: reg.Counter(MetricWorkerCells, "cells finished", append(lbl, "outcome", "completed")...),
		abandoned: reg.Counter(MetricWorkerCells, "cells finished", append(lbl, "outcome", "abandoned")...),
		cellSecs: reg.Histogram(MetricWorkerCellSecs, "per-cell wall time",
			fleetmetrics.ExponentialBuckets(0.25, 2, 12), lbl...),
		heartbeat: reg.Histogram(MetricWorkerHeartbeat, "heartbeat round-trip time",
			fleetmetrics.ExponentialBuckets(1e-4, 10, 6), lbl...),
		booksBooked: reg.Counter(MetricWorkerBooks, "book attempts", append(lbl, "outcome", "booked")...),
		booksEmpty:  reg.Counter(MetricWorkerBooks, "book attempts", append(lbl, "outcome", "empty")...),
		bookFails:   reg.Counter(MetricWorkerBookFails, "transient book failures (dispatcher unreachable)", lbl...),
		upStored:    reg.Counter(MetricWorkerUploads, "artifact uploads", append(lbl, "outcome", "stored")...),
		upDedup:     reg.Counter(MetricWorkerUploads, "artifact uploads", append(lbl, "outcome", "dedup")...),
	}
}
