package dispatch

import (
	"bytes"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sapsim/internal/artifact"
	"sapsim/internal/fleetmetrics"
	"sapsim/internal/promql"
	"sapsim/internal/scrape"
	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
)

// TestMetricsScrapePromqlRoundTrip is the dogfooding acceptance: the
// dispatcher's /metrics endpoint, scraped by the in-tree scraper into a
// telemetry store, answers promql queries about fleet health — including
// the conservation invariant the smoke script asserts mid-sweep
// (sum over states of dispatch_queue_jobs equals the matrix size).
func TestMetricsScrapePromqlRoundTrip(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	q, _ := newTestQueue(t, QueueOptions{Lease: time.Minute, now: clock.now}) // 4 cells
	d := NewDispatcher(q)
	reg := fleetmetrics.NewRegistry()
	d.Instrument(reg)

	// One cell done, one booked, two still queued.
	completeCell(t, q, "w1", map[string]string{"table5": "shared body", "fig9": "cell body"})
	if j, _, err := q.Book("w2", 1); err != nil || j == nil {
		t.Fatalf("Book = %+v, %v", j, err)
	}

	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	store := telemetry.NewStore()
	sc := &scrape.Scraper{Store: store}
	n, err := sc.ScrapeTarget(srv.URL+"/metrics", sim.Time(0))
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatal("scrape ingested no samples")
	}

	eng := &promql.Engine{Store: store}
	query := func(expr string) float64 {
		t.Helper()
		v, err := eng.Query(expr, sim.Time(0))
		if err != nil {
			t.Fatalf("query %q: %v", expr, err)
		}
		if len(v) != 1 {
			t.Fatalf("query %q returned %d samples, want 1", expr, len(v))
		}
		return v[0].Value
	}

	// Conservation: every cell is in exactly one state.
	if got := query("sum(dispatch_queue_jobs)"); got != 4 {
		t.Errorf("sum(dispatch_queue_jobs) = %g, want 4", got)
	}
	for state, want := range map[string]float64{
		"queued": 2, "booked": 1, "done": 1,
	} {
		expr := fmt.Sprintf("dispatch_queue_jobs{state=%q}", state)
		if got := query(expr); got != want {
			t.Errorf("%s = %g, want %g", expr, got, want)
		}
	}
	if got := query("dispatch_queue_cells"); got != 4 {
		t.Errorf("dispatch_queue_cells = %g, want 4", got)
	}
	if got := query(MetricBooks); got != 2 {
		t.Errorf("%s = %g, want 2 (completeCell + explicit Book)", MetricBooks, got)
	}
	if got := query(`dispatch_completes_total{outcome="done"}`); got != 1 {
		t.Errorf("completes done = %g, want 1", got)
	}
	// The store instruments ride the same scrape: two distinct bodies.
	if got := query(MetricStoreBlobs); got != 2 {
		t.Errorf("%s = %g, want 2", MetricStoreBlobs, got)
	}
	// Durable result appends fsync: at least the header + one result.
	if got := query(MetricJournalFsyncs); got < 1 {
		t.Errorf("%s = %g, want >= 1", MetricJournalFsyncs, got)
	}
}

// TestMetricsConcurrentScrape drives queue transitions from several
// goroutines while others scrape /metrics — the exposition-time GaugeFuncs
// take the queue lock, so this is the lock-ordering and -race check for
// the whole instrumented path.
func TestMetricsConcurrentScrape(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	var mu sync.Mutex
	now := func() time.Time {
		mu.Lock()
		defer mu.Unlock()
		return clock.t
	}
	q, _ := newTestQueue(t, QueueOptions{Lease: time.Minute, now: now})
	d := NewDispatcher(q)
	reg := fleetmetrics.NewRegistry()
	d.Instrument(reg)
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	var wg sync.WaitGroup
	// Scrapers.
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			store := telemetry.NewStore()
			sc := &scrape.Scraper{Store: store}
			for j := 0; j < 20; j++ {
				if _, err := sc.ScrapeTarget(srv.URL+"/metrics", sim.Time(int64(j))); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	// Transition drivers: book/release churn plus blob puts.
	for i := 0; i < 2; i++ {
		worker := fmt.Sprintf("w%d", i)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 20; j++ {
				job, drained, err := q.Book(worker, 1)
				if err != nil || drained || job == nil {
					return // attempts exhausted under churn: fine
				}
				_ = q.Progress(job.ID, worker, job.Attempt, nil)
				_ = q.Release(job.ID, worker, job.Attempt, "churn")
				body := []byte(fmt.Sprintf("blob %s %d", worker, j))
				if _, err := q.PutArtifact(artifact.Digest(body), body); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()

	var buf bytes.Buffer
	if err := reg.Write(&buf); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{MetricQueueJobs, MetricBooks, MetricReleases, MetricStoreBlobs} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("exposition missing %s", want)
		}
	}
}

// TestResumeSurfacesRemoveFailures: a damaged blob the heal cannot delete
// (here: the blob path is occupied by a non-empty directory) must not be
// silently swallowed — it shadows the re-upload the re-queued cell will
// attempt. Resume must report it in Recovered() and the store's
// remove-failure counter must tick.
func TestResumeSurfacesRemoveFailures(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	dir := t.TempDir()
	q, err := NewQueue(dir, testSpec(), QueueOptions{Lease: time.Minute, now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	body := "fig9 body this cell recorded"
	completeCell(t, q, "w1", map[string]string{"fig9": body})
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	// Replace the blob with a non-empty directory: Verify fails (size
	// drifted), and os.Remove cannot delete it.
	digest := artifact.Digest([]byte(body))
	blobPath := filepath.Join(dir, artifact.DirName, digest[:2], digest)
	if err := os.Remove(blobPath); err != nil {
		t.Fatal(err)
	}
	if err := os.MkdirAll(blobPath, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(blobPath, "pin"), []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Resume(dir, QueueOptions{Lease: time.Minute, now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()

	if !strings.Contains(r.Recovered(), "could NOT be removed") {
		t.Errorf("Recovered() = %q, want a remove-failure report", r.Recovered())
	}
	if r.Snapshot()[0].State != "queued" {
		t.Errorf("cell with damaged blob resumed as %s, want queued", r.Snapshot()[0].State)
	}
	if got := r.Store().Stats().RemoveFailures; got < 1 {
		t.Errorf("store RemoveFailures = %d, want >= 1", got)
	}
}

// TestWriteJSONCountsEncodeErrors: a response body that fails to encode
// used to vanish (`_ = json.NewEncoder(w).Encode(v)`); now it logs and
// ticks dispatch_response_encode_errors_total.
func TestWriteJSONCountsEncodeErrors(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	q, _ := newTestQueue(t, QueueOptions{Lease: time.Minute, now: clock.now})
	d := NewDispatcher(q)
	reg := fleetmetrics.NewRegistry()
	d.Instrument(reg)
	var logged []string
	d.Logf = func(format string, args ...any) { logged = append(logged, fmt.Sprintf(format, args...)) }

	d.writeJSON(httptest.NewRecorder(), make(chan int)) // channels cannot marshal

	var buf bytes.Buffer
	if err := reg.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), MetricEncodeErrors+" 1") {
		t.Errorf("exposition does not show one encode error:\n%s", buf.String())
	}
	if len(logged) != 1 || !strings.Contains(logged[0], "encoding response") {
		t.Errorf("encode failure not logged: %v", logged)
	}
}
