package dispatch

import "fmt"

// ProfileRecord is the journaled pointer to a completed cell's engine
// self-profile. The profile body — the JSON wire form
// sapsim.EncodeProfileBytes produces — lives in the content-addressed
// store under Digest, exactly like an artifact body; the record binds the
// blob to its cell.
//
// A profile pointer differs from a snapshot pointer in when it matters:
// snapshots exist only while their cell is in flight (Complete reclaims
// the blob), while a profile is recorded at completion and must SURVIVE
// the cell's terminal state — it is what analyze -engprof aggregates after
// the sweep drains, including across dispatcher kills and resumes. Its
// loss is still cheap (the attribution for one cell goes missing; results
// are untouched), so the queue journals it with a plain append.
type ProfileRecord struct {
	// Format is FormatVersion at record time; Validate rejects mismatches
	// before a version-skewed worker's pointer reaches the journal.
	Format int
	// Digest is the blob's SHA-256 address in the store.
	Digest string
	// Size is the blob's byte length — what Resume's audit uses to tell a
	// truncated blob from a corrupt one.
	Size int64
}

// NewProfileRecord stamps a profile pointer with the current format.
func NewProfileRecord(digest string, size int64) ProfileRecord {
	return ProfileRecord{Format: FormatVersion, Digest: digest, Size: size}
}

// Validate rejects records from a different format version or without a
// usable blob address. It gates Queue.RecordProfile and journal replay.
func (r ProfileRecord) Validate() error {
	if r.Format != FormatVersion {
		return fmt.Errorf("dispatch: profile record format %d, want %d", r.Format, FormatVersion)
	}
	if r.Digest == "" {
		return fmt.Errorf("dispatch: profile record missing blob digest")
	}
	if r.Size <= 0 {
		return fmt.Errorf("dispatch: profile record size %d", r.Size)
	}
	return nil
}
