package dispatch

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sapsim/internal/artifact"
	"sapsim/internal/scenario"
)

func TestProfileRecordValidation(t *testing.T) {
	good := NewProfileRecord(artifact.Digest([]byte("profile blob")), 42)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	skewed := good
	skewed.Format = FormatVersion + 1
	if err := skewed.Validate(); err == nil || !strings.Contains(err.Error(), "format") {
		t.Errorf("version-skewed record validated: %v", err)
	}
	blank := good
	blank.Digest = ""
	if blank.Validate() == nil {
		t.Error("digest-less record validated")
	}
	empty := good
	empty.Size = 0
	if empty.Validate() == nil {
		t.Error("zero-size record validated")
	}
}

// TestRecordProfileFlow: the queue journals a held cell's profile pointer
// only once its blob is in the store, supersedes it newest-wins (reclaiming
// the old blob), and — unlike a snapshot's — keeps the blob through the
// cell's completion: the profile is the sweep's post-hoc attribution record.
func TestRecordProfileFlow(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	q, _ := newTestQueue(t, QueueOptions{Lease: time.Minute, now: clock.now})

	job, _, err := q.Book("w1", 1)
	if err != nil || job == nil {
		t.Fatalf("Book = %v, %v", job, err)
	}

	// A pointer whose blob was never uploaded is rejected.
	dangling := NewProfileRecord(artifact.Digest([]byte("never uploaded")), 13)
	if err := q.RecordProfile(job.ID, "w1", job.Attempt, dangling); !errors.Is(err, ErrMissingBlobs) {
		t.Fatalf("dangling profile pointer = %v, want ErrMissingBlobs", err)
	}

	firstBody := "profile attempt 1"
	first := putBody(t, q, firstBody)
	if err := q.RecordProfile(job.ID, "w1", job.Attempt, NewProfileRecord(first, int64(len(firstBody)))); err != nil {
		t.Fatal(err)
	}
	// Strangers and stale nonces cannot record.
	secondBody := "profile attempt 1, retransmitted with more phases"
	second := putBody(t, q, secondBody)
	rec2 := NewProfileRecord(second, int64(len(secondBody)))
	if err := q.RecordProfile(job.ID, "w2", job.Attempt, rec2); !errors.Is(err, ErrStale) {
		t.Fatalf("stranger profile = %v, want ErrStale", err)
	}
	if err := q.RecordProfile(job.ID, "w1", job.Attempt, rec2); err != nil {
		t.Fatal(err)
	}
	// Newest wins, and the superseded blob is reclaimed immediately.
	if st := q.Snapshot()[job.ID]; st.Profile == nil || st.Profile.Digest != second {
		t.Fatalf("status profile = %+v, want the superseding record", st.Profile)
	}
	if q.Store().Has(first) {
		t.Error("superseded profile blob not reclaimed")
	}

	// Completion is terminal for snapshots but NOT for profiles: the
	// profile blob and pointer survive for analyze -engprof.
	body := putBody(t, q, "fig5 body")
	if err := q.Complete(job.ID, "w1", job.Attempt, RunResult{Digests: map[string]string{"fig5": body}}); err != nil {
		t.Fatal(err)
	}
	st := q.Snapshot()[job.ID]
	if st.State != "done" {
		t.Fatalf("cell ended %s, want done", st.State)
	}
	if st.Profile == nil || st.Profile.Digest != second {
		t.Fatalf("profile pointer lost at completion: %+v", st.Profile)
	}
	if !q.Store().Has(second) {
		t.Fatal("profile blob reclaimed at completion — it must outlive the cell")
	}

	// EachProfile surfaces the terminal cell's pointer for export.
	seen := 0
	err = q.EachProfile(func(key scenario.Key, rec ProfileRecord) error {
		seen++
		if rec.Digest != second {
			t.Errorf("EachProfile rec = %+v, want digest %s", rec, second)
		}
		if key.Scenario == "" {
			t.Errorf("EachProfile key = %+v, want a populated cell key", key)
		}
		return nil
	})
	if err != nil || seen != 1 {
		t.Fatalf("EachProfile visited %d cells, err=%v, want exactly 1", seen, err)
	}
}

// TestResumeProfileBlobAudit: Resume verifies terminal cells' profile
// blobs; a missing, truncated, or bit-flipped blob drops only the pointer
// (reported distinctly in Recovered) — the cell stays done, because
// profiles are observability, never a correctness dependency. An intact
// blob survives the audit and the resume-time GC.
func TestResumeProfileBlobAudit(t *testing.T) {
	cases := []struct {
		kind   string
		damage func(t *testing.T, path string)
	}{
		{"intact", func(t *testing.T, path string) {}},
		{"missing", func(t *testing.T, path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(t *testing.T, path string) {
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, blob[:len(blob)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupt", func(t *testing.T, path string) {
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			blob[len(blob)/2] ^= 0x40
			if err := os.WriteFile(path, blob, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			clock := &fakeClock{t: time.Unix(1000, 0)}
			dir := t.TempDir()
			q, err := NewQueue(dir, testSpec(), QueueOptions{Lease: time.Minute, now: clock.now})
			if err != nil {
				t.Fatal(err)
			}
			job, _, err := q.Book("w1", 1)
			if err != nil || job == nil {
				t.Fatalf("Book = %v, %v", job, err)
			}
			profBody := "encoded profile (" + tc.kind + ")"
			digest := putBody(t, q, profBody)
			if err := q.RecordProfile(job.ID, "w1", job.Attempt, NewProfileRecord(digest, int64(len(profBody)))); err != nil {
				t.Fatal(err)
			}
			body := putBody(t, q, "fig5 body")
			if err := q.Complete(job.ID, "w1", job.Attempt, RunResult{Digests: map[string]string{"fig5": body}}); err != nil {
				t.Fatal(err)
			}
			if err := q.Close(); err != nil {
				t.Fatal(err)
			}
			tc.damage(t, filepath.Join(dir, artifact.DirName, digest[:2], digest))

			q2, err := Resume(dir, QueueOptions{Lease: time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			defer q2.Close()

			st := q2.Snapshot()[job.ID]
			if st.State != "done" {
				t.Fatalf("cell is %s, want done — profile damage must never un-complete a cell", st.State)
			}
			if tc.kind == "intact" {
				if strings.Contains(q2.Recovered(), "profile") {
					t.Errorf("intact profile reported as damaged: %q", q2.Recovered())
				}
				if st.Profile == nil || st.Profile.Digest != digest {
					t.Fatalf("intact profile pointer lost: %+v", st.Profile)
				}
				if !q2.Store().Has(digest) {
					t.Fatal("intact profile blob collected by resume GC")
				}
				return
			}
			want := "1 " + tc.kind + " profile blobs dropped (cells stay done)"
			if !strings.Contains(q2.Recovered(), want) {
				t.Errorf("recovered = %q, want it to contain %q", q2.Recovered(), want)
			}
			if st.Profile != nil {
				t.Errorf("damaged profile pointer survived resume: %+v", st.Profile)
			}
			if q2.Store().Has(digest) {
				t.Error("damaged profile blob left in the store")
			}
		})
	}
}

// TestResumeDropsNonTerminalProfile: a profile pointer on an in-flight
// cell is residue of a completion that never durably landed. Resume drops
// the pointer silently and the GC reclaims the now-unreferenced blob; the
// cell re-queues and re-runs as usual.
func TestResumeDropsNonTerminalProfile(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	dir := t.TempDir()
	q, err := NewQueue(dir, testSpec(), QueueOptions{Lease: time.Minute, now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	job, _, err := q.Book("w1", 1)
	if err != nil || job == nil {
		t.Fatalf("Book = %v, %v", job, err)
	}
	profBody := "profile of a completion that never landed"
	digest := putBody(t, q, profBody)
	if err := q.RecordProfile(job.ID, "w1", job.Attempt, NewProfileRecord(digest, int64(len(profBody)))); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	q2, err := Resume(dir, QueueOptions{Lease: time.Minute})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()

	st := q2.Snapshot()[job.ID]
	if st.State != "queued" {
		t.Fatalf("cell is %s, want queued", st.State)
	}
	if st.Profile != nil {
		t.Errorf("in-flight profile pointer survived resume: %+v", st.Profile)
	}
	if strings.Contains(q2.Recovered(), "profile blobs dropped") {
		t.Errorf("silent drop reported as damage: %q", q2.Recovered())
	}
	if q2.Store().Has(digest) {
		t.Error("orphaned profile blob not collected by resume GC")
	}
}
