package dispatch

import (
	"errors"
	"fmt"
	"path/filepath"
	"sync"
	"time"

	"sapsim/internal/artifact"
	"sapsim/internal/scenario"
	"sapsim/internal/trace"
)

// Job is one cell of the sweep matrix in the queue. Jobs live in
// scenario-major order (the order scenario.Sweep produces runs in), so
// merging is a straight copy.
type Job struct {
	ID      int
	Key     scenario.Key
	State   JobState
	Worker  string
	Lease   time.Time
	Attempt int

	// Run holds the completion report for done/failed jobs.
	Run *RunResult
	// LastCheckpoint is the latest heartbeat snapshot while running.
	LastCheckpoint *CheckpointRecord
	// LastSnapshot points at the newest uploaded engine snapshot; a
	// re-booking of this cell warm-resumes from it.
	LastSnapshot *SnapshotRecord
	// Profile points at the completed cell's engine self-profile blob. It
	// is recorded just before Complete and — unlike LastSnapshot — survives
	// the terminal state: it is what analyze -engprof aggregates.
	Profile *ProfileRecord
}

// Stale is returned by Progress and Complete when the reporting worker no
// longer holds the job's lease (it expired and the job was re-booked, or
// was completed by another worker). The worker should abandon the cell.
var ErrStale = errors.New("dispatch: lease lost")

// ErrMissingBlobs is returned by Complete when a successful cell's digests
// reference artifact bodies the store does not hold — the worker must
// upload every body before completing, or the sweep could drain without
// the artifacts its bundle promises.
var ErrMissingBlobs = errors.New("dispatch: artifact blobs missing from store")

// DefaultLease is how long a booked or running job may go without a
// heartbeat before it is re-queued.
const DefaultLease = 30 * time.Second

// DefaultMaxAttempts bounds how many times a job is re-booked after lease
// expiries before the queue marks it failed — the cell that crashes every
// worker that books it must not wedge the sweep forever.
const DefaultMaxAttempts = 5

// QueueOptions tune a queue.
type QueueOptions struct {
	// Lease is the heartbeat deadline (default DefaultLease).
	Lease time.Duration
	// MaxAttempts bounds bookings per job (default DefaultMaxAttempts).
	MaxAttempts int
	// now overrides the clock in tests.
	now func() time.Time
}

func (o *QueueOptions) fill() {
	if o.Lease <= 0 {
		o.Lease = DefaultLease
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = DefaultMaxAttempts
	}
	if o.now == nil {
		o.now = time.Now
	}
}

// Queue is a durable sweep job queue: every state transition is appended
// to an on-disk journal before it takes effect in memory, so a crashed
// dispatcher resumes exactly where the log ends. Queue is safe for
// concurrent use.
type Queue struct {
	mu      sync.Mutex
	spec    Spec
	jobs    []*Job
	journal *journalWriter
	opts    QueueOptions
	dir     string
	// store holds the artifact bodies behind every done cell's digests,
	// content-addressed under dir/cas.
	store *artifact.Store

	// recovered describes what Resume found (torn tail, skipped lines).
	recovered string

	// metrics, when set via Instrument, receives every queue transition.
	metrics *queueMetrics
}

// NewQueue expands the spec into per-cell jobs and creates the sweep
// journal in dir. The directory must not already contain a journal —
// reopen an interrupted sweep with Resume.
func NewQueue(dir string, spec Spec, opts QueueOptions) (*Queue, error) {
	spec.normalize()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	opts.fill()
	w, err := createJournal(dir, spec, opts.now().UnixMicro())
	if err != nil {
		return nil, err
	}
	store, err := artifact.Open(filepath.Join(dir, artifact.DirName))
	if err != nil {
		w.close()
		return nil, err
	}
	q := &Queue{spec: spec, journal: w, opts: opts, dir: dir, store: store}
	for i, key := range spec.Keys() {
		q.jobs = append(q.jobs, &Job{ID: i, Key: key})
	}
	if len(q.jobs) == 0 {
		w.close()
		return nil, scenario.ErrEmptyMatrix
	}
	return q, nil
}

// Resume rebuilds a queue from dir's journal after a crash or shutdown:
// done and failed cells keep their recorded results, and cells that were
// queued, booked, or running are (re-)queued — their workers cannot reach
// a restarted dispatcher, and every cell is deterministically re-runnable
// from scratch. A torn final line or corrupt interior lines are dropped;
// each costs at most one cell re-run.
//
// Resume also audits the artifact store against the journal: every done
// cell's blobs are re-verified (missing, truncated, and corrupt blobs are
// distinguished and reported), cells whose artifacts cannot be produced
// intact are re-queued, and blobs no finished cell references — uploads
// for cells that never durably completed — are garbage-collected.
func Resume(dir string, opts QueueOptions) (*Queue, error) {
	opts.fill()
	path := filepath.Join(dir, JournalName)
	replay, err := replayJournal(path)
	if err != nil {
		return nil, err
	}
	spec := replay.spec
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	store, err := artifact.Open(filepath.Join(dir, artifact.DirName))
	if err != nil {
		return nil, err
	}
	q := &Queue{spec: spec, opts: opts, dir: dir, store: store}
	for i, key := range spec.Keys() {
		q.jobs = append(q.jobs, &Job{ID: i, Key: key})
	}
	if len(q.jobs) == 0 {
		return nil, scenario.ErrEmptyMatrix
	}
	// blobSizes is each stored blob's journaled byte length — what lets
	// verification tell a truncated blob from a corrupt one.
	blobSizes := make(map[string]int64)
	for _, rec := range replay.records {
		if rec.T == recArtifact {
			if rec.Digest != "" {
				blobSizes[rec.Digest] = rec.Size
			}
			continue
		}
		if rec.Job < 0 || rec.Job >= len(q.jobs) {
			replay.skipped++
			continue
		}
		j := q.jobs[rec.Job]
		switch rec.T {
		case recState:
			st, err := jobStateFromString(rec.State)
			if err != nil {
				replay.skipped++
				continue
			}
			j.State = st
			j.Worker = rec.Worker
			j.Attempt = rec.Attempt
			if st == JobQueued {
				// A re-queue after a recorded result (the artifact audit
				// path) invalidates that result — and the profile that
				// described the invalidated attempt.
				j.Run = nil
				j.Profile = nil
			}
		case recCheckpoint:
			if rec.Checkpoint == nil || rec.Checkpoint.Validate() != nil {
				replay.skipped++
				continue
			}
			j.LastCheckpoint = rec.Checkpoint
		case recSnapshot:
			if rec.Snapshot == nil || rec.Snapshot.Validate() != nil {
				replay.skipped++
				continue
			}
			j.LastSnapshot = rec.Snapshot
		case recProfile:
			if rec.Profile == nil || rec.Profile.Validate() != nil {
				replay.skipped++
				continue
			}
			j.Profile = rec.Profile
		case recSpan:
			// Trace spans are observability facts, not queue state; the
			// replay carries no effect (TraceFromJournal reads them).
		case recResult:
			if rec.Run == nil {
				replay.skipped++
				continue
			}
			j.Run = rec.Run
			j.Worker = rec.Worker
			if rec.Run.Err != "" {
				j.State = JobFailed
			} else {
				j.State = JobDone
			}
		}
	}
	// Whatever was in flight when the process died goes back to queued.
	requeued := 0
	for _, j := range q.jobs {
		if j.State == JobBooked || j.State == JobRunning {
			j.State = JobQueued
			j.Worker = ""
			requeued++
		}
	}
	// Audit the store: a done cell is only done if every artifact body it
	// recorded can still be produced intact. Each distinct blob is read
	// and re-hashed exactly once however many cells share it (the static
	// tables are referenced by every cell of the sweep). Bad blobs are
	// removed (so a re-upload is not deduplicated against the damaged
	// file) and the affected cells re-run from scratch — determinism
	// re-produces identical bodies.
	badBlobs := map[string]int{}
	verified := map[string]error{}
	// A heal that cannot remove its damaged blob is worse than no heal:
	// the bad file shadows the re-upload the re-queued cell will attempt,
	// so the failure must be surfaced (Recovered, logs, and the store's
	// remove-failure counter), never swallowed.
	removeFailed := 0
	heal := func(digest string) {
		if rerr := store.Remove(digest); rerr != nil {
			removeFailed++
		}
	}
	verify := func(digest string) error {
		verr, seen := verified[digest]
		if seen {
			return verr
		}
		size, ok := blobSizes[digest]
		if !ok {
			size = -1 // no upload record survived; hash check still runs
		}
		verr = store.Verify(digest, size)
		verified[digest] = verr
		switch {
		case verr == nil:
		case errors.Is(verr, artifact.ErrMissing):
			badBlobs["missing"]++
		case errors.Is(verr, artifact.ErrTruncated):
			badBlobs["truncated"]++
			heal(digest)
		case errors.Is(verr, artifact.ErrCorrupt):
			badBlobs["corrupt"]++
			heal(digest)
		default:
			badBlobs["unreadable"]++
			heal(digest)
		}
		return verr
	}
	auditRequeued := map[int]bool{}
	for _, j := range q.jobs {
		if j.State != JobDone || j.Run == nil {
			continue
		}
		bad := false
		for _, digest := range j.Run.Digests {
			if verify(digest) != nil {
				bad = true
			}
		}
		if bad {
			j.State = JobQueued
			j.Worker = ""
			j.Run = nil
			j.Profile = nil
			// Disk rot is not the cell's fault: the re-run starts with a
			// fresh attempt budget, so a cell that once completed is never
			// pushed over MaxAttempts by blob damage.
			j.Attempt = 0
			auditRequeued[j.ID] = true
		}
	}
	// Audit snapshot blobs the same way — but with the opposite
	// consequence. A damaged artifact blob re-queues its done cell (the
	// result is unusable without its bodies); a damaged snapshot blob
	// merely costs its in-flight cell the warm resume: the pointer is
	// dropped and the cell restarts from t=0 through the CheckpointRecord
	// path, exactly as every cell did before snapshots existed. Never a
	// failure, never a re-queue.
	badSnaps := map[string]int{}
	for _, j := range q.jobs {
		if j.LastSnapshot == nil {
			continue
		}
		if j.State == JobDone || j.State == JobFailed {
			// Terminal cells never resume; the stale pointer is cleared and
			// the blob falls to GC.
			j.LastSnapshot = nil
			continue
		}
		digest := j.LastSnapshot.Digest
		size, ok := blobSizes[digest]
		if !ok {
			size = -1
		}
		verr := store.Verify(digest, size)
		switch {
		case verr == nil:
			continue
		case errors.Is(verr, artifact.ErrMissing):
			badSnaps["missing"]++
		case errors.Is(verr, artifact.ErrTruncated):
			badSnaps["truncated"]++
			heal(digest)
		case errors.Is(verr, artifact.ErrCorrupt):
			badSnaps["corrupt"]++
			heal(digest)
		default:
			badSnaps["unreadable"]++
			heal(digest)
		}
		j.LastSnapshot = nil
	}
	// Audit profile blobs. A profile is only meaningful on a terminal cell
	// (it is recorded in the same exchange as the completion); a pointer on
	// an in-flight cell is residue of a completion that never durably
	// landed and is dropped. A damaged blob on a done cell drops only the
	// pointer — the attribution for that cell goes missing, the result
	// stays done; profiles are observability, never a correctness
	// dependency.
	badProfs := map[string]int{}
	for _, j := range q.jobs {
		if j.Profile == nil {
			continue
		}
		if j.State != JobDone && j.State != JobFailed {
			j.Profile = nil
			continue
		}
		digest := j.Profile.Digest
		verr := store.Verify(digest, j.Profile.Size)
		switch {
		case verr == nil:
			continue
		case errors.Is(verr, artifact.ErrMissing):
			badProfs["missing"]++
		case errors.Is(verr, artifact.ErrTruncated):
			badProfs["truncated"]++
			heal(digest)
		case errors.Is(verr, artifact.ErrCorrupt):
			badProfs["corrupt"]++
			heal(digest)
		default:
			badProfs["unreadable"]++
			heal(digest)
		}
		j.Profile = nil
	}
	// Garbage-collect orphans: blobs no remaining done cell references.
	// Live snapshot pointers of unfinished cells count as references too —
	// they are what the next booking resumes from — as do terminal cells'
	// profile blobs, which outlive completion by design.
	refs := map[string]int{}
	for _, j := range q.jobs {
		if j.LastSnapshot != nil && j.State != JobDone && j.State != JobFailed {
			refs[j.LastSnapshot.Digest]++
		}
		if j.Profile != nil {
			refs[j.Profile.Digest]++
		}
		if j.State != JobDone || j.Run == nil {
			continue
		}
		for _, digest := range j.Run.Digests {
			refs[digest]++
		}
	}
	// GC failures must not abort the resume — the sweep is still correct
	// with orphans on disk; they are surfaced in Recovered instead.
	orphans, gcErr := store.GC(refs)
	w, err := openJournalForAppend(path)
	if err != nil {
		return nil, err
	}
	q.journal = w
	// Journal the re-queues so a second resume replays to the same state
	// without re-deriving it.
	q.mu.Lock()
	for _, j := range q.jobs {
		if (j.State == JobQueued && j.Attempt > 0) || auditRequeued[j.ID] {
			if err := q.appendStateLocked(j); err != nil {
				q.mu.Unlock()
				w.close()
				return nil, err
			}
		}
	}
	q.mu.Unlock()
	q.recovered = fmt.Sprintf("resumed: %d done, %d requeued", q.countDone(), requeued)
	if replay.torn {
		q.recovered += ", torn tail dropped"
	}
	if replay.skipped > 0 {
		q.recovered += fmt.Sprintf(", %d corrupt lines skipped", replay.skipped)
	}
	for _, kind := range []string{"missing", "truncated", "corrupt", "unreadable"} {
		if n := badBlobs[kind]; n > 0 {
			q.recovered += fmt.Sprintf(", %d %s blobs", n, kind)
		}
	}
	for _, kind := range []string{"missing", "truncated", "corrupt", "unreadable"} {
		if n := badSnaps[kind]; n > 0 {
			q.recovered += fmt.Sprintf(", %d %s snapshot blobs dropped (cells restart from t=0)", n, kind)
		}
	}
	for _, kind := range []string{"missing", "truncated", "corrupt", "unreadable"} {
		if n := badProfs[kind]; n > 0 {
			q.recovered += fmt.Sprintf(", %d %s profile blobs dropped (cells stay done)", n, kind)
		}
	}
	if removeFailed > 0 {
		q.recovered += fmt.Sprintf(", %d damaged blobs could NOT be removed (they shadow re-uploads)", removeFailed)
	}
	if len(auditRequeued) > 0 {
		q.recovered += fmt.Sprintf(", %d cells requeued for artifact re-upload", len(auditRequeued))
	}
	if orphans > 0 {
		q.recovered += fmt.Sprintf(", %d orphan blobs collected", orphans)
	}
	if gcErr != nil {
		q.recovered += fmt.Sprintf(", GC incomplete: %v", gcErr)
	}
	return q, nil
}

// Spec returns the sweep's matrix spec.
func (q *Queue) Spec() Spec { return q.spec }

// Dir returns the sweep directory holding the journal.
func (q *Queue) Dir() string { return q.dir }

// Recovered describes what Resume found (empty for a fresh queue).
func (q *Queue) Recovered() string { return q.recovered }

// Close flushes and closes the journal.
func (q *Queue) Close() error {
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.journal == nil {
		return nil
	}
	err := q.journal.close()
	q.journal = nil
	return err
}

func (q *Queue) appendStateLocked(j *Job) error {
	rec := journalRecord{T: recState, TS: q.opts.now().UnixMicro(),
		Job: j.ID, State: j.State.String(),
		Worker: j.Worker, Attempt: j.Attempt}
	if !j.Lease.IsZero() && (j.State == JobBooked || j.State == JobRunning) {
		rec.Lease = leaseStamp(j.Lease)
	}
	if q.journal == nil {
		return errors.New("dispatch: queue closed")
	}
	return q.journal.append(rec)
}

// reapLocked re-queues booked/running jobs whose lease expired, failing
// jobs that exhausted their attempts. Called with the mutex held from
// every public entry point, so no background reaper is needed: a waiting
// worker's next /book observes expiries immediately. A transition only
// takes effect in memory once its journal record lands (the WAL contract
// Book follows); on an append failure the job keeps its expired lease and
// the reap retries on the next entry point.
func (q *Queue) reapLocked(now time.Time) {
	for _, j := range q.jobs {
		if (j.State == JobBooked || j.State == JobRunning) && now.After(j.Lease) {
			prevState, prevWorker := j.State, j.Worker
			if j.Attempt >= q.opts.MaxAttempts {
				j.State = JobFailed
				j.Run = &RunResult{Err: fmt.Sprintf(
					"dispatch: abandoned after %d expired leases (last worker %s)", j.Attempt, j.Worker)}
				if err := q.appendResultLocked(j); err != nil {
					j.State, j.Run = prevState, nil
					continue
				}
				snap := j.LastSnapshot
				j.LastSnapshot = nil
				q.dropSnapshotBlobLocked(snap)
				if q.metrics != nil {
					q.metrics.attemptsExhaust.Inc()
					q.metrics.jobAttempts.Observe(float64(j.Attempt))
				}
				continue
			}
			j.State = JobQueued
			j.Worker = ""
			if err := q.appendStateLocked(j); err != nil {
				j.State, j.Worker = prevState, prevWorker
				continue
			}
			if q.metrics != nil {
				q.metrics.leaseExpiries.Inc()
			}
		}
	}
}

func (q *Queue) appendResultLocked(j *Job) error {
	if q.journal == nil {
		return errors.New("dispatch: queue closed")
	}
	return q.journal.appendDurable(journalRecord{T: recResult, TS: q.opts.now().UnixMicro(),
		Job: j.ID, Worker: j.Worker, Run: j.Run})
}

// Book leases the next queued job to the worker. Capacity is the worker's
// advertised concurrent-cell capacity (simworker -jobs; <=0 means 1): the
// queue books each worker up to its capacity in concurrent leases, so a
// 4-job worker holds four cells at once and drains the matrix
// proportionally faster than a 1-job neighbor. A worker already holding
// its capacity gets nothing until a lease frees. The second return is
// true when the sweep is drained (every job done or failed); when false
// with a nil job, everything unfinished is currently leased and the
// caller should poll again.
func (q *Queue) Book(worker string, capacity int) (*Job, bool, error) {
	if worker == "" {
		return nil, false, errors.New("dispatch: empty worker id")
	}
	if capacity <= 0 {
		capacity = 1
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.opts.now()
	q.reapLocked(now)
	holds := 0
	for _, j := range q.jobs {
		if (j.State == JobBooked || j.State == JobRunning) && j.Worker == worker {
			holds++
		}
	}
	drained := true
	for _, j := range q.jobs {
		switch j.State {
		case JobDone, JobFailed:
			continue
		case JobQueued:
			if holds >= capacity {
				// Everything unfinished that this worker could take would
				// push it past its advertised capacity.
				return nil, false, nil
			}
			j.State = JobBooked
			j.Worker = worker
			j.Attempt++
			j.Lease = now.Add(q.opts.Lease)
			if err := q.appendStateLocked(j); err != nil {
				j.State = JobQueued
				j.Worker = ""
				j.Attempt--
				return nil, false, err
			}
			if q.metrics != nil {
				q.metrics.books.Inc()
				if j.Attempt > 1 {
					q.metrics.rebooks.Inc()
				}
			}
			cp := *j
			return &cp, false, nil
		default:
			drained = false
		}
	}
	return nil, drained, nil
}

// Progress records a worker heartbeat for a booked/running job: the lease
// renews and the checkpoint (if any) is journaled. Attempt is the booking
// nonce from BookResponse; it is what distinguishes the current holder
// from a zombie whose expired cell was re-booked to the same worker ID.
// Returns Stale when the worker no longer holds the job.
func (q *Queue) Progress(jobID int, worker string, attempt int, ckpt *CheckpointRecord) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.opts.now()
	q.reapLocked(now)
	j, err := q.heldLocked(jobID, worker, attempt)
	if err != nil {
		return err
	}
	if ckpt != nil {
		// Reject checkpoints from a different on-disk format (a
		// version-skewed worker) before they reach the journal.
		if verr := ckpt.Validate(); verr != nil {
			return verr
		}
	}
	j.Lease = now.Add(q.opts.Lease)
	if q.metrics != nil {
		q.metrics.progress.Inc()
	}
	if j.State == JobBooked {
		j.State = JobRunning
		if err := q.appendStateLocked(j); err != nil {
			return err
		}
	}
	if ckpt != nil {
		j.LastCheckpoint = ckpt
		if q.journal == nil {
			return errors.New("dispatch: queue closed")
		}
		return q.journal.append(journalRecord{T: recCheckpoint, TS: now.UnixMicro(),
			Job: j.ID, Worker: worker, Checkpoint: ckpt})
	}
	return nil
}

// RecordSnapshot journals a worker's mid-run snapshot pointer for a held
// cell: the encoded snapshot blob must already be in the store (uploaded
// via PUT /artifact/{digest}, deduplicated like any body) — a pointer to
// a blob the store does not hold is rejected with ErrMissingBlobs, since
// a dangling pointer would send every re-booking through a failed fetch.
// The newest record wins; it is what /book hands the next holder to
// warm-resume from. Plain append, no fsync: losing the record costs a
// cold restart, not a cell. Returns Stale when the worker no longer holds
// the job.
func (q *Queue) RecordSnapshot(jobID int, worker string, attempt int, rec SnapshotRecord) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(q.opts.now())
	j, err := q.heldLocked(jobID, worker, attempt)
	if err != nil {
		return err
	}
	if !q.store.Has(rec.Digest) {
		return fmt.Errorf("%w: job %d: snapshot blob %s not uploaded",
			ErrMissingBlobs, jobID, rec.Digest)
	}
	if q.journal == nil {
		return errors.New("dispatch: queue closed")
	}
	if err := q.journal.append(journalRecord{T: recSnapshot, TS: q.opts.now().UnixMicro(),
		Job: j.ID, Worker: worker, Snapshot: &rec}); err != nil {
		return err
	}
	prev := j.LastSnapshot
	j.LastSnapshot = &rec
	// The superseded snapshot can never be resumed from again (the newest
	// record wins), so reclaim its blob now instead of accreting one per
	// cadence boundary until the next Resume's GC.
	q.dropSnapshotBlobLocked(prev)
	return nil
}

// RecordProfile journals a completed cell's engine self-profile pointer.
// The encoded profile blob must already be in the store (uploaded via
// PUT /artifact/{digest}); a dangling pointer is rejected with
// ErrMissingBlobs. It is called in the completion exchange, while the
// lease is still held — the pointer then survives the cell's terminal
// state, unlike a snapshot's, because the profile is the sweep's post-hoc
// attribution record. Plain append, no fsync: losing it costs one cell's
// attribution, never its result. Returns Stale when the worker no longer
// holds the job.
func (q *Queue) RecordProfile(jobID int, worker string, attempt int, rec ProfileRecord) error {
	if err := rec.Validate(); err != nil {
		return err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(q.opts.now())
	j, err := q.heldLocked(jobID, worker, attempt)
	if err != nil {
		return err
	}
	if !q.store.Has(rec.Digest) {
		return fmt.Errorf("%w: job %d: profile blob %s not uploaded",
			ErrMissingBlobs, jobID, rec.Digest)
	}
	if q.journal == nil {
		return errors.New("dispatch: queue closed")
	}
	if err := q.journal.append(journalRecord{T: recProfile, TS: q.opts.now().UnixMicro(),
		Job: j.ID, Worker: worker, Profile: &rec}); err != nil {
		return err
	}
	prev := j.Profile
	j.Profile = &rec
	// A superseded profile (an earlier attempt's completion that never
	// durably landed) is unreachable; reclaim its blob like a superseded
	// snapshot's.
	q.dropProfileBlobLocked(prev)
	return nil
}

// dropProfileBlobLocked reclaims a profile blob no cell's pointer reaches
// anymore. Best-effort, like dropSnapshotBlobLocked.
func (q *Queue) dropProfileBlobLocked(prof *ProfileRecord) {
	if prof == nil {
		return
	}
	for _, j := range q.jobs {
		if j.Profile != nil && j.Profile.Digest == prof.Digest {
			return
		}
	}
	_ = q.store.Remove(prof.Digest)
}

// EachProfile calls fn for every terminal cell that carries a profile
// pointer, in scenario-major order — the accessor sweep -resume uses to
// export per-cell profiles from a drained queue. fn runs outside the
// queue lock (the store is safe for concurrent reads).
func (q *Queue) EachProfile(fn func(key scenario.Key, rec ProfileRecord) error) error {
	type entry struct {
		key scenario.Key
		rec ProfileRecord
	}
	q.mu.Lock()
	var entries []entry
	for _, j := range q.jobs {
		if j.Profile != nil && (j.State == JobDone || j.State == JobFailed) {
			entries = append(entries, entry{key: j.Key, rec: *j.Profile})
		}
	}
	q.mu.Unlock()
	for _, e := range entries {
		if err := fn(e.key, e.rec); err != nil {
			return err
		}
	}
	return nil
}

// maxSpansPerReport bounds one heartbeat's or completion's span batch — a
// runaway worker must not be able to grow the WAL without bound.
const maxSpansPerReport = 512

// RecordSpans journals a batch of worker-side trace spans for a held cell.
// Spans are pure observability: plain appends, no fsync, no queue-state
// effect — losing them costs trace detail, never correctness. Returns
// Stale when the worker no longer holds the job, so a zombie's spans from
// a superseded attempt never pollute the trace of the current one.
func (q *Queue) RecordSpans(jobID int, worker string, attempt int, spans []trace.Span) error {
	if len(spans) == 0 {
		return nil
	}
	if len(spans) > maxSpansPerReport {
		return fmt.Errorf("dispatch: job %d: %d spans in one report (max %d)",
			jobID, len(spans), maxSpansPerReport)
	}
	for _, s := range spans {
		if err := s.Validate(); err != nil {
			return err
		}
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(q.opts.now())
	j, err := q.heldLocked(jobID, worker, attempt)
	if err != nil {
		return err
	}
	if q.journal == nil {
		return errors.New("dispatch: queue closed")
	}
	ts := q.opts.now().UnixMicro()
	for i := range spans {
		s := spans[i]
		if err := q.journal.append(journalRecord{T: recSpan, TS: ts, Job: j.ID,
			Worker: worker, Attempt: attempt, Span: &s}); err != nil {
			return err
		}
	}
	return nil
}

// dropSnapshotBlobLocked reclaims a snapshot blob no longer reachable
// from any cell's live pointer. Best-effort: a failed removal is
// re-collected by the next Resume's GC, and a blob another cell's pointer
// still shares is left alone.
func (q *Queue) dropSnapshotBlobLocked(snap *SnapshotRecord) {
	if snap == nil {
		return
	}
	for _, j := range q.jobs {
		if j.LastSnapshot != nil && j.LastSnapshot.Digest == snap.Digest {
			return
		}
	}
	_ = q.store.Remove(snap.Digest)
}

// Complete records a worker's finished cell (durably, with an fsync).
// A successful cell must have every artifact body behind its digests in
// the store already — a complete whose blobs are missing is rejected with
// ErrMissingBlobs, because a sweep that drains without its bodies cannot
// produce the bundle it promises. Returns Stale when the worker no longer
// holds the job.
func (q *Queue) Complete(jobID int, worker string, attempt int, run RunResult) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(q.opts.now())
	j, err := q.heldLocked(jobID, worker, attempt)
	if err != nil {
		return err
	}
	if run.Err == "" {
		if len(run.Digests) == 0 {
			// A digest-less success would drain the sweep permanently
			// unable to produce its bundle.
			return fmt.Errorf("%w: job %d: completion carries no artifact digests",
				ErrMissingBlobs, jobID)
		}
		missing := 0
		for _, digest := range run.Digests {
			if !q.store.Has(digest) {
				missing++
			}
		}
		if missing > 0 {
			return fmt.Errorf("%w: job %d: %d of %d bodies not uploaded",
				ErrMissingBlobs, jobID, missing, len(run.Digests))
		}
	}
	j.Run = &run
	if run.Err != "" {
		j.State = JobFailed
	} else {
		j.State = JobDone
	}
	if err := q.appendResultLocked(j); err != nil {
		return err
	}
	// A terminal cell never resumes: reclaim its snapshot blob so a
	// drained store holds exactly the artifact bodies the sweep promises.
	prev := j.LastSnapshot
	j.LastSnapshot = nil
	q.dropSnapshotBlobLocked(prev)
	if q.metrics != nil {
		if run.Err != "" {
			q.metrics.completesFailed.Inc()
		} else {
			q.metrics.completesDone.Inc()
		}
		q.metrics.jobAttempts.Observe(float64(j.Attempt))
	}
	return nil
}

// Release returns a held cell to the queue before its lease expires — a
// worker abandoning a cell (upload rejected, transient dispatcher error)
// calls it so the cell re-books immediately instead of idling out the
// lease. The booking attempt is spent either way, and reason is
// preserved in the failure record if the cell exhausts its attempts.
// Returns Stale when the caller no longer holds the cell, which an
// abandoning worker ignores.
func (q *Queue) Release(jobID int, worker string, attempt int, reason string) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(q.opts.now())
	j, err := q.heldLocked(jobID, worker, attempt)
	if err != nil {
		return err
	}
	prevState, prevWorker := j.State, j.Worker
	if j.Attempt >= q.opts.MaxAttempts {
		// The same backstop lease expiry applies: a cell abandoned on
		// every attempt must not ping-pong through the queue forever.
		msg := fmt.Sprintf("dispatch: abandoned after %d attempts (last worker %s)",
			j.Attempt, prevWorker)
		if reason != "" {
			msg += ": " + reason
		}
		j.State = JobFailed
		j.Run = &RunResult{Err: msg}
		if err := q.appendResultLocked(j); err != nil {
			j.State, j.Run = prevState, nil
			return err
		}
		snap := j.LastSnapshot
		j.LastSnapshot = nil
		q.dropSnapshotBlobLocked(snap)
		if q.metrics != nil {
			q.metrics.attemptsExhaust.Inc()
			q.metrics.jobAttempts.Observe(float64(j.Attempt))
		}
		return nil
	}
	j.State = JobQueued
	j.Worker = ""
	if err := q.appendStateLocked(j); err != nil {
		j.State, j.Worker = prevState, prevWorker
		return err
	}
	if q.metrics != nil {
		q.metrics.releases.Inc()
	}
	return nil
}

// PutArtifact stores one artifact body under its digest (verifying the
// content hashes to it) and journals the upload with its size — the
// record Resume later verifies the blob against. Re-putting a digest the
// store already holds is the dedup no-op — nothing is journaled twice —
// and the bool reports whether a new blob was written.
func (q *Queue) PutArtifact(digest string, body []byte) (bool, error) {
	stored, err := q.store.Put(digest, body)
	if err != nil || !stored {
		return false, err
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	if q.journal == nil {
		return true, errors.New("dispatch: queue closed")
	}
	return true, q.journal.append(journalRecord{T: recArtifact, TS: q.opts.now().UnixMicro(),
		Digest: digest, Size: int64(len(body))})
}

// Store exposes the queue's content-addressed artifact store (bundle
// serving and materialization read through it).
func (q *Queue) Store() *artifact.Store { return q.store }

// CellRun returns a copy of one cell's recorded result; ok is false while
// the cell has none (still queued or in flight).
func (q *Queue) CellRun(jobID int) (scenario.Run, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	if jobID < 0 || jobID >= len(q.jobs) {
		return scenario.Run{}, false
	}
	j := q.jobs[jobID]
	if j.Run == nil {
		return scenario.Run{}, false
	}
	return scenario.Run{Key: j.Key, Metrics: j.Run.Metrics,
		Digests: j.Run.Digests, Err: j.Run.Err}, true
}

func (q *Queue) heldLocked(jobID int, worker string, attempt int) (*Job, error) {
	if jobID < 0 || jobID >= len(q.jobs) {
		return nil, fmt.Errorf("dispatch: unknown job %d", jobID)
	}
	j := q.jobs[jobID]
	if (j.State != JobBooked && j.State != JobRunning) || j.Worker != worker || j.Attempt != attempt {
		return nil, fmt.Errorf("%w: job %d is %s (held by %q, attempt %d)",
			ErrStale, jobID, j.State, j.Worker, j.Attempt)
	}
	return j, nil
}

// Done reports whether every job reached a terminal state.
func (q *Queue) Done() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(q.opts.now())
	return q.countDone() == len(q.jobs)
}

// countDone counts terminal jobs; callers hold the mutex or own the queue
// exclusively (Resume).
func (q *Queue) countDone() int {
	n := 0
	for _, j := range q.jobs {
		if j.State == JobDone || j.State == JobFailed {
			n++
		}
	}
	return n
}

// Snapshot reports every job's current status in scenario-major order.
func (q *Queue) Snapshot() []JobStatus {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.reapLocked(q.opts.now())
	out := make([]JobStatus, len(q.jobs))
	for i, j := range q.jobs {
		st := JobStatus{ID: j.ID, Key: j.Key, State: j.State.String(),
			Worker: j.Worker, Attempt: j.Attempt, Checkpoint: j.LastCheckpoint,
			Snapshot: j.LastSnapshot, Profile: j.Profile}
		if j.Run != nil {
			st.Err = j.Run.Err
		}
		out[i] = st
	}
	return out
}

// ErrNotDrained is returned by Merged while cells are still outstanding.
var ErrNotDrained = errors.New("dispatch: sweep not drained")

// Merged assembles the finished sweep in scenario-major order — the exact
// SweepResult (metrics, digests, error strings) a single-process
// scenario.Sweep of the same spec produces.
func (q *Queue) Merged() (*scenario.SweepResult, error) {
	q.mu.Lock()
	defer q.mu.Unlock()
	runs := make([]scenario.Run, len(q.jobs))
	for i, j := range q.jobs {
		if j.Run == nil {
			return nil, fmt.Errorf("%w: job %d (%s/%s seed %d) is %s",
				ErrNotDrained, j.ID, j.Key.Scenario, j.Key.Variant, j.Key.Seed, j.State)
		}
		runs[i] = scenario.Run{Key: j.Key, Metrics: j.Run.Metrics,
			Digests: j.Run.Digests, Err: j.Run.Err}
	}
	return &scenario.SweepResult{Runs: runs}, nil
}
