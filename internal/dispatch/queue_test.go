package dispatch

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"sapsim"
	"sapsim/internal/artifact"
	"sapsim/internal/scenario"
	"sapsim/internal/sim"
)

// testSpec is a tiny 2x1x2 = 4-cell matrix.
func testSpec() Spec {
	base := ConfigSpec{
		Seed: 7, Scale: 0.01, VMs: 250, Days: 2,
		SampleEvery: 30 * sim.Minute, VMSampleEvery: 3 * sim.Hour,
		DRS: true, DRSEvery: sim.Hour, RecordVMMetrics: true, ResizeRate: 0.03,
	}
	return Spec{
		Base:      base,
		Scenarios: []string{"baseline", "host-failures"},
		Variants:  []string{"default"},
		Seeds:     []uint64{7, 11},
	}
}

// fakeClock steps time manually.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestQueue(t *testing.T, opts QueueOptions) (*Queue, string) {
	t.Helper()
	dir := t.TempDir()
	q, err := NewQueue(dir, testSpec(), opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { q.Close() })
	return q, dir
}

// putBody stores one artifact body in the queue's store and returns its
// digest — completes of successful cells must have their blobs uploaded.
func putBody(t *testing.T, q *Queue, body string) string {
	t.Helper()
	digest := artifact.Digest([]byte(body))
	if _, err := q.PutArtifact(digest, []byte(body)); err != nil {
		t.Fatal(err)
	}
	return digest
}

func TestQueueBookProgressComplete(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	q, _ := newTestQueue(t, QueueOptions{Lease: time.Minute, now: clock.now})

	job, drained, err := q.Book("w1", 1)
	if err != nil || drained || job == nil {
		t.Fatalf("Book = %v, %v, %v", job, drained, err)
	}
	if job.ID != 0 || job.Key.Scenario != "baseline" || job.Key.Seed != 7 {
		t.Fatalf("first booking = %+v, want job 0 baseline/default seed 7 (scenario-major order)", job)
	}
	if job.State != JobBooked || job.Attempt != 1 {
		t.Fatalf("booked job state = %s attempt %d", job.State, job.Attempt)
	}

	// Progress moves booked → running and renews the lease.
	if err := q.Progress(job.ID, "w1", job.Attempt, nil); err != nil {
		t.Fatal(err)
	}
	snap := q.Snapshot()
	if snap[0].State != "running" {
		t.Fatalf("after heartbeat state = %s, want running", snap[0].State)
	}

	// A stranger cannot report on w1's job, and neither can w1 itself
	// under a stale booking nonce.
	if err := q.Progress(job.ID, "w2", job.Attempt, nil); !errors.Is(err, ErrStale) {
		t.Fatalf("stale progress error = %v, want ErrStale", err)
	}
	if err := q.Progress(job.ID, "w1", job.Attempt+1, nil); !errors.Is(err, ErrStale) {
		t.Fatalf("wrong-attempt progress error = %v, want ErrStale", err)
	}
	if err := q.Complete(job.ID, "w2", job.Attempt, RunResult{}); !errors.Is(err, ErrStale) {
		t.Fatalf("stale complete error = %v, want ErrStale", err)
	}

	// A successful completion whose blobs were never uploaded is rejected.
	if err := q.Complete(job.ID, "w1", job.Attempt,
		RunResult{Digests: map[string]string{"fig5": artifact.Digest([]byte("never uploaded"))}}); !errors.Is(err, ErrMissingBlobs) {
		t.Fatalf("complete without blobs = %v, want ErrMissingBlobs", err)
	}

	digest := putBody(t, q, "fig5 body")
	if err := q.Complete(job.ID, "w1", job.Attempt, RunResult{Digests: map[string]string{"fig5": digest}}); err != nil {
		t.Fatal(err)
	}
	if q.Snapshot()[0].State != "done" {
		t.Fatal("completed job not done")
	}
	if q.Done() {
		t.Fatal("queue done with three cells outstanding")
	}
}

// TestReleaseRequeuesImmediately: an abandoning worker hands its lease
// back and the cell re-books at once — no one waits out the lease — while
// the MaxAttempts backstop still catches a cell abandoned on every try.
func TestReleaseRequeuesImmediately(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	q, _ := newTestQueue(t, QueueOptions{Lease: time.Minute, MaxAttempts: 2, now: clock.now})

	j, _, err := q.Book("w1", 1)
	if err != nil || j == nil {
		t.Fatalf("Book = %+v, %v", j, err)
	}
	if err := q.Release(j.ID, "w1", j.Attempt, "upload: connection reset"); err != nil {
		t.Fatal(err)
	}
	// No clock advance: the release alone frees the cell.
	j2, _, err := q.Book("w2", 1)
	if err != nil || j2 == nil || j2.ID != j.ID || j2.Attempt != 2 {
		t.Fatalf("post-release booking = %+v, %v; want job %d attempt 2", j2, err, j.ID)
	}
	// A release under a stale nonce (the first booking) is refused.
	if err := q.Release(j.ID, "w1", j.Attempt, ""); !errors.Is(err, ErrStale) {
		t.Fatalf("stale release = %v, want ErrStale", err)
	}
	// Releasing the final allowed attempt fails the cell for good, and
	// the worker's reported cause survives into the failure record.
	if err := q.Release(j2.ID, "w2", j2.Attempt, "upload: 507 insufficient storage"); err != nil {
		t.Fatal(err)
	}
	snap := q.Snapshot()
	if snap[j.ID].State != "failed" || !strings.Contains(snap[j.ID].Err, "abandoned after 2 attempts") ||
		!strings.Contains(snap[j.ID].Err, "507 insufficient storage") {
		t.Fatalf("twice-released cell = %+v, want failed via MaxAttempts backstop with cause", snap[j.ID])
	}
}

// TestCapacityWeightedBooking: bookings are weighted by the worker's
// advertised capacity — a 4-job worker holds four concurrent leases while
// a 1-job worker is held to one, so it drains cells proportionally faster.
func TestCapacityWeightedBooking(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	q, _ := newTestQueue(t, QueueOptions{Lease: time.Minute, now: clock.now}) // 4 cells

	small, _, err := q.Book("small", 1)
	if err != nil || small == nil {
		t.Fatalf("small booking = %+v, %v", small, err)
	}
	// At capacity: the small worker gets nothing more while its lease is
	// outstanding, even though cells are free.
	if j, drained, err := q.Book("small", 1); err != nil || drained || j != nil {
		t.Fatalf("over-capacity booking = %+v, drained=%v, %v; want nil", j, drained, err)
	}

	// A 3-capacity worker takes the remaining three cells back to back —
	// three times the small worker's share of the queue.
	var held []*Job
	for i := 0; i < 3; i++ {
		j, _, err := q.Book("big", 3)
		if err != nil || j == nil {
			t.Fatalf("big booking %d = %+v, %v", i, j, err)
		}
		held = append(held, j)
	}
	if j, _, _ := q.Book("big", 3); j != nil {
		t.Fatalf("big worker booked a 4th cell %d past its capacity", j.ID)
	}

	// Completing a cell frees that worker's slot: after finishing one,
	// big may book again — but the matrix is fully leased, so nothing is
	// free for anyone until a lease expires.
	digest := putBody(t, q, "body")
	if err := q.Complete(held[0].ID, "big", held[0].Attempt,
		RunResult{Digests: map[string]string{"fig5": digest}}); err != nil {
		t.Fatal(err)
	}
	if j, drained, err := q.Book("big", 3); err != nil || drained || j != nil {
		t.Fatalf("booking on a fully-leased matrix = %+v, drained=%v, %v; want nil", j, drained, err)
	}

	// Expire the outstanding leases: the freed cells re-book, and the
	// capacity weighting still holds — small gets one, big gets the rest.
	clock.advance(2 * time.Minute)
	if j, _, err := q.Book("small", 1); err != nil || j == nil {
		t.Fatalf("small worker starved after lease expiry: %+v, %v", j, err)
	}
	if j, _, err := q.Book("big", 3); err != nil || j == nil {
		t.Fatalf("big worker got nothing after lease expiry: %+v, %v", j, err)
	}
}

func TestQueueLeaseExpiryRebooks(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	q, _ := newTestQueue(t, QueueOptions{Lease: time.Minute, MaxAttempts: 3, now: clock.now})

	job, _, err := q.Book("w1", 1)
	if err != nil {
		t.Fatal(err)
	}

	// Within the lease the job stays w1's: another worker books the NEXT
	// cell, not this one.
	job2, _, err := q.Book("w2", 1)
	if err != nil || job2.ID != 1 {
		t.Fatalf("second booking = %+v, %v; want job 1", job2, err)
	}

	// Past the lease, w1's cell re-queues and re-books to w3.
	clock.advance(2 * time.Minute)
	job3, _, err := q.Book("w3", 1)
	if err != nil || job3.ID != 0 {
		t.Fatalf("post-expiry booking = %+v, %v; want job 0 re-booked", job3, err)
	}
	if job3.Attempt != 2 {
		t.Fatalf("re-booked attempt = %d, want 2", job3.Attempt)
	}
	// The zombie w1 can no longer report.
	if err := q.Progress(job.ID, "w1", job.Attempt, nil); !errors.Is(err, ErrStale) {
		t.Fatalf("zombie progress error = %v, want ErrStale", err)
	}

	// Exhausting MaxAttempts fails the job permanently.
	clock.advance(2 * time.Minute) // expire w3 (attempt 2) and w2's job
	if _, _, err := q.Book("w4", 1); err != nil {
		t.Fatal(err)
	} // job 0 attempt 3
	clock.advance(2 * time.Minute)
	for {
		j, _, err := q.Book("w5", 4)
		if err != nil {
			t.Fatal(err)
		}
		if j == nil {
			break
		}
		if j.ID == 0 {
			t.Fatalf("job 0 re-booked on attempt %d, past MaxAttempts=3", j.Attempt)
		}
	}
	clock.advance(2 * time.Minute)
	_, _, _ = q.Book("w6", 1) // trigger a reap with everything expired
	found := false
	for _, st := range q.Snapshot() {
		if st.ID == 0 {
			found = true
			if st.State != "failed" || !strings.Contains(st.Err, "abandoned after 3 expired leases") {
				t.Fatalf("job 0 = %+v, want failed after 3 attempts", st)
			}
		}
	}
	if !found {
		t.Fatal("job 0 missing from snapshot")
	}
}

func TestResumeRequeuesInFlight(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	dir := t.TempDir()
	q, err := NewQueue(dir, testSpec(), QueueOptions{Lease: time.Minute, now: clock.now})
	if err != nil {
		t.Fatal(err)
	}

	// Complete job 0, leave job 1 booked and job 2 running, job 3 queued.
	j0, _, _ := q.Book("w1", 2)
	done := RunResult{Digests: map[string]string{"fig5": putBody(t, q, "fig5 body of job 0")}}
	done.Metrics.LiveVMs = 42
	if err := q.Complete(j0.ID, "w1", j0.Attempt, done); err != nil {
		t.Fatal(err)
	}
	q.Book("w1", 2)
	j2, _, _ := q.Book("w2", 1)
	ck := NewCheckpointRecord(j2.Key, testSpec().Base, checkpointFixture())
	if err := q.Progress(j2.ID, "w2", j2.Attempt, &ck); err != nil {
		t.Fatal(err)
	}
	q.Close() // crash

	r, err := Resume(dir, QueueOptions{Lease: time.Minute, now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	snap := r.Snapshot()
	wantStates := []string{"done", "queued", "queued", "queued"}
	for i, want := range wantStates {
		if snap[i].State != want {
			t.Errorf("job %d resumed as %s, want %s", i, snap[i].State, want)
		}
	}
	// The completed result survived.
	if snap[0].Err != "" {
		t.Errorf("job 0 err = %q", snap[0].Err)
	}
	// The running cell's checkpoint survived for observability.
	if snap[2].Checkpoint == nil || snap[2].Checkpoint.At != checkpointFixture().At {
		t.Errorf("job 2 checkpoint lost on resume: %+v", snap[2].Checkpoint)
	}
	if !strings.Contains(r.Recovered(), "1 done, 2 requeued") {
		t.Errorf("Recovered() = %q", r.Recovered())
	}
	// Merged refuses while cells are outstanding.
	if _, err := r.Merged(); !errors.Is(err, ErrNotDrained) {
		t.Errorf("Merged on partial queue = %v, want ErrNotDrained", err)
	}
	// Resuming a fresh dir fails cleanly.
	if _, err := Resume(t.TempDir(), QueueOptions{}); !errors.Is(err, errNoJournal) {
		t.Errorf("Resume of empty dir = %v, want errNoJournal", err)
	}
	// NewQueue refuses to clobber an existing sweep.
	if _, err := NewQueue(dir, testSpec(), QueueOptions{}); err == nil {
		t.Error("NewQueue over an existing journal succeeded")
	}
}

// TestResumeTornAndCorruptJournal: a journal with a torn final line and a
// damaged interior line resumes; each damaged record costs at most that
// cell's progress, never the sweep.
func TestResumeTornAndCorruptJournal(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	dir := t.TempDir()
	q, err := NewQueue(dir, testSpec(), QueueOptions{Lease: time.Minute, now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	digest := putBody(t, q, "torn-test body")
	j0, _, _ := q.Book("w1", 1)
	if err := q.Complete(j0.ID, "w1", j0.Attempt, RunResult{Digests: map[string]string{"fig5": digest}}); err != nil {
		t.Fatal(err)
	}
	j1, _, _ := q.Book("w1", 1)
	if err := q.Complete(j1.ID, "w1", j1.Attempt, RunResult{Digests: map[string]string{"fig5": digest}}); err != nil {
		t.Fatal(err)
	}
	q.Close()

	path := filepath.Join(dir, JournalName)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSuffix(string(data), "\n"), "\n")
	// Damage job 1's result line (an interior record), then append a torn
	// half-written booking.
	for i, line := range lines {
		if strings.Contains(line, `"result"`) && strings.Contains(line, `"job":1`) {
			lines[i] = line[:len(line)/2]
		}
	}
	mangled := strings.Join(lines, "\n") + "\n" + `{"t":"state","job":2,"state":"boo`
	if err := os.WriteFile(path, []byte(mangled), 0o644); err != nil {
		t.Fatal(err)
	}

	r, err := Resume(dir, QueueOptions{Lease: time.Minute, now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	snap := r.Snapshot()
	if snap[0].State != "done" {
		t.Errorf("job 0 = %s, want done (undamaged record)", snap[0].State)
	}
	if snap[1].State != "queued" {
		t.Errorf("job 1 = %s, want queued (its result line was damaged)", snap[1].State)
	}
	if snap[2].State != "queued" {
		t.Errorf("job 2 = %s, want queued (torn booking dropped)", snap[2].State)
	}
	if !strings.Contains(r.Recovered(), "torn tail dropped") {
		t.Errorf("Recovered() = %q, want torn tail noted", r.Recovered())
	}
	// The healed journal keeps accepting records: book and complete the
	// damaged cell again, resume once more, and the result sticks.
	jb, _, err := r.Book("w9", 1)
	if err != nil || jb == nil || jb.ID != 1 {
		t.Fatalf("post-recovery booking = %+v, %v; want job 1", jb, err)
	}
	// A digest-less success is refused — the sweep could never bundle.
	if err := r.Complete(jb.ID, "w9", jb.Attempt, RunResult{}); !errors.Is(err, ErrMissingBlobs) {
		t.Fatalf("digest-less complete = %v, want ErrMissingBlobs", err)
	}
	if err := r.Complete(jb.ID, "w9", jb.Attempt,
		RunResult{Digests: map[string]string{"fig5": putBody(t, r, "torn-test body")}}); err != nil {
		t.Fatal(err)
	}
	r.Close()
	r2, err := Resume(dir, QueueOptions{Lease: time.Minute, now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if st := r2.Snapshot()[1].State; st != "done" {
		t.Errorf("job 1 after re-complete and second resume = %s, want done", st)
	}
}

// TestSpecExpansionMatchesSweepOrder: Spec.Keys and scenario.Sweep agree
// on cell order, so Merged's runs line up with the single-process result.
func TestSpecExpansionMatchesSweepOrder(t *testing.T) {
	spec := testSpec()
	keys := spec.Keys()
	want := []scenario.Key{
		{Scenario: "baseline", Variant: "default", Seed: 7},
		{Scenario: "baseline", Variant: "default", Seed: 11},
		{Scenario: "host-failures", Variant: "default", Seed: 7},
		{Scenario: "host-failures", Variant: "default", Seed: 11},
	}
	if len(keys) != len(want) {
		t.Fatalf("Keys() = %d cells, want %d", len(keys), len(want))
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Errorf("keys[%d] = %+v, want %+v", i, keys[i], want[i])
		}
	}
	if err := (Spec{Scenarios: []string{"no-such"}, Variants: []string{"default"}, Seeds: []uint64{1}}).Validate(); err == nil {
		t.Error("unknown scenario name validated")
	}
}

func checkpointFixture() sapsim.Checkpoint {
	return sapsim.Checkpoint{At: 6 * sim.Hour, FiredEvents: 1234, LiveVMs: 250, Scheduled: 40}
}
