package dispatch

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"time"

	"sapsim/internal/fleetmetrics"
	"sapsim/internal/scenario"
	"sapsim/internal/trace"
)

// Wire types of the dispatcher protocol. Every request body and response
// is JSON; errors travel as plain-text bodies with a non-2xx status.

// BookRequest asks for the next queued cell. Capacity advertises the
// worker's concurrent-cell capacity (simworker -jobs): the queue books a
// worker up to its capacity in concurrent leases, so bookings are
// weighted by it.
type BookRequest struct {
	Worker   string
	Capacity int `json:",omitempty"`
}

// BookResponse carries a booked cell: everything a stateless worker needs
// to run it from scratch.
type BookResponse struct {
	Job             int
	Key             bookKey
	Attempt         int
	Base            ConfigSpec
	CheckpointEvery int64 // sim.Time (ns)
	// Snapshot, when set, points at the newest journaled engine snapshot
	// for this cell (a previous holder uploaded it before dying): the
	// worker fetches the blob and warm-resumes from Snapshot.At instead of
	// replaying from t=0. Missing or damaged blobs degrade to a cold start.
	Snapshot *SnapshotRecord `json:",omitempty"`
	// Trace and Span propagate trace context: the cell's trace ID and the
	// attempt span the worker parents its own spans under. Workers ship
	// spans back on heartbeats and completion; an empty Trace (an older
	// dispatcher) disables span collection.
	Trace string `json:",omitempty"`
	Span  string `json:",omitempty"`
}

// bookKey mirrors scenario.Key (kept local so the wire format is explicit).
type bookKey struct {
	Scenario string
	Variant  string
	Seed     uint64
}

// ProgressRequest is a worker heartbeat: it renews the job's lease and
// optionally journals a checkpoint snapshot. Attempt is the booking nonce
// from BookResponse — a report from a previous booking of the same cell
// is stale even if the worker ID matches.
type ProgressRequest struct {
	Worker     string
	Job        int
	Attempt    int
	Checkpoint *CheckpointRecord `json:",omitempty"`
	// Snapshot reports a freshly uploaded engine snapshot (the blob must
	// already be in the store via PUT /artifact/{digest}).
	Snapshot *SnapshotRecord `json:",omitempty"`
	// Spans carries the worker's finished trace spans since the last
	// accepted report (engine phases, snapshot encode/upload).
	Spans []trace.Span `json:",omitempty"`
}

// CompleteRequest reports a finished cell. Every artifact body behind
// Run.Digests must already be uploaded (PUT /artifact/{digest}); the
// dispatcher rejects the completion otherwise.
type CompleteRequest struct {
	Worker  string
	Job     int
	Attempt int
	Run     RunResult
	// Spans is the final drain of the worker's span buffer — journaled
	// before the completion takes effect, while the lease is still held.
	Spans []trace.Span `json:",omitempty"`
	// Profile points at the cell's uploaded engine self-profile blob
	// (PUT /artifact/{digest} first, like any body). It is journaled before
	// the completion takes effect and survives the cell's terminal state.
	Profile *ProfileRecord `json:",omitempty"`
}

// ReleaseRequest hands an abandoned cell back before its lease expires,
// so it re-books immediately instead of costing the fleet a lease
// period of idleness. Reason records why (it survives into the failure
// record if the cell exhausts its attempts).
type ReleaseRequest struct {
	Worker  string
	Job     int
	Attempt int
	Reason  string `json:",omitempty"`
}

// StateResponse is the /state snapshot.
type StateResponse struct {
	Spec    Spec
	Jobs    []JobStatus
	Done    bool
	Drained int
	Total   int
}

// Dispatcher serves a Queue over the wire protocol. It is the simq-style
// queue manager: workers book cells, heartbeat progress, and deliver
// results; observers poll /state; the merged sweep is served at /result
// once drained.
type Dispatcher struct {
	queue *Queue
	srv   *http.Server
	// serveErr delivers the terminal error of a Serve'd server (nil on
	// graceful shutdown); WaitDrained watches it so a dead listener
	// surfaces as an error instead of an eternal poll.
	serveErr chan error
	// Logf, when set, receives one line per queue transition.
	Logf func(format string, args ...any)

	// registry, when set via Instrument, is served at GET /metrics.
	registry     *fleetmetrics.Registry
	encodeErrors *fleetmetrics.Counter
	headHits     *fleetmetrics.Counter
	headMisses   *fleetmetrics.Counter
}

// NewDispatcher wraps a queue.
func NewDispatcher(q *Queue) *Dispatcher {
	return &Dispatcher{queue: q}
}

// Instrument registers the dispatcher's fleet metrics — the queue's (and
// its journal's and artifact store's) instruments plus the wire-level
// counters — and arranges for Handler to serve the registry at
// GET /metrics. Call before Handler/Serve.
func (d *Dispatcher) Instrument(reg *fleetmetrics.Registry) {
	d.queue.Instrument(reg)
	d.registry = reg
	d.encodeErrors = reg.Counter(MetricEncodeErrors,
		"JSON responses that failed to encode or send")
	d.headHits = reg.Counter(MetricArtifactHeads,
		"HEAD /artifact probes", "outcome", "hit")
	d.headMisses = reg.Counter(MetricArtifactHeads,
		"HEAD /artifact probes", "outcome", "miss")
}

// Queue returns the dispatcher's queue.
func (d *Dispatcher) Queue() *Queue { return d.queue }

func (d *Dispatcher) logf(format string, args ...any) {
	if d.Logf != nil {
		d.Logf(format, args...)
	}
}

// Handler returns the wire-protocol handler.
func (d *Dispatcher) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /book", d.handleBook)
	mux.HandleFunc("POST /progress", d.handleProgress)
	mux.HandleFunc("POST /complete", d.handleComplete)
	mux.HandleFunc("POST /release", d.handleRelease)
	mux.HandleFunc("GET /state", d.handleState)
	mux.HandleFunc("GET /result", d.handleResult)
	mux.HandleFunc("HEAD /artifact/{digest}", d.handleArtifactHead)
	mux.HandleFunc("PUT /artifact/{digest}", d.handleArtifactPut)
	mux.HandleFunc("GET /artifact/{digest}", d.handleArtifactGet)
	mux.HandleFunc("GET /bundle", d.handleBundleIndex)
	mux.HandleFunc("GET /bundle/report", d.handleBundleReport)
	mux.HandleFunc("GET /bundle/runs.csv", d.handleBundleRunsCSV)
	mux.HandleFunc("GET /bundle/diff", d.handleBundleDiff)
	mux.HandleFunc("GET /bundle/scenario/{name}", d.handleBundleScenario)
	mux.HandleFunc("GET /bundle/cell/{scenario}/{variant}/{seed}", d.handleBundleCell)
	mux.HandleFunc("GET /bundle/cell/{scenario}/{variant}/{seed}/{id}", d.handleBundleArtifact)
	if d.registry != nil {
		mux.Handle("GET /metrics", d.registry.Handler())
	}
	return mux
}

func decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 8<<20))
	if err == nil {
		err = json.Unmarshal(body, v)
	}
	if err != nil {
		http.Error(w, "bad request: "+err.Error(), http.StatusBadRequest)
		return false
	}
	return true
}

// writeJSON encodes a response body. An encode failure after the 200
// header is already on the wire cannot be turned into an error status, but
// it must not vanish either: the worker on the other end sees a truncated
// body and retries, and without the log line and counter the dispatcher
// side of that conversation is invisible.
func (d *Dispatcher) writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	if err := json.NewEncoder(w).Encode(v); err != nil {
		d.logf("dispatch: encoding response: %v", err)
		if d.encodeErrors != nil {
			d.encodeErrors.Inc()
		}
	}
}

func (d *Dispatcher) handleBook(w http.ResponseWriter, r *http.Request) {
	var req BookRequest
	if !decodeBody(w, r, &req) {
		return
	}
	job, drained, err := d.queue.Book(req.Worker, req.Capacity)
	switch {
	case err != nil:
		http.Error(w, err.Error(), http.StatusBadRequest)
	case drained:
		http.Error(w, "sweep drained", http.StatusGone)
	case job == nil:
		w.WriteHeader(http.StatusNoContent)
	default:
		d.logf("dispatch: job %d (%s/%s seed %d) booked by %s (attempt %d)",
			job.ID, job.Key.Scenario, job.Key.Variant, job.Key.Seed, req.Worker, job.Attempt)
		spec := d.queue.Spec()
		d.writeJSON(w, BookResponse{
			Job:             job.ID,
			Key:             bookKey{Scenario: job.Key.Scenario, Variant: job.Key.Variant, Seed: job.Key.Seed},
			Attempt:         job.Attempt,
			Base:            spec.Base,
			CheckpointEvery: int64(spec.CheckpointEvery),
			Snapshot:        job.LastSnapshot,
			Trace:           CellTraceID(job.Key),
			Span:            attemptSpanID(job.ID, job.Attempt),
		})
	}
}

func (d *Dispatcher) handleProgress(w http.ResponseWriter, r *http.Request) {
	var req ProgressRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := d.queue.Progress(req.Job, req.Worker, req.Attempt, req.Checkpoint); err != nil {
		if errors.Is(err, ErrStale) {
			http.Error(w, err.Error(), http.StatusConflict)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	if req.Snapshot != nil {
		if err := d.queue.RecordSnapshot(req.Job, req.Worker, req.Attempt, *req.Snapshot); err != nil {
			switch {
			case errors.Is(err, ErrStale):
				http.Error(w, err.Error(), http.StatusConflict)
			case errors.Is(err, ErrMissingBlobs):
				http.Error(w, err.Error(), http.StatusPreconditionFailed)
			default:
				http.Error(w, err.Error(), http.StatusBadRequest)
			}
			return
		}
		d.logf("dispatch: job %d snapshot at %v from %s", req.Job, req.Snapshot.At, req.Worker)
	}
	if len(req.Spans) > 0 {
		if err := d.queue.RecordSpans(req.Job, req.Worker, req.Attempt, req.Spans); err != nil {
			if errors.Is(err, ErrStale) {
				http.Error(w, err.Error(), http.StatusConflict)
			} else {
				http.Error(w, err.Error(), http.StatusBadRequest)
			}
			return
		}
	}
	d.writeJSON(w, struct{ OK bool }{true})
}

func (d *Dispatcher) handleComplete(w http.ResponseWriter, r *http.Request) {
	var req CompleteRequest
	if !decodeBody(w, r, &req) {
		return
	}
	// The final span drain lands first, while the lease is still held — a
	// completed job accepts no further reports, so spans after Complete
	// would always be stale.
	if len(req.Spans) > 0 {
		if err := d.queue.RecordSpans(req.Job, req.Worker, req.Attempt, req.Spans); err != nil {
			if errors.Is(err, ErrStale) {
				http.Error(w, err.Error(), http.StatusConflict)
			} else {
				http.Error(w, err.Error(), http.StatusBadRequest)
			}
			return
		}
	}
	// The profile pointer lands before the completion too — RecordProfile
	// requires the lease. A rejected profile (blob not uploaded, version
	// skew) fails the exchange before the result is durable, so the worker
	// retries the whole completion instead of leaving a done cell with a
	// dangling pointer.
	if req.Profile != nil {
		if err := d.queue.RecordProfile(req.Job, req.Worker, req.Attempt, *req.Profile); err != nil {
			switch {
			case errors.Is(err, ErrStale):
				http.Error(w, err.Error(), http.StatusConflict)
			case errors.Is(err, ErrMissingBlobs):
				http.Error(w, err.Error(), http.StatusPreconditionFailed)
			default:
				http.Error(w, err.Error(), http.StatusBadRequest)
			}
			return
		}
	}
	if err := d.queue.Complete(req.Job, req.Worker, req.Attempt, req.Run); err != nil {
		switch {
		case errors.Is(err, ErrStale):
			http.Error(w, err.Error(), http.StatusConflict)
		case errors.Is(err, ErrMissingBlobs):
			http.Error(w, err.Error(), http.StatusPreconditionFailed)
		default:
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	outcome := "done"
	if req.Run.Err != "" {
		outcome = "failed: " + req.Run.Err
	}
	d.logf("dispatch: job %d completed by %s: %s", req.Job, req.Worker, outcome)
	d.writeJSON(w, struct{ OK bool }{true})
}

func (d *Dispatcher) handleRelease(w http.ResponseWriter, r *http.Request) {
	var req ReleaseRequest
	if !decodeBody(w, r, &req) {
		return
	}
	if err := d.queue.Release(req.Job, req.Worker, req.Attempt, req.Reason); err != nil {
		if errors.Is(err, ErrStale) {
			http.Error(w, err.Error(), http.StatusConflict)
		} else {
			http.Error(w, err.Error(), http.StatusBadRequest)
		}
		return
	}
	d.logf("dispatch: job %d released by %s", req.Job, req.Worker)
	d.writeJSON(w, struct{ OK bool }{true})
}

func (d *Dispatcher) handleState(w http.ResponseWriter, r *http.Request) {
	jobs := d.queue.Snapshot()
	drained := 0
	for _, j := range jobs {
		if j.State == JobDone.String() || j.State == JobFailed.String() {
			drained++
		}
	}
	d.writeJSON(w, StateResponse{
		Spec: d.queue.Spec(), Jobs: jobs,
		Done: drained == len(jobs), Drained: drained, Total: len(jobs),
	})
}

func (d *Dispatcher) handleResult(w http.ResponseWriter, r *http.Request) {
	res, err := d.queue.Merged()
	if err != nil {
		if errors.Is(err, ErrNotDrained) {
			http.Error(w, err.Error(), http.StatusTooEarly)
		} else {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
		return
	}
	d.writeJSON(w, res)
}

// Serve listens on addr and serves the protocol until Shutdown (or ctx
// cancellation). It reports the bound address through the returned
// listener-address string, which matters for addr ":0" in tests and
// examples.
func (d *Dispatcher) Serve(ctx context.Context, addr string) (string, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", fmt.Errorf("dispatch: listen %s: %w", addr, err)
	}
	d.srv = &http.Server{Handler: d.Handler()}
	d.serveErr = make(chan error, 1)
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 3*time.Second)
		defer cancel()
		_ = d.srv.Shutdown(shutdownCtx)
	}()
	go func() {
		err := d.srv.Serve(ln)
		if errors.Is(err, http.ErrServerClosed) {
			err = nil
		}
		if err != nil {
			d.logf("dispatch: serve: %v", err)
		}
		d.serveErr <- err
	}()
	return ln.Addr().String(), nil
}

// Shutdown stops the HTTP server (the queue stays open; Close it
// separately).
func (d *Dispatcher) Shutdown(ctx context.Context) error {
	if d.srv == nil {
		return nil
	}
	return d.srv.Shutdown(ctx)
}

// WaitDrained polls until every cell is terminal, then returns the merged
// sweep. Poll is how often to check (default 200ms).
func (d *Dispatcher) WaitDrained(ctx context.Context, poll time.Duration) (*scenario.SweepResult, error) {
	if poll <= 0 {
		poll = 200 * time.Millisecond
	}
	t := time.NewTicker(poll)
	defer t.Stop()
	serveErr := d.serveErr
	for {
		if d.queue.Done() {
			return d.queue.Merged()
		}
		select {
		case <-ctx.Done():
			return nil, ctx.Err()
		case err := <-serveErr:
			if err != nil {
				return nil, fmt.Errorf("dispatch: server died: %w", err)
			}
			serveErr = nil // graceful shutdown; keep polling the queue
		case <-t.C:
		}
	}
}
