package dispatch

import (
	"fmt"

	"sapsim/internal/sim"
)

// SnapshotRecord is the journaled pointer to a mid-run engine snapshot.
// The snapshot body itself — the versioned, digest-stamped wire form
// sapsim.EncodeSnapshotBytes produces — lives in the content-addressed
// store under Digest, exactly like an artifact body; the record binds the
// blob to its cell and capture instant. A re-booked cell warm-resumes
// from the newest intact snapshot, skipping everything up to At; when the
// blob is missing or damaged the cell falls back to the t=0 restart path
// the CheckpointRecord has always provided, never to a failure.
//
// Unlike a CheckpointRecord, which carries only the inputs needed to
// re-run a cell from scratch, a SnapshotRecord points at actual engine
// state — so its loss is cheap (a cold re-run) and the queue journals it
// with a plain append rather than an fsync.
type SnapshotRecord struct {
	// Format is FormatVersion at record time; Validate rejects mismatches
	// before a version-skewed worker's pointer reaches the journal.
	Format int
	// At is the simulated instant the snapshot captures.
	At sim.Time
	// Digest is the blob's SHA-256 address in the store.
	Digest string
}

// NewSnapshotRecord stamps a snapshot pointer with the current format.
func NewSnapshotRecord(at sim.Time, digest string) SnapshotRecord {
	return SnapshotRecord{Format: FormatVersion, At: at, Digest: digest}
}

// Validate rejects records from a different format version or without a
// usable blob address. It gates Queue.RecordSnapshot and journal replay.
func (r SnapshotRecord) Validate() error {
	if r.Format != FormatVersion {
		return fmt.Errorf("dispatch: snapshot record format %d, want %d", r.Format, FormatVersion)
	}
	if r.Digest == "" {
		return fmt.Errorf("dispatch: snapshot record missing blob digest")
	}
	if r.At <= 0 {
		return fmt.Errorf("dispatch: snapshot record at %v", r.At)
	}
	return nil
}
