package dispatch

import (
	"context"
	"errors"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sapsim/internal/artifact"
	"sapsim/internal/scenario"
	"sapsim/internal/sim"
)

func TestSnapshotRecordValidation(t *testing.T) {
	good := NewSnapshotRecord(6*sim.Hour, artifact.Digest([]byte("blob")))
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	skewed := good
	skewed.Format = FormatVersion + 1
	if err := skewed.Validate(); err == nil || !strings.Contains(err.Error(), "format") {
		t.Errorf("version-skewed record validated: %v", err)
	}
	blank := good
	blank.Digest = ""
	if blank.Validate() == nil {
		t.Error("digest-less record validated")
	}
	early := good
	early.At = 0
	if early.Validate() == nil {
		t.Error("t=0 record validated")
	}
}

// TestRecordSnapshotFlow: the queue journals a held cell's snapshot
// pointer only once its blob is in the store, supersedes it newest-wins
// (reclaiming the old blob), hands it to the next booking after a lease
// expiry, and reclaims the final blob when the cell completes.
func TestRecordSnapshotFlow(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	q, _ := newTestQueue(t, QueueOptions{Lease: time.Minute, now: clock.now})

	job, _, err := q.Book("w1", 1)
	if err != nil || job == nil {
		t.Fatalf("Book = %v, %v", job, err)
	}

	// A pointer whose blob was never uploaded is rejected.
	dangling := NewSnapshotRecord(6*sim.Hour, artifact.Digest([]byte("never uploaded")))
	if err := q.RecordSnapshot(job.ID, "w1", job.Attempt, dangling); !errors.Is(err, ErrMissingBlobs) {
		t.Fatalf("dangling snapshot pointer = %v, want ErrMissingBlobs", err)
	}

	first := putBody(t, q, "snapshot at 6h")
	if err := q.RecordSnapshot(job.ID, "w1", job.Attempt, NewSnapshotRecord(6*sim.Hour, first)); err != nil {
		t.Fatal(err)
	}
	// Strangers and stale nonces cannot record.
	second := putBody(t, q, "snapshot at 12h")
	rec12 := NewSnapshotRecord(12*sim.Hour, second)
	if err := q.RecordSnapshot(job.ID, "w2", job.Attempt, rec12); !errors.Is(err, ErrStale) {
		t.Fatalf("stranger snapshot = %v, want ErrStale", err)
	}
	if err := q.RecordSnapshot(job.ID, "w1", job.Attempt, rec12); err != nil {
		t.Fatal(err)
	}
	// Newest wins, and the superseded blob is reclaimed immediately.
	if st := q.Snapshot()[job.ID]; st.Snapshot == nil || st.Snapshot.At != 12*sim.Hour {
		t.Fatalf("status snapshot = %+v, want the 12h record", st.Snapshot)
	}
	if q.Store().Has(first) {
		t.Error("superseded snapshot blob not reclaimed")
	}
	if !q.Store().Has(second) {
		t.Fatal("live snapshot blob missing")
	}

	// Lease expiry: the re-booking carries the pointer for a warm resume.
	clock.advance(2 * time.Minute)
	rebooked, _, err := q.Book("w2", 1)
	if err != nil || rebooked == nil || rebooked.ID != job.ID {
		t.Fatalf("re-book = %+v, %v, want job %d", rebooked, err, job.ID)
	}
	if rebooked.LastSnapshot == nil || rebooked.LastSnapshot.Digest != second {
		t.Fatalf("re-booked cell carries %+v, want the 12h snapshot", rebooked.LastSnapshot)
	}

	// Completion is terminal: the snapshot blob is reclaimed, the store
	// converges to artifact bodies only.
	body := putBody(t, q, "fig5 body")
	if err := q.Complete(job.ID, "w2", rebooked.Attempt, RunResult{Digests: map[string]string{"fig5": body}}); err != nil {
		t.Fatal(err)
	}
	if q.Store().Has(second) {
		t.Error("terminal cell's snapshot blob not reclaimed")
	}
	if !q.Store().Has(body) {
		t.Error("artifact body reclaimed alongside the snapshot")
	}
}

// TestResumeSnapshotBlobAudit: Resume verifies snapshot blobs like
// artifact blobs but with the opposite consequence — a missing, truncated,
// or bit-flipped blob drops the pointer (reported distinctly in
// Recovered) and the cell restarts from t=0; it is never failed or
// charged an attempt. An intact blob survives the audit and its pointer
// rides the next booking.
func TestResumeSnapshotBlobAudit(t *testing.T) {
	cases := []struct {
		kind   string
		damage func(t *testing.T, path string)
	}{
		{"intact", func(t *testing.T, path string) {}},
		{"missing", func(t *testing.T, path string) {
			if err := os.Remove(path); err != nil {
				t.Fatal(err)
			}
		}},
		{"truncated", func(t *testing.T, path string) {
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, blob[:len(blob)/2], 0o644); err != nil {
				t.Fatal(err)
			}
		}},
		{"corrupt", func(t *testing.T, path string) {
			blob, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			blob[len(blob)/2] ^= 0x40
			if err := os.WriteFile(path, blob, 0o644); err != nil {
				t.Fatal(err)
			}
		}},
	}
	for _, tc := range cases {
		t.Run(tc.kind, func(t *testing.T) {
			clock := &fakeClock{t: time.Unix(1000, 0)}
			dir := t.TempDir()
			q, err := NewQueue(dir, testSpec(), QueueOptions{Lease: time.Minute, now: clock.now})
			if err != nil {
				t.Fatal(err)
			}
			job, _, err := q.Book("w1", 1)
			if err != nil || job == nil {
				t.Fatalf("Book = %v, %v", job, err)
			}
			digest := putBody(t, q, "encoded snapshot ("+tc.kind+")")
			if err := q.RecordSnapshot(job.ID, "w1", job.Attempt, NewSnapshotRecord(6*sim.Hour, digest)); err != nil {
				t.Fatal(err)
			}
			if err := q.Close(); err != nil {
				t.Fatal(err)
			}
			tc.damage(t, filepath.Join(dir, artifact.DirName, digest[:2], digest))

			q2, err := Resume(dir, QueueOptions{Lease: time.Minute})
			if err != nil {
				t.Fatal(err)
			}
			defer q2.Close()

			st := q2.Snapshot()[job.ID]
			if st.State != "queued" {
				t.Fatalf("cell is %s, want queued — snapshot damage must not fail the cell", st.State)
			}
			rebooked, _, err := q2.Book("w2", 1)
			if err != nil || rebooked == nil || rebooked.ID != job.ID {
				t.Fatalf("re-book = %+v, %v", rebooked, err)
			}
			if tc.kind == "intact" {
				if !strings.Contains(q2.Recovered(), "0 done, 1 requeued") {
					t.Errorf("recovered = %q", q2.Recovered())
				}
				if strings.Contains(q2.Recovered(), "snapshot") {
					t.Errorf("intact snapshot reported as damaged: %q", q2.Recovered())
				}
				if rebooked.LastSnapshot == nil || rebooked.LastSnapshot.Digest != digest {
					t.Fatalf("intact snapshot pointer lost: %+v", rebooked.LastSnapshot)
				}
				if !q2.Store().Has(digest) {
					t.Fatal("intact snapshot blob collected by resume GC")
				}
				return
			}
			want := "1 " + tc.kind + " snapshot blobs dropped (cells restart from t=0)"
			if !strings.Contains(q2.Recovered(), want) {
				t.Errorf("recovered = %q, want it to contain %q", q2.Recovered(), want)
			}
			if st.Snapshot != nil {
				t.Error("damaged snapshot pointer survived resume")
			}
			if rebooked.LastSnapshot != nil {
				t.Fatalf("re-booked cell carries damaged snapshot %+v, must restart cold", rebooked.LastSnapshot)
			}
			if q2.Store().Has(digest) {
				t.Error("damaged snapshot blob left in the store (would shadow nothing, but is garbage)")
			}
		})
	}
}

// TestWorkerWarmResumeByteIdentity: a worker dies after its snapshot is
// journaled; the re-booked cell warm-resumes from the blob on another
// worker, and the merged sweep is still byte-identical to the
// single-process reference — warm resume changes wall-clock cost, never
// results.
func TestWorkerWarmResumeByteIdentity(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-run end-to-end sweep")
	}
	spec := testSpec()
	ref := referenceSweep(t, spec)

	dir := t.TempDir()
	q, err := NewQueue(dir, spec, QueueOptions{Lease: 800 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer q.Close()
	d := NewDispatcher(q)
	d.Logf = t.Logf
	srv := httptest.NewServer(d.Handler())
	defer srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 3*time.Minute)
	defer cancel()

	// The victim dies the moment its first snapshot pointer is accepted —
	// guaranteed mid-cell, with resumable state already in the store.
	victimCtx, killVictim := context.WithCancel(ctx)
	var victimOnce sync.Once
	var victimMu sync.Mutex
	victimJob := -1
	victim := &Worker{
		Dispatcher:     srv.URL,
		ID:             "victim",
		HeartbeatEvery: 30 * time.Millisecond,
		Poll:           30 * time.Millisecond,
		Hooks: WorkerHooks{
			OnBook: func(job int, _ scenario.Key) {
				victimMu.Lock()
				if victimJob < 0 {
					victimJob = job
				}
				victimMu.Unlock()
			},
			OnSnapshot: func(int, SnapshotRecord) { victimOnce.Do(killVictim) },
		},
	}
	victimDone := make(chan error, 1)
	go func() { victimDone <- victim.Run(victimCtx) }()
	select {
	case <-victimCtx.Done():
	case <-time.After(time.Minute):
		t.Fatal("victim was never killed (no snapshot accepted)")
	}
	<-victimDone

	var resumeMu sync.Mutex
	resumed := map[int]sim.Time{}
	survivor := &Worker{
		Dispatcher:     srv.URL,
		ID:             "survivor",
		HeartbeatEvery: 30 * time.Millisecond,
		Poll:           30 * time.Millisecond,
		Hooks: WorkerHooks{
			OnResume: func(job int, at sim.Time) {
				resumeMu.Lock()
				resumed[job] = at
				resumeMu.Unlock()
			},
		},
	}
	if err := survivor.Run(ctx); err != nil {
		t.Fatal(err)
	}

	victimMu.Lock()
	abandoned := victimJob
	victimMu.Unlock()
	resumeMu.Lock()
	at, warm := resumed[abandoned]
	resumeMu.Unlock()
	if !warm {
		t.Fatalf("abandoned job %d was not warm-resumed (resumed: %v)", abandoned, resumed)
	}
	if at <= 0 {
		t.Fatalf("warm resume at %v", at)
	}
	t.Logf("job %d warm-resumed at %v", abandoned, at)

	merged, err := q.Merged()
	if err != nil {
		t.Fatal(err)
	}
	assertIdentical(t, merged, ref, "warm resume")
}
