package dispatch

import (
	"fmt"
	"path/filepath"

	"sapsim/internal/scenario"
	"sapsim/internal/trace"
)

// CellTraceID names the trace that groups every span of one sweep cell.
// It is stable across attempts, workers, and dispatcher restarts — the
// cell's identity, not any particular execution of it.
func CellTraceID(key scenario.Key) string {
	return fmt.Sprintf("%s/%s/seed%d", key.Scenario, key.Variant, key.Seed)
}

// cellSpanID is the cell's root span: queued at sweep creation, closed at
// its final result.
func cellSpanID(job int) string { return fmt.Sprintf("cell-%d", job) }

// attemptSpanID is one booking of a cell. BookResponse hands it to the
// worker as the parent for worker-side spans, so the dispatcher-derived
// attempt span and the worker's engine phases join up at merge time
// without any coordination.
func attemptSpanID(job, attempt int) string { return fmt.Sprintf("cell-%d/a%d", job, attempt) }

// TraceFromJournal reconstructs the sweep's full cell-lifecycle trace from
// dir's journal: per cell, a root span covering queued→done, queue-wait
// spans for every stretch spent waiting (initial wait and post-expiry
// re-queues), one attempt span per booking (annotated with worker and
// outcome), instants for journaled checkpoints and snapshot pointers, and
// every worker-shipped span record merged in. It reads only the journal —
// a crashed, resumed, and drained sweep reconstructs the same way a clean
// one does, which is the point: the trace survives everything the queue
// survives.
func TraceFromJournal(dir string) ([]trace.Span, error) {
	replay, err := replayJournal(filepath.Join(dir, JournalName))
	if err != nil {
		return nil, err
	}
	keys := replay.spec.Keys()

	type attempt struct {
		id      int // attempt number
		worker  string
		startTS int64
	}
	type cellState struct {
		queuedAt  int64 // start of the current queue-wait stretch
		open      *attempt
		waits     int
		instants  int
		lastTS    int64
		endTS     int64 // result time; 0 while unfinished
		sawResult bool
	}
	cells := make([]cellState, len(keys))
	for i := range cells {
		cells[i] = cellState{queuedAt: replay.headerTS, lastTS: replay.headerTS}
	}

	var spans []trace.Span
	closeAttempt := func(job int, c *cellState, ts int64, outcome string) {
		if c.open == nil {
			return
		}
		spans = append(spans, trace.Span{
			Trace:  CellTraceID(keys[job]),
			ID:     attemptSpanID(job, c.open.id),
			Parent: cellSpanID(job),
			Name:   "attempt",
			Start:  c.open.startTS,
			End:    ts,
			Attrs:  map[string]string{"worker": c.open.worker, "outcome": outcome},
		})
		c.open = nil
	}

	for _, rec := range replay.records {
		if rec.T == recArtifact {
			continue
		}
		if rec.Job < 0 || rec.Job >= len(cells) {
			continue
		}
		c := &cells[rec.Job]
		if rec.TS > c.lastTS {
			c.lastTS = rec.TS
		}
		tid := CellTraceID(keys[rec.Job])
		switch rec.T {
		case recState:
			switch rec.State {
			case JobBooked.String():
				c.waits++
				spans = append(spans, trace.Span{
					Trace: tid, ID: fmt.Sprintf("%s/q%d", cellSpanID(rec.Job), c.waits),
					Parent: cellSpanID(rec.Job), Name: "queue-wait",
					Start: c.queuedAt, End: rec.TS,
				})
				// A re-book without an intervening queued record (shouldn't
				// happen, but journals see crashes) closes the old attempt.
				closeAttempt(rec.Job, c, rec.TS, "superseded")
				c.open = &attempt{id: rec.Attempt, worker: rec.Worker, startTS: rec.TS}
			case JobQueued.String():
				closeAttempt(rec.Job, c, rec.TS, "requeued")
				c.queuedAt = rec.TS
				// A post-result re-queue (Resume's artifact audit)
				// invalidates the result; the root span re-opens.
				c.sawResult = false
				c.endTS = 0
			}
		case recCheckpoint, recSnapshot:
			name := "checkpoint"
			if rec.T == recSnapshot {
				name = "snapshot-record"
			}
			parent := cellSpanID(rec.Job)
			if c.open != nil {
				parent = attemptSpanID(rec.Job, c.open.id)
			}
			c.instants++
			spans = append(spans, trace.Span{
				Trace: tid, ID: fmt.Sprintf("%s/i%d", cellSpanID(rec.Job), c.instants),
				Parent: parent, Name: name, Start: rec.TS, End: rec.TS,
			})
		case recResult:
			outcome := "done"
			if rec.Run != nil && rec.Run.Err != "" {
				outcome = "failed"
			}
			closeAttempt(rec.Job, c, rec.TS, outcome)
			c.endTS = rec.TS
			c.sawResult = true
		case recSpan:
			if rec.Span != nil && rec.Span.Validate() == nil {
				spans = append(spans, *rec.Span)
			}
		}
	}

	for job := range cells {
		c := &cells[job]
		// An attempt the journal never closed (in flight at the tail, or
		// the crash ate the result) ends at the cell's last record.
		closeAttempt(job, c, c.lastTS, "interrupted")
		end := c.endTS
		if !c.sawResult {
			end = c.lastTS
		}
		spans = append(spans, trace.Span{
			Trace: CellTraceID(keys[job]), ID: cellSpanID(job), Name: "cell",
			Start: replay.headerTS, End: end,
		})
	}
	return trace.Merge(spans), nil
}
