package dispatch

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"sapsim/internal/trace"
)

// TestTraceSurvivesCrashResume: a cell booked, partially traced, and lost
// to a dispatcher crash must reassemble into one well-formed trace after
// Resume re-books it and a second worker finishes — every span parented
// into a single root per cell, no orphans, both attempts visible.
func TestTraceSurvivesCrashResume(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	dir := t.TempDir()
	q, err := NewQueue(dir, testSpec(), QueueOptions{Lease: time.Minute, now: clock.now})
	if err != nil {
		t.Fatal(err)
	}

	clock.advance(2 * time.Second)
	job, _, err := q.Book("w1", 1)
	if err != nil || job == nil {
		t.Fatalf("Book: %v, %v", job, err)
	}
	tid := CellTraceID(job.Key)
	parent := attemptSpanID(job.ID, job.Attempt)

	// First holder ships a build span and a checkpoint, then the
	// dispatcher dies with the cell in flight.
	b1 := trace.NewBuilder(tid, parent, parent)
	start := clock.t
	clock.advance(time.Second)
	b1.Add("build", start, clock.t, nil)
	if err := q.RecordSpans(job.ID, "w1", job.Attempt, b1.Drain()); err != nil {
		t.Fatal(err)
	}
	// A stale reporter (wrong attempt nonce) must be rejected, or a zombie
	// would pollute the re-booked attempt's trace.
	zombie := trace.NewBuilder(tid, parent, parent+"-zombie")
	zombie.Add("run", start, clock.t, nil)
	if err := q.RecordSpans(job.ID, "w1", job.Attempt+1, zombie.Drain()); !errors.Is(err, ErrStale) {
		t.Fatalf("stale RecordSpans = %v, want ErrStale", err)
	}
	ckpt := NewCheckpointRecord(job.Key, testSpec().Base, checkpointFixture())
	if err := q.Progress(job.ID, "w1", job.Attempt, &ckpt); err != nil {
		t.Fatal(err)
	}
	if err := q.Close(); err != nil {
		t.Fatal(err)
	}

	// Resume re-queues the in-flight cell; a survivor re-books and runs
	// it to completion, shipping spans concurrently (exercised under
	// -race in CI).
	clock.advance(3 * time.Second)
	q2, err := Resume(dir, QueueOptions{Lease: time.Minute, now: clock.now})
	if err != nil {
		t.Fatal(err)
	}
	defer q2.Close()
	clock.advance(time.Second)
	job2, _, err := q2.Book("w2", 1)
	if err != nil || job2 == nil {
		t.Fatalf("re-book: %v, %v", job2, err)
	}
	if job2.ID != job.ID || job2.Attempt != 2 {
		t.Fatalf("re-book got job %d attempt %d, want job %d attempt 2", job2.ID, job2.Attempt, job.ID)
	}
	parent2 := attemptSpanID(job2.ID, job2.Attempt)
	var wg sync.WaitGroup
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			b := trace.NewBuilder(tid, parent2, fmt.Sprintf("%s/g%d", parent2, g))
			b.Add("run", start, start.Add(time.Second), nil)
			if err := q2.RecordSpans(job2.ID, "w2", job2.Attempt, b.Drain()); err != nil {
				t.Error(err)
			}
		}(g)
	}
	wg.Wait()
	// One span references a parent that never made it into the journal
	// (the crash ate it): the merge must adopt it, not detach it.
	orphan := []trace.Span{{Trace: tid, ID: parent2 + "/lost-child", Parent: parent + "/s99",
		Name: "snapshot-upload", Start: trace.Micros(start), End: trace.Micros(start)}}
	if err := q2.RecordSpans(job2.ID, "w2", job2.Attempt, orphan); err != nil {
		t.Fatal(err)
	}
	clock.advance(2 * time.Second)
	digest := putBody(t, q2, "fig5 body")
	if err := q2.Complete(job2.ID, "w2", job2.Attempt,
		RunResult{Digests: map[string]string{"fig5": digest}}); err != nil {
		t.Fatal(err)
	}

	spans, err := TraceFromJournal(dir)
	if err != nil {
		t.Fatal(err)
	}

	ids := map[string]bool{}
	var roots, attempts, workerSpans int
	var cellRoot trace.Span
	for _, s := range spans {
		if s.Trace != tid {
			continue
		}
		ids[s.ID] = true
		switch {
		case s.Parent == "":
			roots++
			cellRoot = s
		case s.Name == "attempt":
			attempts++
		}
		if strings.HasPrefix(s.ID, parent+"/") || strings.HasPrefix(s.ID, parent2+"/") {
			workerSpans++
		}
	}
	if roots != 1 {
		t.Fatalf("cell trace has %d roots, want exactly 1", roots)
	}
	if cellRoot.ID != cellSpanID(job.ID) || cellRoot.Name != "cell" {
		t.Fatalf("root span = %+v, want the cell span", cellRoot)
	}
	if attempts != 2 {
		t.Fatalf("%d attempt spans, want 2 (one per booking across the crash)", attempts)
	}
	if workerSpans != 4 {
		t.Fatalf("%d worker spans, want 4 (build + 2 runs + adopted orphan)", workerSpans)
	}
	// No orphans: every parent must resolve within the trace.
	for _, s := range spans {
		if s.Trace != tid || s.Parent == "" {
			continue
		}
		if !ids[s.Parent] {
			t.Errorf("span %s has unresolved parent %s", s.ID, s.Parent)
		}
		if s.Start < cellRoot.Start || s.End > cellRoot.End {
			t.Errorf("span %s [%d,%d] escapes the cell root [%d,%d]",
				s.ID, s.Start, s.End, cellRoot.Start, cellRoot.End)
		}
	}
	// Attempt outcomes: the crashed booking is requeued, the second done.
	for _, s := range spans {
		if s.Name != "attempt" || s.Trace != tid {
			continue
		}
		want := map[string]string{
			attemptSpanID(job.ID, 1): "requeued",
			attemptSpanID(job.ID, 2): "done",
		}[s.ID]
		if s.Attrs["outcome"] != want {
			t.Errorf("attempt %s outcome = %q, want %q", s.ID, s.Attrs["outcome"], want)
		}
	}

	// The full journal-derived trace (all four cells) must export cleanly.
	var buf bytes.Buffer
	if err := trace.WriteChromeTrace(&buf, spans); err != nil {
		t.Fatalf("export: %v", err)
	}
	if buf.Len() == 0 {
		t.Fatal("empty trace export")
	}
}

// TestRecordSpansValidation: malformed and oversized span batches are
// rejected before they reach the journal.
func TestRecordSpansValidation(t *testing.T) {
	clock := &fakeClock{t: time.Unix(1000, 0)}
	q, _ := newTestQueue(t, QueueOptions{Lease: time.Minute, now: clock.now})
	job, _, err := q.Book("w1", 1)
	if err != nil || job == nil {
		t.Fatalf("Book: %v, %v", job, err)
	}
	if err := q.RecordSpans(job.ID, "w1", job.Attempt, nil); err != nil {
		t.Fatalf("empty batch should be a no-op, got %v", err)
	}
	bad := []trace.Span{{Trace: "", ID: "x", Name: "y"}}
	if err := q.RecordSpans(job.ID, "w1", job.Attempt, bad); err == nil {
		t.Fatal("span without a trace ID accepted")
	}
	huge := make([]trace.Span, maxSpansPerReport+1)
	for i := range huge {
		huge[i] = trace.Span{Trace: "t", ID: "s", Name: "n"}
	}
	if err := q.RecordSpans(job.ID, "w1", job.Attempt, huge); err == nil {
		t.Fatal("oversized span batch accepted")
	}
}
