package dispatch

import (
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"sync"
	"time"

	"sapsim"
	"sapsim/internal/artifact"
	"sapsim/internal/fleetmetrics"
	"sapsim/internal/scenario"
	"sapsim/internal/sim"
	"sapsim/internal/trace"
)

// errDrained signals the dispatcher reported the sweep complete (410).
var errDrained = errors.New("dispatch: sweep drained")

// WorkerHooks observe a worker's lifecycle; tests use them to kill a
// worker mid-cell deterministically.
type WorkerHooks struct {
	// OnBook fires after a cell is booked, before it runs.
	OnBook func(job int, key scenario.Key)
	// OnCheckpoint fires when the running cell takes a checkpoint (on the
	// session's event-dispatch goroutine, at the spec's simulated-time
	// cadence — guaranteed mid-run, however fast the cell runs on the
	// wall clock).
	OnCheckpoint func(job int, rec CheckpointRecord)
	// OnHeartbeat fires after each accepted heartbeat.
	OnHeartbeat func(job int, ckpt *CheckpointRecord)
	// OnUpload fires per artifact body shipped to the dispatcher's store;
	// deduplicated reports blobs the store already held (skipped via the
	// HEAD probe).
	OnUpload func(job int, id, digest string, deduplicated bool)
	// OnSnapshot fires after a mid-run engine snapshot is accepted by the
	// dispatcher (blob uploaded, pointer journaled).
	OnSnapshot func(job int, rec SnapshotRecord)
	// OnResume fires when a booked cell warm-resumes from a previous
	// holder's snapshot instead of starting at t=0.
	OnResume func(job int, at sim.Time)
}

// Worker is the simd half of the dispatcher split: a stateless loop that
// books cells, runs each through the step-driven sapsim Session, streams
// coalesced Progress/Checkpoint events back as lease-renewing heartbeats,
// uploads every artifact body into the dispatcher's content-addressed
// store (HEAD-deduplicated: blobs the store already holds never travel),
// and completes with the cell's metrics plus digests. Workers hold no
// sweep state — kill one at any point and its cells re-book elsewhere
// after the lease expires.
type Worker struct {
	// Dispatcher is the base URL (http://host:port).
	Dispatcher string
	// ID names the worker in bookings and the journal. Defaults to
	// host:pid.
	ID string
	// HeartbeatEvery is the wall-clock heartbeat cadence (default 2s; the
	// lease must comfortably exceed it).
	HeartbeatEvery time.Duration
	// Poll is the idle re-poll interval when no cell is free (default
	// 500ms). It is also the starting point of the book-failure backoff.
	Poll time.Duration
	// BookBackoffMax caps the exponential backoff between failed /book
	// attempts (default 15s). On transient dispatcher errors the retry
	// delay doubles from Poll up to this cap, with jitter, and resets the
	// moment a book succeeds — so a fleet of workers facing a restarted
	// dispatcher re-books spread out instead of stampeding in lockstep.
	BookBackoffMax time.Duration
	// Concurrency is how many cells run at once (default 1). It is
	// advertised to the queue as the worker's booking capacity, so an
	// N-job worker holds up to N concurrent leases and drains the matrix
	// proportionally faster.
	Concurrency int
	// AbandonBackoff is how long a slot cools down after its cell is
	// abandoned and released (default 5s). The released cell re-books
	// immediately — on another worker; the cool-down keeps a worker with
	// a persistently failing path (say, its uploads rejected) from
	// re-booking its own releases in a tight loop and burning the cell's
	// whole attempt budget in milliseconds.
	AbandonBackoff time.Duration
	// Client overrides the HTTP client.
	Client *http.Client
	// Logf, when set, receives one line per cell transition.
	Logf func(format string, args ...any)
	// Hooks observe the lifecycle (tests).
	Hooks WorkerHooks
	// DisableSnapshots turns off mid-run snapshot capture and warm
	// resume: cells always start at t=0 and upload no snapshot blobs
	// (simworker -snapshots=false). Correctness is unaffected — snapshots
	// only save the re-run prefix after a worker death.
	DisableSnapshots bool
	// Artifacts renders the cell's artifact bodies, artifact ID → text
	// (default sapsim.ArtifactSet — all 18 paper artifacts). Digests are
	// taken over these bodies, and the bodies ship to the dispatcher's
	// store.
	Artifacts func(*sapsim.Result) (map[string]string, error)
	// Metrics, when set, receives the worker's fleet metrics (in-flight
	// vs capacity, per-cell wall time, heartbeat RTT, book failures,
	// upload dedup) — simworker serves it on its -metrics listener.
	Metrics *fleetmetrics.Registry

	// m holds the registered instruments (nil when Metrics is unset).
	m *workerMetrics
	// hostname, sleep, and randFloat are test seams: identity-collision
	// and backoff tests substitute deterministic implementations.
	hostname  func() (string, error)
	sleep     func(ctx context.Context, d time.Duration) error
	randFloat func() float64
}

func (w *Worker) fill() {
	if w.hostname == nil {
		w.hostname = os.Hostname
	}
	if w.sleep == nil {
		w.sleep = func(ctx context.Context, d time.Duration) error {
			t := time.NewTimer(d)
			defer t.Stop()
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-t.C:
				return nil
			}
		}
	}
	if w.randFloat == nil {
		w.randFloat = rand.Float64
	}
	if w.ID == "" {
		host, err := w.hostname()
		if err != nil || host == "" {
			// The queue keys leases and attempt nonces by worker ID, so two
			// workers must never share one. A fixed "worker" fallback would
			// collide the moment two hostname-less containers with PID 1
			// joined the same sweep — draw a random suffix instead.
			var b [4]byte
			if _, rerr := crand.Read(b[:]); rerr != nil {
				b = [4]byte{byte(os.Getpid()), byte(os.Getpid() >> 8), byte(os.Getpid() >> 16), byte(os.Getpid() >> 24)}
			}
			host = fmt.Sprintf("anon-%x", b)
		}
		w.ID = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if w.HeartbeatEvery <= 0 {
		w.HeartbeatEvery = 2 * time.Second
	}
	if w.Poll <= 0 {
		w.Poll = 500 * time.Millisecond
	}
	if w.BookBackoffMax <= 0 {
		w.BookBackoffMax = 15 * time.Second
	}
	if w.BookBackoffMax < w.Poll {
		w.BookBackoffMax = w.Poll
	}
	if w.Concurrency <= 0 {
		w.Concurrency = 1
	}
	if w.AbandonBackoff <= 0 {
		w.AbandonBackoff = 5 * time.Second
	}
	if w.Client == nil {
		w.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if w.Artifacts == nil {
		w.Artifacts = sapsim.ArtifactSet
	}
	if w.Metrics != nil && w.m == nil {
		w.m = newWorkerMetrics(w.Metrics, w.ID, w.Concurrency)
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Run books and executes cells until the dispatcher reports the sweep
// drained (returns nil) or ctx is canceled (returns ctx.Err()). All
// bookings happen under one worker ID with Concurrency advertised as
// capacity; up to that many cells run at once. Correctness against
// zombies — a cell whose lease expired and was re-booked, possibly back
// to this very worker — rests on the per-booking Attempt nonce every
// heartbeat and completion carries.
func (w *Worker) Run(ctx context.Context) error {
	w.fill()
	slots := make(chan struct{}, w.Concurrency)
	var wg sync.WaitGroup
	defer wg.Wait()
	backoff := w.Poll
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		select {
		case slots <- struct{}{}:
		case <-ctx.Done():
			return ctx.Err()
		}
		booked, err := w.book(ctx, w.ID)
		switch {
		case errors.Is(err, errDrained):
			<-slots
			return nil
		case err != nil:
			// Transient dispatcher unavailability: jittered exponential
			// backoff, doubling from Poll up to BookBackoffMax. The jitter
			// (uniform over [backoff/2, backoff)) decorrelates a fleet whose
			// workers all saw the same dispatcher restart — without it they
			// retry in lockstep and the recovering dispatcher eats a
			// thundering herd at every interval.
			if w.m != nil {
				w.m.bookFails.Inc()
			}
			w.logf("worker %s: book: %v (retry in ~%s)", w.ID, err, backoff)
			<-slots
			delay := backoff/2 + time.Duration(w.randFloat()*float64(backoff/2))
			if err := w.sleep(ctx, delay); err != nil {
				return err
			}
			if backoff *= 2; backoff > w.BookBackoffMax {
				backoff = w.BookBackoffMax
			}
			continue
		case booked == nil:
			// The dispatcher answered (nothing free right now): it is
			// healthy, so poll at the normal cadence and reset the backoff.
			backoff = w.Poll
			if w.m != nil {
				w.m.booksEmpty.Inc()
			}
			<-slots
			if err := w.sleep(ctx, w.Poll); err != nil {
				return err
			}
			continue
		}
		backoff = w.Poll
		if w.m != nil {
			w.m.booksBooked.Inc()
		}
		if w.Hooks.OnBook != nil {
			w.Hooks.OnBook(booked.Job, scenario.Key{Scenario: booked.Key.Scenario,
				Variant: booked.Key.Variant, Seed: booked.Key.Seed})
		}
		wg.Add(1)
		go func(booked *BookResponse) {
			defer wg.Done()
			defer func() { <-slots }()
			if w.m != nil {
				w.m.inflight.Inc()
			}
			start := time.Now()
			err := w.runCell(ctx, w.ID, booked)
			if w.m != nil {
				w.m.inflight.Dec()
				w.m.cellSecs.Observe(time.Since(start).Seconds())
			}
			if err != nil && ctx.Err() == nil {
				// Abandon the cell, handing the lease back so it re-books
				// immediately — otherwise the queue counts it against this
				// worker's capacity until the lease times out, idling a
				// slot. Best-effort: if the lease is already lost (409) or
				// the dispatcher is unreachable, expiry re-books it anyway.
				if w.m != nil {
					w.m.abandoned.Inc()
				}
				w.logf("worker %s: job %d abandoned: %v", w.ID, booked.Job, err)
				var ok struct{ OK bool }
				_, _ = w.post(ctx, "/release",
					ReleaseRequest{Worker: w.ID, Job: booked.Job, Attempt: booked.Attempt,
						Reason: err.Error()}, &ok)
				// Cool the slot down so a worker-local failure doesn't
				// re-book its own release in a tight loop; healthy workers
				// grab the cell meanwhile.
				select {
				case <-ctx.Done():
				case <-time.After(w.AbandonBackoff):
				}
			} else if err == nil && w.m != nil {
				w.m.completed.Inc()
			}
		}(booked)
	}
}

// book asks for the next cell: (nil, nil) means nothing free right now.
func (w *Worker) book(ctx context.Context, id string) (*BookResponse, error) {
	var resp BookResponse
	status, err := w.post(ctx, "/book", BookRequest{Worker: id, Capacity: w.Concurrency}, &resp)
	switch {
	case err != nil:
		return nil, err
	case status == http.StatusGone:
		return nil, errDrained
	case status == http.StatusNoContent:
		return nil, nil
	case status != http.StatusOK:
		return nil, fmt.Errorf("dispatch: book: status %d", status)
	}
	return &resp, nil
}

// runCell executes one booked cell through a sapsim Session, heartbeating
// the latest coalesced checkpoint at HeartbeatEvery, ships the artifact
// bodies, and completes it.
func (w *Worker) runCell(ctx context.Context, id string, booked *BookResponse) error {
	key := scenario.Key{Scenario: booked.Key.Scenario, Variant: booked.Key.Variant, Seed: booked.Key.Seed}
	spec := Spec{Base: booked.Base}
	spec.Base.Seed = key.Seed
	cfg, err := spec.CellConfig(key)
	if err != nil {
		// The cell cannot be built on this worker (unknown scenario or
		// variant name — version skew): report it as a failed run.
		return w.complete(ctx, id, booked, RunResult{Err: err.Error()}, nil, nil)
	}

	w.logf("worker %s: job %d (%s/%s seed %d) starting", id, booked.Job,
		key.Scenario, key.Variant, key.Seed)

	// Cell context: canceled when the dispatcher declares the lease lost,
	// so the engine unwinds mid-tick instead of wasting a dead cell.
	cellCtx, cancelCell := context.WithCancelCause(ctx)
	defer cancelCell(nil)

	// latest holds the freshest checkpoint, pending the freshest encoded
	// engine snapshot; the heartbeat loop posts them at its own wall-clock
	// pace — Progress events coalesce in the session dispatcher,
	// checkpoints and snapshots coalesce here (newest wins).
	var (
		mu      sync.Mutex
		latest  *CheckpointRecord
		pending *pendingSnapshot
	)
	// Span collection: the dispatcher handed us trace context (Trace is
	// the cell's trace ID, Span the attempt span it derives from the
	// journal), so engine phases and upload work become spans parented
	// under the attempt, shipped on heartbeats and the completion. An
	// empty Trace (older dispatcher) disables collection entirely. The
	// builder is guarded by mu — the session's event-dispatch goroutine,
	// the heartbeat loop, and this goroutine all touch it.
	var spanb *trace.Builder
	if booked.Trace != "" {
		spanb = trace.NewBuilder(booked.Trace, booked.Span, booked.Span)
	}
	addSpan := func(name string, start, end time.Time, attrs map[string]string) {
		if spanb == nil {
			return
		}
		mu.Lock()
		spanb.Add(name, start, end, attrs)
		mu.Unlock()
	}
	drainSpans := func() []trace.Span {
		if spanb == nil {
			return nil
		}
		mu.Lock()
		defer mu.Unlock()
		return spanb.Drain()
	}
	requeueSpans := func(batch []trace.Span) {
		if spanb == nil || len(batch) == 0 {
			return
		}
		mu.Lock()
		spanb.Requeue(batch)
		mu.Unlock()
	}
	every := sim.Time(booked.CheckpointEvery)
	observe := sapsim.WithObserverFunc(func(ev sapsim.SessionEvent) {
		switch c := ev.(type) {
		case sapsim.SessionPhase:
			addSpan(c.Name, c.Start, c.End, map[string]string{
				"sim_from": fmt.Sprint(c.FromSim), "sim_to": fmt.Sprint(c.ToSim)})
		case sapsim.Checkpoint:
			rec := NewCheckpointRecord(key, spec.Base, c)
			mu.Lock()
			latest = &rec
			mu.Unlock()
			if w.Hooks.OnCheckpoint != nil {
				w.Hooks.OnCheckpoint(booked.Job, rec)
			}
		case sapsim.SnapshotReady:
			// Encode here, on the session's event-dispatch goroutine; the
			// heartbeat loop ships the blob and reports the pointer.
			encStart := time.Now()
			blob, err := sapsim.EncodeSnapshotBytes(c.Snapshot)
			if err != nil {
				w.logf("worker %s: job %d snapshot encode: %v", id, booked.Job, err)
				return
			}
			addSpan("snapshot-encode", encStart, time.Now(), nil)
			mu.Lock()
			pending = &pendingSnapshot{at: c.At, digest: artifact.Digest(blob), blob: blob}
			mu.Unlock()
		}
	})
	buildSession := func(snap *sapsim.Snapshot) (*sapsim.Session, error) {
		opts := []sapsim.Option{sapsim.WithContext(cellCtx), sapsim.WithCheckpointEvery(every), observe}
		if !w.DisableSnapshots {
			opts = append(opts, sapsim.WithSnapshotEvery(every))
		}
		if snap != nil {
			return sapsim.ResumeFromSnapshot(cfg, snap, opts...)
		}
		return sapsim.NewSession(cfg, opts...)
	}

	// Warm resume: a previous holder of this cell uploaded a snapshot
	// before dying. Every failure on this path — fetch, decode, config
	// mismatch at build — degrades to the cold t=0 start the checkpoint
	// record path always provided; a snapshot saves the replayed prefix,
	// it is never a correctness dependency.
	var session *sapsim.Session
	if booked.Snapshot != nil && !w.DisableSnapshots {
		if snap, err := w.fetchSnapshot(cellCtx, booked.Snapshot); err != nil {
			w.logf("worker %s: job %d snapshot %s unusable (%v); cold restart from t=0",
				id, booked.Job, booked.Snapshot.Digest, err)
		} else if s, err := buildSession(snap); err != nil {
			w.logf("worker %s: job %d snapshot session (%v); cold restart from t=0", id, booked.Job, err)
		} else if err := s.Build(); err != nil {
			s.Close()
			w.logf("worker %s: job %d snapshot restore (%v); cold restart from t=0", id, booked.Job, err)
		} else {
			session = s
			w.logf("worker %s: job %d resuming from snapshot at %v", id, booked.Job, snap.At)
			if w.Hooks.OnResume != nil {
				w.Hooks.OnResume(booked.Job, snap.At)
			}
		}
	}
	if session == nil {
		s, err := buildSession(nil)
		if err != nil {
			return w.complete(ctx, id, booked, RunResult{Err: err.Error()}, drainSpans(), nil)
		}
		session = s
	}
	defer session.Close()

	// Heartbeat loop: renew the lease even before the first checkpoint,
	// and keep renewing through artifact rendering and upload — the
	// post-simulation work can outlast a lease on slow links, and a cell
	// that expires there re-runs from scratch just to hit the same wall.
	// The loop is stopped right before the completion posts: a heartbeat
	// racing an accepted /complete would see 409 on the done job and
	// cancel the cell context out from under the in-flight response,
	// misreporting a finished cell as abandoned.
	hbDone := make(chan struct{})
	var hbWG sync.WaitGroup
	var hbOnce sync.Once
	stopHeartbeat := func() {
		hbOnce.Do(func() {
			close(hbDone)
			hbWG.Wait()
		})
	}
	defer stopHeartbeat()
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(w.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-cellCtx.Done():
				return
			case <-t.C:
			}
			mu.Lock()
			ckpt := latest
			snap := pending
			mu.Unlock()
			// Ship the newest snapshot blob before reporting its pointer:
			// the dispatcher rejects a pointer whose blob is not in the
			// store. Upload failures are transient — the snapshot stays
			// pending and the next heartbeat retries (or ships a newer one).
			var snapRec *SnapshotRecord
			if snap != nil {
				upStart := time.Now()
				if err := w.uploadSnapshot(cellCtx, snap); err != nil {
					w.logf("worker %s: job %d snapshot upload: %v", id, booked.Job, err)
					snap = nil
				} else {
					addSpan("snapshot-upload", upStart, time.Now(), nil)
					rec := NewSnapshotRecord(snap.at, snap.digest)
					snapRec = &rec
				}
			}
			spanBatch := drainSpans()
			var ok struct{ OK bool }
			hbStart := time.Now()
			status, err := w.post(cellCtx, "/progress",
				ProgressRequest{Worker: id, Job: booked.Job, Attempt: booked.Attempt,
					Checkpoint: ckpt, Snapshot: snapRec, Spans: spanBatch}, &ok)
			if err != nil {
				// Transient; the lease outlives several heartbeats. The spans
				// go back in the buffer — the next report re-ships them.
				requeueSpans(spanBatch)
				continue
			}
			if w.m != nil {
				w.m.heartbeat.Observe(time.Since(hbStart).Seconds())
			}
			if status == http.StatusConflict {
				cancelCell(ErrStale)
				return
			}
			if status != http.StatusOK {
				// Rejected heartbeat (bad request, server error): the lease
				// is not renewing. Log it — if this persists the lease
				// expires, the cell re-books elsewhere, and the next
				// heartbeat's 409 cancels this run.
				requeueSpans(spanBatch)
				w.logf("worker %s: job %d heartbeat rejected: status %d", id, booked.Job, status)
			}
			if status == http.StatusOK {
				// The checkpoint is journaled; don't re-send an unchanged
				// one — later heartbeats renew the lease with a nil
				// checkpoint until the session produces a fresh snapshot,
				// keeping the WAL proportional to state changes, not wall
				// time.
				mu.Lock()
				if latest == ckpt {
					latest = nil
				}
				if snap != nil && pending == snap {
					pending = nil
				}
				mu.Unlock()
				if snap != nil && w.Hooks.OnSnapshot != nil {
					w.Hooks.OnSnapshot(booked.Job, *snapRec)
				}
				if w.Hooks.OnHeartbeat != nil {
					w.Hooks.OnHeartbeat(booked.Job, ckpt)
				}
			}
		}
	}()

	runErr := session.RunToCompletion()

	if runErr != nil {
		if cause := context.Cause(cellCtx); errors.Is(cause, ErrStale) {
			return fmt.Errorf("job %d: %w", booked.Job, ErrStale)
		}
		if cellCtx.Err() != nil {
			return cellCtx.Err()
		}
		// Deterministic run failure: record it, exactly as scenario.Sweep
		// records the cell's error string.
		stopHeartbeat()
		return w.complete(ctx, id, booked, RunResult{Err: runErr.Error()}, drainSpans(), nil)
	}

	res, err := session.Result()
	if err != nil {
		stopHeartbeat()
		return w.complete(ctx, id, booked, RunResult{Err: err.Error()}, drainSpans(), nil)
	}
	run := RunResult{Metrics: scenario.Extract(res)}
	renderStart := time.Now()
	bodies, err := w.Artifacts(res)
	addSpan("artifact-render", renderStart, time.Now(), nil)
	if err != nil {
		run.Err = "fingerprint: " + err.Error()
	} else {
		digests := artifact.DigestSet(bodies)
		run.Digests = digests
		// Upload on the cell context: a heartbeat 409 during the upload
		// window (the lease is renewing through it, but a crashed-and-
		// resumed dispatcher forgets the booking) cancels the remaining
		// transfers instead of shipping bodies toward a doomed complete.
		upStart := time.Now()
		if err := w.upload(cellCtx, booked.Job, bodies, digests); err != nil {
			if cause := context.Cause(cellCtx); errors.Is(cause, ErrStale) {
				return fmt.Errorf("job %d: %w", booked.Job, ErrStale)
			}
			// Otherwise the dispatcher would reject the completion anyway
			// (412); let the lease expire and the cell re-book.
			return fmt.Errorf("job %d: upload: %w", booked.Job, err)
		}
		addSpan("artifact-upload", upStart, time.Now(), nil)
	}
	// Ship the cell's engine self-profile alongside the completion: encode,
	// upload the blob, and attach the pointer. Best-effort — a cell whose
	// profile cannot travel still completes; only its attribution goes
	// missing from analyze -engprof.
	var profRec *ProfileRecord
	if prof, perr := session.Profile(); perr == nil && prof != nil {
		if blob, eerr := sapsim.EncodeProfileBytes(prof); eerr != nil {
			w.logf("worker %s: job %d profile encode: %v", id, booked.Job, eerr)
		} else {
			digest := artifact.Digest(blob)
			upStart := time.Now()
			if uerr := w.uploadBlob(cellCtx, digest, blob); uerr != nil {
				w.logf("worker %s: job %d profile upload: %v (completing without attribution)",
					id, booked.Job, uerr)
			} else {
				addSpan("profile-upload", upStart, time.Now(), nil)
				rec := NewProfileRecord(digest, int64(len(blob)))
				profRec = &rec
				if w.m != nil {
					w.m.observeProfile(prof)
				}
			}
		}
	}
	w.logf("worker %s: job %d finished", id, booked.Job)
	stopHeartbeat()
	if err := w.complete(cellCtx, id, booked, run, drainSpans(), profRec); err != nil {
		if cause := context.Cause(cellCtx); errors.Is(cause, ErrStale) {
			return fmt.Errorf("job %d: %w", booked.Job, ErrStale)
		}
		return err
	}
	return nil
}

// pendingSnapshot is an encoded engine snapshot awaiting upload: the wire
// blob, its content address, and the simulated instant it captures.
type pendingSnapshot struct {
	at     sim.Time
	digest string
	blob   []byte
}

// uploadSnapshot ships one encoded snapshot blob into the dispatcher's
// store, HEAD-deduplicated like artifact bodies (a re-booked cell that
// snapshots at an instant the previous holder already covered produces
// the identical blob).
func (w *Worker) uploadSnapshot(ctx context.Context, s *pendingSnapshot) error {
	return w.uploadBlob(ctx, s.digest, s.blob)
}

// uploadBlob ships one content-addressed blob (snapshot or profile wire
// form) into the dispatcher's store, HEAD-deduplicated.
func (w *Worker) uploadBlob(ctx context.Context, digest string, blob []byte) error {
	status, err := w.do(ctx, http.MethodHead, "/artifact/"+digest, nil)
	if err != nil {
		return err
	}
	if status == http.StatusOK {
		return nil // the store already holds this blob
	}
	status, err = w.do(ctx, http.MethodPut, "/artifact/"+digest, blob)
	if err != nil {
		return err
	}
	if status != http.StatusCreated && status != http.StatusOK {
		return fmt.Errorf("dispatch: blob %s rejected: status %d", digest, status)
	}
	return nil
}

// fetchSnapshot downloads and decodes the snapshot a BookResponse points
// at. Any failure — missing blob, short read, bit rot the decode's digest
// check catches — surfaces as an error the caller degrades to a cold
// start.
func (w *Worker) fetchSnapshot(ctx context.Context, rec *SnapshotRecord) (*sapsim.Snapshot, error) {
	if err := rec.Validate(); err != nil {
		return nil, err
	}
	body, status, err := w.fetch(ctx, "/artifact/"+rec.Digest)
	if err != nil {
		return nil, err
	}
	if status != http.StatusOK {
		return nil, fmt.Errorf("dispatch: snapshot blob fetch: status %d", status)
	}
	if got := artifact.Digest(body); got != rec.Digest {
		return nil, fmt.Errorf("dispatch: snapshot blob hashes to %s, not %s", got, rec.Digest)
	}
	return sapsim.DecodeSnapshotBytes(body)
}

// fetch sends one GET and returns the response body (blob downloads).
func (w *Worker) fetch(ctx context.Context, path string) ([]byte, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, w.Dispatcher+path, nil)
	if err != nil {
		return nil, 0, err
	}
	resp, err := w.Client.Do(req)
	if err != nil {
		return nil, 0, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	return body, resp.StatusCode, err
}

// upload ships the cell's artifact bodies into the dispatcher's store,
// deduplicating two ways: per distinct digest within the cell, and via a
// HEAD probe against blobs earlier cells (on any worker) already
// delivered — the static tables identical across every cell of a sweep
// travel once per sweep, not once per cell.
func (w *Worker) upload(ctx context.Context, job int, bodies, digests map[string]string) error {
	ids := make([]string, 0, len(bodies))
	for id := range bodies {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	shipped := map[string]bool{}
	for _, id := range ids {
		digest := digests[id]
		if shipped[digest] {
			continue
		}
		shipped[digest] = true
		status, err := w.do(ctx, http.MethodHead, "/artifact/"+digest, nil)
		if err != nil {
			return err
		}
		if status == http.StatusOK {
			if w.m != nil {
				w.m.upDedup.Inc()
			}
			if w.Hooks.OnUpload != nil {
				w.Hooks.OnUpload(job, id, digest, true)
			}
			continue // the store already holds this blob
		}
		status, err = w.do(ctx, http.MethodPut, "/artifact/"+digest, []byte(bodies[id]))
		if err != nil {
			return err
		}
		if status != http.StatusCreated && status != http.StatusOK {
			return fmt.Errorf("dispatch: artifact %s rejected: status %d", id, status)
		}
		if w.m != nil {
			w.m.upStored.Inc()
		}
		if w.Hooks.OnUpload != nil {
			w.Hooks.OnUpload(job, id, digest, false)
		}
	}
	return nil
}

func (w *Worker) complete(ctx context.Context, id string, booked *BookResponse, run RunResult, spans []trace.Span, prof *ProfileRecord) error {
	var ok struct{ OK bool }
	status, err := w.post(ctx, "/complete",
		CompleteRequest{Worker: id, Job: booked.Job, Attempt: booked.Attempt, Run: run, Spans: spans, Profile: prof}, &ok)
	if err != nil {
		return err
	}
	switch status {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		return fmt.Errorf("job %d: %w", booked.Job, ErrStale)
	case http.StatusPreconditionFailed:
		return fmt.Errorf("job %d: %w", booked.Job, ErrMissingBlobs)
	default:
		return fmt.Errorf("dispatch: complete: status %d", status)
	}
}

// post sends one JSON request and decodes a 200 response into out.
func (w *Worker) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Dispatcher+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return resp.StatusCode, err
		}
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("dispatch: decoding %s response: %w", path, err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, nil
}

// do sends one raw-body request (HEAD probes and blob PUTs) and returns
// the status.
func (w *Worker) do(ctx context.Context, method, path string, body []byte) (int, error) {
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, w.Dispatcher+path, rd)
	if err != nil {
		return 0, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/octet-stream")
	}
	resp, err := w.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}
