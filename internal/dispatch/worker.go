package dispatch

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"sync"
	"time"

	"sapsim"
	"sapsim/internal/scenario"
	"sapsim/internal/sim"
)

// errDrained signals the dispatcher reported the sweep complete (410).
var errDrained = errors.New("dispatch: sweep drained")

// WorkerHooks observe a worker's lifecycle; tests use them to kill a
// worker mid-cell deterministically.
type WorkerHooks struct {
	// OnBook fires after a cell is booked, before it runs.
	OnBook func(job int, key scenario.Key)
	// OnCheckpoint fires when the running cell takes a checkpoint (on the
	// session's event-dispatch goroutine, at the spec's simulated-time
	// cadence — guaranteed mid-run, however fast the cell runs on the
	// wall clock).
	OnCheckpoint func(job int, rec CheckpointRecord)
	// OnHeartbeat fires after each accepted heartbeat.
	OnHeartbeat func(job int, ckpt *CheckpointRecord)
}

// Worker is the simd half of the dispatcher split: a stateless loop that
// books cells, runs each through the step-driven sapsim Session, streams
// coalesced Progress/Checkpoint events back as lease-renewing heartbeats,
// and delivers per-cell metrics plus artifact digests. Workers hold no
// sweep state — kill one at any point and its cells re-book elsewhere
// after the lease expires.
type Worker struct {
	// Dispatcher is the base URL (http://host:port).
	Dispatcher string
	// ID names the worker in bookings and the journal. Defaults to
	// host:pid.
	ID string
	// HeartbeatEvery is the wall-clock heartbeat cadence (default 2s; the
	// lease must comfortably exceed it).
	HeartbeatEvery time.Duration
	// Poll is the idle re-poll interval when no cell is free (default
	// 500ms).
	Poll time.Duration
	// Concurrency is how many cells run at once (default 1).
	Concurrency int
	// Client overrides the HTTP client.
	Client *http.Client
	// Logf, when set, receives one line per cell transition.
	Logf func(format string, args ...any)
	// Hooks observe the lifecycle (tests).
	Hooks WorkerHooks
	// Fingerprint computes the cell's artifact digests (default
	// sapsim.ArtifactDigests — the full 18-artifact fingerprint).
	Fingerprint func(*sapsim.Result) (map[string]string, error)
}

func (w *Worker) fill() {
	if w.ID == "" {
		host, _ := os.Hostname()
		if host == "" {
			host = "worker"
		}
		w.ID = fmt.Sprintf("%s:%d", host, os.Getpid())
	}
	if w.HeartbeatEvery <= 0 {
		w.HeartbeatEvery = 2 * time.Second
	}
	if w.Poll <= 0 {
		w.Poll = 500 * time.Millisecond
	}
	if w.Concurrency <= 0 {
		w.Concurrency = 1
	}
	if w.Client == nil {
		w.Client = &http.Client{Timeout: 10 * time.Second}
	}
	if w.Fingerprint == nil {
		w.Fingerprint = sapsim.ArtifactDigests
	}
}

func (w *Worker) logf(format string, args ...any) {
	if w.Logf != nil {
		w.Logf(format, args...)
	}
}

// Run books and executes cells until the dispatcher reports the sweep
// drained (returns nil) or ctx is canceled (returns ctx.Err()). With
// Concurrency > 1 it runs that many independent book-run loops, each
// booking under its own derived ID ("<id>#<slot>") — the queue's stale
// detection is per worker-ID, so two slots of one process must never be
// able to hold (and heartbeat) the same cell.
func (w *Worker) Run(ctx context.Context) error {
	w.fill()
	if w.Concurrency == 1 {
		return w.loop(ctx, w.ID)
	}
	errs := make([]error, w.Concurrency)
	var wg sync.WaitGroup
	for i := 0; i < w.Concurrency; i++ {
		wg.Add(1)
		go func(slot int) {
			defer wg.Done()
			errs[slot] = w.loop(ctx, fmt.Sprintf("%s#%d", w.ID, slot))
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func (w *Worker) loop(ctx context.Context, id string) error {
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		booked, err := w.book(ctx, id)
		switch {
		case errors.Is(err, errDrained):
			return nil
		case err != nil:
			// Transient dispatcher unavailability: back off and retry.
			w.logf("worker %s: book: %v", id, err)
			fallthrough
		case booked == nil:
			select {
			case <-ctx.Done():
				return ctx.Err()
			case <-time.After(w.Poll):
			}
			continue
		}
		if w.Hooks.OnBook != nil {
			w.Hooks.OnBook(booked.Job, scenario.Key{Scenario: booked.Key.Scenario,
				Variant: booked.Key.Variant, Seed: booked.Key.Seed})
		}
		if err := w.runCell(ctx, id, booked); err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			// Lease lost or dispatcher gone: abandon the cell and ask for
			// the next one; the queue re-books it.
			w.logf("worker %s: job %d abandoned: %v", id, booked.Job, err)
		}
	}
}

// book asks for the next cell: (nil, nil) means nothing free right now.
func (w *Worker) book(ctx context.Context, id string) (*BookResponse, error) {
	var resp BookResponse
	status, err := w.post(ctx, "/book", BookRequest{Worker: id}, &resp)
	switch {
	case err != nil:
		return nil, err
	case status == http.StatusGone:
		return nil, errDrained
	case status == http.StatusNoContent:
		return nil, nil
	case status != http.StatusOK:
		return nil, fmt.Errorf("dispatch: book: status %d", status)
	}
	return &resp, nil
}

// runCell executes one booked cell through a sapsim Session, heartbeating
// the latest coalesced checkpoint at HeartbeatEvery, and completes it.
func (w *Worker) runCell(ctx context.Context, id string, booked *BookResponse) error {
	key := scenario.Key{Scenario: booked.Key.Scenario, Variant: booked.Key.Variant, Seed: booked.Key.Seed}
	spec := Spec{Base: booked.Base}
	spec.Base.Seed = key.Seed
	cfg, err := spec.CellConfig(key)
	if err != nil {
		// The cell cannot be built on this worker (unknown scenario or
		// variant name — version skew): report it as a failed run.
		return w.complete(ctx, id, booked.Job, RunResult{Err: err.Error()})
	}

	w.logf("worker %s: job %d (%s/%s seed %d) starting", id, booked.Job,
		key.Scenario, key.Variant, key.Seed)

	// Cell context: canceled when the dispatcher declares the lease lost,
	// so the engine unwinds mid-tick instead of wasting a dead cell.
	cellCtx, cancelCell := context.WithCancelCause(ctx)
	defer cancelCell(nil)

	// latest holds the freshest checkpoint; the heartbeat loop posts it at
	// its own wall-clock pace — Progress events coalesce in the session
	// dispatcher, checkpoints coalesce here.
	var (
		mu     sync.Mutex
		latest *CheckpointRecord
	)
	every := sim.Time(booked.CheckpointEvery)
	session, err := sapsim.NewSession(cfg,
		sapsim.WithContext(cellCtx),
		sapsim.WithCheckpointEvery(every),
		sapsim.WithObserverFunc(func(ev sapsim.SessionEvent) {
			if c, ok := ev.(sapsim.Checkpoint); ok {
				rec := NewCheckpointRecord(key, spec.Base, c)
				mu.Lock()
				latest = &rec
				mu.Unlock()
				if w.Hooks.OnCheckpoint != nil {
					w.Hooks.OnCheckpoint(booked.Job, rec)
				}
			}
		}))
	if err != nil {
		return w.complete(ctx, id, booked.Job, RunResult{Err: err.Error()})
	}
	defer session.Close()

	// Heartbeat loop: renew the lease even before the first checkpoint,
	// and stop when the cell finishes.
	hbDone := make(chan struct{})
	var hbWG sync.WaitGroup
	hbWG.Add(1)
	go func() {
		defer hbWG.Done()
		t := time.NewTicker(w.HeartbeatEvery)
		defer t.Stop()
		for {
			select {
			case <-hbDone:
				return
			case <-cellCtx.Done():
				return
			case <-t.C:
			}
			mu.Lock()
			ckpt := latest
			mu.Unlock()
			var ok struct{ OK bool }
			status, err := w.post(cellCtx, "/progress",
				ProgressRequest{Worker: id, Job: booked.Job, Checkpoint: ckpt}, &ok)
			if err != nil {
				continue // transient; the lease outlives several heartbeats
			}
			if status == http.StatusConflict {
				cancelCell(ErrStale)
				return
			}
			if status != http.StatusOK {
				// Rejected heartbeat (bad request, server error): the lease
				// is not renewing. Log it — if this persists the lease
				// expires, the cell re-books elsewhere, and the next
				// heartbeat's 409 cancels this run.
				w.logf("worker %s: job %d heartbeat rejected: status %d", id, booked.Job, status)
			}
			if status == http.StatusOK {
				// The checkpoint is journaled; don't re-send an unchanged
				// one — later heartbeats renew the lease with a nil
				// checkpoint until the session produces a fresh snapshot,
				// keeping the WAL proportional to state changes, not wall
				// time.
				mu.Lock()
				if latest == ckpt {
					latest = nil
				}
				mu.Unlock()
				if w.Hooks.OnHeartbeat != nil {
					w.Hooks.OnHeartbeat(booked.Job, ckpt)
				}
			}
		}
	}()

	runErr := session.RunToCompletion()
	close(hbDone)
	hbWG.Wait()

	if runErr != nil {
		if cause := context.Cause(cellCtx); errors.Is(cause, ErrStale) {
			return fmt.Errorf("job %d: %w", booked.Job, ErrStale)
		}
		if cellCtx.Err() != nil {
			return cellCtx.Err()
		}
		// Deterministic run failure: record it, exactly as scenario.Sweep
		// records the cell's error string.
		return w.complete(ctx, id, booked.Job, RunResult{Err: runErr.Error()})
	}

	res, err := session.Result()
	if err != nil {
		return w.complete(ctx, id, booked.Job, RunResult{Err: err.Error()})
	}
	run := RunResult{Metrics: scenario.Extract(res)}
	digests, err := w.Fingerprint(res)
	if err != nil {
		run.Err = "fingerprint: " + err.Error()
	}
	run.Digests = digests
	w.logf("worker %s: job %d finished", id, booked.Job)
	return w.complete(ctx, id, booked.Job, run)
}

func (w *Worker) complete(ctx context.Context, id string, job int, run RunResult) error {
	var ok struct{ OK bool }
	status, err := w.post(ctx, "/complete", CompleteRequest{Worker: id, Job: job, Run: run}, &ok)
	if err != nil {
		return err
	}
	switch status {
	case http.StatusOK:
		return nil
	case http.StatusConflict:
		return fmt.Errorf("job %d: %w", job, ErrStale)
	default:
		return fmt.Errorf("dispatch: complete: status %d", status)
	}
}

// post sends one JSON request and decodes a 200 response into out.
func (w *Worker) post(ctx context.Context, path string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, w.Dispatcher+path, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.Client.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK && out != nil {
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return resp.StatusCode, err
		}
		if err := json.Unmarshal(data, out); err != nil {
			return resp.StatusCode, fmt.Errorf("dispatch: decoding %s response: %w", path, err)
		}
	} else {
		_, _ = io.Copy(io.Discard, resp.Body)
	}
	return resp.StatusCode, nil
}
