package dispatch

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

// TestWorkerBookBackoff pins the retry schedule against a flapping
// dispatcher: jittered exponential backoff doubling from Poll to
// BookBackoffMax, resetting to the plain Poll cadence the moment the
// dispatcher answers again. The seams make it deterministic: randFloat
// pinned to 0 selects the low edge of each jitter window (backoff/2).
func TestWorkerBookBackoff(t *testing.T) {
	// Scripted /book responses: five failures (walk the backoff up and
	// into the cap), one healthy empty poll (reset), one more failure
	// (restart from the bottom), then drained.
	statuses := []int{
		http.StatusInternalServerError,
		http.StatusInternalServerError,
		http.StatusInternalServerError,
		http.StatusInternalServerError,
		http.StatusInternalServerError,
		http.StatusNoContent,
		http.StatusInternalServerError,
		http.StatusGone,
	}
	calls := 0
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/book" {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		st := http.StatusGone
		if calls < len(statuses) {
			st = statuses[calls]
		}
		calls++
		w.WriteHeader(st)
	}))
	defer srv.Close()

	var slept []time.Duration
	w := &Worker{
		Dispatcher:     srv.URL,
		ID:             "w1",
		Poll:           time.Second,
		BookBackoffMax: 4 * time.Second,
		sleep: func(ctx context.Context, d time.Duration) error {
			slept = append(slept, d)
			return nil // no wall-clock time passes
		},
		randFloat: func() float64 { return 0 },
	}
	if err := w.Run(context.Background()); err != nil {
		t.Fatal(err)
	}

	want := []time.Duration{
		500 * time.Millisecond, // backoff 1s  → low edge 0.5s
		time.Second,            // backoff 2s
		2 * time.Second,        // backoff 4s (cap)
		2 * time.Second,        // held at cap
		2 * time.Second,        // held at cap
		time.Second,            // 204: healthy poll at Poll, backoff resets
		500 * time.Millisecond, // next failure starts from the bottom again
	}
	if len(slept) != len(want) {
		t.Fatalf("sleeps = %v, want %v", slept, want)
	}
	for i := range want {
		if slept[i] != want[i] {
			t.Errorf("sleep %d = %v, want %v", i, slept[i], want[i])
		}
	}
}

// TestWorkerBackoffJitterSpread: with randFloat at the high edge the delay
// approaches the full backoff — two workers with different draws never
// sleep the same schedule, which is the whole point of the jitter.
func TestWorkerBackoffJitterSpread(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusInternalServerError)
	}))
	defer srv.Close()

	run := func(r float64) time.Duration {
		var first time.Duration
		w := &Worker{
			Dispatcher: srv.URL,
			ID:         "w",
			Poll:       time.Second,
			sleep: func(ctx context.Context, d time.Duration) error {
				first = d
				return context.Canceled // one sample is enough
			},
			randFloat: func() float64 { return r },
		}
		if err := w.Run(context.Background()); !errors.Is(err, context.Canceled) {
			t.Fatalf("Run = %v, want context.Canceled", err)
		}
		return first
	}
	lo, hi := run(0), run(0.999)
	if lo != 500*time.Millisecond {
		t.Errorf("low-edge first delay = %v, want 500ms", lo)
	}
	if hi <= lo || hi >= time.Second {
		t.Errorf("high-edge first delay = %v, want in (500ms, 1s)", hi)
	}
}

// TestWorkerIDNeverCollides: when the host has no usable hostname, two
// workers in the same process (same PID — the container case that used to
// produce identical "worker:1" IDs) must still get distinct IDs, because
// the queue keys leases and attempt nonces by worker ID.
func TestWorkerIDNeverCollides(t *testing.T) {
	noHost := func() (string, error) { return "", errors.New("no hostname") }
	a := &Worker{hostname: noHost}
	b := &Worker{hostname: noHost}
	a.fill()
	b.fill()
	if a.ID == "" || b.ID == "" {
		t.Fatalf("empty worker ID: %q, %q", a.ID, b.ID)
	}
	if a.ID == b.ID {
		t.Fatalf("two hostname-less workers share ID %q", a.ID)
	}
	for _, w := range []*Worker{a, b} {
		if strings.HasPrefix(w.ID, "worker:") {
			t.Errorf("ID %q uses the old colliding fallback", w.ID)
		}
		if !strings.HasPrefix(w.ID, "anon-") {
			t.Errorf("ID %q missing the random fallback prefix", w.ID)
		}
	}

	// An empty hostname with a nil error takes the same fallback.
	c := &Worker{hostname: func() (string, error) { return "", nil }}
	c.fill()
	if !strings.HasPrefix(c.ID, "anon-") {
		t.Errorf("empty-hostname ID %q missing the random fallback prefix", c.ID)
	}
}
