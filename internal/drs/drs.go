// Package drs models the VMware Distributed Resource Scheduler: the second
// scheduling layer that dynamically balances VM load *within* a vSphere
// cluster (building block). The DRS "is configured to monitor the load of
// the ESXi hosts and triggers automatic migrations of VMs from over-utilized
// to less utilized hosts" (Sec. 3.1).
//
// Imbalance *across* building blocks is out of DRS scope and needs an
// external rebalancer (also here, CrossBB), matching the paper's
// observation that such imbalances "require manual intervention or external
// rebalancers".
package drs

import (
	"sort"

	"sapsim/internal/engprof"
	"sapsim/internal/esx"
	"sapsim/internal/sim"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
)

// Config tunes the rebalancer.
type Config struct {
	// CPUImbalancePct triggers migration when the spread between the
	// most and least CPU-utilized node of a BB exceeds this many
	// percentage points.
	CPUImbalancePct float64
	// MemImbalancePct is the analogous memory trigger.
	MemImbalancePct float64
	// MaxMigrationsPerPass bounds migrations per BB per invocation;
	// DRS is deliberately conservative because each migration costs
	// performance (Sec. 3.2, "avoiding migration of heavy VMs").
	MaxMigrationsPerPass int
	// MaxVMMemGiB skips VMs above this size: migrating memory-heavy VMs
	// moves large datasets and should be avoided (Sec. 3.2).
	MaxVMMemGiB int
}

// DefaultConfig mirrors a moderately aggressive DRS posture.
func DefaultConfig() Config {
	return Config{
		CPUImbalancePct:      20,
		MemImbalancePct:      25,
		MaxMigrationsPerPass: 2,
		MaxVMMemGiB:          512,
	}
}

// DRS rebalances building blocks of a fleet.
type DRS struct {
	fleet *esx.Fleet
	cfg   Config

	// OnMigrate, when set, observes every completed migration (the
	// event stream of Sec. 4).
	OnMigrate func(vm *vmmodel.VM, from, to *topology.Node, now sim.Time)
	// OnDecide, when set, observes every migration decision with the
	// decision-time CPU loads of the chosen source and destination. The
	// invariant test suite uses it to assert DRS never migrates toward a
	// fuller host.
	OnDecide func(vm *vmmodel.VM, srcCPUPct, dstCPUPct float64, now sim.Time)

	migrations int
	passes     int

	// loadBuf is the scratch slice loads sorts into, reused across passes.
	// Between the iterations of one pass only the migration's source and
	// destination hosts recompute their snapshots (the others are served
	// from the host snapshot cache keyed on the unchanged resident set).
	loadBuf []nodeLoad

	// prof, when set, receives scan/decide sub-phase attribution (nested
	// inside the drs tick event the engine attributes).
	prof *engprof.Collector
}

// SetProfiler attaches the engine self-profiler's collector; nil detaches.
func (d *DRS) SetProfiler(p *engprof.Collector) { d.prof = p }

// New returns a DRS bound to the fleet.
func New(fleet *esx.Fleet, cfg Config) *DRS {
	if cfg.MaxMigrationsPerPass <= 0 {
		cfg.MaxMigrationsPerPass = 2
	}
	if cfg.MaxVMMemGiB <= 0 {
		cfg.MaxVMMemGiB = 512
	}
	return &DRS{fleet: fleet, cfg: cfg}
}

// Migrations reports the total migrations performed.
func (d *DRS) Migrations() int { return d.migrations }

// Passes reports how many rebalance passes ran.
func (d *DRS) Passes() int { return d.passes }

// RestoreCounters overwrites the migration and pass counters from a
// snapshot.
func (d *DRS) RestoreCounters(migrations, passes int) {
	d.migrations = migrations
	d.passes = passes
}

// nodeLoad captures one node's instantaneous load.
type nodeLoad struct {
	host *esx.Host
	cpu  float64 // CPU demand as % of physical cores (can exceed 100)
	mem  float64 // memory usage %
}

// loads snapshots the active nodes of the BB, sorted by ascending CPU load.
// The returned slice aliases d.loadBuf and is valid until the next call.
func (d *DRS) loads(bb *topology.BuildingBlock, now sim.Time) []nodeLoad {
	d.loadBuf = d.loadBuf[:0]
	d.fleet.EachHostInBB(bb, func(h *esx.Host) {
		if h.Node.Maintenance {
			return
		}
		m := h.Snapshot(now, sim.Minute)
		// Reconstruct raw demand: utilization is capped at 100, so add
		// back the contention share to order saturated nodes correctly.
		cpu := m.CPUUtilPct
		if m.CPUContentionPct > 0 {
			cpu = m.CPUUtilPct / (1 - m.CPUContentionPct/100)
		}
		d.loadBuf = append(d.loadBuf, nodeLoad{host: h, cpu: cpu, mem: m.MemUsagePct})
	})
	out := d.loadBuf
	sort.Slice(out, func(i, j int) bool {
		if out[i].cpu != out[j].cpu {
			return out[i].cpu < out[j].cpu
		}
		return out[i].host.Node.ID < out[j].host.Node.ID
	})
	return out
}

// RebalanceBB runs one DRS pass over a building block and returns the
// number of migrations performed.
func (d *DRS) RebalanceBB(bb *topology.BuildingBlock, now sim.Time) int {
	d.passes++
	moved := 0
	for moved < d.cfg.MaxMigrationsPerPass {
		var mark int64
		if d.prof != nil {
			mark = d.prof.Start()
		}
		loads := d.loads(bb, now)
		if d.prof != nil {
			d.prof.EndSpan(engprof.PhaseDRSScan, mark, int64(len(loads)))
			mark = d.prof.Start()
		}
		moreToDo, migrated := d.decide(loads, now)
		if d.prof != nil {
			d.prof.EndSpan(engprof.PhaseDRSDecide, mark, int64(migrated))
		}
		moved += migrated
		if !moreToDo {
			return moved
		}
	}
	return moved
}

// decide runs the decision half of one rebalance iteration over a scanned
// load slice: imbalance test, victim selection, migration. It reports
// whether the pass should scan again and how many migrations it performed
// (0 or 1).
func (d *DRS) decide(loads []nodeLoad, now sim.Time) (more bool, migrated int) {
	if len(loads) < 2 {
		return false, 0
	}
	coldest, hottest := loads[0], loads[len(loads)-1]
	cpuGap := hottest.cpu - coldest.cpu
	memGap := hottest.mem - coldest.mem
	if cpuGap < d.cfg.CPUImbalancePct && memGap < d.cfg.MemImbalancePct {
		return false, 0
	}
	vm := d.pickVM(hottest.host, coldest.host, now)
	if vm == nil {
		return false, 0
	}
	if d.OnDecide != nil {
		d.OnDecide(vm, hottest.cpu, coldest.cpu, now)
	}
	from := hottest.host.Node
	if err := d.fleet.Migrate(vm, coldest.host.Node, now); err != nil {
		return false, 0
	}
	d.migrations++
	if d.OnMigrate != nil {
		d.OnMigrate(vm, from, coldest.host.Node, now)
	}
	return true, 1
}

// pickVM chooses the migration candidate: the VM with the highest CPU
// demand that (a) fits the target, (b) is below the memory-weight cutoff,
// and (c) would not immediately overload the target.
func (d *DRS) pickVM(src, dst *esx.Host, now sim.Time) *vmmodel.VM {
	dstSnap := dst.Snapshot(now, sim.Minute)
	dstCores := float64(dst.Node.Capacity.PCPUCores)
	var best *vmmodel.VM
	bestDemand := -1.0
	src.EachVM(func(vm *vmmodel.VM) {
		if vm.Flavor.RAMGiB > d.cfg.MaxVMMemGiB {
			return
		}
		if !dst.Fits(vm.Flavor) {
			return
		}
		if vm.Profile == nil {
			return
		}
		demand := vm.Profile.CPUUsage(now) * float64(vm.RequestedCPUCores())
		// Would the move overload the destination?
		if dstSnap.CPUUtilPct+demand/dstCores*100 > 90 {
			return
		}
		if demand > bestDemand {
			bestDemand = demand
			best = vm
		}
	})
	return best
}

// RebalanceAll runs one pass over every building block of the region.
func (d *DRS) RebalanceAll(now sim.Time) int {
	total := 0
	for _, bb := range d.fleet.Region().BBs() {
		total += d.RebalanceBB(bb, now)
	}
	return total
}

// CrossBB is the external rebalancer that moves VMs between building
// blocks of the same kind within a data center. It needs a mover capable of
// updating placement allocations (nova.Scheduler.MoveBB).
type CrossBB struct {
	fleet *esx.Fleet
	move  func(vm *vmmodel.VM, to *topology.Node, now sim.Time) error
	// OnMigrate observes completed cross-BB moves.
	OnMigrate func(vm *vmmodel.VM, from, to *topology.Node, now sim.Time)
	// TriggerPct is the allocation-imbalance trigger between the
	// most and least memory-allocated BBs of the same kind.
	TriggerPct float64
	// MaxMovesPerPass bounds cross-BB migrations, which are costlier
	// than intra-BB ones.
	MaxMovesPerPass int

	moves int
}

// NewCrossBB builds the external rebalancer.
func NewCrossBB(fleet *esx.Fleet, move func(*vmmodel.VM, *topology.Node, sim.Time) error) *CrossBB {
	return &CrossBB{fleet: fleet, move: move, TriggerPct: 25, MaxMovesPerPass: 2}
}

// Moves reports total cross-BB migrations.
func (c *CrossBB) Moves() int { return c.moves }

// RestoreMoves overwrites the move counter from a snapshot.
func (c *CrossBB) RestoreMoves(moves int) { c.moves = moves }

// Rebalance runs one pass per data center and BB kind.
func (c *CrossBB) Rebalance(now sim.Time) int {
	total := 0
	for _, dc := range c.fleet.Region().Datacenters() {
		byKind := map[topology.BBKind][]*topology.BuildingBlock{}
		for _, bb := range dc.BBs {
			if bb.Reserved {
				continue // failover reserve stays empty
			}
			byKind[bb.Kind] = append(byKind[bb.Kind], bb)
		}
		// Kinds in fixed order: ranging over the map directly would order
		// same-tick migrations differently from run to run, breaking the
		// engine's determinism guarantee (and the byte-identical event
		// logs the snapshot round-trip and sweep tests pin).
		kinds := make([]topology.BBKind, 0, len(byKind))
		for kind := range byKind {
			kinds = append(kinds, kind)
		}
		sort.Slice(kinds, func(i, j int) bool { return kinds[i] < kinds[j] })
		for _, kind := range kinds {
			total += c.rebalanceGroup(byKind[kind], now)
		}
	}
	return total
}

// allocPct reports a BB's memory allocation percentage.
func (c *CrossBB) allocPct(bb *topology.BuildingBlock) float64 {
	a := c.fleet.BBAlloc(bb)
	if a.MemCapMB == 0 {
		return 0
	}
	return float64(a.MemAllocMB) / float64(a.MemCapMB) * 100
}

func (c *CrossBB) rebalanceGroup(bbs []*topology.BuildingBlock, now sim.Time) int {
	if len(bbs) < 2 {
		return 0
	}
	moved := 0
	for moved < c.MaxMovesPerPass {
		sort.Slice(bbs, func(i, j int) bool {
			pi, pj := c.allocPct(bbs[i]), c.allocPct(bbs[j])
			if pi != pj {
				return pi < pj
			}
			return bbs[i].ID < bbs[j].ID
		})
		coldBB, hotBB := bbs[0], bbs[len(bbs)-1]
		if c.allocPct(hotBB)-c.allocPct(coldBB) < c.TriggerPct {
			return moved
		}
		vm, node := c.pickMove(hotBB, coldBB)
		if vm == nil {
			return moved
		}
		from := vm.Node
		if err := c.move(vm, node, now); err != nil {
			return moved
		}
		moved++
		c.moves++
		if c.OnMigrate != nil {
			c.OnMigrate(vm, from, node, now)
		}
	}
	return moved
}

// pickMove selects the largest movable VM on the hot BB and a fitting node
// on the cold BB.
func (c *CrossBB) pickMove(hot, cold *topology.BuildingBlock) (*vmmodel.VM, *topology.Node) {
	var candidates []*vmmodel.VM
	for _, h := range c.fleet.HostsInBB(hot) {
		candidates = append(candidates, h.VMs()...)
	}
	// Prefer moving mid-sized VMs: large enough to matter, small enough
	// to avoid heavy-migration costs.
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].Flavor.RAMGiB != candidates[j].Flavor.RAMGiB {
			return candidates[i].Flavor.RAMGiB > candidates[j].Flavor.RAMGiB
		}
		return candidates[i].ID < candidates[j].ID
	})
	for _, vm := range candidates {
		if vm.Flavor.RAMGiB > 512 {
			continue
		}
		for _, h := range c.fleet.HostsInBB(cold) {
			if !h.Node.Maintenance && h.Fits(vm.Flavor) {
				return vm, h.Node
			}
		}
	}
	return nil, nil
}
