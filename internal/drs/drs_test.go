package drs

import (
	"fmt"
	"testing"

	"sapsim/internal/esx"
	"sapsim/internal/sim"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
)

type constProfile struct{ cpu, mem float64 }

func (p constProfile) CPUUsage(sim.Time) float64  { return p.cpu }
func (p constProfile) MemUsage(sim.Time) float64  { return p.mem }
func (p constProfile) NetTxKbps(sim.Time) float64 { return 0 }
func (p constProfile) NetRxKbps(sim.Time) float64 { return 0 }
func (p constProfile) DiskUsage(sim.Time) float64 { return 0.1 }

func testFleet(t *testing.T, nodes int) (*esx.Fleet, *topology.BuildingBlock) {
	t.Helper()
	r := topology.NewRegion("t")
	dc := r.AddAZ("a").AddDC("d")
	cap := topology.Capacity{PCPUCores: 32, MemoryMB: 512 << 10, StorageGB: 8 << 10, NetworkGbps: 200}
	bb, err := dc.AddBB("bb-0", topology.GeneralPurpose, nodes, cap)
	if err != nil {
		t.Fatal(err)
	}
	return esx.NewFleet(r, esx.DefaultConfig()), bb
}

func place(t *testing.T, f *esx.Fleet, node *topology.Node, id, flavor string, cpu, mem float64) *vmmodel.VM {
	t.Helper()
	vm := &vmmodel.VM{ID: vmmodel.ID(id), Flavor: vmmodel.CatalogByName()[flavor], Profile: constProfile{cpu: cpu, mem: mem}}
	if err := f.Place(vm, node, 0); err != nil {
		t.Fatal(err)
	}
	return vm
}

func TestRebalanceMovesFromHotToCold(t *testing.T) {
	fleet, bb := testFleet(t, 2)
	hot, cold := bb.Nodes[0], bb.Nodes[1]
	// Hot node: 3 × MJ (16 vCPU) at 90% demand = 43.2 cores on 32 → saturated.
	for i := 0; i < 3; i++ {
		place(t, fleet, hot, fmt.Sprintf("h%d", i), "MJ", 0.9, 0.3)
	}
	// Cold node: one tiny VM.
	place(t, fleet, cold, "c0", "SA", 0.1, 0.3)

	d := New(fleet, DefaultConfig())
	moved := d.RebalanceBB(bb, sim.Hour)
	if moved == 0 {
		t.Fatal("DRS did not migrate despite heavy imbalance")
	}
	hHot, _ := fleet.Host(hot.ID)
	hCold, _ := fleet.Host(cold.ID)
	if hCold.VMCount() < 2 {
		t.Errorf("cold node still has %d VMs", hCold.VMCount())
	}
	// Imbalance should have shrunk.
	sHot := hHot.Snapshot(sim.Hour, sim.Minute)
	sCold := hCold.Snapshot(sim.Hour, sim.Minute)
	if sHot.CPUUtilPct-sCold.CPUUtilPct > 60 {
		t.Errorf("imbalance persists: hot %.1f cold %.1f", sHot.CPUUtilPct, sCold.CPUUtilPct)
	}
	if d.Migrations() != moved {
		t.Errorf("migration counter mismatch: %d vs %d", d.Migrations(), moved)
	}
}

func TestRebalanceRespectsThreshold(t *testing.T) {
	fleet, bb := testFleet(t, 2)
	// Mild imbalance below the 20-point trigger: 30% vs 20%.
	place(t, fleet, bb.Nodes[0], "a", "MJ", 0.6, 0.3) // 9.6/32 = 30%
	place(t, fleet, bb.Nodes[1], "b", "MJ", 0.4, 0.3) // 6.4/32 = 20%
	d := New(fleet, DefaultConfig())
	if moved := d.RebalanceBB(bb, 0); moved != 0 {
		t.Errorf("DRS migrated %d below threshold", moved)
	}
}

func TestRebalanceSkipsHeavyVMs(t *testing.T) {
	fleet, bb := testFleet(t, 2)
	// The only VM on the hot node is memory-heavy (XLB = 192 GiB) but the
	// cutoff is set lower, so DRS must leave it alone.
	place(t, fleet, bb.Nodes[0], "big", "MJ", 1.2, 0.9)
	place(t, fleet, bb.Nodes[1], "small", "SA", 0.05, 0.1)
	cfg := DefaultConfig()
	cfg.MaxVMMemGiB = 32 // below MJ's 64 GiB
	d := New(fleet, cfg)
	if moved := d.RebalanceBB(bb, 0); moved != 0 {
		t.Errorf("DRS migrated a VM above the memory cutoff (%d moves)", moved)
	}
}

func TestRebalanceMigrationBudget(t *testing.T) {
	fleet, bb := testFleet(t, 2)
	for i := 0; i < 6; i++ {
		place(t, fleet, bb.Nodes[0], fmt.Sprintf("h%d", i), "MJ", 0.9, 0.2)
	}
	cfg := DefaultConfig()
	cfg.MaxMigrationsPerPass = 1
	d := New(fleet, cfg)
	if moved := d.RebalanceBB(bb, 0); moved > 1 {
		t.Errorf("DRS exceeded its per-pass budget: %d", moved)
	}
}

func TestRebalanceAvoidsOverloadingTarget(t *testing.T) {
	fleet, bb := testFleet(t, 2)
	// Both nodes heavily loaded; moving anything would overload target.
	for i := 0; i < 3; i++ {
		place(t, fleet, bb.Nodes[0], fmt.Sprintf("a%d", i), "MJ", 1.0, 0.2)
	}
	for i := 0; i < 2; i++ {
		place(t, fleet, bb.Nodes[1], fmt.Sprintf("b%d", i), "MJ", 0.85, 0.2)
	}
	d := New(fleet, DefaultConfig())
	moved := d.RebalanceBB(bb, 0)
	if moved != 0 {
		t.Errorf("DRS moved %d VMs onto an already-busy target", moved)
	}
}

func TestRebalanceAllCoversRegion(t *testing.T) {
	r := topology.NewRegion("t")
	dc := r.AddAZ("a").AddDC("d")
	cap := topology.Capacity{PCPUCores: 32, MemoryMB: 512 << 10, StorageGB: 8 << 10, NetworkGbps: 200}
	bb1, _ := dc.AddBB("bb-1", topology.GeneralPurpose, 2, cap)
	bb2, _ := dc.AddBB("bb-2", topology.GeneralPurpose, 2, cap)
	fleet := esx.NewFleet(r, esx.DefaultConfig())
	for i := 0; i < 3; i++ {
		place(t, fleet, bb1.Nodes[0], fmt.Sprintf("x%d", i), "MJ", 0.9, 0.2)
		place(t, fleet, bb2.Nodes[0], fmt.Sprintf("y%d", i), "MJ", 0.9, 0.2)
	}
	d := New(fleet, DefaultConfig())
	total := d.RebalanceAll(0)
	if total < 2 {
		t.Errorf("RebalanceAll moved %d, want ≥2 (one per BB)", total)
	}
	if d.Passes() != len(r.BBs()) {
		t.Errorf("passes = %d, want %d", d.Passes(), len(r.BBs()))
	}
}

func TestDRSNeverCrossesBBBoundary(t *testing.T) {
	r := topology.NewRegion("t")
	dc := r.AddAZ("a").AddDC("d")
	cap := topology.Capacity{PCPUCores: 32, MemoryMB: 512 << 10, StorageGB: 8 << 10, NetworkGbps: 200}
	bb1, _ := dc.AddBB("bb-1", topology.GeneralPurpose, 2, cap)
	bb2, _ := dc.AddBB("bb-2", topology.GeneralPurpose, 2, cap)
	fleet := esx.NewFleet(r, esx.DefaultConfig())
	var vms []*vmmodel.VM
	for i := 0; i < 4; i++ {
		vms = append(vms, place(t, fleet, bb1.Nodes[0], fmt.Sprintf("v%d", i), "MJ", 0.95, 0.2))
	}
	_ = bb2
	d := New(fleet, DefaultConfig())
	d.RebalanceAll(0)
	for _, vm := range vms {
		if vm.BB != bb1 {
			t.Errorf("DRS moved %s across BB boundary to %s", vm.ID, vm.BB.ID)
		}
	}
}

func TestCrossBBRebalance(t *testing.T) {
	r := topology.NewRegion("t")
	dc := r.AddAZ("a").AddDC("d")
	cap := topology.Capacity{PCPUCores: 32, MemoryMB: 512 << 10, StorageGB: 8 << 10, NetworkGbps: 200}
	bb1, _ := dc.AddBB("bb-1", topology.GeneralPurpose, 2, cap)
	bb2, _ := dc.AddBB("bb-2", topology.GeneralPurpose, 2, cap)
	fleet := esx.NewFleet(r, esx.DefaultConfig())
	// bb-1 is memory-loaded (4 × MC = 256 GiB of ~896 admissible), bb-2 empty.
	for i := 0; i < 6; i++ {
		place(t, fleet, bb1.Nodes[i%2], fmt.Sprintf("v%d", i), "MC", 0.3, 0.8)
	}
	_ = bb2
	moved := 0
	c := NewCrossBB(fleet, func(vm *vmmodel.VM, to *topology.Node, now sim.Time) error {
		moved++
		return fleet.Migrate(vm, to, now)
	})
	c.TriggerPct = 10
	n := c.Rebalance(0)
	if n == 0 {
		t.Fatal("cross-BB rebalancer did not move anything")
	}
	if n != moved || c.Moves() != n {
		t.Errorf("move accounting mismatch: %d %d %d", n, moved, c.Moves())
	}
	if fleet.BBAlloc(bb2).VMCount == 0 {
		t.Error("bb-2 still empty after rebalance")
	}
}

func TestCrossBBNoTriggerBelowThreshold(t *testing.T) {
	r := topology.NewRegion("t")
	dc := r.AddAZ("a").AddDC("d")
	cap := topology.Capacity{PCPUCores: 32, MemoryMB: 512 << 10, StorageGB: 8 << 10, NetworkGbps: 200}
	bb1, _ := dc.AddBB("bb-1", topology.GeneralPurpose, 2, cap)
	bb2, _ := dc.AddBB("bb-2", topology.GeneralPurpose, 2, cap)
	fleet := esx.NewFleet(r, esx.DefaultConfig())
	place(t, fleet, bb1.Nodes[0], "a", "MK", 0.3, 0.5)
	place(t, fleet, bb2.Nodes[0], "b", "MK", 0.3, 0.5)
	c := NewCrossBB(fleet, func(vm *vmmodel.VM, to *topology.Node, now sim.Time) error {
		return fleet.Migrate(vm, to, now)
	})
	if n := c.Rebalance(0); n != 0 {
		t.Errorf("balanced BBs triggered %d moves", n)
	}
}

func TestCrossBBSingleBBGroupIsNoop(t *testing.T) {
	fleet, bb := testFleet(t, 2)
	place(t, fleet, bb.Nodes[0], "a", "MC", 0.5, 0.9)
	c := NewCrossBB(fleet, func(vm *vmmodel.VM, to *topology.Node, now sim.Time) error {
		return fleet.Migrate(vm, to, now)
	})
	if n := c.Rebalance(0); n != 0 {
		t.Errorf("single-BB group moved %d", n)
	}
}
