// Package engprof is the engine's always-on self-profiler: it attributes a
// cell's wall time and per-phase work counts to the engine phases that spent
// them — event dispatch bucketed by event owner, the scheduler's
// filter/weigh/claim pipeline, DRS scan and decide, telemetry sampling,
// injector firing, and snapshot encode.
//
// The design borrows the property production collectors (the telegraf
// vSphere input) have had for years: every collection cycle self-times its
// internal stages and exports those timings as first-class data, so a
// regression is attributable from the output alone, without a human
// attached to a live process with a profiler.
//
// Determinism: the profiler only ever *reads* the wall clock and writes the
// readings into counters no simulation code consults. It never touches the
// sim RNG, the event queue, or any decision input, so event order — and
// therefore every golden artifact digest — is unaffected by construction.
// Profile values themselves are wall-clock measurements and are naturally
// nondeterministic; they travel outside the golden artifact set.
//
// Overhead: the engine run loop pays exactly one monotonic-clock read per
// fired event (a delta chain: each reading closes the previous event's
// interval and opens the next), plus one owner-bucket lookup with a
// last-owner fast path. Sub-phases (scheduler, DRS) add a handful of reads
// per invocation of already-microsecond-scale operations. There are no
// allocations on any hot path after an owner's bucket exists.
//
// Allocation attribution: Go offers no free per-section allocator counters
// (runtime.MemStats is a stop-the-world read), so each phase carries an Ops
// counter of phase-specific work units — candidates filtered, samples
// appended, claims attempted, bytes encoded — that tracks that phase's
// allocation behavior by proxy. The units per phase are documented on the
// Phase constants.
//
// A Collector is NOT safe for concurrent use: it belongs to exactly one
// engine goroutine. Snapshot it with Profile() after (or between) runs.
package engprof

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"
	"time"
)

// FormatVersion stamps serialized profiles; readers reject other versions
// rather than misattribute.
const FormatVersion = 1

// Phase is one attribution bucket. Top-level phases partition the engine's
// accounted wall time (they sum to AccountedNanos); nested phases are
// measured inside a top-level phase and provide detail without adding to
// the total.
type Phase uint8

const (
	// PhaseBuild is simulation assembly: topology, fleet, workload
	// generation, injector attach. Ops: VMs generated.
	PhaseBuild Phase = iota
	// PhaseArrive is VM arrival dispatch (owner core/arrive): the
	// scheduler round trip plus guest start. Ops: arrivals dispatched.
	PhaseArrive
	// PhaseDelete is VM deletion dispatch (owner core/delete).
	PhaseDelete
	// PhaseHostSample is the host telemetry sweep (owner core/tick/host).
	// Ops: samples appended to the store.
	PhaseHostSample
	// PhaseVMSample is the per-VM telemetry sweep (owner core/tick/vm).
	// Ops: samples appended to the store.
	PhaseVMSample
	// PhaseDRSTick is the intra-BB rebalance tick (owner core/tick/drs).
	PhaseDRSTick
	// PhaseCrossBB is the cross-BB rebalance tick (owner core/tick/cross).
	PhaseCrossBB
	// PhaseResize is resize-wave dispatch (owner core/tick/resize).
	PhaseResize
	// PhaseInject is injector firing (owners with the inj/ prefix):
	// host failures, drains, surges scheduled by scenarios.
	PhaseInject
	// PhaseOther collects events with owners no other phase claims
	// (custom injectors, test handlers).
	PhaseOther
	// PhaseSnapshotEncode is mid-run engine snapshot capture+encode,
	// measured at the session/worker layer between run segments.
	// Ops: encoded bytes.
	PhaseSnapshotEncode

	// Nested phases: detail inside a top-level phase, excluded from the
	// AccountedNanos sum.

	// PhaseSchedFilter is the scheduler's candidate scan + filter chain
	// (nested in PhaseArrive/PhaseResize). Ops: candidates examined.
	PhaseSchedFilter
	// PhaseSchedWeigh is weigher ranking (nested). Ops: candidates ranked.
	PhaseSchedWeigh
	// PhaseSchedClaim is the claim/place retry loop (nested). Ops: claim
	// attempts (including retries).
	PhaseSchedClaim
	// PhaseDRSScan is DRS host-load collection (nested in PhaseDRSTick/
	// PhaseCrossBB). Ops: hosts scanned.
	PhaseDRSScan
	// PhaseDRSDecide is DRS victim selection + migration (nested).
	// Ops: migrations performed.
	PhaseDRSDecide

	// NumPhases bounds arrays indexed by Phase.
	NumPhases
)

// firstNested is the first detail phase (see Phase.Nested).
const firstNested = PhaseSchedFilter

var phaseNames = [NumPhases]string{
	PhaseBuild:          "build",
	PhaseArrive:         "arrive",
	PhaseDelete:         "delete",
	PhaseHostSample:     "sample/hosts",
	PhaseVMSample:       "sample/vms",
	PhaseDRSTick:        "drs/tick",
	PhaseCrossBB:        "drs/crossbb",
	PhaseResize:         "resize",
	PhaseInject:         "inject",
	PhaseOther:          "other",
	PhaseSnapshotEncode: "snapshot/encode",
	PhaseSchedFilter:    "sched/filter",
	PhaseSchedWeigh:     "sched/weigh",
	PhaseSchedClaim:     "sched/claim",
	PhaseDRSScan:        "drs/scan",
	PhaseDRSDecide:      "drs/decide",
}

// String renders the phase's stable wire name.
func (p Phase) String() string {
	if p < NumPhases {
		return phaseNames[p]
	}
	return fmt.Sprintf("phase(%d)", uint8(p))
}

// Nested reports whether the phase is detail measured inside a top-level
// phase; nested time is excluded from AccountedNanos to avoid double
// counting.
func (p Phase) Nested() bool { return p >= firstNested && p < NumPhases }

// PhaseByName resolves a wire name back to its Phase.
func PhaseByName(name string) (Phase, bool) {
	for p := Phase(0); p < NumPhases; p++ {
		if phaseNames[p] == name {
			return p, true
		}
	}
	return 0, false
}

// Counter is one phase's (or owner's) accumulated attribution.
type Counter struct {
	// Nanos is attributed wall time.
	Nanos int64
	// Count is how many times the phase ran (events fired, sweeps taken).
	Count int64
	// Ops counts phase-specific work units — the allocation-behavior
	// proxy (see the Phase constants for units).
	Ops int64 `json:",omitempty"`
}

func (c *Counter) add(o Counter) {
	c.Nanos += o.Nanos
	c.Count += o.Count
	c.Ops += o.Ops
}

// base anchors the package's monotonic readings: time.Since(base) is a
// single vDSO clock read with no allocation, and only differences of
// readings are ever used.
var base = time.Now()

// nanotime is a monotonic reading in nanoseconds since package init.
func nanotime() int64 { return int64(time.Since(base)) }

// ownerBucket accumulates one exact event-owner string's attribution, with
// its phase mapping resolved once at creation.
type ownerBucket struct {
	c     Counter
	phase Phase
}

// Collector accumulates a single engine's attribution. Create one per
// simulation with New; it is not safe for concurrent use.
type Collector struct {
	phases [NumPhases]Counter
	owners map[string]*ownerBucket
	// lastOwner caches the previous event's bucket: consecutive events
	// often share an owner (telemetry sweeps, arrival bursts), and the
	// string-equality fast path skips the map hash.
	lastOwnerKey string
	lastOwner    *ownerBucket
	// mark is the delta-chain cursor inside a run window.
	mark int64
	// accounted is total top-level attributed time (the envelope the
	// per-phase table is rendered against).
	accounted int64
	events    int64
}

// New returns an empty collector.
func New() *Collector {
	return &Collector{owners: make(map[string]*ownerBucket, 16)}
}

// phaseForOwner maps an event-owner string to its top-level phase.
func phaseForOwner(owner string) Phase {
	switch owner {
	case "core/arrive":
		return PhaseArrive
	case "core/delete":
		return PhaseDelete
	case "core/tick/host":
		return PhaseHostSample
	case "core/tick/vm":
		return PhaseVMSample
	case "core/tick/drs":
		return PhaseDRSTick
	case "core/tick/cross":
		return PhaseCrossBB
	case "core/tick/resize":
		return PhaseResize
	}
	if strings.HasPrefix(owner, "inj/") {
		return PhaseInject
	}
	return PhaseOther
}

func (c *Collector) bucket(owner string) *ownerBucket {
	if owner == c.lastOwnerKey && c.lastOwner != nil {
		return c.lastOwner
	}
	b := c.owners[owner]
	if b == nil {
		b = &ownerBucket{phase: phaseForOwner(owner)}
		c.owners[owner] = b
	}
	c.lastOwnerKey = owner
	c.lastOwner = b
	return b
}

// BeginRun opens a run window: the delta chain restarts here, so time the
// engine spent *outside* the run loop (snapshot encode between segments,
// observer dispatch) is never attributed to the first event of the next
// window.
func (c *Collector) BeginRun() { c.mark = nanotime() }

// Event closes the current delta-chain interval and attributes it to the
// owner of the event that just fired. One clock read; no allocation once
// the owner's bucket exists. The interval includes the queue's peek/pop
// work for that event, so a full run window's intervals account for the
// entire loop.
func (c *Collector) Event(owner string) {
	now := nanotime()
	d := now - c.mark
	c.mark = now
	b := c.bucket(owner)
	b.c.Nanos += d
	b.c.Count++
	p := &c.phases[b.phase]
	p.Nanos += d
	p.Count++
	c.accounted += d
	c.events++
}

// Start opens a measured span; pass the returned reading to EndSpan.
func (c *Collector) Start() int64 { return nanotime() }

// EndSpan attributes the time since start to phase and adds ops work
// units. Top-level spans (build, snapshot encode) extend the accounted
// envelope; nested spans (scheduler, DRS detail) do not — their time is
// already inside an event's interval.
func (c *Collector) EndSpan(phase Phase, start int64, ops int64) {
	d := nanotime() - start
	p := &c.phases[phase]
	p.Nanos += d
	p.Count++
	p.Ops += ops
	if !phase.Nested() {
		c.accounted += d
	}
}

// AddOps adds work units to a phase without touching its timing — for op
// counts observed where the timing is taken elsewhere (the sampler's
// append counts inside the host-tick interval).
func (c *Collector) AddOps(phase Phase, ops int64) { c.phases[phase].Ops += ops }

// SetOps overwrites a phase's work units with an externally accumulated
// absolute count (e.g. the placement service's claim counter).
func (c *Collector) SetOps(phase Phase, ops int64) { c.phases[phase].Ops = ops }

// SetOwnerOps overwrites an exact owner row's work units without touching
// any timing — for subsystem counters that enrich the owner breakdown
// (e.g. esx snapshot-cache hit/miss totals). Idempotent per snapshot:
// callers pass absolute counts.
func (c *Collector) SetOwnerOps(owner string, ops int64) { c.bucket(owner).c.Ops = ops }

// Events reports how many engine events have been attributed.
func (c *Collector) Events() int64 { return c.events }

// AccountedNanos reports the total wall time attributed so far across all
// top-level phases — the denominator for overhead-budget decisions like the
// session's adaptive snapshot cadence.
func (c *Collector) AccountedNanos() int64 { return c.accounted }

// PhaseCounter reads one phase's current counter.
func (c *Collector) PhaseCounter(p Phase) Counter { return c.phases[p] }

// OwnerCount is one exact event-owner's attribution in a Profile,
type OwnerCount struct {
	Owner string
	Counter
}

// Profile is the serializable snapshot of a collector: the per-cell
// artifact that rides core.Result, the dispatch CAS, and analyze -engprof.
type Profile struct {
	// Format is FormatVersion at snapshot time.
	Format int
	// Phases maps Phase wire names to their counters.
	Phases map[string]Counter
	// Owners is the exact event-owner breakdown, sorted by Nanos
	// descending (the top-N table of analyze -engprof).
	Owners []OwnerCount
	// AccountedNanos is the top-level envelope: every top-level phase's
	// Nanos sums to exactly this value, so attribution always covers 100%
	// of the profiler-observed wall time by construction.
	AccountedNanos int64
	// Events is the number of engine events attributed.
	Events int64
	// Cells is how many cell profiles were merged into this one (1 for a
	// single cell).
	Cells int
}

// Profile snapshots the collector. Cheap; callable between run windows.
func (c *Collector) Profile() *Profile {
	p := &Profile{
		Format:         FormatVersion,
		Phases:         make(map[string]Counter, int(NumPhases)),
		AccountedNanos: c.accounted,
		Events:         c.events,
		Cells:          1,
	}
	for ph := Phase(0); ph < NumPhases; ph++ {
		if c.phases[ph] != (Counter{}) {
			p.Phases[ph.String()] = c.phases[ph]
		}
	}
	p.Owners = make([]OwnerCount, 0, len(c.owners))
	for owner, b := range c.owners {
		p.Owners = append(p.Owners, OwnerCount{Owner: owner, Counter: b.c})
	}
	sortOwners(p.Owners)
	return p
}

func sortOwners(o []OwnerCount) {
	sort.Slice(o, func(i, j int) bool {
		if o[i].Nanos != o[j].Nanos {
			return o[i].Nanos > o[j].Nanos
		}
		return o[i].Owner < o[j].Owner
	})
}

// Validate rejects profiles from another format version.
func (p *Profile) Validate() error {
	if p.Format != FormatVersion {
		return fmt.Errorf("engprof: profile format %d, want %d", p.Format, FormatVersion)
	}
	return nil
}

// Phase reads one phase's counter (zero value when absent).
func (p *Profile) Phase(ph Phase) Counter { return p.Phases[ph.String()] }

// TopLevelNanos sums the top-level phases — equal to AccountedNanos for
// any profile this package produced.
func (p *Profile) TopLevelNanos() int64 {
	var sum int64
	for name, c := range p.Phases {
		if ph, ok := PhaseByName(name); ok && !ph.Nested() {
			sum += c.Nanos
		}
	}
	return sum
}

// Merge folds src into dst: counters add per phase, owner rows add per
// owner, envelopes and cell counts add. It is how analyze -engprof
// aggregates a sweep directory into one fleet-wide attribution.
func (dst *Profile) Merge(src *Profile) {
	for name, c := range src.Phases {
		d := dst.Phases[name]
		d.add(c)
		dst.Phases[name] = d
	}
	byOwner := make(map[string]int, len(dst.Owners))
	for i := range dst.Owners {
		byOwner[dst.Owners[i].Owner] = i
	}
	for _, oc := range src.Owners {
		if i, ok := byOwner[oc.Owner]; ok {
			dst.Owners[i].Counter.add(oc.Counter)
		} else {
			dst.Owners = append(dst.Owners, oc)
		}
	}
	sortOwners(dst.Owners)
	dst.AccountedNanos += src.AccountedNanos
	dst.Events += src.Events
	dst.Cells += src.Cells
}

// Encode writes the profile as JSON.
func (p *Profile) Encode(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(p)
}

// EncodeBytes renders the profile's JSON wire form.
func (p *Profile) EncodeBytes() ([]byte, error) {
	return json.MarshalIndent(p, "", "  ")
}

// Decode reads and validates a JSON profile.
func Decode(r io.Reader) (*Profile, error) {
	var p Profile
	if err := json.NewDecoder(r).Decode(&p); err != nil {
		return nil, fmt.Errorf("engprof: decode: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if p.Phases == nil {
		p.Phases = make(map[string]Counter)
	}
	if p.Cells == 0 {
		p.Cells = 1
	}
	return &p, nil
}

// DecodeBytes is Decode over a byte slice.
func DecodeBytes(b []byte) (*Profile, error) {
	return Decode(bytes.NewReader(b))
}
