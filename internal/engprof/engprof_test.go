package engprof

import (
	"bytes"
	"testing"
	"time"
)

func TestEventAttributionByOwner(t *testing.T) {
	c := New()
	c.BeginRun()
	for i := 0; i < 10; i++ {
		c.Event("core/arrive")
	}
	c.Event("core/tick/host")
	c.Event("inj/0/host-failure")
	c.Event("mystery/owner")

	if got := c.Events(); got != 13 {
		t.Fatalf("events = %d, want 13", got)
	}
	p := c.Profile()
	if p.Phase(PhaseArrive).Count != 10 {
		t.Fatalf("arrive count = %d, want 10", p.Phase(PhaseArrive).Count)
	}
	if p.Phase(PhaseHostSample).Count != 1 {
		t.Fatalf("host-sample count = %d", p.Phase(PhaseHostSample).Count)
	}
	if p.Phase(PhaseInject).Count != 1 {
		t.Fatalf("inject count = %d", p.Phase(PhaseInject).Count)
	}
	if p.Phase(PhaseOther).Count != 1 {
		t.Fatalf("other count = %d", p.Phase(PhaseOther).Count)
	}
	if len(p.Owners) != 4 {
		t.Fatalf("owners = %d, want 4", len(p.Owners))
	}
}

// The envelope invariant is the basis of the "phases sum to >=90% of cell
// wall time" acceptance: top-level phases sum to exactly AccountedNanos.
func TestTopLevelSumsToAccounted(t *testing.T) {
	c := New()
	st := c.Start()
	time.Sleep(time.Millisecond)
	c.EndSpan(PhaseBuild, st, 5)
	c.BeginRun()
	time.Sleep(time.Millisecond)
	c.Event("core/arrive")
	// Nested span must not inflate the envelope.
	st = c.Start()
	c.EndSpan(PhaseSchedFilter, st, 100)
	st = c.Start()
	time.Sleep(time.Millisecond)
	c.EndSpan(PhaseSnapshotEncode, st, 4096)

	p := c.Profile()
	if p.AccountedNanos <= 0 {
		t.Fatal("no accounted time")
	}
	if got := p.TopLevelNanos(); got != p.AccountedNanos {
		t.Fatalf("top-level sum %d != accounted %d", got, p.AccountedNanos)
	}
	if p.Phase(PhaseSchedFilter).Ops != 100 {
		t.Fatalf("nested ops = %d", p.Phase(PhaseSchedFilter).Ops)
	}
}

// BeginRun must restart the delta chain: time spent outside a run window
// (between segments) may not leak into the next window's first event.
func TestBeginRunRestartsDeltaChain(t *testing.T) {
	c := New()
	c.BeginRun()
	c.Event("core/arrive")
	time.Sleep(5 * time.Millisecond) // inter-segment work
	c.BeginRun()
	c.Event("core/arrive")
	p := c.Profile()
	if got := p.Phase(PhaseArrive).Nanos; got >= int64(5*time.Millisecond) {
		t.Fatalf("inter-segment time leaked into arrive: %d ns", got)
	}
}

func TestOpsHelpers(t *testing.T) {
	c := New()
	c.AddOps(PhaseHostSample, 7)
	c.AddOps(PhaseHostSample, 3)
	c.SetOps(PhaseSchedClaim, 42)
	c.SetOps(PhaseSchedClaim, 40)
	if got := c.PhaseCounter(PhaseHostSample).Ops; got != 10 {
		t.Fatalf("AddOps = %d, want 10", got)
	}
	if got := c.PhaseCounter(PhaseSchedClaim).Ops; got != 40 {
		t.Fatalf("SetOps = %d, want 40", got)
	}
}

func TestProfileRoundTripAndMerge(t *testing.T) {
	c := New()
	c.BeginRun()
	c.Event("core/arrive")
	c.Event("core/tick/drs")
	st := c.Start()
	c.EndSpan(PhaseDRSScan, st, 12)
	a := c.Profile()

	var buf bytes.Buffer
	if err := a.Encode(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Events != a.Events || back.AccountedNanos != a.AccountedNanos {
		t.Fatalf("round trip mismatch: %+v vs %+v", back, a)
	}
	if back.Phase(PhaseDRSScan).Ops != 12 {
		t.Fatalf("drs/scan ops = %d", back.Phase(PhaseDRSScan).Ops)
	}

	merged := back
	merged.Merge(a)
	if merged.Cells != 2 {
		t.Fatalf("cells = %d, want 2", merged.Cells)
	}
	if merged.Events != 2*a.Events {
		t.Fatalf("merged events = %d, want %d", merged.Events, 2*a.Events)
	}
	if got := merged.Phase(PhaseArrive).Count; got != 2 {
		t.Fatalf("merged arrive count = %d, want 2", got)
	}
	if got := merged.TopLevelNanos(); got != merged.AccountedNanos {
		t.Fatalf("merged envelope broken: %d != %d", got, merged.AccountedNanos)
	}
}

func TestDecodeRejectsVersionSkew(t *testing.T) {
	if _, err := DecodeBytes([]byte(`{"Format": 99}`)); err == nil {
		t.Fatal("want format error")
	}
}

func TestPhaseNames(t *testing.T) {
	seen := map[string]bool{}
	for p := Phase(0); p < NumPhases; p++ {
		name := p.String()
		if name == "" || seen[name] {
			t.Fatalf("phase %d has bad/duplicate name %q", p, name)
		}
		seen[name] = true
		got, ok := PhaseByName(name)
		if !ok || got != p {
			t.Fatalf("PhaseByName(%q) = %v, %v", name, got, ok)
		}
	}
	if PhaseBuild.Nested() || PhaseSnapshotEncode.Nested() {
		t.Fatal("top-level phase reported nested")
	}
	if !PhaseSchedFilter.Nested() || !PhaseDRSDecide.Nested() {
		t.Fatal("nested phase reported top-level")
	}
}

// The hot path must not allocate once an owner's bucket exists.
func TestEventDoesNotAllocate(t *testing.T) {
	c := New()
	c.BeginRun()
	c.Event("core/arrive")
	c.Event("core/tick/host")
	avg := testing.AllocsPerRun(1000, func() {
		c.Event("core/arrive")
		c.Event("core/tick/host")
	})
	if avg != 0 {
		t.Fatalf("Event allocates %.1f/run, want 0", avg)
	}
}

func BenchmarkEvent(b *testing.B) {
	c := New()
	c.BeginRun()
	c.Event("core/arrive")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Event("core/arrive")
	}
}
