package esx

import (
	"fmt"
	"testing"

	"sapsim/internal/sim"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
	"sapsim/internal/workload"
)

// BenchmarkHostSnapshot measures the metric-collection hot path: one
// snapshot per host per sampling interval over a 30-day window dominates
// simulation cost.
func BenchmarkHostSnapshot(b *testing.B) {
	r := topology.NewRegion("bench")
	dc := r.AddAZ("a").AddDC("d")
	bb, err := dc.AddBB("bb", topology.GeneralPurpose, 1, topology.Capacity{
		PCPUCores: 96, MemoryMB: 1 << 20, StorageGB: 8 << 10, NetworkGbps: 200,
	})
	if err != nil {
		b.Fatal(err)
	}
	fleet := NewFleet(r, DefaultConfig())
	// A realistically loaded host: ~30 VMs with full workload profiles.
	for i := 0; i < 30; i++ {
		vm := &vmmodel.VM{
			ID:     vmmodel.ID(fmt.Sprintf("vm-%d", i)),
			Flavor: vmmodel.CatalogByName()["MK"],
			Profile: &workload.Profile{
				Seed: uint64(i), MeanCPU: 0.3, MeanMem: 0.7,
				DiurnalAmp: 0.2, NoiseAmp: 0.1, BurstProb: 0.01, BurstMag: 2,
				TxKbps: 2000, RxKbps: 3000, DiskFrac: 0.4,
			},
		}
		if err := fleet.Place(vm, bb.Nodes[0], 0); err != nil {
			b.Fatal(err)
		}
	}
	h, err := fleet.Host(bb.Nodes[0].ID)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Snapshot(sim.Time(i)*sim.Minute, 5*sim.Minute)
	}
}
