// Package esx models VMware ESXi hypervisor resource accounting: the
// mapping from the demands of resident VMs to the host-level metrics the
// vROps exporter publishes (Appendix C, Table 4).
//
// The key quantities the paper analyzes are defined as in VMware:
//
//   - CPU contention (%): share of time a vCPU is ready to execute but
//     cannot be scheduled on a pCPU. We model a proportional-share
//     scheduler: when aggregate demand exceeds physical supply, the excess
//     translates into contention = (demand - supply) / demand.
//   - CPU ready time (ms): contention expressed as waiting time accumulated
//     over the sampling interval.
//
// Overcommitment (vCPU:pCPU ratio > 1, Sec. 7) is what makes contention
// possible: admission control limits *allocations*, not instantaneous
// demand.
package esx

import (
	"errors"
	"fmt"
	"sort"

	"sapsim/internal/sim"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
)

// Config sets fleet-wide hypervisor policy.
type Config struct {
	// OvercommitCPU is the admitted vCPU:pCPU ratio (the paper, Sec. 7:
	// "infrastructure providers often split physical cores into multiple
	// virtual cores"). 4.0 is a common production default.
	OvercommitCPU float64
	// OvercommitMem is the admitted vRAM:pRAM ratio. Memory of
	// enterprise workloads is rarely overcommitted; 1.0 disables it.
	OvercommitMem float64
	// ReservedMemMB is per-host hypervisor overhead.
	ReservedMemMB int64
	// BaseStorageGB is per-host OS/datastore overhead.
	BaseStorageGB int64
}

// DefaultConfig mirrors the production posture described in the paper.
func DefaultConfig() Config {
	return Config{
		OvercommitCPU: 4.0,
		OvercommitMem: 1.0,
		ReservedMemMB: 64 << 10, // 64 GiB
		BaseStorageGB: 200,
	}
}

// Host is one hypervisor with its resident VMs.
type Host struct {
	Node *topology.Node
	cfg  Config

	vms map[vmmodel.ID]*vmmodel.VM
	// sorted mirrors vms in ascending ID order, maintained incrementally on
	// admit/evict so snapshots iterate deterministically without re-sorting.
	sorted []*vmmodel.VM
	// ver counts resident-set mutations; it keys the snapshot cache.
	ver uint64

	allocVCPUs int // shared (overcommitted) vCPU allocation
	allocMemMB int64
	allocDisk  int64
	// pinnedCores are physical cores dedicated to CPU-pinned VMs
	// (Sec. 8 QoS); they are removed from the shared pool.
	pinnedCores int

	// Snapshot cache: within one sampling instant the host sampler, the VM
	// sampler's contention map, and DRS all ask for the same pure function
	// of (t, resident set) — compute it once. Only CPUReadyMillis depends
	// on the caller's interval; it is derived per call so the cache works
	// across subsystems sampling at different intervals.
	snapAt    sim.Time
	snapVer   uint64
	snapValid bool
	snap      Metrics
	// snapHits/snapMisses count cache outcomes: every miss is one full
	// resident-set walk, which is the engine profiler's work-unit proxy
	// for telemetry/DRS snapshot cost (see Fleet.SnapshotCacheStats).
	snapHits   uint64
	snapMisses uint64
}

// Errors returned by placement operations.
var (
	ErrInsufficientCPU = errors.New("esx: vCPU allocation would exceed overcommit limit")
	ErrInsufficientMem = errors.New("esx: memory allocation would exceed capacity")
	ErrMaintenance     = errors.New("esx: host in maintenance")
	ErrAlreadyPlaced   = errors.New("esx: vm already on host")
	ErrNotPlaced       = errors.New("esx: vm not on host")
	ErrUnknownHost     = errors.New("esx: unknown host")
)

// SharedCores reports the physical cores available to the shared
// (overcommitted) pool after pinning reservations.
func (h *Host) SharedCores() int {
	return h.Node.Capacity.PCPUCores - h.pinnedCores
}

// PinnedCores reports the physical cores dedicated to pinned VMs.
func (h *Host) PinnedCores() int { return h.pinnedCores }

// VCPUCapacity is the admissible shared vCPU allocation
// (shared pCPUs × overcommit).
func (h *Host) VCPUCapacity() int {
	return int(float64(h.SharedCores()) * h.cfg.OvercommitCPU)
}

// MemCapacityMB is the admissible memory allocation.
func (h *Host) MemCapacityMB() int64 {
	usable := h.Node.Capacity.MemoryMB - h.cfg.ReservedMemMB
	if usable < 0 {
		usable = 0
	}
	return int64(float64(usable) * h.cfg.OvercommitMem)
}

// AllocatedVCPUs reports the vCPUs of resident VMs.
func (h *Host) AllocatedVCPUs() int { return h.allocVCPUs }

// AllocatedMemMB reports the memory allocation of resident VMs.
func (h *Host) AllocatedMemMB() int64 { return h.allocMemMB }

// FreeVCPUs reports remaining admissible vCPU allocation.
func (h *Host) FreeVCPUs() int { return h.VCPUCapacity() - h.allocVCPUs }

// FreeMemMB reports remaining admissible memory allocation.
func (h *Host) FreeMemMB() int64 { return h.MemCapacityMB() - h.allocMemMB }

// VMCount reports the number of resident VMs.
func (h *Host) VMCount() int { return len(h.vms) }

// VMs returns resident VMs sorted by ID (deterministic iteration). The
// result is a copy; callers may admit or evict while ranging over it.
func (h *Host) VMs() []*vmmodel.VM {
	out := make([]*vmmodel.VM, len(h.sorted))
	copy(out, h.sorted)
	return out
}

// EachVM visits resident VMs in ascending ID order without allocating.
// The resident set must not change during the walk.
func (h *Host) EachVM(fn func(*vmmodel.VM)) {
	for _, vm := range h.sorted {
		fn(vm)
	}
}

// Fits reports whether the flavor can be admitted under current allocations.
func (h *Host) Fits(f *vmmodel.Flavor) bool {
	if h.Node.Maintenance {
		return false
	}
	if f.PinCPU {
		// Pinned VMs take dedicated physical cores (1:1) and must not
		// squeeze the shared pool below its existing allocation.
		if h.pinnedCores+f.VCPUs > h.Node.Capacity.PCPUCores {
			return false
		}
		remainingShared := h.Node.Capacity.PCPUCores - h.pinnedCores - f.VCPUs
		if float64(h.allocVCPUs) > float64(remainingShared)*h.cfg.OvercommitCPU {
			return false
		}
	} else if h.allocVCPUs+f.VCPUs > h.VCPUCapacity() {
		return false
	}
	if h.allocMemMB+int64(f.RAMGiB)<<10 > h.MemCapacityMB() {
		return false
	}
	return true
}

// admit places the VM on the host, enforcing admission control.
func (h *Host) admit(vm *vmmodel.VM) error {
	if h.Node.Maintenance {
		return fmt.Errorf("%w: %s", ErrMaintenance, h.Node.ID)
	}
	if _, ok := h.vms[vm.ID]; ok {
		return fmt.Errorf("%w: %s on %s", ErrAlreadyPlaced, vm.ID, h.Node.ID)
	}
	f := vm.Flavor
	if f.PinCPU {
		if h.pinnedCores+f.VCPUs > h.Node.Capacity.PCPUCores {
			return fmt.Errorf("%w: %s on %s (pinned)", ErrInsufficientCPU, vm.ID, h.Node.ID)
		}
		remainingShared := h.Node.Capacity.PCPUCores - h.pinnedCores - f.VCPUs
		if float64(h.allocVCPUs) > float64(remainingShared)*h.cfg.OvercommitCPU {
			return fmt.Errorf("%w: %s on %s (pinning would strand shared allocations)", ErrInsufficientCPU, vm.ID, h.Node.ID)
		}
	} else if h.allocVCPUs+vm.RequestedCPUCores() > h.VCPUCapacity() {
		return fmt.Errorf("%w: %s on %s", ErrInsufficientCPU, vm.ID, h.Node.ID)
	}
	if h.allocMemMB+vm.RequestedMemoryMB() > h.MemCapacityMB() {
		return fmt.Errorf("%w: %s on %s", ErrInsufficientMem, vm.ID, h.Node.ID)
	}
	h.vms[vm.ID] = vm
	i := sort.Search(len(h.sorted), func(i int) bool { return h.sorted[i].ID >= vm.ID })
	h.sorted = append(h.sorted, nil)
	copy(h.sorted[i+1:], h.sorted[i:])
	h.sorted[i] = vm
	h.ver++
	if f.PinCPU {
		h.pinnedCores += f.VCPUs
	} else {
		h.allocVCPUs += vm.RequestedCPUCores()
	}
	h.allocMemMB += vm.RequestedMemoryMB()
	h.allocDisk += vm.RequestedDiskGB()
	return nil
}

// evict removes the VM from the host.
func (h *Host) evict(vm *vmmodel.VM) error {
	if _, ok := h.vms[vm.ID]; !ok {
		return fmt.Errorf("%w: %s on %s", ErrNotPlaced, vm.ID, h.Node.ID)
	}
	delete(h.vms, vm.ID)
	i := sort.Search(len(h.sorted), func(i int) bool { return h.sorted[i].ID >= vm.ID })
	h.sorted = append(h.sorted[:i], h.sorted[i+1:]...)
	h.ver++
	if vm.Flavor.PinCPU {
		h.pinnedCores -= vm.RequestedCPUCores()
	} else {
		h.allocVCPUs -= vm.RequestedCPUCores()
	}
	h.allocMemMB -= vm.RequestedMemoryMB()
	h.allocDisk -= vm.RequestedDiskGB()
	return nil
}

// Metrics is the host-level snapshot matching the vROps metric set.
type Metrics struct {
	// CPUUtilPct is delivered CPU as a percentage of physical cores
	// (vrops_hostsystem_cpu_core_utilization_percentage).
	CPUUtilPct float64
	// CPUContentionPct follows the VMware definition described above
	// (vrops_hostsystem_cpu_contention_percentage).
	CPUContentionPct float64
	// CPUReadyMillis is ready time accumulated over the sampling
	// interval (vrops_hostsystem_cpu_ready_milliseconds).
	CPUReadyMillis float64
	// MemUsagePct is consumed memory over physical memory
	// (vrops_hostsystem_memory_usage_percentage).
	MemUsagePct float64
	// TxKbps / RxKbps are aggregate NIC rates
	// (vrops_hostsystem_network_bytes_{tx,rx}_kbps).
	TxKbps float64
	RxKbps float64
	// StorageUsedGB is local datastore usage
	// (vrops_hostsystem_diskspace_usage_gigabytes).
	StorageUsedGB float64
	// VMCount is the number of resident VMs.
	VMCount int
}

// StoragePct reports storage usage relative to node capacity.
func (m Metrics) StoragePct(capGB int64) float64 {
	if capGB <= 0 {
		return 0
	}
	return m.StorageUsedGB / float64(capGB) * 100
}

// Snapshot computes host metrics at simulation time t. interval is the
// sampling period over which ready time accumulates. The result is a pure
// function of (t, interval, resident set), so repeated calls at one sampling
// instant — host sampler, then the VM sampler's contention map, then a DRS
// pass — hit a cache instead of re-walking the VMs; only the ready time is
// re-derived for the caller's interval.
func (h *Host) Snapshot(t sim.Time, interval sim.Time) Metrics {
	if !h.snapValid || h.snapAt != t || h.snapVer != h.ver {
		h.snap = h.snapshot(t)
		h.snapAt, h.snapVer, h.snapValid = t, h.ver, true
		h.snapMisses++
	} else {
		h.snapHits++
	}
	m := h.snap
	m.CPUReadyMillis = m.CPUContentionPct / 100 * float64(interval.Duration().Milliseconds())
	return m
}

func (h *Host) snapshot(t sim.Time) Metrics {
	var (
		sharedDemand float64 // shared-pool vCPU demand, core units
		pinnedUsed   float64 // delivered cores on dedicated (pinned) CPUs
		memMB        float64
		tx, rx       float64
		diskGB       float64
	)
	// Iterate in sorted order: float accumulation is not associative, and
	// deterministic snapshots make whole runs reproducible bit-for-bit.
	for _, vm := range h.sorted {
		p := vm.Profile
		if p == nil {
			continue
		}
		demand := p.CPUUsage(t) * float64(vm.RequestedCPUCores())
		if vm.Flavor.PinCPU {
			// Pinned vCPUs map 1:1 to cores: demand beyond the
			// allocation is clipped, never contended.
			if max := float64(vm.RequestedCPUCores()); demand > max {
				demand = max
			}
			pinnedUsed += demand
		} else {
			sharedDemand += demand
		}
		memMB += p.MemUsage(t) * float64(vm.RequestedMemoryMB())
		tx += p.NetTxKbps(t)
		rx += p.NetRxKbps(t)
		diskGB += p.DiskUsage(t) * float64(vm.RequestedDiskGB())
	}
	totalCores := float64(h.Node.Capacity.PCPUCores)
	sharedSupply := float64(h.SharedCores())
	m := Metrics{VMCount: len(h.vms), TxKbps: tx, RxKbps: rx}

	sharedDelivered := sharedDemand
	if sharedDemand > sharedSupply {
		sharedDelivered = sharedSupply
		m.CPUContentionPct = (sharedDemand - sharedSupply) / sharedDemand * 100
	}
	m.CPUUtilPct = (sharedDelivered + pinnedUsed) / totalCores * 100
	// CPUReadyMillis is interval-dependent; Snapshot derives it per call.

	physMem := float64(h.Node.Capacity.MemoryMB)
	usedMem := memMB + float64(h.cfg.ReservedMemMB)
	if usedMem > physMem {
		usedMem = physMem
	}
	m.MemUsagePct = usedMem / physMem * 100

	m.StorageUsedGB = diskGB + float64(h.cfg.BaseStorageGB)
	if max := float64(h.Node.Capacity.StorageGB); m.StorageUsedGB > max {
		m.StorageUsedGB = max
	}
	return m
}

// VMUsage is the per-VM snapshot matching the vROps VM metrics.
type VMUsage struct {
	// CPUUsageRatio is used over requested CPU
	// (vrops_virtualmachine_cpu_usage_ratio), after contention losses.
	CPUUsageRatio float64
	// MemUsageRatio is consumed over requested memory
	// (vrops_virtualmachine_memory_consumed_ratio).
	MemUsageRatio float64
	// ReadyMillis is this VM's share of scheduling delay.
	ReadyMillis float64
}

// VMSnapshot computes one VM's delivered usage at time t given the host's
// contention level. Under proportional-share scheduling every runnable vCPU
// on a saturated host is throttled by the same factor.
func (h *Host) VMSnapshot(vm *vmmodel.VM, t sim.Time, interval sim.Time, hostContentionPct float64) VMUsage {
	p := vm.Profile
	if p == nil {
		return VMUsage{}
	}
	if vm.Flavor.PinCPU {
		// Dedicated cores: full delivery up to the allocation, no
		// scheduling delay — the QoS guarantee of CPU pinning.
		demand := p.CPUUsage(t)
		if demand > 1 {
			demand = 1
		}
		return VMUsage{CPUUsageRatio: demand, MemUsageRatio: p.MemUsage(t)}
	}
	demand := p.CPUUsage(t)
	delivered := demand * (1 - hostContentionPct/100)
	if delivered > 1 {
		delivered = 1
	}
	return VMUsage{
		CPUUsageRatio: delivered,
		MemUsageRatio: p.MemUsage(t),
		ReadyMillis:   hostContentionPct / 100 * float64(interval.Duration().Milliseconds()),
	}
}

// Fleet manages the hosts of a region.
type Fleet struct {
	cfg    Config
	hosts  map[topology.NodeID]*Host
	region *topology.Region

	// Host-set caches. Host membership changes only through AddHost (capacity
	// expansion), so the sorted fleet-wide slice and the per-BB slices are
	// built once and invalidated there.
	sortedHosts []*Host
	bbHosts     map[topology.BBID][]*Host
}

// NewFleet wraps every node of the region in a Host.
func NewFleet(region *topology.Region, cfg Config) *Fleet {
	f := &Fleet{cfg: cfg, hosts: make(map[topology.NodeID]*Host), region: region}
	for _, n := range region.Nodes() {
		f.hosts[n.ID] = &Host{Node: n, cfg: cfg, vms: make(map[vmmodel.ID]*vmmodel.VM)}
	}
	return f
}

// AddHost wraps a node added to the topology after fleet construction — a
// capacity expansion — in a Host and registers it. Adding a node that is
// already managed returns the existing host unchanged.
func (f *Fleet) AddHost(n *topology.Node) *Host {
	if h, ok := f.hosts[n.ID]; ok {
		return h
	}
	h := &Host{Node: n, cfg: f.cfg, vms: make(map[vmmodel.ID]*vmmodel.VM)}
	f.hosts[n.ID] = h
	f.sortedHosts = nil
	f.bbHosts = nil
	return h
}

// Config returns the fleet-wide hypervisor policy.
func (f *Fleet) Config() Config { return f.cfg }

// Region returns the underlying topology.
func (f *Fleet) Region() *topology.Region { return f.region }

// Host returns the host for a node ID.
func (f *Fleet) Host(id topology.NodeID) (*Host, error) {
	h, ok := f.hosts[id]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownHost, id)
	}
	return h, nil
}

// SnapshotCacheStats sums host snapshot-cache outcomes fleet-wide. A miss
// is one full resident-set walk; hits quantify the work the cache saves
// when the host sampler, the VM sampler's contention map, and DRS share a
// sampling instant. The totals feed the engine profiler's owner breakdown.
func (f *Fleet) SnapshotCacheStats() (hits, misses uint64) {
	for _, h := range f.sorted() {
		hits += h.snapHits
		misses += h.snapMisses
	}
	return hits, misses
}

// sorted returns the cached fleet-wide host slice, node-ID order.
func (f *Fleet) sorted() []*Host {
	if f.sortedHosts == nil {
		out := make([]*Host, 0, len(f.hosts))
		for _, h := range f.hosts {
			out = append(out, h)
		}
		sort.Slice(out, func(i, j int) bool { return out[i].Node.ID < out[j].Node.ID })
		f.sortedHosts = out
	}
	return f.sortedHosts
}

// inBB returns the cached host slice of one building block, node-index order.
func (f *Fleet) inBB(bb *topology.BuildingBlock) []*Host {
	if hs, ok := f.bbHosts[bb.ID]; ok {
		return hs
	}
	out := make([]*Host, 0, len(bb.Nodes))
	for _, n := range bb.Nodes {
		if h, ok := f.hosts[n.ID]; ok {
			out = append(out, h)
		}
	}
	if f.bbHosts == nil {
		f.bbHosts = make(map[topology.BBID][]*Host)
	}
	f.bbHosts[bb.ID] = out
	return out
}

// Hosts returns all hosts sorted by node ID. The result is a copy; callers
// may expand the fleet while ranging over it.
func (f *Fleet) Hosts() []*Host {
	s := f.sorted()
	out := make([]*Host, len(s))
	copy(out, s)
	return out
}

// EachHost visits every host in node-ID order without allocating. The host
// set must not change during the walk.
func (f *Fleet) EachHost(fn func(*Host)) {
	for _, h := range f.sorted() {
		fn(h)
	}
}

// HostsInBB returns the hosts of one building block, by node index. The
// result is a copy; callers may expand the fleet while ranging over it.
func (f *Fleet) HostsInBB(bb *topology.BuildingBlock) []*Host {
	s := f.inBB(bb)
	out := make([]*Host, len(s))
	copy(out, s)
	return out
}

// EachHostInBB visits one building block's hosts in node-index order without
// allocating. The host set must not change during the walk.
func (f *Fleet) EachHostInBB(bb *topology.BuildingBlock, fn func(*Host)) {
	for _, h := range f.inBB(bb) {
		fn(h)
	}
}

// Place admits the VM onto the node and updates the VM's placement.
func (f *Fleet) Place(vm *vmmodel.VM, node *topology.Node, at sim.Time) error {
	h, err := f.Host(node.ID)
	if err != nil {
		return err
	}
	if err := h.admit(vm); err != nil {
		return err
	}
	vm.Place(node, at)
	return nil
}

// Remove releases the VM's resources and marks it deleted.
func (f *Fleet) Remove(vm *vmmodel.VM, at sim.Time) error {
	if vm.Node == nil {
		return fmt.Errorf("%w: %s", ErrNotPlaced, vm.ID)
	}
	h, err := f.Host(vm.Node.ID)
	if err != nil {
		return err
	}
	if err := h.evict(vm); err != nil {
		return err
	}
	vm.Delete(at)
	return nil
}

// Evict removes the VM from its host without deleting it, leaving it in
// the Migrating state — the first half of a resize or cold migration.
func (f *Fleet) Evict(vm *vmmodel.VM) error {
	if vm.Node == nil {
		return fmt.Errorf("%w: %s", ErrNotPlaced, vm.ID)
	}
	h, err := f.Host(vm.Node.ID)
	if err != nil {
		return err
	}
	if err := h.evict(vm); err != nil {
		return err
	}
	vm.Node = nil
	vm.BB = nil
	vm.State = vmmodel.Migrating
	return nil
}

// Migrate moves the VM to another node atomically: the destination must
// admit it before the source releases it.
func (f *Fleet) Migrate(vm *vmmodel.VM, to *topology.Node, at sim.Time) error {
	if vm.Node == nil {
		return fmt.Errorf("%w: %s", ErrNotPlaced, vm.ID)
	}
	if vm.Node.ID == to.ID {
		return nil
	}
	src, err := f.Host(vm.Node.ID)
	if err != nil {
		return err
	}
	dst, err := f.Host(to.ID)
	if err != nil {
		return err
	}
	if err := dst.admit(vm); err != nil {
		return err
	}
	if err := src.evict(vm); err != nil {
		// Roll back the destination admission.
		_ = dst.evict(vm)
		return err
	}
	vm.MigrateTo(to, at)
	return nil
}

// BBAllocation summarizes a building block's allocation state, the view the
// Nova scheduler sees ("each vSphere cluster is represented as a single
// compute host", Sec. 3.1).
type BBAllocation struct {
	BB          *topology.BuildingBlock
	VCPUCap     int
	VCPUAlloc   int
	MemCapMB    int64
	MemAllocMB  int64
	ActiveNodes int
	VMCount     int
}

// BBAlloc aggregates allocation across the building block's active nodes.
// Maintenance flags are re-read on every call (tests and injections flip
// them directly on the node), so only the host slice is cached, not the sum.
func (f *Fleet) BBAlloc(bb *topology.BuildingBlock) BBAllocation {
	agg := BBAllocation{BB: bb}
	for _, h := range f.inBB(bb) {
		if h.Node.Maintenance {
			continue
		}
		agg.ActiveNodes++
		agg.VCPUCap += h.VCPUCapacity()
		agg.VCPUAlloc += h.AllocatedVCPUs()
		agg.MemCapMB += h.MemCapacityMB()
		agg.MemAllocMB += h.AllocatedMemMB()
		agg.VMCount += h.VMCount()
	}
	return agg
}
