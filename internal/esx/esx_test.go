package esx

import (
	"errors"
	"math"
	"testing"

	"sapsim/internal/sim"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
)

// constProfile is a fixed-demand usage profile for deterministic tests.
type constProfile struct {
	cpu, mem, tx, rx, disk float64
}

func (p constProfile) CPUUsage(sim.Time) float64  { return p.cpu }
func (p constProfile) MemUsage(sim.Time) float64  { return p.mem }
func (p constProfile) NetTxKbps(sim.Time) float64 { return p.tx }
func (p constProfile) NetRxKbps(sim.Time) float64 { return p.rx }
func (p constProfile) DiskUsage(sim.Time) float64 { return p.disk }

func testRegion(t *testing.T) *topology.Region {
	t.Helper()
	r := topology.NewRegion("t")
	dc := r.AddAZ("az").AddDC("dc")
	cap := topology.Capacity{PCPUCores: 32, MemoryMB: 512 << 10, StorageGB: 4 << 10, NetworkGbps: 200}
	if _, err := dc.AddBB("bb-0", topology.GeneralPurpose, 3, cap); err != nil {
		t.Fatal(err)
	}
	return r
}

func newVM(id string, flavor string, p vmmodel.UsageProfile) *vmmodel.VM {
	f := vmmodel.CatalogByName()[flavor]
	return &vmmodel.VM{ID: vmmodel.ID(id), Flavor: f, Profile: p}
}

func TestPlaceAndRemove(t *testing.T) {
	r := testRegion(t)
	f := NewFleet(r, DefaultConfig())
	n := r.Nodes()[0]
	vm := newVM("v1", "MK", constProfile{cpu: 0.5, mem: 0.8})

	if err := f.Place(vm, n, sim.Hour); err != nil {
		t.Fatal(err)
	}
	h, _ := f.Host(n.ID)
	if h.VMCount() != 1 || h.AllocatedVCPUs() != 2 {
		t.Errorf("after place: count=%d vcpus=%d", h.VMCount(), h.AllocatedVCPUs())
	}
	if vm.Node != n || vm.State != vmmodel.Active {
		t.Error("VM placement state wrong")
	}

	if err := f.Remove(vm, 2*sim.Hour); err != nil {
		t.Fatal(err)
	}
	if h.VMCount() != 0 || h.AllocatedVCPUs() != 0 || h.AllocatedMemMB() != 0 {
		t.Error("remove did not release resources")
	}
	if vm.State != vmmodel.Deleted {
		t.Error("VM not deleted")
	}
}

func TestAdmissionControlCPU(t *testing.T) {
	r := testRegion(t)
	cfg := DefaultConfig()
	cfg.OvercommitCPU = 1.0 // 32 vCPUs max
	f := NewFleet(r, cfg)
	n := r.Nodes()[0]

	// MJ has 16 vCPUs: two fit exactly, a third must be rejected.
	for i := 0; i < 2; i++ {
		vm := newVM(string(rune('a'+i)), "MJ", constProfile{})
		if err := f.Place(vm, n, 0); err != nil {
			t.Fatal(err)
		}
	}
	vm := newVM("c", "MJ", constProfile{})
	if err := f.Place(vm, n, 0); !errors.Is(err, ErrInsufficientCPU) {
		t.Errorf("overcommit violation error = %v, want ErrInsufficientCPU", err)
	}
}

func TestAdmissionControlMemory(t *testing.T) {
	r := testRegion(t)
	f := NewFleet(r, DefaultConfig())
	n := r.Nodes()[0]
	// Node: 512 GiB - 64 reserved = 448 GiB usable. XLH needs 256 GiB.
	if err := f.Place(newVM("a", "XLH", constProfile{}), n, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Place(newVM("b", "XLH", constProfile{}), n, 0); !errors.Is(err, ErrInsufficientMem) {
		t.Errorf("memory violation error = %v, want ErrInsufficientMem", err)
	}
}

func TestMaintenanceRejected(t *testing.T) {
	r := testRegion(t)
	f := NewFleet(r, DefaultConfig())
	n := r.Nodes()[0]
	n.Maintenance = true
	if err := f.Place(newVM("a", "MK", constProfile{}), n, 0); !errors.Is(err, ErrMaintenance) {
		t.Errorf("maintenance error = %v", err)
	}
	h, _ := f.Host(n.ID)
	if h.Fits(vmmodel.CatalogByName()["MK"]) {
		t.Error("Fits should be false for maintenance host")
	}
}

func TestDoublePlaceRejected(t *testing.T) {
	r := testRegion(t)
	f := NewFleet(r, DefaultConfig())
	n := r.Nodes()[0]
	vm := newVM("a", "MK", constProfile{})
	if err := f.Place(vm, n, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Place(vm, n, 0); !errors.Is(err, ErrAlreadyPlaced) {
		t.Errorf("double place error = %v", err)
	}
}

func TestMigrate(t *testing.T) {
	r := testRegion(t)
	f := NewFleet(r, DefaultConfig())
	nodes := r.Nodes()
	vm := newVM("a", "MN", constProfile{cpu: 0.3})
	if err := f.Place(vm, nodes[0], 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Migrate(vm, nodes[1], sim.Hour); err != nil {
		t.Fatal(err)
	}
	h0, _ := f.Host(nodes[0].ID)
	h1, _ := f.Host(nodes[1].ID)
	if h0.VMCount() != 0 || h1.VMCount() != 1 {
		t.Error("migration did not move allocation")
	}
	if vm.Migrations != 1 || vm.Node != nodes[1] {
		t.Error("VM migration state wrong")
	}
	// Self-migration is a no-op.
	if err := f.Migrate(vm, nodes[1], sim.Hour); err != nil {
		t.Fatal(err)
	}
	if vm.Migrations != 1 {
		t.Error("self-migration should not count")
	}
}

func TestMigrateUnplacedFails(t *testing.T) {
	r := testRegion(t)
	f := NewFleet(r, DefaultConfig())
	vm := newVM("a", "MK", constProfile{})
	if err := f.Migrate(vm, r.Nodes()[0], 0); !errors.Is(err, ErrNotPlaced) {
		t.Errorf("unplaced migrate error = %v", err)
	}
	if err := f.Remove(vm, 0); !errors.Is(err, ErrNotPlaced) {
		t.Errorf("unplaced remove error = %v", err)
	}
}

func TestMigrateDestinationFullRollsBack(t *testing.T) {
	r := testRegion(t)
	cfg := DefaultConfig()
	cfg.OvercommitCPU = 1.0
	f := NewFleet(r, cfg)
	nodes := r.Nodes()
	// Fill destination.
	for i := 0; i < 2; i++ {
		if err := f.Place(newVM(string(rune('x'+i)), "MJ", constProfile{}), nodes[1], 0); err != nil {
			t.Fatal(err)
		}
	}
	vm := newVM("a", "MJ", constProfile{})
	if err := f.Place(vm, nodes[0], 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Migrate(vm, nodes[1], 0); err == nil {
		t.Fatal("migration to full host succeeded")
	}
	if vm.Node != nodes[0] {
		t.Error("failed migration moved the VM")
	}
	h0, _ := f.Host(nodes[0].ID)
	if h0.VMCount() != 1 {
		t.Error("failed migration lost the source allocation")
	}
}

func TestSnapshotNoContention(t *testing.T) {
	r := testRegion(t)
	f := NewFleet(r, DefaultConfig())
	n := r.Nodes()[0] // 32 pCPU
	// MJ: 16 vCPU at 50% demand = 8 cores; 64 GiB at 80% mem.
	vm := newVM("a", "MJ", constProfile{cpu: 0.5, mem: 0.8, tx: 1000, rx: 2000, disk: 0.5})
	if err := f.Place(vm, n, 0); err != nil {
		t.Fatal(err)
	}
	h, _ := f.Host(n.ID)
	m := h.Snapshot(0, 5*sim.Minute)
	if math.Abs(m.CPUUtilPct-25) > 1e-9 { // 8/32
		t.Errorf("CPUUtilPct = %v, want 25", m.CPUUtilPct)
	}
	if m.CPUContentionPct != 0 || m.CPUReadyMillis != 0 {
		t.Errorf("unexpected contention: %+v", m)
	}
	// Memory: 0.8*64 GiB + 64 GiB reserved = 115.2 GiB of 512.
	wantMem := (0.8*64*1024 + 64*1024) / (512 * 1024) * 100
	if math.Abs(m.MemUsagePct-wantMem) > 1e-9 {
		t.Errorf("MemUsagePct = %v, want %v", m.MemUsagePct, wantMem)
	}
	if m.TxKbps != 1000 || m.RxKbps != 2000 {
		t.Errorf("network = %v/%v", m.TxKbps, m.RxKbps)
	}
	// Storage: 0.5*200 GiB + 200 base = 300 GiB.
	if math.Abs(m.StorageUsedGB-300) > 1e-9 {
		t.Errorf("StorageUsedGB = %v, want 300", m.StorageUsedGB)
	}
	if got := m.StoragePct(n.Capacity.StorageGB); math.Abs(got-300.0/4096*100) > 1e-9 {
		t.Errorf("StoragePct = %v", got)
	}
	if m.VMCount != 1 {
		t.Errorf("VMCount = %d", m.VMCount)
	}
}

func TestSnapshotContention(t *testing.T) {
	r := testRegion(t)
	f := NewFleet(r, DefaultConfig())
	n := r.Nodes()[0] // 32 pCPU, 128 vCPU admissible
	// 4 × MJ (16 vCPU) at full demand = 64 cores demanded on 32 cores.
	for i := 0; i < 4; i++ {
		vm := newVM(string(rune('a'+i)), "MJ", constProfile{cpu: 1.0, mem: 0.1})
		if err := f.Place(vm, n, 0); err != nil {
			t.Fatal(err)
		}
	}
	h, _ := f.Host(n.ID)
	m := h.Snapshot(0, 5*sim.Minute)
	if m.CPUUtilPct != 100 {
		t.Errorf("CPUUtilPct = %v, want 100 (saturated)", m.CPUUtilPct)
	}
	if math.Abs(m.CPUContentionPct-50) > 1e-9 { // (64-32)/64
		t.Errorf("CPUContentionPct = %v, want 50", m.CPUContentionPct)
	}
	wantReady := 0.5 * 5 * 60 * 1000 // 150,000 ms over a 5-minute window
	if math.Abs(m.CPUReadyMillis-wantReady) > 1e-9 {
		t.Errorf("CPUReadyMillis = %v, want %v", m.CPUReadyMillis, wantReady)
	}
}

func TestVMSnapshotThrottling(t *testing.T) {
	r := testRegion(t)
	f := NewFleet(r, DefaultConfig())
	n := r.Nodes()[0]
	vm := newVM("a", "MJ", constProfile{cpu: 0.9, mem: 0.7})
	if err := f.Place(vm, n, 0); err != nil {
		t.Fatal(err)
	}
	h, _ := f.Host(n.ID)
	u := h.VMSnapshot(vm, 0, 5*sim.Minute, 50)
	if math.Abs(u.CPUUsageRatio-0.45) > 1e-9 {
		t.Errorf("throttled usage = %v, want 0.45", u.CPUUsageRatio)
	}
	if u.MemUsageRatio != 0.7 {
		t.Errorf("mem ratio = %v", u.MemUsageRatio)
	}
	if u.ReadyMillis != 150000 {
		t.Errorf("ready = %v", u.ReadyMillis)
	}
	// No profile → zero usage.
	bare := &vmmodel.VM{ID: "bare", Flavor: vm.Flavor}
	if got := h.VMSnapshot(bare, 0, sim.Minute, 0); got != (VMUsage{}) {
		t.Errorf("bare VM usage = %+v, want zero", got)
	}
}

func TestBBAlloc(t *testing.T) {
	r := testRegion(t)
	f := NewFleet(r, DefaultConfig())
	bb, _ := r.BB("bb-0")
	if err := f.Place(newVM("a", "MJ", constProfile{}), bb.Nodes[0], 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Place(newVM("b", "MK", constProfile{}), bb.Nodes[1], 0); err != nil {
		t.Fatal(err)
	}
	agg := f.BBAlloc(bb)
	if agg.VCPUAlloc != 18 || agg.VMCount != 2 || agg.ActiveNodes != 3 {
		t.Errorf("BBAlloc = %+v", agg)
	}
	if agg.VCPUCap != 3*32*4 {
		t.Errorf("VCPUCap = %d, want %d", agg.VCPUCap, 3*32*4)
	}
	bb.Nodes[2].Maintenance = true
	agg = f.BBAlloc(bb)
	if agg.ActiveNodes != 2 {
		t.Errorf("maintenance node counted: %+v", agg)
	}
}

func TestHostsDeterministicOrder(t *testing.T) {
	r := testRegion(t)
	f := NewFleet(r, DefaultConfig())
	hosts := f.Hosts()
	for i := 1; i < len(hosts); i++ {
		if hosts[i-1].Node.ID >= hosts[i].Node.ID {
			t.Fatal("hosts not sorted")
		}
	}
	if _, err := f.Host("nope"); !errors.Is(err, ErrUnknownHost) {
		t.Errorf("unknown host error = %v", err)
	}
}

func TestVMsSorted(t *testing.T) {
	r := testRegion(t)
	f := NewFleet(r, DefaultConfig())
	n := r.Nodes()[0]
	for _, id := range []string{"c", "a", "b"} {
		if err := f.Place(newVM(id, "SA", constProfile{}), n, 0); err != nil {
			t.Fatal(err)
		}
	}
	h, _ := f.Host(n.ID)
	vms := h.VMs()
	if vms[0].ID != "a" || vms[1].ID != "b" || vms[2].ID != "c" {
		t.Errorf("VMs not sorted: %v", vms)
	}
}

// Invariant: allocation counters equal the sum over resident VMs after any
// sequence of place/migrate/remove operations.
func TestAllocationInvariant(t *testing.T) {
	r := testRegion(t)
	f := NewFleet(r, DefaultConfig())
	nodes := r.Nodes()
	var vms []*vmmodel.VM
	flavors := []string{"SA", "MK", "MN", "MJ", "MC"}
	for i := 0; i < 30; i++ {
		vm := newVM(string(rune('A'+i)), flavors[i%len(flavors)], constProfile{cpu: 0.2})
		if err := f.Place(vm, nodes[i%len(nodes)], 0); err == nil {
			vms = append(vms, vm)
		}
	}
	for i, vm := range vms {
		switch i % 3 {
		case 0:
			_ = f.Migrate(vm, nodes[(i+1)%len(nodes)], sim.Hour)
		case 1:
			_ = f.Remove(vm, sim.Hour)
		}
	}
	for _, h := range f.Hosts() {
		wantCPU, wantMem := 0, int64(0)
		for _, vm := range h.VMs() {
			wantCPU += vm.RequestedCPUCores()
			wantMem += vm.RequestedMemoryMB()
		}
		if h.AllocatedVCPUs() != wantCPU || h.AllocatedMemMB() != wantMem {
			t.Errorf("host %s counters drifted: cpu %d!=%d mem %d!=%d",
				h.Node.ID, h.AllocatedVCPUs(), wantCPU, h.AllocatedMemMB(), wantMem)
		}
	}
}
