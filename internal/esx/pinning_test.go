package esx

import (
	"errors"
	"math"
	"testing"

	"sapsim/internal/sim"
	"sapsim/internal/vmmodel"
)

// pinnedFlavor returns a CPU-pinned test flavor (the Sec. 8 QoS class).
func pinnedFlavor(vcpus, ramGiB int) *vmmodel.Flavor {
	return &vmmodel.Flavor{
		Name: "PINNED", VCPUs: vcpus, RAMGiB: ramGiB, DiskGB: 100, PinCPU: true,
	}
}

func TestPinnedAdmissionOneToOne(t *testing.T) {
	r := testRegion(t)
	f := NewFleet(r, DefaultConfig()) // 32 pCPU, overcommit 4
	n := r.Nodes()[0]

	// Pinned VMs are exempt from overcommit: only 32 pinned vCPUs fit.
	vm1 := &vmmodel.VM{ID: "p1", Flavor: pinnedFlavor(20, 32), Profile: constProfile{cpu: 1.0, mem: 0.5}}
	if err := f.Place(vm1, n, 0); err != nil {
		t.Fatal(err)
	}
	vm2 := &vmmodel.VM{ID: "p2", Flavor: pinnedFlavor(20, 32), Profile: constProfile{cpu: 1.0, mem: 0.5}}
	if err := f.Place(vm2, n, 0); !errors.Is(err, ErrInsufficientCPU) {
		t.Errorf("over-pinning error = %v, want ErrInsufficientCPU", err)
	}
	h, _ := f.Host(n.ID)
	if h.PinnedCores() != 20 || h.SharedCores() != 12 {
		t.Errorf("pinned/shared = %d/%d, want 20/12", h.PinnedCores(), h.SharedCores())
	}
	// Shared capacity shrank accordingly: 12 × 4 = 48 vCPUs.
	if got := h.VCPUCapacity(); got != 48 {
		t.Errorf("shared capacity = %d, want 48", got)
	}
}

func TestPinnedCannotStrandSharedAllocations(t *testing.T) {
	r := testRegion(t)
	f := NewFleet(r, DefaultConfig())
	n := r.Nodes()[0]
	// Fill the shared pool to 120 vCPUs (capacity 128 at 32 cores × 4).
	for i := 0; i < 15; i++ {
		vm := newVM(string(rune('a'+i)), "MH", constProfile{cpu: 0.1, mem: 0.1}) // 4 vCPU, 8 GiB; 15×4 = 60 vCPU
		if err := f.Place(vm, n, 0); err != nil {
			t.Fatal(err)
		}
	}
	h, _ := f.Host(n.ID)
	if h.AllocatedVCPUs() != 60 {
		t.Fatalf("setup: shared alloc = %d", h.AllocatedVCPUs())
	}
	// Pinning 20 cores would leave 12 shared cores = 48 admissible
	// vCPUs < 60 already allocated: must be rejected.
	vm := &vmmodel.VM{ID: "pin", Flavor: pinnedFlavor(20, 16), Profile: constProfile{}}
	if err := f.Place(vm, n, 0); !errors.Is(err, ErrInsufficientCPU) {
		t.Errorf("stranding pin error = %v, want ErrInsufficientCPU", err)
	}
	// A smaller pin that keeps the shared pool solvent is fine.
	vm2 := &vmmodel.VM{ID: "pin2", Flavor: pinnedFlavor(8, 16), Profile: constProfile{}}
	if err := f.Place(vm2, n, 0); err != nil {
		t.Errorf("viable pin rejected: %v", err)
	}
}

func TestPinnedVMsNeverContended(t *testing.T) {
	r := testRegion(t)
	f := NewFleet(r, DefaultConfig())
	n := r.Nodes()[0] // 32 cores

	// One pinned VM at full demand on 8 dedicated cores.
	pinned := &vmmodel.VM{ID: "pin", Flavor: pinnedFlavor(8, 16), Profile: constProfile{cpu: 1.0, mem: 0.5}}
	if err := f.Place(pinned, n, 0); err != nil {
		t.Fatal(err)
	}
	// Shared pool (24 cores) saturated by 3 × MJ (16 vCPU) at 100%.
	for i := 0; i < 3; i++ {
		vm := newVM(string(rune('a'+i)), "MJ", constProfile{cpu: 1.0, mem: 0.1})
		if err := f.Place(vm, n, 0); err != nil {
			t.Fatal(err)
		}
	}
	h, _ := f.Host(n.ID)
	m := h.Snapshot(0, 5*sim.Minute)
	// Shared demand 48 on 24 cores → 50% contention.
	if math.Abs(m.CPUContentionPct-50) > 1e-9 {
		t.Errorf("shared contention = %v, want 50", m.CPUContentionPct)
	}
	// Utilization: (24 shared delivered + 8 pinned) / 32 = 100%.
	if math.Abs(m.CPUUtilPct-100) > 1e-9 {
		t.Errorf("util = %v, want 100", m.CPUUtilPct)
	}
	// The pinned VM sees full delivery and zero ready time despite host
	// contention — the QoS guarantee.
	u := h.VMSnapshot(pinned, 0, 5*sim.Minute, m.CPUContentionPct)
	if u.CPUUsageRatio != 1.0 || u.ReadyMillis != 0 {
		t.Errorf("pinned VM usage = %+v, want full delivery, zero ready", u)
	}
	// A shared VM is throttled.
	shared := h.VMs()[0]
	if shared.Flavor.PinCPU {
		shared = h.VMs()[1]
	}
	us := h.VMSnapshot(shared, 0, 5*sim.Minute, m.CPUContentionPct)
	if us.CPUUsageRatio >= 1.0 || us.ReadyMillis == 0 {
		t.Errorf("shared VM usage = %+v, want throttled", us)
	}
}

func TestPinnedEvictRestoresSharedPool(t *testing.T) {
	r := testRegion(t)
	f := NewFleet(r, DefaultConfig())
	n := r.Nodes()[0]
	vm := &vmmodel.VM{ID: "pin", Flavor: pinnedFlavor(16, 32), Profile: constProfile{}}
	if err := f.Place(vm, n, 0); err != nil {
		t.Fatal(err)
	}
	h, _ := f.Host(n.ID)
	if h.SharedCores() != 16 {
		t.Fatalf("shared cores = %d", h.SharedCores())
	}
	if err := f.Remove(vm, sim.Hour); err != nil {
		t.Fatal(err)
	}
	if h.SharedCores() != 32 || h.PinnedCores() != 0 {
		t.Errorf("pool not restored: shared=%d pinned=%d", h.SharedCores(), h.PinnedCores())
	}
}

func TestPinnedFits(t *testing.T) {
	r := testRegion(t)
	f := NewFleet(r, DefaultConfig())
	h, _ := f.Host(r.Nodes()[0].ID)
	if !h.Fits(pinnedFlavor(32, 16)) {
		t.Error("exact pinned fit rejected")
	}
	if h.Fits(pinnedFlavor(33, 16)) {
		t.Error("oversized pin accepted")
	}
}
