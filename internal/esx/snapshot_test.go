package esx

import (
	"fmt"
	"testing"

	"sapsim/internal/sim"
)

// TestSnapshotAllocs pins the sampling hot path: Snapshot must not allocate
// — it walks the host's maintained sorted VM slice and returns a value.
func TestSnapshotAllocs(t *testing.T) {
	r := testRegion(t)
	f := NewFleet(r, DefaultConfig())
	n := r.Nodes()[0]
	for i := 0; i < 20; i++ {
		vm := newVM(fmt.Sprintf("vm-%02d", i), "MK", constProfile{cpu: 0.4, mem: 0.6, tx: 10, rx: 5, disk: 0.3})
		if err := f.Place(vm, n, 0); err != nil {
			t.Fatal(err)
		}
	}
	h, err := f.Host(n.ID)
	if err != nil {
		t.Fatal(err)
	}
	now := sim.Time(0)
	avg := testing.AllocsPerRun(200, func() {
		now += sim.Minute
		m := h.Snapshot(now, sim.Minute)
		if m.VMCount != 20 {
			t.Fatalf("snapshot saw %d VMs, want 20", m.VMCount)
		}
	})
	if avg > 0 {
		t.Errorf("Snapshot allocates %.2f objects/op, want 0", avg)
	}
}

// TestSnapshotCacheInvalidation asserts the (time, version) cache returns
// fresh metrics after a resident-set change at the same instant, and that
// ready time tracks the caller's interval even on cache hits.
func TestSnapshotCacheInvalidation(t *testing.T) {
	r := testRegion(t)
	f := NewFleet(r, DefaultConfig())
	n := r.Nodes()[0]
	h, _ := f.Host(n.ID)

	// Saturate the shared pool so contention (and ready time) is non-zero:
	// aggregate demand at 2x the requested cores far exceeds the 32
	// physical cores.
	for i := 0; i < 8; i++ {
		vm := newVM(fmt.Sprintf("hot-%d", i), "MN", constProfile{cpu: 2.0})
		if err := f.Place(vm, n, 0); err != nil {
			t.Fatal(err)
		}
	}
	at := sim.Hour
	m1 := h.Snapshot(at, sim.Minute)
	if m1.CPUContentionPct <= 0 {
		t.Fatalf("fixture not contended: %+v", m1)
	}
	// Same instant, different interval: ready time must scale 5x.
	m5 := h.Snapshot(at, 5*sim.Minute)
	if want := m1.CPUReadyMillis * 5; m5.CPUReadyMillis != want {
		t.Errorf("ready over 5m = %v, want %v", m5.CPUReadyMillis, want)
	}
	// Same instant, resident set changes: the cache must not serve stale
	// demand.
	victim := h.VMs()[0]
	if err := f.Remove(victim, at); err != nil {
		t.Fatal(err)
	}
	m2 := h.Snapshot(at, sim.Minute)
	if m2.VMCount != 7 || m2.CPUContentionPct >= m1.CPUContentionPct {
		t.Errorf("stale snapshot after evict: before %+v after %+v", m1, m2)
	}
}
