// Package events records the scheduling-relevant event stream the dataset
// releases alongside the telemetry (Sec. 4: "scheduling-relevant events (if
// occurring within the observation period), such as creation, migration,
// resize, and deletion"). Events are append-only, time-ordered, and export
// to the same anonymized CSV style as the metric data.
package events

import (
	"encoding/csv"
	"errors"
	"fmt"
	"io"
	"sort"
	"strconv"

	"sapsim/internal/sim"
)

// Type enumerates the event kinds of the released dataset.
type Type string

// Event kinds. Migration distinguishes the intra-BB (DRS) and cross-BB
// (external rebalancer) cases because only the latter touches placement.
const (
	Create         Type = "create"
	Delete         Type = "delete"
	MigrateIntraBB Type = "migrate_intra_bb"
	MigrateCrossBB Type = "migrate_cross_bb"
	Resize         Type = "resize"
	ScheduleFailed Type = "schedule_failed"
	// Evacuate records a VM rescheduled off a failed or draining host
	// through the normal Nova pipeline (scenario injections).
	Evacuate Type = "evacuate"
	// EvacuateFailed records an evacuation that found no valid host; the
	// VM is lost.
	EvacuateFailed Type = "evacuate_failed"
)

// valid reports whether t is a known event type.
func (t Type) valid() bool {
	switch t {
	case Create, Delete, MigrateIntraBB, MigrateCrossBB, Resize, ScheduleFailed,
		Evacuate, EvacuateFailed:
		return true
	}
	return false
}

// Event is one dataset event row.
type Event struct {
	At   sim.Time
	Type Type
	VM   string
	// Flavor is the VM's flavor at event time (the new flavor for
	// resizes).
	Flavor string
	// Source and Target are node IDs; empty where not applicable
	// (Source empty for creations, Target empty for deletions).
	Source string
	Target string
}

// Log is an append-only event log. The zero value is ready to use.
type Log struct {
	events []Event
}

// ErrBadEvent is returned for malformed events.
var ErrBadEvent = errors.New("events: malformed event")

// Append records an event. Events must be appended in non-decreasing time
// order, mirroring how the monitoring pipeline observes them.
func (l *Log) Append(e Event) error {
	if !e.Type.valid() {
		return fmt.Errorf("%w: unknown type %q", ErrBadEvent, e.Type)
	}
	if e.VM == "" {
		return fmt.Errorf("%w: missing vm", ErrBadEvent)
	}
	if n := len(l.events); n > 0 && l.events[n-1].At > e.At {
		return fmt.Errorf("%w: out of order at %v", ErrBadEvent, e.At)
	}
	l.events = append(l.events, e)
	return nil
}

// Len reports the number of recorded events.
func (l *Log) Len() int { return len(l.events) }

// All returns the events in order. The returned slice aliases internal
// storage; callers must not mutate it.
func (l *Log) All() []Event { return l.events }

// Range returns events with from <= At < to.
func (l *Log) Range(from, to sim.Time) []Event {
	lo := sort.Search(len(l.events), func(i int) bool { return l.events[i].At >= from })
	hi := sort.Search(len(l.events), func(i int) bool { return l.events[i].At >= to })
	return l.events[lo:hi]
}

// CountByType tallies the log.
func (l *Log) CountByType() map[Type]int {
	out := make(map[Type]int)
	for _, e := range l.events {
		out[e.Type]++
	}
	return out
}

// DailyChurn is one day's lifecycle activity — the basis of churn analysis
// over the observation window.
type DailyChurn struct {
	Day        int
	Creates    int
	Deletes    int
	Migrations int
	Resizes    int
	Failures   int
}

// Churn buckets the log into per-day activity over days [0, days).
func (l *Log) Churn(days int) []DailyChurn {
	out := make([]DailyChurn, days)
	for d := range out {
		out[d].Day = d
	}
	for _, e := range l.events {
		d := int(e.At / sim.Day)
		if d < 0 || d >= days {
			continue
		}
		switch e.Type {
		case Create:
			out[d].Creates++
		case Delete:
			out[d].Deletes++
		case MigrateIntraBB, MigrateCrossBB, Evacuate:
			out[d].Migrations++
		case Resize:
			out[d].Resizes++
		case ScheduleFailed, EvacuateFailed:
			out[d].Failures++
		}
	}
	return out
}

// Anonymizer matches dataset.Anonymizer without importing it (avoids a
// dependency cycle with the dataset package re-using this log).
type Anonymizer interface {
	Hash(string) string
}

// WriteCSV exports the log. When anon is non-nil, VM and node identifiers
// are hashed (Appendix A).
func (l *Log) WriteCSV(w io.Writer, anon Anonymizer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"ts_seconds", "type", "vm", "flavor", "source", "target"}); err != nil {
		return err
	}
	id := func(s string) string {
		if anon == nil || s == "" {
			return s
		}
		return anon.Hash(s)
	}
	for _, e := range l.events {
		rec := []string{
			strconv.FormatFloat(e.At.Seconds(), 'f', -1, 64),
			string(e.Type),
			id(e.VM),
			e.Flavor,
			id(e.Source),
			id(e.Target),
		}
		if err := cw.Write(rec); err != nil {
			return err
		}
	}
	cw.Flush()
	return cw.Error()
}

// ReadCSV imports a log written by WriteCSV.
func ReadCSV(r io.Reader) (*Log, error) {
	cr := csv.NewReader(r)
	cr.FieldsPerRecord = 6
	header, err := cr.Read()
	if err != nil {
		return nil, fmt.Errorf("events: reading header: %w", err)
	}
	if header[0] != "ts_seconds" || header[1] != "type" {
		return nil, fmt.Errorf("events: unexpected header %v", header)
	}
	log := &Log{}
	line := 1
	for {
		rec, err := cr.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("events: line %d: %w", line, err)
		}
		line++
		ts, err := strconv.ParseFloat(rec[0], 64)
		if err != nil {
			return nil, fmt.Errorf("events: line %d: bad timestamp %q", line, rec[0])
		}
		e := Event{
			At:     sim.Time(ts * float64(sim.Second)),
			Type:   Type(rec[1]),
			VM:     rec[2],
			Flavor: rec[3],
			Source: rec[4],
			Target: rec[5],
		}
		if err := log.Append(e); err != nil {
			return nil, fmt.Errorf("events: line %d: %w", line, err)
		}
	}
	return log, nil
}
