package events

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"sapsim/internal/dataset"
	"sapsim/internal/sim"
)

func TestAppendAndOrder(t *testing.T) {
	var l Log
	if err := l.Append(Event{At: sim.Hour, Type: Create, VM: "vm-1", Flavor: "MK"}); err != nil {
		t.Fatal(err)
	}
	if err := l.Append(Event{At: sim.Hour, Type: Delete, VM: "vm-1"}); err != nil {
		t.Fatal(err) // equal timestamps are allowed
	}
	if err := l.Append(Event{At: sim.Minute, Type: Create, VM: "vm-2"}); !errors.Is(err, ErrBadEvent) {
		t.Errorf("out-of-order append error = %v", err)
	}
	if l.Len() != 2 {
		t.Errorf("len = %d", l.Len())
	}
}

func TestAppendValidation(t *testing.T) {
	var l Log
	if err := l.Append(Event{Type: "party", VM: "x"}); !errors.Is(err, ErrBadEvent) {
		t.Errorf("unknown type error = %v", err)
	}
	if err := l.Append(Event{Type: Create}); !errors.Is(err, ErrBadEvent) {
		t.Errorf("missing vm error = %v", err)
	}
}

func TestRange(t *testing.T) {
	var l Log
	for i := 0; i < 10; i++ {
		if err := l.Append(Event{At: sim.Time(i) * sim.Hour, Type: Create, VM: "v"}); err != nil {
			t.Fatal(err)
		}
	}
	got := l.Range(2*sim.Hour, 5*sim.Hour)
	if len(got) != 3 || got[0].At != 2*sim.Hour {
		t.Errorf("Range = %v", got)
	}
}

func TestCountByTypeAndChurn(t *testing.T) {
	var l Log
	seq := []Event{
		{At: sim.Hour, Type: Create, VM: "a"},
		{At: 2 * sim.Hour, Type: Create, VM: "b"},
		{At: 3 * sim.Hour, Type: MigrateIntraBB, VM: "a", Source: "n1", Target: "n2"},
		{At: sim.Day + sim.Hour, Type: Resize, VM: "a", Flavor: "MC"},
		{At: sim.Day + 2*sim.Hour, Type: Delete, VM: "b"},
		{At: 2*sim.Day + sim.Hour, Type: ScheduleFailed, VM: "c"},
		{At: 2*sim.Day + 2*sim.Hour, Type: MigrateCrossBB, VM: "a", Source: "n2", Target: "n9"},
	}
	for _, e := range seq {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	counts := l.CountByType()
	if counts[Create] != 2 || counts[MigrateIntraBB] != 1 || counts[MigrateCrossBB] != 1 {
		t.Errorf("counts = %v", counts)
	}
	churn := l.Churn(3)
	if churn[0].Creates != 2 || churn[0].Migrations != 1 {
		t.Errorf("day0 = %+v", churn[0])
	}
	if churn[1].Resizes != 1 || churn[1].Deletes != 1 {
		t.Errorf("day1 = %+v", churn[1])
	}
	if churn[2].Failures != 1 || churn[2].Migrations != 1 {
		t.Errorf("day2 = %+v", churn[2])
	}
}

func TestChurnIgnoresOutOfWindow(t *testing.T) {
	var l Log
	if err := l.Append(Event{At: 10 * sim.Day, Type: Create, VM: "late"}); err != nil {
		t.Fatal(err)
	}
	churn := l.Churn(3)
	for _, d := range churn {
		if d.Creates != 0 {
			t.Errorf("out-of-window event counted: %+v", d)
		}
	}
}

func TestCSVRoundTrip(t *testing.T) {
	var l Log
	seq := []Event{
		{At: sim.Hour, Type: Create, VM: "vm-1", Flavor: "MK", Target: "n1"},
		{At: 2 * sim.Hour, Type: MigrateIntraBB, VM: "vm-1", Flavor: "MK", Source: "n1", Target: "n2"},
		{At: 3 * sim.Hour, Type: Delete, VM: "vm-1", Flavor: "MK", Source: "n2"},
	}
	for _, e := range seq {
		if err := l.Append(e); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Len() != 3 {
		t.Fatalf("round trip lost events: %d", got.Len())
	}
	for i, e := range got.All() {
		if e != seq[i] {
			t.Errorf("event %d = %+v, want %+v", i, e, seq[i])
		}
	}
}

func TestCSVAnonymizes(t *testing.T) {
	var l Log
	if err := l.Append(Event{At: sim.Hour, Type: Create, VM: "secret-vm", Flavor: "MK", Target: "secret-node"}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := l.WriteCSV(&buf, dataset.NewAnonymizer("s")); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Contains(out, "secret-vm") || strings.Contains(out, "secret-node") {
		t.Errorf("identifiers leaked:\n%s", out)
	}
	if !strings.Contains(out, "MK") {
		t.Error("flavor should be preserved")
	}
}

func TestReadCSVErrors(t *testing.T) {
	cases := []string{
		"",
		"bad,header,x,y,z,w\n",
		"ts_seconds,type,vm,flavor,source,target\nnotanumber,create,v,,,\n",
		"ts_seconds,type,vm,flavor,source,target\n1,unknown-type,v,,,\n",
		"ts_seconds,type,vm,flavor,source,target\n1,create,,,,\n",
	}
	for i, in := range cases {
		if _, err := ReadCSV(strings.NewReader(in)); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}
