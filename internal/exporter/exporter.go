// Package exporter reproduces the measurement plane of Sec. 4: the vROps
// exporter (VMware metrics) and the MySQL/Nova exporter (OpenStack
// metrics), both exposing Prometheus text format over HTTP. A scraper
// (internal/scrape) pulls from these endpoints into the telemetry store,
// exercising the same exporter → scrape → TSDB path as production.
package exporter

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"

	"sapsim/internal/esx"
	"sapsim/internal/sim"
	"sapsim/internal/vmmodel"
)

// Metric names, verbatim from Appendix C, Table 4.
const (
	MetricHostCPUUtil      = "vrops_hostsystem_cpu_core_utilization_percentage"
	MetricHostMemUsage     = "vrops_hostsystem_memory_usage_percentage"
	MetricHostNetRx        = "vrops_hostsystem_network_bytes_rx_kbps"
	MetricHostNetTx        = "vrops_hostsystem_network_bytes_tx_kbps"
	MetricHostDiskUsage    = "vrops_hostsystem_diskspace_usage_gigabytes"
	MetricHostCPUCont      = "vrops_hostsystem_cpu_contention_percentage"
	MetricHostCPUReady     = "vrops_hostsystem_cpu_ready_milliseconds"
	MetricVMCPURatio       = "vrops_virtualmachine_cpu_usage_ratio"
	MetricVMMemRatio       = "vrops_virtualmachine_memory_consumed_ratio"
	MetricInstancesTotal   = "openstack_compute_instances_total"
	MetricNodeVCPUs        = "openstack_compute_nodes_vcpus_gauge"
	MetricNodeVCPUsUsed    = "openstack_compute_nodes_vcpus_used_gauge"
	MetricNodeMemoryMB     = "openstack_compute_nodes_memory_mb_gauge"
	MetricNodeMemoryMBUsed = "openstack_compute_nodes_memory_mb_used_gauge"
)

// CatalogEntry is one row of Table 4.
type CatalogEntry struct {
	Name        string
	Subsystem   string
	Resource    string
	Description string
}

// Catalog reproduces Table 4.
func Catalog() []CatalogEntry {
	return []CatalogEntry{
		{MetricHostCPUUtil, "Compute host", "CPU", "Utilization of CPU per compute host"},
		{MetricHostMemUsage, "Compute host", "Memory", "Utilization of compute host memory"},
		{MetricHostNetRx, "Compute host", "Network", "Received network traffic"},
		{MetricHostNetTx, "Compute host", "Network", "Transmitted network traffic"},
		{MetricHostDiskUsage, "Compute host", "Storage", "Utilization of local storage"},
		{MetricHostCPUCont, "Compute host", "CPU", "Observed CPU contention per compute host"},
		{MetricHostCPUReady, "Compute host", "CPU", "Duration a VM is ready but waits for scheduling"},
		{MetricVMCPURatio, "VM", "CPU", "Percentage of requested and used CPU"},
		{MetricVMMemRatio, "VM", "Memory", "Percentage of requested and used memory"},
		{MetricInstancesTotal, "Region", "-", "Total number of VMs within the regional deployment"},
		{MetricNodeVCPUs, "Compute host", "CPU", "Number of vCPUs per compute host"},
		{MetricNodeVCPUsUsed, "Compute host", "CPU", "Number of used vCPUs per compute host"},
		{MetricNodeMemoryMB, "Compute host", "Memory", "Amount of memory in MB per compute host"},
		{MetricNodeMemoryMBUsed, "Compute host", "Memory", "Amount of utilized memory in MB per compute host"},
	}
}

// sample is one exposition line.
type sample struct {
	name   string
	labels []string // alternating k, v
	value  float64
}

// Exporter renders the simulated fleet in Prometheus text format. Clock
// supplies the simulation time at scrape; Interval is the accumulation
// window for ready-time.
type Exporter struct {
	Fleet *esx.Fleet
	// VMs returns the currently active VMs (for the vROps VM metrics and
	// the Nova instance gauge).
	VMs func() []*vmmodel.VM
	// Clock returns the current simulation time.
	Clock func() sim.Time
	// Interval is the sampling period (30 s – 300 s in production).
	Interval sim.Time
}

// collect gathers all samples at the current clock.
func (e *Exporter) collect() []sample {
	now := e.Clock()
	var out []sample
	add := func(name string, value float64, labels ...string) {
		out = append(out, sample{name: name, labels: labels, value: value})
	}

	for _, h := range e.Fleet.Hosts() {
		if h.Node.Maintenance {
			continue // vROps reports no data for maintenance hosts
		}
		nodeLabels := []string{
			"hostsystem", string(h.Node.ID),
			"cluster", string(h.Node.BB.ID),
			"datacenter", h.Node.Datacenter().Name,
		}
		m := h.Snapshot(now, e.Interval)
		add(MetricHostCPUUtil, m.CPUUtilPct, nodeLabels...)
		add(MetricHostMemUsage, m.MemUsagePct, nodeLabels...)
		add(MetricHostNetTx, m.TxKbps, nodeLabels...)
		add(MetricHostNetRx, m.RxKbps, nodeLabels...)
		add(MetricHostDiskUsage, m.StorageUsedGB, nodeLabels...)
		add(MetricHostCPUCont, m.CPUContentionPct, nodeLabels...)
		add(MetricHostCPUReady, m.CPUReadyMillis, nodeLabels...)
		add(MetricNodeVCPUs, float64(h.VCPUCapacity()), nodeLabels...)
		add(MetricNodeVCPUsUsed, float64(h.AllocatedVCPUs()), nodeLabels...)
		add(MetricNodeMemoryMB, float64(h.MemCapacityMB()), nodeLabels...)
		add(MetricNodeMemoryMBUsed, float64(h.AllocatedMemMB()), nodeLabels...)

		contention := m.CPUContentionPct
		for _, vm := range h.VMs() {
			u := h.VMSnapshot(vm, now, e.Interval, contention)
			vmLabels := []string{
				"virtualmachine", string(vm.ID),
				"hostsystem", string(h.Node.ID),
				"project", vm.Project,
				"flavor", vm.Flavor.Name,
			}
			add(MetricVMCPURatio, u.CPUUsageRatio, vmLabels...)
			add(MetricVMMemRatio, u.MemUsageRatio, vmLabels...)
		}
	}
	if e.VMs != nil {
		add(MetricInstancesTotal, float64(len(e.VMs())))
	}
	return out
}

// WriteMetrics renders the exposition text format.
func (e *Exporter) WriteMetrics(w io.Writer) error {
	bw := bufio.NewWriter(w)
	samples := e.collect()
	byName := map[string][]sample{}
	var names []string
	for _, s := range samples {
		if _, ok := byName[s.name]; !ok {
			names = append(names, s.name)
		}
		byName[s.name] = append(byName[s.name], s)
	}
	sort.Strings(names)
	help := map[string]string{}
	for _, c := range Catalog() {
		help[c.Name] = c.Description
	}
	for _, name := range names {
		if h := help[name]; h != "" {
			fmt.Fprintf(bw, "# HELP %s %s\n", name, h)
		}
		fmt.Fprintf(bw, "# TYPE %s gauge\n", name)
		for _, s := range byName[name] {
			if len(s.labels) == 0 {
				fmt.Fprintf(bw, "%s %g\n", name, s.value)
				continue
			}
			var lb strings.Builder
			for i := 0; i < len(s.labels); i += 2 {
				if i > 0 {
					lb.WriteByte(',')
				}
				fmt.Fprintf(&lb, "%s=%q", s.labels[i], s.labels[i+1])
			}
			fmt.Fprintf(bw, "%s{%s} %g\n", name, lb.String(), s.value)
		}
	}
	return bw.Flush()
}

// Handler serves the /metrics endpoint.
func (e *Exporter) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := e.WriteMetrics(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
