package exporter

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"sapsim/internal/esx"
	"sapsim/internal/sim"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
)

type constProfile struct{ cpu, mem float64 }

func (p constProfile) CPUUsage(sim.Time) float64  { return p.cpu }
func (p constProfile) MemUsage(sim.Time) float64  { return p.mem }
func (p constProfile) NetTxKbps(sim.Time) float64 { return 500 }
func (p constProfile) NetRxKbps(sim.Time) float64 { return 700 }
func (p constProfile) DiskUsage(sim.Time) float64 { return 0.25 }

func testExporter(t *testing.T) (*Exporter, *esx.Fleet) {
	t.Helper()
	r := topology.NewRegion("t")
	dc := r.AddAZ("a").AddDC("dc-a")
	cap := topology.Capacity{PCPUCores: 32, MemoryMB: 512 << 10, StorageGB: 4 << 10, NetworkGbps: 200}
	if _, err := dc.AddBB("bb-0", topology.GeneralPurpose, 2, cap); err != nil {
		t.Fatal(err)
	}
	fleet := esx.NewFleet(r, esx.DefaultConfig())
	vm := &vmmodel.VM{ID: "vm-1", Flavor: vmmodel.CatalogByName()["MJ"], Project: "proj-1", Profile: constProfile{cpu: 0.5, mem: 0.8}}
	if err := fleet.Place(vm, r.Nodes()[0], 0); err != nil {
		t.Fatal(err)
	}
	e := &Exporter{
		Fleet:    fleet,
		VMs:      func() []*vmmodel.VM { return []*vmmodel.VM{vm} },
		Clock:    func() sim.Time { return sim.Hour },
		Interval: 5 * sim.Minute,
	}
	return e, fleet
}

func TestCatalogMatchesTable4(t *testing.T) {
	cat := Catalog()
	if len(cat) != 14 {
		t.Errorf("catalog has %d rows, Table 4 has 14", len(cat))
	}
	seen := map[string]bool{}
	for _, c := range cat {
		if seen[c.Name] {
			t.Errorf("duplicate metric %s", c.Name)
		}
		seen[c.Name] = true
		if !strings.HasPrefix(c.Name, "vrops_") && !strings.HasPrefix(c.Name, "openstack_compute_") {
			t.Errorf("metric %s lacks the vrops/openstack_compute prefix (Sec. 4)", c.Name)
		}
		if c.Description == "" {
			t.Errorf("metric %s missing description", c.Name)
		}
	}
}

func TestWriteMetricsFormat(t *testing.T) {
	e, _ := testExporter(t)
	var buf bytes.Buffer
	if err := e.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE " + MetricHostCPUUtil + " gauge",
		MetricHostCPUUtil + `{hostsystem="bb-0-n000",cluster="bb-0",datacenter="dc-a"} 25`,
		MetricVMCPURatio + `{virtualmachine="vm-1",hostsystem="bb-0-n000",project="proj-1",flavor="MJ"} 0.5`,
		MetricInstancesTotal + " 1",
		MetricNodeVCPUs,
		MetricHostCPUReady,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}
	// HELP lines must come from the Table 4 catalog.
	if !strings.Contains(out, "# HELP "+MetricHostCPUCont+" Observed CPU contention per compute host") {
		t.Error("missing HELP line for contention metric")
	}
}

func TestMaintenanceHostOmitted(t *testing.T) {
	e, fleet := testExporter(t)
	fleet.Region().Nodes()[1].Maintenance = true
	var buf bytes.Buffer
	if err := e.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "bb-0-n001") {
		t.Error("maintenance host present in exposition (should be a white cell)")
	}
}

func TestHandlerServesHTTP(t *testing.T) {
	e, _ := testExporter(t)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), MetricHostMemUsage) {
		t.Error("HTTP exposition missing host memory metric")
	}
}

func TestExporterClockDriven(t *testing.T) {
	e, _ := testExporter(t)
	now := sim.Hour
	e.Clock = func() sim.Time { return now }
	var a, b bytes.Buffer
	if err := e.WriteMetrics(&a); err != nil {
		t.Fatal(err)
	}
	now = 20 * sim.Hour
	if err := e.WriteMetrics(&b); err != nil {
		t.Fatal(err)
	}
	// Same fleet, same constant profile → identical host CPU lines; the
	// point is that collection re-evaluates at the new clock without
	// error and emits the same series set.
	if a.Len() == 0 || b.Len() == 0 {
		t.Error("empty exposition")
	}
}
