// Package fleetmetrics is the self-observability core of the dispatch
// fleet: a small counter/gauge/histogram registry with Prometheus text
// exposition and no external dependencies. Where internal/exporter renders
// the *simulated* telemetry plane, fleetmetrics renders the telemetry of
// the distributed system actually running the sweeps — dispatchd's queue,
// journal, and artifact store, and each simworker's booking loop — in the
// same exposition format internal/scrape already parses, so the repo's own
// scrape → telemetry → promql stack can answer "why is this sweep slow".
//
// The exposition is deterministic: families sort by name, series within a
// family sort by rendered label set, and histogram buckets emit in
// ascending order, so two writes of an unchanged registry are
// byte-identical (golden-tested). All instruments are safe for concurrent
// use; Write may run concurrently with instrumentation.
package fleetmetrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registry holds metric families and renders them in Prometheus text
// format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

type family struct {
	name, help, kind string

	mu     sync.Mutex
	series map[string]*series
	order  []string // sorted series keys
}

type series struct {
	labels string // rendered `a="b",c="d"` (no braces), "" for unlabeled

	counter *Counter
	gauge   *Gauge
	fn      func() float64
	hist    *Histogram
}

// Counter is a monotonically increasing value.
type Counter struct{ bits atomic.Uint64 }

// Inc adds 1.
func (c *Counter) Inc() { c.Add(1) }

// Add adds delta; negative deltas are ignored (counters only go up).
func (c *Counter) Add(delta float64) {
	if delta < 0 {
		return
	}
	addFloat(&c.bits, delta)
}

// Value returns the current count.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a value that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adds delta (may be negative).
func (g *Gauge) Add(delta float64) { addFloat(&g.bits, delta) }

// Inc adds 1.
func (g *Gauge) Inc() { g.Add(1) }

// Dec subtracts 1.
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func addFloat(bits *atomic.Uint64, delta float64) {
	for {
		old := bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram counts observations into cumulative buckets and tracks their
// sum — the fixed-bucket subset of the Prometheus histogram type
// (name_bucket{le="..."} series plus name_sum and name_count).
type Histogram struct {
	mu     sync.Mutex
	upper  []float64 // ascending upper bounds, +Inf excluded
	counts []uint64  // per-bucket (non-cumulative) counts, len(upper)+1
	sum    float64
	total  uint64
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	i := sort.SearchFloat64s(h.upper, v) // first bound >= v
	h.counts[i]++
	h.sum += v
	h.total++
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

// LinearBuckets returns count upper bounds start, start+width, ...
func LinearBuckets(start, width float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start + width*float64(i)
	}
	return out
}

// ExponentialBuckets returns count upper bounds start, start*factor, ...
func ExponentialBuckets(start, factor float64, count int) []float64 {
	out := make([]float64, count)
	for i := range out {
		out[i] = start
		start *= factor
	}
	return out
}

const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// Counter registers (or returns the existing) counter for name plus the
// label pairs (alternating key, value). Registering the same name with a
// different metric kind panics — that is a programming error, not a
// runtime condition.
func (r *Registry) Counter(name, help string, labels ...string) *Counter {
	s := r.getOrCreate(name, help, kindCounter, labels)
	if s.counter == nil {
		s.counter = &Counter{}
	}
	return s.counter
}

// Gauge registers (or returns the existing) gauge.
func (r *Registry) Gauge(name, help string, labels ...string) *Gauge {
	s := r.getOrCreate(name, help, kindGauge, labels)
	if s.gauge == nil {
		s.gauge = &Gauge{}
	}
	return s.gauge
}

// GaugeFunc registers a gauge whose value is computed at exposition time —
// the natural shape for state that already lives elsewhere (queue depth
// per job state, store blob count). fn must be safe to call from the
// exposition goroutine.
func (r *Registry) GaugeFunc(name, help string, fn func() float64, labels ...string) {
	s := r.getOrCreate(name, help, kindGauge, labels)
	s.fn = fn
}

// CounterFunc registers a counter read at exposition time from fn —
// for monotone counts maintained outside the registry (artifact store
// stats, which accumulate before the daemon instruments them).
func (r *Registry) CounterFunc(name, help string, fn func() float64, labels ...string) {
	s := r.getOrCreate(name, help, kindCounter, labels)
	s.fn = fn
}

// Histogram registers (or returns the existing) histogram with the given
// bucket upper bounds (ascending; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64, labels ...string) *Histogram {
	s := r.getOrCreate(name, help, kindHistogram, labels)
	if s.hist == nil {
		upper := append([]float64(nil), buckets...)
		sort.Float64s(upper)
		s.hist = &Histogram{upper: upper, counts: make([]uint64, len(upper)+1)}
	}
	return s.hist
}

func (r *Registry) getOrCreate(name, help, kind string, labels []string) *series {
	if len(labels)%2 != 0 {
		panic(fmt.Sprintf("fleetmetrics: odd label pairs for %s", name))
	}
	key := renderLabels(labels)
	r.mu.Lock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, series: map[string]*series{}}
		r.families[name] = f
	}
	r.mu.Unlock()
	if f.kind != kind {
		panic(fmt.Sprintf("fleetmetrics: %s registered as %s, requested as %s", name, f.kind, kind))
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	s := f.series[key]
	if s == nil {
		s = &series{labels: key}
		f.series[key] = s
		i := sort.SearchStrings(f.order, key)
		f.order = append(f.order, "")
		copy(f.order[i+1:], f.order[i:])
		f.order[i] = key
	}
	return s
}

// renderLabels renders alternating pairs sorted by key: `a="b",c="d"`.
func renderLabels(labels []string) string {
	if len(labels) == 0 {
		return ""
	}
	type kv struct{ k, v string }
	kvs := make([]kv, 0, len(labels)/2)
	for i := 0; i+1 < len(labels); i += 2 {
		kvs = append(kvs, kv{labels[i], labels[i+1]})
	}
	sort.Slice(kvs, func(i, j int) bool { return kvs[i].k < kvs[j].k })
	var b strings.Builder
	for i, p := range kvs {
		if i > 0 {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", p.k, p.v)
	}
	return b.String()
}

func formatValue(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Write renders the registry in the Prometheus text exposition format with
// deterministic ordering.
func (r *Registry) Write(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	names := make([]string, 0, len(r.families))
	for name := range r.families {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.families[name])
	}
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.write(bw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

func (f *family) write(w *bufio.Writer) error {
	f.mu.Lock()
	order := append([]string(nil), f.order...)
	rows := make([]*series, len(order))
	for i, key := range order {
		rows[i] = f.series[key]
	}
	f.mu.Unlock()
	if f.help != "" {
		fmt.Fprintf(w, "# HELP %s %s\n", f.name, f.help)
	}
	fmt.Fprintf(w, "# TYPE %s %s\n", f.name, f.kind)
	for _, s := range rows {
		switch {
		case s.hist != nil:
			s.hist.write(w, f.name, s.labels)
		default:
			var v float64
			switch {
			case s.fn != nil:
				v = s.fn()
			case s.counter != nil:
				v = s.counter.Value()
			case s.gauge != nil:
				v = s.gauge.Value()
			}
			if s.labels == "" {
				fmt.Fprintf(w, "%s %s\n", f.name, formatValue(v))
			} else {
				fmt.Fprintf(w, "%s{%s} %s\n", f.name, s.labels, formatValue(v))
			}
		}
	}
	return nil
}

func (h *Histogram) write(w *bufio.Writer, name, labels string) {
	h.mu.Lock()
	upper := h.upper
	counts := append([]uint64(nil), h.counts...)
	sum, total := h.sum, h.total
	h.mu.Unlock()
	cum := uint64(0)
	emit := func(le string, v uint64) {
		if labels == "" {
			fmt.Fprintf(w, "%s_bucket{le=%q} %d\n", name, le, v)
		} else {
			fmt.Fprintf(w, "%s_bucket{%s,le=%q} %d\n", name, labels, le, v)
		}
	}
	for i, bound := range upper {
		cum += counts[i]
		emit(formatValue(bound), cum)
	}
	emit("+Inf", total)
	if labels == "" {
		fmt.Fprintf(w, "%s_sum %s\n", name, formatValue(sum))
		fmt.Fprintf(w, "%s_count %d\n", name, total)
	} else {
		fmt.Fprintf(w, "%s_sum{%s} %s\n", name, labels, formatValue(sum))
		fmt.Fprintf(w, "%s_count{%s} %d\n", name, labels, total)
	}
}

// Handler serves the registry at GET /metrics (and any other path it is
// mounted on) in the text exposition format.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4")
		if err := r.Write(w); err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
		}
	})
}
