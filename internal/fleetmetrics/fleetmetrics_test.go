package fleetmetrics

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
)

// TestExpositionGolden pins the full text format: family ordering (by
// name), series ordering (by rendered label set), histogram bucket/sum/
// count rows, HELP/TYPE comments — and that two consecutive writes of an
// unchanged registry are byte-identical.
func TestExpositionGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter("zeta_total", "last family by name").Add(3)
	r.Gauge("alpha_depth", "per-state depth", "state", "queued").Set(4)
	r.Gauge("alpha_depth", "per-state depth", "state", "booked").Set(1.5)
	r.GaugeFunc("mid_blobs", "computed at write time", func() float64 { return 7 })
	h := r.Histogram("beta_seconds", "latency", []float64{0.1, 1, 10})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(0.5)
	h.Observe(99)

	want := strings.Join([]string{
		`# HELP alpha_depth per-state depth`,
		`# TYPE alpha_depth gauge`,
		`alpha_depth{state="booked"} 1.5`,
		`alpha_depth{state="queued"} 4`,
		`# HELP beta_seconds latency`,
		`# TYPE beta_seconds histogram`,
		`beta_seconds_bucket{le="0.1"} 1`,
		`beta_seconds_bucket{le="1"} 3`,
		`beta_seconds_bucket{le="10"} 3`,
		`beta_seconds_bucket{le="+Inf"} 4`,
		`beta_seconds_sum 100.05`,
		`beta_seconds_count 4`,
		`# HELP mid_blobs computed at write time`,
		`# TYPE mid_blobs gauge`,
		`mid_blobs 7`,
		`# HELP zeta_total last family by name`,
		`# TYPE zeta_total counter`,
		`zeta_total 3`,
	}, "\n") + "\n"

	var first, second bytes.Buffer
	if err := r.Write(&first); err != nil {
		t.Fatal(err)
	}
	if got := first.String(); got != want {
		t.Fatalf("exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	if err := r.Write(&second); err != nil {
		t.Fatal(err)
	}
	if first.String() != second.String() {
		t.Fatal("two writes of an unchanged registry differ")
	}
}

// TestHandlerServesText: the HTTP handler emits the exposition with the
// Prometheus content type.
func TestHandlerServesText(t *testing.T) {
	r := NewRegistry()
	r.Counter("requests_total", "").Inc()
	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "requests_total 1\n") {
		t.Fatalf("body = %q", rec.Body.String())
	}
}

// TestIdempotentRegistration: re-registering the same (name, labels)
// returns the same instrument, so instrumented components can register
// lazily without double-counting.
func TestIdempotentRegistration(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("c_total", "h", "k", "v")
	b := r.Counter("c_total", "h", "k", "v")
	if a != b {
		t.Fatal("same name+labels returned distinct counters")
	}
	a.Add(2)
	if b.Value() != 2 {
		t.Fatalf("shared counter value = %g", b.Value())
	}
	if g := r.Gauge("g", "h"); g != r.Gauge("g", "h") {
		t.Fatal("same gauge registered twice")
	}
}

// TestKindMismatchPanics: one name, two kinds is a programming error.
func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total", "")
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on kind mismatch")
		}
	}()
	r.Gauge("x_total", "")
}

// TestConcurrentInstrumentation hammers every instrument type from many
// goroutines while another goroutine writes the exposition — the -race
// guarantee the live dispatcher depends on (scrapes happen mid-sweep).
func TestConcurrentInstrumentation(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("ops_total", "")
	g := r.Gauge("inflight", "")
	h := r.Histogram("lat_seconds", "", ExponentialBuckets(0.001, 10, 5))
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for n := 0; n < 1000; n++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
				h.Observe(float64(n%7) / 100)
				// Concurrent registration of labeled children, too.
				r.Counter("labeled_total", "", "worker", string(rune('a'+i%4))).Inc()
			}
		}(i)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for n := 0; n < 200; n++ {
			var buf bytes.Buffer
			if err := r.Write(&buf); err != nil {
				t.Errorf("write: %v", err)
				return
			}
		}
	}()
	wg.Wait()
	if c.Value() != 8000 {
		t.Fatalf("ops_total = %g, want 8000", c.Value())
	}
	if got := h.Count(); got != 8000 {
		t.Fatalf("histogram count = %d, want 8000", got)
	}
	if g.Value() != 0 {
		t.Fatalf("inflight = %g, want 0", g.Value())
	}
}
