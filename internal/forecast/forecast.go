// Package forecast provides the demand-prediction primitives the paper's
// guidance calls for (Sec. 7): proactive placement needs short-horizon
// demand forecasts, and "a more dynamic and workload-based approach to
// determine the overcommit factor" needs a principled mapping from observed
// demand to a safe vCPU:pCPU ratio.
//
// Two predictors are provided: an exponentially weighted moving average for
// trendless series, and a Holt–Winters additive model that captures the
// diurnal cycles enterprise workloads exhibit (Figs. 5, 8).
package forecast

import (
	"errors"
	"math"

	"sapsim/internal/telemetry"
)

// EWMA is an exponentially weighted moving average. The zero value is not
// usable; construct with NewEWMA.
type EWMA struct {
	alpha float64
	value float64
	n     int
}

// NewEWMA creates an EWMA with smoothing factor alpha in (0, 1]; larger
// alpha weights recent observations more.
func NewEWMA(alpha float64) (*EWMA, error) {
	if alpha <= 0 || alpha > 1 {
		return nil, errors.New("forecast: alpha must be in (0, 1]")
	}
	return &EWMA{alpha: alpha}, nil
}

// Observe feeds one observation.
func (e *EWMA) Observe(v float64) {
	if e.n == 0 {
		e.value = v
	} else {
		e.value = e.alpha*v + (1-e.alpha)*e.value
	}
	e.n++
}

// Value returns the current smoothed estimate (NaN before any observation).
func (e *EWMA) Value() float64 {
	if e.n == 0 {
		return math.NaN()
	}
	return e.value
}

// N reports the number of observations.
func (e *EWMA) N() int { return e.n }

// HoltWinters is an additive triple-exponential-smoothing model with a
// fixed seasonal period (e.g. one day of samples).
type HoltWinters struct {
	alpha, beta, gamma float64
	period             int

	level  float64
	trend  float64
	season []float64
	n      int
	warm   []float64 // first-period buffer for initialization
}

// NewHoltWinters creates a model. period is the season length in samples
// (e.g. 288 for a day at 5-minute sampling).
func NewHoltWinters(alpha, beta, gamma float64, period int) (*HoltWinters, error) {
	if alpha <= 0 || alpha > 1 || beta < 0 || beta > 1 || gamma < 0 || gamma > 1 {
		return nil, errors.New("forecast: smoothing factors must be in (0,1]")
	}
	if period < 2 {
		return nil, errors.New("forecast: period must be at least 2")
	}
	return &HoltWinters{alpha: alpha, beta: beta, gamma: gamma, period: period}, nil
}

// Observe feeds one observation. The first full period initializes the
// seasonal components.
func (h *HoltWinters) Observe(v float64) {
	if h.n < h.period {
		h.warm = append(h.warm, v)
		h.n++
		if h.n == h.period {
			h.initialize()
		}
		return
	}
	idx := h.n % h.period
	prevLevel := h.level
	h.level = h.alpha*(v-h.season[idx]) + (1-h.alpha)*(h.level+h.trend)
	h.trend = h.beta*(h.level-prevLevel) + (1-h.beta)*h.trend
	h.season[idx] = h.gamma*(v-h.level) + (1-h.gamma)*h.season[idx]
	h.n++
}

func (h *HoltWinters) initialize() {
	mean := 0.0
	for _, v := range h.warm {
		mean += v
	}
	mean /= float64(h.period)
	h.level = mean
	h.trend = 0
	h.season = make([]float64, h.period)
	for i, v := range h.warm {
		h.season[i] = v - mean
	}
	h.warm = nil
}

// Ready reports whether a full period has been observed.
func (h *HoltWinters) Ready() bool { return h.n >= h.period }

// Forecast predicts the value steps samples ahead (1 = next sample).
// It returns NaN until Ready.
func (h *HoltWinters) Forecast(steps int) float64 {
	if !h.Ready() || steps < 1 {
		return math.NaN()
	}
	idx := (h.n + steps - 1) % h.period
	return h.level + float64(steps)*h.trend + h.season[idx]
}

// FitSeries feeds every sample of a telemetry series into the model.
func (h *HoltWinters) FitSeries(s *telemetry.Series) {
	for _, smp := range s.Samples {
		h.Observe(smp.V)
	}
}

// OvercommitRecommendation is the output of DynamicOvercommit.
type OvercommitRecommendation struct {
	// Ratio is the recommended vCPU:pCPU overcommit factor.
	Ratio float64
	// PeakDemandRatio is the observed p99 demand per allocated vCPU.
	PeakDemandRatio float64
	// Headroom is the configured safety margin applied to the peak.
	Headroom float64
}

// DynamicOvercommit derives a workload-based overcommit factor from the
// observed per-vCPU demand ratios (VM CPU usage ratios over a window): if
// VMs collectively never demand more than p99 = r of their allocations, a
// ratio of 1/(r×headroom) keeps physical cores sufficient at the observed
// peak — the quantitative form of the paper's Sec. 7 guidance.
func DynamicOvercommit(usageRatios []float64, headroom float64) (OvercommitRecommendation, error) {
	if len(usageRatios) == 0 {
		return OvercommitRecommendation{}, errors.New("forecast: no usage observations")
	}
	if headroom < 1 {
		headroom = 1
	}
	peak := telemetry.PercentileValues(usageRatios, 99)
	if peak <= 0 {
		peak = 0.01
	}
	ratio := 1 / (peak * headroom)
	// Clamp to the operationally sane band: no undercommit, and nothing
	// beyond the aggressive 8:1 used in dev/test clouds.
	if ratio < 1 {
		ratio = 1
	}
	if ratio > 8 {
		ratio = 8
	}
	return OvercommitRecommendation{Ratio: ratio, PeakDemandRatio: peak, Headroom: headroom}, nil
}

// MAE reports the mean absolute one-step-ahead forecast error of the model
// over a series — the validation metric for predictor quality.
func MAE(h *HoltWinters, s *telemetry.Series) float64 {
	if len(s.Samples) == 0 {
		return math.NaN()
	}
	sum, n := 0.0, 0
	for _, smp := range s.Samples {
		if h.Ready() {
			pred := h.Forecast(1)
			sum += math.Abs(pred - smp.V)
			n++
		}
		h.Observe(smp.V)
	}
	if n == 0 {
		return math.NaN()
	}
	return sum / float64(n)
}
