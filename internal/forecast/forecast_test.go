package forecast

import (
	"math"
	"testing"

	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
	"sapsim/internal/workload"
)

func TestEWMAValidation(t *testing.T) {
	for _, alpha := range []float64{0, -0.5, 1.5} {
		if _, err := NewEWMA(alpha); err == nil {
			t.Errorf("alpha %v accepted", alpha)
		}
	}
	e, err := NewEWMA(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(e.Value()) {
		t.Error("empty EWMA should be NaN")
	}
}

func TestEWMAConvergesToConstant(t *testing.T) {
	e, _ := NewEWMA(0.3)
	for i := 0; i < 100; i++ {
		e.Observe(42)
	}
	if math.Abs(e.Value()-42) > 1e-9 {
		t.Errorf("EWMA of constant = %v", e.Value())
	}
	if e.N() != 100 {
		t.Errorf("N = %d", e.N())
	}
}

func TestEWMATracksShift(t *testing.T) {
	e, _ := NewEWMA(0.5)
	for i := 0; i < 20; i++ {
		e.Observe(10)
	}
	for i := 0; i < 20; i++ {
		e.Observe(50)
	}
	if math.Abs(e.Value()-50) > 0.01 {
		t.Errorf("EWMA after shift = %v, want ≈50", e.Value())
	}
}

func TestHoltWintersValidation(t *testing.T) {
	if _, err := NewHoltWinters(0, 0.1, 0.1, 10); err == nil {
		t.Error("alpha 0 accepted")
	}
	if _, err := NewHoltWinters(0.5, 2, 0.1, 10); err == nil {
		t.Error("beta 2 accepted")
	}
	if _, err := NewHoltWinters(0.5, 0.1, 0.1, 1); err == nil {
		t.Error("period 1 accepted")
	}
}

// A pure sinusoid with period 24 must be predicted accurately one season
// ahead once warmed up.
func TestHoltWintersSeasonalSeries(t *testing.T) {
	h, err := NewHoltWinters(0.3, 0.05, 0.4, 24)
	if err != nil {
		t.Fatal(err)
	}
	value := func(i int) float64 {
		return 50 + 20*math.Sin(2*math.Pi*float64(i)/24)
	}
	for i := 0; i < 24*10; i++ {
		h.Observe(value(i))
	}
	if !h.Ready() {
		t.Fatal("model not ready after 10 periods")
	}
	for steps := 1; steps <= 24; steps++ {
		want := value(24*10 + steps - 1)
		got := h.Forecast(steps)
		if math.Abs(got-want) > 3 {
			t.Errorf("forecast %d ahead = %.2f, want %.2f", steps, got, want)
		}
	}
}

func TestHoltWintersTrend(t *testing.T) {
	h, _ := NewHoltWinters(0.5, 0.3, 0.1, 4)
	for i := 0; i < 200; i++ {
		h.Observe(float64(i)) // linear ramp
	}
	got := h.Forecast(10)
	if math.Abs(got-209) > 5 {
		t.Errorf("trend forecast = %v, want ≈209", got)
	}
}

func TestHoltWintersNotReady(t *testing.T) {
	h, _ := NewHoltWinters(0.3, 0.1, 0.1, 24)
	h.Observe(1)
	if h.Ready() {
		t.Error("ready after one sample")
	}
	if !math.IsNaN(h.Forecast(1)) {
		t.Error("forecast before ready should be NaN")
	}
	for i := 0; i < 30; i++ {
		h.Observe(1)
	}
	if !math.IsNaN(h.Forecast(0)) {
		t.Error("zero-step forecast should be NaN")
	}
}

// The workload generator's diurnal profiles must be predictable: MAE of the
// seasonal model should clearly beat a naive flat prediction.
func TestHoltWintersBeatsNaiveOnWorkloadProfile(t *testing.T) {
	p := &workload.Profile{
		Seed: 9, MeanCPU: 0.4, DiurnalAmp: 0.35, WeekendDip: 0.0,
		NoiseAmp: 0.05,
	}
	s := &telemetry.Series{}
	const step = 30 * sim.Minute
	for ts := sim.Time(0); ts < 10*sim.Day; ts += step {
		s.Samples = append(s.Samples, telemetry.Sample{T: ts, V: p.CPUUsage(ts)})
	}
	period := int(sim.Day / step)
	h, _ := NewHoltWinters(0.3, 0.02, 0.3, period)
	mae := MAE(h, s)

	// Naive: predict the running mean.
	e, _ := NewEWMA(0.05)
	naive, n := 0.0, 0
	for _, smp := range s.Samples {
		if e.N() > period {
			naive += math.Abs(e.Value() - smp.V)
			n++
		}
		e.Observe(smp.V)
	}
	naive /= float64(n)

	if mae >= naive {
		t.Errorf("seasonal MAE %.4f not better than naive %.4f", mae, naive)
	}
}

func TestFitSeries(t *testing.T) {
	s := &telemetry.Series{}
	for i := 0; i < 48; i++ {
		s.Samples = append(s.Samples, telemetry.Sample{T: sim.Time(i) * sim.Hour, V: float64(i % 24)})
	}
	h, _ := NewHoltWinters(0.3, 0.05, 0.3, 24)
	h.FitSeries(s)
	if !h.Ready() {
		t.Error("model not ready after FitSeries")
	}
}

func TestDynamicOvercommit(t *testing.T) {
	// Population demanding at most ~25% of its allocation → ratio ≈
	// 1/(0.25×1.2) ≈ 3.3.
	var ratios []float64
	for i := 0; i < 1000; i++ {
		ratios = append(ratios, 0.05+float64(i%20)*0.01) // 0.05..0.24
	}
	rec, err := DynamicOvercommit(ratios, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Ratio < 3.0 || rec.Ratio > 4.0 {
		t.Errorf("recommended ratio = %.2f, want ≈3.3", rec.Ratio)
	}
	if rec.PeakDemandRatio < 0.23 || rec.PeakDemandRatio > 0.25 {
		t.Errorf("peak = %v", rec.PeakDemandRatio)
	}
}

func TestDynamicOvercommitClamps(t *testing.T) {
	// Fully saturated VMs → no overcommit.
	rec, err := DynamicOvercommit([]float64{1, 1, 1, 1}, 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Ratio != 1 {
		t.Errorf("saturated ratio = %v, want 1", rec.Ratio)
	}
	// Nearly idle VMs → capped at 8.
	rec, err = DynamicOvercommit([]float64{0.01, 0.01}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Ratio != 8 {
		t.Errorf("idle ratio = %v, want 8 (clamped)", rec.Ratio)
	}
	// Headroom below 1 is raised to 1.
	rec, _ = DynamicOvercommit([]float64{0.5}, 0.1)
	if rec.Headroom != 1 {
		t.Errorf("headroom = %v, want 1", rec.Headroom)
	}
	if _, err := DynamicOvercommit(nil, 1); err == nil {
		t.Error("empty input accepted")
	}
}

func TestMAEEmptySeries(t *testing.T) {
	h, _ := NewHoltWinters(0.3, 0.1, 0.1, 4)
	if !math.IsNaN(MAE(h, &telemetry.Series{})) {
		t.Error("MAE of empty series should be NaN")
	}
}
