// Package integration cross-validates the subsystems end to end: a live
// discrete-event simulation drives the fleet while the Prometheus-style
// exporter serves metrics over real HTTP, a scraper pulls them into the
// TSDB on the production cadence, PromQL queries the result, and the
// dataset layer round-trips everything — the complete Sec. 4 pipeline.
package integration

import (
	"bytes"
	"math"
	"testing"

	"net/http/httptest"

	"sapsim/internal/analysis"
	"sapsim/internal/dataset"
	"sapsim/internal/drs"
	"sapsim/internal/esx"
	"sapsim/internal/exporter"
	"sapsim/internal/nova"
	"sapsim/internal/placement"
	"sapsim/internal/promql"
	"sapsim/internal/scrape"
	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
	"sapsim/internal/workload"
)

// pipeline is the assembled system under test.
type pipeline struct {
	region *topology.Region
	fleet  *esx.Fleet
	sched  *nova.Scheduler
	engine *sim.Engine
	live   map[vmmodel.ID]*vmmodel.VM
}

func buildPipeline(t *testing.T, vms int, seed uint64) *pipeline {
	t.Helper()
	region, err := topology.Build(topology.DefaultBuildSpec(0.015))
	if err != nil {
		t.Fatal(err)
	}
	fleet := esx.NewFleet(region, esx.DefaultConfig())
	sched, err := nova.NewScheduler(fleet, placement.NewService(), nova.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	p := &pipeline{
		region: region,
		fleet:  fleet,
		sched:  sched,
		engine: sim.NewEngine(),
		live:   make(map[vmmodel.ID]*vmmodel.VM),
	}
	spec := workload.DefaultSpec(vms, seed)
	spec.Horizon = 2 * sim.Day
	for _, in := range workload.NewGenerator(spec).Generate() {
		in := in
		schedule := func(at sim.Time) {
			if _, err := sched.Schedule(&nova.RequestSpec{VM: in.VM}, at); err != nil {
				return
			}
			p.live[in.VM.ID] = in.VM
			if del := in.DeleteAt(); del < 2*sim.Day {
				p.engine.SchedulePriority(del, -1, func(at sim.Time) {
					if _, ok := p.live[in.VM.ID]; ok {
						delete(p.live, in.VM.ID)
						_ = sched.Delete(in.VM, at)
					}
				})
			}
		}
		if in.ArriveAt <= 0 {
			schedule(0)
		} else if _, err := p.engine.Schedule(in.ArriveAt, schedule); err != nil {
			t.Fatal(err)
		}
	}
	return p
}

// TestFullPipelineHTTPScrape runs two simulated days with the exporter
// scraped over HTTP every 30 minutes, then checks that the scraped TSDB
// agrees with direct hypervisor snapshots and supports the paper's
// analyses.
func TestFullPipelineHTTPScrape(t *testing.T) {
	p := buildPipeline(t, 250, 99)

	now := sim.Time(0)
	exp := &exporter.Exporter{
		Fleet: p.fleet,
		VMs: func() []*vmmodel.VM {
			out := make([]*vmmodel.VM, 0, len(p.live))
			for _, vm := range p.live {
				out = append(out, vm)
			}
			return out
		},
		Clock:    func() sim.Time { return now },
		Interval: 30 * sim.Minute,
	}
	srv := httptest.NewServer(exp.Handler())
	defer srv.Close()

	store := telemetry.NewStore()
	scraper := &scrape.Scraper{Store: store, Client: srv.Client()}

	// DRS runs hourly, scrapes every 30 minutes, all inside the DES.
	rebalancer := drs.New(p.fleet, drs.DefaultConfig())
	if _, err := p.engine.Every(sim.Hour, sim.Hour, func(at sim.Time) {
		rebalancer.RebalanceAll(at)
	}); err != nil {
		t.Fatal(err)
	}
	scraped := 0
	if _, err := p.engine.Every(0, 30*sim.Minute, func(at sim.Time) {
		now = at
		n, err := scraper.ScrapeTarget(srv.URL, at)
		if err != nil {
			t.Errorf("scrape at %v: %v", at, err)
			return
		}
		scraped += n
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.engine.Run(2 * sim.Day); err != nil {
		t.Fatal(err)
	}
	if scraped == 0 {
		t.Fatal("nothing scraped")
	}

	// 1. Scraped host series must exist for every non-maintenance node
	// and have one sample per scrape tick.
	series := store.Select(exporter.MetricHostCPUUtil)
	if len(series) != p.region.NodeCount() {
		t.Errorf("scraped %d host series, region has %d nodes", len(series), p.region.NodeCount())
	}
	wantTicks := int(2*sim.Day/(30*sim.Minute)) + 1
	for _, s := range series[:3] {
		if len(s.Samples) != wantTicks {
			t.Errorf("series %s has %d samples, want %d", s.Labels, len(s.Samples), wantTicks)
		}
	}

	// 2. The final scraped values must match direct snapshots at the
	// same instant (the wire adds no distortion).
	final := 2 * sim.Day
	now = final
	for _, h := range p.fleet.Hosts()[:5] {
		m := h.Snapshot(final, 30*sim.Minute)
		got := store.Select(exporter.MetricHostCPUUtil,
			telemetry.Matcher{Name: "hostsystem", Value: string(h.Node.ID)})
		if len(got) != 1 {
			t.Fatalf("missing scraped series for %s", h.Node.ID)
		}
		v, ok := got[0].At(final)
		if !ok {
			t.Fatalf("no sample at final tick for %s", h.Node.ID)
		}
		if math.Abs(v-m.CPUUtilPct) > 1e-6 {
			t.Errorf("%s: scraped %.6f vs snapshot %.6f", h.Node.ID, v, m.CPUUtilPct)
		}
	}

	// 3. PromQL over the scraped store answers a Fig. 6-style question.
	engine := &promql.Engine{Store: store}
	vec, err := engine.Query(
		`100 - avg by (cluster) (avg_over_time(`+exporter.MetricHostCPUUtil+`[1d]))`, final)
	if err != nil {
		t.Fatal(err)
	}
	if len(vec) != len(p.region.BBs()) {
		t.Errorf("per-cluster query returned %d groups, region has %d BBs", len(vec), len(p.region.BBs()))
	}
	for _, s := range vec {
		if s.Value < 0 || s.Value > 100 {
			t.Errorf("free CPU out of range: %v", s.Value)
		}
	}

	// 4. Dataset round-trip preserves the scraped store exactly.
	var buf bytes.Buffer
	anon := dataset.NewAnonymizer("integration")
	opts := dataset.WriteOptions{Anonymizer: anon, AnonymizeLabels: dataset.DefaultAnonymizedLabels()}
	if err := dataset.Write(&buf, store, opts); err != nil {
		t.Fatal(err)
	}
	back, err := dataset.Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.SampleCount() != store.SampleCount() {
		t.Errorf("round trip: %d samples vs %d", back.SampleCount(), store.SampleCount())
	}

	// 5. The anonymized dataset still supports the Fig. 5 heatmap with
	// identical column statistics (pseudonyms permute, values don't).
	origH := analysis.DailyHeatmap(store, exporter.MetricHostCPUUtil, "hostsystem", 2, analysis.FreePercent)
	anonH := analysis.DailyHeatmap(back, exporter.MetricHostCPUUtil, "hostsystem", 2, analysis.FreePercent)
	if len(origH.Columns) != len(anonH.Columns) {
		t.Fatalf("heatmap columns differ: %d vs %d", len(origH.Columns), len(anonH.Columns))
	}
	for c := range origH.Columns {
		a, b := origH.ColumnMean(c), anonH.ColumnMean(c)
		if math.Abs(a-b) > 1e-9 && !(math.IsNaN(a) && math.IsNaN(b)) {
			t.Errorf("column %d mean differs after anonymized round trip: %v vs %v", c, a, b)
		}
	}
}

// TestScrapeConsistencyUnderChurn verifies that deletions during the window
// stop VM series cleanly (no samples after the VM's deletion).
func TestScrapeConsistencyUnderChurn(t *testing.T) {
	p := buildPipeline(t, 150, 7)

	now := sim.Time(0)
	exp := &exporter.Exporter{
		Fleet: p.fleet,
		VMs: func() []*vmmodel.VM {
			out := make([]*vmmodel.VM, 0, len(p.live))
			for _, vm := range p.live {
				out = append(out, vm)
			}
			return out
		},
		Clock:    func() sim.Time { return now },
		Interval: sim.Hour,
	}
	srv := httptest.NewServer(exp.Handler())
	defer srv.Close()

	store := telemetry.NewStore()
	scraper := &scrape.Scraper{Store: store, Client: srv.Client()}
	if _, err := p.engine.Every(0, sim.Hour, func(at sim.Time) {
		now = at
		if _, err := scraper.ScrapeTarget(srv.URL, at); err != nil {
			t.Errorf("scrape: %v", err)
		}
	}); err != nil {
		t.Fatal(err)
	}
	if err := p.engine.Run(2 * sim.Day); err != nil {
		t.Fatal(err)
	}

	// Every VM series must end at or before that VM's deletion time.
	deleted := map[string]sim.Time{}
	for id := range p.live {
		_ = id
	}
	for _, s := range store.Select(exporter.MetricVMCPURatio) {
		id := s.Labels.Get("virtualmachine")
		last, _ := s.Last()
		if del, ok := deleted[id]; ok && last.T > del {
			t.Errorf("VM %s has samples after deletion (%v > %v)", id, last.T, del)
		}
	}

	// The instance gauge must track the live population at the end.
	inst := store.Select(exporter.MetricInstancesTotal)
	if len(inst) != 1 {
		t.Fatal("missing instance gauge")
	}
	last, _ := inst[0].Last()
	if int(last.V) != len(p.live) {
		t.Errorf("instance gauge = %v, live = %d", last.V, len(p.live))
	}
}
