package integration

import (
	"math"
	"testing"

	"sapsim/internal/analysis"
	"sapsim/internal/core"
	"sapsim/internal/exporter"
	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
	"sapsim/internal/workload"
)

// TestReplayReproducesUtilizationShape exercises the dataset's headline use
// case: drive a scheduler with the *recorded* workload. A synthetic run's
// released per-VM telemetry is reconstructed via BuildReplay, the replayed
// profiles are re-sampled, and the Fig. 14a utilization split must match
// the original run's.
func TestReplayReproducesUtilizationShape(t *testing.T) {
	cfg := core.DefaultConfig(77)
	cfg.Scale = 0.02
	cfg.VMs = 300
	cfg.Days = 5
	cfg.SampleEvery = sim.Hour
	cfg.VMSampleEvery = sim.Hour
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	horizon := cfg.Horizon()

	insts, err := workload.BuildReplay(res.Store, horizon)
	if err != nil {
		t.Fatal(err)
	}
	if len(insts) < 250 {
		t.Fatalf("replay reconstructed only %d instances", len(insts))
	}

	// Re-sample the replayed profiles over the window and compare the
	// population split against the original telemetry.
	var replayMeans []float64
	for _, in := range insts {
		from := in.ArriveAt
		if from < 0 {
			from = 0
		}
		to := in.DeleteAt()
		if to > horizon {
			to = horizon
		}
		if to <= from {
			continue
		}
		sum, n := 0.0, 0
		for ts := from; ts < to; ts += sim.Hour {
			sum += in.VM.Profile.CPUUsage(ts)
			n++
		}
		if n > 0 {
			replayMeans = append(replayMeans, sum/float64(n))
		}
	}
	replaySplit := analysis.SplitUtilization(analysis.NewCDF(replayMeans))
	origSplit := analysis.SplitUtilization(
		analysis.VMMeanUsage(res.Store, exporter.MetricVMCPURatio, 0, horizon))

	if math.Abs(replaySplit.Under-origSplit.Under) > 0.05 {
		t.Errorf("replayed under-utilized share %.3f vs original %.3f",
			replaySplit.Under, origSplit.Under)
	}
	if math.Abs(replaySplit.Over-origSplit.Over) > 0.05 {
		t.Errorf("replayed over-utilized share %.3f vs original %.3f",
			replaySplit.Over, origSplit.Over)
	}
}

// TestReplayTimelineMatchesEvents checks that replay arrival/deletion times
// reconstructed from telemetry are consistent with the recorded event
// stream for churned VMs.
func TestReplayTimelineMatchesEvents(t *testing.T) {
	cfg := core.DefaultConfig(78)
	cfg.Scale = 0.02
	cfg.VMs = 250
	cfg.Days = 5
	cfg.SampleEvery = sim.Hour
	cfg.VMSampleEvery = 30 * sim.Minute
	res, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	insts, err := workload.BuildReplay(res.Store, cfg.Horizon())
	if err != nil {
		t.Fatal(err)
	}
	byID := map[string]*workload.Instance{}
	for _, in := range insts {
		byID[string(in.VM.ID)] = in
	}
	checked := 0
	for _, e := range res.Events.All() {
		if e.Type != "create" {
			continue
		}
		in, ok := byID[e.VM]
		if !ok {
			// VMs deleted before their first telemetry sample leave no
			// series; acceptable loss.
			continue
		}
		// The reconstructed arrival must be within one VM-sampling
		// period of the recorded creation.
		if d := (in.ArriveAt - e.At).Duration(); d < 0 || d > (30*sim.Minute).Duration() {
			t.Errorf("VM %s: replay arrival %v vs create event %v", e.VM, in.ArriveAt, e.At)
		}
		checked++
	}
	if checked == 0 {
		t.Error("no created VMs cross-checked")
	}
	_ = telemetry.Labels{}
}
