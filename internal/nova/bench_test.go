package nova

import (
	"fmt"
	"testing"

	"sapsim/internal/esx"
	"sapsim/internal/placement"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
)

// BenchmarkSchedulePlacement measures placement throughput: the initial
// population of the paper's region is ~48,000 VMs, so the scheduler's
// filter/weigh/claim path must sustain tens of thousands of decisions.
func BenchmarkSchedulePlacement(b *testing.B) {
	r := topology.NewRegion("bench")
	dc := r.AddAZ("az").AddDC("dc")
	gen := topology.Capacity{PCPUCores: 96, MemoryMB: 1 << 20, StorageGB: 8 << 10, NetworkGbps: 200}
	for i := 0; i < 20; i++ {
		if _, err := dc.AddBB(topology.BBID(fmt.Sprintf("bb-%02d", i)), topology.GeneralPurpose, 14, gen); err != nil {
			b.Fatal(err)
		}
	}
	fleet := esx.NewFleet(r, esx.DefaultConfig())
	sched, err := NewScheduler(fleet, placement.NewService(), DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	flavor := vmmodel.CatalogByName()["MK"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm := &vmmodel.VM{ID: vmmodel.ID(fmt.Sprintf("vm-%d", i)), Flavor: flavor}
		if _, err := sched.Schedule(&RequestSpec{VM: vm}, 0); err != nil {
			// Fleet full: recycle by deleting this VM's predecessors.
			b.StopTimer()
			for _, h := range fleet.Hosts() {
				for _, v := range h.VMs() {
					_ = sched.Delete(v, 0)
				}
			}
			b.StartTimer()
		}
	}
}

// BenchmarkRankWeighers measures the weighing pipeline over a large host
// list.
func BenchmarkRankWeighers(b *testing.B) {
	r := topology.NewRegion("bench")
	dc := r.AddAZ("az").AddDC("dc")
	gen := topology.Capacity{PCPUCores: 96, MemoryMB: 1 << 20, StorageGB: 8 << 10, NetworkGbps: 200}
	var hosts []*HostState
	for i := 0; i < 128; i++ {
		bb, err := dc.AddBB(topology.BBID(fmt.Sprintf("bb-%03d", i)), topology.GeneralPurpose, 2, gen)
		if err != nil {
			b.Fatal(err)
		}
		hosts = append(hosts, &HostState{
			BB: bb,
			Alloc: esx.BBAllocation{
				VCPUCap: 768, VCPUAlloc: i * 3,
				MemCapMB: 2 << 20, MemAllocMB: int64(i) << 12,
				ActiveNodes: 2,
			},
		})
	}
	req := &RequestSpec{VM: &vmmodel.VM{ID: "x", Flavor: vmmodel.CatalogByName()["MC"]}}
	weighers := DefaultWeighers()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rank(req, hosts, weighers)
	}
}
