package nova

import (
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
)

// Filter eliminates hosts that cannot serve a request (Fig. 3, first
// stage). Filters mirror their OpenStack namesakes.
type Filter interface {
	Name() string
	Pass(req *RequestSpec, h *HostState) bool
}

// ComputeFilter removes disabled hosts — building blocks with no active
// nodes (all in maintenance).
type ComputeFilter struct{}

// Name implements Filter.
func (ComputeFilter) Name() string { return "ComputeFilter" }

// Pass implements Filter.
func (ComputeFilter) Pass(_ *RequestSpec, h *HostState) bool {
	return h.Alloc.ActiveNodes > 0
}

// AvailabilityZoneFilter keeps hosts in the requested AZ.
type AvailabilityZoneFilter struct{}

// Name implements Filter.
func (AvailabilityZoneFilter) Name() string { return "AvailabilityZoneFilter" }

// Pass implements Filter.
func (AvailabilityZoneFilter) Pass(req *RequestSpec, h *HostState) bool {
	if req.AZ == "" {
		return true
	}
	return h.BB.DC.AZ.Name == req.AZ
}

// CoreFilter removes hosts with insufficient unallocated vCPU capacity
// (overcommit-adjusted), the CPU half of OpenStack's ComputeCapabilities /
// CoreFilter behavior.
type CoreFilter struct{}

// Name implements Filter.
func (CoreFilter) Name() string { return "CoreFilter" }

// Pass implements Filter.
func (CoreFilter) Pass(req *RequestSpec, h *HostState) bool {
	return h.FreeVCPUs() >= req.Flavor().VCPUs
}

// RamFilter removes hosts with insufficient unallocated memory.
type RamFilter struct{}

// Name implements Filter.
func (RamFilter) Name() string { return "RamFilter" }

// Pass implements Filter.
func (RamFilter) Pass(req *RequestSpec, h *HostState) bool {
	return h.FreeMemMB() >= req.VM.RequestedMemoryMB()
}

// AggregateInstanceExtraSpecsFilter enforces the special-purpose building
// block segregation: HANA flavors on HANA blocks, GPU flavors on GPU
// blocks, everything else on general-purpose blocks (Sec. 3.1).
type AggregateInstanceExtraSpecsFilter struct{}

// Name implements Filter.
func (AggregateInstanceExtraSpecsFilter) Name() string {
	return "AggregateInstanceExtraSpecsFilter"
}

// Pass implements Filter.
func (AggregateInstanceExtraSpecsFilter) Pass(req *RequestSpec, h *HostState) bool {
	f := req.Flavor()
	switch h.BB.Kind {
	case topology.HANA:
		return f.Class == vmmodel.HANA
	case topology.GPU:
		return f.RequireGPU
	default:
		return f.Class != vmmodel.HANA && !f.RequireGPU
	}
}

// NodeFitFilter removes building blocks where no *single node* can host
// the flavor, even though aggregate BB capacity suffices. Vanilla Nova
// lacks this check — the fragmentation gap the paper calls out (Sec. 7,
// "holistic scheduling") — so the filter is optional and enabled in the
// holistic ablation.
type NodeFitFilter struct {
	// FitsNode reports whether some node of the building block can admit
	// the flavor; wired to esx.Fleet by the scheduler constructor.
	FitsNode func(bb *topology.BuildingBlock, f *vmmodel.Flavor) bool
}

// Name implements Filter.
func (NodeFitFilter) Name() string { return "NodeFitFilter" }

// Pass implements Filter.
func (nf NodeFitFilter) Pass(req *RequestSpec, h *HostState) bool {
	if nf.FitsNode == nil {
		return true
	}
	return nf.FitsNode(h.BB, req.Flavor())
}

// DefaultFilters is the SAP production pipeline (Sec. 3.2): compute status,
// AZ, CPU, RAM, aggregate segregation, and server-group policies.
func DefaultFilters() []Filter {
	return []Filter{
		ComputeFilter{},
		AvailabilityZoneFilter{},
		CoreFilter{},
		RamFilter{},
		AggregateInstanceExtraSpecsFilter{},
		ServerGroupFilter{},
	}
}
