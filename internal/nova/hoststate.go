// Package nova models the OpenStack Nova scheduler: the filter and weigher
// pipeline that performs *initial placement* of VMs onto compute hosts
// (Figs. 2 and 3). As in the SAP deployment, a "compute host" is an entire
// vSphere cluster (building block); node selection inside the cluster is a
// second, independent layer (Sec. 3.1) — the architecture whose
// fragmentation effects the paper quantifies.
package nova

import (
	"fmt"

	"sapsim/internal/esx"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
)

// HostState is the scheduler's cached view of one compute host (building
// block), assembled from the placement inventory and recent telemetry.
type HostState struct {
	BB    *topology.BuildingBlock
	Alloc esx.BBAllocation
	// AvgContentionPct is the building block's recent mean CPU
	// contention; vanilla Nova ignores it, the contention-aware weigher
	// (Sec. 7 guidance) consumes it.
	AvgContentionPct float64
}

// FreeVCPUs reports unallocated vCPU capacity.
func (h *HostState) FreeVCPUs() int { return h.Alloc.VCPUCap - h.Alloc.VCPUAlloc }

// FreeMemMB reports unallocated memory capacity.
func (h *HostState) FreeMemMB() int64 { return h.Alloc.MemCapMB - h.Alloc.MemAllocMB }

// RequestSpec carries one placement request through the pipeline.
type RequestSpec struct {
	VM *vmmodel.VM
	// AZ restricts placement to one availability zone ("" = any).
	AZ string
	// Group applies a server-group policy (affinity/anti-affinity);
	// membership is maintained by the scheduler.
	Group *ServerGroup
}

// Flavor is shorthand for the requested flavor.
func (r *RequestSpec) Flavor() *vmmodel.Flavor { return r.VM.Flavor }

// Shared trait slices returned by Traits — there are only three request
// shapes, so the slices are computed once. Callers must not mutate them.
var (
	traitsGPU          = []string{TraitGPU}
	traitsHANA         = []string{TraitHANA}
	traitsReservedOnly = []string{TraitReserved}
	traitsGeneralForb  = []string{TraitHANA, TraitGPU, TraitReserved}
)

// Traits derives the placement traits of the request: HANA flavors must
// land on HANA building blocks, GPU flavors on GPU blocks, and
// general-purpose flavors on neither (Sec. 3.1: special-purpose BBs "do not
// accommodate other VMs"). Reserved failover capacity is excluded for
// every request. The returned slices are shared and must not be mutated.
func (r *RequestSpec) Traits() (required, forbidden []string) {
	f := r.Flavor()
	switch {
	case f.RequireGPU:
		return traitsGPU, traitsReservedOnly
	case f.Class == vmmodel.HANA:
		return traitsHANA, traitsReservedOnly
	default:
		return nil, traitsGeneralForb
	}
}

// Placement traits.
const (
	TraitHANA     = "HANA"
	TraitGPU      = "GPU"
	TraitReserved = "RESERVED"
)

// TraitsOfBB maps a building block to its advertised traits.
func TraitsOfBB(bb *topology.BuildingBlock) []string {
	var traits []string
	switch bb.Kind {
	case topology.HANA:
		traits = append(traits, TraitHANA)
	case topology.GPU:
		traits = append(traits, TraitGPU)
	}
	if bb.Reserved {
		traits = append(traits, TraitReserved)
	}
	return traits
}

// NoValidHostError is Nova's terminal scheduling failure: every host was
// filtered out or every claim attempt failed.
type NoValidHostError struct {
	VM      vmmodel.ID
	Reasons map[string]int // filter name → hosts eliminated
}

// Error implements error.
func (e *NoValidHostError) Error() string {
	return fmt.Sprintf("nova: no valid host for %s (eliminations: %v)", e.VM, e.Reasons)
}
