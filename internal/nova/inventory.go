package nova

import (
	"sort"

	"sapsim/internal/esx"
	"sapsim/internal/placement"
	"sapsim/internal/topology"
)

// bbEntry is the scheduler's incremental inventory record for one building
// block: a mirror of the placement provider's traits, capacity, and usage,
// plus a persistent HostState reused across scheduling decisions. The mirror
// is updated on claim, release, move, and inventory refresh, so the per-
// request candidate scan reads plain fields instead of re-querying the
// placement service and rebuilding []*HostState.
//
// The mirror is sound because the scheduler is the sole writer to its
// placement service (each scheduler is constructed with its own); tests
// assert the two views never drift (TestInventoryMirrorConsistency).
type bbEntry struct {
	bb   *topology.BuildingBlock
	name string // provider name, string(bb.ID)

	// Traits, fixed at provider creation exactly as in placement.
	hasHANA, hasGPU, hasReserved bool

	// Capacity and usage mirror of the provider's two inventories.
	vcpuCap, memCap   int64
	vcpuUsed, memUsed int64

	// state is the persistent HostState handed to filters and weighers;
	// its Alloc and AvgContentionPct are refreshed per request.
	state HostState
}

// matches reports whether the entry satisfies the flavor's trait
// requirements — the same predicate placement applies to req.Traits().
func (e *bbEntry) matches(f *vmFlavorTraits) bool {
	switch {
	case f.requireGPU:
		return e.hasGPU && !e.hasReserved
	case f.hana:
		return e.hasHANA && !e.hasReserved
	default:
		return !e.hasHANA && !e.hasGPU && !e.hasReserved
	}
}

// vmFlavorTraits is the trait shape of one request.
type vmFlavorTraits struct {
	requireGPU bool
	hana       bool
}

// askRec remembers one consumer's claimed amounts and provider so releases
// and moves can update the mirror without consulting placement.
type askRec struct {
	e         *bbEntry
	vcpu, mem int64
}

// newEntry builds the mirror record for a building block from its current
// fleet allocation, mirroring CreateProvider's inventory and traits.
func newEntry(bb *topology.BuildingBlock, alloc esx.BBAllocation) *bbEntry {
	e := &bbEntry{
		bb:          bb,
		name:        string(bb.ID),
		hasReserved: bb.Reserved,
		vcpuCap:     int64(alloc.VCPUCap),
		memCap:      alloc.MemCapMB,
	}
	switch bb.Kind {
	case topology.HANA:
		e.hasHANA = true
	case topology.GPU:
		e.hasGPU = true
	}
	e.state.BB = bb
	return e
}

// addEntry inserts the entry keeping s.entries sorted by provider name, the
// order placement.Candidates returns.
func (s *Scheduler) addEntry(e *bbEntry) {
	i := sort.Search(len(s.entries), func(i int) bool { return s.entries[i].name >= e.name })
	s.entries = append(s.entries, nil)
	copy(s.entries[i+1:], s.entries[i:])
	s.entries[i] = e
	s.byBB[e.bb.ID] = e
}

// claim allocates in placement and, on success, applies the same delta to
// the mirror and records the consumer's hold.
func (s *Scheduler) claim(consumer string, e *bbEntry, vcpu, mem int64) error {
	s.ask[placement.VCPU] = vcpu
	s.ask[placement.MemoryMB] = mem
	if err := s.placement.Claim(consumer, e.name, s.ask); err != nil {
		return err
	}
	e.vcpuUsed += vcpu
	e.memUsed += mem
	s.asks[consumer] = askRec{e: e, vcpu: vcpu, mem: mem}
	return nil
}

// release frees the consumer's placement allocation and rolls the mirror
// back by the recorded amounts.
func (s *Scheduler) release(consumer string) error {
	if err := s.placement.Release(consumer); err != nil {
		return err
	}
	if rec, ok := s.asks[consumer]; ok {
		rec.e.vcpuUsed -= rec.vcpu
		rec.e.memUsed -= rec.mem
		delete(s.asks, consumer)
	}
	return nil
}

// moveMirror re-points the consumer's recorded hold after a successful
// placement.Move.
func (s *Scheduler) moveMirror(consumer string, to *bbEntry) {
	rec, ok := s.asks[consumer]
	if !ok || rec.e == to {
		return
	}
	rec.e.vcpuUsed -= rec.vcpu
	rec.e.memUsed -= rec.mem
	to.vcpuUsed += rec.vcpu
	to.memUsed += rec.mem
	s.asks[consumer] = askRec{e: to, vcpu: rec.vcpu, mem: rec.mem}
}

// copyReasons snapshots the scratch elimination counters for an error that
// outlives the scheduling call.
func copyReasons(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}
