package nova

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"sapsim/internal/placement"
	"sapsim/internal/sim"
	"sapsim/internal/vmmodel"
)

// TestInventoryMirrorConsistency hammers the scheduler with random
// schedule/delete/resize traffic plus maintenance-driven inventory
// refreshes, then asserts the incremental inventory mirror agrees with the
// placement service field by field, and that the mirror's candidate scan
// returns exactly the set the placement query would.
func TestInventoryMirrorConsistency(t *testing.T) {
	for trial := 0; trial < 6; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 1234))
		fleet, sched := testEnv(t, DefaultConfig())
		catalog := vmmodel.Catalog()
		var live []*vmmodel.VM
		now := sim.Time(0)

		for step := 0; step < 250; step++ {
			now += sim.Minute
			switch op := rng.IntN(12); {
			case op < 6: // schedule
				f := catalog[rng.IntN(len(catalog))]
				vm := &vmmodel.VM{
					ID:      vmmodel.ID(fmt.Sprintf("m%d-vm%d", trial, step)),
					Flavor:  f,
					Profile: constProfile{cpu: 0.2, mem: 0.5},
				}
				if _, err := sched.Schedule(&RequestSpec{VM: vm}, now); err == nil {
					live = append(live, vm)
				}
			case op < 8 && len(live) > 0: // delete
				i := rng.IntN(len(live))
				if err := sched.Delete(live[i], now); err != nil {
					t.Fatalf("trial %d step %d: delete: %v", trial, step, err)
				}
				live = append(live[:i], live[i+1:]...)
			case op < 10 && len(live) > 0: // resize
				i := rng.IntN(len(live))
				target := catalog[rng.IntN(len(catalog))]
				if target.Class != live[i].Flavor.Class {
					continue
				}
				_, _ = sched.Resize(live[i], target, now)
				if live[i].Node == nil {
					// A failed resize whose rollback also failed (the old
					// node went into maintenance mid-flight) strands the VM
					// unplaced — documented Resize behavior.
					live = append(live[:i], live[i+1:]...)
				}
			default: // flip a node's maintenance and refresh the BB inventory
				bbs := fleet.Region().BBs()
				bb := bbs[rng.IntN(len(bbs))]
				nodes := bb.Nodes
				if len(nodes) == 0 {
					continue
				}
				n := nodes[rng.IntN(len(nodes))]
				n.Maintenance = !n.Maintenance
				if err := sched.RefreshInventory(bb); err != nil {
					t.Fatalf("trial %d step %d: refresh: %v", trial, step, err)
				}
			}
		}

		pl := schedPlacement(sched)
		for _, e := range sched.entries {
			p, err := pl.Provider(e.name)
			if err != nil {
				t.Fatalf("trial %d: mirror has entry %s, placement does not: %v", trial, e.name, err)
			}
			if got, want := e.vcpuUsed, p.Used(placement.VCPU); got != want {
				t.Errorf("trial %d: %s mirror vcpuUsed=%d placement=%d", trial, e.name, got, want)
			}
			if got, want := e.memUsed, p.Used(placement.MemoryMB); got != want {
				t.Errorf("trial %d: %s mirror memUsed=%d placement=%d", trial, e.name, got, want)
			}
			if got, want := e.vcpuCap, p.Inventory(placement.VCPU).Capacity(); got != want {
				t.Errorf("trial %d: %s mirror vcpuCap=%d placement=%d", trial, e.name, got, want)
			}
			if got, want := e.memCap, p.Inventory(placement.MemoryMB).Capacity(); got != want {
				t.Errorf("trial %d: %s mirror memCap=%d placement=%d", trial, e.name, got, want)
			}
		}

		// The mirror's candidate scan must reproduce the placement query:
		// same providers, same name order, for every request shape.
		for _, f := range catalog {
			vm := &vmmodel.VM{ID: "probe", Flavor: f}
			req := &RequestSpec{VM: vm}
			ask := placement.Request{
				placement.VCPU:     int64(f.VCPUs),
				placement.MemoryMB: vm.RequestedMemoryMB(),
			}
			required, forbidden := req.Traits()
			want, err := pl.Candidates(ask, required, forbidden)
			if err != nil {
				t.Fatal(err)
			}
			var got []string
			traits := vmFlavorTraits{requireGPU: f.RequireGPU, hana: f.Class == vmmodel.HANA}
			for _, e := range sched.entries {
				if e.matches(&traits) &&
					e.vcpuCap-e.vcpuUsed >= int64(f.VCPUs) &&
					e.memCap-e.memUsed >= vm.RequestedMemoryMB() {
					got = append(got, e.name)
				}
			}
			if len(got) != len(want) {
				t.Fatalf("trial %d flavor %s: mirror candidates %v, placement %v", trial, f.Name, got, want)
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("trial %d flavor %s: mirror candidates %v, placement %v", trial, f.Name, got, want)
				}
			}
		}
	}
}

// TestSchedulerScheduleAllocs pins the steady-state allocation budget of a
// schedule+delete pair. Before the incremental inventory this was ~75
// allocations (candidate query, host-state rebuild, rank scratch, node
// sort); the budget leaves room only for the claim record and map churn.
func TestSchedulerScheduleAllocs(t *testing.T) {
	_, sched := testEnv(t, DefaultConfig())
	flavor := vmmodel.CatalogByName()["MK"]
	// Warm up scratch buffers and map capacity.
	for i := 0; i < 50; i++ {
		vm := &vmmodel.VM{ID: vmmodel.ID(fmt.Sprintf("warm-%d", i)), Flavor: flavor}
		if _, err := sched.Schedule(&RequestSpec{VM: vm}, 0); err != nil {
			t.Fatal(err)
		}
	}
	vm := &vmmodel.VM{ID: "alloc-probe", Flavor: flavor}
	req := &RequestSpec{VM: vm}
	avg := testing.AllocsPerRun(200, func() {
		if _, err := sched.Schedule(req, 0); err != nil {
			t.Fatal(err)
		}
		if err := sched.Delete(vm, 0); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 6 {
		t.Errorf("schedule+delete pair allocates %.1f objects, want <= 6", avg)
	}
}
