package nova

import (
	"errors"
	"fmt"
	"testing"

	"sapsim/internal/esx"
	"sapsim/internal/placement"
	"sapsim/internal/sim"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
)

type constProfile struct{ cpu, mem float64 }

func (p constProfile) CPUUsage(sim.Time) float64  { return p.cpu }
func (p constProfile) MemUsage(sim.Time) float64  { return p.mem }
func (p constProfile) NetTxKbps(sim.Time) float64 { return 0 }
func (p constProfile) NetRxKbps(sim.Time) float64 { return 0 }
func (p constProfile) DiskUsage(sim.Time) float64 { return 0.2 }

// testEnv builds a two-AZ region with general and HANA building blocks.
func testEnv(t *testing.T, cfg Config) (*esx.Fleet, *Scheduler) {
	t.Helper()
	r := topology.NewRegion("t")
	azA := r.AddAZ("az-a")
	dcA := azA.AddDC("dc-a")
	azB := r.AddAZ("az-b")
	dcB := azB.AddDC("dc-b")

	gen := topology.Capacity{PCPUCores: 32, MemoryMB: 512 << 10, StorageGB: 8 << 10, NetworkGbps: 200}
	hana := topology.Capacity{PCPUCores: 128, MemoryMB: 6 << 20, StorageGB: 32 << 10, NetworkGbps: 200}
	for i, dc := range []*topology.Datacenter{dcA, dcB} {
		if _, err := dc.AddBB(topology.BBID(fmt.Sprintf("gp-%d", i)), topology.GeneralPurpose, 4, gen); err != nil {
			t.Fatal(err)
		}
		if _, err := dc.AddBB(topology.BBID(fmt.Sprintf("hana-%d", i)), topology.HANA, 2, hana); err != nil {
			t.Fatal(err)
		}
	}
	fleet := esx.NewFleet(r, esx.DefaultConfig())
	sched, err := NewScheduler(fleet, placement.NewService(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	return fleet, sched
}

func mkVM(id, flavor string) *vmmodel.VM {
	return &vmmodel.VM{
		ID:      vmmodel.ID(id),
		Flavor:  vmmodel.CatalogByName()[flavor],
		Profile: constProfile{cpu: 0.3, mem: 0.6},
	}
}

func TestScheduleGeneralVM(t *testing.T) {
	_, sched := testEnv(t, DefaultConfig())
	vm := mkVM("vm-1", "MK")
	res, err := sched.Schedule(&RequestSpec{VM: vm}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.BB.Kind != topology.GeneralPurpose {
		t.Errorf("general VM landed on %v BB", res.BB.Kind)
	}
	if vm.State != vmmodel.Active || vm.Node != res.Node {
		t.Error("VM not active on the chosen node")
	}
	if got := sched.Stats().Scheduled; got != 1 {
		t.Errorf("scheduled = %d, want 1", got)
	}
}

func TestScheduleHANASegregation(t *testing.T) {
	_, sched := testEnv(t, DefaultConfig())
	vm := mkVM("vm-h", "XLG")
	res, err := sched.Schedule(&RequestSpec{VM: vm}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.BB.Kind != topology.HANA {
		t.Errorf("HANA VM landed on %v BB", res.BB.Kind)
	}
}

func TestScheduleAZFilter(t *testing.T) {
	_, sched := testEnv(t, DefaultConfig())
	vm := mkVM("vm-az", "MK")
	res, err := sched.Schedule(&RequestSpec{VM: vm, AZ: "az-b"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := res.BB.DC.AZ.Name; got != "az-b" {
		t.Errorf("VM placed in AZ %s, want az-b", got)
	}
	// Impossible AZ → NoValidHost.
	vm2 := mkVM("vm-az2", "MK")
	_, err = sched.Schedule(&RequestSpec{VM: vm2, AZ: "az-z"}, 0)
	var nvh *NoValidHostError
	if !errors.As(err, &nvh) {
		t.Fatalf("impossible AZ error = %v, want NoValidHostError", err)
	}
	if nvh.Reasons["AvailabilityZoneFilter"] == 0 {
		t.Errorf("expected AZ filter eliminations: %v", nvh.Reasons)
	}
}

func TestScheduleSpreadBehaviour(t *testing.T) {
	_, sched := testEnv(t, DefaultConfig())
	// Default RAMWeigher spreads general VMs: consecutive placements
	// should alternate between the two general BBs.
	seen := map[topology.BBID]int{}
	for i := 0; i < 8; i++ {
		vm := mkVM(fmt.Sprintf("vm-%d", i), "MC")
		res, err := sched.Schedule(&RequestSpec{VM: vm}, 0)
		if err != nil {
			t.Fatal(err)
		}
		seen[res.BB.ID]++
	}
	if len(seen) != 2 {
		t.Errorf("spread placement used %d BBs, want 2: %v", len(seen), seen)
	}
	for bb, n := range seen {
		if n != 4 {
			t.Errorf("uneven spread: %s got %d", bb, n)
		}
	}
}

func TestScheduleHANAPacking(t *testing.T) {
	_, sched := testEnv(t, DefaultConfig())
	// SAPPolicy bin-packs HANA VMs: all should land on the same BB (and
	// the same node) until it fills.
	var bbs []topology.BBID
	var nodes []topology.NodeID
	for i := 0; i < 4; i++ {
		vm := mkVM(fmt.Sprintf("vm-h%d", i), "XLB") // 192 GiB each
		res, err := sched.Schedule(&RequestSpec{VM: vm}, 0)
		if err != nil {
			t.Fatal(err)
		}
		bbs = append(bbs, res.BB.ID)
		nodes = append(nodes, res.Node.ID)
	}
	for i := 1; i < len(bbs); i++ {
		if bbs[i] != bbs[0] {
			t.Errorf("HANA VMs not packed into one BB: %v", bbs)
			break
		}
	}
	for i := 1; i < len(nodes); i++ {
		if nodes[i] != nodes[0] {
			t.Errorf("HANA VMs not packed onto one node: %v", nodes)
			break
		}
	}
}

func TestScheduleNoValidHostWhenFull(t *testing.T) {
	_, sched := testEnv(t, DefaultConfig())
	// Each HANA node admits 6 TiB − 64 GiB ≈ 6080 GiB; the BB aggregate
	// is ≈12160 GiB. XLO (6144 GiB) fits the BB aggregate that placement
	// checks, but no single node — the fragmentation case. The scheduler
	// must exhaust retries and fail.
	vm := mkVM("vm-big", "XLO")
	_, err := sched.Schedule(&RequestSpec{VM: vm}, 0)
	var nvh *NoValidHostError
	if !errors.As(err, &nvh) {
		t.Fatalf("oversized VM error = %v, want NoValidHostError", err)
	}
	if nvh.Reasons["NodeFragmentation"] == 0 {
		t.Errorf("want NodeFragmentation eliminations, got %v", nvh.Reasons)
	}
	if sched.Stats().Failed != 1 {
		t.Errorf("failed = %d, want 1", sched.Stats().Failed)
	}
}

func TestNodeFitFilterPreventsWastedRetries(t *testing.T) {
	cfg := DefaultConfig()
	fleetRef := struct{ f *esx.Fleet }{}
	cfg.Filters = append(DefaultFilters(), NodeFitFilter{
		FitsNode: func(bb *topology.BuildingBlock, f *vmmodel.Flavor) bool {
			for _, h := range fleetRef.f.HostsInBB(bb) {
				if h.Fits(f) {
					return true
				}
			}
			return false
		},
	})
	fleet, sched := testEnv(t, cfg)
	fleetRef.f = fleet
	vm := mkVM("vm-big", "XLO")
	_, err := sched.Schedule(&RequestSpec{VM: vm}, 0)
	var nvh *NoValidHostError
	if !errors.As(err, &nvh) {
		t.Fatalf("error = %v", err)
	}
	if nvh.Reasons["NodeFitFilter"] == 0 {
		t.Errorf("want NodeFitFilter eliminations, got %v", nvh.Reasons)
	}
	if nvh.Reasons["NodeFragmentation"] != 0 {
		t.Errorf("holistic filter should pre-empt fragmentation retries: %v", nvh.Reasons)
	}
}

func TestDeleteReleasesEverything(t *testing.T) {
	fleet, sched := testEnv(t, DefaultConfig())
	vm := mkVM("vm-1", "MC")
	res, err := sched.Schedule(&RequestSpec{VM: vm}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := sched.Delete(vm, sim.Hour); err != nil {
		t.Fatal(err)
	}
	h, _ := fleet.Host(res.Node.ID)
	if h.VMCount() != 0 {
		t.Error("delete left VM on host")
	}
	// Re-scheduling a VM with the same ID must work (allocation freed).
	vm2 := mkVM("vm-1", "MC")
	if _, err := sched.Schedule(&RequestSpec{VM: vm2}, sim.Hour); err != nil {
		t.Fatal(err)
	}
}

func TestMoveBBUpdatesPlacement(t *testing.T) {
	fleet, sched := testEnv(t, DefaultConfig())
	vm := mkVM("vm-1", "MC")
	res, err := sched.Schedule(&RequestSpec{VM: vm}, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Find a node in the *other* general BB.
	var target *topology.Node
	for _, bb := range fleet.Region().BBs() {
		if bb.Kind == topology.GeneralPurpose && bb.ID != res.BB.ID {
			target = bb.Nodes[0]
			break
		}
	}
	if err := sched.MoveBB(vm, target, sim.Hour); err != nil {
		t.Fatal(err)
	}
	if vm.Node != target {
		t.Error("MoveBB did not move the VM")
	}
	if vm.Migrations != 1 {
		t.Errorf("migrations = %d, want 1", vm.Migrations)
	}
}

func TestContentionWeigherSteersAway(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Weighers = []Weigher{ContentionWeigher{Mult: 10}, RAMWeigher{Mult: 0.1}}
	_, sched := testEnv(t, cfg)
	// Mark gp-0 heavily contended; general VMs should prefer gp-1.
	sched.SetContention("gp-0", 35)
	sched.SetContention("gp-1", 1)
	for i := 0; i < 4; i++ {
		vm := mkVM(fmt.Sprintf("vm-%d", i), "MK")
		res, err := sched.Schedule(&RequestSpec{VM: vm}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.BB.ID != "gp-1" {
			t.Errorf("VM %d placed on %s despite contention, want gp-1", i, res.BB.ID)
		}
	}
}

func TestComputeFilterSkipsMaintenanceBB(t *testing.T) {
	fleet, sched := testEnv(t, DefaultConfig())
	// Put every node of gp-0 into maintenance.
	bb, _ := fleet.Region().BB("gp-0")
	for _, n := range bb.Nodes {
		n.Maintenance = true
	}
	for i := 0; i < 4; i++ {
		vm := mkVM(fmt.Sprintf("vm-%d", i), "MK")
		res, err := sched.Schedule(&RequestSpec{VM: vm}, 0)
		if err != nil {
			t.Fatal(err)
		}
		if res.BB.ID == "gp-0" {
			t.Error("VM placed on maintenance BB")
		}
	}
}

func TestFilterUnits(t *testing.T) {
	_, sched := testEnv(t, DefaultConfig())
	_ = sched
	bbState := func(free int64) *HostState {
		return &HostState{Alloc: esx.BBAllocation{VCPUCap: 100, MemCapMB: free, ActiveNodes: 1}}
	}
	req := &RequestSpec{VM: mkVM("x", "MK")} // 2 vCPU, 16 GiB
	if !(RamFilter{}).Pass(req, bbState(16<<10)) {
		t.Error("RamFilter rejected exact fit")
	}
	if (RamFilter{}).Pass(req, bbState(16<<10-1)) {
		t.Error("RamFilter accepted undersized host")
	}
	if !(CoreFilter{}).Pass(req, &HostState{Alloc: esx.BBAllocation{VCPUCap: 2}}) {
		t.Error("CoreFilter rejected exact fit")
	}
	if (CoreFilter{}).Pass(req, &HostState{Alloc: esx.BBAllocation{VCPUCap: 1}}) {
		t.Error("CoreFilter accepted undersized host")
	}
	if (ComputeFilter{}).Pass(req, &HostState{Alloc: esx.BBAllocation{ActiveNodes: 0}}) {
		t.Error("ComputeFilter accepted dead BB")
	}
	// NodeFitFilter with nil hook passes everything.
	if !(NodeFitFilter{}).Pass(req, bbState(1)) {
		t.Error("nil NodeFitFilter should pass")
	}
}

func TestRequestTraits(t *testing.T) {
	gen := &RequestSpec{VM: mkVM("a", "MK")}
	req, forb := gen.Traits()
	if len(req) != 0 || len(forb) != 3 {
		t.Errorf("general traits = %v / %v", req, forb)
	}
	hana := &RequestSpec{VM: mkVM("b", "XLG")}
	req, _ = hana.Traits()
	if len(req) != 1 || req[0] != TraitHANA {
		t.Errorf("hana traits = %v", req)
	}
	gpuFlavor := &vmmodel.Flavor{Name: "GA", VCPUs: 16, RAMGiB: 128, DiskGB: 100, RequireGPU: true}
	gpu := &RequestSpec{VM: &vmmodel.VM{ID: "g", Flavor: gpuFlavor}}
	req, _ = gpu.Traits()
	if len(req) != 1 || req[0] != TraitGPU {
		t.Errorf("gpu traits = %v", req)
	}
}

func TestRankDeterministicTieBreak(t *testing.T) {
	r := topology.NewRegion("t")
	dc := r.AddAZ("a").AddDC("d")
	cap := topology.Capacity{PCPUCores: 8, MemoryMB: 1 << 20, StorageGB: 1 << 10, NetworkGbps: 100}
	bb1, _ := dc.AddBB("b-1", topology.GeneralPurpose, 2, cap)
	bb2, _ := dc.AddBB("b-2", topology.GeneralPurpose, 2, cap)
	req := &RequestSpec{VM: mkVM("x", "MK")}
	hosts := []*HostState{
		{BB: bb2, Alloc: esx.BBAllocation{MemCapMB: 100, VCPUCap: 10}},
		{BB: bb1, Alloc: esx.BBAllocation{MemCapMB: 100, VCPUCap: 10}},
	}
	ranked := rank(req, hosts, DefaultWeighers())
	if ranked[0].BB.ID != "b-1" {
		t.Errorf("tie break should order by BB ID: got %s first", ranked[0].BB.ID)
	}
	if rank(req, nil, DefaultWeighers()) != nil {
		t.Error("empty rank should be nil")
	}
}

func TestWeigherNamesAndMultipliers(t *testing.T) {
	req := &RequestSpec{VM: mkVM("x", "MK")}
	hreq := &RequestSpec{VM: mkVM("h", "XLG")}
	w := RAMWeigher{SAPPolicy: true}
	if w.Multiplier(req) != 1 {
		t.Error("default RAM multiplier should be 1")
	}
	if w.Multiplier(hreq) != -1 {
		t.Error("SAP policy should invert for HANA")
	}
	if (CPUWeigher{}).Multiplier(req) != 1 || (ContentionWeigher{}).Multiplier(req) != 1 || (VMCountWeigher{}).Multiplier(req) != 1 {
		t.Error("default multipliers should be 1")
	}
	for _, name := range []string{
		RAMWeigher{}.Name(), CPUWeigher{}.Name(), ContentionWeigher{}.Name(), VMCountWeigher{}.Name(),
		ComputeFilter{}.Name(), AvailabilityZoneFilter{}.Name(), CoreFilter{}.Name(), RamFilter{}.Name(),
		AggregateInstanceExtraSpecsFilter{}.Name(), NodeFitFilter{}.Name(),
	} {
		if name == "" {
			t.Error("empty component name")
		}
	}
}

func TestSchedulerFillsToCapacityThenFails(t *testing.T) {
	_, sched := testEnv(t, DefaultConfig())
	// General capacity: 2 BBs × 4 nodes × 32 cores × 4 overcommit = 1024
	// vCPUs... memory binds first: 8 nodes × (512−64) GiB = 3584 GiB.
	// MC = 8 vCPU / 64 GiB → 56 VMs fit by memory.
	placed := 0
	for i := 0; i < 80; i++ {
		vm := mkVM(fmt.Sprintf("vm-%d", i), "MC")
		if _, err := sched.Schedule(&RequestSpec{VM: vm}, 0); err == nil {
			placed++
		}
	}
	if placed != 56 {
		t.Errorf("placed %d MC VMs, want 56 (memory-bound)", placed)
	}
	st := sched.Stats()
	if st.Failed != 80-56 {
		t.Errorf("failed = %d, want %d", st.Failed, 80-56)
	}
}
