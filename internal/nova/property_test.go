package nova

import (
	"fmt"
	"math/rand/v2"
	"testing"

	"sapsim/internal/esx"
	"sapsim/internal/placement"
	"sapsim/internal/sim"
	"sapsim/internal/vmmodel"
)

// Property: across random schedule/delete/resize sequences, the scheduler
// never violates admission limits, never double-books placement, and
// keeps hypervisor and placement accounting in agreement.
func TestPropertySchedulerInvariants(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewPCG(uint64(trial), 77))
		fleet, sched := testEnv(t, DefaultConfig())
		pl := schedPlacement(sched)
		catalog := vmmodel.Catalog()
		var live []*vmmodel.VM
		now := sim.Time(0)

		for step := 0; step < 300; step++ {
			now += sim.Minute
			switch op := rng.IntN(10); {
			case op < 6: // schedule
				f := catalog[rng.IntN(len(catalog))]
				vm := &vmmodel.VM{
					ID:      vmmodel.ID(fmt.Sprintf("t%d-vm%d", trial, step)),
					Flavor:  f,
					Profile: constProfile{cpu: 0.2, mem: 0.5},
				}
				if _, err := sched.Schedule(&RequestSpec{VM: vm}, now); err == nil {
					live = append(live, vm)
				}
			case op < 8 && len(live) > 0: // delete
				i := rng.IntN(len(live))
				if err := sched.Delete(live[i], now); err != nil {
					t.Fatalf("trial %d step %d: delete: %v", trial, step, err)
				}
				live = append(live[:i], live[i+1:]...)
			case len(live) > 0: // resize
				i := rng.IntN(len(live))
				target := catalog[rng.IntN(len(catalog))]
				if target.Class != live[i].Flavor.Class {
					continue
				}
				_, _ = sched.Resize(live[i], target, now)
			}
		}

		// Invariant 1: per-host allocation counters match residents and
		// respect capacity.
		for _, h := range fleet.Hosts() {
			cpu, mem := 0, int64(0)
			for _, vm := range h.VMs() {
				if !vm.Flavor.PinCPU {
					cpu += vm.RequestedCPUCores()
				}
				mem += vm.RequestedMemoryMB()
			}
			if h.AllocatedVCPUs() != cpu || h.AllocatedMemMB() != mem {
				t.Fatalf("trial %d: host %s counters drifted", trial, h.Node.ID)
			}
			if h.AllocatedVCPUs() > h.VCPUCapacity() {
				t.Fatalf("trial %d: host %s vCPU over capacity", trial, h.Node.ID)
			}
			if h.AllocatedMemMB() > h.MemCapacityMB() {
				t.Fatalf("trial %d: host %s memory over capacity", trial, h.Node.ID)
			}
		}

		// Invariant 2: every live VM has a placement allocation on the
		// BB that hosts it, and no allocations leak.
		allocated := 0
		for _, vm := range live {
			if vm.Node == nil {
				t.Fatalf("trial %d: live VM %s unplaced", trial, vm.ID)
			}
			alloc := pl.AllocationOf(string(vm.ID))
			if alloc == nil {
				t.Fatalf("trial %d: live VM %s has no placement allocation", trial, vm.ID)
			}
			if alloc.Provider != string(vm.Node.BB.ID) {
				t.Fatalf("trial %d: VM %s placement points at %s, hosted on %s",
					trial, vm.ID, alloc.Provider, vm.Node.BB.ID)
			}
			allocated++
		}
		if pl.AllocationCount() != allocated {
			t.Fatalf("trial %d: placement has %d allocations, %d live VMs",
				trial, pl.AllocationCount(), allocated)
		}
	}
}

// schedPlacement exposes the scheduler's placement service for invariant
// checks.
func schedPlacement(s *Scheduler) *placement.Service { return s.placement }

// Property: scheduling is deterministic — the same request sequence on the
// same environment yields identical placements.
func TestPropertySchedulerDeterministic(t *testing.T) {
	run := func() []string {
		_, sched := testEnv(t, DefaultConfig())
		var out []string
		for i := 0; i < 60; i++ {
			flavor := vmmodel.Catalog()[i%len(vmmodel.Catalog())]
			vm := &vmmodel.VM{
				ID:      vmmodel.ID(fmt.Sprintf("vm-%03d", i)),
				Flavor:  flavor,
				Profile: constProfile{cpu: 0.3, mem: 0.6},
			}
			res, err := sched.Schedule(&RequestSpec{VM: vm}, sim.Time(i)*sim.Minute)
			if err != nil {
				out = append(out, "FAIL")
				continue
			}
			out = append(out, string(res.Node.ID))
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("placement %d differs: %s vs %s", i, a[i], b[i])
		}
	}
}

var _ = esx.DefaultConfig // keep the import pinned for the helper types
