package nova

import (
	"testing"

	"sapsim/internal/sim"
	"sapsim/internal/vmmodel"
)

func TestResizeInPlace(t *testing.T) {
	fleet, sched := testEnv(t, DefaultConfig())
	vm := mkVM("vm-1", "MK") // 2 vCPU / 16 GiB
	if _, err := sched.Schedule(&RequestSpec{VM: vm}, 0); err != nil {
		t.Fatal(err)
	}
	oldNode := vm.Node
	res, err := sched.Resize(vm, vmmodel.CatalogByName()["MC"], sim.Hour) // 8 vCPU / 64 GiB
	if err != nil {
		t.Fatal(err)
	}
	if vm.Flavor.Name != "MC" {
		t.Errorf("flavor = %s", vm.Flavor.Name)
	}
	if vm.State != vmmodel.Active {
		t.Errorf("state = %v", vm.State)
	}
	// The host had room: the spread weigher may still pick another node,
	// but allocation must be consistent either way.
	h, _ := fleet.Host(res.Node.ID)
	found := false
	for _, v := range h.VMs() {
		if v.ID == vm.ID {
			found = true
		}
	}
	if !found {
		t.Error("VM not resident on its scheduled node after resize")
	}
	if oldNode != res.Node {
		old, _ := fleet.Host(oldNode.ID)
		for _, v := range old.VMs() {
			if v.ID == vm.ID {
				t.Error("VM still resident on old node")
			}
		}
	}
}

func TestResizeAccountingConsistent(t *testing.T) {
	fleet, sched := testEnv(t, DefaultConfig())
	vm := mkVM("vm-1", "MK")
	if _, err := sched.Schedule(&RequestSpec{VM: vm}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Resize(vm, vmmodel.CatalogByName()["MJ"], sim.Hour); err != nil {
		t.Fatal(err)
	}
	// Fleet-wide allocation must equal the single VM's new footprint.
	totalVCPU := 0
	for _, h := range fleet.Hosts() {
		totalVCPU += h.AllocatedVCPUs()
	}
	if totalVCPU != 16 {
		t.Errorf("fleet vCPU allocation = %d, want 16 (MJ)", totalVCPU)
	}
	// Placement allocation must match too: re-scheduling a same-ID VM
	// would fail if the old claim leaked.
	if err := sched.Delete(vm, 2*sim.Hour); err != nil {
		t.Fatal(err)
	}
	vm2 := mkVM("vm-1", "MK")
	if _, err := sched.Schedule(&RequestSpec{VM: vm2}, 3*sim.Hour); err != nil {
		t.Fatalf("claim leaked through resize: %v", err)
	}
}

func TestResizeImpossibleRollsBack(t *testing.T) {
	fleet, sched := testEnv(t, DefaultConfig())
	vm := mkVM("vm-1", "XLB") // HANA, 192 GiB
	if _, err := sched.Schedule(&RequestSpec{VM: vm}, 0); err != nil {
		t.Fatal(err)
	}
	node := vm.Node
	// XLL (12 TiB) cannot fit any node in this environment.
	if _, err := sched.Resize(vm, vmmodel.CatalogByName()["XLL"], sim.Hour); err == nil {
		t.Fatal("impossible resize succeeded")
	}
	if vm.Flavor.Name != "XLB" {
		t.Errorf("flavor after rollback = %s, want XLB", vm.Flavor.Name)
	}
	if vm.Node != node || vm.State != vmmodel.Active {
		t.Errorf("VM not restored: node=%v state=%v", vm.Node, vm.State)
	}
	h, _ := fleet.Host(node.ID)
	if h.AllocatedVCPUs() != 24 {
		t.Errorf("host allocation after rollback = %d, want 24", h.AllocatedVCPUs())
	}
}

func TestResizeUnplacedRejected(t *testing.T) {
	_, sched := testEnv(t, DefaultConfig())
	vm := mkVM("vm-x", "MK")
	if _, err := sched.Resize(vm, vmmodel.CatalogByName()["MC"], 0); err == nil {
		t.Error("resize of unplaced VM succeeded")
	}
	placed := mkVM("vm-y", "MK")
	if _, err := sched.Schedule(&RequestSpec{VM: placed}, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := sched.Resize(placed, nil, 0); err == nil {
		t.Error("nil flavor accepted")
	}
}
