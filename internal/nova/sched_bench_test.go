package nova

import (
	"fmt"
	"testing"

	"sapsim/internal/esx"
	"sapsim/internal/placement"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
)

// benchFleet builds a 20-BB general-purpose fleet and scheduler.
func benchFleet(b *testing.B) (*esx.Fleet, *Scheduler) {
	b.Helper()
	r := topology.NewRegion("bench")
	dc := r.AddAZ("az").AddDC("dc")
	gen := topology.Capacity{PCPUCores: 96, MemoryMB: 1 << 20, StorageGB: 8 << 10, NetworkGbps: 200}
	for i := 0; i < 20; i++ {
		if _, err := dc.AddBB(topology.BBID(fmt.Sprintf("bb-%02d", i)), topology.GeneralPurpose, 14, gen); err != nil {
			b.Fatal(err)
		}
	}
	fleet := esx.NewFleet(r, esx.DefaultConfig())
	sched, err := NewScheduler(fleet, placement.NewService(), DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	return fleet, sched
}

// BenchmarkSchedulerSchedule measures the steady-state placement loop — the
// exact per-decision pipeline (candidate query, filters, weighers, claim,
// node selection, admission) a cell re-runs for every arrival, evacuation,
// and resize. The fleet is pre-warmed to a realistic occupancy and each
// iteration pairs one placement with one deletion so occupancy stays fixed.
func BenchmarkSchedulerSchedule(b *testing.B) {
	_, sched := benchFleet(b)
	flavor := vmmodel.CatalogByName()["MK"]
	const standing = 2000
	vms := make([]*vmmodel.VM, 0, standing)
	for i := 0; i < standing; i++ {
		vm := &vmmodel.VM{ID: vmmodel.ID(fmt.Sprintf("warm-%d", i)), Flavor: flavor}
		if _, err := sched.Schedule(&RequestSpec{VM: vm}, 0); err != nil {
			b.Fatalf("warmup placement %d: %v", i, err)
		}
		vms = append(vms, vm)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		vm := &vmmodel.VM{ID: vmmodel.ID(fmt.Sprintf("vm-%d", i)), Flavor: flavor}
		if _, err := sched.Schedule(&RequestSpec{VM: vm}, 0); err != nil {
			b.Fatal(err)
		}
		old := vms[i%standing]
		if err := sched.Delete(old, 0); err != nil {
			b.Fatal(err)
		}
		vms[i%standing] = vm
	}
}
