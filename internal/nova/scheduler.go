package nova

import (
	"errors"
	"fmt"

	"sapsim/internal/engprof"
	"sapsim/internal/esx"
	"sapsim/internal/placement"
	"sapsim/internal/sim"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
)

// NodePolicy selects the node inside a chosen building block. In
// production this is vCenter/DRS territory (the second scheduling layer,
// Sec. 3.1); the simulator models the common initial-placement policies.
type NodePolicy int

const (
	// SpreadNodes picks the active node with the most free memory.
	SpreadNodes NodePolicy = iota
	// PackNodes picks the fullest active node that still fits (memory
	// bin-packing, used for HANA blocks).
	PackNodes
)

// Config assembles a scheduler.
type Config struct {
	Filters  []Filter
	Weighers []Weigher
	// MaxAttempts bounds the claim-retry loop (Nova's
	// scheduler_max_attempts); the greedy retry behavior is described in
	// Sec. 2.2.
	MaxAttempts int
	// GeneralNodePolicy and HANANodePolicy pick nodes within the chosen
	// BB per workload class.
	GeneralNodePolicy NodePolicy
	HANANodePolicy    NodePolicy
}

// DefaultConfig is the SAP production configuration: default filters,
// RAM/CPU weighers with HANA packing, spread nodes for general workloads,
// pack nodes for HANA.
func DefaultConfig() Config {
	return Config{
		Filters:           DefaultFilters(),
		Weighers:          DefaultWeighers(),
		MaxAttempts:       3,
		GeneralNodePolicy: SpreadNodes,
		HANANodePolicy:    PackNodes,
	}
}

// Scheduler is the Nova scheduler plus conductor glue: it turns a request
// spec into a concrete (building block, node) assignment, claiming
// resources in placement and admitting the VM on the hypervisor.
type Scheduler struct {
	cfg       Config
	fleet     *esx.Fleet
	placement *placement.Service

	// Incremental candidate inventory: one entry per building block, name-
	// sorted (the order placement.Candidates returns), mirroring the
	// placement service so the per-request scan touches no maps or locks.
	entries []*bbEntry
	byBB    map[topology.BBID]*bbEntry
	// asks records each consumer's claimed amounts for mirror rollback.
	asks map[string]askRec

	// groups tracks server-group membership per VM so deletions release
	// the policy hold.
	groups map[vmmodel.ID]*ServerGroup

	// Scratch buffers reused across Schedule calls.
	ask     placement.Request
	reasons map[string]int
	hosts   []*HostState
	rbuf    rankBuf

	// stats
	scheduled  int
	failed     int
	retries    int
	eliminated map[string]int
	contention map[topology.BBID]float64 // fed by telemetry for the contention weigher

	// prof, when set, receives filter/weigh/claim sub-phase attribution.
	// These are nested spans: their wall time is already inside the
	// arrive/resize event interval the engine attributes, so the profiler
	// reports them as detail, not additional total.
	prof *engprof.Collector
}

// SetProfiler attaches the engine self-profiler's collector; nil detaches.
func (s *Scheduler) SetProfiler(p *engprof.Collector) { s.prof = p }

// NewScheduler wires a scheduler to a fleet and placement service, creating
// one resource provider per building block.
func NewScheduler(fleet *esx.Fleet, pl *placement.Service, cfg Config) (*Scheduler, error) {
	if cfg.MaxAttempts <= 0 {
		cfg.MaxAttempts = 3
	}
	s := &Scheduler{
		cfg:        cfg,
		fleet:      fleet,
		placement:  pl,
		byBB:       make(map[topology.BBID]*bbEntry),
		asks:       make(map[string]askRec),
		groups:     make(map[vmmodel.ID]*ServerGroup),
		ask:        make(placement.Request, 2),
		reasons:    make(map[string]int),
		eliminated: make(map[string]int),
		contention: make(map[topology.BBID]float64),
	}
	for _, bb := range fleet.Region().BBs() {
		alloc := fleet.BBAlloc(bb)
		inv := map[placement.ResourceClass]placement.Inventory{
			placement.VCPU:     {Total: int64(alloc.VCPUCap), AllocationRatio: 1},
			placement.MemoryMB: {Total: alloc.MemCapMB, AllocationRatio: 1},
		}
		if _, err := pl.CreateProvider(string(bb.ID), inv, TraitsOfBB(bb)...); err != nil {
			return nil, fmt.Errorf("nova: provider for %s: %w", bb.ID, err)
		}
		s.addEntry(newEntry(bb, alloc))
	}
	return s, nil
}

// SetContention feeds recent per-BB contention telemetry to the
// contention-aware weigher.
func (s *Scheduler) SetContention(bb topology.BBID, pct float64) {
	s.contention[bb] = pct
}

// Stats summarizes scheduler activity.
type Stats struct {
	Scheduled  int
	Failed     int
	Retries    int
	Eliminated map[string]int
}

// Stats returns a copy of the scheduler's counters.
func (s *Scheduler) Stats() Stats {
	el := make(map[string]int, len(s.eliminated))
	for k, v := range s.eliminated {
		el[k] = v
	}
	return Stats{Scheduled: s.scheduled, Failed: s.failed, Retries: s.retries, Eliminated: el}
}

// Result describes a successful placement.
type Result struct {
	BB       *topology.BuildingBlock
	Node     *topology.Node
	Attempts int
}

// Schedule places the VM: candidate scan → filters → weighers → claim →
// node selection → hypervisor admission. It retries down the ranked list,
// reproducing Nova's greedy retry behavior (Sec. 2.2). Candidates come from
// the scheduler's incremental inventory mirror — same set, same name order
// as the placement query it replaces — so the hot path allocates nothing on
// a first-attempt success.
func (s *Scheduler) Schedule(req *RequestSpec, now sim.Time) (*Result, error) {
	f := req.Flavor()
	askVCPU := int64(f.VCPUs)
	askMem := req.VM.RequestedMemoryMB()
	traits := vmFlavorTraits{requireGPU: f.RequireGPU, hana: f.Class == vmmodel.HANA}

	prof := s.prof
	var mark int64
	if prof != nil {
		mark = prof.Start()
	}
	clear(s.reasons)
	s.hosts = s.hosts[:0]
	for _, e := range s.entries {
		if !e.matches(&traits) ||
			e.vcpuCap-e.vcpuUsed < askVCPU || e.memCap-e.memUsed < askMem {
			continue
		}
		e.state.Alloc = s.fleet.BBAlloc(e.bb)
		e.state.AvgContentionPct = s.contention[e.bb.ID]
		if passed := s.applyFilters(req, &e.state, s.reasons); passed {
			s.hosts = append(s.hosts, &e.state)
		}
	}
	if prof != nil {
		prof.EndSpan(engprof.PhaseSchedFilter, mark, int64(len(s.entries)))
	}
	if len(s.hosts) == 0 {
		s.failed++
		return nil, &NoValidHostError{VM: req.VM.ID, Reasons: copyReasons(s.reasons)}
	}

	if prof != nil {
		mark = prof.Start()
	}
	ranked := s.rbuf.rank(req, s.hosts, s.cfg.Weighers)
	if prof != nil {
		prof.EndSpan(engprof.PhaseSchedWeigh, mark, int64(len(s.hosts)))
		mark = prof.Start()
	}
	attempts := 0
	for _, h := range ranked {
		if attempts >= s.cfg.MaxAttempts {
			break
		}
		attempts++
		node := s.selectNode(h.BB, f)
		if node == nil {
			// Aggregate capacity exists but no single node fits: the
			// fragmentation case. Retry the next host.
			s.retries++
			s.reasons["NodeFragmentation"]++
			continue
		}
		if err := s.claim(string(req.VM.ID), s.byBB[h.BB.ID], askVCPU, askMem); err != nil {
			s.retries++
			s.reasons["ClaimConflict"]++
			continue
		}
		if err := s.fleet.Place(req.VM, node, now); err != nil {
			// Roll back the claim and retry elsewhere.
			_ = s.release(string(req.VM.ID))
			s.retries++
			s.reasons["AdmissionFailed"]++
			continue
		}
		s.scheduled++
		if req.Group != nil {
			req.Group.record(req.VM.ID, h.BB.ID)
			s.groups[req.VM.ID] = req.Group
		}
		if prof != nil {
			prof.EndSpan(engprof.PhaseSchedClaim, mark, int64(attempts))
		}
		return &Result{BB: h.BB, Node: node, Attempts: attempts}, nil
	}
	if prof != nil {
		prof.EndSpan(engprof.PhaseSchedClaim, mark, int64(attempts))
	}
	s.failed++
	return nil, &NoValidHostError{VM: req.VM.ID, Reasons: copyReasons(s.reasons)}
}

func (s *Scheduler) applyFilters(req *RequestSpec, h *HostState, reasons map[string]int) bool {
	for _, f := range s.cfg.Filters {
		if !f.Pass(req, h) {
			reasons[f.Name()]++
			s.eliminated[f.Name()]++
			return false
		}
	}
	return true
}

// selectNode picks a node within the building block per the class policy,
// or nil when no node fits. A single argmin pass replaces sorting the whole
// fitting slice: the comparator is a strict total order (unique node IDs
// break ties), so the minimum is the element the sort put first.
func (s *Scheduler) selectNode(bb *topology.BuildingBlock, f *vmmodel.Flavor) *topology.Node {
	policy := s.cfg.GeneralNodePolicy
	if f.Class == vmmodel.HANA {
		policy = s.cfg.HANANodePolicy
	}
	var best *esx.Host
	var bestFree int64
	s.fleet.EachHostInBB(bb, func(h *esx.Host) {
		if !h.Fits(f) {
			return
		}
		free := h.FreeMemMB()
		if best == nil {
			best, bestFree = h, free
			return
		}
		switch {
		case free != bestFree:
			if policy == PackNodes {
				if free < bestFree {
					best, bestFree = h, free
				}
			} else if free > bestFree { // SpreadNodes
				best, bestFree = h, free
			}
		case h.Node.ID < best.Node.ID:
			best = h
		}
	})
	if best == nil {
		return nil
	}
	return best.Node
}

// Delete releases a VM: hypervisor eviction plus placement release plus
// server-group membership.
func (s *Scheduler) Delete(vm *vmmodel.VM, now sim.Time) error {
	if err := s.fleet.Remove(vm, now); err != nil {
		return err
	}
	if g, ok := s.groups[vm.ID]; ok {
		g.forget(vm.ID)
		delete(s.groups, vm.ID)
	}
	if err := s.release(string(vm.ID)); err != nil &&
		!errors.Is(err, placement.ErrUnknownConsumer) {
		return err
	}
	return nil
}

// Resize changes a VM's flavor, re-running placement with the new resource
// ask (a resize is one of the scheduler-triggering events of Sec. 2.2). The
// VM keeps running on its node when the node can absorb the delta;
// otherwise it is rescheduled like a fresh request. On failure the VM is
// restored to its original node and flavor.
func (s *Scheduler) Resize(vm *vmmodel.VM, newFlavor *vmmodel.Flavor, now sim.Time) (*Result, error) {
	if newFlavor == nil {
		return nil, errors.New("nova: nil flavor")
	}
	oldFlavor := vm.Flavor
	oldNode := vm.Node
	if oldNode == nil {
		return nil, fmt.Errorf("nova: resize of unplaced VM %s", vm.ID)
	}
	// Free the current footprint.
	if err := s.fleet.Evict(vm); err != nil {
		return nil, err
	}
	if err := s.release(string(vm.ID)); err != nil &&
		!errors.Is(err, placement.ErrUnknownConsumer) {
		return nil, err
	}
	vm.Flavor = newFlavor
	res, err := s.Schedule(&RequestSpec{VM: vm}, now)
	if err == nil {
		return res, nil
	}
	// Roll back: old flavor, old node, old claim.
	vm.Flavor = oldFlavor
	if cerr := s.claim(string(vm.ID), s.byBB[oldNode.BB.ID],
		int64(oldFlavor.VCPUs), vm.RequestedMemoryMB()); cerr != nil {
		return nil, fmt.Errorf("nova: resize rollback claim: %w (after %w)", cerr, err)
	}
	if perr := s.fleet.Place(vm, oldNode, now); perr != nil {
		return nil, fmt.Errorf("nova: resize rollback place: %w (after %w)", perr, err)
	}
	return nil, err
}

// Evacuate reschedules a VM off its current (failed or draining) host
// through the normal pipeline: evict, release the placement claim, and run a
// fresh Schedule. On failure the VM is left unplaced in the Migrating state
// and the scheduling error is returned — production evacuations end up in
// the ERROR state the same way when no valid host exists.
func (s *Scheduler) Evacuate(vm *vmmodel.VM, now sim.Time) (*Result, error) {
	if vm.Node == nil {
		return nil, fmt.Errorf("nova: evacuation of unplaced VM %s", vm.ID)
	}
	if err := s.fleet.Evict(vm); err != nil {
		return nil, err
	}
	if err := s.release(string(vm.ID)); err != nil &&
		!errors.Is(err, placement.ErrUnknownConsumer) {
		return nil, err
	}
	res, err := s.Schedule(&RequestSpec{VM: vm}, now)
	if err != nil {
		return nil, err
	}
	vm.Migrations++
	return res, nil
}

// RefreshInventory re-syncs a building block's placement inventory with the
// fleet's current active-node capacity. Callers invoke it when nodes fail,
// enter maintenance, or return to service, so the placement view tracks the
// shrunken (or restored) building block.
func (s *Scheduler) RefreshInventory(bb *topology.BuildingBlock) error {
	alloc := s.fleet.BBAlloc(bb)
	if err := s.placement.UpdateInventory(string(bb.ID), placement.VCPU,
		placement.Inventory{Total: int64(alloc.VCPUCap), AllocationRatio: 1}); err != nil {
		return err
	}
	if err := s.placement.UpdateInventory(string(bb.ID), placement.MemoryMB,
		placement.Inventory{Total: alloc.MemCapMB, AllocationRatio: 1}); err != nil {
		return err
	}
	if e, ok := s.byBB[bb.ID]; ok {
		e.vcpuCap = int64(alloc.VCPUCap)
		e.memCap = alloc.MemCapMB
	}
	return nil
}

// RefreshAllInventories re-reads capacity for every registered building
// block, in name order. Snapshot restore calls it after overlaying node
// service state so every provider inventory reflects the restored fleet
// before allocations are re-claimed.
func (s *Scheduler) RefreshAllInventories() error {
	for _, e := range s.entries {
		if err := s.RefreshInventory(e.bb); err != nil {
			return err
		}
	}
	return nil
}

// RegisterBB creates a placement resource provider for a building block
// added to the region after scheduler construction — a mid-run capacity
// expansion. For a block that already has a provider it degrades to
// RefreshInventory, so callers can use it idempotently for both brand-new
// and grown blocks.
func (s *Scheduler) RegisterBB(bb *topology.BuildingBlock) error {
	alloc := s.fleet.BBAlloc(bb)
	inv := map[placement.ResourceClass]placement.Inventory{
		placement.VCPU:     {Total: int64(alloc.VCPUCap), AllocationRatio: 1},
		placement.MemoryMB: {Total: alloc.MemCapMB, AllocationRatio: 1},
	}
	if _, err := s.placement.CreateProvider(string(bb.ID), inv, TraitsOfBB(bb)...); err != nil {
		if errors.Is(err, placement.ErrDuplicateProvider) {
			return s.RefreshInventory(bb)
		}
		return fmt.Errorf("nova: provider for %s: %w", bb.ID, err)
	}
	s.addEntry(newEntry(bb, alloc))
	return nil
}

// RestoreAllocation re-creates the placement claim and inventory-mirror
// hold for a VM resident in the fleet — snapshot restore re-admits each
// live VM onto its recorded node and then calls this to bring the placement
// view back in sync, exactly as the original Schedule's claim left it.
func (s *Scheduler) RestoreAllocation(vm *vmmodel.VM) error {
	if vm.Node == nil {
		return fmt.Errorf("nova: restore allocation of unplaced VM %s", vm.ID)
	}
	e, ok := s.byBB[vm.Node.BB.ID]
	if !ok {
		return fmt.Errorf("nova: restore allocation: unknown BB %s", vm.Node.BB.ID)
	}
	return s.claim(string(vm.ID), e, int64(vm.Flavor.VCPUs), vm.RequestedMemoryMB())
}

// RestoreStats overwrites the scheduler's counters from a snapshot.
func (s *Scheduler) RestoreStats(st Stats) {
	s.scheduled = st.Scheduled
	s.failed = st.Failed
	s.retries = st.Retries
	clear(s.eliminated)
	for k, v := range st.Eliminated {
		s.eliminated[k] = v
	}
}

// Contention returns a copy of the per-BB contention view fed through
// SetContention, for snapshotting.
func (s *Scheduler) Contention() map[topology.BBID]float64 {
	out := make(map[topology.BBID]float64, len(s.contention))
	for k, v := range s.contention {
		out[k] = v
	}
	return out
}

// MoveBB migrates a VM to a node in a different building block, updating
// the placement allocation (cross-BB rebalancing requires "manual
// intervention or external rebalancers", Sec. 3.1).
func (s *Scheduler) MoveBB(vm *vmmodel.VM, to *topology.Node, now sim.Time) error {
	if vm.Node != nil && vm.Node.BB != to.BB {
		if err := s.placement.Move(string(vm.ID), string(to.BB.ID)); err != nil {
			return err
		}
		if e, ok := s.byBB[to.BB.ID]; ok {
			s.moveMirror(string(vm.ID), e)
		}
	}
	return s.fleet.Migrate(vm, to, now)
}
