package nova

import (
	"fmt"

	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
)

// GroupPolicy is an OpenStack server-group placement policy.
type GroupPolicy int

const (
	// Affinity keeps group members on the same compute host (building
	// block) — co-location for chatty application tiers.
	Affinity GroupPolicy = iota
	// AntiAffinity spreads members across distinct compute hosts — the
	// HA pattern for SAP application-server pairs and HANA replicas
	// (the paper's workloads have "stringent ... availability
	// requirements", Sec. 3.1).
	AntiAffinity
)

// String implements fmt.Stringer.
func (p GroupPolicy) String() string {
	switch p {
	case Affinity:
		return "affinity"
	case AntiAffinity:
		return "anti-affinity"
	default:
		return fmt.Sprintf("GroupPolicy(%d)", int(p))
	}
}

// ServerGroup tracks the placement of its members. The scheduler updates
// membership on placement and deletion.
type ServerGroup struct {
	Name    string
	Policy  GroupPolicy
	members map[vmmodel.ID]topology.BBID
}

// NewServerGroup creates an empty group.
func NewServerGroup(name string, policy GroupPolicy) *ServerGroup {
	return &ServerGroup{Name: name, Policy: policy, members: make(map[vmmodel.ID]topology.BBID)}
}

// Members reports the current membership count.
func (g *ServerGroup) Members() int { return len(g.members) }

// HostsUsed returns the set of building blocks currently hosting members.
func (g *ServerGroup) HostsUsed() map[topology.BBID]int {
	out := make(map[topology.BBID]int, len(g.members))
	for _, bb := range g.members {
		out[bb]++
	}
	return out
}

// record registers a member placement.
func (g *ServerGroup) record(id vmmodel.ID, bb topology.BBID) {
	g.members[id] = bb
}

// forget removes a member (on deletion).
func (g *ServerGroup) forget(id vmmodel.ID) {
	delete(g.members, id)
}

// allows reports whether placing a new member on bb satisfies the policy.
func (g *ServerGroup) allows(bb topology.BBID) bool {
	used := g.HostsUsed()
	switch g.Policy {
	case Affinity:
		if len(used) == 0 {
			return true // first member seeds the group's host
		}
		_, ok := used[bb]
		return ok
	case AntiAffinity:
		_, taken := used[bb]
		return !taken
	default:
		return true
	}
}

// ServerGroupFilter enforces the request's server-group policy
// (OpenStack's ServerGroupAffinityFilter / ServerGroupAntiAffinityFilter).
type ServerGroupFilter struct{}

// Name implements Filter.
func (ServerGroupFilter) Name() string { return "ServerGroupFilter" }

// Pass implements Filter.
func (ServerGroupFilter) Pass(req *RequestSpec, h *HostState) bool {
	if req.Group == nil {
		return true
	}
	return req.Group.allows(h.BB.ID)
}
