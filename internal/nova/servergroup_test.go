package nova

import (
	"errors"
	"fmt"
	"testing"

	"sapsim/internal/sim"
	"sapsim/internal/topology"
)

func TestAntiAffinitySpreadsAcrossBBs(t *testing.T) {
	_, sched := testEnv(t, DefaultConfig())
	group := NewServerGroup("ha-pair", AntiAffinity)
	var bbs []topology.BBID
	for i := 0; i < 2; i++ {
		vm := mkVM(fmt.Sprintf("vm-%d", i), "MC")
		res, err := sched.Schedule(&RequestSpec{VM: vm, Group: group}, 0)
		if err != nil {
			t.Fatal(err)
		}
		bbs = append(bbs, res.BB.ID)
	}
	if bbs[0] == bbs[1] {
		t.Errorf("anti-affinity pair co-located on %s", bbs[0])
	}
	if group.Members() != 2 {
		t.Errorf("members = %d", group.Members())
	}
}

func TestAntiAffinityExhaustsHosts(t *testing.T) {
	_, sched := testEnv(t, DefaultConfig())
	// Only two general-purpose BBs exist: the third member cannot place.
	group := NewServerGroup("triple", AntiAffinity)
	placed := 0
	var lastErr error
	for i := 0; i < 3; i++ {
		vm := mkVM(fmt.Sprintf("vm-%d", i), "MC")
		if _, err := sched.Schedule(&RequestSpec{VM: vm, Group: group}, 0); err == nil {
			placed++
		} else {
			lastErr = err
		}
	}
	if placed != 2 {
		t.Errorf("placed %d anti-affinity members on 2 BBs, want 2", placed)
	}
	var nvh *NoValidHostError
	if !errors.As(lastErr, &nvh) {
		t.Fatalf("third member error = %v", lastErr)
	}
	if nvh.Reasons["ServerGroupFilter"] == 0 {
		t.Errorf("expected ServerGroupFilter eliminations: %v", nvh.Reasons)
	}
}

func TestAffinityCoLocates(t *testing.T) {
	_, sched := testEnv(t, DefaultConfig())
	group := NewServerGroup("tier", Affinity)
	var bbs []topology.BBID
	for i := 0; i < 4; i++ {
		vm := mkVM(fmt.Sprintf("vm-%d", i), "MK")
		res, err := sched.Schedule(&RequestSpec{VM: vm, Group: group}, 0)
		if err != nil {
			t.Fatal(err)
		}
		bbs = append(bbs, res.BB.ID)
	}
	for i := 1; i < len(bbs); i++ {
		if bbs[i] != bbs[0] {
			t.Fatalf("affinity group scattered: %v", bbs)
		}
	}
}

func TestDeleteReleasesGroupMembership(t *testing.T) {
	_, sched := testEnv(t, DefaultConfig())
	group := NewServerGroup("pair", AntiAffinity)
	vms := make([]*RequestSpec, 2)
	for i := 0; i < 2; i++ {
		vms[i] = &RequestSpec{VM: mkVM(fmt.Sprintf("vm-%d", i), "MC"), Group: group}
		if _, err := sched.Schedule(vms[i], 0); err != nil {
			t.Fatal(err)
		}
	}
	// Delete one member; a replacement must be schedulable again.
	if err := sched.Delete(vms[0].VM, sim.Hour); err != nil {
		t.Fatal(err)
	}
	if group.Members() != 1 {
		t.Errorf("members after delete = %d", group.Members())
	}
	replacement := &RequestSpec{VM: mkVM("vm-r", "MC"), Group: group}
	if _, err := sched.Schedule(replacement, 2*sim.Hour); err != nil {
		t.Fatalf("replacement rejected: %v", err)
	}
}

func TestGroupPolicyString(t *testing.T) {
	if Affinity.String() != "affinity" || AntiAffinity.String() != "anti-affinity" {
		t.Error("policy strings wrong")
	}
	if GroupPolicy(9).String() != "GroupPolicy(9)" {
		t.Error("unknown policy string wrong")
	}
}

func TestNilGroupPassesFilter(t *testing.T) {
	req := &RequestSpec{VM: mkVM("x", "MK")}
	if !(ServerGroupFilter{}).Pass(req, &HostState{BB: &topology.BuildingBlock{ID: "b"}}) {
		t.Error("nil group should pass")
	}
}
