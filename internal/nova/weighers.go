package nova

import (
	"sapsim/internal/vmmodel"
)

// Weigher scores the hosts that survive filtering (Fig. 3, second stage).
// Raw weights are min-max normalized per weigher across the candidate set,
// multiplied by the weigher's multiplier, and summed — exactly Nova's
// weighing scheme. A positive multiplier prefers larger raw values; a
// negative multiplier inverts the preference (spread → pack).
type Weigher interface {
	Name() string
	// Weigh returns the raw (un-normalized) score for the host.
	Weigh(req *RequestSpec, h *HostState) float64
	// Multiplier scales the normalized score and sets its direction.
	Multiplier(req *RequestSpec) float64
}

// RAMWeigher prefers hosts with more free memory (load balancing). With
// SAPPolicy it inverts for HANA flavors, bin-packing memory instead —
// exactly the production posture described in Sec. 3.2 ("the default
// strategy aims to load-balance general-purpose workloads, whereas SAP
// S/4HANA workloads are explicitly bin-packed to maximize memory
// utilization").
type RAMWeigher struct {
	Mult float64
	// SAPPolicy flips the sign for HANA flavors.
	SAPPolicy bool
}

// Name implements Weigher.
func (RAMWeigher) Name() string { return "RAMWeigher" }

// Weigh implements Weigher.
func (RAMWeigher) Weigh(_ *RequestSpec, h *HostState) float64 {
	return float64(h.FreeMemMB())
}

// Multiplier implements Weigher.
func (w RAMWeigher) Multiplier(req *RequestSpec) float64 {
	m := w.Mult
	if m == 0 {
		m = 1
	}
	if w.SAPPolicy && req.Flavor().Class == vmmodel.HANA {
		return -m
	}
	return m
}

// CPUWeigher prefers hosts with more free vCPU capacity.
type CPUWeigher struct {
	Mult float64
}

// Name implements Weigher.
func (CPUWeigher) Name() string { return "CPUWeigher" }

// Weigh implements Weigher.
func (CPUWeigher) Weigh(_ *RequestSpec, h *HostState) float64 {
	return float64(h.FreeVCPUs())
}

// Multiplier implements Weigher.
func (w CPUWeigher) Multiplier(*RequestSpec) float64 {
	if w.Mult == 0 {
		return 1
	}
	return w.Mult
}

// ContentionWeigher penalizes hosts with recent CPU contention. Vanilla
// Nova has no such weigher; the paper's guidance (Sec. 7: "incorporating
// both current and historic utilization data, for example the contention
// metrics") motivates it, and the A3 ablation measures its effect.
type ContentionWeigher struct {
	Mult float64
}

// Name implements Weigher.
func (ContentionWeigher) Name() string { return "ContentionWeigher" }

// Weigh implements Weigher.
func (ContentionWeigher) Weigh(_ *RequestSpec, h *HostState) float64 {
	return -h.AvgContentionPct // less contention → higher score
}

// Multiplier implements Weigher.
func (w ContentionWeigher) Multiplier(*RequestSpec) float64 {
	if w.Mult == 0 {
		return 1
	}
	return w.Mult
}

// VMCountWeigher prefers hosts with fewer VMs; a simple anti-affinity
// pressure used in some deployments.
type VMCountWeigher struct {
	Mult float64
}

// Name implements Weigher.
func (VMCountWeigher) Name() string { return "VMCountWeigher" }

// Weigh implements Weigher.
func (VMCountWeigher) Weigh(_ *RequestSpec, h *HostState) float64 {
	return -float64(h.Alloc.VMCount)
}

// Multiplier implements Weigher.
func (w VMCountWeigher) Multiplier(*RequestSpec) float64 {
	if w.Mult == 0 {
		return 1
	}
	return w.Mult
}

// DefaultWeighers is the SAP production pipeline: RAM and CPU weighers
// with the HANA bin-packing policy.
func DefaultWeighers() []Weigher {
	return []Weigher{
		RAMWeigher{Mult: 1, SAPPolicy: true},
		CPUWeigher{Mult: 0.5},
	}
}

// scored pairs a host with its accumulated normalized weight.
type scored struct {
	h *HostState
	w float64
}

// rankBuf holds the scratch slices rank works in, so a scheduler ranking
// thousands of requests reuses three buffers instead of allocating per
// decision. The returned ranking aliases the buffer and is only valid until
// the next rank call on the same buffer.
type rankBuf struct {
	scores []scored
	raws   []float64
	out    []*HostState
}

// rank orders hosts by total normalized weight, descending. Ties break by
// building block ID for determinism.
func (b *rankBuf) rank(req *RequestSpec, hosts []*HostState, weighers []Weigher) []*HostState {
	if len(hosts) == 0 {
		return nil
	}
	b.scores = b.scores[:0]
	for _, h := range hosts {
		b.scores = append(b.scores, scored{h: h})
	}
	for _, w := range weighers {
		b.raws = b.raws[:0]
		min, max := 0.0, 0.0
		for i, h := range hosts {
			r := w.Weigh(req, h)
			b.raws = append(b.raws, r)
			if i == 0 || r < min {
				min = r
			}
			if i == 0 || r > max {
				max = r
			}
		}
		span := max - min
		mult := w.Multiplier(req)
		for i := range b.scores {
			norm := 0.0
			if span > 0 {
				norm = (b.raws[i] - min) / span
			}
			b.scores[i].w += mult * norm
		}
	}
	// Insertion sort keeps the implementation dependency-free and the
	// candidate lists are short (tens of BBs).
	scores := b.scores
	for i := 1; i < len(scores); i++ {
		for j := i; j > 0; j-- {
			a, b := scores[j-1], scores[j]
			if b.w > a.w || (b.w == a.w && b.h.BB.ID < a.h.BB.ID) {
				scores[j-1], scores[j] = b, a
			} else {
				break
			}
		}
	}
	b.out = b.out[:0]
	for _, s := range scores {
		b.out = append(b.out, s.h)
	}
	return b.out
}

// rank is the buffer-free form, used by tests and one-shot callers.
func rank(req *RequestSpec, hosts []*HostState, weighers []Weigher) []*HostState {
	var b rankBuf
	return b.rank(req, hosts, weighers)
}
