// Package placement models the OpenStack Placement API: resource-provider
// inventories and allocation records that the Nova scheduler consults before
// assigning a VM (Fig. 2, step 5).
//
// In the SAP deployment each vSphere cluster (building block) is one
// resource provider; Nova allocates against the cluster, not the individual
// hypervisor — the root cause of the intra-BB fragmentation the paper
// documents (Sec. 3.1).
package placement

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ResourceClass names follow the Placement API conventions.
type ResourceClass string

const (
	VCPU     ResourceClass = "VCPU"
	MemoryMB ResourceClass = "MEMORY_MB"
	DiskGB   ResourceClass = "DISK_GB"
)

// Inventory is the capacity of one resource class on a provider.
type Inventory struct {
	Total int64
	// AllocationRatio is the overcommit factor applied to Total when
	// admitting allocations (Placement's allocation_ratio).
	AllocationRatio float64
	// Reserved is capacity withheld from placement.
	Reserved int64
}

// Capacity is the admissible allocation: (Total - Reserved) × ratio.
func (inv Inventory) Capacity() int64 {
	usable := inv.Total - inv.Reserved
	if usable < 0 {
		usable = 0
	}
	return int64(float64(usable) * inv.AllocationRatio)
}

// Request is the resource ask of one VM, keyed by resource class.
type Request map[ResourceClass]int64

// Provider is one resource provider with inventories and usage counters.
type Provider struct {
	Name        string
	Traits      map[string]bool // e.g. "HANA", "GPU"
	inventories map[ResourceClass]Inventory
	used        map[ResourceClass]int64
}

// Inventory returns the inventory of a class (zero value when absent).
func (p *Provider) Inventory(rc ResourceClass) Inventory { return p.inventories[rc] }

// Used returns the allocated amount of a class.
func (p *Provider) Used(rc ResourceClass) int64 { return p.used[rc] }

// Free returns remaining admissible capacity of a class.
func (p *Provider) Free(rc ResourceClass) int64 {
	return p.inventories[rc].Capacity() - p.used[rc]
}

// HasTrait reports whether the provider advertises the trait.
func (p *Provider) HasTrait(trait string) bool { return p.Traits[trait] }

// fits reports whether the request fits the provider's free capacity.
func (p *Provider) fits(req Request) bool {
	for rc, amount := range req {
		if _, ok := p.inventories[rc]; !ok {
			return false
		}
		if p.Free(rc) < amount {
			return false
		}
	}
	return true
}

// Allocation records one consumer's resource hold on a provider.
type Allocation struct {
	Consumer string // VM ID
	Provider string
	Request  Request
}

// Errors returned by the service.
var (
	ErrDuplicateProvider = errors.New("placement: duplicate provider")
	ErrUnknownProvider   = errors.New("placement: unknown provider")
	ErrUnknownConsumer   = errors.New("placement: unknown consumer")
	ErrDuplicateConsumer = errors.New("placement: consumer already has an allocation")
	ErrCapacityExceeded  = errors.New("placement: insufficient capacity")
	ErrEmptyRequest      = errors.New("placement: empty request")
)

// Service is the placement database: providers and allocations. It is safe
// for concurrent use.
type Service struct {
	mu          sync.Mutex
	providers   map[string]*Provider
	allocations map[string]*Allocation
	// Operation counters (guarded by mu). Every Claim allocates an
	// allocation record, so the claim counters double as the engine
	// profiler's allocation-behavior proxy for the claim phase.
	stats Stats
}

// Stats counts placement-database operations since construction.
type Stats struct {
	// Claims is successful allocations; ClaimConflicts is claims rejected
	// for capacity or duplicate consumers (the scheduler's retry trigger).
	Claims         int64
	ClaimConflicts int64
	Moves          int64
	Releases       int64
}

// Stats returns a copy of the operation counters.
func (s *Service) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// NewService returns an empty placement service.
func NewService() *Service {
	return &Service{
		providers:   make(map[string]*Provider),
		allocations: make(map[string]*Allocation),
	}
}

// CreateProvider registers a resource provider with its inventories.
func (s *Service) CreateProvider(name string, inv map[ResourceClass]Inventory, traits ...string) (*Provider, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.providers[name]; ok {
		return nil, fmt.Errorf("%w: %s", ErrDuplicateProvider, name)
	}
	p := &Provider{
		Name:        name,
		Traits:      make(map[string]bool),
		inventories: make(map[ResourceClass]Inventory, len(inv)),
		used:        make(map[ResourceClass]int64),
	}
	for rc, i := range inv {
		if i.AllocationRatio <= 0 {
			i.AllocationRatio = 1
		}
		p.inventories[rc] = i
	}
	for _, t := range traits {
		p.Traits[t] = true
	}
	s.providers[name] = p
	return p, nil
}

// Provider looks up a provider by name.
func (s *Service) Provider(name string) (*Provider, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.providers[name]
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrUnknownProvider, name)
	}
	return p, nil
}

// Providers returns all providers sorted by name.
func (s *Service) Providers() []*Provider {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]*Provider, 0, len(s.providers))
	for _, p := range s.providers {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// UpdateInventory replaces one resource class inventory on a provider, e.g.
// when nodes enter or leave maintenance.
func (s *Service) UpdateInventory(provider string, rc ResourceClass, inv Inventory) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	p, ok := s.providers[provider]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownProvider, provider)
	}
	if inv.AllocationRatio <= 0 {
		inv.AllocationRatio = 1
	}
	p.inventories[rc] = inv
	return nil
}

// Candidates returns the names of providers that can satisfy the request,
// sorted by name. requiredTraits restricts to providers advertising every
// trait; forbiddenTraits excludes providers advertising any.
func (s *Service) Candidates(req Request, requiredTraits, forbiddenTraits []string) ([]string, error) {
	if len(req) == 0 {
		return nil, ErrEmptyRequest
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	var out []string
candidates:
	for name, p := range s.providers {
		for _, t := range requiredTraits {
			if !p.HasTrait(t) {
				continue candidates
			}
		}
		for _, t := range forbiddenTraits {
			if p.HasTrait(t) {
				continue candidates
			}
		}
		if p.fits(req) {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out, nil
}

// Claim atomically allocates the request for the consumer on the provider.
// It fails if capacity was consumed since the candidate query — the race
// Nova handles with scheduling retries. The request map is copied into the
// allocation record, so callers may reuse a scratch map across claims.
func (s *Service) Claim(consumer, provider string, req Request) error {
	if len(req) == 0 {
		return ErrEmptyRequest
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.allocations[consumer]; ok {
		s.stats.ClaimConflicts++
		return fmt.Errorf("%w: %s", ErrDuplicateConsumer, consumer)
	}
	p, ok := s.providers[provider]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownProvider, provider)
	}
	if !p.fits(req) {
		s.stats.ClaimConflicts++
		return fmt.Errorf("%w: %s on %s", ErrCapacityExceeded, consumer, provider)
	}
	stored := make(Request, len(req))
	for rc, amount := range req {
		p.used[rc] += amount
		stored[rc] = amount
	}
	s.allocations[consumer] = &Allocation{Consumer: consumer, Provider: provider, Request: stored}
	s.stats.Claims++
	return nil
}

// Move re-points the consumer's allocation to another provider atomically
// (used for cross-BB rebalancing; intra-BB DRS moves do not touch
// placement).
func (s *Service) Move(consumer, newProvider string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	alloc, ok := s.allocations[consumer]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownConsumer, consumer)
	}
	dst, ok := s.providers[newProvider]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownProvider, newProvider)
	}
	if alloc.Provider == newProvider {
		return nil
	}
	if !dst.fits(alloc.Request) {
		return fmt.Errorf("%w: move %s to %s", ErrCapacityExceeded, consumer, newProvider)
	}
	src := s.providers[alloc.Provider]
	for rc, amount := range alloc.Request {
		src.used[rc] -= amount
		dst.used[rc] += amount
	}
	alloc.Provider = newProvider
	s.stats.Moves++
	return nil
}

// Release frees the consumer's allocation.
func (s *Service) Release(consumer string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	alloc, ok := s.allocations[consumer]
	if !ok {
		return fmt.Errorf("%w: %s", ErrUnknownConsumer, consumer)
	}
	p := s.providers[alloc.Provider]
	for rc, amount := range alloc.Request {
		p.used[rc] -= amount
	}
	delete(s.allocations, consumer)
	s.stats.Releases++
	return nil
}

// AllocationOf returns the consumer's allocation, or nil.
func (s *Service) AllocationOf(consumer string) *Allocation {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.allocations[consumer]
}

// AllocationCount reports the number of live allocations.
func (s *Service) AllocationCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.allocations)
}
