package placement

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"testing/quick"
)

func newTestService(t *testing.T) *Service {
	t.Helper()
	s := NewService()
	inv := map[ResourceClass]Inventory{
		VCPU:     {Total: 100, AllocationRatio: 4},
		MemoryMB: {Total: 1 << 20, AllocationRatio: 1, Reserved: 1 << 16},
	}
	if _, err := s.CreateProvider("bb-0", inv); err != nil {
		t.Fatal(err)
	}
	if _, err := s.CreateProvider("bb-1", inv, "HANA"); err != nil {
		t.Fatal(err)
	}
	return s
}

func TestInventoryCapacity(t *testing.T) {
	inv := Inventory{Total: 100, AllocationRatio: 4, Reserved: 10}
	if got := inv.Capacity(); got != 360 {
		t.Errorf("Capacity = %d, want 360", got)
	}
	neg := Inventory{Total: 5, Reserved: 10, AllocationRatio: 2}
	if got := neg.Capacity(); got != 0 {
		t.Errorf("over-reserved capacity = %d, want 0", got)
	}
}

func TestCreateProviderDefaults(t *testing.T) {
	s := NewService()
	p, err := s.CreateProvider("x", map[ResourceClass]Inventory{VCPU: {Total: 10}})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Inventory(VCPU).AllocationRatio; got != 1 {
		t.Errorf("default allocation ratio = %v, want 1", got)
	}
	if _, err := s.CreateProvider("x", nil); !errors.Is(err, ErrDuplicateProvider) {
		t.Errorf("duplicate error = %v", err)
	}
}

func TestCandidatesAndTraits(t *testing.T) {
	s := newTestService(t)
	req := Request{VCPU: 8, MemoryMB: 32 << 10}
	all, err := s.Candidates(req, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 || all[0] != "bb-0" || all[1] != "bb-1" {
		t.Errorf("candidates = %v", all)
	}
	hana, err := s.Candidates(req, []string{"HANA"}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(hana) != 1 || hana[0] != "bb-1" {
		t.Errorf("HANA candidates = %v", hana)
	}
	general, err := s.Candidates(req, nil, []string{"HANA"})
	if err != nil {
		t.Fatal(err)
	}
	if len(general) != 1 || general[0] != "bb-0" {
		t.Errorf("general candidates = %v", general)
	}
	if _, err := s.Candidates(nil, nil, nil); !errors.Is(err, ErrEmptyRequest) {
		t.Errorf("empty request error = %v", err)
	}
	// Unknown resource class disqualifies.
	none, err := s.Candidates(Request{"PONY": 1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(none) != 0 {
		t.Errorf("unknown class candidates = %v", none)
	}
}

func TestClaimReleaseLifecycle(t *testing.T) {
	s := newTestService(t)
	req := Request{VCPU: 100, MemoryMB: 1 << 18}
	if err := s.Claim("vm-1", "bb-0", req); err != nil {
		t.Fatal(err)
	}
	p, _ := s.Provider("bb-0")
	if p.Used(VCPU) != 100 {
		t.Errorf("used vcpu = %d", p.Used(VCPU))
	}
	if got := p.Free(VCPU); got != 300 {
		t.Errorf("free vcpu = %d, want 300", got)
	}
	if s.AllocationCount() != 1 {
		t.Error("allocation not recorded")
	}
	alloc := s.AllocationOf("vm-1")
	if alloc == nil || alloc.Provider != "bb-0" {
		t.Errorf("allocation = %+v", alloc)
	}

	if err := s.Claim("vm-1", "bb-0", req); !errors.Is(err, ErrDuplicateConsumer) {
		t.Errorf("duplicate consumer error = %v", err)
	}
	if err := s.Release("vm-1"); err != nil {
		t.Fatal(err)
	}
	if p.Used(VCPU) != 0 || s.AllocationCount() != 0 {
		t.Error("release did not free resources")
	}
	if err := s.Release("vm-1"); !errors.Is(err, ErrUnknownConsumer) {
		t.Errorf("double release error = %v", err)
	}
}

func TestClaimCapacityRace(t *testing.T) {
	s := newTestService(t)
	// bb-0 has 400 admissible vCPUs; the 5th claim of 100 must fail even
	// though a stale candidate query would have returned bb-0.
	for i := 0; i < 4; i++ {
		if err := s.Claim(fmt.Sprintf("vm-%d", i), "bb-0", Request{VCPU: 100}); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Claim("vm-4", "bb-0", Request{VCPU: 100}); !errors.Is(err, ErrCapacityExceeded) {
		t.Errorf("over-capacity claim error = %v", err)
	}
}

func TestClaimErrors(t *testing.T) {
	s := newTestService(t)
	if err := s.Claim("vm", "nope", Request{VCPU: 1}); !errors.Is(err, ErrUnknownProvider) {
		t.Errorf("unknown provider error = %v", err)
	}
	if err := s.Claim("vm", "bb-0", nil); !errors.Is(err, ErrEmptyRequest) {
		t.Errorf("empty request error = %v", err)
	}
}

func TestMove(t *testing.T) {
	s := newTestService(t)
	req := Request{VCPU: 50, MemoryMB: 1 << 16}
	if err := s.Claim("vm-1", "bb-0", req); err != nil {
		t.Fatal(err)
	}
	if err := s.Move("vm-1", "bb-1"); err != nil {
		t.Fatal(err)
	}
	p0, _ := s.Provider("bb-0")
	p1, _ := s.Provider("bb-1")
	if p0.Used(VCPU) != 0 || p1.Used(VCPU) != 50 {
		t.Errorf("move did not transfer usage: %d / %d", p0.Used(VCPU), p1.Used(VCPU))
	}
	if s.AllocationOf("vm-1").Provider != "bb-1" {
		t.Error("allocation record not updated")
	}
	// Self-move is a no-op.
	if err := s.Move("vm-1", "bb-1"); err != nil {
		t.Fatal(err)
	}
	// Unknown consumer / provider.
	if err := s.Move("ghost", "bb-0"); !errors.Is(err, ErrUnknownConsumer) {
		t.Errorf("ghost move error = %v", err)
	}
	if err := s.Move("vm-1", "nope"); !errors.Is(err, ErrUnknownProvider) {
		t.Errorf("bad target error = %v", err)
	}
}

func TestMoveCapacityCheck(t *testing.T) {
	s := newTestService(t)
	if err := s.Claim("big", "bb-1", Request{VCPU: 400}); err != nil {
		t.Fatal(err)
	}
	if err := s.Claim("vm-1", "bb-0", Request{VCPU: 10}); err != nil {
		t.Fatal(err)
	}
	if err := s.Move("vm-1", "bb-1"); !errors.Is(err, ErrCapacityExceeded) {
		t.Errorf("move to full provider error = %v", err)
	}
	// Failed move must not corrupt state.
	p0, _ := s.Provider("bb-0")
	if p0.Used(VCPU) != 10 {
		t.Errorf("failed move corrupted source usage: %d", p0.Used(VCPU))
	}
}

func TestUpdateInventory(t *testing.T) {
	s := newTestService(t)
	if err := s.UpdateInventory("bb-0", VCPU, Inventory{Total: 10, AllocationRatio: 0}); err != nil {
		t.Fatal(err)
	}
	p, _ := s.Provider("bb-0")
	if got := p.Inventory(VCPU).Capacity(); got != 10 {
		t.Errorf("updated capacity = %d, want 10 (ratio defaulted to 1)", got)
	}
	if err := s.UpdateInventory("nope", VCPU, Inventory{}); !errors.Is(err, ErrUnknownProvider) {
		t.Errorf("unknown provider error = %v", err)
	}
}

func TestProvidersSorted(t *testing.T) {
	s := newTestService(t)
	ps := s.Providers()
	if len(ps) != 2 || ps[0].Name != "bb-0" || ps[1].Name != "bb-1" {
		t.Errorf("providers = %v", ps)
	}
	if _, err := s.Provider("ghost"); !errors.Is(err, ErrUnknownProvider) {
		t.Errorf("unknown lookup error = %v", err)
	}
}

// Concurrent claims must never oversubscribe capacity.
func TestConcurrentClaims(t *testing.T) {
	s := NewService()
	if _, err := s.CreateProvider("p", map[ResourceClass]Inventory{VCPU: {Total: 100, AllocationRatio: 1}}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	granted := make(chan string, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			id := fmt.Sprintf("vm-%d", i)
			if err := s.Claim(id, "p", Request{VCPU: 10}); err == nil {
				granted <- id
			}
		}(i)
	}
	wg.Wait()
	close(granted)
	n := 0
	for range granted {
		n++
	}
	if n != 10 {
		t.Errorf("granted %d claims of 10 vCPU on 100 capacity, want exactly 10", n)
	}
	p, _ := s.Provider("p")
	if p.Used(VCPU) != 100 {
		t.Errorf("used = %d, want 100", p.Used(VCPU))
	}
}

// Property: usage counters never go negative and free never exceeds
// capacity across random claim/release sequences.
func TestPropertyUsageInvariant(t *testing.T) {
	f := func(ops []bool) bool {
		s := NewService()
		if _, err := s.CreateProvider("p", map[ResourceClass]Inventory{VCPU: {Total: 50, AllocationRatio: 2}}); err != nil {
			return false
		}
		live := []string{}
		for i, claim := range ops {
			if claim {
				id := fmt.Sprintf("c-%d", i)
				if err := s.Claim(id, "p", Request{VCPU: 7}); err == nil {
					live = append(live, id)
				}
			} else if len(live) > 0 {
				if err := s.Release(live[len(live)-1]); err != nil {
					return false
				}
				live = live[:len(live)-1]
			}
			p, _ := s.Provider("p")
			if p.Used(VCPU) < 0 || p.Free(VCPU) > p.Inventory(VCPU).Capacity() {
				return false
			}
			if p.Used(VCPU) != int64(len(live))*7 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
