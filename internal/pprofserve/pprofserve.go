// Package pprofserve starts a net/http/pprof listener on its own
// address, for profiling the long-running fleet daemons (dispatchd,
// simworker) while a sweep is in flight. A dedicated mux keeps the
// profiling surface off the daemons' protocol listeners — nothing but
// /debug/pprof/ is served, and only where the operator asked for it.
package pprofserve

import (
	"net"
	"net/http"
	"net/http/pprof"
)

// Serve starts serving /debug/pprof/ at addr in the background and
// returns the bound address (useful with a ":0" port). The listener
// lives until the process exits.
func Serve(addr string) (string, error) {
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go func() { _ = http.Serve(ln, mux) }()
	return ln.Addr().String(), nil
}
