package promql

import (
	"fmt"
	"testing"

	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
)

func benchEngine(b *testing.B) *Engine {
	b.Helper()
	st := telemetry.NewStore()
	for n := 0; n < 100; n++ {
		l := telemetry.MustLabels(
			"hostsystem", fmt.Sprintf("n%03d", n),
			"cluster", fmt.Sprintf("bb-%d", n/10),
		)
		for i := 0; i < 288; i++ { // one day at 5-minute resolution
			if err := st.Append("cpu", l, sim.Time(i)*5*sim.Minute, float64((n+i)%100)); err != nil {
				b.Fatal(err)
			}
		}
	}
	return &Engine{Store: st}
}

// BenchmarkQueryInstant measures a plain selector over 100 series.
func BenchmarkQueryInstant(b *testing.B) {
	e := benchEngine(b)
	expr, err := Parse(`cpu{cluster="bb-3"}`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Eval(expr, 23*sim.Hour); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryAggregatedRange measures the composed Fig. 6-style query.
func BenchmarkQueryAggregatedRange(b *testing.B) {
	e := benchEngine(b)
	expr, err := Parse(`100 - avg by (cluster) (avg_over_time(cpu[1d]))`)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Eval(expr, 23*sim.Hour); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkParse measures query parsing alone.
func BenchmarkParse(b *testing.B) {
	const q = `quantile_over_time(0.95, vrops_hostsystem_cpu_contention_percentage{datacenter="dc-A",cluster!="bb-0"}[1d]) > 5`
	for i := 0; i < b.N; i++ {
		if _, err := Parse(q); err != nil {
			b.Fatal(err)
		}
	}
}
