package promql

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
)

// Sample is one element of an instant vector.
type Sample struct {
	Labels telemetry.Labels
	Value  float64
}

// Vector is the result of an instant query.
type Vector []Sample

// Engine evaluates parsed expressions against any telemetry Querier
// (typically the sharded *telemetry.Store, whose Select hands back
// immutable snapshots served from the postings index).
type Engine struct {
	Store telemetry.Querier
}

// Query parses and evaluates in one step.
func (e *Engine) Query(input string, at sim.Time) (Vector, error) {
	expr, err := Parse(input)
	if err != nil {
		return nil, err
	}
	return e.Eval(expr, at)
}

// Eval evaluates the expression at an instant. Scalars evaluate to a
// single unlabeled sample.
func (e *Engine) Eval(expr Expr, at sim.Time) (Vector, error) {
	switch n := expr.(type) {
	case *NumberLit:
		return Vector{{Value: n.Value}}, nil
	case *VectorSelector:
		return e.evalSelector(n, at), nil
	case *RangeCall:
		return e.evalRangeCall(n, at)
	case *Aggregate:
		return e.evalAggregate(n, at)
	case *BinaryOp:
		return e.evalBinary(n, at)
	default:
		return nil, fmt.Errorf("promql: unknown expression %T", expr)
	}
}

// selectSeries applies equality matchers via the store and inequality
// matchers post-hoc.
func (e *Engine) selectSeries(sel *VectorSelector) []*telemetry.Series {
	eq, neq := matchersOf(sel)
	series := e.Store.Select(sel.Metric, eq...)
	if len(neq) == 0 {
		return series
	}
	out := series[:0:0]
	for _, s := range series {
		keep := true
		for _, m := range neq {
			if s.Labels.Get(m.Name) == m.Value {
				keep = false
				break
			}
		}
		if keep {
			out = append(out, s)
		}
	}
	return out
}

func (e *Engine) evalSelector(sel *VectorSelector, at sim.Time) Vector {
	var out Vector
	for _, s := range e.selectSeries(sel) {
		if v, ok := s.At(at); ok {
			out = append(out, Sample{Labels: s.Labels, Value: v})
		}
	}
	return out
}

func (e *Engine) evalRangeCall(call *RangeCall, at sim.Time) (Vector, error) {
	if call.Range <= 0 {
		return nil, fmt.Errorf("promql: non-positive range")
	}
	from := at - call.Range
	if from < 0 {
		from = 0
	}
	var out Vector
	for _, s := range e.selectSeries(call.Selector) {
		win := s.Range(from, at+1) // inclusive right edge, Prometheus-style
		if len(win) == 0 {
			continue
		}
		var v float64
		switch call.Func {
		case "avg_over_time":
			v = telemetry.Mean(win)
		case "max_over_time":
			v = telemetry.Max(win)
		case "min_over_time":
			v = telemetry.Min(win)
		case "sum_over_time":
			v = 0
			for _, smp := range win {
				v += smp.V
			}
		case "count_over_time":
			v = float64(len(win))
		case "quantile_over_time":
			v = telemetry.Percentile(win, call.Param*100)
		case "rate", "delta":
			if len(win) < 2 {
				continue
			}
			first, last := win[0], win[len(win)-1]
			span := (last.T - first.T).Seconds()
			if span <= 0 {
				continue
			}
			if call.Func == "rate" {
				v = (last.V - first.V) / span
			} else {
				v = last.V - first.V
			}
		default:
			return nil, fmt.Errorf("promql: unknown function %s", call.Func)
		}
		out = append(out, Sample{Labels: s.Labels, Value: v})
	}
	return out, nil
}

func (e *Engine) evalAggregate(agg *Aggregate, at sim.Time) (Vector, error) {
	inner, err := e.Eval(agg.Expr, at)
	if err != nil {
		return nil, err
	}
	type bucket struct {
		labels telemetry.Labels
		values []float64
	}
	buckets := map[string]*bucket{}
	var order []string
	for _, s := range inner {
		key, labels := groupKey(s.Labels, agg.By, agg.Without)
		b, ok := buckets[key]
		if !ok {
			b = &bucket{labels: labels}
			buckets[key] = b
			order = append(order, key)
		}
		b.values = append(b.values, s.Value)
	}
	sort.Strings(order)
	out := make(Vector, 0, len(order))
	for _, key := range order {
		b := buckets[key]
		var v float64
		switch agg.Op {
		case "sum":
			for _, x := range b.values {
				v += x
			}
		case "avg":
			for _, x := range b.values {
				v += x
			}
			v /= float64(len(b.values))
		case "min":
			v = b.values[0]
			for _, x := range b.values[1:] {
				v = math.Min(v, x)
			}
		case "max":
			v = b.values[0]
			for _, x := range b.values[1:] {
				v = math.Max(v, x)
			}
		case "count":
			v = float64(len(b.values))
		default:
			return nil, fmt.Errorf("promql: unknown aggregation %s", agg.Op)
		}
		out = append(out, Sample{Labels: b.labels, Value: v})
	}
	return out, nil
}

// groupKey derives the grouping key and surviving label set.
func groupKey(l telemetry.Labels, by []string, without bool) (string, telemetry.Labels) {
	keep := map[string]bool{}
	for _, name := range by {
		keep[name] = true
	}
	kv := l.Pairs()
	var pairs []string
	for i := 0; i < len(kv); i += 2 {
		selected := keep[kv[i]]
		if without {
			selected = !selected
		}
		if selected {
			pairs = append(pairs, kv[i], kv[i+1])
		}
	}
	labels, _ := telemetry.NewLabels(pairs...)
	return labels.String(), labels
}

func (e *Engine) evalBinary(bin *BinaryOp, at sim.Time) (Vector, error) {
	lhs, err := e.Eval(bin.LHS, at)
	if err != nil {
		return nil, err
	}
	rhs, err := e.Eval(bin.RHS, at)
	if err != nil {
		return nil, err
	}
	lScalar := isScalar(bin.LHS, lhs)
	rScalar := isScalar(bin.RHS, rhs)
	switch {
	case lScalar && rScalar:
		v, keep := apply(bin.Op, lhs[0].Value, rhs[0].Value, true)
		if !keep {
			return Vector{}, nil
		}
		return Vector{{Value: v}}, nil
	case rScalar:
		return combine(lhs, rhs[0].Value, bin.Op, false), nil
	case lScalar:
		return combine(rhs, lhs[0].Value, bin.Op, true), nil
	default:
		return nil, fmt.Errorf("promql: vector-to-vector binary operations are not supported")
	}
}

// isScalar reports whether the expression produced a scalar.
func isScalar(expr Expr, v Vector) bool {
	if _, ok := expr.(*NumberLit); ok {
		return true
	}
	if b, ok := expr.(*BinaryOp); ok {
		// A binary over scalars stays scalar.
		return isScalar(b.LHS, nil) && isScalar(b.RHS, nil)
	}
	return false
}

// combine applies op between each vector element and the scalar. flipped
// means the scalar was the left operand. Comparisons filter, Prometheus
// style.
func combine(vec Vector, scalar float64, op string, flipped bool) Vector {
	out := make(Vector, 0, len(vec))
	for _, s := range vec {
		a, b := s.Value, scalar
		if flipped {
			a, b = scalar, s.Value
		}
		v, keep := apply(op, a, b, false)
		if !keep {
			continue
		}
		if isComparison(op) {
			v = s.Value // comparison keeps the original sample value
		}
		out = append(out, Sample{Labels: s.Labels, Value: v})
	}
	return out
}

// apply computes a binary op. For comparisons between scalars the result
// is 1/0 (bool modifier semantics); for vector comparisons the caller
// filters using keep.
func apply(op string, a, b float64, scalarCmp bool) (float64, bool) {
	switch op {
	case "+":
		return a + b, true
	case "-":
		return a - b, true
	case "*":
		return a * b, true
	case "/":
		return a / b, true
	}
	var truth bool
	switch op {
	case ">":
		truth = a > b
	case "<":
		truth = a < b
	case ">=":
		truth = a >= b
	case "<=":
		truth = a <= b
	case "==":
		truth = a == b
	case "!=":
		truth = a != b
	}
	if scalarCmp {
		if truth {
			return 1, true
		}
		return 0, true
	}
	return a, truth
}

// Format renders a vector for display, one sample per line.
func Format(v Vector) string {
	var b strings.Builder
	for _, s := range v {
		if s.Labels.Len() > 0 {
			b.WriteString(s.Labels.String())
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%g\n", s.Value)
	}
	return b.String()
}
