package promql

import (
	"encoding/json"
	"net/http"
	"strconv"

	"sapsim/internal/sim"
)

// queryResponse mirrors the Prometheus /api/v1/query response shape for the
// instant-vector case.
type queryResponse struct {
	Status string    `json:"status"`
	Data   queryData `json:"data"`
	Error  string    `json:"error,omitempty"`
}

type queryData struct {
	ResultType string        `json:"resultType"`
	Result     []queryResult `json:"result"`
}

type queryResult struct {
	Metric map[string]string `json:"metric"`
	// Value is [unix-ish seconds, value-string], Prometheus wire format.
	Value [2]any `json:"value"`
}

// Handler serves instant queries: GET /api/v1/query?query=...&time=<secs>.
// Time is simulation seconds since the epoch (default: latest possible).
func (e *Engine) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("query")
		if q == "" {
			writeJSON(w, http.StatusBadRequest, queryResponse{Status: "error", Error: "missing query parameter"})
			return
		}
		at := sim.Time(1<<62 - 1) // "now": after every sample
		if ts := r.URL.Query().Get("time"); ts != "" {
			secs, err := strconv.ParseFloat(ts, 64)
			if err != nil {
				writeJSON(w, http.StatusBadRequest, queryResponse{Status: "error", Error: "bad time parameter"})
				return
			}
			at = sim.Time(secs * float64(sim.Second))
		}
		vec, err := e.Query(q, at)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, queryResponse{Status: "error", Error: err.Error()})
			return
		}
		resp := queryResponse{Status: "success", Data: queryData{ResultType: "vector"}}
		for _, s := range vec {
			metric := map[string]string{}
			for _, name := range s.Labels.Names() {
				metric[name] = s.Labels.Get(name)
			}
			resp.Data.Result = append(resp.Data.Result, queryResult{
				Metric: metric,
				Value:  [2]any{at.Seconds(), strconv.FormatFloat(s.Value, 'g', -1, 64)},
			})
		}
		writeJSON(w, http.StatusOK, resp)
	})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
