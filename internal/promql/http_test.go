package promql

import (
	"encoding/json"
	"net/http/httptest"
	"net/url"
	"testing"

	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
)

func queryHTTP(t *testing.T, srv *httptest.Server, q, at string) queryResponse {
	t.Helper()
	u := srv.URL + "/api/v1/query?query=" + url.QueryEscape(q)
	if at != "" {
		u += "&time=" + at
	}
	resp, err := srv.Client().Get(u)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var out queryResponse
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out
}

func TestHTTPQuery(t *testing.T) {
	e := testEngine(t)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	out := queryHTTP(t, srv, `cpu{hostsystem="n1"}`, "0")
	if out.Status != "success" {
		t.Fatalf("status = %s (%s)", out.Status, out.Error)
	}
	if len(out.Data.Result) != 1 {
		t.Fatalf("results = %d", len(out.Data.Result))
	}
	r := out.Data.Result[0]
	if r.Metric["hostsystem"] != "n1" || r.Metric["cluster"] != "bb-0" {
		t.Errorf("metric labels = %v", r.Metric)
	}
	if r.Value[1] != "10" {
		t.Errorf("value = %v", r.Value[1])
	}
}

func TestHTTPQueryDefaultTimeIsLatest(t *testing.T) {
	e := testEngine(t)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	out := queryHTTP(t, srv, `cpu{hostsystem="n1"}`, "")
	if out.Status != "success" || len(out.Data.Result) != 1 {
		t.Fatalf("out = %+v", out)
	}
	if out.Data.Result[0].Value[1] != "33" { // last sample 10+23
		t.Errorf("latest value = %v", out.Data.Result[0].Value[1])
	}
}

func TestHTTPQueryAggregation(t *testing.T) {
	e := testEngine(t)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	out := queryHTTP(t, srv, `avg by (cluster) (cpu)`, "0")
	if len(out.Data.Result) != 2 {
		t.Fatalf("groups = %d", len(out.Data.Result))
	}
}

func TestHTTPQueryErrors(t *testing.T) {
	e := testEngine(t)
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()

	out := queryHTTP(t, srv, `cpu{`, "0")
	if out.Status != "error" || out.Error == "" {
		t.Errorf("malformed query response = %+v", out)
	}
	// Missing query parameter.
	resp, err := srv.Client().Get(srv.URL + "/api/v1/query")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("missing query status = %d", resp.StatusCode)
	}
	// Bad time.
	out = queryHTTP(t, srv, `cpu`, "notatime")
	if out.Status != "error" {
		t.Errorf("bad time response = %+v", out)
	}
}

func TestHTTPQueryEmptyVector(t *testing.T) {
	st := telemetry.NewStore()
	if err := st.Append("m", telemetry.MustLabels("a", "b"), sim.Hour, 1); err != nil {
		t.Fatal(err)
	}
	e := &Engine{Store: st}
	srv := httptest.NewServer(e.Handler())
	defer srv.Close()
	out := queryHTTP(t, srv, `nope`, "0")
	if out.Status != "success" || len(out.Data.Result) != 0 {
		t.Errorf("empty vector response = %+v", out)
	}
}
