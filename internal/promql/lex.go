// Package promql implements the subset of the Prometheus query language
// needed to reproduce the paper's analyses directly against the telemetry
// store: instant vector selectors, *_over_time range functions,
// aggregation operators with by/without grouping, scalar arithmetic, and
// comparison filtering.
//
// Examples the analysis uses:
//
//	avg_over_time(vrops_hostsystem_cpu_contention_percentage{datacenter="dc-A"}[1d])
//	max by (cluster) (vrops_hostsystem_cpu_ready_milliseconds) / 1000
//	100 - avg_over_time(vrops_hostsystem_cpu_core_utilization_percentage[1d])
//	quantile_over_time(0.95, vrops_hostsystem_cpu_contention_percentage[1d]) > 5
package promql

import (
	"fmt"
	"strings"
	"unicode"
)

// tokenKind enumerates lexer token types.
type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokNumber
	tokString
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokComma
	tokOp // + - * / and comparisons
)

type token struct {
	kind tokenKind
	text string
	pos  int
}

// lexer tokenizes a query string.
type lexer struct {
	input string
	pos   int
}

func (l *lexer) errorf(pos int, format string, args ...any) error {
	return fmt.Errorf("promql: position %d: %s", pos, fmt.Sprintf(format, args...))
}

// next returns the next token.
func (l *lexer) next() (token, error) {
	for l.pos < len(l.input) && unicode.IsSpace(rune(l.input[l.pos])) {
		l.pos++
	}
	if l.pos >= len(l.input) {
		return token{kind: tokEOF, pos: l.pos}, nil
	}
	start := l.pos
	c := l.input[l.pos]
	switch {
	case c == '(':
		l.pos++
		return token{tokLParen, "(", start}, nil
	case c == ')':
		l.pos++
		return token{tokRParen, ")", start}, nil
	case c == '{':
		l.pos++
		return token{tokLBrace, "{", start}, nil
	case c == '}':
		l.pos++
		return token{tokRBrace, "}", start}, nil
	case c == '[':
		l.pos++
		return token{tokLBracket, "[", start}, nil
	case c == ']':
		l.pos++
		return token{tokRBracket, "]", start}, nil
	case c == ',':
		l.pos++
		return token{tokComma, ",", start}, nil
	case c == '"':
		return l.lexString()
	case c == '+' || c == '*' || c == '/':
		l.pos++
		return token{tokOp, string(c), start}, nil
	case c == '-':
		l.pos++
		return token{tokOp, "-", start}, nil
	case c == '>' || c == '<':
		l.pos++
		if l.pos < len(l.input) && l.input[l.pos] == '=' {
			l.pos++
			return token{tokOp, string(c) + "=", start}, nil
		}
		return token{tokOp, string(c), start}, nil
	case c == '=':
		l.pos++
		if l.pos < len(l.input) && l.input[l.pos] == '=' {
			l.pos++
			return token{tokOp, "==", start}, nil
		}
		// Bare '=' only appears inside label matchers; the parser
		// handles it there.
		return token{tokOp, "=", start}, nil
	case c == '!':
		l.pos++
		if l.pos < len(l.input) && l.input[l.pos] == '=' {
			l.pos++
			return token{tokOp, "!=", start}, nil
		}
		return token{}, l.errorf(start, "unexpected '!'")
	case isDigit(c) || c == '.':
		return l.lexNumber()
	case isIdentStart(c):
		return l.lexIdent()
	default:
		return token{}, l.errorf(start, "unexpected character %q", c)
	}
}

func (l *lexer) lexString() (token, error) {
	start := l.pos
	l.pos++ // opening quote
	var b strings.Builder
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == '\\' && l.pos+1 < len(l.input) {
			b.WriteByte(l.input[l.pos+1])
			l.pos += 2
			continue
		}
		if c == '"' {
			l.pos++
			return token{tokString, b.String(), start}, nil
		}
		b.WriteByte(c)
		l.pos++
	}
	return token{}, l.errorf(start, "unterminated string")
}

func (l *lexer) lexNumber() (token, error) {
	start := l.pos
	seenDot := false
	for l.pos < len(l.input) {
		c := l.input[l.pos]
		if c == '.' {
			if seenDot {
				break
			}
			seenDot = true
			l.pos++
			continue
		}
		if c == 'e' || c == 'E' {
			l.pos++
			if l.pos < len(l.input) && (l.input[l.pos] == '+' || l.input[l.pos] == '-') {
				l.pos++
			}
			continue
		}
		if !isDigit(c) {
			break
		}
		l.pos++
	}
	return token{tokNumber, l.input[start:l.pos], start}, nil
}

func (l *lexer) lexIdent() (token, error) {
	start := l.pos
	for l.pos < len(l.input) && isIdentPart(l.input[l.pos]) {
		l.pos++
	}
	return token{tokIdent, l.input[start:l.pos], start}, nil
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || c == ':' || unicode.IsLetter(rune(c)) }
func isIdentPart(c byte) bool  { return isIdentStart(c) || isDigit(c) }
