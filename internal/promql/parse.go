package promql

import (
	"fmt"
	"strconv"
	"time"

	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
)

// Expr is a parsed query expression.
type Expr interface {
	exprNode()
}

// NumberLit is a scalar constant.
type NumberLit struct {
	Value float64
}

// VectorSelector selects series by metric name and label matchers.
type VectorSelector struct {
	Metric   string
	Matchers []LabelMatcher
}

// LabelMatcher matches one label. Op is "=" or "!=".
type LabelMatcher struct {
	Name  string
	Op    string
	Value string
}

// RangeCall applies an *_over_time function (or rate) to a range selector.
type RangeCall struct {
	Func     string
	Param    float64 // quantile for quantile_over_time
	Selector *VectorSelector
	Range    sim.Time
}

// Aggregate applies sum/avg/min/max/count with optional grouping.
type Aggregate struct {
	Op      string
	By      []string // grouping labels (By semantics)
	Without bool     // true → By lists excluded labels
	Expr    Expr
}

// BinaryOp is arithmetic or comparison between an expression and a scalar
// (either side), or between two scalars.
type BinaryOp struct {
	Op  string
	LHS Expr
	RHS Expr
}

func (*NumberLit) exprNode()      {}
func (*VectorSelector) exprNode() {}
func (*RangeCall) exprNode()      {}
func (*Aggregate) exprNode()      {}
func (*BinaryOp) exprNode()       {}

var rangeFuncs = map[string]bool{
	"avg_over_time":      true,
	"max_over_time":      true,
	"min_over_time":      true,
	"sum_over_time":      true,
	"count_over_time":    true,
	"quantile_over_time": true,
	"rate":               true,
	"delta":              true,
}

var aggOps = map[string]bool{
	"sum": true, "avg": true, "min": true, "max": true, "count": true,
}

// parser is a recursive-descent parser with one token of lookahead.
type parser struct {
	lex  *lexer
	tok  token
	prev token
}

// Parse parses a query.
func Parse(input string) (Expr, error) {
	p := &parser{lex: &lexer{input: input}}
	if err := p.advance(); err != nil {
		return nil, err
	}
	expr, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if p.tok.kind != tokEOF {
		return nil, fmt.Errorf("promql: trailing input at position %d: %q", p.tok.pos, p.tok.text)
	}
	return expr, nil
}

func (p *parser) advance() error {
	p.prev = p.tok
	tok, err := p.lex.next()
	if err != nil {
		return err
	}
	p.tok = tok
	return nil
}

func (p *parser) expect(kind tokenKind, what string) error {
	if p.tok.kind != kind {
		return fmt.Errorf("promql: position %d: expected %s, got %q", p.tok.pos, what, p.tok.text)
	}
	return p.advance()
}

// parseExpr handles comparison precedence (lowest).
func (p *parser) parseExpr() (Expr, error) {
	lhs, err := p.parseArith()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && isComparison(p.tok.text) {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseArith()
		if err != nil {
			return nil, err
		}
		lhs = &BinaryOp{Op: op, LHS: lhs, RHS: rhs}
	}
	return lhs, nil
}

// parseArith handles + and -.
func (p *parser) parseArith() (Expr, error) {
	lhs, err := p.parseTerm()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "+" || p.tok.text == "-") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parseTerm()
		if err != nil {
			return nil, err
		}
		lhs = &BinaryOp{Op: op, LHS: lhs, RHS: rhs}
	}
	return lhs, nil
}

// parseTerm handles * and /.
func (p *parser) parseTerm() (Expr, error) {
	lhs, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.tok.kind == tokOp && (p.tok.text == "*" || p.tok.text == "/") {
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		rhs, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		lhs = &BinaryOp{Op: op, LHS: lhs, RHS: rhs}
	}
	return lhs, nil
}

func (p *parser) parsePrimary() (Expr, error) {
	switch {
	case p.tok.kind == tokNumber:
		v, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, fmt.Errorf("promql: bad number %q", p.tok.text)
		}
		if err := p.advance(); err != nil {
			return nil, err
		}
		return &NumberLit{Value: v}, nil

	case p.tok.kind == tokOp && p.tok.text == "-":
		// Unary minus: -expr = 0 - expr.
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &BinaryOp{Op: "-", LHS: &NumberLit{Value: 0}, RHS: inner}, nil

	case p.tok.kind == tokLParen:
		if err := p.advance(); err != nil {
			return nil, err
		}
		inner, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
		return inner, nil

	case p.tok.kind == tokIdent && rangeFuncs[p.tok.text]:
		return p.parseRangeCall()

	case p.tok.kind == tokIdent && aggOps[p.tok.text]:
		return p.parseAggregate()

	case p.tok.kind == tokIdent:
		return p.parseSelector()

	default:
		return nil, fmt.Errorf("promql: position %d: unexpected %q", p.tok.pos, p.tok.text)
	}
}

func (p *parser) parseRangeCall() (Expr, error) {
	name := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	if err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	call := &RangeCall{Func: name}
	if name == "quantile_over_time" {
		if p.tok.kind != tokNumber {
			return nil, fmt.Errorf("promql: quantile_over_time needs a quantile argument")
		}
		q, err := strconv.ParseFloat(p.tok.text, 64)
		if err != nil {
			return nil, err
		}
		call.Param = q
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tokComma, ","); err != nil {
			return nil, err
		}
	}
	sel, err := p.parseSelector()
	if err != nil {
		return nil, err
	}
	vs := sel.(*VectorSelector)
	if err := p.expect(tokLBracket, "["); err != nil {
		return nil, err
	}
	if p.tok.kind != tokNumber && p.tok.kind != tokIdent {
		return nil, fmt.Errorf("promql: position %d: expected duration", p.tok.pos)
	}
	durText := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	// The lexer splits "24h" into number "24" and ident "h"; rejoin.
	if p.tok.kind == tokIdent {
		durText += p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
	}
	dur, err := parseDuration(durText)
	if err != nil {
		return nil, err
	}
	if dur <= 0 {
		return nil, fmt.Errorf("promql: non-positive range %q", durText)
	}
	if err := p.expect(tokRBracket, "]"); err != nil {
		return nil, err
	}
	if err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	call.Selector = vs
	call.Range = dur
	return call, nil
}

func (p *parser) parseAggregate() (Expr, error) {
	op := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	agg := &Aggregate{Op: op}
	// Optional by/without clause before the parenthesized expression.
	if p.tok.kind == tokIdent && (p.tok.text == "by" || p.tok.text == "without") {
		agg.Without = p.tok.text == "without"
		if err := p.advance(); err != nil {
			return nil, err
		}
		if err := p.expect(tokLParen, "("); err != nil {
			return nil, err
		}
		for p.tok.kind == tokIdent {
			agg.By = append(agg.By, p.tok.text)
			if err := p.advance(); err != nil {
				return nil, err
			}
			if p.tok.kind == tokComma {
				if err := p.advance(); err != nil {
					return nil, err
				}
			}
		}
		if err := p.expect(tokRParen, ")"); err != nil {
			return nil, err
		}
	}
	if err := p.expect(tokLParen, "("); err != nil {
		return nil, err
	}
	inner, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if err := p.expect(tokRParen, ")"); err != nil {
		return nil, err
	}
	agg.Expr = inner
	return agg, nil
}

func (p *parser) parseSelector() (Expr, error) {
	metric := p.tok.text
	if err := p.advance(); err != nil {
		return nil, err
	}
	sel := &VectorSelector{Metric: metric}
	if p.tok.kind != tokLBrace {
		return sel, nil
	}
	if err := p.advance(); err != nil {
		return nil, err
	}
	for p.tok.kind == tokIdent {
		name := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokOp || (p.tok.text != "=" && p.tok.text != "!=") {
			return nil, fmt.Errorf("promql: position %d: expected = or != in matcher", p.tok.pos)
		}
		op := p.tok.text
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind != tokString {
			return nil, fmt.Errorf("promql: position %d: expected quoted label value", p.tok.pos)
		}
		sel.Matchers = append(sel.Matchers, LabelMatcher{Name: name, Op: op, Value: p.tok.text})
		if err := p.advance(); err != nil {
			return nil, err
		}
		if p.tok.kind == tokComma {
			if err := p.advance(); err != nil {
				return nil, err
			}
		}
	}
	if err := p.expect(tokRBrace, "}"); err != nil {
		return nil, err
	}
	return sel, nil
}

func isComparison(op string) bool {
	switch op {
	case ">", "<", ">=", "<=", "==", "!=":
		return true
	}
	return false
}

// parseDuration accepts Prometheus-style durations (30s, 5m, 1h, 2d, 1w)
// and falls back to Go syntax.
func parseDuration(s string) (sim.Time, error) {
	if len(s) >= 2 {
		unit := s[len(s)-1]
		if n, err := strconv.ParseFloat(s[:len(s)-1], 64); err == nil {
			switch unit {
			case 's':
				return sim.Time(n * float64(sim.Second)), nil
			case 'm':
				return sim.Time(n * float64(sim.Minute)), nil
			case 'h':
				return sim.Time(n * float64(sim.Hour)), nil
			case 'd':
				return sim.Time(n * float64(sim.Day)), nil
			case 'w':
				return sim.Time(n * float64(sim.Week)), nil
			}
		}
	}
	d, err := time.ParseDuration(s)
	if err != nil {
		return 0, fmt.Errorf("promql: bad duration %q", s)
	}
	return sim.Time(d), nil
}

// matchersOf converts selector matchers to telemetry matchers, separating
// negative matchers (telemetry.Select only supports equality; inequality is
// applied post-selection by the evaluator).
func matchersOf(sel *VectorSelector) (eq []telemetry.Matcher, neq []LabelMatcher) {
	for _, m := range sel.Matchers {
		if m.Op == "=" {
			eq = append(eq, telemetry.Matcher{Name: m.Name, Value: m.Value})
		} else {
			neq = append(neq, m)
		}
	}
	return eq, neq
}
