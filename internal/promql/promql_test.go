package promql

import (
	"math"
	"strings"
	"testing"

	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
)

func testEngine(t *testing.T) *Engine {
	t.Helper()
	st := telemetry.NewStore()
	series := []struct {
		node, cluster string
		base          float64
	}{
		{"n1", "bb-0", 10},
		{"n2", "bb-0", 20},
		{"n3", "bb-1", 60},
	}
	for _, s := range series {
		l := telemetry.MustLabels("hostsystem", s.node, "cluster", s.cluster)
		for i := 0; i < 24; i++ {
			ts := sim.Time(i) * sim.Hour
			if err := st.Append("cpu", l, ts, s.base+float64(i)); err != nil {
				t.Fatal(err)
			}
		}
	}
	return &Engine{Store: st}
}

func mustQuery(t *testing.T, e *Engine, q string, at sim.Time) Vector {
	t.Helper()
	v, err := e.Query(q, at)
	if err != nil {
		t.Fatalf("Query(%q): %v", q, err)
	}
	return v
}

func TestSelector(t *testing.T) {
	e := testEngine(t)
	v := mustQuery(t, e, `cpu`, 23*sim.Hour)
	if len(v) != 3 {
		t.Fatalf("samples = %d, want 3", len(v))
	}
	v = mustQuery(t, e, `cpu{hostsystem="n1"}`, 5*sim.Hour)
	if len(v) != 1 || v[0].Value != 15 {
		t.Errorf("n1@5h = %v", v)
	}
	v = mustQuery(t, e, `cpu{cluster="bb-0",hostsystem!="n1"}`, 0)
	if len(v) != 1 || v[0].Value != 20 {
		t.Errorf("negative matcher = %v", v)
	}
	if v := mustQuery(t, e, `cpu{cluster="nope"}`, 0); len(v) != 0 {
		t.Errorf("unmatched selector = %v", v)
	}
}

func TestInstantSemantics(t *testing.T) {
	e := testEngine(t)
	// At 5h30m the latest sample is the 5h one.
	v := mustQuery(t, e, `cpu{hostsystem="n1"}`, 5*sim.Hour+30*sim.Minute)
	if len(v) != 1 || v[0].Value != 15 {
		t.Errorf("staleness lookup = %v", v)
	}
	// Before the first sample: empty.
	if v := mustQuery(t, e, `cpu{hostsystem="n1"}`, -sim.Hour); len(v) != 0 {
		t.Errorf("pre-series query = %v", v)
	}
}

func TestRangeFunctions(t *testing.T) {
	e := testEngine(t)
	at := 23 * sim.Hour
	cases := []struct {
		q    string
		want float64
	}{
		{`avg_over_time(cpu{hostsystem="n1"}[24h])`, 21.5}, // mean of 10..33
		{`max_over_time(cpu{hostsystem="n1"}[24h])`, 33},
		{`min_over_time(cpu{hostsystem="n1"}[24h])`, 10},
		{`sum_over_time(cpu{hostsystem="n1"}[2h])`, 31 + 32 + 33},
		{`count_over_time(cpu{hostsystem="n1"}[24h])`, 24},
		{`delta(cpu{hostsystem="n1"}[24h])`, 23},
	}
	for _, c := range cases {
		v := mustQuery(t, e, c.q, at)
		if len(v) != 1 {
			t.Errorf("%s: %d samples", c.q, len(v))
			continue
		}
		if math.Abs(v[0].Value-c.want) > 1e-9 {
			t.Errorf("%s = %v, want %v", c.q, v[0].Value, c.want)
		}
	}
}

func TestRate(t *testing.T) {
	e := testEngine(t)
	// n1 rises 1 per hour → rate = 1/3600 per second.
	v := mustQuery(t, e, `rate(cpu{hostsystem="n1"}[24h])`, 23*sim.Hour)
	if len(v) != 1 || math.Abs(v[0].Value-1.0/3600) > 1e-12 {
		t.Errorf("rate = %v", v)
	}
}

func TestQuantileOverTime(t *testing.T) {
	e := testEngine(t)
	v := mustQuery(t, e, `quantile_over_time(0.95, cpu{hostsystem="n3"}[24h])`, 23*sim.Hour)
	if len(v) != 1 {
		t.Fatalf("samples = %d", len(v))
	}
	// n3: 60..83; p95 ≈ 81.85.
	if v[0].Value < 81 || v[0].Value > 83 {
		t.Errorf("p95 = %v", v[0].Value)
	}
}

func TestPromDurations(t *testing.T) {
	e := testEngine(t)
	for _, q := range []string{
		`count_over_time(cpu{hostsystem="n1"}[1d])`,
		`count_over_time(cpu{hostsystem="n1"}[1440m])`,
		`count_over_time(cpu{hostsystem="n1"}[86400s])`,
	} {
		v := mustQuery(t, e, q, 23*sim.Hour)
		if len(v) != 1 || v[0].Value != 24 {
			t.Errorf("%s = %v", q, v)
		}
	}
}

func TestAggregations(t *testing.T) {
	e := testEngine(t)
	at := sim.Time(0) // values: n1=10 n2=20 n3=60
	cases := []struct {
		q    string
		want float64
	}{
		{`sum(cpu)`, 90},
		{`avg(cpu)`, 30},
		{`min(cpu)`, 10},
		{`max(cpu)`, 60},
		{`count(cpu)`, 3},
	}
	for _, c := range cases {
		v := mustQuery(t, e, c.q, at)
		if len(v) != 1 || v[0].Value != c.want {
			t.Errorf("%s = %v, want %v", c.q, v, c.want)
		}
		if v[0].Labels.Len() != 0 {
			t.Errorf("%s kept labels: %v", c.q, v[0].Labels)
		}
	}
}

func TestAggregationBy(t *testing.T) {
	e := testEngine(t)
	v := mustQuery(t, e, `avg by (cluster) (cpu)`, 0)
	if len(v) != 2 {
		t.Fatalf("groups = %d, want 2", len(v))
	}
	got := map[string]float64{}
	for _, s := range v {
		got[s.Labels.Get("cluster")] = s.Value
	}
	if got["bb-0"] != 15 || got["bb-1"] != 60 {
		t.Errorf("by-cluster = %v", got)
	}
}

func TestAggregationWithout(t *testing.T) {
	e := testEngine(t)
	v := mustQuery(t, e, `max without (hostsystem) (cpu)`, 0)
	if len(v) != 2 {
		t.Fatalf("groups = %d, want 2", len(v))
	}
	for _, s := range v {
		if s.Labels.Get("hostsystem") != "" {
			t.Error("hostsystem label survived without()")
		}
		if s.Labels.Get("cluster") == "" {
			t.Error("cluster label dropped by without()")
		}
	}
}

func TestArithmetic(t *testing.T) {
	e := testEngine(t)
	v := mustQuery(t, e, `cpu{hostsystem="n1"} * 2 + 5`, 0)
	if len(v) != 1 || v[0].Value != 25 {
		t.Errorf("arith = %v", v)
	}
	v = mustQuery(t, e, `100 - cpu{hostsystem="n3"}`, 0)
	if len(v) != 1 || v[0].Value != 40 {
		t.Errorf("flipped sub = %v", v)
	}
	v = mustQuery(t, e, `-cpu{hostsystem="n1"}`, 0)
	if len(v) != 1 || v[0].Value != -10 {
		t.Errorf("unary minus = %v", v)
	}
}

func TestVectorVectorRejected(t *testing.T) {
	e := testEngine(t)
	if _, err := e.Query(`cpu + cpu`, 0); err == nil {
		t.Error("vector+vector accepted")
	}
}

func TestComparisonFilters(t *testing.T) {
	e := testEngine(t)
	v := mustQuery(t, e, `cpu > 15`, 0)
	if len(v) != 2 {
		t.Fatalf("filtered = %v", v)
	}
	for _, s := range v {
		if s.Value <= 15 {
			t.Errorf("sample %v below threshold survived", s.Value)
		}
	}
	if v := mustQuery(t, e, `cpu >= 60`, 0); len(v) != 1 || v[0].Value != 60 {
		t.Errorf(">= filter = %v", v)
	}
	if v := mustQuery(t, e, `cpu < 15`, 0); len(v) != 1 {
		t.Errorf("< filter = %v", v)
	}
	// Scalar comparison yields 1/0.
	if v := mustQuery(t, e, `3 > 2`, 0); len(v) != 1 || v[0].Value != 1 {
		t.Errorf("scalar cmp = %v", v)
	}
	if v := mustQuery(t, e, `2 > 3`, 0); len(v) != 1 || v[0].Value != 0 {
		t.Errorf("scalar cmp false = %v", v)
	}
}

func TestOperatorPrecedence(t *testing.T) {
	e := testEngine(t)
	// 2 + 3 * 4 = 14, not 20.
	if v := mustQuery(t, e, `2 + 3 * 4`, 0); v[0].Value != 14 {
		t.Errorf("precedence = %v", v[0].Value)
	}
	if v := mustQuery(t, e, `(2 + 3) * 4`, 0); v[0].Value != 20 {
		t.Errorf("parens = %v", v[0].Value)
	}
}

func TestComposedQuery(t *testing.T) {
	e := testEngine(t)
	// The Fig. 6-style query: per-cluster free CPU from daily averages.
	v := mustQuery(t, e, `100 - avg by (cluster) (avg_over_time(cpu[1d]))`, 23*sim.Hour)
	if len(v) != 2 {
		t.Fatalf("groups = %d", len(v))
	}
	got := map[string]float64{}
	for _, s := range v {
		got[s.Labels.Get("cluster")] = s.Value
	}
	// bb-0 mean over 24h = (21.5+31.5)/2 = 26.5 → free 73.5.
	if math.Abs(got["bb-0"]-73.5) > 1e-9 {
		t.Errorf("bb-0 free = %v", got["bb-0"])
	}
	if math.Abs(got["bb-1"]-(100-71.5)) > 1e-9 {
		t.Errorf("bb-1 free = %v", got["bb-1"])
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`cpu{`,
		`cpu{a=}`,
		`cpu{a="1"`,
		`avg_over_time(cpu)`,
		`avg_over_time(cpu[abc])`,
		`quantile_over_time(cpu[1h])`,
		`sum by (cluster cpu)`,
		`cpu + `,
		`cpu ! 3`,
		`"juststring"`,
		`cpu[1h]`,
		`avg_over_time(cpu[0s])`,
		`cpu{a="1"} extra`,
	}
	e := testEngine(t)
	for _, q := range bad {
		if _, err := e.Query(q, 0); err == nil {
			t.Errorf("Query(%q) succeeded, want error", q)
		}
	}
}

func TestFormat(t *testing.T) {
	e := testEngine(t)
	out := Format(mustQuery(t, e, `cpu{hostsystem="n1"}`, 0))
	if !strings.Contains(out, `hostsystem="n1"`) || !strings.Contains(out, "10") {
		t.Errorf("Format = %q", out)
	}
	scalar := Format(Vector{{Value: 42}})
	if strings.TrimSpace(scalar) != "42" {
		t.Errorf("scalar format = %q", scalar)
	}
}

func TestEscapedLabelValue(t *testing.T) {
	st := telemetry.NewStore()
	l := telemetry.MustLabels("name", `we"ird`)
	if err := st.Append("m", l, 0, 7); err != nil {
		t.Fatal(err)
	}
	e := &Engine{Store: st}
	v := mustQuery(t, e, `m{name="we\"ird"}`, 0)
	if len(v) != 1 || v[0].Value != 7 {
		t.Errorf("escaped selector = %v", v)
	}
	// Aggregation must also survive the quoted value.
	v = mustQuery(t, e, `sum by (name) (m)`, 0)
	if len(v) != 1 || v[0].Labels.Get("name") != `we"ird` {
		t.Errorf("escaped grouping = %v", v)
	}
}
