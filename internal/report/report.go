// Package report renders analysis results into the textual equivalents of
// the paper's tables and figures: aligned ASCII tables for print, CSV for
// downstream plotting.
package report

import (
	"fmt"
	"math"
	"strings"

	"sapsim/internal/analysis"
	"sapsim/internal/sim"
)

// Table renders rows as an aligned ASCII table.
func Table(headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders rows as comma-separated values with a header.
func CSV(headers []string, rows [][]string) string {
	var b strings.Builder
	b.WriteString(strings.Join(headers, ","))
	b.WriteByte('\n')
	for _, row := range rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Delta renders a signed difference against a baseline ("+1.40", "-0.25"),
// the cell format of the sweep runner's comparative tables.
func Delta(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return fmt.Sprintf("%+.2f", v)
}

// fmtCell renders a float with NaN as empty (missing heatmap cells).
func fmtCell(v float64) string {
	if math.IsNaN(v) {
		return ""
	}
	return fmt.Sprintf("%.2f", v)
}

// HeatmapCSV renders a heatmap with date row labels, matching the figures'
// y-axis (days since the 2024-07-31 epoch).
func HeatmapCSV(h *analysis.Heatmap) string {
	headers := append([]string{"date"}, h.Columns...)
	rows := make([][]string, h.Days)
	for d := 0; d < h.Days; d++ {
		row := make([]string, len(h.Columns)+1)
		row[0] = (sim.Time(d) * sim.Day).Date(sim.Epoch).Format("2006-01-02")
		for c := range h.Columns {
			row[c+1] = fmtCell(h.Cell(d, c))
		}
		rows[d] = row
	}
	return CSV(headers, rows)
}

// heatShades maps intensity to terminal shading, light to dark.
var heatShades = []rune{' ', '░', '▒', '▓', '█'}

// HeatmapASCII renders the heatmap as shaded cells, visually mirroring the
// paper's figures: one row per day, one column per entity, darker = less
// free resources, '?' = missing data (white cells in the paper). Values
// are shaded relative to [lo, hi].
func HeatmapASCII(h *analysis.Heatmap, lo, hi float64) string {
	var b strings.Builder
	if hi <= lo {
		lo, hi = 0, 100
	}
	span := hi - lo
	for d := 0; d < h.Days; d++ {
		fmt.Fprintf(&b, "%s |", (sim.Time(d) * sim.Day).Date(sim.Epoch).Format("01-02"))
		for c := range h.Columns {
			v := h.Cell(d, c)
			if math.IsNaN(v) {
				b.WriteRune('?')
				continue
			}
			// Darker = less free: invert the scale.
			frac := 1 - (v-lo)/span
			if frac < 0 {
				frac = 0
			}
			if frac > 1 {
				frac = 1
			}
			idx := int(frac * float64(len(heatShades)-1))
			b.WriteRune(heatShades[idx])
		}
		b.WriteString("|\n")
	}
	fmt.Fprintf(&b, "      %d columns, most free (left) to least free (right); shade range %.0f..%.0f%% free\n",
		len(h.Columns), hi, lo)
	return b.String()
}

// HeatmapSummary prints the compact per-column view: entity, mean free
// percentage over the window — the reading a human takes from the figure.
func HeatmapSummary(h *analysis.Heatmap, maxCols int) string {
	n := len(h.Columns)
	if maxCols > 0 && n > maxCols {
		n = maxCols
	}
	rows := make([][]string, 0, n)
	for c := 0; c < n; c++ {
		rows = append(rows, []string{h.Columns[c], fmtCell(h.ColumnMean(c))})
	}
	return Table([]string{"entity", "mean"}, rows)
}

// NodeStatsTable renders Fig. 8-style per-node aggregates.
func NodeStatsTable(stats []analysis.NodeStat, unit string) string {
	rows := make([][]string, len(stats))
	for i, s := range stats {
		rows[i] = []string{
			fmt.Sprintf("%d", i),
			s.Node,
			fmt.Sprintf("%.1f", s.Max),
			fmt.Sprintf("%.1f", s.P95),
			fmt.Sprintf("%.1f", s.Mean),
		}
	}
	return Table([]string{"rank", "node", "max (" + unit + ")", "p95 (" + unit + ")", "mean (" + unit + ")"}, rows)
}

// DailySeriesCSV renders Fig. 9-style daily aggregates.
func DailySeriesCSV(days []analysis.DailyAggregate) string {
	rows := make([][]string, len(days))
	for i, d := range days {
		rows[i] = []string{
			(sim.Time(d.Day) * sim.Day).Date(sim.Epoch).Format("2006-01-02"),
			fmtCell(d.Mean), fmtCell(d.P95), fmtCell(d.Max), fmt.Sprintf("%d", d.N),
		}
	}
	return CSV([]string{"date", "mean", "p95", "max", "samples"}, rows)
}

// CDFCSV samples the CDF at fixed points for plotting.
func CDFCSV(c *analysis.CDF, points int) string {
	if points < 2 {
		points = 2
	}
	rows := make([][]string, 0, points)
	for i := 0; i < points; i++ {
		x := float64(i) / float64(points-1)
		rows = append(rows, []string{
			fmt.Sprintf("%.3f", x),
			fmt.Sprintf("%.4f", c.At(x)),
		})
	}
	return CSV([]string{"usage_ratio", "cumulative_probability"}, rows)
}

// UtilizationSplitTable renders the Fig. 14 threshold classification.
func UtilizationSplitTable(s analysis.UtilizationSplit) string {
	rows := [][]string{
		{"underutilized (<70%)", fmt.Sprintf("%.1f%%", s.Under*100)},
		{"optimal (70-85%)", fmt.Sprintf("%.1f%%", s.Optimal*100)},
		{"overutilized (>85%)", fmt.Sprintf("%.1f%%", s.Over*100)},
		{"population", fmt.Sprintf("%d", s.N)},
	}
	return Table([]string{"class", "share"}, rows)
}

// LifetimeTable renders Fig. 15's per-flavor bars: flavor, instance count,
// mean lifetime (humanized), and both class labels.
func LifetimeTable(rows []analysis.FlavorLifetime) string {
	out := make([][]string, len(rows))
	for i, r := range rows {
		out[i] = []string{
			r.Flavor.Name,
			fmt.Sprintf("%d", r.Count),
			humanHours(r.MeanHours),
			r.VCPUClass.String(),
			r.RAMClass.String(),
		}
	}
	return Table([]string{"flavor", "#VMs", "avg lifetime", "vCPU class", "RAM class"}, out)
}

// humanHours renders hours on the Fig. 15 axis scale (13h, 1d, 1w, 1mo, 1.6y ...).
func humanHours(h float64) string {
	switch {
	case h < 48:
		return fmt.Sprintf("%.0fh", h)
	case h < 14*24:
		return fmt.Sprintf("%.1fd", h/24)
	case h < 60*24:
		return fmt.Sprintf("%.1fw", h/(7*24))
	case h < 365*24:
		return fmt.Sprintf("%.1fmo", h/(30*24))
	default:
		return fmt.Sprintf("%.1fy", h/(365*24))
	}
}

// ClassTable renders Tables 1/2: class, bound description, count.
func ClassTable(title string, bounds []string, counts []int) string {
	rows := make([][]string, len(bounds))
	for i := range bounds {
		rows[i] = []string{bounds[i], fmt.Sprintf("%d", counts[i])}
	}
	return title + "\n" + Table([]string{"category", "number of VMs"}, rows)
}

// DatasetComparisonRow is one row of Table 3.
type DatasetComparisonRow struct {
	Name     string
	CPU      bool
	Memory   bool
	Network  bool
	Storage  bool
	GPU      bool
	Batch    bool
	VMs      bool
	Lifetime string
	Scale    string
	Duration string
	Sampling string
	Public   bool
}

// Table3 reproduces the paper's comparison of prior datasets.
func Table3() []DatasetComparisonRow {
	return []DatasetComparisonRow{
		{"Google", true, true, false, false, false, true, false, "sec-days", "672,074 jobs", "29 days", "5 min", true},
		{"Alibaba", true, true, false, true, true, true, false, "min-days", "~4k nodes", "8 days", "n/a", true},
		{"Philly", true, true, true, false, true, true, false, "min-weeks", "117,325 jobs", "75 days", "1 min", true},
		{"Atlas", true, true, true, false, true, true, false, "n/a", "96,260 jobs", "90-1,800 days", "1 min", true},
		{"MIT", true, true, true, true, true, true, false, "min-days", "441-9k nodes", "90-180+ days", "n/a", true},
		{"Azure", true, true, true, true, false, false, true, "min-weeks", ">1M VMs", "14 days", "5 min", false},
		{"SAP (this work)", true, true, true, true, false, false, true, "min-years", "1.8k nodes, 48k VMs", "30 days", "30s-300s", true},
	}
}

// Table3Text renders Table 3.
func Table3Text() string {
	mark := func(b bool) string {
		if b {
			return "yes"
		}
		return "no"
	}
	rows := make([][]string, 0, len(Table3()))
	for _, r := range Table3() {
		rows = append(rows, []string{
			r.Name, mark(r.CPU), mark(r.Memory), mark(r.Network), mark(r.Storage),
			mark(r.GPU), mark(r.Batch), mark(r.VMs), r.Lifetime, r.Scale,
			r.Duration, r.Sampling, mark(r.Public),
		})
	}
	return Table([]string{
		"dataset", "cpu", "mem", "net", "storage", "gpu", "batch", "vms",
		"lifetime", "scale", "duration", "sampling", "public",
	}, rows)
}
