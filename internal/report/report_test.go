package report

import (
	"math"
	"strings"
	"testing"

	"sapsim/internal/analysis"
	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
	"sapsim/internal/vmmodel"
)

func TestTableAlignment(t *testing.T) {
	out := Table([]string{"a", "long-header"}, [][]string{{"xxxx", "1"}, {"y", "22"}})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// All lines same width.
	w := len(lines[0])
	for _, l := range lines[1:] {
		if len(l) != w {
			t.Errorf("ragged table:\n%s", out)
			break
		}
	}
	if !strings.Contains(lines[1], "----") {
		t.Error("missing separator")
	}
}

func TestCSVFormat(t *testing.T) {
	out := CSV([]string{"x", "y"}, [][]string{{"1", "2"}})
	if out != "x,y\n1,2\n" {
		t.Errorf("CSV = %q", out)
	}
}

func buildHeatmap(t *testing.T) *analysis.Heatmap {
	t.Helper()
	st := telemetry.NewStore()
	for _, n := range []struct {
		name string
		v    float64
	}{{"n1", 20}, {"n2", 80}} {
		l := telemetry.MustLabels("hostsystem", n.name)
		for d := 0; d < 2; d++ {
			if err := st.Append("cpu", l, sim.Time(d)*sim.Day+sim.Hour, n.v); err != nil {
				t.Fatal(err)
			}
		}
	}
	return analysis.DailyHeatmap(st, "cpu", "hostsystem", 3, analysis.FreePercent)
}

func TestHeatmapCSV(t *testing.T) {
	out := HeatmapCSV(buildHeatmap(t))
	if !strings.HasPrefix(out, "date,n1,n2\n") {
		t.Errorf("header wrong: %q", strings.SplitN(out, "\n", 2)[0])
	}
	if !strings.Contains(out, "2024-07-31,80.00,20.00") {
		t.Errorf("first row wrong:\n%s", out)
	}
	// Day 3 has no data → empty cells.
	if !strings.Contains(out, "2024-08-02,,") {
		t.Errorf("missing-data row wrong:\n%s", out)
	}
}

func TestHeatmapASCII(t *testing.T) {
	h := buildHeatmap(t) // n1 at 80 free, n2 at 20 free; day 3 missing
	out := HeatmapASCII(h, 0, 100)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 { // 3 day rows + legend
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "07-31 |") {
		t.Errorf("row label wrong: %q", lines[0])
	}
	// Free 80 → light shade, free 20 → dark shade; missing day → '?'.
	row0 := []rune(strings.TrimSuffix(strings.SplitN(lines[0], "|", 2)[1], "|"))
	if row0[0] == row0[1] {
		t.Errorf("cells with different values shaded identically: %q", lines[0])
	}
	if !strings.Contains(lines[2], "??") {
		t.Errorf("missing day not rendered as '?': %q", lines[2])
	}
	if !strings.Contains(lines[3], "2 columns") {
		t.Errorf("legend wrong: %q", lines[3])
	}
	// Degenerate range falls back to 0..100.
	if HeatmapASCII(h, 5, 5) == "" {
		t.Error("degenerate range produced empty output")
	}
}

func TestHeatmapSummary(t *testing.T) {
	out := HeatmapSummary(buildHeatmap(t), 1)
	if !strings.Contains(out, "n1") || strings.Contains(out, "n2") {
		t.Errorf("maxCols not honored:\n%s", out)
	}
}

func TestNodeStatsTable(t *testing.T) {
	out := NodeStatsTable([]analysis.NodeStat{{Node: "n1", Max: 220.4, P95: 30.2, Mean: 5.1}}, "s")
	if !strings.Contains(out, "220.4") || !strings.Contains(out, "max (s)") {
		t.Errorf("stats table wrong:\n%s", out)
	}
}

func TestDailySeriesCSV(t *testing.T) {
	days := []analysis.DailyAggregate{
		{Day: 0, Mean: 1.5, P95: 4.2, Max: 38.1, N: 100},
		{Day: 1, Mean: math.NaN(), P95: math.NaN(), Max: math.NaN(), N: 0},
	}
	out := DailySeriesCSV(days)
	if !strings.Contains(out, "2024-07-31,1.50,4.20,38.10,100") {
		t.Errorf("day0 row wrong:\n%s", out)
	}
	if !strings.Contains(out, "2024-08-01,,,,0") {
		t.Errorf("NaN day rendering wrong:\n%s", out)
	}
}

func TestCDFCSV(t *testing.T) {
	c := analysis.NewCDF([]float64{0.1, 0.2, 0.9})
	out := CDFCSV(c, 5)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("lines = %d", len(lines))
	}
	if lines[0] != "usage_ratio,cumulative_probability" {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasSuffix(lines[5], "1.0000") {
		t.Errorf("CDF should reach 1: %q", lines[5])
	}
	// points<2 is clamped.
	if !strings.Contains(CDFCSV(c, 1), "1.000") {
		t.Error("clamped CDF missing max point")
	}
}

func TestUtilizationSplitTable(t *testing.T) {
	out := UtilizationSplitTable(analysis.UtilizationSplit{Under: 0.82, Optimal: 0.1, Over: 0.08, N: 1000})
	for _, want := range []string{"82.0%", "10.0%", "8.0%", "1000"} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q:\n%s", want, out)
		}
	}
}

func TestLifetimeTable(t *testing.T) {
	cat := vmmodel.CatalogByName()
	rows := []analysis.FlavorLifetime{
		{Flavor: cat["MK"], Count: 100, MeanHours: 168, VCPUClass: vmmodel.Small, RAMClass: vmmodel.Medium},
	}
	out := LifetimeTable(rows)
	if !strings.Contains(out, "MK") || !strings.Contains(out, "7.0d") {
		t.Errorf("lifetime table wrong:\n%s", out)
	}
}

func TestHumanHours(t *testing.T) {
	cases := map[float64]string{
		13:                 "13h",
		24 * 5:             "5.0d",
		24 * 7 * 3:         "3.0w",
		24 * 30 * 3:        "3.0mo",
		24 * 365 * 32 / 10: "3.2y",
	}
	for h, want := range cases {
		if got := humanHours(h); got != want {
			t.Errorf("humanHours(%v) = %q, want %q", h, got, want)
		}
	}
}

func TestClassTable(t *testing.T) {
	out := ClassTable("Table 1", []string{"Small (<=4)", "Medium"}, []int{28446, 14340})
	if !strings.Contains(out, "Table 1") || !strings.Contains(out, "28446") {
		t.Errorf("class table wrong:\n%s", out)
	}
}

func TestTable3MatchesPaper(t *testing.T) {
	rows := Table3()
	if len(rows) != 7 {
		t.Fatalf("Table 3 rows = %d, want 7", len(rows))
	}
	sap := rows[len(rows)-1]
	if sap.Name != "SAP (this work)" {
		t.Fatalf("last row = %s", sap.Name)
	}
	// The SAP dataset's unique position: public, VM workloads, lifetimes
	// to years, 30s-300s sampling.
	if !sap.Public || !sap.VMs || sap.Lifetime != "min-years" || sap.Sampling != "30s-300s" {
		t.Errorf("SAP row wrong: %+v", sap)
	}
	// Azure is the only other VM-level dataset and it is not public.
	for _, r := range rows[:6] {
		if r.VMs && r.Public {
			t.Errorf("%s claims public VM data; the paper says SAP is first", r.Name)
		}
	}
	text := Table3Text()
	if !strings.Contains(text, "SAP (this work)") || !strings.Contains(text, "30s-300s") {
		t.Errorf("rendered Table 3 wrong:\n%s", text)
	}
}
