package scenario

import (
	"testing"

	"sapsim/internal/core"
	"sapsim/internal/sim"
)

// BenchmarkSweep measures a 2-scenario x 2-config matrix end to end — the
// number that tells us how many configurations a "reality check" sweep can
// cover per unit of compute.
func BenchmarkSweep(b *testing.B) {
	base := core.DefaultConfig(7)
	base.Scale = 0.01
	base.VMs = 200
	base.Days = 1
	base.SampleEvery = sim.Hour
	base.VMSampleEvery = 6 * sim.Hour
	m := Matrix{
		Base: base,
		Scenarios: []*Scenario{
			Baseline(),
			{Name: "hf", Injections: []core.Injector{
				HostFailures{At: 6 * sim.Hour, Count: 1, Recover: 6 * sim.Hour},
			}},
		},
		Variants: []Variant{
			{Name: "default"},
			{Name: "no-drs", Apply: func(cfg *core.Config) { cfg.DRS = false }},
		},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := Sweep(m)
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range res.Runs {
			if r.Err != "" {
				b.Fatalf("%+v: %s", r.Key, r.Err)
			}
		}
	}
}
