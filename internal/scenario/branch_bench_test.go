package scenario

import (
	"testing"

	"sapsim/internal/core"
	"sapsim/internal/sim"
)

// BenchmarkWarmVsColdSweep compares a sweep of late-divergence scenarios run
// cold (every cell simulates from t=0) against the same matrix with Branch
// enabled (cells sharing a (variant, seed) fork from one snapshot of their
// common prefix). The scenarios diverge in the final eighth of a 48h
// horizon, so the warm path simulates the 42h warmup once instead of three
// times — the ns/op gap in BENCH_*.json is that skipped prefix, net of the
// snapshot + per-branch restore cost. Cells are full-cell sized: on toy
// cells the fork overhead wins instead, which is exactly why Matrix.Branch
// is opt-in.
func BenchmarkWarmVsColdSweep(b *testing.B) {
	matrix := func(branch bool) Matrix {
		base := core.DefaultConfig(7)
		base.Scale = 0.02
		base.VMs = 500
		base.Days = 2
		base.SampleEvery = 15 * sim.Minute
		base.VMSampleEvery = sim.Hour
		return Matrix{
			Base: base,
			Scenarios: []*Scenario{
				{Name: "hf-42h", Injections: []core.Injector{
					HostFailures{At: 42 * sim.Hour, Count: 1, Recover: 3 * sim.Hour},
				}},
				{Name: "hf-44h", Injections: []core.Injector{
					HostFailures{At: 44 * sim.Hour, Count: 1, Recover: 3 * sim.Hour},
				}},
				{Name: "hf-46h", Injections: []core.Injector{
					HostFailures{At: 46 * sim.Hour, Count: 1, Recover: 2 * sim.Hour},
				}},
			},
			Variants: []Variant{{Name: "default"}},
			Workers:  1, // serial: the ratio measures skipped work, not parallelism
			Branch:   branch,
		}
	}
	for _, mode := range []struct {
		name   string
		branch bool
	}{{"cold", false}, {"warm", true}} {
		b.Run(mode.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				res, err := Sweep(matrix(mode.branch))
				if err != nil {
					b.Fatal(err)
				}
				for _, r := range res.Runs {
					if r.Err != "" {
						b.Fatalf("%+v: %s", r.Key, r.Err)
					}
				}
			}
		})
	}
}
