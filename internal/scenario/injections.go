package scenario

import (
	"fmt"
	"math"
	"math/rand/v2"
	"sort"
	"strconv"
	"strings"

	"sapsim/internal/core"
	"sapsim/internal/esx"
	"sapsim/internal/events"
	"sapsim/internal/sim"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
)

// injectionStream decorrelates the RNG streams of different injections
// while keeping every draw derived from the run's seed.
func injectionStream(env *core.Env, salt uint64) *rand.Rand {
	return rand.New(rand.NewPCG(env.Config.Seed, 0x5ce7a110^salt))
}

// intPayload serializes a small index as a rearm payload.
func intPayload(i int) []byte { return []byte(strconv.Itoa(i)) }

// payloadInt decodes an index payload, bounds-checked against n.
func payloadInt(p []byte, n int) (int, error) {
	i, err := strconv.Atoi(string(p))
	if err != nil || i < 0 || i >= n {
		return 0, fmt.Errorf("scenario: bad index payload %q", p)
	}
	return i, nil
}

// hostsPayload serializes a host list (by node ID, order-preserving) as a
// rearm payload for recovery events that close over their victims.
func hostsPayload(hosts []*esx.Host) []byte {
	ids := make([]string, len(hosts))
	for i, h := range hosts {
		ids[i] = string(h.Node.ID)
	}
	return []byte(strings.Join(ids, "\n"))
}

// payloadHosts resolves a hostsPayload back to live host handles.
func payloadHosts(env *core.Env, p []byte) ([]*esx.Host, error) {
	if len(p) == 0 {
		return nil, nil
	}
	ids := strings.Split(string(p), "\n")
	hosts := make([]*esx.Host, 0, len(ids))
	for _, id := range ids {
		h, err := env.Fleet.Host(topology.NodeID(id))
		if err != nil {
			return nil, fmt.Errorf("scenario: recovery payload: %w", err)
		}
		hosts = append(hosts, h)
	}
	return hosts, nil
}

// restoreHostsFactory is the rearm factory for recovery events: it rebuilds
// the `restoreHosts(env, victims)` handler from the serialized victim list.
func restoreHostsFactory(env *core.Env) func([]byte) (sim.Handler, error) {
	return func(p []byte) (sim.Handler, error) {
		hosts, err := payloadHosts(env, p)
		if err != nil {
			return nil, err
		}
		return func(sim.Time) { restoreHosts(env, hosts) }, nil
	}
}

// evacuateHost reschedules every resident VM of a (failed or draining) host
// through the normal Nova pipeline, recording evacuate / evacuate_failed
// events. VMs that find no valid host are lost.
func evacuateHost(env *core.Env, h *esx.Host, now sim.Time) {
	source := string(h.Node.ID)
	for _, vm := range h.VMs() {
		res, err := env.Scheduler.Evacuate(vm, now)
		if err != nil {
			env.Lose(vm)
			env.Record(events.Event{At: now, Type: events.EvacuateFailed,
				VM: string(vm.ID), Flavor: vm.Flavor.Name, Source: source})
			continue
		}
		env.Record(events.Event{At: now, Type: events.Evacuate,
			VM: string(vm.ID), Flavor: vm.Flavor.Name,
			Source: source, Target: string(res.Node.ID)})
	}
}

// failNode takes a node out of service and evacuates its residents. The
// placement inventory error is ignored: every building block registered a
// provider at scheduler construction.
func failNode(env *core.Env, h *esx.Host, now sim.Time) {
	env.TakeDown(h.Node)
	_ = env.Scheduler.RefreshInventory(h.Node.BB)
	evacuateHost(env, h, now)
}

// restoreHosts releases one out-of-service claim per host; hosts with no
// remaining claims return to service and their building blocks' placement
// inventories re-sync, once per block.
func restoreHosts(env *core.Env, hosts []*esx.Host) {
	var up []*esx.Host
	for _, h := range hosts {
		if env.BringUp(h.Node) {
			up = append(up, h)
		}
	}
	refreshBBs(env, up)
}

// refreshBBs re-syncs the placement inventory of each host's building
// block, once per block.
func refreshBBs(env *core.Env, hosts []*esx.Host) {
	seen := make(map[*topology.BuildingBlock]bool)
	for _, h := range hosts {
		if bb := h.Node.BB; !seen[bb] {
			seen[bb] = true
			_ = env.Scheduler.RefreshInventory(bb)
		}
	}
}

// HostFailures fails a seed-derived subset of hosts at a point in time;
// residents are evacuated through the Nova pipeline and failed hosts
// optionally recover after a fixed outage.
type HostFailures struct {
	// At is the failure instant.
	At sim.Time
	// Count fixes the number of failed hosts; when zero, Fraction of the
	// active fleet (rounded up) fails instead.
	Count    int
	Fraction float64
	// Recover is the outage duration; zero means the hosts never return.
	Recover sim.Time
	// Salt decorrelates host selection from other seeded injections.
	Salt uint64
}

// Name implements core.Injector.
func (HostFailures) Name() string { return "host-failures" }

// FirstEffect reports the first instant the injection mutates run state.
func (hf HostFailures) FirstEffect() sim.Time { return hf.At }

// Inject implements core.Injector.
func (hf HostFailures) Inject(env *core.Env) error {
	if hf.Count < 0 || hf.Fraction < 0 || hf.Fraction > 1 {
		return fmt.Errorf("host-failures: bad count=%d fraction=%g", hf.Count, hf.Fraction)
	}
	fail := func(now sim.Time) {
		var active []*esx.Host
		for _, h := range env.Fleet.Hosts() {
			if !h.Node.Maintenance {
				active = append(active, h)
			}
		}
		n := hf.Count
		if n == 0 {
			n = int(math.Ceil(hf.Fraction * float64(len(active))))
		}
		if n > len(active) {
			n = len(active)
		}
		if n == 0 {
			return
		}
		rng := injectionStream(env, hf.Salt)
		perm := rng.Perm(len(active))
		failed := make([]*esx.Host, n)
		for i := 0; i < n; i++ {
			failed[i] = active[perm[i]]
		}
		// Process in node-ID order so the evacuation event stream is
		// independent of the permutation's draw order.
		sort.Slice(failed, func(i, j int) bool { return failed[i].Node.ID < failed[j].Node.ID })
		// Mark every victim down first: evacuations must not land on a
		// host that fails in the same instant.
		for _, h := range failed {
			env.TakeDown(h.Node)
		}
		refreshBBs(env, failed)
		for _, h := range failed {
			evacuateHost(env, h, now)
		}
		if hf.Recover > 0 {
			_, _ = env.ScheduleOwned(now+hf.Recover, "restore", hostsPayload(failed))
		}
	}
	env.OnRestore("fail", func([]byte) (sim.Handler, error) { return fail, nil })
	env.OnRestore("restore", restoreHostsFactory(env))
	if env.Restoring() {
		return nil
	}
	_, err := env.ScheduleOwned(hf.At, "fail", nil)
	return err
}

// AZOutage takes every host of one availability zone out of service for a
// fixed duration — the paper's region spans multiple AZs precisely to
// survive this class of event.
type AZOutage struct {
	At sim.Time
	// AZIndex selects the zone (modulo the region's AZ count).
	AZIndex  int
	Duration sim.Time
}

// Name implements core.Injector.
func (AZOutage) Name() string { return "az-outage" }

// FirstEffect reports the first instant the injection mutates run state.
func (o AZOutage) FirstEffect() sim.Time { return o.At }

// Inject implements core.Injector.
func (o AZOutage) Inject(env *core.Env) error {
	azs := env.Region.AZs
	if len(azs) == 0 {
		return fmt.Errorf("az-outage: region has no availability zones")
	}
	az := azs[((o.AZIndex%len(azs))+len(azs))%len(azs)]
	outage := func(now sim.Time) {
		var down []*esx.Host
		for _, dc := range az.DCs {
			for _, bb := range dc.BBs {
				for _, h := range env.Fleet.HostsInBB(bb) {
					if !h.Node.Maintenance {
						down = append(down, h)
					}
				}
			}
		}
		// Whole zone goes dark at once, then residents evacuate to the
		// surviving zones.
		for _, h := range down {
			env.TakeDown(h.Node)
		}
		refreshBBs(env, down)
		for _, h := range down {
			evacuateHost(env, h, now)
		}
		if o.Duration > 0 {
			_, _ = env.ScheduleOwned(now+o.Duration, "restore", hostsPayload(down))
		}
	}
	env.OnRestore("outage", func([]byte) (sim.Handler, error) { return outage, nil })
	env.OnRestore("restore", restoreHostsFactory(env))
	if env.Restoring() {
		return nil
	}
	_, err := env.ScheduleOwned(o.At, "outage", nil)
	return err
}

// MaintenanceDrain rolls a building block through maintenance: nodes drain
// one at a time (residents live-migrate off through the Nova pipeline),
// stay down for Hold, then return to service.
type MaintenanceDrain struct {
	// At is when the first node starts draining.
	At sim.Time
	// BBIndex selects the building block among the region's non-reserved
	// multi-node blocks (modulo their count).
	BBIndex int
	// NodeEvery staggers successive node drains (default 15 minutes).
	NodeEvery sim.Time
	// Hold is each node's maintenance duration after draining (default
	// 2 hours).
	Hold sim.Time
}

// Name implements core.Injector.
func (MaintenanceDrain) Name() string { return "maintenance-drain" }

// FirstEffect reports the first instant the injection mutates run state.
func (d MaintenanceDrain) FirstEffect() sim.Time { return d.At }

// Inject implements core.Injector.
func (d MaintenanceDrain) Inject(env *core.Env) error {
	every := d.NodeEvery
	if every <= 0 {
		every = 15 * sim.Minute
	}
	hold := d.Hold
	if hold <= 0 {
		hold = 2 * sim.Hour
	}
	var candidates []*topology.BuildingBlock
	for _, bb := range env.Region.BBs() {
		if !bb.Reserved && len(bb.Nodes) > 1 {
			candidates = append(candidates, bb)
		}
	}
	if len(candidates) == 0 {
		return fmt.Errorf("maintenance-drain: no drainable building blocks")
	}
	bb := candidates[((d.BBIndex%len(candidates))+len(candidates))%len(candidates)]
	hostAt := func(p []byte) (*esx.Host, error) {
		i, err := payloadInt(p, len(bb.Nodes))
		if err != nil {
			return nil, err
		}
		return env.Fleet.Host(bb.Nodes[i].ID)
	}
	env.OnRestore("drain", func(p []byte) (sim.Handler, error) {
		h, err := hostAt(p)
		if err != nil {
			return nil, err
		}
		return func(now sim.Time) { failNode(env, h, now) }, nil
	})
	env.OnRestore("undrain", func(p []byte) (sim.Handler, error) {
		h, err := hostAt(p)
		if err != nil {
			return nil, err
		}
		return func(sim.Time) { restoreHosts(env, []*esx.Host{h}) }, nil
	})
	if env.Restoring() {
		return nil
	}
	for i := range bb.Nodes {
		drainAt := d.At + sim.Time(i)*every
		if _, err := env.ScheduleOwned(drainAt, "drain", intPayload(i)); err != nil {
			return fmt.Errorf("maintenance-drain: %w", err)
		}
		if _, err := env.ScheduleOwned(drainAt+hold, "undrain", intPayload(i)); err != nil {
			return fmt.Errorf("maintenance-drain: %w", err)
		}
	}
	return nil
}

// CorrelatedFailures models failure bursts that are correlated in space:
// instead of independent node failures scattered across the region, each
// burst concentrates inside one building block of a single seed-chosen
// availability zone — the shared power feed, top-of-rack switch, or bad
// firmware rollout that takes out neighbors together. Successive bursts
// march through the same AZ's building blocks, Spacing apart, so the
// surviving blocks of that zone absorb wave after wave of evacuations.
type CorrelatedFailures struct {
	// At is the first burst instant.
	At sim.Time
	// Bursts is the number of bursts (default 3).
	Bursts int
	// Spacing separates successive bursts (default 6 hours).
	Spacing sim.Time
	// Fraction of each victim block's active hosts that fail per burst
	// (default 0.5 — a correlated failure takes out most of a rack).
	Fraction float64
	// Recover is the per-host outage duration; zero means the hosts never
	// return.
	Recover sim.Time
	// Salt decorrelates the selection from other seeded injections.
	Salt uint64
}

// Name implements core.Injector.
func (CorrelatedFailures) Name() string { return "correlated-failures" }

// FirstEffect reports the first instant the injection mutates run state.
func (cf CorrelatedFailures) FirstEffect() sim.Time { return cf.At }

// Inject implements core.Injector.
func (cf CorrelatedFailures) Inject(env *core.Env) error {
	if cf.Fraction < 0 || cf.Fraction > 1 {
		return fmt.Errorf("correlated-failures: bad fraction=%g", cf.Fraction)
	}
	bursts := cf.Bursts
	if bursts <= 0 {
		bursts = 3
	}
	spacing := cf.Spacing
	if spacing <= 0 {
		spacing = 6 * sim.Hour
	}
	fraction := cf.Fraction
	if fraction == 0 {
		fraction = 0.5
	}
	if len(env.Region.AZs) == 0 {
		return fmt.Errorf("correlated-failures: region has no availability zones")
	}
	// All selection draws happen at injection time so the burst schedule is
	// fixed up front: one zone for the whole campaign, then one victim
	// block per burst, cycling through the zone's blocks in permuted order.
	// A restoring assembly replays the identical draws, so the schedule —
	// and each burst's private RNG, untouched until its burst fires —
	// rebuilds without captured state.
	rng := injectionStream(env, 0xc0221e1a^cf.Salt)
	az := env.Region.AZs[rng.IntN(len(env.Region.AZs))]
	var blocks []*topology.BuildingBlock
	for _, dc := range az.DCs {
		for _, bb := range dc.BBs {
			if !bb.Reserved && len(bb.Nodes) > 1 {
				blocks = append(blocks, bb)
			}
		}
	}
	if len(blocks) == 0 {
		return fmt.Errorf("correlated-failures: zone %s has no failable building blocks", az.Name)
	}
	perm := rng.Perm(len(blocks))
	burst := make([]sim.Handler, bursts)
	for i := 0; i < bursts; i++ {
		bb := blocks[perm[i%len(blocks)]]
		burstRNG := rand.New(rand.NewPCG(env.Config.Seed, 0xb325^cf.Salt^uint64(i)))
		burst[i] = func(now sim.Time) {
			var active []*esx.Host
			for _, h := range env.Fleet.HostsInBB(bb) {
				if !h.Node.Maintenance {
					active = append(active, h)
				}
			}
			n := int(math.Ceil(fraction * float64(len(active))))
			if n > len(active) {
				n = len(active)
			}
			if n == 0 {
				return
			}
			hostPerm := burstRNG.Perm(len(active))
			failed := make([]*esx.Host, n)
			for j := 0; j < n; j++ {
				failed[j] = active[hostPerm[j]]
			}
			sort.Slice(failed, func(a, b int) bool { return failed[a].Node.ID < failed[b].Node.ID })
			// The whole burst lands at once: evacuations must not target a
			// host failing in the same instant.
			for _, h := range failed {
				env.TakeDown(h.Node)
			}
			refreshBBs(env, failed)
			for _, h := range failed {
				evacuateHost(env, h, now)
			}
			if cf.Recover > 0 {
				_, _ = env.ScheduleOwned(now+cf.Recover, "restore", hostsPayload(failed))
			}
		}
	}
	env.OnRestore("burst", func(p []byte) (sim.Handler, error) {
		i, err := payloadInt(p, bursts)
		if err != nil {
			return nil, err
		}
		return burst[i], nil
	})
	env.OnRestore("restore", restoreHostsFactory(env))
	if env.Restoring() {
		return nil
	}
	for i := 0; i < bursts; i++ {
		if _, err := env.ScheduleOwned(cf.At+sim.Time(i)*spacing, "burst", intPayload(i)); err != nil {
			return fmt.Errorf("correlated-failures: %w", err)
		}
	}
	return nil
}

// CascadingFailures couples each host's failure probability to its current
// load: at every evaluation instant each active host fails independently
// with hazard(load) = BaseProb × (1 + Gain × load²), load being the
// host's allocation fraction (the hotter of vCPU and memory). The feedback
// loop is the point — every failure evacuates residents through the Nova
// pipeline onto the surviving hosts, raising their load and therefore
// their hazard at the next evaluation, so failures cluster and cascade
// toward the hottest corners of the fleet instead of falling uniformly.
type CascadingFailures struct {
	// Start opens the hazard window (default day 1).
	Start sim.Time
	// Duration is how long the window stays open (default 2 days).
	Duration sim.Time
	// Every is the evaluation cadence (default 1 hour).
	Every sim.Time
	// BaseProb is an idle host's per-evaluation failure probability.
	// Zero disables the hazard entirely, at any gain: the coupling
	// multiplies the base, it never invents one. (The builtin
	// cascading-failures scenario uses 0.001.)
	BaseProb float64
	// Gain scales how sharply load raises the hazard (default 30: a host
	// at 90% load is ~25x likelier to fail per evaluation than an idle
	// one).
	Gain float64
	// Recover is the per-host outage duration; zero means failed hosts
	// never return.
	Recover sim.Time
	// Salt decorrelates the hazard draws from other seeded injections.
	Salt uint64
	// OnFail observes each failure with the load that drove it (tests).
	OnFail func(node topology.NodeID, load float64, now sim.Time)
}

// Name implements core.Injector.
func (CascadingFailures) Name() string { return "cascading-failures" }

// FirstEffect reports the first instant the injection mutates run state.
func (cf CascadingFailures) FirstEffect() sim.Time {
	if cf.Start > 0 {
		return cf.Start
	}
	return sim.Day
}

// hazard is the per-evaluation failure probability at a given load
// fraction, capped at 1.
func (cf CascadingFailures) hazard(load float64) float64 {
	base := cf.BaseProb
	gain := cf.Gain
	if gain == 0 {
		gain = 30
	}
	if load < 0 {
		load = 0
	}
	if load > 1 {
		load = 1
	}
	p := base * (1 + gain*load*load)
	switch {
	case p > 1:
		return 1
	case p < 0:
		return 0
	}
	return p
}

// hostLoad is the allocation fraction the hazard couples to: the hotter
// of the host's vCPU and memory allocation against its overcommit
// ceilings.
func hostLoad(h *esx.Host) float64 {
	var cpu, mem float64
	if cap := h.VCPUCapacity(); cap > 0 {
		cpu = float64(h.AllocatedVCPUs()) / float64(cap)
	}
	if cap := h.MemCapacityMB(); cap > 0 {
		mem = float64(h.AllocatedMemMB()) / float64(cap)
	}
	return math.Max(cpu, mem)
}

// Inject implements core.Injector.
func (cf CascadingFailures) Inject(env *core.Env) error {
	if cf.BaseProb < 0 || cf.BaseProb > 1 {
		return fmt.Errorf("cascading-failures: bad base probability %g", cf.BaseProb)
	}
	if cf.Gain < 0 {
		// A negative gain would invert the premise: loaded hosts would
		// become the safest in the fleet.
		return fmt.Errorf("cascading-failures: negative gain %g", cf.Gain)
	}
	start := cf.Start
	if start <= 0 {
		start = sim.Day
	}
	duration := cf.Duration
	if duration <= 0 {
		duration = 2 * sim.Day
	}
	every := cf.Every
	if every <= 0 {
		every = sim.Hour
	}
	// One stream for the whole campaign, drawn in host-ID order each
	// round, keeps the cascade bit-for-bit deterministic per seed. The
	// stream stays live across evaluations, so it is registered for
	// snapshot capture (same construction as injectionStream, with the
	// source kept for state marshaling).
	src := rand.NewPCG(env.Config.Seed, 0x5ce7a110^(0xca5cade^cf.Salt))
	rng := rand.New(src)
	env.RegisterRNG("hazard", src)
	end := start + duration
	var evaluate func(now sim.Time)
	evaluate = func(now sim.Time) {
		var failed []*esx.Host
		loads := map[topology.NodeID]float64{}
		for _, h := range env.Fleet.Hosts() { // sorted by node ID
			if h.Node.Maintenance {
				continue
			}
			load := hostLoad(h)
			if rng.Float64() < cf.hazard(load) {
				failed = append(failed, h)
				loads[h.Node.ID] = load
			}
		}
		// The round's victims go dark together before anyone evacuates, so
		// no evacuation lands on a host failing in the same instant.
		for _, h := range failed {
			env.TakeDown(h.Node)
		}
		refreshBBs(env, failed)
		for _, h := range failed {
			if cf.OnFail != nil {
				cf.OnFail(h.Node.ID, loads[h.Node.ID], now)
			}
			evacuateHost(env, h, now)
		}
		if cf.Recover > 0 && len(failed) > 0 {
			_, _ = env.ScheduleOwned(now+cf.Recover, "restore", hostsPayload(failed))
		}
		if next := now + every; next < end {
			_, _ = env.ScheduleOwned(next, "eval", nil)
		}
	}
	env.OnRestore("eval", func([]byte) (sim.Handler, error) { return evaluate, nil })
	env.OnRestore("restore", restoreHostsFactory(env))
	if env.Restoring() {
		return nil
	}
	_, err := env.ScheduleOwned(start, "eval", nil)
	return err
}

// CapacityExpansion grows the region mid-run: newly delivered
// general-purpose building blocks join a seed-chosen data center while the
// fleet is live, entering the placement service through
// Scheduler.RegisterBB (which re-syncs inventory for blocks that already
// exist). New nodes clone the capacity of the host DC's existing
// general-purpose hardware, start empty, and are picked up by the
// scheduler, DRS, and the telemetry samplers from their arrival tick on.
type CapacityExpansion struct {
	// At is the first block's arrival instant.
	At sim.Time
	// Nodes per added block (default 8).
	Nodes int
	// Blocks is how many blocks arrive (default 1), spaced Every apart.
	Blocks int
	// Every separates successive block arrivals (default 1 day).
	Every sim.Time
	// Salt decorrelates the DC choice from other seeded injections.
	Salt uint64
}

// Name implements core.Injector.
func (CapacityExpansion) Name() string { return "capacity-expansion" }

// FirstEffect reports the first instant the injection mutates run state.
// A capacity expansion mutates the topology at injection time (blocks are
// pre-built out of service), so there is no injection-free warm prefix.
func (CapacityExpansion) FirstEffect() sim.Time { return 0 }

// Inject implements core.Injector. The blocks are created here, at
// injection time — where topology errors (duplicate IDs from two
// expansions targeting the same DC, bad capacity) can still fail the run
// loudly — with every node parked out of service and no placement
// provider, so nothing schedules onto or samples them. Each block's
// scheduled arrival then only brings the pre-built nodes into service and
// registers the provider, which cannot fail.
func (ce CapacityExpansion) Inject(env *core.Env) error {
	nodes := ce.Nodes
	if nodes <= 0 {
		nodes = 8
	}
	blocks := ce.Blocks
	if blocks <= 0 {
		blocks = 1
	}
	every := ce.Every
	if every <= 0 {
		every = sim.Day
	}
	dcs := env.Region.Datacenters()
	if len(dcs) == 0 {
		return fmt.Errorf("capacity-expansion: region has no data centers")
	}
	rng := injectionStream(env, 0xca9ac17e^ce.Salt)
	dc := dcs[rng.IntN(len(dcs))]
	// Clone the capacity of the DC's existing general-purpose nodes so the
	// expansion matches the installed hardware generation.
	var template *topology.Node
	for _, bb := range dc.BBs {
		if bb.Kind == topology.GeneralPurpose && !bb.Reserved && len(bb.Nodes) > 0 {
			template = bb.Nodes[0]
			break
		}
	}
	if template == nil {
		return fmt.Errorf("capacity-expansion: DC %s has no general-purpose block to clone", dc.Name)
	}
	bbs := make([]*topology.BuildingBlock, blocks)
	for i := 0; i < blocks; i++ {
		// Salt in the ID keeps two differently-salted expansions of the
		// same DC from colliding.
		id := topology.BBID(fmt.Sprintf("%s-exp%02x-%02d", dc.Name, ce.Salt&0xff, i))
		bb, err := dc.AddBB(id, topology.GeneralPurpose, nodes, template.Capacity)
		if err != nil {
			return fmt.Errorf("capacity-expansion: %w", err)
		}
		bbs[i] = bb
		for _, n := range bb.Nodes {
			env.Fleet.AddHost(n)
			env.TakeDown(n) // undelivered: invisible until arrival
		}
	}
	env.OnRestore("arrive", func(p []byte) (sim.Handler, error) {
		i, err := payloadInt(p, blocks)
		if err != nil {
			return nil, err
		}
		bb := bbs[i]
		return func(sim.Time) {
			for _, n := range bb.Nodes {
				env.BringUp(n)
			}
			// The provider cannot pre-exist (AddBB guarantees a fresh
			// ID), so registration reduces to CreateProvider and cannot
			// fail; RegisterBB still degrades to a refresh defensively.
			_ = env.Scheduler.RegisterBB(bb)
		}, nil
	})
	if env.Restoring() {
		// Blocks whose arrival predates the snapshot already joined the
		// placement service; re-register them now. Service state and
		// inventory come from the restore overlay, which runs after every
		// restoring injection.
		for i, bb := range bbs {
			if ce.At+sim.Time(i)*every <= env.RestoreAt() {
				_ = env.Scheduler.RegisterBB(bb)
			}
		}
		return nil
	}
	for i := 0; i < blocks; i++ {
		if _, err := env.ScheduleOwned(ce.At+sim.Time(i)*every, "arrive", intPayload(i)); err != nil {
			return fmt.Errorf("capacity-expansion: %w", err)
		}
	}
	return nil
}

// ResizeWave resizes a seed-derived subset of the live population at one
// instant — the scheduled mass-resize campaigns (OS upgrades, license
// right-sizing) that hit production schedulers as a thundering herd.
type ResizeWave struct {
	At sim.Time
	// Count fixes the number of resizes; when zero, Fraction of the live
	// population (rounded up) resizes instead.
	Count    int
	Fraction float64
	// Salt decorrelates VM selection from other seeded injections.
	Salt uint64
}

// Name implements core.Injector.
func (ResizeWave) Name() string { return "resize-wave" }

// FirstEffect reports the first instant the injection mutates run state.
func (w ResizeWave) FirstEffect() sim.Time { return w.At }

// Inject implements core.Injector.
func (w ResizeWave) Inject(env *core.Env) error {
	if w.Count < 0 || w.Fraction < 0 || w.Fraction > 1 {
		return fmt.Errorf("resize-wave: bad count=%d fraction=%g", w.Count, w.Fraction)
	}
	wave := func(now sim.Time) {
		live := env.Live()
		n := w.Count
		if n == 0 {
			n = int(math.Ceil(w.Fraction * float64(len(live))))
		}
		if n > len(live) {
			n = len(live)
		}
		rng := injectionStream(env, 0x9e512e^w.Salt)
		perm := rng.Perm(len(live))
		for i := 0; i < n; i++ {
			vm := live[perm[i]]
			if vm.Node == nil {
				continue
			}
			target := vmmodel.ResizeTarget(vm.Flavor, rng)
			if target == nil {
				continue
			}
			if _, err := env.Scheduler.Resize(vm, target, now); err != nil {
				continue // rolled back; the wave moves on
			}
			env.Result.Resizes++
			env.Record(events.Event{At: now, Type: events.Resize,
				VM: string(vm.ID), Flavor: target.Name, Target: string(vm.Node.ID)})
		}
	}
	env.OnRestore("wave", func([]byte) (sim.Handler, error) { return wave, nil })
	if env.Restoring() {
		return nil
	}
	_, err := env.ScheduleOwned(w.At, "wave", nil)
	return err
}
