package scenario

import (
	"errors"
	"fmt"

	"sapsim/internal/core"
	"sapsim/internal/events"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
)

// CheckInvariants audits a finished run for the structural guarantees the
// scheduler stack must uphold under any scenario:
//
//  1. Admission control: no host's vCPU or memory allocation exceeds its
//     overcommit ceiling, and pinned cores never exceed physical cores.
//  2. Conservation: every VM that entered the system is in exactly one
//     terminal bucket — running on exactly one host, deleted, never placed
//     (NoValidHost), or lost to a failed evacuation — and the never-placed
//     and lost counts match the run's failure counters.
//  3. No double placement: a VM is resident on at most one host, and its
//     own placement pointer agrees with the host that holds it.
//
// It returns every violation joined into one error, or nil.
func CheckInvariants(res *core.Result) error {
	var errs []error

	// 1. Admission ceilings.
	for _, h := range res.Fleet.Hosts() {
		if h.AllocatedVCPUs() > h.VCPUCapacity() {
			errs = append(errs, fmt.Errorf("host %s: vCPU allocation %d exceeds overcommit ceiling %d",
				h.Node.ID, h.AllocatedVCPUs(), h.VCPUCapacity()))
		}
		if h.AllocatedMemMB() > h.MemCapacityMB() {
			errs = append(errs, fmt.Errorf("host %s: memory allocation %d MB exceeds capacity %d MB",
				h.Node.ID, h.AllocatedMemMB(), h.MemCapacityMB()))
		}
		if h.PinnedCores() > h.Node.Capacity.PCPUCores {
			errs = append(errs, fmt.Errorf("host %s: %d pinned cores exceed %d physical cores",
				h.Node.ID, h.PinnedCores(), h.Node.Capacity.PCPUCores))
		}
	}

	// 3. Residency: each VM on at most one host, pointers consistent.
	resident := make(map[vmmodel.ID]topology.NodeID)
	for _, h := range res.Fleet.Hosts() {
		for _, vm := range h.VMs() {
			if prev, ok := resident[vm.ID]; ok {
				errs = append(errs, fmt.Errorf("vm %s: double-placed on %s and %s", vm.ID, prev, h.Node.ID))
				continue
			}
			resident[vm.ID] = h.Node.ID
			if vm.Node == nil || vm.Node.ID != h.Node.ID {
				errs = append(errs, fmt.Errorf("vm %s: resident on %s but placement pointer says %v",
					vm.ID, h.Node.ID, vm.Node))
			}
			if vm.State != vmmodel.Active {
				errs = append(errs, fmt.Errorf("vm %s: resident on %s in state %s", vm.ID, h.Node.ID, vm.State))
			}
		}
	}

	// 2. Conservation: created = running + deleted + never-placed + lost.
	var running, deleted, neverPlaced, lost int
	for _, vm := range res.VMs {
		onHost := false
		if _, ok := resident[vm.ID]; ok {
			onHost = true
		}
		switch {
		case onHost:
			running++
		case vm.State == vmmodel.Deleted:
			deleted++
		case vm.State == vmmodel.Requested && vm.Node == nil:
			neverPlaced++ // NoValidHost at creation
		case vm.State == vmmodel.Migrating && vm.Node == nil:
			lost++ // evacuation found no valid host
		default:
			errs = append(errs, fmt.Errorf("vm %s: unaccounted state %s (node %v)", vm.ID, vm.State, vm.Node))
		}
	}
	if total := running + deleted + neverPlaced + lost; total != len(res.VMs) {
		errs = append(errs, fmt.Errorf("conservation: %d created != %d running + %d deleted + %d never-placed + %d lost",
			len(res.VMs), running, deleted, neverPlaced, lost))
	}
	if neverPlaced != res.PlacementFailures {
		errs = append(errs, fmt.Errorf("conservation: %d never-placed VMs but %d recorded placement failures",
			neverPlaced, res.PlacementFailures))
	}
	if evacLost := res.Events.CountByType()[events.EvacuateFailed]; lost != evacLost {
		errs = append(errs, fmt.Errorf("conservation: %d lost VMs but %d recorded failed evacuations",
			lost, evacLost))
	}

	return errors.Join(errs...)
}
