package scenario

import (
	"strings"
	"sync"
	"testing"

	"sapsim/internal/core"
	"sapsim/internal/events"
	"sapsim/internal/sim"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
	"sapsim/internal/workload"
)

// drsMonotoneProbe hooks the DRS decision stream and records any migration
// whose destination was busier than its source at decision time.
type drsMonotoneProbe struct {
	mu         sync.Mutex
	decisions  int
	violations []string
}

func (p *drsMonotoneProbe) Name() string { return "drs-monotone-probe" }

func (p *drsMonotoneProbe) Inject(env *core.Env) error {
	if env.Result.DRS == nil {
		return nil
	}
	env.Result.DRS.OnDecide = func(vm *vmmodel.VM, srcCPUPct, dstCPUPct float64, now sim.Time) {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.decisions++
		if dstCPUPct > srcCPUPct {
			p.violations = append(p.violations,
				vm.Flavor.Name+" at "+now.String())
		}
	}
	return nil
}

// TestDRSNeverMigratesTowardFullerHost asserts, across a stressed scenario
// run, that every DRS decision moves load from a busier host to a less
// busy one.
func TestDRSNeverMigratesTowardFullerHost(t *testing.T) {
	probe := &drsMonotoneProbe{}
	sc := &Scenario{Name: "drs-probe", Injections: []core.Injector{
		HostFailures{At: sim.Day, Fraction: 0.1, Recover: 12 * sim.Hour},
		probe,
	}}
	res := runScenario(t, sc, 3)
	if probe.decisions == 0 {
		t.Skip("no DRS decisions in this window; nothing to assert")
	}
	if len(probe.violations) > 0 {
		t.Fatalf("%d/%d DRS decisions moved toward a fuller host: %s",
			len(probe.violations), probe.decisions, strings.Join(probe.violations, ", "))
	}
	if res.DRSMigrations == 0 {
		t.Fatal("probe saw decisions but the run recorded no migrations")
	}
}

// TestInvariantsOnSteadyState pins the invariant suite on the plain run.
func TestInvariantsOnSteadyState(t *testing.T) {
	res, err := core.Run(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckInvariants(res); err != nil {
		t.Fatal(err)
	}
}

// TestInvariantsDetectViolations corrupts a finished run and expects the
// checker to object — a checker that cannot fail proves nothing.
func TestInvariantsDetectViolations(t *testing.T) {
	res, err := core.Run(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var victim *vmmodel.VM
	for _, h := range res.Fleet.Hosts() {
		if vms := h.VMs(); len(vms) > 0 {
			victim = vms[0]
			break
		}
	}
	if victim == nil {
		t.Fatal("no resident VM to corrupt")
	}
	victim.Node = nil // placement pointer now disagrees with residency
	if err := CheckInvariants(res); err == nil {
		t.Fatal("checker accepted a corrupted placement pointer")
	}
}

// TestCorrelatedFailuresInvariants drives the correlated-burst scenario —
// three bursts inside one AZ, half of each victim block down — and audits
// the full invariant suite plus the burst structure: evacuations happen,
// the structural books balance, and after recovery no node stays dark.
func TestCorrelatedFailuresInvariants(t *testing.T) {
	sc := &Scenario{Name: "cf", Injections: []core.Injector{
		CorrelatedFailures{At: sim.Day, Bursts: 3, Spacing: 6 * sim.Hour,
			Fraction: 0.5, Recover: 12 * sim.Hour},
	}}
	res := runScenario(t, sc, 3)
	if err := CheckInvariants(res); err != nil {
		t.Fatal(err)
	}
	counts := res.Events.CountByType()
	if counts[events.Evacuate]+counts[events.EvacuateFailed] == 0 {
		t.Fatalf("correlated bursts displaced nobody: %v", counts)
	}
	for _, h := range res.Fleet.Hosts() {
		if h.Node.Maintenance {
			t.Fatalf("node %s still dark after recovery window", h.Node.ID)
		}
	}
	// Determinism: the same seed reproduces the same burst outcome.
	again := runScenario(t, sc, 3)
	againCounts := again.Events.CountByType()
	if counts[events.Evacuate] != againCounts[events.Evacuate] ||
		counts[events.EvacuateFailed] != againCounts[events.EvacuateFailed] {
		t.Fatalf("burst outcome not deterministic: %v vs %v", counts, againCounts)
	}
}

// TestCascadingFailuresInvariants drives the load-coupled hazard and
// audits both the structural invariants and the coupling itself: failures
// happen, they skew toward loaded hosts (the mean load at failure time
// beats the idle end of the hazard curve), the feedback spreads them over
// multiple evaluation rounds, the run is deterministic per seed, and a
// zero base probability keeps the fleet untouched no matter the gain —
// the coupling multiplies the hazard, it never invents one.
func TestCascadingFailuresInvariants(t *testing.T) {
	type failure struct {
		load float64
		at   sim.Time
	}
	var mu sync.Mutex
	var failures []failure
	inj := &CascadingFailures{Start: sim.Day, Duration: 2 * sim.Day, Every: sim.Hour,
		BaseProb: 0.004, Gain: 30, Recover: 12 * sim.Hour,
		OnFail: func(_ topology.NodeID, load float64, now sim.Time) {
			mu.Lock()
			failures = append(failures, failure{load: load, at: now})
			mu.Unlock()
		}}
	sc := &Scenario{Name: "cascade", Injections: []core.Injector{inj}}
	res := runScenario(t, sc, 3)
	if err := CheckInvariants(res); err != nil {
		t.Fatal(err)
	}
	if len(failures) == 0 {
		t.Fatal("hazard window produced no failures")
	}
	counts := res.Events.CountByType()
	if counts[events.Evacuate]+counts[events.EvacuateFailed] == 0 {
		t.Fatalf("failures displaced nobody: %v", counts)
	}

	// Load coupling: the paper-replica fleet is bin-packed, so failures
	// drawn from hazard(load) must land overwhelmingly on loaded hosts.
	var meanLoad float64
	rounds := map[sim.Time]bool{}
	for _, f := range failures {
		meanLoad += f.load
		rounds[f.at] = true
	}
	meanLoad /= float64(len(failures))
	if meanLoad < 0.3 {
		t.Fatalf("mean load at failure time %.2f — hazard is not load-coupled", meanLoad)
	}
	// Feedback: the cascade unfolds over rounds, not one burst.
	if len(failures) > 1 && len(rounds) < 2 {
		t.Fatalf("%d failures all landed in one round; no cascade", len(failures))
	}

	// Determinism per seed.
	again := runScenario(t, &Scenario{Name: "cascade", Injections: []core.Injector{
		&CascadingFailures{Start: sim.Day, Duration: 2 * sim.Day, Every: sim.Hour,
			BaseProb: 0.004, Gain: 30, Recover: 12 * sim.Hour}}}, 3)
	if counts[events.Evacuate] != again.Events.CountByType()[events.Evacuate] {
		t.Fatal("cascade outcome not deterministic per seed")
	}

	// Zero base probability: quiet fleet at any gain.
	quiet := runScenario(t, &Scenario{Name: "quiet", Injections: []core.Injector{
		&CascadingFailures{Start: sim.Day, Duration: 2 * sim.Day, Every: sim.Hour,
			BaseProb: 0, Gain: 1000}}}, 3)
	if n := quiet.Events.CountByType()[events.Evacuate]; n != 0 {
		t.Fatalf("zero base probability still evacuated %d VMs", n)
	}
}

// TestCascadingFailuresHazardCurve pins the hazard function itself:
// monotone in load, anchored at the base probability when idle, capped at
// certainty.
func TestCascadingFailuresHazardCurve(t *testing.T) {
	cf := CascadingFailures{BaseProb: 0.01, Gain: 30}
	if got := cf.hazard(0); got != 0.01 {
		t.Fatalf("hazard(0) = %g, want the base probability", got)
	}
	prev := -1.0
	for load := 0.0; load <= 1.0; load += 0.05 {
		p := cf.hazard(load)
		if p < prev {
			t.Fatalf("hazard not monotone: hazard(%.2f) = %g < %g", load, p, prev)
		}
		prev = p
	}
	if got := (CascadingFailures{BaseProb: 1, Gain: 1000}).hazard(1); got != 1 {
		t.Fatalf("hazard uncapped: %g", got)
	}
	if got := (CascadingFailures{BaseProb: 0, Gain: 1000}).hazard(1); got != 0 {
		t.Fatalf("zero base yields hazard %g at full load, want 0", got)
	}
	// A negative gain would invert the premise; Inject refuses it before
	// touching the simulation, and hazard floors at 0 regardless.
	if err := (CascadingFailures{BaseProb: 0.01, Gain: -40}).Inject(nil); err == nil {
		t.Fatal("negative gain accepted")
	}
	if got := (CascadingFailures{BaseProb: 0.5, Gain: -40}).hazard(1); got != 0 {
		t.Fatalf("negative hazard not floored: %g", got)
	}
}

// TestCapacityExpansionInvariants grows the region mid-run and audits the
// result: the new blocks exist with live hosts, the invariant suite still
// balances over the expanded fleet, and the new capacity actually absorbs
// load under arrival pressure.
func TestCapacityExpansionInvariants(t *testing.T) {
	sc := &Scenario{
		Name:   "ce",
		Phases: []workload.Phase{SurgePhase(sim.Day, 3*sim.Day, 4)},
		Injections: []core.Injector{
			CapacityExpansion{At: sim.Day, Nodes: 6, Blocks: 2, Every: 12 * sim.Hour},
		},
	}
	base, err := core.Run(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	res := runScenario(t, sc, 3)
	if err := CheckInvariants(res); err != nil {
		t.Fatal(err)
	}
	grown := res.Region.NodeCount() - base.Region.NodeCount()
	if grown != 12 {
		t.Fatalf("region grew by %d nodes, want 12 (2 blocks x 6)", grown)
	}
	// The expansion blocks are in service and at least one absorbed VMs.
	absorbed := 0
	found := 0
	for _, bb := range res.Region.BBs() {
		if !strings.Contains(string(bb.ID), "-exp") {
			continue
		}
		found++
		alloc := res.Fleet.BBAlloc(bb)
		if alloc.ActiveNodes != 6 {
			t.Fatalf("expansion block %s has %d active nodes, want 6", bb.ID, alloc.ActiveNodes)
		}
		absorbed += alloc.VMCount
	}
	if found != 2 {
		t.Fatalf("found %d expansion blocks, want 2", found)
	}
	if absorbed == 0 {
		t.Fatal("no VM ever landed on the expanded capacity under a 4x surge")
	}
}
