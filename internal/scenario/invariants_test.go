package scenario

import (
	"strings"
	"sync"
	"testing"

	"sapsim/internal/core"
	"sapsim/internal/sim"
	"sapsim/internal/vmmodel"
)

// drsMonotoneProbe hooks the DRS decision stream and records any migration
// whose destination was busier than its source at decision time.
type drsMonotoneProbe struct {
	mu         sync.Mutex
	decisions  int
	violations []string
}

func (p *drsMonotoneProbe) Name() string { return "drs-monotone-probe" }

func (p *drsMonotoneProbe) Inject(env *core.Env) error {
	if env.Result.DRS == nil {
		return nil
	}
	env.Result.DRS.OnDecide = func(vm *vmmodel.VM, srcCPUPct, dstCPUPct float64, now sim.Time) {
		p.mu.Lock()
		defer p.mu.Unlock()
		p.decisions++
		if dstCPUPct > srcCPUPct {
			p.violations = append(p.violations,
				vm.Flavor.Name+" at "+now.String())
		}
	}
	return nil
}

// TestDRSNeverMigratesTowardFullerHost asserts, across a stressed scenario
// run, that every DRS decision moves load from a busier host to a less
// busy one.
func TestDRSNeverMigratesTowardFullerHost(t *testing.T) {
	probe := &drsMonotoneProbe{}
	sc := &Scenario{Name: "drs-probe", Injections: []core.Injector{
		HostFailures{At: sim.Day, Fraction: 0.1, Recover: 12 * sim.Hour},
		probe,
	}}
	res := runScenario(t, sc, 3)
	if probe.decisions == 0 {
		t.Skip("no DRS decisions in this window; nothing to assert")
	}
	if len(probe.violations) > 0 {
		t.Fatalf("%d/%d DRS decisions moved toward a fuller host: %s",
			len(probe.violations), probe.decisions, strings.Join(probe.violations, ", "))
	}
	if res.DRSMigrations == 0 {
		t.Fatal("probe saw decisions but the run recorded no migrations")
	}
}

// TestInvariantsOnSteadyState pins the invariant suite on the plain run.
func TestInvariantsOnSteadyState(t *testing.T) {
	res, err := core.Run(testConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := CheckInvariants(res); err != nil {
		t.Fatal(err)
	}
}

// TestInvariantsDetectViolations corrupts a finished run and expects the
// checker to object — a checker that cannot fail proves nothing.
func TestInvariantsDetectViolations(t *testing.T) {
	res, err := core.Run(testConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	var victim *vmmodel.VM
	for _, h := range res.Fleet.Hosts() {
		if vms := h.VMs(); len(vms) > 0 {
			victim = vms[0]
			break
		}
	}
	if victim == nil {
		t.Fatal("no resident VM to corrupt")
	}
	victim.Node = nil // placement pointer now disagrees with residency
	if err := CheckInvariants(res); err == nil {
		t.Fatal("checker accepted a corrupted placement pointer")
	}
}
