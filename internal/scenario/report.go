package scenario

import (
	"encoding/csv"
	"fmt"
	"sort"
	"strings"

	"sapsim/internal/report"
)

// Aggregate is the seed-averaged view of one (scenario, variant) cell of a
// sweep.
type Aggregate struct {
	Scenario string
	Variant  string
	Seeds    int
	Errors   int

	LiveVMs             float64
	PackingMemPct       float64
	PackingVCPUPct      float64
	AttemptsPerSchedule float64
	PlacementFailures   float64
	Migrations          float64 // DRS + cross-BB + evacuations
	Evacuations         float64
	EvacFailures        float64
	Resizes             float64
	MeanContentionPct   float64
	MaxContentionPct    float64
}

// Aggregates folds a sweep's runs into per-(scenario, variant) means over
// seeds, in the result's deterministic order.
func Aggregates(sr *SweepResult) []Aggregate {
	var order []Key
	cells := map[Key]*Aggregate{}
	for _, r := range sr.Runs {
		k := Key{Scenario: r.Key.Scenario, Variant: r.Key.Variant}
		agg, ok := cells[k]
		if !ok {
			agg = &Aggregate{Scenario: k.Scenario, Variant: k.Variant}
			cells[k] = agg
			order = append(order, k)
		}
		if r.Err != "" {
			agg.Errors++
			continue
		}
		agg.Seeds++
		m := r.Metrics
		agg.LiveVMs += float64(m.LiveVMs)
		agg.PackingMemPct += m.PackingMemPct
		agg.PackingVCPUPct += m.PackingVCPUPct
		agg.AttemptsPerSchedule += m.AttemptsPerSchedule
		agg.PlacementFailures += float64(m.PlacementFailures)
		agg.Migrations += float64(m.DRSMigrations + m.CrossBBMoves + m.Evacuations)
		agg.Evacuations += float64(m.Evacuations)
		agg.EvacFailures += float64(m.EvacFailures)
		agg.Resizes += float64(m.Resizes)
		agg.MeanContentionPct += m.MeanContentionPct
		agg.MaxContentionPct += m.MaxContentionPct
	}
	out := make([]Aggregate, 0, len(order))
	for _, k := range order {
		agg := cells[k]
		if n := float64(agg.Seeds); n > 0 {
			agg.LiveVMs /= n
			agg.PackingMemPct /= n
			agg.PackingVCPUPct /= n
			agg.AttemptsPerSchedule /= n
			agg.PlacementFailures /= n
			agg.Migrations /= n
			agg.Evacuations /= n
			agg.EvacFailures /= n
			agg.Resizes /= n
			agg.MeanContentionPct /= n
			agg.MaxContentionPct /= n
		}
		out = append(out, *agg)
	}
	return out
}

// RunsCSV renders every run of the sweep as one CSV row, for downstream
// plotting. Rows go through encoding/csv: the free-form err column (from
// arbitrary injector errors) gets quoted properly.
func RunsCSV(sr *SweepResult) string {
	var b strings.Builder
	w := csv.NewWriter(&b)
	_ = w.Write([]string{
		"scenario", "variant", "seed", "err", "live_vms", "mem_alloc_pct",
		"vcpu_alloc_pct", "attempts_per_schedule", "placement_failures",
		"drs_migrations", "cross_bb_moves", "evacuations", "evac_failures",
		"resizes", "mean_contention_pct", "max_contention_pct",
	})
	for _, r := range sr.Runs {
		m := r.Metrics
		_ = w.Write([]string{
			r.Key.Scenario, r.Key.Variant, fmt.Sprintf("%d", r.Key.Seed), r.Err,
			fmt.Sprintf("%d", m.LiveVMs),
			fmt.Sprintf("%.4f", m.PackingMemPct),
			fmt.Sprintf("%.4f", m.PackingVCPUPct),
			fmt.Sprintf("%.4f", m.AttemptsPerSchedule),
			fmt.Sprintf("%d", m.PlacementFailures),
			fmt.Sprintf("%d", m.DRSMigrations),
			fmt.Sprintf("%d", m.CrossBBMoves),
			fmt.Sprintf("%d", m.Evacuations),
			fmt.Sprintf("%d", m.EvacFailures),
			fmt.Sprintf("%d", m.Resizes),
			fmt.Sprintf("%.4f", m.MeanContentionPct),
			fmt.Sprintf("%.4f", m.MaxContentionPct),
		})
	}
	w.Flush()
	return b.String()
}

// ScenarioNames returns the sweep's scenario names in first-seen
// (scenario-major) order; the first is the comparative baseline.
func ScenarioNames(sr *SweepResult) []string {
	var names []string
	seen := map[string]bool{}
	for _, r := range sr.Runs {
		if !seen[r.Key.Scenario] {
			seen[r.Key.Scenario] = true
			names = append(names, r.Key.Scenario)
		}
	}
	return names
}

// FilterScenarios returns the subset of runs whose scenario is in names,
// preserving the sweep's order — the slice a per-scenario report renders
// (pass the baseline plus one scenario to get that scenario's comparative
// page of a bundle).
func FilterScenarios(sr *SweepResult, names ...string) *SweepResult {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	out := &SweepResult{}
	for _, r := range sr.Runs {
		if want[r.Key.Scenario] {
			out.Runs = append(out.Runs, r)
		}
	}
	return out
}

// ArtifactDiff renders, for every (variant, seed) cell of the sweep, which
// of the full artifact set changed relative to the baseline scenario (the
// sweep's first) — headline metrics can agree while a heatmap shifted, so
// the diff works on per-artifact digests (Run.Digests, populated by
// Matrix.Fingerprint). Runs without digests are reported as not
// fingerprinted.
func ArtifactDiff(sr *SweepResult) string {
	if len(sr.Runs) == 0 {
		return "sweep: no runs\n"
	}
	baseline := sr.Runs[0].Key.Scenario
	baseRuns := map[Key]Run{}
	for _, r := range sr.Runs {
		if r.Key.Scenario == baseline {
			baseRuns[Key{Variant: r.Key.Variant, Seed: r.Key.Seed}] = r
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "artifact diff vs baseline scenario %q (SHA-256 per artifact)\n", baseline)
	for _, r := range sr.Runs {
		if r.Key.Scenario == baseline {
			continue
		}
		cell := fmt.Sprintf("%s/%s seed %d", r.Key.Scenario, r.Key.Variant, r.Key.Seed)
		base, ok := baseRuns[Key{Variant: r.Key.Variant, Seed: r.Key.Seed}]
		switch {
		case r.Err != "":
			fmt.Fprintf(&b, "  %-44s run failed: %s\n", cell, r.Err)
			continue
		case !ok || base.Err != "":
			fmt.Fprintf(&b, "  %-44s no baseline run to diff against\n", cell)
			continue
		case r.Digests == nil || base.Digests == nil:
			fmt.Fprintf(&b, "  %-44s not fingerprinted (set Matrix.Fingerprint / -diff)\n", cell)
			continue
		}
		var ids []string
		for id := range base.Digests {
			ids = append(ids, id)
		}
		for id := range r.Digests {
			if _, dup := base.Digests[id]; !dup {
				ids = append(ids, id)
			}
		}
		sort.Strings(ids)
		var changed []string
		for _, id := range ids {
			if base.Digests[id] != r.Digests[id] {
				changed = append(changed, id)
			}
		}
		if len(changed) == 0 {
			fmt.Fprintf(&b, "  %-44s identical (%d artifacts)\n", cell, len(ids))
			continue
		}
		fmt.Fprintf(&b, "  %-44s %d/%d changed: %s\n",
			cell, len(changed), len(ids), strings.Join(changed, " "))
	}
	return b.String()
}

// Comparative renders the sweep as per-variant tables of per-scenario
// deltas against the baseline scenario (the sweep's first) for the headline
// artifacts: packing efficiency, scheduling latency proxy, and migration
// counts.
func Comparative(sr *SweepResult) string {
	aggs := Aggregates(sr)
	if len(aggs) == 0 {
		return "sweep: no runs\n"
	}
	// Preserve first-seen order of variants; the baseline scenario is the
	// first scenario of the sweep.
	var variants []string
	byVariant := map[string][]Aggregate{}
	for _, a := range aggs {
		if _, ok := byVariant[a.Variant]; !ok {
			variants = append(variants, a.Variant)
		}
		byVariant[a.Variant] = append(byVariant[a.Variant], a)
	}

	errs := 0
	for _, r := range sr.Runs {
		if r.Err != "" {
			errs++
		}
	}
	var b strings.Builder
	fmt.Fprintf(&b, "sweep: %d runs (%d failed)\n", len(sr.Runs), errs)
	headers := []string{
		"scenario", "live_vms", "mem_alloc%", "Δmem", "attempts", "Δatt",
		"migrations", "Δmig", "evac", "lost", "no_valid_host", "mean_cont%", "max_cont%",
	}
	for _, v := range variants {
		rows := byVariant[v]
		base := rows[0]
		if base.Seeds == 0 {
			// Every baseline run failed: absolute columns still print,
			// but deltas against a zero-valued baseline would read as
			// fabricated measurements.
			fmt.Fprintf(&b, "\nvariant %s (baseline scenario %s FAILED in all %d runs; deltas omitted)\n",
				v, base.Scenario, base.Errors)
		} else {
			fmt.Fprintf(&b, "\nvariant %s (baseline scenario: %s)\n", v, base.Scenario)
		}
		delta := func(cur, ref float64) string {
			if base.Seeds == 0 {
				return ""
			}
			return report.Delta(cur - ref)
		}
		table := make([][]string, 0, len(rows))
		for _, a := range rows {
			table = append(table, []string{
				a.Scenario,
				fmt.Sprintf("%.1f", a.LiveVMs),
				fmt.Sprintf("%.2f", a.PackingMemPct),
				delta(a.PackingMemPct, base.PackingMemPct),
				fmt.Sprintf("%.3f", a.AttemptsPerSchedule),
				delta(a.AttemptsPerSchedule, base.AttemptsPerSchedule),
				fmt.Sprintf("%.1f", a.Migrations),
				delta(a.Migrations, base.Migrations),
				fmt.Sprintf("%.1f", a.Evacuations),
				fmt.Sprintf("%.1f", a.EvacFailures),
				fmt.Sprintf("%.1f", a.PlacementFailures),
				fmt.Sprintf("%.3f", a.MeanContentionPct),
				fmt.Sprintf("%.2f", a.MaxContentionPct),
			})
		}
		b.WriteString(report.Table(headers, table))
	}
	return b.String()
}
