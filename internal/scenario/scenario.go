// Package scenario is the declarative operational-event layer on top of the
// discrete-event engine. A Scenario composes injectable events — host
// failures and recoveries, building-block maintenance drains, AZ-scoped
// outages, demand surges and flavor-mix shifts, scheduled mass-resize waves
// — over the steady-state 30-day run that core.Run reproduces from the
// paper. Every injection derives its randomness from the run's seed, so
// scenario runs stay bit-for-bit deterministic per seed.
//
// The package also provides Sweep, a parallel matrix runner that executes
// (scenario × scheduler-config × seed) combinations across a bounded worker
// pool with per-run isolated telemetry stores and deterministic result
// ordering, plus a comparative report over the headline artifacts (packing
// efficiency, scheduling latency proxy, migration counts).
package scenario

import (
	"fmt"

	"sapsim/internal/core"
	"sapsim/internal/sim"
	"sapsim/internal/vmmodel"
	"sapsim/internal/workload"
)

// Scenario is a named bundle of operational events layered over a base
// configuration. Scenarios are stateless: the same Scenario value can
// configure many concurrent runs.
type Scenario struct {
	Name        string
	Description string
	// Phases shape the churn arrival process before workload generation
	// (demand surges, lulls, flavor-mix shifts).
	Phases []workload.Phase
	// Injections schedule operational events onto the engine once the
	// simulation is assembled (failures, drains, outages, resize waves).
	Injections []core.Injector
}

// Configure returns a copy of cfg with the scenario's phases and injections
// applied on top of whatever the config already carries.
func (s *Scenario) Configure(cfg core.Config) core.Config {
	if len(s.Phases) > 0 {
		cfg.ArrivalPhases = append(append([]workload.Phase{}, cfg.ArrivalPhases...), s.Phases...)
	}
	if len(s.Injections) > 0 {
		cfg.Injectors = append(append([]core.Injector{}, cfg.Injectors...), s.Injections...)
	}
	return cfg
}

// SurgePhase is a demand surge: arrival intensity scaled by mult over
// [from, to).
func SurgePhase(from, to sim.Time, mult float64) workload.Phase {
	return workload.Phase{From: from, To: to, RateMultiplier: mult}
}

// ClassShiftPhase shifts the flavor mix: arrivals of one workload class
// scaled by mult over [from, to), other classes unchanged.
func ClassShiftPhase(from, to sim.Time, class vmmodel.WorkloadClass, mult float64) workload.Phase {
	return workload.Phase{
		From: from, To: to, RateMultiplier: 1,
		ClassMultiplier: map[vmmodel.WorkloadClass]float64{class: mult},
	}
}

// Baseline is the steady-state run with no injected events — the reference
// every comparative report measures against.
func Baseline() *Scenario {
	return &Scenario{Name: "baseline", Description: "steady-state 30-day run, no operational events"}
}

// Builtin returns the scenario library, baseline first. Injection times are
// absolute days chosen for the default 30-day window; under a shorter
// horizon, events scheduled past it simply never fire (a 2-day run of
// az-outage degrades to the baseline), so pick a window that covers the
// scenarios under comparison.
func Builtin() []*Scenario {
	return []*Scenario{
		Baseline(),
		{
			Name:        "host-failures",
			Description: "2% of hosts fail on day 2 and recover two days later; residents evacuate through Nova",
			Injections: []core.Injector{
				HostFailures{At: 2 * sim.Day, Fraction: 0.02, Recover: 2 * sim.Day},
			},
		},
		{
			Name:        "az-outage",
			Description: "availability zone 1 goes dark for 12 hours on day 3",
			Injections: []core.Injector{
				AZOutage{At: 3 * sim.Day, AZIndex: 1, Duration: 12 * sim.Hour},
			},
		},
		{
			Name:        "maintenance-drain",
			Description: "rolling drain of one building block starting day 1, one node every 30 minutes",
			Injections: []core.Injector{
				MaintenanceDrain{At: 1 * sim.Day, BBIndex: 0, NodeEvery: 30 * sim.Minute, Hold: 4 * sim.Hour},
			},
		},
		{
			Name:        "demand-surge",
			Description: "3x arrival intensity between day 1 and day 3",
			Phases:      []workload.Phase{SurgePhase(1*sim.Day, 3*sim.Day, 3)},
		},
		{
			Name:        "hana-onboarding",
			Description: "HANA arrivals quadruple between day 1 and day 5 (flavor-mix shift)",
			Phases:      []workload.Phase{ClassShiftPhase(1*sim.Day, 5*sim.Day, vmmodel.HANA, 4)},
		},
		{
			Name:        "correlated-failures",
			Description: "three failure bursts inside one AZ's building blocks, 6 hours apart, half of each block down for a day",
			Injections: []core.Injector{
				CorrelatedFailures{At: 2 * sim.Day, Bursts: 3, Spacing: 6 * sim.Hour, Fraction: 0.5, Recover: sim.Day},
			},
		},
		{
			Name:        "capacity-expansion",
			Description: "two new general-purpose building blocks join a data center on days 1 and 2",
			Injections: []core.Injector{
				CapacityExpansion{At: 1 * sim.Day, Nodes: 8, Blocks: 2, Every: sim.Day},
			},
		},
		{
			Name:        "cascading-failures",
			Description: "load-coupled failure hazard over days 1-3: hot hosts fail more, evacuations heat the survivors",
			Injections: []core.Injector{
				CascadingFailures{Start: 1 * sim.Day, Duration: 2 * sim.Day, Every: sim.Hour,
					BaseProb: 0.001, Gain: 30, Recover: 12 * sim.Hour},
			},
		},
		{
			Name:        "resize-wave",
			Description: "mass-resize wave on day 2: 5% of live VMs change flavor within their class",
			Injections: []core.Injector{
				ResizeWave{At: 2 * sim.Day, Fraction: 0.05},
			},
		},
		{
			Name:        "black-friday",
			Description: "compound stress: demand surge plus host failures at the surge peak",
			Phases:      []workload.Phase{SurgePhase(1*sim.Day, 4*sim.Day, 4)},
			Injections: []core.Injector{
				HostFailures{At: 2 * sim.Day, Fraction: 0.01, Recover: sim.Day, Salt: 0xbf},
			},
		},
	}
}

// ByName looks up a builtin scenario.
func ByName(name string) (*Scenario, error) {
	for _, s := range Builtin() {
		if s.Name == name {
			return s, nil
		}
	}
	return nil, fmt.Errorf("scenario: unknown scenario %q", name)
}

// Names lists the builtin scenario names in order.
func Names() []string {
	b := Builtin()
	out := make([]string, len(b))
	for i, s := range b {
		out[i] = s.Name
	}
	return out
}
