package scenario

import (
	"reflect"
	"testing"

	"sapsim/internal/core"
	"sapsim/internal/events"
	"sapsim/internal/sim"
	"sapsim/internal/vmmodel"
	"sapsim/internal/workload"
)

// testConfig is a fast laptop config: ~18 hosts, 300 VMs, coarse sampling.
func testConfig(days int) core.Config {
	cfg := core.DefaultConfig(7)
	cfg.Scale = 0.01
	cfg.VMs = 300
	cfg.Days = days
	cfg.SampleEvery = 30 * sim.Minute
	cfg.VMSampleEvery = 6 * sim.Hour
	return cfg
}

func runScenario(t *testing.T, sc *Scenario, days int) *core.Result {
	t.Helper()
	res, err := core.Run(sc.Configure(testConfig(days)))
	if err != nil {
		t.Fatalf("%s: %v", sc.Name, err)
	}
	return res
}

func TestHostFailuresEvacuate(t *testing.T) {
	sc := &Scenario{Name: "hf", Injections: []core.Injector{
		HostFailures{At: sim.Day, Count: 2, Recover: sim.Day},
	}}
	res := runScenario(t, sc, 3)
	counts := res.Events.CountByType()
	if counts[events.Evacuate]+counts[events.EvacuateFailed] == 0 {
		t.Fatalf("expected evacuation events, got %v", counts)
	}
	// Recovery restores the fleet: no node still in maintenance.
	for _, h := range res.Fleet.Hosts() {
		if h.Node.Maintenance {
			t.Errorf("host %s still in maintenance after recovery", h.Node.ID)
		}
	}
	if err := CheckInvariants(res); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestHostFailuresPermanent(t *testing.T) {
	sc := &Scenario{Name: "hf-perm", Injections: []core.Injector{
		HostFailures{At: sim.Day, Count: 1}, // Recover == 0: never returns
	}}
	res := runScenario(t, sc, 2)
	down := 0
	for _, h := range res.Fleet.Hosts() {
		if h.Node.Maintenance {
			down++
		}
	}
	if down != 1 {
		t.Fatalf("expected exactly 1 permanently failed host, got %d", down)
	}
	if err := CheckInvariants(res); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestAZOutageTouchesWholeZone(t *testing.T) {
	sc := &Scenario{Name: "az", Injections: []core.Injector{
		AZOutage{At: sim.Day, AZIndex: 0, Duration: 6 * sim.Hour},
	}}
	res := runScenario(t, sc, 2)
	counts := res.Events.CountByType()
	if counts[events.Evacuate]+counts[events.EvacuateFailed] == 0 {
		t.Fatalf("expected the outage to displace VMs, got %v", counts)
	}
	for _, h := range res.Fleet.Hosts() {
		if h.Node.Maintenance {
			t.Errorf("host %s still down after the outage window", h.Node.ID)
		}
	}
	if err := CheckInvariants(res); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestMaintenanceDrainRestores(t *testing.T) {
	sc := &Scenario{Name: "drain", Injections: []core.Injector{
		MaintenanceDrain{At: sim.Day, BBIndex: 0, NodeEvery: 30 * sim.Minute, Hold: 2 * sim.Hour},
	}}
	res := runScenario(t, sc, 3)
	for _, h := range res.Fleet.Hosts() {
		if h.Node.Maintenance {
			t.Errorf("host %s not restored after drain", h.Node.ID)
		}
	}
	if err := CheckInvariants(res); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestResizeWave(t *testing.T) {
	base := testConfig(2)
	base.ResizeRate = 0 // isolate the wave from background resize churn
	sc := &Scenario{Name: "wave", Injections: []core.Injector{
		ResizeWave{At: sim.Day, Count: 20},
	}}
	res, err := core.Run(sc.Configure(base))
	if err != nil {
		t.Fatal(err)
	}
	if res.Resizes == 0 {
		t.Fatal("resize wave produced no resizes")
	}
	if got := res.Events.CountByType()[events.Resize]; got != res.Resizes {
		t.Fatalf("resize events %d != resize counter %d", got, res.Resizes)
	}
	if err := CheckInvariants(res); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestDemandSurgeRaisesArrivals(t *testing.T) {
	base := runScenario(t, Baseline(), 3)
	surge := runScenario(t, &Scenario{
		Name:   "surge",
		Phases: []workload.Phase{SurgePhase(sim.Day, 2*sim.Day, 4)},
	}, 3)
	baseCreates := base.Events.CountByType()[events.Create]
	surgeCreates := surge.Events.CountByType()[events.Create]
	if surgeCreates <= baseCreates {
		t.Fatalf("surge creates %d <= baseline creates %d", surgeCreates, baseCreates)
	}
}

func TestClassShiftOnlyMovesOneClass(t *testing.T) {
	// Suppressing general-purpose arrivals entirely must leave only HANA
	// churn.
	sc := &Scenario{Name: "shift", Phases: []workload.Phase{
		ClassShiftPhase(0, 30*sim.Day, vmmodel.General, 0),
	}}
	res := runScenario(t, sc, 2)
	for _, e := range res.Events.All() {
		if e.Type != events.Create {
			continue
		}
		f, ok := vmmodel.CatalogByName()[e.Flavor]
		if !ok {
			t.Fatalf("unknown flavor %q", e.Flavor)
		}
		if f.Class != vmmodel.HANA {
			t.Fatalf("general-purpose VM %s created during a full suppression phase", e.VM)
		}
	}
}

func TestScenarioDeterminismPerSeed(t *testing.T) {
	sc, err := ByName("black-friday")
	if err != nil {
		t.Fatal(err)
	}
	a := runScenario(t, sc, 3)
	b := runScenario(t, sc, 3)
	if !reflect.DeepEqual(a.Events.All(), b.Events.All()) {
		t.Fatal("same seed produced different event streams")
	}
	if !reflect.DeepEqual(Extract(a), Extract(b)) {
		t.Fatalf("same seed produced different metrics: %+v vs %+v", Extract(a), Extract(b))
	}
}

func TestBuiltinScenariosSatisfyInvariants(t *testing.T) {
	for _, sc := range Builtin() {
		sc := sc
		t.Run(sc.Name, func(t *testing.T) {
			t.Parallel()
			res := runScenario(t, sc, 3)
			if err := CheckInvariants(res); err != nil {
				t.Fatalf("invariants after %s: %v", sc.Name, err)
			}
		})
	}
}

// permaFailFirstDrainable permanently fails the first node of the building
// block MaintenanceDrain{BBIndex: 0} will later drain.
type permaFailFirstDrainable struct{}

func (permaFailFirstDrainable) Name() string { return "perma-fail" }

func (permaFailFirstDrainable) Inject(env *core.Env) error {
	_, err := env.Engine.Schedule(sim.Hour, func(now sim.Time) {
		for _, bb := range env.Region.BBs() {
			if bb.Reserved || len(bb.Nodes) <= 1 {
				continue
			}
			h, err := env.Fleet.Host(bb.Nodes[0].ID)
			if err != nil {
				panic(err)
			}
			failNode(env, h, now) // no restore: permanent
			return
		}
	})
	return err
}

// TestComposedInjectionsRespectPermanentFailures: a drain rolling over a
// building block with a permanently failed host must not resurrect it —
// out-of-service claims are reference-counted per node.
func TestComposedInjectionsRespectPermanentFailures(t *testing.T) {
	sc := &Scenario{Name: "compose", Injections: []core.Injector{
		permaFailFirstDrainable{},
		MaintenanceDrain{At: sim.Day, BBIndex: 0, NodeEvery: 30 * sim.Minute, Hold: 2 * sim.Hour},
	}}
	res := runScenario(t, sc, 3)
	var downIDs []string
	for _, h := range res.Fleet.Hosts() {
		if h.Node.Maintenance {
			downIDs = append(downIDs, string(h.Node.ID))
		}
	}
	if len(downIDs) != 1 {
		t.Fatalf("expected exactly the permanently failed host down, got %v", downIDs)
	}
	if err := CheckInvariants(res); err != nil {
		t.Fatalf("invariants: %v", err)
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("no-such-scenario"); err == nil {
		t.Fatal("expected error for unknown scenario")
	}
}
