package scenario

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"sapsim/internal/analysis"
	"sapsim/internal/core"
	"sapsim/internal/events"
	"sapsim/internal/exporter"
	"sapsim/internal/sim"
	"sapsim/internal/snapshot"
)

// Variant is one scheduler/policy configuration under comparison. Apply
// mutates a per-run copy of the base config; a nil Apply is the base config
// unchanged.
type Variant struct {
	Name  string
	Apply func(*core.Config)
}

// Matrix declares a sweep: every (scenario × variant × seed) combination
// runs once.
type Matrix struct {
	// Base is the config template; per-run copies get the scenario,
	// variant, and seed applied.
	Base core.Config
	// Scenarios to sweep; the first is the comparative baseline.
	// Defaults to {Baseline()} when empty.
	Scenarios []*Scenario
	// Variants to sweep; defaults to the unchanged base config.
	Variants []Variant
	// Seeds to sweep; defaults to {Base.Seed}.
	Seeds []uint64
	// Workers bounds the worker pool; 0 uses GOMAXPROCS. Runs are fully
	// isolated (own engine, fleet, telemetry store), so the worker count
	// never changes results or their order.
	Workers int
	// Branch enables warm-forked execution: cells sharing a (variant, seed)
	// pair whose scenarios do not reshape the arrival process run their
	// common steady-state prefix once, snapshot it, and fork per-scenario
	// branches from the warm state instead of replaying the prefix per cell.
	// The prefix ends at the earliest declared first effect across the
	// group's scenarios (see the injectors' FirstEffect methods).
	//
	// Branching preserves the simulation up to the fork point exactly; after
	// it, events a branch injects tie-break after same-instant events
	// already in flight (they carry later sequence numbers than a cold run
	// would assign), so a branched cell can differ from its cold twin in
	// exact same-nanosecond orderings. Metrics comparisons are unaffected;
	// leave Branch off when cells must be byte-identical to cold runs.
	Branch bool
	// Context cancels the sweep: in-flight cells unwind within one engine
	// tick and pending cells never start; both record the context's error
	// in their Run.Err slot, so the scenario-major result order survives
	// cancellation intact. Nil runs to completion.
	Context context.Context
	// OnCell observes cell lifecycle transitions and live per-cell
	// progress. It is invoked from the worker goroutines concurrently and
	// must be safe for concurrent use; it must not block (it runs on the
	// cells' engine hot loops).
	OnCell func(CellUpdate)
	// Fingerprint, when set, runs over each finished cell's Result and its
	// output lands in Run.Digests — e.g. sapsim.ArtifactDigests for
	// full artifact-set diffing between cells. It is invoked from the
	// worker goroutines concurrently and must be safe for concurrent use.
	Fingerprint func(*core.Result) (map[string]string, error)
	// OnResult observes each successfully finished cell's full Result —
	// including its engine self-profile (Result.Profile) — before the
	// result is reduced to Metrics. Wall-clock-dependent consumers (the
	// profiler) hang off this hook precisely so the SweepResult itself
	// stays byte-identical across machines and worker counts. It is
	// invoked from the worker goroutines concurrently and must be safe
	// for concurrent use.
	OnResult func(Key, *core.Result)
}

// CellState is a sweep cell's lifecycle phase as reported to OnCell.
type CellState int

const (
	// CellStarted fires once when a worker picks the cell up.
	CellStarted CellState = iota
	// CellRunning fires on the cell's progress heartbeat.
	CellRunning
	// CellFinished fires once on successful completion.
	CellFinished
	// CellFailed fires once when the cell's run errors.
	CellFailed
	// CellCanceled fires once when the matrix context cancels the cell.
	CellCanceled
)

// String renders the state for progress output.
func (s CellState) String() string {
	switch s {
	case CellStarted:
		return "started"
	case CellRunning:
		return "running"
	case CellFinished:
		return "finished"
	case CellFailed:
		return "failed"
	case CellCanceled:
		return "canceled"
	default:
		return "unknown"
	}
}

// CellUpdate is one OnCell notification.
type CellUpdate struct {
	Key   Key
	State CellState
	// Index is the cell's position in scenario-major order; Total the
	// matrix size.
	Index, Total int
	// Now/Horizon report simulated progress for CellRunning updates.
	Now, Horizon sim.Time
	// Err carries the failure or cancellation cause.
	Err string
}

// Key identifies one run of the matrix.
type Key struct {
	Scenario string
	Variant  string
	Seed     uint64
}

// Metrics are the headline artifacts extracted from one finished run, the
// basis of every scenario-vs-baseline comparison.
type Metrics struct {
	// LiveVMs counts VMs resident on hosts at the horizon.
	LiveVMs int
	// PackingMemPct / PackingVCPUPct are the fleet-wide allocation
	// efficiencies at the horizon (packing efficiency).
	PackingMemPct  float64
	PackingVCPUPct float64
	// AttemptsPerSchedule is (scheduled + retries) / scheduled — the
	// scheduling latency proxy: every retry is one more full
	// filter/weigh/claim round trip.
	AttemptsPerSchedule float64
	// PlacementFailures counts NoValidHost outcomes.
	PlacementFailures int
	// Migration activity.
	DRSMigrations int
	CrossBBMoves  int
	Evacuations   int
	EvacFailures  int
	Resizes       int
	// MeanContentionPct / MaxContentionPct summarize region-wide CPU
	// contention across the window.
	MeanContentionPct float64
	MaxContentionPct  float64
}

// Run is one finished cell of the matrix.
type Run struct {
	Key     Key
	Metrics Metrics
	// Digests holds the cell's artifact fingerprints (artifact ID →
	// SHA-256), populated when Matrix.Fingerprint is set.
	Digests map[string]string `json:",omitempty"`
	// Err is the run error, empty on success. A string (not error) so
	// results compare byte-for-byte across worker counts.
	Err string
}

// SweepResult holds every run in deterministic scenario-major order
// (scenario, then variant, then seed), independent of worker scheduling.
type SweepResult struct {
	Runs []Run
}

// ErrEmptyMatrix is returned when the matrix has nothing to run.
var ErrEmptyMatrix = errors.New("scenario: empty sweep matrix")

// Sweep executes the matrix across a bounded worker pool, driving each
// cell through its own step-driven core.Simulation (the engine loop behind
// the public Session API), and returns the runs in deterministic
// scenario-major order. Matrix.Context cancels in-flight cells mid-run;
// Matrix.OnCell streams live per-cell progress.
func Sweep(m Matrix) (*SweepResult, error) {
	scenarios := m.Scenarios
	if len(scenarios) == 0 {
		scenarios = []*Scenario{Baseline()}
	}
	variants := m.Variants
	if len(variants) == 0 {
		variants = []Variant{{Name: "default"}}
	}
	seeds := m.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{m.Base.Seed}
	}
	type groupKey struct {
		variant int
		seed    uint64
	}
	var groups map[groupKey]*warmGroup
	if m.Branch {
		groups = make(map[groupKey]*warmGroup)
		for vi, v := range variants {
			for _, seed := range seeds {
				wcfg := m.Base
				wcfg.Seed = seed
				if v.Apply != nil {
					v.Apply(&wcfg)
				}
				horizon := wcfg.Horizon()
				prefix := horizon
				members := 0
				for _, sc := range scenarios {
					t, ok := warmPrefix(sc, horizon)
					if !ok {
						continue
					}
					members++
					if t < prefix {
						prefix = t
					}
				}
				// Fork strictly before the first effect: ambient events at
				// the effect instant (sampling ticks land on the same round
				// timestamps injections use) must still be pending so the
				// branch orders against them the way a cold run would.
				prefix--
				// A warm prefix pays off only when at least two cells share
				// it and it covers a real slice of the run.
				if members < 2 || prefix <= 0 || prefix >= horizon {
					continue
				}
				groups[groupKey{vi, seed}] = &warmGroup{at: prefix, cfg: wcfg}
			}
		}
	}

	type job struct {
		sc      *Scenario
		variant Variant
		seed    uint64
		// group, when non-nil, is the warm-fork group this cell branches
		// from (Matrix.Branch).
		group *warmGroup
	}
	var jobs []job
	for _, sc := range scenarios {
		for vi, v := range variants {
			for _, seed := range seeds {
				j := job{sc: sc, variant: v, seed: seed}
				if g := groups[groupKey{vi, seed}]; g != nil {
					if _, ok := warmPrefix(sc, g.cfg.Horizon()); ok {
						j.group = g
					}
				}
				jobs = append(jobs, j)
			}
		}
	}
	if len(jobs) == 0 {
		return nil, ErrEmptyMatrix
	}

	workers := m.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	runs := make([]Run, len(jobs))
	notify := func(u CellUpdate) {
		if m.OnCell != nil {
			m.OnCell(u)
		}
	}
	execute := func(i int) {
		j := jobs[i]
		cfg := m.Base
		cfg.Seed = j.seed
		cfg = j.sc.Configure(cfg)
		if j.variant.Apply != nil {
			j.variant.Apply(&cfg)
		}
		key := Key{Scenario: j.sc.Name, Variant: j.variant.Name, Seed: j.seed}
		cell := CellUpdate{Key: key, Index: i, Total: len(jobs), Horizon: cfg.Horizon()}

		// A canceled matrix drains without starting further cells; the
		// result slot still records why this cell has no metrics.
		if m.Context != nil && m.Context.Err() != nil {
			runs[i] = Run{Key: key, Err: m.Context.Err().Error()}
			cell.State, cell.Err = CellCanceled, runs[i].Err
			notify(cell)
			return
		}

		// Each cell runs on its own step-driven engine loop — the same
		// core.Simulation that backs the public Session API — giving the
		// sweep per-cell context cancellation (checked before every engine
		// event) and a live per-tick progress stream.
		var hooks core.Hooks
		if m.OnCell != nil {
			total := len(jobs)
			horizon := cfg.Horizon()
			hooks.OnTick = func(now sim.Time) {
				notify(CellUpdate{Key: key, Index: i, Total: total,
					State: CellRunning, Now: now, Horizon: horizon})
			}
		}
		var interrupt func() error
		if m.Context != nil {
			interrupt = m.Context.Err
		}
		build := func() (*core.Simulation, error) { return core.NewSimulation(cfg, hooks) }
		if g := j.group; g != nil {
			// First cell of the group to arrive runs the shared prefix and
			// snapshots it; the rest block here until the snapshot exists.
			g.once.Do(func() {
				warm, err := core.NewSimulation(g.cfg, core.Hooks{})
				if err == nil {
					err = warm.AdvanceTo(g.at, interrupt)
				}
				if err == nil {
					g.snap, err = warm.Snapshot()
				}
				g.err = err
			})
			// A failed warm prefix (an unowned event from a custom injector,
			// or cancellation) degrades the cell to a cold run.
			if g.err == nil {
				bcfg := g.cfg
				if len(j.sc.Injections) > 0 {
					bcfg.Injectors = append(append([]core.Injector{}, g.cfg.Injectors...), j.sc.Injections...)
				}
				cfg = bcfg
				build = func() (*core.Simulation, error) {
					return core.RestoreSimulation(bcfg, hooks, g.snap)
				}
			}
		}
		simulation, err := build()
		if err == nil {
			cell.State = CellStarted
			notify(cell)
			err = simulation.AdvanceTo(cfg.Horizon(), interrupt)
		}
		if err != nil {
			runs[i] = Run{Key: key, Err: err.Error()}
			cell.Err = runs[i].Err
			if m.Context != nil && errors.Is(err, m.Context.Err()) {
				cell.State = CellCanceled
			} else {
				cell.State = CellFailed
			}
			notify(cell)
			return
		}
		run := Run{Key: key, Metrics: Extract(simulation.Result())}
		if m.OnResult != nil {
			m.OnResult(key, simulation.Result())
		}
		if m.Fingerprint != nil {
			digests, ferr := m.Fingerprint(simulation.Result())
			if ferr != nil {
				run.Err = "fingerprint: " + ferr.Error()
			}
			run.Digests = digests
		}
		runs[i] = run
		cell.State, cell.Now = CellFinished, cfg.Horizon()
		notify(cell)
	}

	if workers == 1 {
		for i := range jobs {
			execute(i)
		}
		return &SweepResult{Runs: runs}, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				execute(i)
			}
		}()
	}
	wg.Wait()
	return &SweepResult{Runs: runs}, nil
}

// warmGroup is the shared steady-state prefix of one (variant, seed) slice
// of a branched sweep: the first cell to execute runs the prefix once and
// snapshots it; every other cell of the group forks from the snapshot.
type warmGroup struct {
	once sync.Once
	// at is the fork point: the earliest first effect across the group's
	// scenarios.
	at sim.Time
	// cfg is the prefix configuration — base plus variant and seed, without
	// any scenario injections.
	cfg  core.Config
	snap *snapshot.Snapshot
	err  error
}

// firstEffecter is implemented by injectors that declare the simulated time
// of their earliest operational effect, enabling warm-forked sweeps.
type firstEffecter interface{ FirstEffect() sim.Time }

// warmPrefix reports how long the scenario's run is indistinguishable from
// the injection-free baseline: the minimum declared first effect across its
// injections (the horizon when it has none). ok is false when the scenario
// cannot fork from a shared prefix — it reshapes the arrival process
// (phases change workload generation from t=0), or carries an injection
// without a declared first effect or with one at t<=0 (inject-time
// topology mutation).
func warmPrefix(sc *Scenario, horizon sim.Time) (sim.Time, bool) {
	if len(sc.Phases) > 0 {
		return 0, false
	}
	t := horizon
	for _, inj := range sc.Injections {
		fe, ok := inj.(firstEffecter)
		if !ok {
			return 0, false
		}
		at := fe.FirstEffect()
		if at <= 0 {
			return 0, false
		}
		if at < t {
			t = at
		}
	}
	return t, true
}

// Extract computes the headline metrics from a finished run.
func Extract(res *core.Result) Metrics {
	m := Metrics{
		PlacementFailures: res.PlacementFailures,
		DRSMigrations:     res.DRSMigrations,
		CrossBBMoves:      res.CrossBBMoves,
		Resizes:           res.Resizes,
	}
	counts := res.Events.CountByType()
	m.Evacuations = counts[events.Evacuate]
	m.EvacFailures = counts[events.EvacuateFailed]

	packing := analysis.Packing(res.Fleet)
	m.LiveVMs = packing.VMs
	m.PackingMemPct = packing.MemAllocPct
	m.PackingVCPUPct = packing.VCPUAllocPct

	if s := res.SchedStats; s.Scheduled > 0 {
		m.AttemptsPerSchedule = float64(s.Scheduled+s.Retries) / float64(s.Scheduled)
	}

	days := analysis.DailyPooled(res.Store, exporter.MetricHostCPUCont, res.Config.Days)
	var sum float64
	n := 0
	for _, d := range days {
		if d.N == 0 {
			continue
		}
		sum += d.Mean
		n++
		if d.Max > m.MaxContentionPct {
			m.MaxContentionPct = d.Max
		}
	}
	if n > 0 {
		m.MeanContentionPct = sum / float64(n)
	}
	return m
}
