package scenario

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"

	"sapsim/internal/analysis"
	"sapsim/internal/core"
	"sapsim/internal/events"
	"sapsim/internal/exporter"
)

// Variant is one scheduler/policy configuration under comparison. Apply
// mutates a per-run copy of the base config; a nil Apply is the base config
// unchanged.
type Variant struct {
	Name  string
	Apply func(*core.Config)
}

// Matrix declares a sweep: every (scenario × variant × seed) combination
// runs once.
type Matrix struct {
	// Base is the config template; per-run copies get the scenario,
	// variant, and seed applied.
	Base core.Config
	// Scenarios to sweep; the first is the comparative baseline.
	// Defaults to {Baseline()} when empty.
	Scenarios []*Scenario
	// Variants to sweep; defaults to the unchanged base config.
	Variants []Variant
	// Seeds to sweep; defaults to {Base.Seed}.
	Seeds []uint64
	// Workers bounds the worker pool; 0 uses GOMAXPROCS. Runs are fully
	// isolated (own engine, fleet, telemetry store), so the worker count
	// never changes results or their order.
	Workers int
}

// Key identifies one run of the matrix.
type Key struct {
	Scenario string
	Variant  string
	Seed     uint64
}

// Metrics are the headline artifacts extracted from one finished run, the
// basis of every scenario-vs-baseline comparison.
type Metrics struct {
	// LiveVMs counts VMs resident on hosts at the horizon.
	LiveVMs int
	// PackingMemPct / PackingVCPUPct are the fleet-wide allocation
	// efficiencies at the horizon (packing efficiency).
	PackingMemPct  float64
	PackingVCPUPct float64
	// AttemptsPerSchedule is (scheduled + retries) / scheduled — the
	// scheduling latency proxy: every retry is one more full
	// filter/weigh/claim round trip.
	AttemptsPerSchedule float64
	// PlacementFailures counts NoValidHost outcomes.
	PlacementFailures int
	// Migration activity.
	DRSMigrations int
	CrossBBMoves  int
	Evacuations   int
	EvacFailures  int
	Resizes       int
	// MeanContentionPct / MaxContentionPct summarize region-wide CPU
	// contention across the window.
	MeanContentionPct float64
	MaxContentionPct  float64
}

// Run is one finished cell of the matrix.
type Run struct {
	Key     Key
	Metrics Metrics
	// Err is the run error, empty on success. A string (not error) so
	// results compare byte-for-byte across worker counts.
	Err string
}

// SweepResult holds every run in deterministic scenario-major order
// (scenario, then variant, then seed), independent of worker scheduling.
type SweepResult struct {
	Runs []Run
}

// ErrEmptyMatrix is returned when the matrix has nothing to run.
var ErrEmptyMatrix = errors.New("scenario: empty sweep matrix")

// Sweep executes the matrix across a bounded worker pool and returns the
// runs in deterministic order.
func Sweep(m Matrix) (*SweepResult, error) {
	scenarios := m.Scenarios
	if len(scenarios) == 0 {
		scenarios = []*Scenario{Baseline()}
	}
	variants := m.Variants
	if len(variants) == 0 {
		variants = []Variant{{Name: "default"}}
	}
	seeds := m.Seeds
	if len(seeds) == 0 {
		seeds = []uint64{m.Base.Seed}
	}
	type job struct {
		sc      *Scenario
		variant Variant
		seed    uint64
	}
	var jobs []job
	for _, sc := range scenarios {
		for _, v := range variants {
			for _, seed := range seeds {
				jobs = append(jobs, job{sc: sc, variant: v, seed: seed})
			}
		}
	}
	if len(jobs) == 0 {
		return nil, ErrEmptyMatrix
	}

	workers := m.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(jobs) {
		workers = len(jobs)
	}

	runs := make([]Run, len(jobs))
	execute := func(i int) {
		j := jobs[i]
		cfg := m.Base
		cfg.Seed = j.seed
		cfg = j.sc.Configure(cfg)
		if j.variant.Apply != nil {
			j.variant.Apply(&cfg)
		}
		key := Key{Scenario: j.sc.Name, Variant: j.variant.Name, Seed: j.seed}
		res, err := core.Run(cfg)
		if err != nil {
			runs[i] = Run{Key: key, Err: err.Error()}
			return
		}
		runs[i] = Run{Key: key, Metrics: Extract(res)}
	}

	if workers == 1 {
		for i := range jobs {
			execute(i)
		}
		return &SweepResult{Runs: runs}, nil
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(jobs) {
					return
				}
				execute(i)
			}
		}()
	}
	wg.Wait()
	return &SweepResult{Runs: runs}, nil
}

// Extract computes the headline metrics from a finished run.
func Extract(res *core.Result) Metrics {
	m := Metrics{
		PlacementFailures: res.PlacementFailures,
		DRSMigrations:     res.DRSMigrations,
		CrossBBMoves:      res.CrossBBMoves,
		Resizes:           res.Resizes,
	}
	counts := res.Events.CountByType()
	m.Evacuations = counts[events.Evacuate]
	m.EvacFailures = counts[events.EvacuateFailed]

	packing := analysis.Packing(res.Fleet)
	m.LiveVMs = packing.VMs
	m.PackingMemPct = packing.MemAllocPct
	m.PackingVCPUPct = packing.VCPUAllocPct

	if s := res.SchedStats; s.Scheduled > 0 {
		m.AttemptsPerSchedule = float64(s.Scheduled+s.Retries) / float64(s.Scheduled)
	}

	days := analysis.DailyPooled(res.Store, exporter.MetricHostCPUCont, res.Config.Days)
	var sum float64
	n := 0
	for _, d := range days {
		if d.N == 0 {
			continue
		}
		sum += d.Mean
		n++
		if d.Max > m.MaxContentionPct {
			m.MaxContentionPct = d.Max
		}
	}
	if n > 0 {
		m.MeanContentionPct = sum / float64(n)
	}
	return m
}
