package scenario

import (
	"context"
	"reflect"
	"strings"
	"sync"
	"testing"

	"sapsim/internal/core"
	"sapsim/internal/sim"
)

func testMatrix(workers int) Matrix {
	base := testConfig(2)
	return Matrix{
		Base: base,
		Scenarios: []*Scenario{
			Baseline(),
			{Name: "hf", Injections: []core.Injector{
				HostFailures{At: sim.Day, Count: 2, Recover: 6 * sim.Hour},
			}},
		},
		Variants: []Variant{
			{Name: "default"},
			{Name: "no-drs", Apply: func(cfg *core.Config) { cfg.DRS = false }},
		},
		Seeds:   []uint64{7, 11},
		Workers: workers,
	}
}

// TestSweepDeterministicAcrossWorkerCounts is the contract the runner
// guarantees: the same matrix on 1 worker and on 8 workers yields
// byte-identical per-run results in identical order.
func TestSweepDeterministicAcrossWorkerCounts(t *testing.T) {
	serial, err := Sweep(testMatrix(1))
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := Sweep(testMatrix(8))
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Runs) != 8 {
		t.Fatalf("expected 2x2x2 = 8 runs, got %d", len(serial.Runs))
	}
	if !reflect.DeepEqual(serial.Runs, parallel.Runs) {
		t.Fatalf("workers=1 and workers=8 diverged:\nserial:   %+v\nparallel: %+v",
			serial.Runs, parallel.Runs)
	}
	if a, b := Comparative(serial), Comparative(parallel); a != b {
		t.Fatalf("comparative reports diverged:\n%s\n---\n%s", a, b)
	}
}

func TestSweepRunOrderIsScenarioMajor(t *testing.T) {
	res, err := Sweep(testMatrix(4))
	if err != nil {
		t.Fatal(err)
	}
	want := []Key{
		{"baseline", "default", 7}, {"baseline", "default", 11},
		{"baseline", "no-drs", 7}, {"baseline", "no-drs", 11},
		{"hf", "default", 7}, {"hf", "default", 11},
		{"hf", "no-drs", 7}, {"hf", "no-drs", 11},
	}
	for i, r := range res.Runs {
		if r.Key != want[i] {
			t.Fatalf("run %d: got key %+v, want %+v", i, r.Key, want[i])
		}
		if r.Err != "" {
			t.Errorf("run %+v failed: %s", r.Key, r.Err)
		}
	}
}

func TestSweepDefaultsFillIn(t *testing.T) {
	res, err := Sweep(Matrix{Base: testConfig(1)})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 1 {
		t.Fatalf("expected the defaulted 1x1x1 matrix, got %d runs", len(res.Runs))
	}
	k := res.Runs[0].Key
	if k.Scenario != "baseline" || k.Variant != "default" || k.Seed != testConfig(1).Seed {
		t.Fatalf("unexpected defaulted key %+v", k)
	}
}

func TestSweepIsolatesTelemetryPerRun(t *testing.T) {
	// Two seeds of the same scenario must not share stores: their sample
	// counts are independent and each run's metrics derive only from its
	// own store. A shared store would double counts deterministically.
	m := Matrix{Base: testConfig(1), Seeds: []uint64{3, 4}, Workers: 2}
	res, err := Sweep(m)
	if err != nil {
		t.Fatal(err)
	}
	single, err := Sweep(Matrix{Base: testConfig(1), Seeds: []uint64{3}})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Runs[0].Metrics, single.Runs[0].Metrics) {
		t.Fatalf("seed 3 metrics differ when run alongside seed 4:\n%+v\n%+v",
			res.Runs[0].Metrics, single.Runs[0].Metrics)
	}
}

// TestSweepCancellation: canceling the matrix context mid-sweep stops
// in-flight cells within a tick and skips pending ones, while the result
// slice keeps its full length and deterministic scenario-major key order —
// every cell either carries metrics or the context's error, never garbage.
func TestSweepCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	m := testMatrix(2)
	m.Context = ctx
	var once sync.Once
	m.OnCell = func(u CellUpdate) {
		// Cancel as soon as the first cell reports any progress: later
		// cells must unwind or never start.
		if u.State == CellRunning || u.State == CellFinished {
			once.Do(cancel)
		}
	}
	res, err := Sweep(m)
	if err != nil {
		t.Fatal(err)
	}
	want := []Key{
		{"baseline", "default", 7}, {"baseline", "default", 11},
		{"baseline", "no-drs", 7}, {"baseline", "no-drs", 11},
		{"hf", "default", 7}, {"hf", "default", 11},
		{"hf", "no-drs", 7}, {"hf", "no-drs", 11},
	}
	if len(res.Runs) != len(want) {
		t.Fatalf("got %d runs, want %d", len(res.Runs), len(want))
	}
	canceled := 0
	for i, r := range res.Runs {
		if r.Key != want[i] {
			t.Fatalf("run %d: got key %+v, want %+v (order corrupted by cancellation)", i, r.Key, want[i])
		}
		if r.Err == "" {
			continue
		}
		if !strings.Contains(r.Err, context.Canceled.Error()) {
			t.Errorf("run %+v: unexpected error %q", r.Key, r.Err)
		}
		if (r.Metrics != Metrics{}) {
			t.Errorf("run %+v: canceled cell carries metrics %+v", r.Key, r.Metrics)
		}
		canceled++
	}
	if canceled == 0 {
		t.Error("cancellation canceled no cells")
	}
}

// TestSweepPreCanceledContext: a context canceled before Sweep starts runs
// nothing, but still returns every slot in order with the context error.
func TestSweepPreCanceledContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := testMatrix(4)
	m.Context = ctx
	res, err := Sweep(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Runs) != 8 {
		t.Fatalf("got %d runs, want 8", len(res.Runs))
	}
	for _, r := range res.Runs {
		if !strings.Contains(r.Err, context.Canceled.Error()) {
			t.Errorf("run %+v: err = %q, want context.Canceled", r.Key, r.Err)
		}
	}
}

// TestSweepOnCellLifecycle: every cell reports started → running → finished
// on a successful sweep, with coherent indexes.
func TestSweepOnCellLifecycle(t *testing.T) {
	var mu sync.Mutex
	states := make(map[Key][]CellState)
	m := Matrix{
		Base:    testConfig(1),
		Seeds:   []uint64{7, 11},
		Workers: 2,
		OnCell: func(u CellUpdate) {
			if u.Total != 2 || u.Index < 0 || u.Index >= 2 {
				t.Errorf("bad cell index %d/%d", u.Index, u.Total)
			}
			mu.Lock()
			states[u.Key] = append(states[u.Key], u.State)
			mu.Unlock()
		},
	}
	res, err := Sweep(m)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range res.Runs {
		if r.Err != "" {
			t.Fatalf("run %+v failed: %s", r.Key, r.Err)
		}
		seq := states[r.Key]
		if len(seq) < 3 {
			t.Fatalf("cell %+v saw only %v", r.Key, seq)
		}
		if seq[0] != CellStarted {
			t.Errorf("cell %+v first state = %v, want started", r.Key, seq[0])
		}
		if seq[len(seq)-1] != CellFinished {
			t.Errorf("cell %+v last state = %v, want finished", r.Key, seq[len(seq)-1])
		}
		for _, st := range seq[1 : len(seq)-1] {
			if st != CellRunning {
				t.Errorf("cell %+v intermediate state = %v, want running", r.Key, st)
			}
		}
	}
}

// TestSweepBranchedMatchesCold: warm-forked execution (Branch) must
// reproduce the cold sweep's results for this matrix — the baseline cells
// are exact seq-preserving replays, and the host-failure cells' branch
// injections order against coincident ambient events the way their cold
// counterparts do. Branched sweeps must also stay deterministic across
// worker counts.
func TestSweepBranchedMatchesCold(t *testing.T) {
	cold, err := Sweep(testMatrix(2))
	if err != nil {
		t.Fatal(err)
	}
	warm := testMatrix(4)
	warm.Branch = true
	branched, err := Sweep(warm)
	if err != nil {
		t.Fatal(err)
	}
	if len(branched.Runs) != len(cold.Runs) {
		t.Fatalf("branched sweep has %d runs, cold has %d", len(branched.Runs), len(cold.Runs))
	}
	for i := range cold.Runs {
		if !reflect.DeepEqual(cold.Runs[i], branched.Runs[i]) {
			t.Errorf("cell %+v diverged under branching:\n  cold:     %+v\n  branched: %+v",
				cold.Runs[i].Key, cold.Runs[i], branched.Runs[i])
		}
	}
	serial := testMatrix(1)
	serial.Branch = true
	again, err := Sweep(serial)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(again.Runs, branched.Runs) {
		t.Fatal("branched sweep is not deterministic across worker counts")
	}
}

func TestComparativeReportShape(t *testing.T) {
	res, err := Sweep(testMatrix(4))
	if err != nil {
		t.Fatal(err)
	}
	text := Comparative(res)
	for _, want := range []string{
		"sweep: 8 runs (0 failed)",
		"variant default (baseline scenario: baseline)",
		"variant no-drs (baseline scenario: baseline)",
		"Δmem", "Δatt", "Δmig", "hf",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("report missing %q:\n%s", want, text)
		}
	}
}

func TestAggregatesAverageOverSeeds(t *testing.T) {
	res, err := Sweep(testMatrix(2))
	if err != nil {
		t.Fatal(err)
	}
	aggs := Aggregates(res)
	if len(aggs) != 4 {
		t.Fatalf("expected 4 (scenario x variant) cells, got %d", len(aggs))
	}
	for _, a := range aggs {
		if a.Seeds != 2 || a.Errors != 0 {
			t.Fatalf("cell %s/%s: seeds=%d errors=%d", a.Scenario, a.Variant, a.Seeds, a.Errors)
		}
	}
	// Hand-average one metric for the first cell.
	var sum float64
	for _, r := range res.Runs[:2] {
		sum += r.Metrics.PackingMemPct
	}
	if got, want := aggs[0].PackingMemPct, sum/2; got != want {
		t.Fatalf("aggregate mem packing %v != hand-computed %v", got, want)
	}
}
