package scenario

import (
	"fmt"

	"sapsim/internal/core"
	"sapsim/internal/nova"
)

// BuiltinVariants returns the scheduler/policy configurations the paper's
// discussion makes interesting to compare: the production default, DRS off,
// the external cross-BB rebalancer on, the Sec. 7 holistic node-fit
// ablation, packing general-purpose workloads, and the contention-aware
// weigher fed by live telemetry.
func BuiltinVariants() []Variant {
	return []Variant{
		{Name: "default"},
		{Name: "no-drs", Apply: func(cfg *core.Config) { cfg.DRS = false }},
		{Name: "cross-bb", Apply: func(cfg *core.Config) { cfg.CrossBB = true }},
		{Name: "holistic", Apply: func(cfg *core.Config) { cfg.HolisticNodeFit = true }},
		{Name: "pack-general", Apply: func(cfg *core.Config) {
			cfg.Scheduler.GeneralNodePolicy = nova.PackNodes
		}},
		{Name: "contention-aware", Apply: func(cfg *core.Config) { cfg.ContentionFeed = true }},
	}
}

// VariantByName looks up a builtin variant.
func VariantByName(name string) (Variant, error) {
	for _, v := range BuiltinVariants() {
		if v.Name == name {
			return v, nil
		}
	}
	return Variant{}, fmt.Errorf("scenario: unknown variant %q", name)
}
