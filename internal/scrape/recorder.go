package scrape

import (
	"context"
	"encoding/csv"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"path/filepath"
	"strconv"
	"time"

	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
)

// FleetDataset is the file name a Recorder writes inside its directory.
// The file is a standard dataset CSV (metric,ts_seconds,value,labels), so
// dataset.Read loads it back into a telemetry store for post-sweep
// analysis.
const FleetDataset = "fleet.csv"

// Recorder is the fleet flight recorder: it polls a set of Prometheus
// /metrics endpoints at a fixed wall-clock cadence and records every
// sample twice — into an in-memory telemetry store for live queries, and
// appended to an on-disk dataset CSV that survives the recorder (and
// whatever it was watching) crashing. Sample timestamps are wall-clock
// seconds since the recording started, so a post-mortem replay of the
// dataset lines up with the sweep's own duration.
//
// Each sample gains an "instance" label carrying the target's host:port,
// so one recording distinguishes the dispatcher from every worker even
// when they export the same metric names.
type Recorder struct {
	// Targets are the /metrics URLs to poll each round.
	Targets []string
	// Every is the polling cadence; one second when unset.
	Every time.Duration
	// Store receives the samples; a fresh store is created when nil.
	Store *telemetry.Store
	// Client is the HTTP client; http.DefaultClient when nil.
	Client *http.Client
	// Logf reports skipped scrapes (target down, malformed exposition).
	// Silent when nil. A dead target never aborts the recording — flight
	// recorders keep running through the crash they exist to explain.
	Logf func(format string, args ...any)
	// Now is the clock; time.Now when nil.
	Now func() time.Time
}

// Recording is an open recorder session bound to a directory. Rounds
// append to the dataset as they happen; rows already written survive a
// kill at any point.
type Recording struct {
	r       *Recorder
	store   *telemetry.Store
	client  *http.Client
	now     func() time.Time
	start   time.Time
	base    sim.Time // timestamp offset when resuming an existing dataset
	f       *os.File
	cw      *csv.Writer
	rounds  int
	samples int
}

// Open prepares a recording in dir, creating it if needed. The dataset
// file is opened in append mode: re-opening an existing recording
// continues it rather than truncating history.
func (r *Recorder) Open(dir string) (*Recording, error) {
	if len(r.Targets) == 0 {
		return nil, fmt.Errorf("recorder: no targets")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("recorder: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(dir, FleetDataset), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("recorder: %w", err)
	}
	rec := &Recording{
		r:      r,
		store:  r.Store,
		client: r.Client,
		now:    r.Now,
		f:      f,
		cw:     csv.NewWriter(f),
	}
	if rec.store == nil {
		rec.store = telemetry.NewStore()
	}
	if rec.client == nil {
		rec.client = http.DefaultClient
	}
	if rec.now == nil {
		rec.now = time.Now
	}
	rec.start = rec.now()
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("recorder: %w", err)
	}
	if st.Size() == 0 {
		if err := rec.cw.Write([]string{"metric", "ts_seconds", "value", "labels"}); err != nil {
			f.Close()
			return nil, fmt.Errorf("recorder: %w", err)
		}
	} else {
		// Resuming an existing recording: new timestamps must stay
		// strictly after everything already on disk, or reloading the
		// dataset would trip the store's out-of-order check.
		base, err := datasetHighWater(filepath.Join(dir, FleetDataset))
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("recorder: resuming %s: %w", FleetDataset, err)
		}
		rec.base = base + sim.Time(time.Millisecond)
	}
	return rec, nil
}

// Store returns the in-memory store the recording feeds.
func (rec *Recording) Store() *telemetry.Store { return rec.store }

// Rounds reports how many polling rounds have completed.
func (rec *Recording) Rounds() int { return rec.rounds }

// Samples reports how many samples have been recorded in total.
func (rec *Recording) Samples() int { return rec.samples }

// Round polls every target once, stamping all samples of the round with
// the same timestamp (wall time elapsed since Open). Unreachable targets
// are logged and skipped; the round still lands for the rest of the
// fleet. The dataset file is flushed and fsynced before Round returns,
// so a crash loses at most the in-flight round.
func (rec *Recording) Round() (int, error) {
	t := rec.base + sim.Time(rec.now().Sub(rec.start))
	n := 0
	for _, target := range rec.r.Targets {
		got, err := rec.scrape(target, t)
		n += got
		if err != nil {
			rec.logf("recorder: %v", err)
		}
	}
	rec.cw.Flush()
	if err := rec.cw.Error(); err != nil {
		return n, fmt.Errorf("recorder: %w", err)
	}
	if err := rec.f.Sync(); err != nil {
		return n, fmt.Errorf("recorder: %w", err)
	}
	rec.rounds++
	rec.samples += n
	return n, nil
}

// scrape pulls one target and records its samples at time t. Partial
// results count: rows written before a mid-body parse error stay.
func (rec *Recording) scrape(target string, t sim.Time) (int, error) {
	resp, err := rec.client.Get(target)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", target, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("%s: status %d", target, resp.StatusCode)
	}
	samples, err := Parse(resp.Body)
	if err != nil {
		return 0, fmt.Errorf("%s: %w", target, err)
	}
	instance := instanceLabel(target)
	n := 0
	for _, smp := range samples {
		labels := smp.Labels.With("instance", instance)
		// Append first, write second: a sample the store rejects (e.g. a
		// duplicate series within one exposition body) must not reach the
		// dataset either, or reloading it with dataset.Read would fail on
		// the same rejection.
		if err := rec.store.Append(smp.Name, labels, t, smp.Value); err != nil {
			rec.logf("recorder: %s: %s%s: %v", target, smp.Name, labels, err)
			continue
		}
		if err := rec.cw.Write([]string{
			smp.Name,
			strconv.FormatFloat(t.Seconds(), 'f', -1, 64),
			strconv.FormatFloat(smp.Value, 'g', -1, 64),
			flatLabels(labels),
		}); err != nil {
			return n, err
		}
		n++
	}
	return n, nil
}

// Close flushes and closes the dataset file.
func (rec *Recording) Close() error {
	rec.cw.Flush()
	werr := rec.cw.Error()
	if err := rec.f.Close(); err != nil {
		return err
	}
	return werr
}

func (rec *Recording) logf(format string, args ...any) {
	if rec.r.Logf != nil {
		rec.r.Logf(format, args...)
	}
}

// Run records into dir until ctx is canceled: one round immediately,
// then one per cadence tick. Scrape failures are logged and survived;
// only dataset I/O errors abort the recording.
func (r *Recorder) Run(ctx context.Context, dir string) error {
	rec, err := r.Open(dir)
	if err != nil {
		return err
	}
	defer rec.Close()
	every := r.Every
	if every <= 0 {
		every = time.Second
	}
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		if _, err := rec.Round(); err != nil {
			return err
		}
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
	}
}

// datasetHighWater scans a dataset CSV for its maximum timestamp.
func datasetHighWater(path string) (sim.Time, error) {
	f, err := os.Open(path)
	if err != nil {
		return 0, err
	}
	defer f.Close()
	cr := csv.NewReader(f)
	cr.FieldsPerRecord = 4
	if _, err := cr.Read(); err != nil { // header
		return 0, err
	}
	var max sim.Time
	for {
		row, err := cr.Read()
		if err == io.EOF {
			return max, nil
		}
		if err != nil {
			return 0, err
		}
		secs, err := strconv.ParseFloat(row[1], 64)
		if err != nil {
			return 0, fmt.Errorf("bad timestamp %q", row[1])
		}
		if t := sim.Time(secs * float64(sim.Second)); t > max {
			max = t
		}
	}
}

// instanceLabel derives the "instance" label value from a target URL:
// its host:port, or the raw string when it does not parse.
func instanceLabel(target string) string {
	if u, err := url.Parse(target); err == nil && u.Host != "" {
		return u.Host
	}
	return target
}

// flatLabels renders a label set in the dataset CSV form (k=v;k2=v2).
func flatLabels(l telemetry.Labels) string {
	pairs := l.Pairs()
	if len(pairs) == 0 {
		return ""
	}
	out := make([]byte, 0, 64)
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			out = append(out, ';')
		}
		out = append(out, pairs[i]...)
		out = append(out, '=')
		out = append(out, pairs[i+1]...)
	}
	return string(out)
}
