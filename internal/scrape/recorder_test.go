package scrape

import (
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"sapsim/internal/dataset"
	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
)

// metricsServer serves a fixed exposition body, with a switch to start
// failing mid-recording.
type metricsServer struct {
	mu   sync.Mutex
	body string
	dead bool
}

func (m *metricsServer) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.dead {
		http.Error(w, "gone", http.StatusServiceUnavailable)
		return
	}
	fmt.Fprint(w, m.body)
}

func (m *metricsServer) set(body string, dead bool) {
	m.mu.Lock()
	m.body = body
	m.dead = dead
	m.mu.Unlock()
}

func TestRecorderRecordsFleet(t *testing.T) {
	disp := &metricsServer{body: "dispatch_queue_jobs{state=\"queued\"} 4\n"}
	work := &metricsServer{body: "worker_capacity 1\nworker_inflight 0\n"}
	dispSrv := httptest.NewServer(disp)
	defer dispSrv.Close()
	workSrv := httptest.NewServer(work)
	defer workSrv.Close()

	clock := time.Unix(5000, 0)
	var skipped []string
	rec, err := (&Recorder{
		Targets: []string{dispSrv.URL, workSrv.URL},
		Logf:    func(f string, a ...any) { skipped = append(skipped, fmt.Sprintf(f, a...)) },
		Now:     func() time.Time { return clock },
	}).Open(t.TempDir() + "/fleet")
	if err != nil {
		t.Fatal(err)
	}

	if n, err := rec.Round(); err != nil || n != 3 {
		t.Fatalf("round 1: %d samples, %v; want 3, nil", n, err)
	}
	clock = clock.Add(time.Second)
	disp.set("dispatch_queue_jobs{state=\"queued\"} 2\n", false)
	work.set("worker_capacity 1\nworker_inflight 1\n", false)
	if n, err := rec.Round(); err != nil || n != 3 {
		t.Fatalf("round 2: %d samples, %v; want 3, nil", n, err)
	}
	// One target dies; the round must still land for the survivor.
	clock = clock.Add(time.Second)
	disp.set("", true)
	if n, err := rec.Round(); err != nil || n != 2 {
		t.Fatalf("round 3: %d samples, %v; want 2, nil", n, err)
	}
	if len(skipped) != 1 || !strings.Contains(skipped[0], "status 503") {
		t.Errorf("skip log = %q, want one 503 entry", skipped)
	}
	if rec.Rounds() != 3 || rec.Samples() != 8 {
		t.Errorf("counters = %d rounds, %d samples; want 3, 8", rec.Rounds(), rec.Samples())
	}

	// The in-memory store distinguishes targets by instance label.
	workerHost := strings.TrimPrefix(workSrv.URL, "http://")
	series := rec.Store().Select("worker_inflight",
		telemetry.Matcher{Name: "instance", Value: workerHost})
	if len(series) != 1 || len(series[0].Samples) != 3 {
		t.Fatalf("worker_inflight series = %+v, want 1 series with 3 samples", series)
	}
	if got := series[0].Samples[2]; got.T != 2*sim.Second || got.V != 1 {
		t.Errorf("sample 3 = %+v, want {2s 1}", got)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestRecorderDatasetDurableAndReloadable: rows hit the disk at every
// round boundary (a killed recorder loses nothing committed), and the
// file reloads through dataset.Read into a store equivalent to the live
// one.
func TestRecorderDatasetDurableAndReloadable(t *testing.T) {
	srv := httptest.NewServer(&metricsServer{body: "m{k=\"v\"} 7\n"})
	defer srv.Close()
	dir := t.TempDir()
	clock := time.Unix(0, 0)
	r := &Recorder{Targets: []string{srv.URL}, Now: func() time.Time { return clock }}
	rec, err := r.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec.Round(); err != nil {
		t.Fatal(err)
	}
	// Read the file back WITHOUT closing: simulates recovering the
	// dataset after the recorder was killed.
	mid, err := os.ReadFile(filepath.Join(dir, FleetDataset))
	if err != nil {
		t.Fatal(err)
	}
	st, err := dataset.Read(strings.NewReader(string(mid)))
	if err != nil {
		t.Fatalf("mid-recording dataset unreadable: %v", err)
	}
	if got := st.Select("m"); len(got) != 1 || len(got[0].Samples) != 1 {
		t.Fatalf("mid-recording store = %+v, want 1 series, 1 sample", got)
	}

	clock = clock.Add(2 * time.Second)
	if _, err := rec.Round(); err != nil {
		t.Fatal(err)
	}
	if err := rec.Close(); err != nil {
		t.Fatal(err)
	}

	// Re-opening the same directory appends; no second header, history
	// kept.
	clock = clock.Add(time.Second)
	rec2, err := r.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := rec2.Round(); err != nil {
		t.Fatal(err)
	}
	if err := rec2.Close(); err != nil {
		t.Fatal(err)
	}

	f, err := os.Open(filepath.Join(dir, FleetDataset))
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	st2, err := dataset.Read(f)
	if err != nil {
		t.Fatal(err)
	}
	series := st2.Select("m")
	if len(series) != 1 {
		t.Fatalf("reloaded series = %d, want 1", len(series))
	}
	// The second recording resumed past the file's high-water mark, so
	// all three rounds survive in order: 0s, 2s, 2s + 1ms.
	if len(series[0].Samples) != 3 {
		t.Fatalf("reloaded samples = %+v, want 3", series[0].Samples)
	}
	if got := series[0].Samples[2].T; got != 2*sim.Second+sim.Time(time.Millisecond) {
		t.Errorf("resumed sample at %v, want 2.001s", got)
	}
	host := strings.TrimPrefix(srv.URL, "http://")
	if series[0].Labels.Get("instance") != host {
		t.Errorf("instance label = %q, want %q", series[0].Labels.Get("instance"), host)
	}
}

func TestRecorderRunStopsOnCancel(t *testing.T) {
	srv := httptest.NewServer(&metricsServer{body: "m 1\n"})
	defer srv.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	r := &Recorder{Targets: []string{srv.URL}, Every: time.Hour}
	dir := t.TempDir()
	if err := r.Run(ctx, dir); err != nil {
		t.Fatal(err)
	}
	// Even a canceled context gets one round: flight recorders capture
	// at least the moment they were switched on.
	data, err := os.ReadFile(filepath.Join(dir, FleetDataset))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), ",1,instance=") || !strings.HasPrefix(string(data), "metric,ts_seconds,value,labels\nm,") {
		t.Errorf("dataset missing the round-0 sample:\n%s", data)
	}
}

func TestRecorderNoTargets(t *testing.T) {
	if _, err := (&Recorder{}).Open(t.TempDir()); err == nil {
		t.Fatal("recorder with no targets opened")
	}
}

// BenchmarkScrapeIngest measures the telemetry store's ingest path under
// fleet pressure: N simulated worker /metrics endpoints scraped
// concurrently into one shared store, the way the flight recorder and
// dispatchd's own scrape loop drive it. Each scrape batches through one
// Appender commit, so the contended cost is shard-lock acquisition, not
// per-sample locking.
func BenchmarkScrapeIngest(b *testing.B) {
	const workers = 8
	const seriesPerWorker = 128
	servers := make([]*httptest.Server, workers)
	for w := 0; w < workers; w++ {
		var body strings.Builder
		for i := 0; i < seriesPerWorker; i++ {
			fmt.Fprintf(&body, "worker_cell_seconds{worker=\"w%d\",cell=\"c%d\"} %d.5\n", w, i, i)
		}
		srv := httptest.NewServer(&metricsServer{body: body.String()})
		defer srv.Close()
		servers[w] = srv
	}
	store := telemetry.NewStore()
	s := &Scraper{Store: store}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		now := sim.Time(i+1) * sim.Second
		var wg sync.WaitGroup
		for _, srv := range servers {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				if _, err := s.ScrapeTarget(url, now); err != nil {
					b.Error(err)
				}
			}(srv.URL + "/metrics")
		}
		wg.Wait()
	}
	b.ReportMetric(float64(workers*seriesPerWorker), "samples/op")
}
