// Package scrape implements the Prometheus pull path: parsing the text
// exposition format and appending scraped samples into the telemetry store.
// Together with internal/exporter it closes the measurement loop of Sec. 4
// (exporter → scrape → TSDB → analysis).
package scrape

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"

	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
)

// ParsedSample is one exposition line: metric name, labels, value.
type ParsedSample struct {
	Name   string
	Labels telemetry.Labels
	Value  float64
}

// Parse reads the Prometheus text format, ignoring comments and blank
// lines. It supports the gauge subset the exporter emits.
func Parse(r io.Reader) ([]ParsedSample, error) {
	var out []ParsedSample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseLine(line)
		if err != nil {
			return nil, fmt.Errorf("scrape: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

func parseLine(line string) (ParsedSample, error) {
	var s ParsedSample
	nameEnd := strings.IndexAny(line, "{ ")
	if nameEnd < 0 {
		return s, fmt.Errorf("malformed line %q", line)
	}
	s.Name = line[:nameEnd]
	rest := line[nameEnd:]
	if rest[0] == '{' {
		close := strings.Index(rest, "}")
		if close < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		labels, err := parseLabels(rest[1:close])
		if err != nil {
			return s, err
		}
		s.Labels = labels
		rest = rest[close+1:]
	}
	valueStr := strings.TrimSpace(rest)
	// A trailing timestamp (milliseconds) may follow the value.
	if i := strings.IndexByte(valueStr, ' '); i >= 0 {
		valueStr = valueStr[:i]
	}
	v, err := strconv.ParseFloat(valueStr, 64)
	if err != nil {
		return s, fmt.Errorf("bad value in %q: %w", line, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string) (telemetry.Labels, error) {
	var pairs []string
	for len(body) > 0 {
		eq := strings.IndexByte(body, '=')
		if eq < 0 {
			return telemetry.Labels{}, fmt.Errorf("malformed labels %q", body)
		}
		key := strings.TrimSpace(body[:eq])
		body = body[eq+1:]
		if len(body) == 0 || body[0] != '"' {
			return telemetry.Labels{}, fmt.Errorf("unquoted label value after %q", key)
		}
		// Find the closing quote, honoring escapes.
		end := -1
		for i := 1; i < len(body); i++ {
			if body[i] == '\\' {
				i++
				continue
			}
			if body[i] == '"' {
				end = i
				break
			}
		}
		if end < 0 {
			return telemetry.Labels{}, fmt.Errorf("unterminated label value after %q", key)
		}
		val, err := strconv.Unquote(body[:end+1])
		if err != nil {
			return telemetry.Labels{}, fmt.Errorf("bad label value after %q: %w", key, err)
		}
		pairs = append(pairs, key, val)
		body = strings.TrimPrefix(strings.TrimSpace(body[end+1:]), ",")
		body = strings.TrimSpace(body)
	}
	return telemetry.NewLabels(pairs...)
}

// Scraper pulls one or more HTTP targets into a telemetry store.
type Scraper struct {
	Store *telemetry.Store
	// Client is the HTTP client; http.DefaultClient when nil.
	Client *http.Client
}

// ScrapeTarget GETs the target's /metrics endpoint and appends every sample
// at simulation time now. Returns the number of samples ingested.
func (s *Scraper) ScrapeTarget(url string, now sim.Time) (int, error) {
	client := s.Client
	if client == nil {
		client = http.DefaultClient
	}
	resp, err := client.Get(url)
	if err != nil {
		return 0, fmt.Errorf("scrape: %s: %w", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("scrape: %s: status %d", url, resp.StatusCode)
	}
	return s.Ingest(resp.Body, now)
}

// Ingest parses exposition text and appends the samples at time now. The
// whole scrape is batched through one Appender commit, taking each store
// shard lock once instead of once per sample. Samples that fail the
// out-of-order check are dropped and excluded from the returned count;
// the rest of the scrape still lands.
func (s *Scraper) Ingest(r io.Reader, now sim.Time) (int, error) {
	samples, err := Parse(r)
	if err != nil {
		return 0, err
	}
	app := s.Store.Appender()
	for _, smp := range samples {
		app.Append(smp.Name, smp.Labels, now, smp.Value)
	}
	return app.Commit()
}
