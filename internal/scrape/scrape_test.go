package scrape

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"

	"sapsim/internal/esx"
	"sapsim/internal/exporter"
	"sapsim/internal/sim"
	"sapsim/internal/telemetry"
	"sapsim/internal/topology"
	"sapsim/internal/vmmodel"
)

func TestParseSimpleGauge(t *testing.T) {
	in := `# HELP foo A foo metric.
# TYPE foo gauge
foo 42
bar{a="1",b="two"} 3.14
baz{x="esc\"aped"} -7e3
`
	samples, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 3 {
		t.Fatalf("parsed %d samples, want 3", len(samples))
	}
	if samples[0].Name != "foo" || samples[0].Value != 42 || samples[0].Labels.Len() != 0 {
		t.Errorf("sample 0 = %+v", samples[0])
	}
	if samples[1].Labels.Get("a") != "1" || samples[1].Labels.Get("b") != "two" || samples[1].Value != 3.14 {
		t.Errorf("sample 1 = %+v", samples[1])
	}
	if samples[2].Labels.Get("x") != `esc"aped` || samples[2].Value != -7000 {
		t.Errorf("sample 2 = %+v", samples[2])
	}
}

func TestParseWithTimestamp(t *testing.T) {
	samples, err := Parse(strings.NewReader("m{l=\"v\"} 5 1700000000000\n"))
	if err != nil {
		t.Fatal(err)
	}
	if samples[0].Value != 5 {
		t.Errorf("value = %v", samples[0].Value)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"just_a_name\n",
		"m{unterminated=\"v 3\n",
		"m{a=\"1\"} notanumber\n",
		"m{a=1} 3\n",
		"m{noeq} 3\n",
	}
	for _, in := range bad {
		if _, err := Parse(strings.NewReader(in)); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", in)
		}
	}
}

func TestParseSkipsCommentsAndBlanks(t *testing.T) {
	in := "\n# comment\n\nm 1\n\n"
	samples, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(samples) != 1 {
		t.Errorf("parsed %d, want 1", len(samples))
	}
}

func TestIngestAppendsToStore(t *testing.T) {
	st := telemetry.NewStore()
	s := &Scraper{Store: st}
	n, err := s.Ingest(strings.NewReader("cpu{node=\"n1\"} 55\nmem{node=\"n1\"} 70\n"), sim.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if n != 2 {
		t.Errorf("ingested %d, want 2", n)
	}
	series := st.Select("cpu", telemetry.Matcher{Name: "node", Value: "n1"})
	if len(series) != 1 || series[0].Samples[0].V != 55 || series[0].Samples[0].T != sim.Hour {
		t.Errorf("stored series wrong: %+v", series)
	}
}

type constProfile struct{}

func (constProfile) CPUUsage(sim.Time) float64  { return 0.4 }
func (constProfile) MemUsage(sim.Time) float64  { return 0.6 }
func (constProfile) NetTxKbps(sim.Time) float64 { return 100 }
func (constProfile) NetRxKbps(sim.Time) float64 { return 100 }
func (constProfile) DiskUsage(sim.Time) float64 { return 0.3 }

// End-to-end: exporter → HTTP → scraper → store, the Sec. 4 pipeline.
func TestScrapePipelineEndToEnd(t *testing.T) {
	r := topology.NewRegion("t")
	dc := r.AddAZ("a").AddDC("dc")
	cap := topology.Capacity{PCPUCores: 16, MemoryMB: 256 << 10, StorageGB: 2 << 10, NetworkGbps: 200}
	if _, err := dc.AddBB("bb-0", topology.GeneralPurpose, 2, cap); err != nil {
		t.Fatal(err)
	}
	fleet := esx.NewFleet(r, esx.DefaultConfig())
	vm := &vmmodel.VM{ID: "vm-1", Flavor: vmmodel.CatalogByName()["MK"], Project: "p", Profile: constProfile{}}
	if err := fleet.Place(vm, r.Nodes()[0], 0); err != nil {
		t.Fatal(err)
	}

	now := sim.Time(0)
	exp := &exporter.Exporter{
		Fleet:    fleet,
		VMs:      func() []*vmmodel.VM { return []*vmmodel.VM{vm} },
		Clock:    func() sim.Time { return now },
		Interval: 5 * sim.Minute,
	}
	srv := httptest.NewServer(exp.Handler())
	defer srv.Close()

	st := telemetry.NewStore()
	scraper := &Scraper{Store: st, Client: srv.Client()}

	// Two scrape rounds at different sim times.
	for _, ts := range []sim.Time{0, 5 * sim.Minute} {
		now = ts
		n, err := scraper.ScrapeTarget(srv.URL, ts)
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatal("scraped zero samples")
		}
	}

	series := st.Select(exporter.MetricHostCPUUtil,
		telemetry.Matcher{Name: "hostsystem", Value: "bb-0-n000"})
	if len(series) != 1 {
		t.Fatalf("host CPU series = %d, want 1", len(series))
	}
	if len(series[0].Samples) != 2 {
		t.Errorf("samples = %d, want 2", len(series[0].Samples))
	}
	// MK = 2 vCPU × 0.4 = 0.8 cores of 16 → 5%.
	if got := series[0].Samples[0].V; got != 5 {
		t.Errorf("scraped CPU util = %v, want 5", got)
	}
	vmSeries := st.Select(exporter.MetricVMCPURatio)
	if len(vmSeries) != 1 {
		t.Errorf("VM series = %d, want 1", len(vmSeries))
	}
}

func TestScrapeTargetHTTPError(t *testing.T) {
	srv := httptest.NewServer(nil) // 404 on every path
	defer srv.Close()
	s := &Scraper{Store: telemetry.NewStore(), Client: srv.Client()}
	if _, err := s.ScrapeTarget(srv.URL+"/nope", 0); err == nil {
		t.Error("scrape of 404 target succeeded")
	}
	if _, err := s.ScrapeTarget("http://127.0.0.1:1/metrics", 0); err == nil {
		t.Error("scrape of dead target succeeded")
	}
}

func TestIngestOutOfOrderPropagates(t *testing.T) {
	st := telemetry.NewStore()
	s := &Scraper{Store: st}
	if _, err := s.Ingest(bytes.NewReader([]byte("m 1\n")), sim.Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Ingest(bytes.NewReader([]byte("m 2\n")), sim.Minute); err == nil {
		t.Error("out-of-order ingest succeeded")
	}
}
