package sim

import "testing"

// BenchmarkEngineSchedule measures raw event-insertion throughput against a
// realistic standing queue: a simulation cell keeps thousands of far-future
// deletion events pending while near-term ticks and arrivals churn. The
// insertion mix is 3:1 near (seconds to minutes ahead) to far (hours to
// days ahead), cycling deterministically.
func BenchmarkEngineSchedule(b *testing.B) {
	offsets := []Time{
		30 * Second, 5 * Minute, 90 * Second, 2 * Day,
		Minute, 3 * Minute, 45 * Second, 6 * Hour,
	}
	e := NewEngine()
	// Standing population: pending VM deletions spread over a month.
	for i := 0; i < 4096; i++ {
		if _, err := e.Schedule(Time(i%30)*Day+Time(i)*Second, func(Time) {}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Schedule(offsets[i%len(offsets)], func(Time) {}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineScheduleRunCycle measures the full push/pop lifecycle: a
// standing far-future population plus a tight schedule-then-fire loop, the
// shape of a sampler-dominated cell run.
func BenchmarkEngineScheduleRunCycle(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 2048; j++ {
			if _, err := e.Schedule(Day+Time(j)*Minute, func(Time) {}); err != nil {
				b.Fatal(err)
			}
		}
		n := 0
		if _, err := e.Every(0, 5*Minute, func(Time) { n++ }); err != nil {
			b.Fatal(err)
		}
		if err := e.Run(3 * Day); err != nil {
			b.Fatal(err)
		}
		if n == 0 {
			b.Fatal("ticker never fired")
		}
	}
}
