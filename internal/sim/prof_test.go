package sim

import (
	"testing"

	"sapsim/internal/engprof"
)

// TestProfiledScheduleAllocs pins the overhead budget of the always-on
// engine profiler on the scheduling path: attaching a collector must not
// change Schedule's arena-amortized allocation behavior (the profiler only
// observes event *firing*, never event creation).
func TestProfiledScheduleAllocs(t *testing.T) {
	e := NewEngine()
	e.SetProfiler(engprof.New())
	fn := func(Time) {}
	at := Time(0)
	avg := testing.AllocsPerRun(1000, func() {
		at += Second
		if _, err := e.Schedule(at, fn); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 2.0/arenaChunk {
		t.Errorf("profiled Schedule allocates %.4f objects/op, want <= %.4f (arena-amortized)",
			avg, 2.0/arenaChunk)
	}
}

// TestProfiledTickerFireAllocs pins the profiler's hot-path contract:
// steady-state ticking with a collector attached allocates nothing. The
// per-fire cost is one monotonic clock read plus counter adds into an
// already-existing owner bucket.
func TestProfiledTickerFireAllocs(t *testing.T) {
	e := NewEngine()
	prof := engprof.New()
	e.SetProfiler(prof)
	n := 0
	if _, err := e.EveryOwned(0, Minute, "core/tick/host", func(Time) { n++ }); err != nil {
		t.Fatal(err)
	}
	// Warm up past one full wheel rotation so every bucket's backing slice
	// (and the profiler's owner bucket) exists; steady state reuses them.
	horizon := 5 * Hour
	if err := e.Run(horizon); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		horizon += Hour
		if err := e.Run(horizon); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Errorf("profiled ticker run allocates %.2f objects per hour of ticks, want 0", avg)
	}
	if n == 0 {
		t.Fatal("ticker never fired")
	}
	if prof.Events() == 0 {
		t.Fatal("profiler observed no events")
	}
	c := prof.PhaseCounter(engprof.PhaseHostSample)
	if c.Count != int64(n) {
		t.Errorf("profiler counted %d host-tick events, ticker fired %d", c.Count, n)
	}
}
