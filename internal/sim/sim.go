// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives every experiment in this repository: a 30-day
// observation window (matching the paper's measurement period) executes in
// seconds of wall-clock time. Events are totally ordered by (time, priority,
// sequence) so that runs are reproducible bit-for-bit given the same inputs.
package sim

import (
	"container/heap"
	"errors"
	"fmt"
	"time"
)

// Time is a point in simulated time, expressed as a duration since the
// simulation epoch. Using a duration rather than wall-clock time keeps the
// engine free of time-zone and monotonic-clock concerns.
type Time time.Duration

// Common simulation durations.
const (
	Second = Time(time.Second)
	Minute = Time(time.Minute)
	Hour   = Time(time.Hour)
	Day    = 24 * Hour
	Week   = 7 * Day
)

// Duration converts t to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t in seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Hours reports t in hours.
func (t Time) Hours() float64 { return time.Duration(t).Hours() }

// Days reports t in days.
func (t Time) Days() float64 { return time.Duration(t).Hours() / 24 }

// String renders t as a duration since epoch.
func (t Time) String() string { return time.Duration(t).String() }

// Date renders t as an absolute date given the paper's observation epoch
// (2024-07-31 00:00:00 UTC), e.g. for heatmap row labels.
func (t Time) Date(epoch time.Time) time.Time { return epoch.Add(time.Duration(t)) }

// Epoch is the observation start used throughout the paper:
// July 31, 2024 00:00:00 UTC.
var Epoch = time.Date(2024, time.July, 31, 0, 0, 0, 0, time.UTC)

// Handler is a scheduled callback. It runs at the event's firing time and
// may schedule further events.
type Handler func(now Time)

// Event is a scheduled occurrence inside the engine. Events are immutable
// once scheduled; cancellation is expressed through Cancel.
type Event struct {
	at       Time
	priority int
	seq      uint64
	fn       Handler
	canceled bool
	index    int // heap index, -1 when popped
	name     string
}

// At reports the scheduled firing time.
func (e *Event) At() Time { return e.at }

// Name reports the optional diagnostic label given at scheduling time.
func (e *Event) Name() string { return e.name }

// Canceled reports whether Cancel was called before the event fired.
func (e *Event) Canceled() bool { return e.canceled }

// Cancel prevents the event's handler from running. Canceling an event that
// has already fired (or was already canceled) is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// eventQueue is a min-heap ordered by (time, priority, sequence).
type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].priority != q[j].priority {
		return q[i].priority < q[j].priority
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     Time
	queue   eventQueue
	seq     uint64
	fired   uint64
	running bool
	horizon Time
	errHook func(error)
	errs    []error
}

// OnError installs a hook that observes internal scheduling errors that
// cannot be returned to a caller (e.g. a ticker failing to reschedule).
// Without a hook such errors are collected and surfaced by Run.
func (e *Engine) OnError(fn func(error)) { e.errHook = fn }

// noteError routes an internal error to the hook, or records it for Run.
func (e *Engine) noteError(err error) {
	if err == nil {
		return
	}
	if e.errHook != nil {
		e.errHook(err)
		return
	}
	e.errs = append(e.errs, err)
}

// Errs returns internal errors collected so far (nil hook installed).
func (e *Engine) Errs() []error { return e.errs }

// NewEngine returns an engine positioned at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting in the queue (including
// canceled ones that have not been popped yet).
func (e *Engine) Pending() int { return len(e.queue) }

// ErrPast is returned when scheduling an event before the current time.
var ErrPast = errors.New("sim: cannot schedule event in the past")

// Schedule registers fn to run at absolute time at. It returns the event,
// which may be canceled until it fires.
func (e *Engine) Schedule(at Time, fn Handler) (*Event, error) {
	return e.schedule(at, 0, "", fn)
}

// ScheduleNamed is Schedule with a diagnostic label.
func (e *Engine) ScheduleNamed(at Time, name string, fn Handler) (*Event, error) {
	return e.schedule(at, 0, name, fn)
}

// After registers fn to run delay after the current time.
func (e *Engine) After(delay Time, fn Handler) (*Event, error) {
	return e.schedule(e.now+delay, 0, "", fn)
}

// SchedulePriority registers fn at time at with an explicit priority;
// events at the same instant run in ascending priority order.
func (e *Engine) SchedulePriority(at Time, priority int, fn Handler) (*Event, error) {
	return e.schedule(at, priority, "", fn)
}

func (e *Engine) schedule(at Time, priority int, name string, fn Handler) (*Event, error) {
	if at < e.now {
		return nil, fmt.Errorf("%w: at=%v now=%v", ErrPast, at, e.now)
	}
	if fn == nil {
		return nil, errors.New("sim: nil handler")
	}
	e.seq++
	ev := &Event{at: at, priority: priority, seq: e.seq, fn: fn, name: name}
	heap.Push(&e.queue, ev)
	return ev, nil
}

// Every schedules fn at start and then repeatedly every interval until the
// engine's run horizon ends or the returned Ticker is stopped.
func (e *Engine) Every(start, interval Time, fn Handler) (*Ticker, error) {
	if interval <= 0 {
		return nil, errors.New("sim: non-positive ticker interval")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn}
	var err error
	t.next, err = e.Schedule(start, t.fire)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// Ticker re-schedules a handler at a fixed interval.
type Ticker struct {
	engine   *Engine
	interval Time
	fn       Handler
	next     *Event
	stopped  bool
}

func (t *Ticker) fire(now Time) {
	if t.stopped {
		return
	}
	t.fn(now)
	if t.stopped { // fn may call Stop
		return
	}
	// Rescheduling cannot fail today (now+interval > now), but injectors
	// that reschedule near the horizon would silently lose ticks if a
	// failure were dropped — surface it through the engine's error hook.
	var err error
	t.next, err = t.engine.Schedule(now+t.interval, t.fire)
	if err != nil {
		t.engine.noteError(fmt.Errorf("sim: ticker reschedule at %v: %w", now, err))
	}
}

// Stop prevents future ticks. It is safe to call from within the tick
// handler and is idempotent.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.next != nil {
		t.next.Cancel()
	}
}

// Run executes events in order until the queue empties or the next event
// lies beyond horizon. The clock finishes at min(horizon, last event time);
// it advances to horizon exactly when events at or beyond it remain.
//
// Run may be called again with a larger horizon to continue the same event
// sequence: events at exactly the first horizon fire in the first call, so
// a run split across any number of Run calls is identical to one
// uninterrupted run.
func (e *Engine) Run(horizon Time) error {
	return e.RunInterruptible(horizon, nil)
}

// RunInterruptible is Run with a cooperative stop check: when non-nil,
// check is consulted before each event fires, and a non-nil result stops
// the run immediately — before the next event executes — leaving the queue
// and clock intact so the run can resume later. The check's error is
// returned unchanged (e.g. ctx.Err() for context-driven cancellation).
func (e *Engine) RunInterruptible(horizon Time, check func() error) error {
	if e.running {
		return errors.New("sim: engine already running")
	}
	e.running = true
	e.horizon = horizon
	defer func() { e.running = false }()

	for len(e.queue) > 0 {
		if check != nil {
			if err := check(); err != nil {
				return err
			}
		}
		ev := e.queue[0]
		if ev.at > horizon {
			e.now = horizon
			return e.takeErrs()
		}
		heap.Pop(&e.queue)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn(ev.at)
	}
	if e.now < horizon {
		e.now = horizon
	}
	return e.takeErrs()
}

// takeErrs joins and clears collected internal errors, so a resumed Run
// does not re-report failures already surfaced by an earlier window.
func (e *Engine) takeErrs() error {
	err := errors.Join(e.errs...)
	e.errs = nil
	return err
}

// Step executes exactly one (non-canceled) event, if any, and reports
// whether an event ran. Useful in tests.
func (e *Engine) Step() bool {
	for len(e.queue) > 0 {
		ev := heap.Pop(&e.queue).(*Event)
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.fired++
		ev.fn(ev.at)
		return true
	}
	return false
}
