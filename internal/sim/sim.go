// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine drives every experiment in this repository: a 30-day
// observation window (matching the paper's measurement period) executes in
// seconds of wall-clock time. Events are totally ordered by (time, priority,
// sequence) so that runs are reproducible bit-for-bit given the same inputs.
package sim

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sapsim/internal/engprof"
)

// Time is a point in simulated time, expressed as a duration since the
// simulation epoch. Using a duration rather than wall-clock time keeps the
// engine free of time-zone and monotonic-clock concerns.
type Time time.Duration

// Common simulation durations.
const (
	Second = Time(time.Second)
	Minute = Time(time.Minute)
	Hour   = Time(time.Hour)
	Day    = 24 * Hour
	Week   = 7 * Day
)

// Duration converts t to a time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Seconds reports t in seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Hours reports t in hours.
func (t Time) Hours() float64 { return time.Duration(t).Hours() }

// Days reports t in days.
func (t Time) Days() float64 { return time.Duration(t).Hours() / 24 }

// String renders t as a duration since epoch.
func (t Time) String() string { return time.Duration(t).String() }

// Date renders t as an absolute date given the paper's observation epoch
// (2024-07-31 00:00:00 UTC), e.g. for heatmap row labels.
func (t Time) Date(epoch time.Time) time.Time { return epoch.Add(time.Duration(t)) }

// Epoch is the observation start used throughout the paper:
// July 31, 2024 00:00:00 UTC.
var Epoch = time.Date(2024, time.July, 31, 0, 0, 0, 0, time.UTC)

// Handler is a scheduled callback. It runs at the event's firing time and
// may schedule further events.
type Handler func(now Time)

// Event is a scheduled occurrence inside the engine. Events are immutable
// once scheduled; cancellation is expressed through Cancel.
type Event struct {
	at       Time
	priority int
	seq      uint64
	fn       Handler
	canceled bool
	index    int // position in its heap (bucket or overflow), -1 when popped
	name     string
	owner    string
	payload  []byte
}

// At reports the scheduled firing time.
func (e *Event) At() Time { return e.at }

// Name reports the optional diagnostic label given at scheduling time.
func (e *Event) Name() string { return e.name }

// Owner reports the rearm key given at scheduling time (empty for events
// that cannot survive a snapshot).
func (e *Event) Owner() string { return e.owner }

// Payload reports the serializable rearm payload given at scheduling time.
func (e *Event) Payload() []byte { return e.payload }

// Canceled reports whether Cancel was called before the event fired.
func (e *Event) Canceled() bool { return e.canceled }

// Cancel prevents the event's handler from running. Canceling an event that
// has already fired (or was already canceled) is a no-op.
func (e *Event) Cancel() { e.canceled = true }

// eventQueue is a min-heap ordered by (time, priority, sequence). The sift
// operations are hand-rolled (rather than container/heap) so pushes and pops
// on the timer wheel's hot path avoid interface dispatch.
type eventQueue []*Event

func (q eventQueue) less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	if q[i].priority != q[j].priority {
		return q[i].priority < q[j].priority
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q eventQueue) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(i, parent) {
			break
		}
		q.swap(i, parent)
		i = parent
	}
}

func (q eventQueue) down(i int) {
	n := len(q)
	for {
		l := 2*i + 1
		if l >= n {
			return
		}
		min := l
		if r := l + 1; r < n && q.less(r, l) {
			min = r
		}
		if !q.less(min, i) {
			return
		}
		q.swap(i, min)
		i = min
	}
}

func (q *eventQueue) push(e *Event) {
	e.index = len(*q)
	*q = append(*q, e)
	q.up(e.index)
}

// pop removes and returns the minimum event.
func (q *eventQueue) pop() *Event {
	old := *q
	n := len(old)
	e := old[0]
	old.swap(0, n-1)
	old[n-1] = nil
	*q = old[:n-1]
	if n > 1 {
		(*q).down(0)
	}
	e.index = -1
	return e
}

// Timer-wheel geometry: a 256-slot near wheel at one-minute tick
// granularity (a ~4.3 h window) in front of an overflow heap. Near events —
// sampler and rebalancer ticks, imminent arrivals — get O(1) slot selection
// plus a sift inside a tiny per-slot heap; far events (VM deletions
// scheduled days ahead) wait in the overflow heap, which stays small and
// shallow, and migrate into the wheel as the cursor approaches them.
const (
	wheelSlotBits = 8
	wheelSlots    = 1 << wheelSlotBits
	wheelMask     = wheelSlots - 1
	wheelTick     = Time(time.Minute)
)

func slotOf(t Time) int64 { return int64(t / wheelTick) }

// timerWheel is a hierarchical event queue preserving the exact
// (time, priority, sequence) total order of the flat heap it replaces: the
// cursor visits slots in time order, each slot is itself ordered by the full
// comparator, and overflow events always sort after every wheel event.
type timerWheel struct {
	cur      int64 // absolute slot index of the cursor (monotone)
	buckets  [wheelSlots]eventQueue
	nearN    int // events currently in buckets
	overflow eventQueue
}

func (w *timerWheel) len() int { return w.nearN + len(w.overflow) }

// limit is the first instant beyond the wheel's current window.
func (w *timerWheel) limit() Time { return Time(w.cur+wheelSlots) * wheelTick }

func (w *timerWheel) push(ev *Event) {
	s := slotOf(ev.at)
	if s >= w.cur+wheelSlots {
		w.overflow.push(ev)
		return
	}
	if s < w.cur {
		// The cursor advanced past this slot while peeking at a future
		// event (e.g. a horizon stop followed by a near schedule). The
		// cursor bucket is the next one drained and its heap orders the
		// event correctly ahead of everything scheduled later.
		s = w.cur
	}
	w.buckets[s&wheelMask].push(ev)
	w.nearN++
}

// migrate pulls overflow events that now fall inside the wheel window.
func (w *timerWheel) migrate() {
	lim := w.limit()
	for len(w.overflow) > 0 && w.overflow[0].at < lim {
		ev := w.overflow.pop()
		w.buckets[slotOf(ev.at)&wheelMask].push(ev)
		w.nearN++
	}
}

// peek returns the next event without removing it, or nil when empty. It
// advances the cursor to the next event's slot, which is safe: pushes behind
// the cursor fall into the cursor bucket (see push) and ordering holds.
func (w *timerWheel) peek() *Event {
	for {
		if w.nearN == 0 {
			if len(w.overflow) == 0 {
				return nil
			}
			// The wheel is empty: jump straight to the overflow minimum
			// instead of stepping through empty slots.
			w.cur = slotOf(w.overflow[0].at)
			w.migrate()
			continue
		}
		for len(w.buckets[w.cur&wheelMask]) == 0 {
			w.cur++
			w.migrate()
		}
		return w.buckets[w.cur&wheelMask][0]
	}
}

// pop removes and returns the next event, or nil when empty.
func (w *timerWheel) pop() *Event {
	if w.peek() == nil {
		return nil
	}
	ev := w.buckets[w.cur&wheelMask].pop()
	w.nearN--
	return ev
}

// eventArena hands out events from chunked backing arrays: one allocation
// per arenaChunk events instead of one per Schedule. Events are never
// recycled — a caller may hold a fired event's pointer indefinitely (Cancel
// after firing is a documented no-op), so reuse would let one caller's
// Cancel hit an unrelated event. Tickers, whose events never escape the
// engine, do reuse their event across fires (see Ticker.fire).
type eventArena struct {
	chunk []Event
}

const arenaChunk = 256

func (a *eventArena) alloc() *Event {
	if len(a.chunk) == 0 {
		a.chunk = make([]Event, arenaChunk)
	}
	ev := &a.chunk[0]
	a.chunk = a.chunk[1:]
	return ev
}

// Engine is a discrete-event simulator. The zero value is not usable; call
// NewEngine.
type Engine struct {
	now     Time
	wheel   timerWheel
	arena   eventArena
	seq     uint64
	fired   uint64
	running bool
	horizon Time
	errHook func(error)
	errs    []error
	// prof, when set, receives per-event wall-time attribution from the
	// run loop: one monotonic-clock read per fired event, attributed to
	// the event's owner. Schedule and Ticker.fire stay uninstrumented —
	// their 0 allocs/op pins are part of the engine's contract — and the
	// profiler writes into counters nothing in the simulation reads, so
	// event order is unaffected.
	prof *engprof.Collector
}

// SetProfiler attaches (or, with nil, detaches) the self-profiler the run
// loop attributes event wall time to.
func (e *Engine) SetProfiler(p *engprof.Collector) { e.prof = p }

// OnError installs a hook that observes internal scheduling errors that
// cannot be returned to a caller (e.g. a ticker failing to reschedule).
// Without a hook such errors are collected and surfaced by Run.
func (e *Engine) OnError(fn func(error)) { e.errHook = fn }

// noteError routes an internal error to the hook, or records it for Run.
func (e *Engine) noteError(err error) {
	if err == nil {
		return
	}
	if e.errHook != nil {
		e.errHook(err)
		return
	}
	e.errs = append(e.errs, err)
}

// Errs returns internal errors collected so far (nil hook installed).
func (e *Engine) Errs() []error { return e.errs }

// NewEngine returns an engine positioned at time zero.
func NewEngine() *Engine {
	return &Engine{}
}

// Now reports the current simulated time.
func (e *Engine) Now() Time { return e.now }

// Fired reports how many events have executed so far.
func (e *Engine) Fired() uint64 { return e.fired }

// Pending reports how many events are waiting in the queue (including
// canceled ones that have not been popped yet).
func (e *Engine) Pending() int { return e.wheel.len() }

// ErrPast is returned when scheduling an event before the current time.
var ErrPast = errors.New("sim: cannot schedule event in the past")

// Schedule registers fn to run at absolute time at. It returns the event,
// which may be canceled until it fires.
func (e *Engine) Schedule(at Time, fn Handler) (*Event, error) {
	return e.schedule(at, 0, "", "", nil, fn)
}

// ScheduleNamed is Schedule with a diagnostic label.
func (e *Engine) ScheduleNamed(at Time, name string, fn Handler) (*Event, error) {
	return e.schedule(at, 0, name, "", nil, fn)
}

// ScheduleOwned is Schedule with a rearm key and serializable payload: the
// event survives CaptureState/RestoreState, where the registered rearmer for
// owner rebuilds the handler from payload. Events scheduled without an owner
// make the engine un-snapshottable while they are pending.
func (e *Engine) ScheduleOwned(at Time, priority int, owner string, payload []byte, fn Handler) (*Event, error) {
	if owner == "" {
		return nil, errors.New("sim: ScheduleOwned with empty owner")
	}
	return e.schedule(at, priority, "", owner, payload, fn)
}

// After registers fn to run delay after the current time.
func (e *Engine) After(delay Time, fn Handler) (*Event, error) {
	return e.schedule(e.now+delay, 0, "", "", nil, fn)
}

// SchedulePriority registers fn at time at with an explicit priority;
// events at the same instant run in ascending priority order.
func (e *Engine) SchedulePriority(at Time, priority int, fn Handler) (*Event, error) {
	return e.schedule(at, priority, "", "", nil, fn)
}

// SchedulePriorityOwned is SchedulePriority with a rearm key and payload.
func (e *Engine) SchedulePriorityOwned(at Time, priority int, owner string, payload []byte, fn Handler) (*Event, error) {
	if owner == "" {
		return nil, errors.New("sim: SchedulePriorityOwned with empty owner")
	}
	return e.schedule(at, priority, "", owner, payload, fn)
}

func (e *Engine) schedule(at Time, priority int, name, owner string, payload []byte, fn Handler) (*Event, error) {
	if at < e.now {
		return nil, fmt.Errorf("%w: at=%v now=%v", ErrPast, at, e.now)
	}
	if fn == nil {
		return nil, errors.New("sim: nil handler")
	}
	ev := e.arena.alloc()
	e.scheduleInto(ev, at, priority, name, owner, payload, fn)
	return ev, nil
}

// scheduleInto (re)initializes ev and enqueues it. The caller must have
// validated at >= now and fn != nil; ev must not be pending in the wheel.
func (e *Engine) scheduleInto(ev *Event, at Time, priority int, name, owner string, payload []byte, fn Handler) {
	e.seq++
	*ev = Event{at: at, priority: priority, seq: e.seq, fn: fn, name: name,
		owner: owner, payload: payload, index: -1}
	e.wheel.push(ev)
}

// Every schedules fn at start and then repeatedly every interval until the
// engine's run horizon ends or the returned Ticker is stopped.
func (e *Engine) Every(start, interval Time, fn Handler) (*Ticker, error) {
	return e.EveryOwned(start, interval, "", fn)
}

// EveryOwned is Every with a rearm key: the ticker's pending tick survives
// CaptureState/RestoreState, where RearmTicker rebinds it.
func (e *Engine) EveryOwned(start, interval Time, owner string, fn Handler) (*Ticker, error) {
	if interval <= 0 {
		return nil, errors.New("sim: non-positive ticker interval")
	}
	t := &Ticker{engine: e, interval: interval, fn: fn, owner: owner}
	t.fireFn = t.fire // bound once so each tick does not allocate a method value
	var err error
	t.next, err = e.schedule(start, 0, "", owner, nil, t.fireFn)
	if err != nil {
		return nil, err
	}
	return t, nil
}

// RearmTicker recreates a ticker on a restoring engine without scheduling
// its first tick: the returned Rearmed re-binds the ticker's pending event
// when RestoreState replays the captured queue. The ticker behaves exactly
// like one built by EveryOwned whose next tick is the captured event.
func (e *Engine) RearmTicker(interval Time, owner string, fn Handler) (*Ticker, Rearmed) {
	t := &Ticker{engine: e, interval: interval, fn: fn, owner: owner}
	t.fireFn = t.fire
	return t, Rearmed{Fn: t.fireFn, Attach: func(ev *Event) { t.next = ev }}
}

// Ticker re-schedules a handler at a fixed interval.
type Ticker struct {
	engine   *Engine
	interval Time
	fn       Handler
	fireFn   Handler
	next     *Event
	stopped  bool
	owner    string
}

func (t *Ticker) fire(now Time) {
	if t.stopped {
		return
	}
	t.fn(now)
	if t.stopped { // fn may call Stop
		return
	}
	// The ticker's event never escapes the engine, so the tick that just
	// fired is reused for the next one instead of allocating a fresh event.
	// Rescheduling cannot fail today (now+interval > now), but injectors
	// that reschedule near the horizon would silently lose ticks if a
	// failure were dropped — surface it through the engine's error hook.
	at := now + t.interval
	if at < t.engine.now {
		err := fmt.Errorf("%w: at=%v now=%v", ErrPast, at, t.engine.now)
		t.engine.noteError(fmt.Errorf("sim: ticker reschedule at %v: %w", now, err))
		return
	}
	t.engine.scheduleInto(t.next, at, 0, "", t.owner, nil, t.fireFn)
}

// Stop prevents future ticks. It is safe to call from within the tick
// handler and is idempotent.
func (t *Ticker) Stop() {
	t.stopped = true
	if t.next != nil {
		t.next.Cancel()
	}
}

// Run executes events in order until the queue empties or the next event
// lies beyond horizon. The clock finishes at min(horizon, last event time);
// it advances to horizon exactly when events at or beyond it remain.
//
// Run may be called again with a larger horizon to continue the same event
// sequence: events at exactly the first horizon fire in the first call, so
// a run split across any number of Run calls is identical to one
// uninterrupted run.
func (e *Engine) Run(horizon Time) error {
	return e.RunInterruptible(horizon, nil)
}

// RunInterruptible is Run with a cooperative stop check: when non-nil,
// check is consulted before each event fires, and a non-nil result stops
// the run immediately — before the next event executes — leaving the queue
// and clock intact so the run can resume later. The check's error is
// returned unchanged (e.g. ctx.Err() for context-driven cancellation).
func (e *Engine) RunInterruptible(horizon Time, check func() error) error {
	if e.running {
		return errors.New("sim: engine already running")
	}
	e.running = true
	e.horizon = horizon
	defer func() { e.running = false }()

	// The profiler's delta chain opens here: each fired event closes the
	// interval since the previous reading and attributes it to its owner,
	// so one clock read per event accounts for the whole loop — peek/pop
	// included — without a second read.
	if e.prof != nil {
		e.prof.BeginRun()
	}
	for {
		ev := e.wheel.peek()
		if ev == nil {
			break
		}
		if check != nil {
			if err := check(); err != nil {
				return err
			}
		}
		if ev.at > horizon {
			e.now = horizon
			return e.takeErrs()
		}
		e.wheel.pop()
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.fired++
		// ev may be reused by its own handler (Ticker.fire reschedules in
		// place), so capture the owner before firing.
		owner := ev.owner
		ev.fn(ev.at)
		if e.prof != nil {
			e.prof.Event(owner)
		}
	}
	if e.now < horizon {
		e.now = horizon
	}
	return e.takeErrs()
}

// takeErrs joins and clears collected internal errors, so a resumed Run
// does not re-report failures already surfaced by an earlier window.
func (e *Engine) takeErrs() error {
	err := errors.Join(e.errs...)
	e.errs = nil
	return err
}

// Step executes exactly one (non-canceled) event, if any, and reports
// whether an event ran. Useful in tests.
func (e *Engine) Step() bool {
	if e.prof != nil {
		e.prof.BeginRun()
	}
	for {
		ev := e.wheel.pop()
		if ev == nil {
			return false
		}
		if ev.canceled {
			continue
		}
		e.now = ev.at
		e.fired++
		owner := ev.owner
		ev.fn(ev.at)
		if e.prof != nil {
			e.prof.Event(owner)
		}
		return true
	}
}

// PendingEvent is the serializable form of one queued event: everything but
// the handler, which is rebuilt at restore time by the owner's rearmer.
type PendingEvent struct {
	At       Time
	Priority int
	Seq      uint64
	Name     string
	Owner    string
	Payload  []byte
}

// EngineState is a consistent snapshot of the engine: the clock, the
// scheduling counters, and the pending queue in total order. It contains no
// function values and serializes with encoding/gob.
type EngineState struct {
	Now    Time
	Seq    uint64
	Fired  uint64
	Events []PendingEvent
}

// Rearmed is a rearmer's product: the rebuilt handler for one pending
// event, plus an optional hook that observes the re-created *Event (tickers
// use it to re-bind their reusable tick).
type Rearmed struct {
	Fn     Handler
	Attach func(*Event)
}

// CaptureState snapshots the engine between run windows. Every pending
// non-canceled event must carry an owner (see ScheduleOwned/EveryOwned);
// an unowned pending event makes the state un-restorable, so capture fails
// loudly instead of producing a snapshot that silently drops events.
// CaptureState must not be called from inside a handler: a ticker that is
// mid-fire has not re-scheduled its next tick yet, so the queue would be
// missing it.
func (e *Engine) CaptureState() (*EngineState, error) {
	if e.running {
		return nil, errors.New("sim: CaptureState inside a run window")
	}
	st := &EngineState{Now: e.now, Seq: e.seq, Fired: e.fired}
	collect := func(q eventQueue) error {
		for _, ev := range q {
			if ev.canceled {
				continue
			}
			if ev.owner == "" {
				return fmt.Errorf("sim: pending event %q at %v has no owner; cannot snapshot", ev.name, ev.at)
			}
			st.Events = append(st.Events, PendingEvent{
				At: ev.at, Priority: ev.priority, Seq: ev.seq,
				Name: ev.name, Owner: ev.owner, Payload: ev.payload,
			})
		}
		return nil
	}
	for i := range e.wheel.buckets {
		if err := collect(e.wheel.buckets[i]); err != nil {
			return nil, err
		}
	}
	if err := collect(e.wheel.overflow); err != nil {
		return nil, err
	}
	sort.Slice(st.Events, func(i, j int) bool {
		a, b := st.Events[i], st.Events[j]
		if a.At != b.At {
			return a.At < b.At
		}
		if a.Priority != b.Priority {
			return a.Priority < b.Priority
		}
		return a.Seq < b.Seq
	})
	return st, nil
}

// RestoreState loads a captured state into a fresh engine: the clock,
// counters, and queue come back exactly, with each pending event's handler
// rebuilt by rearm from its (owner, payload). Original sequence numbers are
// preserved, so the restored engine pops events in the identical total order
// and assigns identical sequence numbers to everything scheduled later —
// the continuation is bit-identical to the uninterrupted run.
func (e *Engine) RestoreState(st *EngineState, rearm func(PendingEvent) (Rearmed, error)) error {
	if e.running {
		return errors.New("sim: RestoreState inside a run window")
	}
	if e.now != 0 || e.seq != 0 || e.fired != 0 || e.wheel.len() != 0 {
		return errors.New("sim: RestoreState on a non-fresh engine")
	}
	e.now = st.Now
	e.fired = st.Fired
	e.wheel.cur = slotOf(st.Now)
	for _, pe := range st.Events {
		r, err := rearm(pe)
		if err != nil {
			return fmt.Errorf("sim: rearm %q (event %q at %v): %w", pe.Owner, pe.Name, pe.At, err)
		}
		if r.Fn == nil {
			return fmt.Errorf("sim: rearm %q returned nil handler", pe.Owner)
		}
		ev := e.arena.alloc()
		*ev = Event{at: pe.At, priority: pe.Priority, seq: pe.Seq, fn: r.Fn,
			name: pe.Name, owner: pe.Owner, payload: pe.Payload, index: -1}
		e.wheel.push(ev)
		if r.Attach != nil {
			r.Attach(ev)
		}
	}
	e.seq = st.Seq
	return nil
}
