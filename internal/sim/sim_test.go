package sim

import (
	"errors"
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	if got := (2 * Day).Hours(); got != 48 {
		t.Errorf("2 days = %v hours, want 48", got)
	}
	if got := (90 * Second).Seconds(); got != 90 {
		t.Errorf("90s = %v seconds, want 90", got)
	}
	if got := Week.Days(); got != 7 {
		t.Errorf("week = %v days, want 7", got)
	}
	if got := Hour.Duration(); got != time.Hour {
		t.Errorf("Hour.Duration() = %v, want %v", got, time.Hour)
	}
}

func TestTimeDate(t *testing.T) {
	got := (5 * Day).Date(Epoch)
	want := time.Date(2024, time.August, 5, 0, 0, 0, 0, time.UTC)
	if !got.Equal(want) {
		t.Errorf("Date = %v, want %v", got, want)
	}
}

func TestScheduleOrdering(t *testing.T) {
	e := NewEngine()
	var order []int
	mustSchedule(t, e, 3*Second, func(Time) { order = append(order, 3) })
	mustSchedule(t, e, 1*Second, func(Time) { order = append(order, 1) })
	mustSchedule(t, e, 2*Second, func(Time) { order = append(order, 2) })
	if err := e.Run(10 * Second); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Errorf("execution order = %v, want [1 2 3]", order)
	}
}

func TestSameInstantFIFO(t *testing.T) {
	e := NewEngine()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		mustSchedule(t, e, Second, func(Time) { order = append(order, i) })
	}
	if err := e.Run(Minute); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-instant events not FIFO: %v", order)
		}
	}
}

func TestPriorityOrdering(t *testing.T) {
	e := NewEngine()
	var order []string
	if _, err := e.SchedulePriority(Second, 5, func(Time) { order = append(order, "low") }); err != nil {
		t.Fatal(err)
	}
	if _, err := e.SchedulePriority(Second, -5, func(Time) { order = append(order, "high") }); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(Minute); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "high" || order[1] != "low" {
		t.Errorf("priority order = %v, want [high low]", order)
	}
}

func TestSchedulePastRejected(t *testing.T) {
	e := NewEngine()
	mustSchedule(t, e, Minute, func(Time) {})
	if err := e.Run(Hour); err != nil {
		t.Fatal(err)
	}
	if _, err := e.Schedule(Second, func(Time) {}); err == nil {
		t.Error("scheduling in the past succeeded, want error")
	}
}

func TestNilHandlerRejected(t *testing.T) {
	e := NewEngine()
	if _, err := e.Schedule(Second, nil); err == nil {
		t.Error("nil handler accepted, want error")
	}
}

func TestCancel(t *testing.T) {
	e := NewEngine()
	ran := false
	ev := mustSchedule(t, e, Second, func(Time) { ran = true })
	ev.Cancel()
	if err := e.Run(Minute); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("canceled event ran")
	}
	if !ev.Canceled() {
		t.Error("Canceled() = false after Cancel")
	}
}

func TestHorizonStopsEarly(t *testing.T) {
	e := NewEngine()
	ran := false
	mustSchedule(t, e, Day, func(Time) { ran = true })
	if err := e.Run(Hour); err != nil {
		t.Fatal(err)
	}
	if ran {
		t.Error("event beyond horizon ran")
	}
	if e.Now() != Hour {
		t.Errorf("Now() = %v, want %v (clock should rest at horizon)", e.Now(), Hour)
	}
	// A later Run should pick the event up.
	if err := e.Run(2 * Day); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("event did not run in extended horizon")
	}
}

func TestClockAdvancesToHorizonWhenIdle(t *testing.T) {
	e := NewEngine()
	if err := e.Run(30 * Day); err != nil {
		t.Fatal(err)
	}
	if e.Now() != 30*Day {
		t.Errorf("Now() = %v, want 30 days", e.Now())
	}
}

func TestHandlerSchedulesMore(t *testing.T) {
	e := NewEngine()
	count := 0
	var chain Handler
	chain = func(now Time) {
		count++
		if count < 5 {
			if _, err := e.After(Second, chain); err != nil {
				t.Errorf("After: %v", err)
			}
		}
	}
	mustSchedule(t, e, 0, chain)
	if err := e.Run(Minute); err != nil {
		t.Fatal(err)
	}
	if count != 5 {
		t.Errorf("chain ran %d times, want 5", count)
	}
	if e.Fired() != 5 {
		t.Errorf("Fired() = %d, want 5", e.Fired())
	}
}

func TestTicker(t *testing.T) {
	e := NewEngine()
	var ticks []Time
	_, err := e.Every(0, Hour, func(now Time) { ticks = append(ticks, now) })
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(5 * Hour); err != nil {
		t.Fatal(err)
	}
	if len(ticks) != 6 { // t=0,1h,...,5h
		t.Fatalf("got %d ticks, want 6: %v", len(ticks), ticks)
	}
	for i, tk := range ticks {
		if tk != Time(i)*Hour {
			t.Errorf("tick %d at %v, want %v", i, tk, Time(i)*Hour)
		}
	}
}

func TestTickerStop(t *testing.T) {
	e := NewEngine()
	count := 0
	var tk *Ticker
	var err error
	tk, err = e.Every(0, Hour, func(now Time) {
		count++
		if count == 3 {
			tk.Stop()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.Run(100 * Hour); err != nil {
		t.Fatal(err)
	}
	if count != 3 {
		t.Errorf("ticker fired %d times after Stop at 3, want 3", count)
	}
}

func TestTickerInvalidInterval(t *testing.T) {
	e := NewEngine()
	if _, err := e.Every(0, 0, func(Time) {}); err == nil {
		t.Error("zero interval accepted, want error")
	}
}

func TestStep(t *testing.T) {
	e := NewEngine()
	ran := 0
	mustSchedule(t, e, Second, func(Time) { ran++ })
	mustSchedule(t, e, 2*Second, func(Time) { ran++ })
	if !e.Step() {
		t.Fatal("Step returned false with pending events")
	}
	if ran != 1 {
		t.Fatalf("after one Step ran=%d, want 1", ran)
	}
	if !e.Step() {
		t.Fatal("second Step returned false")
	}
	if e.Step() {
		t.Error("Step returned true on empty queue")
	}
}

func TestEventAccessors(t *testing.T) {
	e := NewEngine()
	ev, err := e.ScheduleNamed(3*Second, "probe", func(Time) {})
	if err != nil {
		t.Fatal(err)
	}
	if ev.At() != 3*Second {
		t.Errorf("At() = %v, want 3s", ev.At())
	}
	if ev.Name() != "probe" {
		t.Errorf("Name() = %q, want probe", ev.Name())
	}
}

// Property: for any set of scheduled times, execution is sorted.
func TestPropertyExecutionSorted(t *testing.T) {
	f := func(offsets []uint16) bool {
		e := NewEngine()
		for _, off := range offsets {
			at := Time(off) * Second
			if _, err := e.Schedule(at, func(now Time) {
				if now < e.Now() {
					t.Errorf("time ran backwards")
				}
			}); err != nil {
				return false
			}
		}
		var last Time = -1
		ok := true
		for e.Step() {
			if e.Now() < last {
				ok = false
			}
			last = e.Now()
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

// Property: every non-canceled event fires exactly once within horizon.
func TestPropertyAllEventsFire(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 2))
	for trial := 0; trial < 20; trial++ {
		e := NewEngine()
		n := rng.IntN(200) + 1
		fired := make([]int, n)
		for i := 0; i < n; i++ {
			i := i
			at := Time(rng.Int64N(int64(Day)))
			if _, err := e.Schedule(at, func(Time) { fired[i]++ }); err != nil {
				t.Fatal(err)
			}
		}
		if err := e.Run(Day); err != nil {
			t.Fatal(err)
		}
		for i, c := range fired {
			if c != 1 {
				t.Fatalf("trial %d: event %d fired %d times", trial, i, c)
			}
		}
	}
}

func TestRunReentrantRejected(t *testing.T) {
	e := NewEngine()
	var inner error
	mustSchedule(t, e, Second, func(Time) {
		inner = e.Run(Minute)
	})
	if err := e.Run(Minute); err != nil {
		t.Fatal(err)
	}
	if inner == nil {
		t.Error("re-entrant Run succeeded, want error")
	}
}

func mustSchedule(t *testing.T, e *Engine, at Time, fn Handler) *Event {
	t.Helper()
	ev, err := e.Schedule(at, fn)
	if err != nil {
		t.Fatal(err)
	}
	return ev
}

func BenchmarkEngineScheduleRun(b *testing.B) {
	for i := 0; i < b.N; i++ {
		e := NewEngine()
		for j := 0; j < 1000; j++ {
			e.Schedule(Time(j)*Second, func(Time) {})
		}
		e.Run(2000 * Second)
	}
}

// TestTickerRescheduleErrorSurfaced forces the one reachable reschedule
// failure — now+interval overflowing into the past — and asserts the error
// reaches the caller instead of being dropped.
func TestTickerRescheduleErrorSurfaced(t *testing.T) {
	e := NewEngine()
	if _, err := e.Every(5, Time(math.MaxInt64), func(Time) {}); err != nil {
		t.Fatal(err)
	}
	err := e.Run(10)
	if err == nil {
		t.Fatal("overflowing ticker reschedule was silently dropped")
	}
	if !errors.Is(err, ErrPast) {
		t.Fatalf("expected ErrPast, got %v", err)
	}
}

// TestTickerRescheduleErrorHook routes the same failure through OnError.
func TestTickerRescheduleErrorHook(t *testing.T) {
	e := NewEngine()
	var hooked []error
	e.OnError(func(err error) { hooked = append(hooked, err) })
	if _, err := e.Every(5, Time(math.MaxInt64), func(Time) {}); err != nil {
		t.Fatal(err)
	}
	if err := e.Run(10); err != nil {
		t.Fatalf("hooked errors must not also surface from Run: %v", err)
	}
	if len(hooked) != 1 || !errors.Is(hooked[0], ErrPast) {
		t.Fatalf("hook saw %v, want one ErrPast", hooked)
	}
}
