package sim

import (
	"math/rand"
	"testing"
)

// TestWheelMatchesHeapOrder drives the timer wheel and a flat reference heap
// through identical randomized workloads — mixed near/far pushes, pops,
// cursor-advancing peeks followed by behind-cursor pushes — and asserts both
// pop the exact same (time, priority, seq) sequence. This is the ordering
// contract the engine's determinism (and the golden digests) rest on.
func TestWheelMatchesHeapOrder(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		var w timerWheel
		var ref eventQueue
		var seq uint64
		now := Time(0) // engine invariant: pushes never go before the clock

		push := func(at Time, pri int) {
			seq++
			w.push(&Event{at: at, priority: pri, seq: seq, index: -1})
			ref.push(&Event{at: at, priority: pri, seq: seq, index: -1})
		}
		popBoth := func() {
			got, want := w.pop(), ref.pop()
			if got.at != want.at || got.priority != want.priority || got.seq != want.seq {
				t.Fatalf("seed %d: wheel popped (%v,%d,%d), heap popped (%v,%d,%d)",
					seed, got.at, got.priority, got.seq, want.at, want.priority, want.seq)
			}
			if got.at > now {
				now = got.at
			}
		}
		randomAt := func() Time {
			switch rng.Intn(3) {
			case 0: // same-slot and sub-tick offsets
				return now + Time(rng.Int63n(int64(2*Minute)))
			case 1: // inside the wheel window
				return now + Time(rng.Int63n(int64(4*Hour)))
			default: // overflow territory
				return now + Time(rng.Int63n(int64(10*Day)))
			}
		}

		for op := 0; op < 4000; op++ {
			switch {
			case w.len() == 0 || rng.Intn(100) < 55:
				push(randomAt(), rng.Intn(5)-2)
			case rng.Intn(100) < 10:
				// A horizon stop: peek advances the cursor without popping,
				// then the next pushes may land behind it.
				if pw, ph := w.peek(), ref[0]; pw.seq != ph.seq {
					t.Fatalf("seed %d: wheel peeked seq %d, heap seq %d", seed, pw.seq, ph.seq)
				}
			default:
				popBoth()
			}
		}
		for w.len() > 0 {
			popBoth()
		}
		if len(ref) != 0 {
			t.Fatalf("seed %d: wheel drained with %d events left in reference heap", seed, len(ref))
		}
	}
}

// TestScheduleAllocs pins the arena behavior: scheduling amortizes to one
// chunk allocation per arenaChunk events rather than one *Event per call.
func TestScheduleAllocs(t *testing.T) {
	e := NewEngine()
	fn := func(Time) {}
	at := Time(0)
	avg := testing.AllocsPerRun(1000, func() {
		at += Second
		if _, err := e.Schedule(at, fn); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 2.0/arenaChunk {
		t.Errorf("Schedule allocates %.4f objects/op, want <= %.4f (arena-amortized)",
			avg, 2.0/arenaChunk)
	}
}

// TestTickerFireAllocs pins the ticker's event reuse: steady-state ticking
// must not allocate at all.
func TestTickerFireAllocs(t *testing.T) {
	e := NewEngine()
	n := 0
	if _, err := e.Every(0, Minute, func(Time) { n++ }); err != nil {
		t.Fatal(err)
	}
	// Warm up past one full wheel rotation (256 minutes) so every bucket's
	// backing slice exists; steady state after that reuses them all.
	horizon := 5 * Hour
	if err := e.Run(horizon); err != nil {
		t.Fatal(err)
	}
	avg := testing.AllocsPerRun(50, func() {
		horizon += Hour
		if err := e.Run(horizon); err != nil {
			t.Fatal(err)
		}
	})
	if avg > 0 {
		t.Errorf("ticker run allocates %.2f objects per hour of ticks, want 0", avg)
	}
	if n == 0 {
		t.Fatal("ticker never fired")
	}
}
